(** Quickstart: parse a theory, classify it, chase it, translate it to
    Datalog, and answer a query — the library's core loop in 60 lines.

    Run with: dune exec examples/quickstart.exe *)

open Guarded_core

let theory_text =
  {|
  % Every employee works in some department.
  employee(X) -> exists D. worksIn(X, D).
  % Departments of employees are organizational units.
  worksIn(X, D) -> orgUnit(D).
  % An employee working where a manager works is supervised.
  worksIn(X, D), worksIn(M, D), manager(M) -> supervised(X).
|}

let database_text =
  {|
  employee(alice). employee(bob).
  manager(carol). worksIn(carol, sales). worksIn(bob, sales).
|}

let pp_tuples = Fmt.list ~sep:(Fmt.any ", ") (Fmt.list ~sep:(Fmt.any " ") Term.pp)

let () =
  let sigma = Parser.theory_of_string theory_text in
  let db = Parser.database_of_string database_text in

  (* 1. Which of the paper's languages is this theory in? *)
  Fmt.pr "language: %s@." (Classify.language_name (Classify.classify sigma));

  (* 2. Run the chase: alice gets an invented department. *)
  let res = Guarded_chase.Engine.run sigma db in
  Fmt.pr "chase: %d derivations, %s@." res.derivations
    (match res.outcome with
    | Guarded_chase.Engine.Saturated -> "saturated"
    | Guarded_chase.Engine.Bounded -> "bounded");
  Fmt.pr "chase result:@.%a@.@." Database.pp res.db;

  (* 3. Translate the whole theory into plain Datalog (Theorems 1+3). *)
  let tr = Guarded_translate.Pipeline.to_datalog sigma in
  Fmt.pr "datalog program (%d rules):@.%a@.@."
    (Theory.size tr.Guarded_translate.Pipeline.datalog)
    Theory.pp tr.Guarded_translate.Pipeline.datalog;

  (* 4. Answer queries on the Datalog side — same certain answers. *)
  let answers query =
    Guarded_datalog.Seminaive.answers tr.Guarded_translate.Pipeline.datalog db ~query
  in
  Fmt.pr "supervised: %a@." pp_tuples (answers "supervised");
  Fmt.pr "orgUnit:    %a@." pp_tuples (answers "orgUnit");

  (* 5. Conjunctive queries see the invented values too. *)
  let q, _ = Guarded_cq.Cq.of_string "worksIn(X, D), orgUnit(D) -> q(X)." in
  Fmt.pr "who works in some org unit (certain answers): %a@." pp_tuples
    (Guarded_cq.Answer.certain_answers sigma q db)
