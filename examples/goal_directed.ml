(** Goal-directed machinery around the translations: magic-set
    evaluation of a compiled query, the restricted chase variant, and
    conjunctive-query minimization.

    Run with: dune exec examples/goal_directed.exe *)

open Guarded_core

let pp_tuples = Fmt.list ~sep:(Fmt.any ", ") (Fmt.list ~sep:(Fmt.any " ") Term.pp)

let () =
  (* 1. Compile an ontology to Datalog, then answer a *bound* query with
     magic sets: only the relevant part of the fixpoint is computed. *)
  Fmt.pr "=== magic sets over a compiled ontology ===@.";
  let ontology =
    Parser.theory_of_string
      {|
    dept(D) -> exists H. headedBy(D, H).
    headedBy(D, H) -> staff(H).
    headedBy(D, H) -> managed(D).
    memberOf(X, D), managed(D) -> wellManaged(X).
    worksWith(X, Y) -> colleagueOf(X, Y).
    colleagueOf(X, Y), worksWith(Y, Z) -> colleagueOf(X, Z).
  |}
  in
  let db =
    Parser.database_of_string
      {|
    dept(sales). dept(rnd).
    memberOf(ann, sales). memberOf(bob, rnd).
    worksWith(ann, bob). worksWith(bob, cara). worksWith(cara, dan).
  |}
  in
  let tr = Guarded_translate.Pipeline.to_datalog ontology in
  let program = tr.Guarded_translate.Pipeline.datalog in
  Fmt.pr "compiled %s theory to %d Datalog rules@."
    (Classify.language_name tr.Guarded_translate.Pipeline.source_language)
    (Theory.size program);
  let db' = Database.copy db in
  if Guarded_datalog.Seminaive.mentions_acdom program then Database.materialize_acdom db';
  let bound_query = Guarded_datalog.Magic.query_of_atom (Parser.atom_of_string "colleagueOf(ann, X)") in
  let magic_program, out_rel = Guarded_datalog.Magic.transform program bound_query in
  Fmt.pr "magic program: %d rules (query relation %s)@." (Theory.size magic_program) out_rel;
  Fmt.pr "ann's colleagues: %a@.@." pp_tuples
    (Guarded_datalog.Magic.answers program bound_query db');

  (* 2. The dependency graph: which relations matter to the query? *)
  let g = Guarded_datalog.Depgraph.of_theory program in
  let relevant =
    Guarded_datalog.Depgraph.reachable_from g
      (Guarded_datalog.Depgraph.Rel_set.singleton ("colleagueOf", 0, 2))
  in
  Fmt.pr "relations relevant to colleagueOf: %d of %d@."
    (Guarded_datalog.Depgraph.Rel_set.cardinal relevant)
    (Theory.Rel_set.cardinal (Theory.relations program));
  Fmt.pr "recursive relations: %a@.@."
    Fmt.(list ~sep:(any ", ") (fun ppf (n, _, _) -> string ppf n))
    (Guarded_datalog.Depgraph.Rel_set.elements
       (Guarded_datalog.Depgraph.recursive_relations g));

  (* 3. Chase variants: oblivious (the paper's) fires on satisfied
     triggers, the restricted chase does not. *)
  Fmt.pr "=== chase variants ===@.";
  let genealogy =
    Parser.theory_of_string
      "person(X) -> exists Y. parent(X, Y). parent(X, Y) -> person(Y)."
  in
  let cyclic = Parser.database_of_string "person(adam). parent(adam, adam)." in
  let bounded = { Guarded_chase.Engine.max_derivations = 25; max_depth = None } in
  let obl = Guarded_chase.Engine.run ~limits:bounded genealogy cyclic in
  let res =
    Guarded_chase.Engine.run ~variant:Guarded_chase.Engine.Restricted genealogy cyclic
  in
  Fmt.pr "oblivious:  %d derivations, %s@." obl.Guarded_chase.Engine.derivations
    (match obl.Guarded_chase.Engine.outcome with
    | Guarded_chase.Engine.Saturated -> "saturated"
    | Guarded_chase.Engine.Bounded -> "cut off (would run forever)");
  Fmt.pr "restricted: %d derivations, %s@.@." res.Guarded_chase.Engine.derivations
    (match res.Guarded_chase.Engine.outcome with
    | Guarded_chase.Engine.Saturated -> "saturated"
    | Guarded_chase.Engine.Bounded -> "cut off");

  (* 4. Conjunctive-query cores: redundant atoms fold away before the
     query ever reaches the Section 7 pipeline. *)
  Fmt.pr "=== CQ minimization ===@.";
  let q, _ =
    Guarded_cq.Cq.of_string
      "worksWith(X, Y), worksWith(X, Y2), worksWith(Y2, Z) -> q(X)."
  in
  let core = Guarded_cq.Minimize.core q in
  Fmt.pr "query: %a@." Guarded_cq.Cq.pp q;
  Fmt.pr "core:  %a@." Guarded_cq.Cq.pp core;
  Fmt.pr "equivalent: %b@." (Guarded_cq.Minimize.equivalent q core);
  Fmt.pr "answers coincide: %b@."
    (Guarded_cq.Answer.certain_answers ontology q db
    = Guarded_cq.Answer.certain_answers ontology core db)
