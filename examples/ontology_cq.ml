(** Ontology-mediated conjunctive query answering (Section 7): a small
    university ontology with value invention, compiled down to Datalog,
    with conjunctive queries answered over the enriched database.

    Run with: dune exec examples/ontology_cq.exe *)

open Guarded_core

(* A frontier-guarded university ontology. *)
let ontology =
  Parser.theory_of_string
    {|
  % every course is taught by some lecturer
  course(C) -> exists L. teaches(L, C).
  % lecturers are staff members
  teaches(L, C) -> staff(L).
  % teaching a course makes its topics covered
  teaches(L, C), about(C, T) -> covered(T).
  % a student enrolled in a course about a covered topic is exposed to it
  enrolled(S, C), about(C, T), covered(T) -> exposedTo(S, T).
|}

let db =
  Parser.database_of_string
    {|
  course(db101). course(logic2).
  about(db101, databases). about(logic2, logic).
  enrolled(mia, db101). enrolled(sam, logic2). enrolled(sam, db101).
|}

let pp_tuples = Fmt.list ~sep:(Fmt.any ", ") (Fmt.list ~sep:(Fmt.any " ") Term.pp)

let () =
  Fmt.pr "=== University ontology ===@.%a@.@." Theory.pp ontology;
  Fmt.pr "language: %s@.@." (Classify.language_name (Classify.classify ontology));

  (* Certain answers through the full translation pipeline. *)
  let run_cq text =
    let q, _ = Guarded_cq.Cq.of_string text in
    let answers = Guarded_cq.Answer.certain_answers ontology q db in
    (if q.Guarded_cq.Cq.answer_vars = [] then
       Fmt.pr "%s@.  certain: %b@." (String.trim text) (answers <> [])
     else Fmt.pr "%s@.  certain answers: %a@." (String.trim text) pp_tuples answers);
    (* Cross-check against the chase-based semantics. *)
    let via_chase, outcome = Guarded_cq.Answer.answers_via_chase ontology q db in
    assert (outcome = Guarded_chase.Engine.Saturated);
    assert (answers = via_chase);
    Fmt.pr "  (cross-checked against the saturated chase)@.@."
  in

  (* Atoms witnessed by invented lecturers still produce certain answers. *)
  run_cq "teaches(L, C), enrolled(S, C) -> q(S, C).";
  (* Join through the ontology's derived relations. *)
  run_cq "exposedTo(S, T) -> q(S, T).";
  (* A boolean query: is any staff member certain to exist? *)
  run_cq "staff(L), teaches(L, C), about(C, databases) -> q().";

  (* The same pipeline, showing the generated Datalog program. *)
  let q, rel = Guarded_cq.Cq.of_string "exposedTo(S, logic) -> q(S)." in
  let enriched =
    Theory.of_rules (Theory.rules ontology @ [ Guarded_cq.Cq.to_rule q ~query_rel:rel ])
  in
  let tr = Guarded_translate.Pipeline.to_datalog enriched in
  Fmt.pr "=== the compiled Datalog query (%d rules, source: %s) ===@."
    (Theory.size tr.Guarded_translate.Pipeline.datalog)
    (Classify.language_name tr.Guarded_translate.Pipeline.source_language);
  Fmt.pr "who is exposed to logic? %a@." pp_tuples
    (Guarded_datalog.Seminaive.answers tr.Guarded_translate.Pipeline.datalog db ~query:rel)
