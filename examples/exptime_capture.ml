(** The capture results of Section 8 in action:
    - Theorem 4: a Turing machine decided by the chase of a weakly
      guarded theory over string databases (including an exponential-time
      run);
    - Σ_code: an ordered database encoded as its characteristic string;
    - Theorem 5: Σ_succ generating every total order with stratified
      weakly guarded rules, powering the non-monotonic EVEN query.

    Run with: dune exec examples/exptime_capture.exe *)

open Guarded_core
open Guarded_capture

let () =
  (* --- Theorem 4 ---------------------------------------------------- *)
  Fmt.pr "=== Theorem 4: weakly guarded rules simulate Turing machines ===@.";
  let spec = Turing.parity_machine in
  let sigma = Tm_encode.theory ~k:1 spec in
  Fmt.pr "Σ_M for %S: %d rules, weakly guarded: %b@." spec.Turing.sp_name (Theory.size sigma)
    (Classify.is_weakly_guarded sigma);
  List.iter
    (fun word ->
      let db, _ = String_db.encode ~k:1 word in
      let direct = Turing.accepts spec ~cells:(List.length word + 1) word in
      let via_chase =
        match Tm_encode.accepts ~k:1 spec db with Ok b -> b | Error m -> failwith m
      in
      Fmt.pr "  w = [%-18s] machine: %-5b chase: %-5b  %s@." (String.concat ";" word) direct
        via_chase
        (if direct = via_chase then "agree" else "MISMATCH"))
    [ []; [ "one" ]; [ "one"; "one" ]; [ "one"; "zero"; "one" ]; [ "zero"; "one"; "zero" ] ];

  (* The binary counter: the chase runs for Θ(2^n) configurations. *)
  Fmt.pr "@.binary counter — exponential chases:@.";
  List.iter
    (fun n ->
      let input = Turing.counter_input n in
      let db, _ = String_db.encode ~k:1 input in
      let direct = Turing.run Turing.counter_machine ~cells:(List.length input + 1) input in
      let res =
        Guarded_chase.Engine.run
          ~limits:{ max_derivations = 500_000; max_depth = None }
          (Tm_encode.theory ~k:1 Turing.counter_machine)
          db
      in
      Fmt.pr "  n=%d: machine steps=%-5d chase derivations=%-6d accept: %b@." n direct.steps
        res.derivations
        (Database.mem res.db (Atom.make Tm_encode.accept [])))
    [ 2; 3; 4; 5 ];

  (* --- Σ_code -------------------------------------------------------- *)
  Fmt.pr "@.=== Σ_code: ordered databases as strings ===@.";
  let d = Parser.database_of_string "r(a). r(c). min(a). succ(a, b). succ(b, c). max(c)." in
  let sdb = Sigma_code.encode ~rel:"r" ~arity:1 d in
  Fmt.pr "characteristic string of r over a<b<c: %a@."
    Fmt.(list ~sep:(any "") string)
    (List.map
       (function "one" -> "1" | "zero" -> "0" | _ -> "_")
       (String_db.decode ~k:1 sdb));

  (* --- Theorem 5 ------------------------------------------------------ *)
  Fmt.pr "@.=== Theorem 5: Σ_succ generates every total order ===@.";
  let d3 =
    Database.of_atoms
      (List.map (fun c -> Atom.make "elem" [ Term.Const c ]) [ "x"; "y"; "z" ])
  in
  let orders, _ = Succ_order.good_orders d3 in
  Fmt.pr "good orderings of a 3-element domain (%d = 3!):@." (List.length orders);
  List.iter
    (fun (o : Succ_order.order) ->
      Fmt.pr "  %a@." (Fmt.list ~sep:(Fmt.any " < ") Term.pp) o.Succ_order.sequence)
    orders;

  Fmt.pr "@.the non-monotonic EVEN query (inexpressible without negation):@.";
  List.iter
    (fun n ->
      let dbn =
        Database.of_atoms
          (List.init n (fun i -> Atom.make "elem" [ Term.Const (Printf.sprintf "c%d" i) ]))
      in
      Fmt.pr "  |adom| = %d: evenCard() = %b@." n (Succ_order.even_cardinality dbn))
    [ 1; 2; 3; 4 ]
