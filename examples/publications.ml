(** The paper's running example (Example 1, Figure 2): the publication
    ontology Σp, its chase, the chase tree of Section 4, and the
    frontier-guarded-to-nearly-guarded rewriting of Theorem 1.

    Run with: dune exec examples/publications.exe *)

open Guarded_core

let sigma_p =
  Parser.theory_of_string
    {|
  % σ1: every publication has at least two keywords ...
  @s1 publication(X) -> exists K1, K2. keywords(X, K1, K2).
  % σ2: ... the first of which is its main topic.
  @s2 keywords(X, K1, K2) -> hasTopic(X, K1).
  % σ3: a topic is scientific if it is the topic of a paper citing a
  %     scientific paper with a shared coauthor.
  @s3 hasTopic(X, Z), hasAuthor(X, U), hasAuthor(Y, U), hasTopic(Y, Z2),
      scientific(Z2), citedIn(Y, X) -> scientific(Z).
  % σ4: the query — who authored a scientific publication?
  @s4 hasAuthor(X, Y), hasTopic(X, Z), scientific(Z) -> q(Y).
|}

let d =
  Parser.database_of_string
    {|
  publication(p1). publication(p2). citedIn(p1, p2).
  hasAuthor(p1, a1). hasAuthor(p2, a1). hasAuthor(p2, a2).
  hasTopic(p1, t1). scientific(t1).
|}

let () =
  Fmt.pr "=== The publication ontology (Example 1) ===@.%a@.@." Theory.pp sigma_p;
  Fmt.pr "language: %s@.@." (Classify.language_name (Classify.classify sigma_p));

  (* Figure 2: the chase. *)
  let res = Guarded_chase.Engine.run sigma_p d in
  Fmt.pr "=== chase(Σp, D) — Figure 2 ===@.";
  Fmt.pr "%a@.@." Database.pp res.db;
  Fmt.pr "Σp, D |= q(a1): %b@." (Database.mem res.db (Parser.atom_of_string "q(a1)"));
  Fmt.pr "Σp, D |= q(a2): %b@.@." (Database.mem res.db (Parser.atom_of_string "q(a2)"));

  (* Section 4: the chase tree. *)
  let norm = Normalize.normalize sigma_p in
  let nres = Guarded_chase.Engine.run norm d in
  let tree = Guarded_chase.Tree.build norm d nres in
  Fmt.pr "=== chase tree (Definition 6) ===@.";
  Fmt.pr "%a" Guarded_chase.Tree.pp tree;
  (match Guarded_chase.Tree.verify tree norm d with
  | Ok () -> Fmt.pr "Proposition 2 (P1)-(P3): verified@."
  | Error vs -> Fmt.pr "violations: %a@." Fmt.(list string) vs);
  Fmt.pr "nodes: %d, decomposition width: %d@.@."
    (Guarded_chase.Tree.node_count tree)
    (Guarded_chase.Tree.width tree);

  (* Theorem 1: the rewriting into a nearly guarded theory. *)
  Fmt.pr "=== rew(Σp) — Theorem 1 ===@.";
  let rew, stats = Guarded_translate.Rewrite_fg.rew_frontier_guarded ~max_rules:50_000 norm in
  Fmt.pr "expansion: %d input rules -> %d rules (%d auxiliary relations)@."
    stats.Guarded_translate.Expansion.input_rules
    stats.Guarded_translate.Expansion.output_rules
    stats.Guarded_translate.Expansion.aux_relations;
  Fmt.pr "rew(Σp) nearly guarded (Prop. 3): %b@." (Classify.is_nearly_guarded rew);
  let d_ac = Database.copy d in
  Database.materialize_acdom d_ac;
  let answers, outcome = Guarded_chase.Engine.answers
      ~limits:{ max_derivations = 200_000; max_depth = None } rew d_ac ~query:"q" in
  Fmt.pr "answers of (rew(Σp), q) over D (%s): %a@."
    (match outcome with Guarded_chase.Engine.Saturated -> "chase saturated"
                      | Guarded_chase.Engine.Bounded -> "bounded")
    (Fmt.list ~sep:(Fmt.any ", ") (Fmt.list Term.pp)) answers;

  (* A sample of the rewritten rules. *)
  Fmt.pr "@.sample of rew(Σp) (first 6 rules):@.";
  List.iteri (fun i r -> if i < 6 then Fmt.pr "  %a@." Rule.pp r) (Theory.rules rew)
