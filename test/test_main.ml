(** Test runner: one Alcotest suite per library plus the property-based
    suite. *)

let () =
  Helpers.run_alcotest "guarded"
    [
      ("core", Test_core.suite);
      ("colstore", Test_colstore.suite);
      ("classify", Test_classify.suite);
      ("normalize", Test_normalize.suite);
      ("chase", Test_chase.suite);
      ("datalog", Test_datalog.suite);
      ("magic", Test_magic.suite);
      ("provenance", Test_provenance.suite);
      ("translate", Test_translate.suite);
      ("expansion-internals", Test_expansion_internals.suite);
      ("cq", Test_cq.suite);
      ("capture", Test_capture.suite);
      ("robustness", Test_robustness.suite);
      ("join-engine", Test_join_engine.suite);
      ("properties", Test_properties.suite);
      ("par", Test_par.suite);
      ("saturate", Test_saturate.suite);
      ("incr", Test_incr.suite);
      ("server", Test_server.suite);
      ("repl", Test_repl.suite);
      ("demand", Test_demand.suite);
      ("analysis", Test_analysis.suite);
    ]
