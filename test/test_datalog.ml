(** Tests for the Datalog engine: semi-naive evaluation, stratification,
    the stratified chase (Def. 23), and partial grounding (Section 7). *)

open Guarded_core
module Seminaive = Guarded_datalog.Seminaive
module Stratify = Guarded_datalog.Stratify
module Stratified = Guarded_datalog.Stratified
module Grounding = Guarded_datalog.Grounding

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let test_transitive_closure () =
  let sigma = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let result = Seminaive.eval sigma d in
  check cint "six tc facts" 6 (Database.rel_cardinal result ("tc", 0, 2));
  check cbool "tc(a,d)" true (Database.mem result (Helpers.atom "tc(a, d)"))

let test_seminaive_matches_chase () =
  let sigma =
    Helpers.theory
      {|
    e(X, Y) -> tc(X, Y).
    tc(X, Y), tc(Y, Z) -> tc(X, Z).
    tc(X, X) -> cyclic(X).
  |}
  in
  let d = Helpers.db "e(a, b). e(b, c). e(c, a). e(d, d)." in
  let via_seminaive = Seminaive.eval sigma d in
  let via_chase = (Guarded_chase.Engine.run sigma d).db in
  check cbool "same fixpoint" true (Database.equal via_seminaive via_chase)

let test_facts_and_constants () =
  let sigma = Helpers.theory "-> r(c). r(X), p(X, d) -> s(X)." in
  let d = Helpers.db "p(c, d)." in
  let result = Seminaive.eval sigma d in
  check cbool "s(c)" true (Database.mem result (Helpers.atom "s(c)"))

let test_acdom_materialized () =
  let sigma = Helpers.theory "ACDom(X) -> dom(X)." in
  let d = Helpers.db "r(a, b)." in
  let result = Seminaive.eval sigma d in
  check cint "two dom facts" 2 (Database.rel_cardinal result ("dom", 0, 1))

let test_rejects_existential () =
  let sigma = Helpers.theory "p(X) -> exists Y. r(X, Y)." in
  match Seminaive.eval sigma (Helpers.db "p(a).") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seminaive accepted an existential rule"

let test_semipositive () =
  let sigma = Helpers.theory "node(X), not red(X) -> green(X)." in
  let d = Helpers.db "node(a). node(b). red(a)." in
  let result = Seminaive.eval sigma d in
  check cbool "green(b)" true (Database.mem result (Helpers.atom "green(b)"));
  check cbool "no green(a)" false (Database.mem result (Helpers.atom "green(a)"))

let test_rejects_non_semipositive () =
  let sigma = Helpers.theory "node(X), not odd(X) -> even(X). node(X), not even(X) -> odd(X)." in
  match Seminaive.eval sigma (Helpers.db "node(a).") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seminaive accepted non-semipositive negation"

(* --- stratification ------------------------------------------------- *)

let test_strata_order () =
  let sigma =
    Helpers.theory
      {|
    e(X, Y) -> tc(X, Y).
    tc(X, Y), e(Y, Z) -> tc(X, Z).
    node(X), node(Y), not tc(X, Y) -> unreachable(X, Y).
  |}
  in
  let strata = Stratify.strata sigma in
  check cint "two strata" 2 (List.length strata);
  check cbool "is stratified" true (Stratify.is_stratified sigma);
  (* the tc rules come first *)
  let first = List.hd strata in
  check cint "first stratum has the tc rules" 2 (Theory.size first)

let test_unstratifiable () =
  let sigma = Helpers.theory "p(X), not q(X) -> q(X)." in
  check cbool "unstratifiable" false (Stratify.is_stratified sigma);
  match Stratify.strata sigma with
  | exception Stratify.Unstratifiable _ -> ()
  | _ -> Alcotest.fail "negative self-loop stratified"

let test_even_odd_stratified () =
  (* Classic: even/odd over a successor chain, two negation levels. *)
  let sigma =
    Helpers.theory
      {|
    first(X) -> even(X).
    even(X), next(X, Y) -> odd(Y).
    odd(X), next(X, Y) -> even(Y).
    last(X), even(X) -> evenLength().
    node(X), not even(X) -> notEven(X).
  |}
  in
  check cbool "stratified" true (Stratify.is_stratified sigma);
  let d =
    Helpers.db
      "first(n1). next(n1, n2). next(n2, n3). last(n3). node(n1). node(n2). node(n3)."
  in
  let res = Stratified.chase sigma d in
  check cbool "n3 even" true (Database.mem res.db (Helpers.atom "even(n3)"));
  check cbool "evenLength" true (Database.mem res.db (Helpers.atom "evenLength()"));
  check cbool "notEven(n2)" true (Database.mem res.db (Helpers.atom "notEven(n2)"))

let test_stratified_with_existentials () =
  (* A stratum with value invention feeding a negated relation. *)
  let sigma =
    Helpers.theory
      {|
    person(X) -> exists Y. parent(X, Y).
    parent(X, Y) -> hasParent(X).
    person(X), not hasParent(X) -> orphan(X).
  |}
  in
  check cbool "stratified" true (Stratify.is_stratified sigma);
  let d = Helpers.db "person(a)." in
  let res = Stratified.chase sigma d in
  (* Every person gets an invented parent before the negation stratum. *)
  check cbool "no orphan" false (Database.mem res.db (Helpers.atom "orphan(a)"))

let test_stratified_semantics_snapshot () =
  (* Negation sees the previous stratum, not the current derivations. *)
  let sigma =
    Helpers.theory
      {|
    a(X) -> p(X).
    b(X), not p(X) -> q(X).
    q(X) -> p(X).
  |}
  in
  (* p is derived in the last stratum from q as well; stratification
     places "not p" after ALL p-rules, so q(b) must not fire. *)
  check cbool "unstratifiable (p depends on q depends on not p)" false
    (Stratify.is_stratified sigma)

(* --- partial grounding ---------------------------------------------- *)

let test_partial_ground () =
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a). anchor(b)." in
  let grounded = Grounding.partial_ground sigma d in
  check cbool "result is guarded" true (Classify.is_guarded grounded);
  (* the safe variables of w1 and w4 range over the 2-constant domain *)
  check cbool "more rules than input" true (Theory.size grounded > Theory.size sigma)

let test_partial_ground_preserves_answers () =
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a). anchor(b)." in
  let grounded = Grounding.partial_ground sigma d in
  let limits = { Guarded_chase.Engine.max_derivations = 2_000; max_depth = Some 3 } in
  let a1, _ = Guarded_chase.Engine.answers ~limits sigma d ~query:"gen" in
  let a2, _ = Guarded_chase.Engine.answers ~limits grounded d ~query:"gen" in
  Helpers.check_answers "same bounded answers" a1 a2

let test_partial_ground_budget () =
  let sigma = Helpers.theory "p(X1), p(X2), p(X3), p(X4), p(X5) -> q(X1)." in
  let d = Helpers.db "p(a). p(b). p(c). p(d). p(e). p(f). p(g). p(h). p(i). p(j)." in
  match Grounding.partial_ground ~max_rules:100 sigma d with
  | exception Grounding.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "budget not enforced"

(* ------------------------------------------------------------------ *)
(* Dependency graph: rule components and reachability edge cases       *)

module Depgraph = Guarded_datalog.Depgraph

let component_of components rule_text =
  let r = Helpers.rule rule_text in
  List.find_opt (fun comp -> List.exists (Rule.equal r) (Theory.rules comp)) components

let test_rule_components_multihead () =
  (* The multi-head rule derives [a] and [b] together, so their
     relations are identified into one component even though no body
     ever joins them; every rule deriving [a] rides along, and the
     downstream [c] rule comes strictly after (dependencies first). *)
  let sigma = Helpers.theory "s(X) -> a(X), b(X). b(X) -> a(X). a(X) -> c(X)." in
  let components = Depgraph.rule_components sigma in
  check cint "two nonempty components" 2 (List.length components);
  (match (component_of components "s(X) -> a(X), b(X).", component_of components "b(X) -> a(X).") with
  | Some c1, Some c2 -> check cbool "multi-head heads share a component" true (c1 == c2)
  | _ -> Alcotest.fail "rules not found in any component");
  (match (component_of components "b(X) -> a(X).", component_of components "a(X) -> c(X).") with
  | Some c1, Some c2 -> check cbool "downstream rule separate" true (c1 != c2)
  | _ -> Alcotest.fail "rules not found in any component");
  (match List.map Theory.rules components with
  | [ first; second ] ->
    check cint "a/b component first" 2 (List.length first);
    check cint "c component second" 1 (List.length second)
  | _ -> Alcotest.fail "expected two components");
  (* Concatenating the components gives back every rule. *)
  check cint "no rule lost" (Theory.size sigma)
    (List.fold_left (fun n c -> n + Theory.size c) 0 components)

let test_rule_components_self_loop () =
  (* A self-recursive rule keeps its relation's whole bucket — base
     rules deriving the same head share the component — while rules of
     downstream relations come after. *)
  let sigma = Helpers.theory "a(X) -> p(X). p(X), e(X, Y) -> p(Y). p(X) -> q(X)." in
  let components = Depgraph.rule_components sigma in
  check cint "two nonempty components" 2 (List.length components);
  match List.map Theory.rules components with
  | [ p_rules; [ q_rule ] ] ->
    check cint "both p-deriving rules together" 2 (List.length p_rules);
    check cbool "self-loop rule present" true
      (List.exists (Rule.equal (Helpers.rule "p(X), e(X, Y) -> p(Y).")) p_rules);
    check cbool "q strictly after its dependency" true
      (Rule.equal q_rule (Helpers.rule "p(X) -> q(X)."))
  | _ -> Alcotest.fail "expected [p-component; q-component]"

let test_reachable_from () =
  let sigma =
    Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), tc(Y, Z) -> tc(X, Z). p(X) -> q(X)."
  in
  let g = Depgraph.of_theory sigma in
  let set keys = Depgraph.Rel_set.of_list keys in
  (* Inclusive of the targets themselves, transitively closed. *)
  let r = Depgraph.reachable_from g (set [ ("tc", 0, 2) ]) in
  check cbool "target included" true (Depgraph.Rel_set.mem ("tc", 0, 2) r);
  check cbool "edb dependency included" true (Depgraph.Rel_set.mem ("e", 0, 2) r);
  check cbool "unrelated relation excluded" false (Depgraph.Rel_set.mem ("q", 0, 1) r);
  check cbool "unrelated body excluded" false (Depgraph.Rel_set.mem ("p", 0, 1) r);
  (* A target the program never mentions is still reflexively reachable
     and pulls in nothing else. *)
  let r = Depgraph.reachable_from g (set [ ("ghost", 0, 1) ]) in
  check cbool "absent target reflexive" true (Depgraph.Rel_set.mem ("ghost", 0, 1) r);
  check cint "absent target pulls nothing" 1 (Depgraph.Rel_set.cardinal r);
  (* An EDB-only target has no predecessors: itself alone. *)
  let r = Depgraph.reachable_from g (set [ ("e", 0, 2) ]) in
  check cint "edb target alone" 1 (Depgraph.Rel_set.cardinal r)

let suite =
  [
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "seminaive = chase on datalog" `Quick test_seminaive_matches_chase;
    Alcotest.test_case "fact rules and constants" `Quick test_facts_and_constants;
    Alcotest.test_case "ACDom materialization" `Quick test_acdom_materialized;
    Alcotest.test_case "rejects existential rules" `Quick test_rejects_existential;
    Alcotest.test_case "semipositive negation" `Quick test_semipositive;
    Alcotest.test_case "rejects non-semipositive" `Quick test_rejects_non_semipositive;
    Alcotest.test_case "strata computation" `Quick test_strata_order;
    Alcotest.test_case "unstratifiable detection" `Quick test_unstratifiable;
    Alcotest.test_case "even/odd stratified program" `Quick test_even_odd_stratified;
    Alcotest.test_case "stratified with existentials" `Quick test_stratified_with_existentials;
    Alcotest.test_case "negation through recursion rejected" `Quick test_stratified_semantics_snapshot;
    Alcotest.test_case "partial grounding is guarded" `Quick test_partial_ground;
    Alcotest.test_case "partial grounding preserves answers" `Quick test_partial_ground_preserves_answers;
    Alcotest.test_case "partial grounding budget" `Quick test_partial_ground_budget;
    Alcotest.test_case "rule components: multi-head" `Quick test_rule_components_multihead;
    Alcotest.test_case "rule components: self-loop" `Quick test_rule_components_self_loop;
    Alcotest.test_case "reachable_from edge cases" `Quick test_reachable_from;
  ]
