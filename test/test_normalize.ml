(** Tests for normalization (Definition 4, Proposition 1). *)

open Guarded_core

let check = Alcotest.check
let cbool = Alcotest.bool

let normalized_answers sigma d ~query =
  Helpers.chase_answers (Normalize.normalize sigma) d ~query

let test_is_normal () =
  check cbool "already normal" true (Normalize.is_normal (Helpers.example7_theory ()));
  check cbool "multi-head not normal" false
    (Normalize.is_normal (Helpers.theory "r(X) -> s(X), t(X)."));
  check cbool "constant in body not normal" false
    (Normalize.is_normal (Helpers.theory "r(X, c) -> s(X)."));
  check cbool "fact rule is normal" true (Normalize.is_normal (Helpers.theory "-> r(c)."));
  check cbool "non-guarded existential not normal" false
    (Normalize.is_normal (Helpers.theory "r(X, Y), s(Y, Z) -> exists W. t(X, W)."))

let test_normalize_idempotent_shape () =
  let sigma = Helpers.publications_theory () in
  let n1 = Normalize.normalize sigma in
  check cbool "normal after one pass" true (Normalize.is_normal n1)

let test_head_split_datalog () =
  let sigma = Helpers.theory "r(X, Y) -> s(X), t(Y)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  let d = Helpers.db "r(a, b)." in
  Helpers.check_answers "s preserved" (Helpers.tuples "a") (normalized_answers sigma d ~query:"s");
  Helpers.check_answers "t preserved" (Helpers.tuples "b") (normalized_answers sigma d ~query:"t")

let test_head_split_existential () =
  let sigma = Helpers.theory "p(X) -> exists Y. r(X, Y), s(Y)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  let d = Helpers.db "p(a)." in
  (* the invented value satisfies both conjuncts *)
  let sigma2 = Helpers.theory "r(X, Y), s(Y) -> witness(X)." in
  let combined = Theory.of_rules (Theory.rules norm @ Theory.rules sigma2) in
  Helpers.check_answers "joint witness" (Helpers.tuples "a")
    (Helpers.chase_answers combined d ~query:"witness")

let test_guard_existential () =
  let sigma = Helpers.theory "r(X, Y), s(Y, Z) -> exists W. t(X, W)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  List.iter
    (fun r ->
      if not (Rule.is_datalog r) then
        check cbool "existential rules guarded" true (Classify.is_guarded_rule r))
    (Theory.rules norm);
  let d = Helpers.db "r(a, b). s(b, c)." in
  let probe = Helpers.theory "t(X, W) -> got(X)." in
  let combined = Theory.of_rules (Theory.rules norm @ Theory.rules probe) in
  Helpers.check_answers "t created" (Helpers.tuples "a")
    (Helpers.chase_answers combined d ~query:"got")

let test_constant_elimination_body () =
  let sigma = Helpers.theory "r(X, c) -> s(X)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  let d = Helpers.db "r(a, c). r(b, d)." in
  Helpers.check_answers "only the c-tuple fires" (Helpers.tuples "a")
    (normalized_answers sigma d ~query:"s")

let test_constant_elimination_head () =
  let sigma = Helpers.theory "r(X) -> s(X, c)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  let d = Helpers.db "r(a)." in
  Helpers.check_answers "head constant restored" (Helpers.tuples "a,c")
    (normalized_answers sigma d ~query:"s")

let test_constant_in_existential_head () =
  let sigma = Helpers.theory "r(X) -> exists Y. s(X, c, Y)." in
  let norm = Normalize.normalize sigma in
  check cbool "normal" true (Normalize.is_normal norm);
  let probe = Helpers.theory "s(X, Z, Y) -> flat(X, Z)." in
  let combined = Theory.of_rules (Theory.rules norm @ Theory.rules probe) in
  Helpers.check_answers "existential head with constant" (Helpers.tuples "a,c")
    (Helpers.chase_answers combined (Helpers.db "r(a).") ~query:"flat")

let test_repeated_variable_in_specialized_atom () =
  (* Specializing r(X, X, c) must keep the repetition constraint. *)
  let sigma = Helpers.theory "r(X, X, c) -> s(X)." in
  let d = Helpers.db "r(a, a, c). r(a, b, c). r(b, b, d)." in
  Helpers.check_answers "repetition preserved" (Helpers.tuples "a")
    (normalized_answers sigma d ~query:"s")

let test_language_preservation () =
  (* Prop. 1 (c): normalization preserves the weakly/nearly languages. *)
  let cases =
    [
      (Helpers.publications_theory (), Classify.Nearly_frontier_guarded);
      (Helpers.wg_theory (), Classify.Weakly_guarded);
      (Helpers.example7_theory (), Classify.Nearly_guarded);
    ]
  in
  List.iter
    (fun (sigma, at_most) ->
      let norm = Normalize.normalize sigma in
      check cbool
        (Fmt.str "normalized theory stays within %s" (Classify.language_name at_most))
        true
        (Classify.in_language norm at_most))
    cases

let test_answers_preserved_running_example () =
  let sigma = Helpers.publications_theory () in
  let d = Helpers.publications_db () in
  Helpers.check_answers "q preserved"
    (Helpers.chase_answers sigma d ~query:"q")
    (normalized_answers sigma d ~query:"q")

let suite =
  [
    Alcotest.test_case "is_normal" `Quick test_is_normal;
    Alcotest.test_case "normalize yields normal form" `Quick test_normalize_idempotent_shape;
    Alcotest.test_case "datalog head split" `Quick test_head_split_datalog;
    Alcotest.test_case "existential head split" `Quick test_head_split_existential;
    Alcotest.test_case "existential rules get guards" `Quick test_guard_existential;
    Alcotest.test_case "body constants eliminated" `Quick test_constant_elimination_body;
    Alcotest.test_case "head constants eliminated" `Quick test_constant_elimination_head;
    Alcotest.test_case "constants in existential heads" `Quick test_constant_in_existential_head;
    Alcotest.test_case "repeated variables preserved" `Quick test_repeated_variable_in_specialized_atom;
    Alcotest.test_case "Prop 1(c): language preserved" `Quick test_language_preservation;
    Alcotest.test_case "Prop 1(b): answers preserved" `Quick test_answers_preserved_running_example;
  ]
