(** Tests for the Section 8 machinery: string databases, Turing
    machines, the weakly guarded simulation (Theorem 4), the lexicographic
    tuple orders, Σ_code, and the stratified order generator Σ_succ with
    the EVEN-cardinality query (Theorem 5). *)

open Guarded_core
open Guarded_capture

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cslist = Alcotest.list Alcotest.string

(* --- Turing machines -------------------------------------------------- *)

let test_parity_machine () =
  let accepts w = Turing.accepts Turing.parity_machine ~cells:(List.length w + 1) w in
  check cbool "even ones" true (accepts [ "one"; "one" ]);
  check cbool "odd ones" false (accepts [ "one"; "zero" ]);
  check cbool "empty" true (accepts []);
  check cbool "zeros only" true (accepts [ "zero"; "zero"; "zero" ])

let test_balanced_machine () =
  let accepts w = Turing.accepts Turing.balanced_machine ~cells:(List.length w + 1) w in
  check cbool "01" true (accepts [ "zero"; "one" ]);
  check cbool "0011" true (accepts [ "zero"; "zero"; "one"; "one" ]);
  check cbool "001" false (accepts [ "zero"; "zero"; "one" ]);
  check cbool "10" false (accepts [ "one"; "zero" ]);
  check cbool "empty balanced" true (accepts [])

let test_counter_machine_exponential () =
  let steps n =
    let input = Turing.counter_input n in
    let run = Turing.run Turing.counter_machine ~cells:(List.length input + 1) input in
    check cbool "accepts" true (run.outcome = Turing.Accepted);
    run.steps
  in
  let s3 = steps 3 and s4 = steps 4 and s5 = steps 5 in
  check cbool "exponential growth" true (s4 > (3 * s3) / 2 && s5 > (3 * s4) / 2)

let test_machine_determinism_check () =
  match
    Turing.make ~name:"dup" ~blank:"b" ~start:"s" ~accept:"a"
      [
        (("s", "x"), { Turing.next_state = "a"; write = "x"; move = Turing.Stay });
        (("s", "x"), { Turing.next_state = "s"; write = "x"; move = Turing.Stay });
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate transition accepted"

(* --- string databases -------------------------------------------------- *)

let test_string_db_roundtrip () =
  let word = [ "one"; "zero"; "one" ] in
  let d, info = String_db.encode ~k:1 word in
  check cint "degree" 1 info.String_db.degree;
  let decoded = String_db.decode ~k:1 d in
  (* the decoded word is the original padded with blanks *)
  check cslist "prefix preserved" word (List.filteri (fun i _ -> i < 3) decoded);
  List.iteri
    (fun i s -> if i >= 3 then check Alcotest.string "padding" "blank" s)
    decoded

let test_string_db_degree2 () =
  let word = [ "a"; "b"; "c"; "d"; "e" ] in
  let d, info = String_db.encode ~k:2 word in
  check cint "cells = domain^2" (List.length info.String_db.domain * List.length info.String_db.domain)
    info.String_db.cells;
  let decoded = String_db.decode ~k:2 d in
  check cint "decoded covers all cells" info.String_db.cells (List.length decoded);
  check cslist "prefix" word (List.filteri (fun i _ -> i < 5) decoded)

let test_string_db_validate () =
  let d, _ = String_db.encode ~k:1 [ "one"; "zero" ] in
  (match String_db.validate ~k:1 ~alphabet:[ "one"; "zero"; "blank" ] d with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* break the exactly-one condition *)
  ignore (Database.add d (Atom.make "one" [ Term.Const "e1" ]));
  match String_db.validate ~k:1 ~alphabet:[ "one"; "zero"; "blank" ] d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "validation missed a double symbol"

(* --- Theorem 4: TM simulation by weakly guarded rules ------------------ *)

let test_tm_theory_weakly_guarded () =
  List.iter
    (fun spec ->
      let sigma = Tm_encode.theory ~k:1 spec in
      check cbool (spec.Turing.sp_name ^ " theory is WG") true (Classify.is_weakly_guarded sigma);
      check cbool (spec.Turing.sp_name ^ " not nearly guarded") false
        (Classify.is_nearly_guarded sigma))
    [ Turing.parity_machine; Turing.balanced_machine; Turing.counter_machine ]

let chase_equals_direct spec words =
  List.iter
    (fun word ->
      let d, info = String_db.encode ~k:1 word in
      let direct = Turing.accepts ~fuel:100_000 spec ~cells:info.String_db.cells word in
      match Tm_encode.accepts ~k:1 spec d with
      | Ok via_chase ->
        check cbool
          (Fmt.str "%s on [%s]" spec.Turing.sp_name (String.concat "," word))
          direct via_chase
      | Error m -> Alcotest.fail m)
    words

let test_theorem4_parity () =
  chase_equals_direct Turing.parity_machine
    [ []; [ "one" ]; [ "one"; "one" ]; [ "zero"; "one"; "one" ]; [ "one"; "zero"; "zero" ] ]

let test_theorem4_balanced () =
  chase_equals_direct Turing.balanced_machine
    [
      [];
      [ "zero"; "one" ];
      [ "zero"; "zero"; "one"; "one" ];
      [ "zero"; "one"; "one" ];
      [ "one" ];
    ]

let test_theorem4_counter () =
  (* The chase walks the full exponential computation. *)
  let input = Turing.counter_input 3 in
  let d, _ = String_db.encode ~k:1 input in
  match Tm_encode.accepts ~k:1 Turing.counter_machine d with
  | Ok accepted -> check cbool "counter accepts via chase" true accepted
  | Error m -> Alcotest.fail m

let test_theorem4_degree2 () =
  (* Tape cells as pairs of constants: same machine, k = 2. *)
  let word = [ "one"; "one" ] in
  let d, _ = String_db.encode ~k:2 word in
  let sigma = Tm_encode.theory ~k:2 Turing.parity_machine in
  check cbool "k=2 theory is WG" true (Classify.is_weakly_guarded sigma);
  match Tm_encode.accepts ~k:2 Turing.parity_machine d with
  | Ok accepted -> check cbool "accepts over pair cells" true accepted
  | Error m -> Alcotest.fail m

(* --- lexicographic orders ---------------------------------------------- *)

let test_lex_order () =
  let base : Lex_order.base = { b_min = "mn"; b_succ = "sc"; b_max = "mx" } in
  let out : Lex_order.tuple_order = { t_first = "f2"; t_next = "n2"; t_last = "l2"; t_k = 2 } in
  let rules = Lex_order.rules ~k:2 ~base ~out in
  let facts = Lex_order.base_facts ~base [ Term.Const "a"; Term.Const "b" ] in
  let d = Database.of_atoms facts in
  let result = Guarded_datalog.Seminaive.eval (Theory.of_rules rules) d in
  (* aa < ab < ba < bb: three successor pairs, first aa, last bb *)
  check cint "three successors" 3 (Database.rel_cardinal result ("n2", 0, 4));
  check cbool "first (a,a)" true (Database.mem result (Helpers.atom "f2(a, a)"));
  check cbool "last (b,b)" true (Database.mem result (Helpers.atom "l2(b, b)"));
  check cbool "ab -> ba crosses position 0" true (Database.mem result (Helpers.atom "n2(a, b, b, a)"))

(* --- Σ_code ------------------------------------------------------------- *)

let test_sigma_code () =
  let d = Helpers.db "r(a). r(c). min(a). succ(a, b). succ(b, c). max(c)." in
  let sdb = Sigma_code.encode ~rel:"r" ~arity:1 d in
  (* arity 1 pads with an end-of-data blank cell for the machines *)
  check cslist "characteristic string" [ "one"; "zero"; "one"; "blank" ]
    (String_db.decode ~k:1 sdb);
  let unpadded = Sigma_code.encode ~pad:false ~rel:"r" ~arity:1 d in
  check cslist "unpadded string" [ "one"; "zero"; "one" ] (String_db.decode ~k:1 unpadded)

let test_sigma_code_binary () =
  let d = Helpers.db "e(a, b). min(a). succ(a, b). max(b)." in
  let sdb = Sigma_code.encode ~rel:"e" ~arity:2 d in
  (* tuples in lex order: (a,a) (a,b) (b,a) (b,b); only (a,b) is in e *)
  check cslist "characteristic string" [ "zero"; "one"; "zero"; "zero" ]
    (String_db.decode ~k:2 sdb)

let test_sigma_code_is_semipositive () =
  List.iter
    (fun pad ->
      let sigma = Sigma_code.theory ~pad ~rel:"r" ~arity:1 () in
      check cbool "semipositive" true (Guarded_datalog.Stratify.is_semipositive sigma))
    [ false; true ]

(* --- Theorem 5: Σ_succ and the EVEN query ------------------------------- *)

let test_sigma_succ_weakly_guarded_stratified () =
  let sigma = Succ_order.theory () in
  check cbool "stratified" true (Guarded_datalog.Stratify.is_stratified sigma);
  check cbool "weakly guarded" true (Classify.is_weakly_guarded sigma)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let test_sigma_succ_enumerates_orders () =
  List.iter
    (fun n ->
      let facts = List.init n (fun i -> Atom.make "elem" [ Term.Const (Printf.sprintf "c%d" i) ]) in
      let d = Database.of_atoms facts in
      let orders, _ = Succ_order.good_orders d in
      check cint (Fmt.str "%d! orderings on %d constants" n n) (factorial n) (List.length orders);
      (* every good ordering is a permutation of the domain *)
      List.iter
        (fun (o : Succ_order.order) ->
          check cint "full length" n (List.length o.Succ_order.sequence);
          check cint "no repetition" n
            (Term.Set.cardinal (Term.Set.of_list o.Succ_order.sequence)))
        orders)
    [ 1; 2; 3 ]

let test_even_cardinality () =
  let dbn n =
    Database.of_atoms
      (List.init n (fun i -> Atom.make "elem" [ Term.Const (Printf.sprintf "c%d" i) ]))
  in
  check cbool "1 odd" false (Succ_order.even_cardinality (dbn 1));
  check cbool "2 even" true (Succ_order.even_cardinality (dbn 2));
  check cbool "3 odd" false (Succ_order.even_cardinality (dbn 3));
  check cbool "4 even" true (Succ_order.even_cardinality (dbn 4))

let test_even_theory_shape () =
  let sigma = Succ_order.even_cardinality_theory () in
  check cbool "stratified" true (Guarded_datalog.Stratify.is_stratified sigma);
  check cbool "weakly guarded" true (Classify.is_weakly_guarded sigma)

(* --- the PTime baseline: semipositive Datalog --------------------------- *)

let test_ptime_theory_is_datalog () =
  let sigma = Ptime_encode.theory ~time:2 ~space:1 Turing.parity_machine in
  check cbool "plain datalog" true (Theory.is_datalog sigma);
  check cbool "semipositive" true (Guarded_datalog.Stratify.is_semipositive sigma)

let test_ptime_simulation () =
  List.iter
    (fun word ->
      let d, info = String_db.encode ~k:1 word in
      let direct =
        Turing.accepts Turing.parity_machine ~cells:info.String_db.cells word
      in
      (* |Dom|^2 time steps are ample for a single left-to-right scan *)
      let via_datalog = Ptime_encode.accepts ~time:2 Turing.parity_machine d in
      check cbool
        (Fmt.str "ptime parity on [%s]" (String.concat "," word))
        direct via_datalog)
    [ []; [ "one" ]; [ "one"; "one" ]; [ "zero"; "one"; "zero" ]; [ "one"; "one"; "one" ] ]

let test_ptime_time_budget_matters () =
  (* With a single time tuple of degree 1 (|Dom| steps), the balanced
     machine cannot finish its quadratic sweep on a longer word. *)
  let word = [ "zero"; "zero"; "one"; "one" ] in
  let d, _ = String_db.encode ~k:1 word in
  check cbool "enough time accepts" true
    (Ptime_encode.accepts ~time:2 Turing.balanced_machine d);
  check cbool "too little time rejects" false
    (Ptime_encode.accepts ~time:1 Turing.balanced_machine d)

(* --- end-to-end capture composition ------------------------------------- *)

let test_code_then_machine () =
  (* Σ_code turns an ordered unary database into its characteristic
     string; the parity machine then decides whether the relation has an
     even number of "holes"... here: even number of ones = |r| even. *)
  let d = Helpers.db "r(a). r(c). min(a). succ(a, b). succ(b, c). max(c)." in
  let sdb = Sigma_code.encode ~rel:"r" ~arity:1 d in
  match Tm_encode.accepts ~k:1 Turing.parity_machine sdb with
  | Ok accepted -> check cbool "|r| = 2 is even" true accepted
  | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "parity machine" `Quick test_parity_machine;
    Alcotest.test_case "balanced machine" `Quick test_balanced_machine;
    Alcotest.test_case "counter machine is exponential" `Quick test_counter_machine_exponential;
    Alcotest.test_case "determinism enforced" `Quick test_machine_determinism_check;
    Alcotest.test_case "string db round trip" `Quick test_string_db_roundtrip;
    Alcotest.test_case "string db degree 2" `Quick test_string_db_degree2;
    Alcotest.test_case "string db validation" `Quick test_string_db_validate;
    Alcotest.test_case "Thm 4: ΣM weakly guarded" `Quick test_tm_theory_weakly_guarded;
    Alcotest.test_case "Thm 4: parity via chase" `Quick test_theorem4_parity;
    Alcotest.test_case "Thm 4: balanced via chase" `Quick test_theorem4_balanced;
    Alcotest.test_case "Thm 4: exponential run via chase" `Slow test_theorem4_counter;
    Alcotest.test_case "Thm 4: degree-2 cells" `Quick test_theorem4_degree2;
    Alcotest.test_case "lexicographic tuple order" `Quick test_lex_order;
    Alcotest.test_case "Σ_code unary" `Quick test_sigma_code;
    Alcotest.test_case "Σ_code binary" `Quick test_sigma_code_binary;
    Alcotest.test_case "Σ_code semipositive" `Quick test_sigma_code_is_semipositive;
    Alcotest.test_case "Σ_succ shape" `Quick test_sigma_succ_weakly_guarded_stratified;
    Alcotest.test_case "Thm 5: Σ_succ enumerates n! orders" `Quick test_sigma_succ_enumerates_orders;
    Alcotest.test_case "Thm 5: EVEN cardinality query" `Slow test_even_cardinality;
    Alcotest.test_case "EVEN theory shape" `Quick test_even_theory_shape;
    Alcotest.test_case "Σ_code + ΣM composition" `Quick test_code_then_machine;
    Alcotest.test_case "PTime baseline is plain Datalog" `Quick test_ptime_theory_is_datalog;
    Alcotest.test_case "PTime baseline simulates the machine" `Quick test_ptime_simulation;
    Alcotest.test_case "PTime baseline time budget" `Quick test_ptime_time_budget_matters;
  ]
