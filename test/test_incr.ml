(** The incremental maintenance subsystem (lib/incr): unit tests for
    each maintenance path — counting on nonrecursive strata, DRed on
    recursive ones, fallback recompute when negated relations change,
    ACDom upkeep — plus the oracle property: over random update
    schedules, the maintained materialization is set-equal to
    from-scratch semi-naive evaluation after every batch, with and
    without a worker pool. *)

open Guarded_core
open Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Seminaive = Guarded_datalog.Seminaive
module Stratified = Guarded_datalog.Stratified
module Pool = Guarded_par.Pool

let theory = Helpers.theory
let db = Helpers.db
let atom = Helpers.atom

let delta ?(add = []) ?(del = []) () =
  Delta.of_lists ~additions:(List.map atom add) ~deletions:(List.map atom del)

let check_db = Alcotest.check (Alcotest.testable Database.pp Database.equal)

(* ------------------------------------------------------------------ *)
(* Delta parsing                                                       *)

let test_delta_parse () =
  let d = Delta.of_string "+p(a).\n# comment\n% another\n\n-r(a, b)\n+s(c)." in
  Alcotest.(check int) "size" 3 (Delta.size d);
  Alcotest.(check bool) "adds" true (List.map Atom.to_string d.Delta.additions = [ "p(a)"; "s(c)" ]);
  Alcotest.(check bool) "dels" true (List.map Atom.to_string d.Delta.deletions = [ "r(a, b)" ]);
  Alcotest.check_raises "bad line" (Failure "Delta.parse_line: expected +fact or -fact, got \"p(a).\"")
    (fun () -> ignore (Delta.of_string "p(a)."));
  Alcotest.(check bool) "non-ground rejected" true
    (match Delta.add_fact Delta.empty (atom "p(X)") with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Counting maintenance (nonrecursive strata)                          *)

(* Two derivations of q(a): deleting one support keeps the fact, the
   second deletion removes it through a cascade. *)
let test_counting_shared_support () =
  let sigma = theory "r(X, Y) -> p(X). p(X) -> q(X)." in
  let m = Incr.materialize sigma (db "r(a, b). r(a, c).") in
  Alcotest.(check bool) "q(a) in" true (Database.mem (Incr.db m) (atom "q(a)"));
  let res = Incr.apply m (delta ~del:[ "r(a, b)" ] ()) in
  Alcotest.(check int) "first deletion: net removals" 1 res.Incr.res_removed;
  Alcotest.(check bool) "q(a) survives" true (Database.mem (Incr.db m) (atom "q(a)"));
  let res = Incr.apply m (delta ~del:[ "r(a, c)" ] ()) in
  Alcotest.(check bool) "q(a) gone" false (Database.mem (Incr.db m) (atom "q(a)"));
  Alcotest.(check int) "cascade removed r, p, q" 3 res.Incr.res_removed

(* A derived fact that is also an input fact keeps its input support
   when the derivation dies, and its derived support when the input
   goes. *)
let test_counting_input_and_derived () =
  let sigma = theory "r(X, Y) -> p(X)." in
  let m = Incr.materialize sigma (db "r(a, b). p(a).") in
  ignore (Incr.apply m (delta ~del:[ "r(a, b)" ] ()));
  Alcotest.(check bool) "input support holds" true (Database.mem (Incr.db m) (atom "p(a)"));
  ignore (Incr.apply m (delta ~add:[ "r(a, b)" ] ~del:[ "p(a)" ] ()));
  Alcotest.(check bool) "derived support holds" true (Database.mem (Incr.db m) (atom "p(a)"));
  ignore (Incr.apply m (delta ~del:[ "r(a, b)" ] ()));
  Alcotest.(check bool) "no support left" false (Database.mem (Incr.db m) (atom "p(a)"))

(* ------------------------------------------------------------------ *)
(* DRed maintenance (recursive strata)                                 *)

let path_sigma = "e(X, Y) -> path(X, Y). e(X, Y), path(Y, Z) -> path(X, Z)."

let test_dred_transitive_closure () =
  let sigma = theory path_sigma in
  let m = Incr.materialize sigma (db "e(a, b). e(b, c). e(c, d). e(a, c).") in
  Alcotest.(check bool) "path(a,d) in" true (Database.mem (Incr.db m) (atom "path(a, d)"));
  (* Deleting e(b,c) overdeletes path(b,c)/path(a,c)/... but the
     rederivation restores everything still reachable via e(a,c). *)
  ignore (Incr.apply m (delta ~del:[ "e(b, c)" ] ()));
  let oracle = Seminaive.eval sigma (db "e(a, b). e(c, d). e(a, c).") in
  check_db "after edge deletion" oracle (Incr.db m);
  Alcotest.(check bool) "path(a,d) survives" true (Database.mem (Incr.db m) (atom "path(a, d)"));
  Alcotest.(check bool) "path(b,c) gone" false (Database.mem (Incr.db m) (atom "path(b, c)"));
  (* Insertions ride the plain delta cascade. *)
  ignore (Incr.apply m (delta ~add:[ "e(d, a)" ] ()));
  let oracle = Seminaive.eval sigma (db "e(a, b). e(c, d). e(a, c). e(d, a).") in
  check_db "after edge insertion" oracle (Incr.db m)

(* A cycle supports itself: DRed must not let it survive the loss of
   its external support (the classic counting counterexample). *)
let test_dred_cycle_unsupported () =
  let sigma = theory path_sigma in
  let m = Incr.materialize sigma (db "e(a, a).") in
  Alcotest.(check bool) "loop in" true (Database.mem (Incr.db m) (atom "path(a, a)"));
  ignore (Incr.apply m (delta ~del:[ "e(a, a)" ] ()));
  Alcotest.(check int) "empty" 0 (Database.cardinal (Incr.db m))

(* ------------------------------------------------------------------ *)
(* Stratified negation: updates to a negated relation recompute the
   stratum (fallback path) and the result matches the stratified
   chase. *)

let strat_sigma = "r(X, Y) -> p(X). s(X), not p(X) -> q(X)."

let strat_oracle edb_text =
  (Stratified.chase (theory strat_sigma) (db edb_text)).Stratified.db

let test_negation_fallback () =
  let sigma = theory strat_sigma in
  let m = Incr.materialize sigma (db "s(a). s(b). r(b, b).") in
  check_db "initial" (strat_oracle "s(a). s(b). r(b, b).") (Incr.db m);
  Alcotest.(check bool) "q(a) in" true (Database.mem (Incr.db m) (atom "q(a)"));
  (* p(a) appears -> the q stratum must retract q(a). *)
  let res = Incr.apply m (delta ~add:[ "r(a, c)" ] ()) in
  Alcotest.(check bool) "fallback ran" true (res.Incr.res_fallback_strata > 0);
  check_db "after add" (strat_oracle "s(a). s(b). r(b, b). r(a, c).") (Incr.db m);
  Alcotest.(check bool) "q(a) retracted" false (Database.mem (Incr.db m) (atom "q(a)"));
  (* p(b) disappears -> q(b) must appear. *)
  ignore (Incr.apply m (delta ~del:[ "r(b, b)" ] ()));
  check_db "after delete" (strat_oracle "s(a). s(b). r(a, c).") (Incr.db m);
  Alcotest.(check bool) "q(b) derived" true (Database.mem (Incr.db m) (atom "q(b)"))

(* ------------------------------------------------------------------ *)
(* ACDom maintenance                                                   *)

let acdom_sigma = "p(X), ACDom(Y) -> r(X, Y)."

let test_acdom_maintenance () =
  let sigma = theory acdom_sigma in
  let m = Incr.materialize sigma (db "p(a). s(b).") in
  let oracle edb_text = Seminaive.eval (theory acdom_sigma) (db edb_text) in
  check_db "initial" (oracle "p(a). s(b).") (Incr.db m);
  (* b's last occurrence goes away: ACDom(b) and r(a,b) must retract. *)
  ignore (Incr.apply m (delta ~del:[ "s(b)" ] ()));
  check_db "domain shrinks" (oracle "p(a).") (Incr.db m);
  Alcotest.(check bool) "r(a,b) gone" false (Database.mem (Incr.db m) (atom "r(a, b)"));
  (* A new constant enters the domain through any relation. *)
  ignore (Incr.apply m (delta ~add:[ "e(c, c)" ] ()));
  check_db "domain grows" (oracle "p(a). e(c, c).") (Incr.db m);
  Alcotest.(check bool) "r(a,c) derived" true (Database.mem (Incr.db m) (atom "r(a, c)"))

(* ------------------------------------------------------------------ *)
(* Serving the paper's Example 7 through the translation              *)

let test_serve_example7 () =
  let tr = Guarded_translate.Pipeline.to_datalog (Helpers.example7_theory ()) in
  let program = tr.Guarded_translate.Pipeline.datalog in
  let m = Incr.materialize program (db "a(k). c(k). a(m).") in
  let oracle edb_text = Seminaive.answers program (db edb_text) ~query:"d" in
  Helpers.check_answers "initial" (oracle "a(k). c(k). a(m).") (Incr.answers m ~query:"d");
  ignore (Incr.apply m (delta ~add:[ "c(m)" ] ()));
  Helpers.check_answers "after +c(m)" (oracle "a(k). c(k). a(m). c(m).") (Incr.answers m ~query:"d");
  ignore (Incr.apply m (delta ~del:[ "a(k)" ] ()));
  Helpers.check_answers "after -a(k)" (oracle "c(k). a(m). c(m).") (Incr.answers m ~query:"d");
  Helpers.check_answers "d tuples" (Helpers.tuples "m") (Incr.answers m ~query:"d")

(* CQ answering straight off the materialization. *)
let test_cq_answers () =
  let sigma = theory path_sigma in
  let m = Incr.materialize sigma (db "e(a, b). e(b, c).") in
  let q, _ = Guarded_cq.Cq.of_string "path(X, Y), path(Y, Z) -> two(X, Z)." in
  Helpers.check_answers "two-hop pairs" (Helpers.tuples "a, c")
    (Incr.cq_answers m ~body:q.Guarded_cq.Cq.body ~answer_vars:q.Guarded_cq.Cq.answer_vars)

(* Batch semantics: a fact deleted and added in the same batch stays; a
   fact added and deleted in two batches round-trips; refresh is a
   no-op on a consistent materialization. *)
let test_batch_semantics_and_refresh () =
  let sigma = theory path_sigma in
  let m = Incr.materialize sigma (db "e(a, b).") in
  let res = Incr.apply m (delta ~add:[ "e(a, b)" ] ~del:[ "e(a, b)" ] ()) in
  Alcotest.(check int) "wash batch adds nothing" 0 res.Incr.res_added;
  Alcotest.(check int) "wash batch removes nothing" 0 res.Incr.res_removed;
  Alcotest.(check bool) "fact still in" true (Database.mem (Incr.db m) (atom "e(a, b)"));
  let before = Database.copy (Incr.db m) in
  Incr.refresh m;
  check_db "refresh is the identity" before (Incr.db m)

(* ------------------------------------------------------------------ *)
(* The oracle property: maintained = from-scratch after every batch    *)

let gen_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 4) gen_fact) (list_size (int_range 0 4) gen_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let gen_schedule = QCheck.Gen.(list_size (int_range 1 4) gen_delta)

let print_case (sigma, d, schedule) =
  Fmt.str "%s@.---@.%a@.---@.%a" (Theory.to_string sigma) Database.pp d
    (Fmt.list ~sep:(Fmt.any "@.===@.") Delta.pp)
    schedule

let arbitrary_case arb_theory =
  QCheck.make ~print:print_case
    QCheck.Gen.(triple (QCheck.gen arb_theory) (gen_db ()) gen_schedule)

(* Run one schedule: apply every batch to the materialization and to a
   plain reference EDB, and demand set-equality with the from-scratch
   fixpoint (and EDB agreement) after every single batch. *)
let check_schedule ?pool (sigma, db0, schedule) =
  let m = Incr.materialize ?pool sigma db0 in
  let reference = Database.copy db0 in
  List.for_all
    (fun (d : Delta.t) ->
      ignore (Incr.apply m d);
      List.iter (fun f -> ignore (Database.remove reference f)) d.Delta.deletions;
      List.iter (fun f -> ignore (Database.add reference f)) d.Delta.additions;
      Database.equal (Incr.edb m) reference
      && Database.equal (Incr.db m) (Seminaive.eval ?pool sigma reference))
    schedule

let prop_oracle_datalog =
  QCheck.Test.make ~count:80 ~name:"incremental = from-scratch (recursive Datalog schedules)"
    (arbitrary_case arbitrary_datalog) check_schedule

let prop_oracle_semipositive =
  QCheck.Test.make ~count:80 ~name:"incremental = from-scratch (semipositive schedules)"
    (arbitrary_case arbitrary_semipositive) check_schedule

(* The same schedules through the pool runtime: parallel insertion
   rounds and seeded-instance enumeration must maintain the same set. *)
let pool = lazy (Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true ())

let prop_oracle_datalog_pool =
  QCheck.Test.make ~count:40 ~name:"incremental = from-scratch (Datalog schedules, pool)"
    (arbitrary_case arbitrary_datalog) (fun case ->
      check_schedule ~pool:(Lazy.force pool) case)

let prop_oracle_semipositive_pool =
  QCheck.Test.make ~count:40 ~name:"incremental = from-scratch (semipositive schedules, pool)"
    (arbitrary_case arbitrary_semipositive) (fun case ->
      check_schedule ~pool:(Lazy.force pool) case)

let suite =
  [
    Alcotest.test_case "delta parsing" `Quick test_delta_parse;
    Alcotest.test_case "counting: shared support" `Quick test_counting_shared_support;
    Alcotest.test_case "counting: input + derived support" `Quick test_counting_input_and_derived;
    Alcotest.test_case "dred: transitive closure" `Quick test_dred_transitive_closure;
    Alcotest.test_case "dred: self-supporting cycle dies" `Quick test_dred_cycle_unsupported;
    Alcotest.test_case "negation fallback" `Quick test_negation_fallback;
    Alcotest.test_case "acdom maintenance" `Quick test_acdom_maintenance;
    Alcotest.test_case "serve example 7" `Quick test_serve_example7;
    Alcotest.test_case "cq answers" `Quick test_cq_answers;
    Alcotest.test_case "batch semantics + refresh" `Quick test_batch_semantics_and_refresh;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_oracle_datalog;
        prop_oracle_semipositive;
        prop_oracle_datalog_pool;
        prop_oracle_semipositive_pool;
      ]
