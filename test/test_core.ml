(** Unit tests for the core data structures: terms, atoms, literals,
    substitutions, rules, theories, parsing and printing. *)

open Guarded_core

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstring = Alcotest.string

(* --- terms ---------------------------------------------------------- *)

let test_term_compare () =
  check cbool "const < null" true (Term.compare (Const "z") (Null 0) < 0);
  check cbool "null < var" true (Term.compare (Null 5) (Var "a") < 0);
  check cbool "const order" true (Term.compare (Const "a") (Const "b") < 0);
  check cbool "equal" true (Term.equal (Null 3) (Null 3));
  check cbool "not equal" false (Term.equal (Var "x") (Const "x"))

let test_term_predicates () =
  check cbool "is_const" true (Term.is_const (Const "c"));
  check cbool "is_null" true (Term.is_null (Null 1));
  check cbool "is_var" true (Term.is_var (Var "x"));
  check cbool "ground const" true (Term.is_ground (Const "c"));
  check cbool "ground null" true (Term.is_ground (Null 0));
  check cbool "var not ground" false (Term.is_ground (Var "x"))

let test_term_pp () =
  check cstring "const" "c" (Term.to_string (Const "c"));
  check cstring "null" "_n4" (Term.to_string (Null 4));
  check cstring "var" "?x" (Term.to_string (Var "x"))

(* --- atoms ---------------------------------------------------------- *)

let test_atom_basics () =
  let a = Atom.make "r" [ Term.Var "x"; Term.Const "c" ] in
  check cint "arity" 2 (Atom.arity a);
  check (Alcotest.list cstring) "vars" [ "x" ] (Atom.vars a);
  check (Alcotest.list cstring) "constants" [ "c" ] (Atom.constants a);
  check cbool "not ground" false (Atom.is_ground a);
  check cbool "ground" true (Atom.is_ground (Atom.make "r" [ Term.Const "a"; Term.Null 0 ]))

let test_atom_annotation () =
  let a = Atom.make ~ann:[ Term.Var "u" ] "r" [ Term.Var "x" ] in
  check cstring "pp" "r[?u](?x)" (Atom.to_string a);
  check (Alcotest.list cstring) "all vars include annotation" [ "u"; "x" ]
    (List.sort compare (Atom.vars a));
  check (Alcotest.list cstring) "arg vars exclude annotation" [ "x" ] (Atom.arg_vars a);
  check cbool "distinct rel keys" true (Atom.rel_key a <> Atom.rel_key (Atom.make "r" [ Term.Var "x" ]))

let test_atom_map_terms () =
  let a = Atom.make ~ann:[ Term.Var "u" ] "r" [ Term.Var "x" ] in
  let a' = Atom.map_terms (fun _ -> Term.Const "k") a in
  check cstring "mapped" "r[k](k)" (Atom.to_string a')

(* --- substitutions -------------------------------------------------- *)

let test_subst_apply () =
  let s = Subst.of_list [ ("x", Term.Const "a"); ("y", Term.Null 7) ] in
  let a = Atom.make "r" [ Term.Var "x"; Term.Var "y"; Term.Var "z" ] in
  check cstring "apply" "r(a, _n7, ?z)" (Atom.to_string (Subst.apply_atom s a))

let test_subst_compose () =
  let s1 = Subst.of_list [ ("x", Term.Var "y") ] in
  let s2 = Subst.of_list [ ("y", Term.Const "c") ] in
  let s = Subst.compose s1 s2 in
  check cstring "x goes through" "c" (Term.to_string (Subst.apply_term s (Term.Var "x")));
  check cstring "y direct" "c" (Term.to_string (Subst.apply_term s (Term.Var "y")))

let test_subst_match_atom () =
  let pat = Atom.make "r" [ Term.Var "x"; Term.Var "x"; Term.Const "c" ] in
  let good = Atom.make "r" [ Term.Const "a"; Term.Const "a"; Term.Const "c" ] in
  let bad = Atom.make "r" [ Term.Const "a"; Term.Const "b"; Term.Const "c" ] in
  check cbool "match ok" true (Subst.match_atom Subst.empty pat good <> None);
  check cbool "repetition enforced" true (Subst.match_atom Subst.empty pat bad = None);
  let wrong_const = Atom.make "r" [ Term.Const "a"; Term.Const "a"; Term.Const "d" ] in
  check cbool "constant enforced" true (Subst.match_atom Subst.empty pat wrong_const = None)

(* --- rules ---------------------------------------------------------- *)

let test_rule_vars () =
  let r = Helpers.rule "r(X, Y), s(Y, Z) -> exists W. t(Z, W)." in
  check (Alcotest.list cstring) "uvars" [ "X"; "Y"; "Z" ] (Names.Sset.elements (Rule.uvars r));
  check (Alcotest.list cstring) "evars" [ "W" ] (Names.Sset.elements (Rule.evars r));
  check (Alcotest.list cstring) "frontier" [ "Z" ] (Names.Sset.elements (Rule.fvars r));
  check cbool "not datalog" false (Rule.is_datalog r)

let test_rule_safety () =
  let bad () = Helpers.rule "r(X) -> s(X, Y)." in
  Alcotest.check_raises "unsafe head var" (Rule.Ill_formed "unsafe rule: frontier variable Y not in a positive body atom")
    (fun () -> ignore (bad ()));
  let bad_evar () = Helpers.rule "r(X) -> exists X. s(X)." in
  (match bad_evar () with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "existential variable in body accepted")

let test_rule_neg_safety () =
  match Helpers.rule "r(X), not s(Y) -> t(X)." with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "unsafe negation accepted"

let test_rule_apply () =
  let r = Helpers.rule "r(X, Y) -> exists Z. t(Y, Z)." in
  let s = Subst.of_list [ ("X", Term.Const "a"); ("Y", Term.Const "b") ] in
  let r' = Rule.apply s r in
  check cstring "applied" "r(a, b) -> exists ?Z. t(b, ?Z)" (Rule.to_string r');
  (* capture avoidance: substituting Y := Z must rename the existential Z *)
  let s2 = Subst.of_list [ ("Y", Term.Var "Z") ] in
  let r2 = Rule.apply s2 r in
  check cbool "no capture" false (Names.Sset.mem "Z" (Rule.fvars r2) && Names.Sset.mem "Z" (Rule.evars r2))

let test_rule_canonicalize () =
  let r1 = Helpers.rule "r(A, B), s(B, C) -> t(C)." in
  let r2 = Helpers.rule "r(X, Y), s(Y, Z) -> t(Z)." in
  check cstring "canonical forms equal"
    (Rule.to_string (Rule.canonicalize r1))
    (Rule.to_string (Rule.canonicalize r2));
  let r3 = Helpers.rule "r(A, B), s(B, C) -> t(B)." in
  check cbool "different rules differ" true
    (Rule.to_string (Rule.canonicalize r1) <> Rule.to_string (Rule.canonicalize r3))

let test_rule_rename_apart () =
  let g = Names.gensym "fresh" in
  let r = Helpers.rule "r(X, Y) -> exists Z. t(Y, Z)." in
  let r' = Rule.rename_apart g r in
  check cbool "variables disjoint" true
    (Names.Sset.is_empty (Names.Sset.inter (Rule.vars r) (Rule.vars r')));
  check cstring "same canonical form"
    (Rule.to_string (Rule.canonicalize r))
    (Rule.to_string (Rule.canonicalize r'))

(* --- theory --------------------------------------------------------- *)

let test_theory_signature () =
  let sigma = Helpers.publications_theory () in
  check cint "rules" 4 (Theory.size sigma);
  check cint "max arity" 3 (Theory.max_arity sigma);
  check cbool "has keywords/3" true
    (Theory.Rel_set.mem ("keywords", 0, 3) (Theory.relations sigma));
  check cbool "not datalog" false (Theory.is_datalog sigma);
  check cint "max vars per rule" 5 (Theory.max_vars_per_rule sigma)

let test_theory_edb () =
  let sigma = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  check cbool "e is edb" true (Theory.Rel_set.mem ("e", 0, 2) (Theory.edb_relations sigma));
  check cbool "tc is idb" false (Theory.Rel_set.mem ("tc", 0, 2) (Theory.edb_relations sigma))

let test_theory_dedup () =
  let sigma =
    Helpers.theory "r(X, Y) -> s(X). r(A, B) -> s(A). r(X, Y) -> s(Y)."
  in
  check cint "variants collapse" 2 (Theory.size (Theory.dedup sigma))

(* --- parser round trips --------------------------------------------- *)

let test_parser_roundtrip () =
  let texts =
    [
      "r(X, Y), s(Y) -> exists Z. t(X, Z).";
      "-> r(c).";
      "true -> r(c).";
      "r(X), not s(X) -> t(X).";
      "r[A, B](X) -> s[A](X).";
      "r(X) -> q().";
    ]
  in
  List.iter
    (fun text ->
      let r = Helpers.rule text in
      let r' = Helpers.rule (Rule.to_string r ^ ".") in
      check cstring (Fmt.str "round trip %s" text)
        (Rule.to_string (Rule.canonicalize r))
        (Rule.to_string (Rule.canonicalize r')))
    texts

let test_parser_errors () =
  let bad = [ "r(X -> s(X)."; "r(X) - s(X)."; "r(X) -> s(X)"; "'unterminated" ] in
  List.iter
    (fun text ->
      match Helpers.rule text with
      | exception Parser.Parse_error _ -> ()
      | exception Rule.Ill_formed _ -> ()
      | _ -> Alcotest.failf "accepted %S" text)
    bad

let test_parser_database () =
  let d = Helpers.db "r(a, b). s(_n3). t()." in
  check cint "three facts" 3 (Database.cardinal d);
  check cbool "null parsed" true (Database.mem d (Atom.make "s" [ Term.Null 3 ]));
  (match Helpers.db "r(X)." with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "non-ground database accepted")

let test_parser_datalog_style () =
  (* "head :- body." and bare facts parse to the same rules *)
  let r1 = Helpers.rule "tc(X, Z) :- tc(X, Y), e(Y, Z)." in
  let r2 = Helpers.rule "tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  check cstring "same rule"
    (Rule.to_string (Rule.canonicalize r2))
    (Rule.to_string (Rule.canonicalize r1));
  let fact = Helpers.rule "r(c)." in
  check cstring "bare fact" "true -> r(c)" (Rule.to_string fact);
  let neg = Helpers.rule "ok(X) :- node(X), not bad(X)." in
  check cbool "negation in :- body" true (List.length (Rule.neg_body_atoms neg) = 1);
  (match Helpers.rule "r(X) :- s(X) -> t(X)." with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "mixed syntaxes accepted")

let test_parser_quoted () =
  let a = Helpers.atom "r('hello world', X)" in
  check (Alcotest.list cstring) "quoted constant" [ "hello world" ] (Atom.constants a)

(* --- database ------------------------------------------------------- *)

let test_database_ops () =
  let d = Database.create () in
  let a = Atom.make "r" [ Term.Const "a"; Term.Const "b" ] in
  check cbool "add new" true (Database.add d a);
  check cbool "add duplicate" false (Database.add d a);
  check cint "cardinal" 1 (Database.cardinal d);
  check cbool "mem" true (Database.mem d a);
  let copy = Database.copy d in
  ignore (Database.add copy (Atom.make "s" [ Term.Const "c" ]));
  check cint "copy isolated" 1 (Database.cardinal d);
  check cbool "equal reflexive" true (Database.equal d d);
  check cbool "not equal" false (Database.equal d copy)

let test_database_candidates () =
  let d = Helpers.db "r(a, b). r(a, c). r(b, c). s(a)." in
  let pattern = Atom.make "r" [ Term.Const "a"; Term.Var "x" ] in
  check cint "indexed lookup" 2 (List.length (Database.candidates d pattern));
  let pattern_all = Atom.make "r" [ Term.Var "x"; Term.Var "y" ] in
  check cint "full relation" 3 (List.length (Database.candidates d pattern_all))

let test_database_acdom () =
  let d = Helpers.db "r(a, b). s(c)." in
  Database.materialize_acdom d;
  check cint "three ACDom facts" 3
    (Database.rel_cardinal d (Database.acdom_rel, 0, 1));
  (* re-materializing is idempotent and ACDom terms are not in the
     active domain themselves *)
  Database.materialize_acdom d;
  check cint "idempotent" 3 (Database.rel_cardinal d (Database.acdom_rel, 0, 1))

(* Interleaved add/remove must keep every index consistent: candidate
   streams never yield removed facts, estimates track the true bucket
   sizes, and re-adding after removal behaves like a fresh add. *)
let test_database_remove () =
  let d = Helpers.db "r(a, b). r(a, c). r(b, c). s(a)." in
  let rab = Helpers.atom "r(a, b)" in
  check cbool "remove present" true (Database.remove d rab);
  check cbool "remove again" false (Database.remove d rab);
  check cbool "remove absent" false (Database.remove d (Helpers.atom "r(z, z)"));
  check cint "cardinal" 3 (Database.cardinal d);
  check cbool "mem gone" false (Database.mem d rab);
  let pattern = Atom.make "r" [ Term.Const "a"; Term.Var "x" ] in
  check cint "positional bucket shrank" 1 (Database.candidate_count d pattern);
  check cint "candidates shrank" 1 (List.length (Database.candidates d pattern));
  (* swap-removal moved another fact into the hole: iteration must see
     exactly the remaining facts, no stale entry, no omission *)
  let seen = ref [] in
  Database.iter (fun a -> seen := Atom.to_string a :: !seen) d;
  check (Alcotest.list cstring) "iteration after removal"
    [ "r(a, c)"; "r(b, c)"; "s(a)" ]
    (List.sort String.compare !seen);
  check cbool "re-add" true (Database.add d rab);
  check cint "positional bucket restored" 2 (Database.candidate_count d pattern)

(* A randomized interleaving of adds and removes, cross-checked against
   a reference set: candidate streams must coincide with a full scan at
   every step. *)
let test_database_add_remove_interleaved () =
  let d = Database.create () in
  let reference = Hashtbl.create 64 in
  let rng = Random.State.make [| 0x1ceb00da |] in
  let consts = [| "a"; "b"; "c" |] in
  let random_fact () =
    Atom.make "r"
      [
        Term.Const consts.(Random.State.int rng 3);
        Term.Const consts.(Random.State.int rng 3);
      ]
  in
  for _ = 1 to 500 do
    let a = random_fact () in
    if Random.State.bool rng then begin
      check cbool "add agrees" (not (Hashtbl.mem reference a)) (Database.add d a);
      Hashtbl.replace reference a ()
    end
    else begin
      check cbool "remove agrees" (Hashtbl.mem reference a) (Database.remove d a);
      Hashtbl.remove reference a
    end;
    check cint "cardinal agrees" (Hashtbl.length reference) (Database.cardinal d);
    (* every candidate stream yields exactly the live matching facts *)
    Array.iter
      (fun c ->
        let pattern = Atom.make "r" [ Term.Const c; Term.Var "x" ] in
        let streamed = ref [] in
        Database.iter_candidates d pattern (fun a -> streamed := a :: !streamed);
        let expected =
          Hashtbl.fold
            (fun a () acc ->
              match Atom.args a with
              | Term.Const c0 :: _ when String.equal c0 c -> a :: acc
              | _ -> acc)
            reference []
        in
        check cint "stream size" (List.length expected) (List.length !streamed);
        List.iter
          (fun a -> check cbool "stream is live" true (Hashtbl.mem reference a))
          !streamed)
      consts
  done

let test_database_epoch_rollback () =
  let d = Helpers.db "r(a, b). s(a)." in
  Database.enable_journal d;
  let e0 = Database.epoch d in
  ignore (Database.add d (Helpers.atom "r(b, c)"));
  ignore (Database.remove d (Helpers.atom "s(a)"));
  let e1 = Database.epoch d in
  ignore (Database.add d (Helpers.atom "s(b)"));
  Database.rollback d e1;
  check cbool "rollback to e1: s(b) undone" false (Database.mem d (Helpers.atom "s(b)"));
  check cbool "rollback to e1: r(b, c) kept" true (Database.mem d (Helpers.atom "r(b, c)"));
  Database.rollback d e0;
  check cbool "rollback to e0: r(b, c) undone" false (Database.mem d (Helpers.atom "r(b, c)"));
  check cbool "rollback to e0: s(a) restored" true (Database.mem d (Helpers.atom "s(a)"));
  check cint "rollback to e0: original facts" 2 (Database.cardinal d);
  (* a no-op mutation does not advance the epoch *)
  ignore (Database.add d (Helpers.atom "s(a)"));
  check cbool "duplicate add keeps epoch" true (Database.epoch d = e0);
  match Database.rollback d e1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "rollback into the future accepted"

let test_database_non_ground_rejected () =
  let d = Database.create () in
  match Database.add d (Atom.make "r" [ Term.Var "x" ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-ground atom accepted"

(* --- homomorphisms -------------------------------------------------- *)

let test_homomorphism_all () =
  let d = Helpers.db "e(a, b). e(b, c). e(c, a)." in
  let body = [ Helpers.atom "e(X, Y)"; Helpers.atom "e(Y, Z)" ] in
  check cint "paths of length 2" 3 (List.length (Homomorphism.all body d));
  let triangle = [ Helpers.atom "e(X, Y)"; Helpers.atom "e(Y, Z)"; Helpers.atom "e(Z, X)" ] in
  check cint "triangles" 3 (List.length (Homomorphism.all triangle d))

let test_homomorphism_constants () =
  let d = Helpers.db "e(a, b). e(b, c)." in
  let body = [ Helpers.atom "e(a, X)" ] in
  check cint "constant anchored" 1 (List.length (Homomorphism.all body d))

let test_homomorphism_empty_body () =
  let d = Helpers.db "e(a, b)." in
  check cint "empty body has one hom" 1 (List.length (Homomorphism.all [] d))

let test_homomorphism_negative () =
  let d = Helpers.db "e(a, b). e(b, c). mark(b)." in
  let lits =
    [ Literal.Pos (Helpers.atom "e(X, Y)"); Literal.Neg (Helpers.atom "mark(X)") ]
  in
  let homs = Homomorphism.all_literals lits d in
  check cint "negation filters" 1 (List.length homs)

let suite =
  [
    Alcotest.test_case "term compare" `Quick test_term_compare;
    Alcotest.test_case "term predicates" `Quick test_term_predicates;
    Alcotest.test_case "term printing" `Quick test_term_pp;
    Alcotest.test_case "atom basics" `Quick test_atom_basics;
    Alcotest.test_case "atom annotation" `Quick test_atom_annotation;
    Alcotest.test_case "atom map_terms" `Quick test_atom_map_terms;
    Alcotest.test_case "subst apply" `Quick test_subst_apply;
    Alcotest.test_case "subst compose" `Quick test_subst_compose;
    Alcotest.test_case "subst match_atom" `Quick test_subst_match_atom;
    Alcotest.test_case "rule variable sets" `Quick test_rule_vars;
    Alcotest.test_case "rule safety" `Quick test_rule_safety;
    Alcotest.test_case "rule negation safety" `Quick test_rule_neg_safety;
    Alcotest.test_case "rule apply" `Quick test_rule_apply;
    Alcotest.test_case "rule canonicalize" `Quick test_rule_canonicalize;
    Alcotest.test_case "rule rename apart" `Quick test_rule_rename_apart;
    Alcotest.test_case "theory signature" `Quick test_theory_signature;
    Alcotest.test_case "theory edb split" `Quick test_theory_edb;
    Alcotest.test_case "theory dedup" `Quick test_theory_dedup;
    Alcotest.test_case "parser round trips" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "parser database" `Quick test_parser_database;
    Alcotest.test_case "parser quoted constants" `Quick test_parser_quoted;
    Alcotest.test_case "parser datalog style" `Quick test_parser_datalog_style;
    Alcotest.test_case "database operations" `Quick test_database_ops;
    Alcotest.test_case "database candidates" `Quick test_database_candidates;
    Alcotest.test_case "database ACDom" `Quick test_database_acdom;
    Alcotest.test_case "database removal" `Quick test_database_remove;
    Alcotest.test_case "database add/remove interleaved" `Quick test_database_add_remove_interleaved;
    Alcotest.test_case "database epoch rollback" `Quick test_database_epoch_rollback;
    Alcotest.test_case "database rejects non-ground" `Quick test_database_non_ground_rejected;
    Alcotest.test_case "homomorphism enumeration" `Quick test_homomorphism_all;
    Alcotest.test_case "homomorphism with constants" `Quick test_homomorphism_constants;
    Alcotest.test_case "homomorphism empty body" `Quick test_homomorphism_empty_body;
    Alcotest.test_case "homomorphism negative literals" `Quick test_homomorphism_negative;
  ]
