(** Tests for conjunctive query answering over rule-enriched databases
    (Section 7). *)

open Guarded_core
module Cq = Guarded_cq.Cq
module Answer = Guarded_cq.Answer

let check = Alcotest.check
let cbool = Alcotest.bool

let test_cq_parse () =
  let q, head_rel = Cq.of_string "r(X, Z), s(Z, Y) -> q(X, Y)." in
  check (Alcotest.list Alcotest.string) "answer vars" [ "X"; "Y" ] q.Cq.answer_vars;
  check Alcotest.string "head relation" "q" head_rel;
  check Alcotest.int "two body atoms" 2 (List.length q.Cq.body)

let test_cq_rule_is_wfg () =
  (* The ACDom-guarded query rule is weakly frontier-guarded in any
     enriched theory (Section 7). *)
  let q, _ = Cq.of_string "e(X, Y), e(Y, Z) -> q(X, Z)." in
  let rule = Cq.to_rule q ~query_rel:"q" in
  let sigma = Theory.of_rules (Theory.rules (Helpers.publications_theory ()) @ [ rule ]) in
  check cbool "combined theory WFG" true (Classify.is_weakly_frontier_guarded sigma)

let test_cq_over_datalog () =
  let sigma = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  let d = Helpers.db "e(a, b). e(b, c)." in
  let q, _ = Cq.of_string "tc(X, Y), tc(Y, Z) -> q(X, Z)." in
  Helpers.check_answers "two-hop tc" (Helpers.tuples "a,c")
    (Answer.certain_answers sigma q d)

let test_cq_matches_nulls () =
  (* Certain answers may be witnessed by labeled nulls: the existential
     keywords of p1 satisfy the query without appearing in the answer. *)
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let q, _ = Cq.of_string "keywords(P, K1, K2), hasTopic(P, K1) -> q(P)." in
  Helpers.check_answers "null witnesses" (Helpers.tuples "p1") (Answer.certain_answers sigma q d);
  (* the chase-based oracle agrees *)
  let via_chase, outcome = Answer.answers_via_chase sigma q d in
  check cbool "chase saturated" true (outcome = Guarded_chase.Engine.Saturated);
  Helpers.check_answers "oracle agrees" (Helpers.tuples "p1") via_chase

let test_cq_boolean () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let q = Cq.make [ Helpers.atom "scientific(T)" ] ~answer_vars:[] in
  check cbool "boolean query holds" true (Answer.certain sigma q d);
  let q2 = Cq.make [ Helpers.atom "citedIn(X, Y)" ] ~answer_vars:[] in
  check cbool "boolean query fails" false (Answer.certain sigma q2 d)

let test_cq_over_wg () =
  (* A conjunctive query over a weakly guarded theory goes through the
     five-step procedure of Section 7: out(n, b) is witnessed by a null
     n, and the certain answer projects the constant side. *)
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a). anchor(b)." in
  let q, _ = Cq.of_string "out(X, Y) -> q(Y)." in
  Helpers.check_answers "out witnessed by a null" (Helpers.tuples "b")
    (Answer.certain_answers sigma q d)

let test_cq_answer_vars_constants_only () =
  let sigma = Helpers.theory "p(X) -> exists Y. r(X, Y)." in
  let d = Helpers.db "p(a)." in
  let q, _ = Cq.of_string "r(X, Y) -> q(X, Y)." in
  (* Y is only ever a null, so there is no certain answer. *)
  Helpers.check_answers "no certain tuple" [] (Answer.certain_answers sigma q d)

(* --- cores and containment ---------------------------------------------- *)

let test_core_collapses_redundant_atoms () =
  let q, _ = Cq.of_string "e(X, Y), e(X, Z) -> q(X)." in
  let c = Guarded_cq.Minimize.core q in
  check Alcotest.int "one atom survives" 1 (List.length c.Cq.body);
  check cbool "equivalent to the original" true (Guarded_cq.Minimize.equivalent q c)

let test_core_keeps_necessary_atoms () =
  (* a path of length 2 does not retract onto a single edge *)
  let q, _ = Cq.of_string "e(X, Y), e(Y, Z) -> q(X, Z)." in
  let c = Guarded_cq.Minimize.core q in
  check Alcotest.int "nothing dropped" 2 (List.length c.Cq.body);
  (* ... but with a free endpoint the triangle-free shape matters: *)
  let q2, _ = Cq.of_string "e(X, Y), e(X, Y2), e(Y2, Z) -> q(X)." in
  let c2 = Guarded_cq.Minimize.core q2 in
  check Alcotest.int "redundant first edge dropped" 2 (List.length c2.Cq.body)

let test_containment () =
  let path2, _ = Cq.of_string "e(X, Y), e(Y, Z) -> q(X)." in
  let edge, _ = Cq.of_string "e(X, Y) -> q(X)." in
  (* any 2-path answer starts an edge *)
  check cbool "path2 ⊆ edge" true (Guarded_cq.Minimize.contained_in path2 edge);
  check cbool "edge ⊄ path2" false (Guarded_cq.Minimize.contained_in edge path2);
  let self_loop, _ = Cq.of_string "e(X, X) -> q(X)." in
  check cbool "loop ⊆ path2" true (Guarded_cq.Minimize.contained_in self_loop path2);
  check cbool "path2 ⊄ loop" false (Guarded_cq.Minimize.contained_in path2 self_loop)

let test_containment_constants () =
  let q1, _ = Cq.of_string "e(X, c) -> q(X)." in
  let q2, _ = Cq.of_string "e(X, Y) -> q(X)." in
  check cbool "constant query contained in general" true (Guarded_cq.Minimize.contained_in q1 q2);
  check cbool "general not contained in constant" false (Guarded_cq.Minimize.contained_in q2 q1)

let test_core_preserves_answers () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let q, _ = Cq.of_string "keywords(P, K1, K2), hasTopic(P, K1), hasTopic(P, K3) -> q(P)." in
  let c = Guarded_cq.Minimize.core q in
  check cbool "core is smaller" true (List.length c.Cq.body < List.length q.Cq.body);
  Helpers.check_answers "same certain answers"
    (Answer.certain_answers sigma q d)
    (Answer.certain_answers sigma c d)

(* --- unions of conjunctive queries --------------------------------------- *)

let test_ucq_parse_and_answer () =
  let sigma = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  let d = Helpers.db "e(a, b). e(b, c). isolated(z)." in
  let u, rel = Guarded_cq.Ucq.of_string "tc(X, c) -> q(X). ; isolated(X) -> q(X)." in
  check Alcotest.string "head relation" "q" rel;
  Helpers.check_answers "union of answers" (Helpers.tuples "a; b; z")
    (Guarded_cq.Ucq.certain_answers sigma u d)

let test_ucq_containment () =
  let edge, _ = Guarded_cq.Ucq.of_string "e(X, Y) -> q(X)." in
  let both, _ = Guarded_cq.Ucq.of_string "e(X, Y) -> q(X). ; f(X, Y) -> q(X)." in
  check cbool "single ⊆ union" true (Guarded_cq.Ucq.contained_in edge both);
  check cbool "union ⊄ single" false (Guarded_cq.Ucq.contained_in both edge);
  (* a disjunct subsumed by another collapses under containment *)
  let path, _ = Guarded_cq.Ucq.of_string "e(X, Y), e(Y, Z) -> q(X). ; e(X, Y) -> q(X)." in
  check cbool "path∪edge ≡ edge" true (Guarded_cq.Ucq.equivalent path edge)

let test_ucq_minimize () =
  let u, _ =
    Guarded_cq.Ucq.of_string
      "e(X, Y), e(X, Y2) -> q(X). ; e(X, Y) -> q(X). ; e(X, X) -> q(X)."
  in
  let m = Guarded_cq.Ucq.minimize u in
  (* the first disjunct cores to the second, which subsumes both it and
     the self-loop disjunct *)
  check Alcotest.int "one disjunct survives" 1 (List.length m.Guarded_cq.Ucq.disjuncts)

let test_ucq_over_ontology () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let u, _ =
    Guarded_cq.Ucq.of_string
      "scientific(T), hasTopic(P, T), hasAuthor(P, A) -> q(A). ; absentRel(A) -> q(A)."
  in
  Helpers.check_answers "ontology union" (Helpers.tuples "a1; a2")
    (Guarded_cq.Ucq.certain_answers sigma u d)

let suite =
  [
    Alcotest.test_case "cq parsing" `Quick test_cq_parse;
    Alcotest.test_case "query rule is WFG" `Quick test_cq_rule_is_wfg;
    Alcotest.test_case "cq over datalog" `Quick test_cq_over_datalog;
    Alcotest.test_case "cq matched by nulls" `Quick test_cq_matches_nulls;
    Alcotest.test_case "boolean cqs" `Quick test_cq_boolean;
    Alcotest.test_case "cq over weakly guarded rules" `Quick test_cq_over_wg;
    Alcotest.test_case "answers are constant tuples" `Quick test_cq_answer_vars_constants_only;
    Alcotest.test_case "core drops redundant atoms" `Quick test_core_collapses_redundant_atoms;
    Alcotest.test_case "core keeps necessary atoms" `Quick test_core_keeps_necessary_atoms;
    Alcotest.test_case "homomorphic containment" `Quick test_containment;
    Alcotest.test_case "containment with constants" `Quick test_containment_constants;
    Alcotest.test_case "core preserves certain answers" `Quick test_core_preserves_answers;
    Alcotest.test_case "ucq parsing and answers" `Quick test_ucq_parse_and_answer;
    Alcotest.test_case "ucq containment" `Quick test_ucq_containment;
    Alcotest.test_case "ucq minimization" `Quick test_ucq_minimize;
    Alcotest.test_case "ucq over the ontology" `Quick test_ucq_over_ontology;
  ]
