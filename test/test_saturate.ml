(** The indexed given-clause closure against its oracle.

    {!Saturate.closure} and {!Saturate.closure_reference} share the
    inference rules but nothing else — different loop (rounds vs FIFO
    pops), different partner retrieval (relation-signature indexes vs
    snapshots), different dedup fingerprints (canonical int keys vs
    printed structural keys). On every theory they must agree as sets
    of rules up to renaming, which is what these tests hold them to,
    along with the pool- and subsumption-mode contracts of the indexed
    loop. *)

open Guarded_core
open Guarded_gen.Generator
module Saturate = Guarded_translate.Saturate
module Subsumption = Guarded_translate.Subsumption
module Pool = Guarded_par.Pool
module Seminaive = Guarded_datalog.Seminaive

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let max_rules = 1_500

(* The closure as a set of renaming-invariant fingerprints. Printed
   canonicalized rules (not [Rule.canonical_key]) so the comparison
   does not reuse the fingerprint the indexed loop dedups by. *)
let canon_set sigma =
  List.sort_uniq String.compare
    (List.map (fun r -> Rule.to_string (Rule.canonicalize r)) (Theory.rules sigma))

type outcome = Closure of Theory.t * Saturate.stats | Budget

let run_closure f =
  try
    let t, st = f () in
    Closure (t, st)
  with Saturate.Budget_exceeded _ -> Budget

(* Indexed closure = reference closure, as canonical rule sets and in
   the stats both report; a budget overflow must hit both (they build
   the same set, so the final count is shared). *)
let prop_closure_matches_reference =
  QCheck.Test.make ~count:40 ~name:"indexed closure = reference closure"
    arbitrary_guarded (fun sigma ->
      let sigma = Normalize.normalize sigma in
      let indexed = run_closure (fun () -> Saturate.closure ~max_rules sigma) in
      let reference = run_closure (fun () -> Saturate.closure_reference ~max_rules sigma) in
      match (indexed, reference) with
      | Budget, Budget -> true
      | Closure (xi, st), Closure (xi_ref, st_ref) ->
        canon_set xi = canon_set xi_ref
        && st.Saturate.closure_rules = st_ref.Saturate.closure_rules
        && st.Saturate.datalog_rules = st_ref.Saturate.datalog_rules
      | Closure _, Budget | Budget, Closure _ -> false)

(* Supplying a pool must not change anything observable: same rules in
   the same order, same stats. *)
let prop_closure_pool_deterministic =
  QCheck.Test.make ~count:30 ~name:"pooled closure is bit-identical to sequential"
    arbitrary_guarded (fun sigma ->
      let sigma = Normalize.normalize sigma in
      let pool = Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true () in
      let seq = run_closure (fun () -> Saturate.closure ~max_rules sigma) in
      let par = run_closure (fun () -> Saturate.closure ~pool ~max_rules sigma) in
      Pool.shutdown pool;
      match (seq, par) with
      | Budget, Budget -> true
      | Closure (xi, st), Closure (xi_par, st_par) ->
        List.equal
          (fun r1 r2 -> Rule.to_string r1 = Rule.to_string r2)
          (Theory.rules xi) (Theory.rules xi_par)
        && st = st_par
      | Closure _, Budget | Budget, Closure _ -> false)

(* Subsume mode only drops rules, every dropped rule is subsumed by a
   surviving one, and the Datalog part keeps the same fixpoint on every
   generated database (subsumed rules derive nothing their subsumer
   does not). *)
let prop_closure_subsume_fixpoint =
  QCheck.Test.make ~count:30 ~name:"subsume:true keeps the Datalog fixpoint"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, db) ->
      let sigma = Normalize.normalize sigma in
      let full = run_closure (fun () -> Saturate.closure ~max_rules sigma) in
      let pruned = run_closure (fun () -> Saturate.closure ~max_rules ~subsume:true sigma) in
      match (full, pruned) with
      | Budget, Budget -> true
      | Closure (xi, _), Closure (xi_sub, _) ->
        let dat t = Theory.of_rules (List.filter Rule.is_datalog (Theory.rules t)) in
        let set = canon_set xi and set_sub = canon_set xi_sub in
        List.for_all (fun r -> List.mem r set) set_sub
        && Database.equal (Seminaive.eval (dat xi) db) (Seminaive.eval (dat xi_sub) db)
      | Closure _, Budget | Budget, Closure _ -> false)

(* --- Example 7 units ------------------------------------------------- *)

let example7_stats () =
  let sigma = Helpers.example7_theory () in
  let _, st = Saturate.closure ~max_rules:5_000 sigma in
  let _, st_ref = Saturate.closure_reference ~max_rules:5_000 sigma in
  (st, st_ref)

let test_example7_stats_agree () =
  let st, st_ref = example7_stats () in
  check cint "closure_rules" st_ref.Saturate.closure_rules st.Saturate.closure_rules;
  check cint "datalog_rules" st_ref.Saturate.datalog_rules st.Saturate.datalog_rules;
  check cint "input_rules" st_ref.Saturate.input_rules st.Saturate.input_rules

let test_example7_subsume_sound () =
  let sigma = Helpers.example7_theory () in
  let xi, st = Saturate.closure ~max_rules:5_000 sigma in
  let xi_sub, st_sub = Saturate.closure ~max_rules:5_000 ~subsume:true sigma in
  check cbool "no more rules than unpruned" true
    (st_sub.Saturate.closure_rules <= st.Saturate.closure_rules);
  (* Every dropped Datalog rule is subsumed by some kept rule. *)
  let kept = Theory.rules xi_sub in
  let dropped =
    let kept_set = canon_set xi_sub in
    List.filter
      (fun r -> not (List.mem (Rule.to_string (Rule.canonicalize r)) kept_set))
      (Theory.rules xi)
  in
  List.iter
    (fun r ->
      check cbool
        (Fmt.str "dropped rule is subsumed: %a" Rule.pp r)
        true
        (List.exists (fun k -> Subsumption.subsumes k r) kept))
    dropped

let test_reduce_idempotent () =
  let sigma = Helpers.example7_theory () in
  let xi, _ = Saturate.closure ~max_rules:5_000 sigma in
  let once = Subsumption.reduce xi in
  let twice = Subsumption.reduce once in
  check cint "reduce is idempotent" (Theory.size once) (Theory.size twice)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_closure_matches_reference;
      prop_closure_pool_deterministic;
      prop_closure_subsume_fixpoint;
    ]
  @ [
      Alcotest.test_case "Example 7: indexed stats = reference stats" `Quick
        test_example7_stats_agree;
      Alcotest.test_case "Example 7: subsume mode is sound" `Quick
        test_example7_subsume_sound;
      Alcotest.test_case "reduce is idempotent on Ξ(Σ)" `Quick test_reduce_idempotent;
    ]
