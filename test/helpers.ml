(** Shared helpers for the test-suites: parsing shortcuts, answer
    comparison, the chase oracle, and the paper's running examples. *)

open Guarded_core

let theory = Parser.theory_of_string
let rule = Parser.rule_of_string
let atom = Parser.atom_of_string
let db = Parser.database_of_string

let const c = Term.Const c

(* Answers as sorted lists of constant tuples, for Alcotest equality. *)
let pp_tuple ppf tuple = Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ",") Term.pp) tuple
let pp_answers ppf ans = Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any " ") pp_tuple) ans

let answers_testable =
  Alcotest.testable pp_answers (List.equal (List.equal Term.equal))

let sort_answers = List.sort_uniq (List.compare Term.compare)

(* The chase oracle: certain answers via a saturating chase. Fails the
   test when the chase does not saturate within the limits, because the
   oracle would be incomplete. *)
let chase_answers ?(limits = Guarded_chase.Engine.default_limits) sigma database ~query =
  let ans, outcome = Guarded_chase.Engine.answers ~limits sigma database ~query in
  match outcome with
  | Guarded_chase.Engine.Saturated -> ans
  | Guarded_chase.Engine.Bounded -> Alcotest.fail "chase oracle did not saturate"

let check_answers name expected actual =
  Alcotest.check answers_testable name (sort_answers expected) (sort_answers actual)

(* Tuples from a string like "a,b; c,d". *)
let tuples s =
  if String.trim s = "" then []
  else
    String.split_on_char ';' s
    |> List.map (fun t ->
           String.split_on_char ',' t |> List.map (fun c -> Term.Const (String.trim c)))
    |> sort_answers

(* ------------------------------------------------------------------ *)
(* The paper's running example (Example 1 / Figure 2).                 *)

let publications_theory_text =
  {|
  @s1 publication(X) -> exists K1, K2. keywords(X, K1, K2).
  @s2 keywords(X, K1, K2) -> hasTopic(X, K1).
  @s3 hasTopic(X, Z), hasAuthor(X, U), hasAuthor(Y, U), hasTopic(Y, Z2),
      scientific(Z2), citedIn(Y, X) -> scientific(Z).
  @s4 hasAuthor(X, Y), hasTopic(X, Z), scientific(Z) -> q(Y).
|}

let publications_theory () = theory publications_theory_text

let publications_db () =
  db
    {|
  publication(p1). publication(p2). citedIn(p1, p2).
  hasAuthor(p1, a1). hasAuthor(p2, a1). hasAuthor(p2, a2).
  hasTopic(p1, t1). scientific(t1).
|}

(* Example 7's guarded theory. *)
let example7_theory () =
  theory
    {|
  @e1 a(X) -> exists Y. r(X, Y).
  @e2 r(X, Y) -> s(Y, Y).
  @e3 s(X, Y) -> exists Z. t(X, Y, Z).
  @e4 t(X, X, Y) -> b(X).
  @e5 c(X), r(X, Y), b(Y) -> d(X).
|}

let example7_db () = db "a(k). c(k)."

(* A small frontier-guarded ontology whose full translation pipeline is
   tractable (used where the running example's σ3 would be too heavy). *)
let small_fg_theory () =
  theory
    {|
  @s1 publication(X) -> exists K1, K2. keywords(X, K1, K2).
  @s2 keywords(X, K1, K2) -> hasTopic(X, K1).
  @s3 hasTopic(X, Z), inCollection(X, C), popular(C) -> scientific(Z).
  @s4 hasAuthor(X, Y), hasTopic(X, Z), scientific(Z) -> q(Y).
|}

let small_fg_db () =
  db "publication(p1). inCollection(p1, c1). popular(c1). hasAuthor(p1, a1). hasAuthor(p1, a2)."

(* A weakly guarded theory that is not (nearly) frontier-guarded: a
   generator chain of nulls (whose chase is infinite) plus a rule whose
   frontier {Y, Z} shares no atom while its unsafe variables {X, Y} are
   jointly guarded by next(X, Y). *)
let wg_theory () =
  theory
    {|
  @w1 node(X) -> gen(X).
  @w2 gen(X) -> exists Y. next(X, Y).
  @w3 next(X, Y) -> gen(Y).
  @w4 next(X, Y), anchor(Z) -> out(Y, Z).
|}

let run_alcotest name suites = Alcotest.run name suites
