(** Property tests for the columnar storage layer (ISSUE 6, satellite
    3): the packed sorted-run primitives of {!Guarded_core.Intrun}
    against naive list references, and the columnar {!Database} under
    add/remove interleavings against a set reference. The generators
    draw values from tiny domains so that empty runs, duplicated value
    halves and single-element boundaries all occur routinely. *)

open Guarded_core

(* ------------------------------------------------------------------ *)
(* Intrun primitives vs list references                                *)

(* Tiny domains: collisions on the value half are the norm, not the
   exception. *)
let gen_pair = QCheck.Gen.(pair (int_bound 7) (int_bound 7))
let gen_pairs = QCheck.Gen.(list_size (int_bound 12) gen_pair)

let arbitrary_pairs =
  QCheck.make ~print:(fun ps -> Fmt.str "%a" Fmt.(Dump.list (Dump.pair int int)) ps) gen_pairs

let arbitrary_two_pairs =
  QCheck.make
    ~print:(fun (a, b) ->
      Fmt.str "%a / %a" Fmt.(Dump.list (Dump.pair int int)) a Fmt.(Dump.list (Dump.pair int int)) b)
    QCheck.Gen.(pair gen_pairs gen_pairs)

let run_of_pairs ps =
  let a = Array.of_list (List.map (fun (v, r) -> Intrun.pack v r) ps) in
  Intrun.sort a;
  a

let unpack a = Array.to_list (Array.map (fun e -> (Intrun.value e, Intrun.row e)) a)

let prop_pack_roundtrip_and_order =
  QCheck.Test.make ~count:500 ~name:"pack: lossless and lexicographic"
    (QCheck.pair (QCheck.make gen_pair) (QCheck.make gen_pair))
    (fun ((v1, r1), (v2, r2)) ->
      let e1 = Intrun.pack v1 r1 and e2 = Intrun.pack v2 r2 in
      Intrun.value e1 = v1 && Intrun.row e1 = r1
      && Stdlib.compare e1 e2 = Stdlib.compare (v1, r1) (v2, r2))

let prop_sort_matches_list_sort =
  QCheck.Test.make ~count:500 ~name:"run sort = list sort of (value, row) pairs" arbitrary_pairs
    (fun ps -> unpack (run_of_pairs ps) = List.sort Stdlib.compare ps)

let prop_merge_matches_sorted_append =
  QCheck.Test.make ~count:500 ~name:"run merge = sorted append" arbitrary_two_pairs
    (fun (a, b) ->
      unpack (Intrun.merge (run_of_pairs a) (run_of_pairs b))
      = List.sort Stdlib.compare (a @ b))

(* [lower] and [gallop] agree with the first-index-≥-key scan; [gallop]
   additionally from every admissible starting point. *)
let prop_lower_gallop_match_scan =
  QCheck.Test.make ~count:500 ~name:"lower/gallop = linear scan for first entry >= key"
    (QCheck.pair arbitrary_pairs (QCheck.make gen_pair))
    (fun (ps, (v, r)) ->
      let a = run_of_pairs ps in
      let key = Intrun.pack v r in
      let n = Array.length a in
      let scan lo =
        let i = ref lo in
        while !i < n && a.(!i) < key do incr i done;
        !i
      in
      Intrun.lower a key = scan 0
      && List.for_all (fun lo -> Intrun.gallop a key ~lo = scan lo)
           (List.init (n + 1) Fun.id))

let prop_seg_count_match_filter =
  QCheck.Test.make ~count:500 ~name:"seg/count_value = filter on the value half"
    (QCheck.pair arbitrary_pairs (QCheck.make QCheck.Gen.(int_bound 8)))
    (fun (ps, v) ->
      let a = run_of_pairs ps in
      let lo, hi = Intrun.seg a v in
      let expected = List.filter (fun (v', _) -> v' = v) (List.sort Stdlib.compare ps) in
      lo <= hi && hi <= Array.length a
      && unpack (Array.sub a lo (hi - lo)) = expected
      && Intrun.count_value a v = List.length expected)

let prop_inter_matches_set_intersection =
  QCheck.Test.make ~count:500 ~name:"inter = set intersection of sorted distinct arrays"
    (QCheck.pair
       (QCheck.make QCheck.Gen.(list_size (int_bound 12) (int_bound 15)))
       (QCheck.make QCheck.Gen.(list_size (int_bound 12) (int_bound 15))))
    (fun (xs, ys) ->
      let distinct l = Array.of_list (List.sort_uniq Stdlib.compare l) in
      let a = distinct xs and b = distinct ys in
      Array.to_list (Intrun.inter a b)
      = List.filter (fun x -> Array.exists (( = ) x) b) (Array.to_list a))

let prop_iter_distinct_values_matches_reference =
  QCheck.Test.make ~count:500 ~name:"iter_distinct_values = min-row witness per distinct value"
    (QCheck.make
       ~print:(fun rs -> Fmt.str "%a" Fmt.(Dump.list (Dump.list (Dump.pair int int))) rs)
       QCheck.Gen.(list_size (int_bound 4) gen_pairs))
    (fun pss ->
      let runs = List.map run_of_pairs pss in
      let got = ref [] in
      Intrun.iter_distinct_values runs (fun v r -> got := (v, r) :: !got);
      let all = List.concat pss in
      let expected =
        List.sort_uniq Stdlib.compare (List.map fst all)
        |> List.map (fun v ->
               (v, List.fold_left min max_int (List.filter_map
                      (fun (v', r) -> if v' = v then Some r else None) all)))
      in
      List.rev !got = expected)

(* ------------------------------------------------------------------ *)
(* Columnar Database vs a fact-set reference under interleavings       *)

(* Random add/remove scripts over a tiny atom space: a binary relation
   over four constants, so the same fact is added, removed and re-added
   across a script, exercising swap-deletes, run invalidation and lazy
   re-flushes. *)
let const i = Term.Const (Fmt.str "c%d" i)
let fact u v = Atom.make "r" [ const u; const v ]

let gen_op = QCheck.Gen.(triple bool (int_bound 3) (int_bound 3))

let arbitrary_script =
  QCheck.make
    ~print:(fun ops ->
      Fmt.str "%a"
        Fmt.(Dump.list (fun ppf (add, u, v) -> Fmt.pf ppf "%s r(c%d,c%d)"
               (if add then "+" else "-") u v))
        ops)
    QCheck.Gen.(list_size (int_bound 40) gen_op)

(* Interleave lookups with the mutations: after every op the database
   must agree with the reference set, and the positional probes must be
   exact on fully bound patterns and complete on partially bound ones. *)
let prop_database_matches_set_reference =
  QCheck.Test.make ~count:200 ~name:"columnar add/remove interleaving = set reference"
    arbitrary_script (fun ops ->
      let db = Database.create () in
      let reference = ref [] in
      List.for_all
        (fun (add, u, v) ->
          let a = fact u v in
          if add then begin
            let fresh = Database.add db a in
            let expected = not (List.mem a !reference) in
            if fresh then reference := a :: !reference;
            fresh = expected
          end
          else begin
            let removed = Database.remove db a in
            let expected = List.mem a !reference in
            reference := List.filter (fun b -> not (Atom.equal b a)) !reference;
            removed = expected
          end
          && Database.cardinal db = List.length !reference
          && Database.equal db (Database.of_atoms !reference))
        ops)

(* Positional candidate selection after an interleaving: candidates are
   a superset of the true matches, counts upper-bound them, and
   [exists_under] is exact. *)
let prop_database_probes_after_interleaving =
  QCheck.Test.make ~count:200 ~name:"positional probes exact after add/remove interleaving"
    arbitrary_script (fun ops ->
      let db = Database.create () in
      let reference = ref [] in
      List.iter
        (fun (add, u, v) ->
          let a = fact u v in
          if add then begin
            if Database.add db a then reference := a :: !reference
          end
          else if Database.remove db a then
            reference := List.filter (fun b -> not (Atom.equal b a)) !reference)
        ops;
      let patterns =
        (* Every combination of bound/free positions over the domain. *)
        List.concat_map
          (fun u ->
            List.concat_map
              (fun v ->
                [
                  Atom.make "r" [ const u; const v ];
                  Atom.make "r" [ const u; Term.Var "Y" ];
                  Atom.make "r" [ Term.Var "X"; const v ];
                  Atom.make "r" [ Term.Var "X"; Term.Var "Y" ];
                ])
              [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ]
      in
      List.for_all
        (fun p ->
          let matches =
            List.filter (fun b -> Subst.match_atom Subst.empty p b <> None) !reference
          in
          let cands = Database.candidates db p in
          Database.candidate_count db p >= List.length matches
          && List.length cands >= List.length matches
          && List.for_all (fun m -> List.exists (Atom.equal m) cands) matches
          && Database.exists_under db Subst.empty p = (matches <> []))
        patterns)

(* Distinct-value enumeration (the WCOJ probe) after an interleaving:
   complete and duplicate-free per the reference. *)
let prop_database_var_values_after_interleaving =
  QCheck.Test.make ~count:200 ~name:"iter_var_values_under = distinct reference values"
    arbitrary_script (fun ops ->
      let db = Database.create () in
      let reference = ref [] in
      List.iter
        (fun (add, u, v) ->
          let a = fact u v in
          if add then begin
            if Database.add db a then reference := a :: !reference
          end
          else if Database.remove db a then
            reference := List.filter (fun b -> not (Atom.equal b a)) !reference)
        ops;
      List.for_all
        (fun (p, var, select) ->
          let got = ref [] in
          Database.iter_var_values_under db Subst.empty p ~var (fun t -> got := t :: !got);
          List.sort Stdlib.compare !got
          = List.sort_uniq Stdlib.compare (List.filter_map select !reference))
        [
          (Atom.make "r" [ Term.Var "X"; Term.Var "Y" ], "X",
           fun b -> Some (List.nth (Atom.args b) 0));
          (Atom.make "r" [ Term.Var "X"; Term.Var "Y" ], "Y",
           fun b -> Some (List.nth (Atom.args b) 1));
          (Atom.make "r" [ const 0; Term.Var "Y" ], "Y",
           fun b -> if List.nth (Atom.args b) 0 = const 0 then Some (List.nth (Atom.args b) 1)
                    else None);
          (Atom.make "r" [ Term.Var "X"; Term.Var "X" ], "X",
           fun b -> match Atom.args b with
                    | [ x; y ] when x = y -> Some x
                    | _ -> None);
        ])

(* Storage metrics stay consistent with the fact set: row counts match
   cardinality per relation and bytes/runs are nonnegative. *)
let prop_storage_stats_consistent =
  QCheck.Test.make ~count:200 ~name:"storage_stats rows = relation cardinality"
    arbitrary_script (fun ops ->
      let db = Database.create () in
      List.iter
        (fun (add, u, v) ->
          if add then ignore (Database.add db (fact u v))
          else ignore (Database.remove db (fact u v)))
        ops;
      List.for_all
        (fun (st : Database.rel_stats) ->
          st.rs_rows = Database.rel_cardinal db st.rs_rel
          && st.rs_runs >= 0 && st.rs_bytes >= 0)
        (Database.storage_stats db)
      && List.fold_left
           (fun acc (st : Database.rel_stats) -> acc + st.rs_rows)
           0 (Database.storage_stats db)
         = Database.cardinal db)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pack_roundtrip_and_order;
      prop_sort_matches_list_sort;
      prop_merge_matches_sorted_append;
      prop_lower_gallop_match_scan;
      prop_seg_count_match_filter;
      prop_inter_matches_set_intersection;
      prop_iter_distinct_values_matches_reference;
      prop_database_matches_set_reference;
      prop_database_probes_after_interleaving;
      prop_database_var_values_after_interleaving;
      prop_storage_stats_consistent;
    ]
