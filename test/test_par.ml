(** Properties of the domain-parallel evaluation paths: for every
    domain count the parallel semi-naive fixpoint must compute exactly
    the sequential fact set, and the parallel chase must be fully
    deterministic — same labeled-null ids, same steps, same tree shape
    — across domain counts and across repeated runs. *)

open Guarded_core
open Guarded_gen.Generator
module Pool = Guarded_par.Pool
module Engine = Guarded_chase.Engine
module Tree = Guarded_chase.Tree
module Seminaive = Guarded_datalog.Seminaive
module Stratified = Guarded_datalog.Stratified

(* One pool per tested domain count, shared across all cases (spawning
   domains per case would dominate the suite's runtime). Pools register
   an at_exit shutdown, so no explicit teardown is needed. A pool of 1
   exercises the parallel code path — snapshot rounds, buffer merge —
   on the calling domain alone, which is exactly what the determinism
   comparison wants as its base case. [min_work 1] disables the fan-out
   threshold: generated instances are small, and these tests exist to
   exercise the parallel path, not the sequential fallback. *)
let pools =
  lazy
    (List.map
       (fun n -> Pool.create ~domains:n ~min_work:1 ~oversubscribe:true ())
       [ 1; 2; 4 ])

(* The default threshold must be semantically invisible: a pool whose
   [min_work] exceeds every batch in the run (forcing the sequential
   fallback everywhere) computes the same results as the threshold-free
   pools above. *)
let prop_min_work_fallback_invisible =
  QCheck.Test.make ~count:30 ~name:"min_work fallback computes the same fixpoint"
    (arbitrary_pair arbitrary_semipositive) (fun (sigma, db) ->
      let reference = Seminaive.eval sigma db in
      let lazy_pool = Pool.create ~domains:2 ~min_work:max_int () in
      let ok = Database.equal (Seminaive.eval ~pool:lazy_pool sigma db) reference in
      Pool.shutdown lazy_pool;
      ok)

let prop_parallel_seminaive_equals_sequential =
  QCheck.Test.make ~count:60 ~name:"parallel_seminaive_equals_sequential"
    (arbitrary_pair arbitrary_semipositive) (fun (sigma, db) ->
      let reference = Seminaive.eval sigma db in
      List.for_all
        (fun pool -> Database.equal (Seminaive.eval ~pool sigma db) reference)
        (Lazy.force pools))

(* A chase run compressed to everything determinism must fix: the
   derivation count, the exact fact set (nulls with their ids included,
   via the sorted printed facts), and the per-step rule labels with the
   added atoms in order. *)
let chase_fingerprint (res : Engine.result) =
  ( res.Engine.derivations,
    Fmt.str "%a" Database.pp res.Engine.db,
    List.map
      (fun (s : Engine.step) ->
        (Rule.to_string s.Engine.rule, List.map Atom.to_string s.Engine.added))
      res.Engine.steps )

let chase_limits = { Engine.max_derivations = 1_500; max_depth = Some 3 }

let prop_parallel_chase_deterministic =
  QCheck.Test.make ~count:40 ~name:"parallel_chase_deterministic"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, db) ->
      let sigma = Normalize.normalize sigma in
      let runs =
        List.concat_map
          (fun pool ->
            [
              Engine.run ~limits:chase_limits ~pool sigma db;
              Engine.run ~limits:chase_limits ~pool sigma db;
            ])
          (Lazy.force pools)
      in
      match runs with
      | [] -> true
      | first :: rest ->
        let fp = chase_fingerprint first in
        List.for_all (fun r -> chase_fingerprint r = fp) rest)

(* Tree placement must not depend on the domain count either: the same
   steps must build the same chase tree. *)
let prop_parallel_chase_tree_shape =
  QCheck.Test.make ~count:25 ~name:"parallel chase: tree shape is domain-count invariant"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, db) ->
      let sigma = Normalize.normalize sigma in
      let shapes =
        List.map
          (fun pool ->
            let res = Engine.run ~limits:chase_limits ~pool sigma db in
            let tree = Tree.build sigma db res in
            (Tree.node_count tree, Tree.width tree))
          (Lazy.force pools)
      in
      match shapes with [] -> true | s :: rest -> List.for_all (( = ) s) rest)

(* Against the sequential schedule the parallel chase may only differ
   by a renaming of nulls: on saturated runs the sizes and the
   constant answers agree. *)
let prop_parallel_chase_isomorphic_to_sequential =
  QCheck.Test.make ~count:40 ~name:"parallel chase ~ sequential chase (sizes, answers)"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, db) ->
      let sigma = Normalize.normalize sigma in
      let seq = Engine.run ~limits:chase_limits sigma db in
      List.for_all
        (fun pool ->
          let par = Engine.run ~limits:chase_limits ~pool sigma db in
          match (seq.Engine.outcome, par.Engine.outcome) with
          | Engine.Saturated, Engine.Saturated ->
            seq.Engine.derivations = par.Engine.derivations
            && Database.cardinal seq.Engine.db = Database.cardinal par.Engine.db
            && List.for_all
                 (fun (rel, _) ->
                   Database.constant_tuples seq.Engine.db rel
                   = Database.constant_tuples par.Engine.db rel)
                 signature
          | Engine.Bounded, _ | _, Engine.Bounded ->
            (* Truncation cuts by derivation order, which legitimately
               differs between the schedules. *)
            true)
        (Lazy.force pools))

(* The stratified chase (Datalog strata on the semi-naive engine,
   existential strata on the chase engine) with a pool agrees with the
   sequential evaluation on constant answers. *)
let prop_parallel_stratified_answers =
  QCheck.Test.make ~count:30 ~name:"parallel stratified chase: same constant answers"
    (arbitrary_pair arbitrary_semipositive) (fun (sigma, db) ->
      let answers pool =
        List.map
          (fun (rel, _) -> fst (Stratified.answers ?pool sigma db ~query:rel))
          signature
      in
      let reference = answers None in
      List.for_all (fun pool -> answers (Some pool) = reference) (Lazy.force pools))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_parallel_seminaive_equals_sequential;
      prop_parallel_chase_deterministic;
      prop_parallel_chase_tree_shape;
      prop_parallel_chase_isomorphic_to_sequential;
      prop_parallel_stratified_answers;
      prop_min_work_fallback_invisible;
    ]
