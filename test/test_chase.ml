(** Tests for the chase engine and the chase tree (Section 2, Section 4,
    Figure 2, Proposition 2). *)

open Guarded_core
module Engine = Guarded_chase.Engine
module Tree = Guarded_chase.Tree

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let outcome = Alcotest.testable
    (fun ppf -> function Engine.Saturated -> Fmt.string ppf "saturated"
                       | Engine.Bounded -> Fmt.string ppf "bounded")
    ( = )

(* --- engine --------------------------------------------------------- *)

let test_figure2 () =
  (* The chase of the running example derives Q(a1) and Q(a2). *)
  let res = Engine.run (Helpers.publications_theory ()) (Helpers.publications_db ()) in
  check outcome "saturates" Engine.Saturated res.outcome;
  check cbool "q(a1)" true (Database.mem res.db (Helpers.atom "q(a1)"));
  check cbool "q(a2)" true (Database.mem res.db (Helpers.atom "q(a2)"));
  (* p1 and p2 each get a Keywords atom with two fresh nulls. *)
  check cint "keywords facts" 2 (Database.rel_cardinal res.db ("keywords", 0, 3));
  let nulls =
    Database.fold
      (fun a acc ->
        List.fold_left
          (fun acc t -> match t with Term.Null n -> Names.Sset.add (string_of_int n) acc | _ -> acc)
          acc (Atom.terms a))
      res.db Names.Sset.empty
  in
  check cint "four fresh nulls" 4 (Names.Sset.cardinal nulls)

let test_oblivious_fires_once () =
  (* The oblivious chase fires each trigger exactly once even when the
     head is already satisfied. *)
  let sigma = Helpers.theory "p(X) -> exists Y. r(X, Y)." in
  let d = Helpers.db "p(a). r(a, b)." in
  let res = Engine.run sigma d in
  check cint "one derivation despite satisfied head" 1 res.derivations;
  check cint "r has two facts" 2 (Database.rel_cardinal res.db ("r", 0, 2))

let test_datalog_chase_terminates () =
  let sigma = Helpers.theory "e(X, Y), tc(Y, Z) -> tc(X, Z). e(X, Y) -> tc(X, Y)." in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let res = Engine.run sigma d in
  check outcome "saturates" Engine.Saturated res.outcome;
  check cint "transitive closure" 6 (Database.rel_cardinal res.db ("tc", 0, 2))

let test_infinite_chase_bounded () =
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a)." in
  let res = Engine.run ~limits:{ max_derivations = 50; max_depth = None } sigma d in
  check outcome "bounded" Engine.Bounded res.outcome;
  (* depth bound instead *)
  let res2 = Engine.run ~limits:{ max_derivations = 10_000; max_depth = Some 3 } sigma d in
  check outcome "depth bounded" Engine.Bounded res2.outcome;
  check cint "three nulls" 3 (Database.rel_cardinal res2.db ("next", 0, 2))

let test_entailment_verdicts () =
  let sigma = Helpers.example7_theory () in
  let d = Helpers.example7_db () in
  check cbool "proved" true (Engine.entails sigma d (Helpers.atom "d(k)") = Engine.Proved);
  check cbool "disproved" true (Engine.entails sigma d (Helpers.atom "d(zzz)") = Engine.Disproved);
  let inf = Helpers.wg_theory () in
  let verdict =
    Engine.entails
      ~limits:{ max_derivations = 30; max_depth = None }
      inf (Helpers.db "node(a).") (Helpers.atom "out(a, a)")
  in
  check cbool "unknown under bound" true (verdict = Engine.Unknown)

let test_fact_rules () =
  let sigma = Helpers.theory "-> r(c). r(X) -> s(X)." in
  let res = Engine.run sigma (Database.create ()) in
  check cbool "fact added" true (Database.mem res.db (Helpers.atom "r(c)"));
  check cbool "derived" true (Database.mem res.db (Helpers.atom "s(c)"))

let test_empty_theory () =
  let d = Helpers.db "r(a)." in
  let res = Engine.run (Theory.of_rules []) d in
  check outcome "saturates immediately" Engine.Saturated res.outcome;
  check cint "unchanged" 1 (Database.cardinal res.db)

let test_negation_rejected () =
  let sigma = Helpers.theory "r(X), not s(X) -> t(X)." in
  match Engine.run sigma (Helpers.db "r(a).") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "plain chase accepted negation"

let test_snapshot_negation () =
  let sigma = Helpers.theory "r(X), not s(X) -> t(X)." in
  let snap = Helpers.db "r(a). r(b). s(b)." in
  let res = Engine.run ~negation:(Engine.Snapshot snap) sigma snap in
  check cbool "t(a) derived" true (Database.mem res.db (Helpers.atom "t(a)"));
  check cbool "t(b) blocked" false (Database.mem res.db (Helpers.atom "t(b)"))

let test_snapshot_negation_new_nulls () =
  (* Def. 23: a negated atom only holds on tuples over the snapshot's
     terms, so fresh nulls never satisfy "not s". *)
  let sigma =
    Helpers.theory
      {|
    p(X) -> exists Y. r(X, Y).
    r(X, Y), not s(Y) -> bad(X).
  |}
  in
  let snap = Helpers.db "p(a)." in
  let res = Engine.run ~negation:(Engine.Snapshot snap) sigma snap in
  check cbool "no bad over fresh null" false (Database.mem res.db (Helpers.atom "bad(a)"))

(* --- chase tree ----------------------------------------------------- *)

let build_tree sigma d =
  let norm = Normalize.normalize sigma in
  let res = Engine.run norm d in
  (norm, res, Tree.build norm d res)

let test_tree_running_example () =
  let sigma, _res, tree = build_tree (Helpers.publications_theory ()) (Helpers.publications_db ()) in
  (match Tree.verify tree sigma (Helpers.publications_db ()) with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " vs));
  (* Two keyword nodes hang off the root. *)
  check cint "three nodes" 3 (Tree.node_count tree);
  check cint "depth one" 1 (Tree.depth tree);
  check cbool "root holds the database" true
    (Atom.Set.mem (Helpers.atom "publication(p1)") (Tree.node_atoms (Tree.root tree)))

let test_tree_p2_bound () =
  let sigma, _res, tree = build_tree (Helpers.publications_theory ()) (Helpers.publications_db ()) in
  let m = Theory.max_arity sigma in
  List.iter
    (fun n ->
      if not (Tree.is_root n) then
        check cbool "P2: node terms within arity" true
          (Term.Set.cardinal (Tree.node_terms n) <= m))
    (Tree.nodes tree)

let test_tree_nested () =
  (* Chains of existentials build deeper trees. *)
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> exists Z. r(Y, Z).
  |}
  in
  let d = Helpers.db "a(c)." in
  let norm = Normalize.normalize sigma in
  let res = Engine.run ~limits:{ max_derivations = 10_000; max_depth = Some 4 } norm d in
  let tree = Tree.build norm d res in
  check cbool "depth at least 3" true (Tree.depth tree >= 3);
  match Tree.verify tree norm d with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)

let test_tree_c1_placement () =
  (* An atom whose terms already live in a node is added there rather
     than opening a new node (C1). *)
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y, Z. r(X, Y, Z).
    r(X, Y, Z) -> s(Y, Z).
  |}
  in
  let d = Helpers.db "a(c)." in
  let norm = Normalize.normalize sigma in
  let res = Engine.run norm d in
  let tree = Tree.build norm d res in
  (* r-node and its s-atom share a node: at most root + one child. *)
  check cint "s joins the r node" 2 (Tree.node_count tree)

let test_tree_width () =
  let _sigma, _res, tree = build_tree (Helpers.publications_theory ()) (Helpers.publications_db ()) in
  (* width = max node terms - 1; the root holds the 8-constant database. *)
  check cbool "width bounded by max(|terms D|+k, m)" true (Tree.width tree <= 8);
  check cbool "width positive" true (Tree.width tree >= 2)

(* --- restricted chase ------------------------------------------------ *)

let test_restricted_skips_satisfied () =
  let sigma = Helpers.theory "p(X) -> exists Y. r(X, Y)." in
  let d = Helpers.db "p(a). r(a, b)." in
  let res = Engine.run ~variant:Engine.Restricted sigma d in
  check outcome "saturates" Engine.Saturated res.outcome;
  check cint "no derivation: head already satisfied" 0 res.derivations;
  check cint "r unchanged" 1 (Database.rel_cardinal res.db ("r", 0, 2))

let test_restricted_terminates_where_oblivious_diverges () =
  (* Everyone has a parent; parents are persons. The oblivious chase
     keeps firing on an already-satisfied database, while the restricted
     chase recognizes the cyclic witness and stops immediately. *)
  let sigma =
    Helpers.theory
      {|
    person(X) -> exists Y. parent(X, Y).
    parent(X, Y) -> person(Y).
  |}
  in
  (* with a cyclic database the restricted chase has nothing to do *)
  let d = Helpers.db "person(a). parent(a, a)." in
  let res = Engine.run ~variant:Engine.Restricted sigma d in
  check outcome "restricted saturates" Engine.Saturated res.outcome;
  check cint "nothing added" 2 (Database.cardinal res.db);
  let res_obl =
    Engine.run ~limits:{ max_derivations = 20; max_depth = None } sigma d
  in
  check outcome "oblivious still fires" Engine.Bounded res_obl.outcome

let test_restricted_same_answers () =
  (* Both chase variants yield universal models: identical certain
     answers on the running example. *)
  let sigma = Helpers.publications_theory () in
  let d = Helpers.publications_db () in
  let a_obl, o1 = Engine.answers sigma d ~query:"q" in
  let res = Engine.run ~variant:Engine.Restricted sigma d in
  check outcome "restricted saturates" Engine.Saturated res.outcome;
  check cbool "oblivious saturated" true (o1 = Engine.Saturated);
  let a_res =
    Database.fold
      (fun a acc ->
        if Atom.rel a = "q" && List.for_all Term.is_const (Atom.terms a) then Atom.args a :: acc
        else acc)
      res.db []
  in
  Helpers.check_answers "same answers" a_obl a_res;
  check cbool "restricted derives no more than oblivious" true
    (res.derivations <= (Engine.run sigma d).derivations)

let suite =
  [
    Alcotest.test_case "Figure 2: running example chase" `Quick test_figure2;
    Alcotest.test_case "oblivious chase fires once" `Quick test_oblivious_fires_once;
    Alcotest.test_case "datalog chase terminates" `Quick test_datalog_chase_terminates;
    Alcotest.test_case "infinite chase is bounded" `Quick test_infinite_chase_bounded;
    Alcotest.test_case "entailment verdicts" `Quick test_entailment_verdicts;
    Alcotest.test_case "fact rules" `Quick test_fact_rules;
    Alcotest.test_case "empty theory" `Quick test_empty_theory;
    Alcotest.test_case "plain chase rejects negation" `Quick test_negation_rejected;
    Alcotest.test_case "snapshot negation" `Quick test_snapshot_negation;
    Alcotest.test_case "snapshot negation vs fresh nulls" `Quick test_snapshot_negation_new_nulls;
    Alcotest.test_case "chase tree on running example" `Quick test_tree_running_example;
    Alcotest.test_case "chase tree P2 bound" `Quick test_tree_p2_bound;
    Alcotest.test_case "chase tree nesting" `Quick test_tree_nested;
    Alcotest.test_case "chase tree C1 placement" `Quick test_tree_c1_placement;
    Alcotest.test_case "chase tree width" `Quick test_tree_width;
    Alcotest.test_case "restricted chase skips satisfied" `Quick test_restricted_skips_satisfied;
    Alcotest.test_case "restricted chase termination" `Quick test_restricted_terminates_where_oblivious_diverges;
    Alcotest.test_case "restricted chase same answers" `Quick test_restricted_same_answers;
  ]
