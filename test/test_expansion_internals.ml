(** White-box tests for the expansion internals: placements, guard
    atoms, the decreasing measure, and closure statistics. *)

open Guarded_core
module Rewritings = Guarded_translate.Rewritings
module Expansion = Guarded_translate.Expansion

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let test_placements_count () =
  (* injective placements of n variables into r slots: r!/(r-n)! *)
  List.iter
    (fun (needed, arity) ->
      let n = List.length needed in
      let expected = if n > arity then 0 else factorial arity / factorial (arity - n) in
      check cint
        (Fmt.str "placements of %d into %d" n arity)
        expected
        (List.length (Rewritings.placements needed arity)))
    [
      ([ "A" ], 1);
      ([ "A" ], 3);
      ([ "A"; "B" ], 2);
      ([ "A"; "B" ], 3);
      ([ "A"; "B"; "C" ], 3);
      ([ "A"; "B"; "C" ], 2);
      ([], 2);
    ]

let test_placements_cover () =
  (* every placement contains every needed variable exactly once *)
  List.iter
    (fun terms ->
      let vars =
        List.filter_map (function Term.Var v -> Some v | _ -> None) terms
      in
      check cbool "A present" true (List.mem "A" vars);
      check cbool "B present" true (List.mem "B" vars);
      check cint "no duplicates" (List.length (List.sort_uniq compare vars)) (List.length vars))
    (Rewritings.placements [ "A"; "B" ] 4)

let test_guard_atoms () =
  let guards =
    Rewritings.guard_atoms
      ~relations:[ ("r", 0, 2); ("t", 0, 3); ("u", 0, 1) ]
      ~needed_args:[ "A"; "B" ] ~needed_ann:[] ()
  in
  (* r: 2 placements; t: 6; u: none (arity too small) *)
  check cint "eight guards" 8 (List.length guards);
  List.iter
    (fun g ->
      check cbool "guard covers the needed variables" true
        (Names.Sset.subset (Names.Sset.of_list [ "A"; "B" ]) (Atom.arg_var_set g)))
    guards

let test_guard_atoms_annotated () =
  let guards =
    Rewritings.guard_atoms
      ~relations:[ ("r", 1, 1) ]
      ~needed_args:[ "A" ] ~needed_ann:[ "U" ] ()
  in
  check cint "one placement each side" 1 (List.length guards);
  let g = List.hd guards in
  check cbool "annotation carries U" true
    (List.exists (function Term.Var "U" -> true | _ -> false) (Atom.ann g))

let test_guard_atoms_skip_acdom () =
  let guards =
    Rewritings.guard_atoms
      ~relations:[ (Database.acdom_rel, 0, 1) ]
      ~needed_args:[ "A" ] ~needed_ann:[] ()
  in
  check cint "ACDom never guards" 0 (List.length guards)

let test_measure () =
  (* variables outside the fixed frontier guard *)
  let r = Helpers.rule "r(X, Y), s(Y, Z), t(Z, W) -> p(X)." in
  (* frontier {X}: fg = r(X, Y); outside = {Z, W} *)
  check cint "measure 2" 2 (Expansion.measure r);
  let guarded = Helpers.rule "big(X, Y, Z) -> p(X)." in
  check cint "guarded rule measure 0" 0 (Expansion.measure guarded)

let test_expansion_stats () =
  let sigma = Normalize.normalize (Helpers.small_fg_theory ()) in
  let ex, stats = Expansion.expand ~max_rules:10_000 sigma in
  check cint "stats match output" (Theory.size ex) stats.Expansion.output_rules;
  check cbool "input preserved" true (stats.Expansion.input_rules <= stats.Expansion.output_rules);
  (* the original rules are all present in the expansion *)
  List.iter
    (fun r ->
      check cbool "original rule kept" true
        (List.exists
           (fun r' -> Rule.to_string (Rule.canonicalize r') = Rule.to_string (Rule.canonicalize r))
           (Theory.rules ex)))
    (Theory.rules sigma)

let test_expansion_idempotent_names () =
  (* Running the expansion twice on the same input produces the same
     number of rules: the closure is deterministic. *)
  let sigma = Normalize.normalize (Helpers.small_fg_theory ()) in
  let _, s1 = Expansion.expand ~max_rules:10_000 sigma in
  let _, s2 = Expansion.expand ~max_rules:10_000 sigma in
  check cint "deterministic size" s1.Expansion.output_rules s2.Expansion.output_rules;
  check cint "deterministic aux count" s1.Expansion.aux_relations s2.Expansion.aux_relations

let test_all_guards_superset () =
  (* the paper-literal enumeration can only produce more rules *)
  let sigma = Normalize.normalize (Helpers.small_fg_theory ()) in
  let _, s_node = Expansion.expand ~guards:`Node_relations sigma in
  let _, s_all = Expansion.expand ~guards:`All_relations sigma in
  check cbool "all-relations is larger" true
    (s_all.Expansion.output_rules >= s_node.Expansion.output_rules)

let suite =
  [
    Alcotest.test_case "placement counts" `Quick test_placements_count;
    Alcotest.test_case "placements cover needed vars" `Quick test_placements_cover;
    Alcotest.test_case "guard atom enumeration" `Quick test_guard_atoms;
    Alcotest.test_case "annotated guards" `Quick test_guard_atoms_annotated;
    Alcotest.test_case "ACDom never guards" `Quick test_guard_atoms_skip_acdom;
    Alcotest.test_case "decreasing measure" `Quick test_measure;
    Alcotest.test_case "expansion statistics" `Quick test_expansion_stats;
    Alcotest.test_case "expansion is deterministic" `Quick test_expansion_idempotent_names;
    Alcotest.test_case "guard ablation is a superset" `Quick test_all_guards_superset;
  ]
