(** The replication subsystem (lib/server/repl) and its substrate:
    journal bookkeeping, backoff schedules, the failover state machine,
    wire round-trips of the replication verbs, snapshot-assisted
    bootstrap equivalence (a replica built from a wire snapshot at
    epoch [k] must equal one that replayed every epoch from 0), the
    cluster concurrency oracle (primary + two replicas converge to the
    sequential reference), and warm failover (kill the primary, promote
    a drained replica, lose nothing). *)

open Guarded_core
open Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Seminaive = Guarded_datalog.Seminaive
module Pool = Guarded_par.Pool
module Wire = Guarded_server.Wire
module State = Guarded_server.State
module Server = Guarded_server.Server
module Client = Guarded_server.Client
module Snapshot = Guarded_server.Snapshot
module Journal = Guarded_server.Journal
module Backoff = Guarded_server.Backoff
module Bootstrap = Guarded_repl.Bootstrap
module Replica = Guarded_repl.Replica
module Cluster = Guarded_repl.Cluster
module Failover = Guarded_repl.Failover

let theory = Helpers.theory
let db = Helpers.db
let atom = Helpers.atom

let path_sigma = "e(X, Y) -> path(X, Y). e(X, Z), path(Z, Y) -> path(X, Y)."

let delta_add facts = Delta.of_lists ~additions:(List.map atom facts) ~deletions:[]

(* Poll until [p ()] or fail after ~5 s — replication is asynchronous,
   every convergence claim waits explicitly. *)
let wait_for what p =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if p () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let fresh_sock () =
  let sock = Filename.temp_file "guarded_repl" ".sock" in
  Sys.remove sock;
  sock

let with_primary ?journal_max_bytes sigma_text db_text f =
  let st = State.create ?journal_max_bytes (theory sigma_text) (db db_text) in
  let srv = Server.listen st (Server.Unix_socket (fresh_sock ())) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f st srv)

let start_replica ?policy ?local srv =
  match Replica.start ?policy ?local ~primary:(Server.address srv) (Server.Unix_socket (fresh_sock ())) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "replica bootstrap failed: %s" msg

let replica_db r = State.with_read (Replica.state r) (fun m -> Database.copy (Incr.db m))

let drained st r =
  wait_for "replica catch-up" (fun () -> State.epoch (Replica.state r) >= State.epoch st)

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)

let test_journal () =
  let j = Journal.create () in
  Alcotest.(check (option int)) "empty oldest" None (Journal.oldest j);
  Alcotest.(check (option int)) "empty latest" None (Journal.latest j);
  for e = 1 to 5 do
    Journal.append j ~epoch:e (delta_add [ Fmt.str "e(a%d, b%d)" e e ])
  done;
  Alcotest.(check (option int)) "oldest" (Some 1) (Journal.oldest j);
  Alcotest.(check (option int)) "latest" (Some 5) (Journal.latest j);
  Alcotest.(check int) "since 2 keeps 3" 3 (List.length (Journal.since j 2));
  Alcotest.(check (list int)) "since 2 is ordered past 2" [ 3; 4; 5 ]
    (List.map fst (Journal.since j 2));
  Alcotest.(check bool) "covers caught-up" true (Journal.covers j ~since:5 ~epoch:5);
  Alcotest.(check bool) "covers 0.." true (Journal.covers j ~since:0 ~epoch:5);
  Alcotest.(check bool) "stale epoch not covered" false (Journal.covers j ~since:0 ~epoch:6);
  (* a non-contiguous append clears the run: the retained records must
     never lie about leading to the newest epoch *)
  Journal.append j ~epoch:9 (delta_add [ "e(x, y)" ]);
  Alcotest.(check (option int)) "cleared to the gap" (Some 9) (Journal.oldest j);
  Alcotest.(check bool) "old run no longer covers" false (Journal.covers j ~since:3 ~epoch:9);
  Alcotest.(check bool) "caught-up still covers" true (Journal.covers j ~since:9 ~epoch:9)

let test_journal_eviction () =
  (* cap clamps to 4096 bytes; big records must evict from the old end
     but always keep the newest *)
  let j = Journal.create ~max_bytes:1 () in
  let big e =
    Delta.of_lists
      ~additions:(List.init 200 (fun i -> atom (Fmt.str "r(c%d_%d, d%d)" e i i)))
      ~deletions:[]
  in
  for e = 1 to 20 do
    Journal.append j ~epoch:e (big e)
  done;
  Alcotest.(check (option int)) "latest survives" (Some 20) (Journal.latest j);
  Alcotest.(check bool) "oldest evicted" true (Option.get (Journal.oldest j) > 1);
  Alcotest.(check bool) "bounded" true (Journal.bytes j <= 4096 || Journal.records j = 1);
  Alcotest.(check bool) "truncated run does not cover 0.." false
    (Journal.covers j ~since:0 ~epoch:20)

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)

let test_backoff () =
  let b = Backoff.make ~base:0.025 ~factor:2.0 ~max_delay:1.0 ~attempts:8 () in
  Alcotest.(check (option (float 1e-9))) "first try immediate" (Some 0.) (Backoff.delay b 0);
  Alcotest.(check (option (float 1e-9))) "first retry at base" (Some 0.025) (Backoff.delay b 1);
  Alcotest.(check (option (float 1e-9))) "doubles" (Some 0.05) (Backoff.delay b 2);
  Alcotest.(check (option (float 1e-9))) "capped" (Some 1.0) (Backoff.delay b 7);
  Alcotest.(check (option (float 1e-9))) "budget spent" None (Backoff.delay b 8);
  let calls = ref 0 in
  let res =
    Backoff.retry
      (Backoff.make ~base:0.001 ~attempts:3 ())
      (fun () ->
        incr calls;
        Error "still down")
  in
  Alcotest.(check int) "retry used the whole budget" 3 !calls;
  Alcotest.(check bool) "last error returned" true (res = Error "still down");
  let res = Backoff.retry (Backoff.make ~base:0.001 ~attempts:3 ()) (fun () -> Ok 42) in
  Alcotest.(check bool) "success short-circuits" true (res = Ok 42)

(* ------------------------------------------------------------------ *)
(* Failover machine                                                    *)

let test_failover_machine () =
  let policy = { Failover.retry = Backoff.make ~attempts:3 (); auto_promote = false } in
  let step = Failover.step policy in
  Alcotest.(check bool) "loss starts reconnecting" true
    (step Failover.Streaming Failover.Connection_down = Failover.Reconnecting 0);
  Alcotest.(check bool) "a failed dial counts" true
    (step (Failover.Reconnecting 0) Failover.Retry_failed = Failover.Reconnecting 1);
  Alcotest.(check bool) "recovery resumes streaming" true
    (step (Failover.Reconnecting 1) Failover.Connection_up = Failover.Streaming);
  Alcotest.(check bool) "budget spent -> stopped" true
    (step (Failover.Reconnecting 2) Failover.Retry_failed = Failover.Stopped);
  let auto = { policy with auto_promote = true } in
  Alcotest.(check bool) "budget spent -> promoted under auto_promote" true
    (Failover.step auto (Failover.Reconnecting 2) Failover.Retry_failed = Failover.Promoted);
  Alcotest.(check bool) "promote from anywhere" true
    (step Failover.Streaming Failover.Promote = Failover.Promoted);
  Alcotest.(check bool) "stop from anywhere" true
    (step (Failover.Reconnecting 1) Failover.Stop = Failover.Stopped);
  (* absorbing *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) "promoted absorbs" true
        (Failover.step auto Failover.Promoted ev = Failover.Promoted);
      Alcotest.(check bool) "stopped absorbs" true
        (step Failover.Stopped ev = Failover.Stopped))
    [ Failover.Connection_up; Failover.Connection_down; Failover.Retry_failed;
      Failover.Promote; Failover.Stop ];
  Alcotest.(check bool) "terminal" true
    (Failover.terminal Failover.Promoted
    && Failover.terminal Failover.Stopped
    && (not (Failover.terminal Failover.Streaming))
    && not (Failover.terminal (Failover.Reconnecting 4)));
  (* pacing coherence: every reachable [Reconnecting n] has a delay
     scheduled at index [n], so a policy with [attempts = N] budgets
     exactly N dials before the machine lands in its terminal state *)
  let rec walk st dials =
    match st with
    | Failover.Reconnecting n ->
      Alcotest.(check bool) (Fmt.str "dial %d is scheduled" n) true
        (Backoff.delay policy.Failover.retry n <> None);
      walk (step st Failover.Retry_failed) (dials + 1)
    | _ -> dials
  in
  Alcotest.(check int) "attempts = dials" 3
    (walk (step Failover.Streaming Failover.Connection_down) 0)

(* ------------------------------------------------------------------ *)
(* Wire round-trips of the replication verbs                           *)

let roundtrip_request r =
  match Wire.parse_request (Wire.print_request r) with
  | Ok r' -> Wire.print_request r' = Wire.print_request r
  | Error _ -> false

let roundtrip_response r =
  match Wire.parse_response (Wire.print_response r) with
  | Ok r' -> Wire.print_response r' = Wire.print_response r
  | Error _ -> false

let test_wire_repl_verbs () =
  List.iter
    (fun r ->
      Alcotest.(check bool) (Wire.print_request r) true (roundtrip_request r))
    [ Wire.Follow (-1); Wire.Follow 0; Wire.Follow 123456; Wire.Role; Wire.Promote ];
  Alcotest.(check bool) "FOLLOW -2 rejected" true
    (Result.is_error (Wire.parse_request "FOLLOW -2"));
  let sigma = theory path_sigma in
  let image =
    Snapshot.encode sigma (Incr.dump (Incr.materialize sigma (db "e(a, b). e(b, c).")))
  in
  let awkward_delta =
    Delta.of_lists
      ~additions:[ Atom.make "p" [ Term.Const "Hello"; Term.Const "a b" ] ]
      ~deletions:[ atom "e(a, b)" ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (String.sub (Wire.print_response r) 0 (min 40 (String.length (Wire.print_response r))))
        true (roundtrip_response r))
    [
      Wire.Following 0;
      Wire.Following 42;
      (* binary body: newlines and NULs inside must survive framing *)
      Wire.Snap { sn_epoch = 7; sn_bytes = image };
      Wire.Snap { sn_epoch = 0; sn_bytes = "raw\nbytes\x00with\nnewlines" };
      Wire.Journal_rec { jr_epoch = 3; jr_delta = awkward_delta };
      Wire.Journal_rec { jr_epoch = 1; jr_delta = Delta.empty };
      Wire.Role_reply { rr_primary = true; rr_epoch = 12; rr_lag = 0; rr_primary_addr = None };
      Wire.Role_reply
        {
          rr_primary = false;
          rr_epoch = 9;
          rr_lag = 3;
          (* unix paths may contain spaces; the parser cuts the addr off the tail *)
          rr_primary_addr = Some "unix:/tmp/dir with spaces/primary.sock";
        };
    ];
  (* a SNAP whose byte count disagrees with the body is rejected *)
  Alcotest.(check bool) "SNAP length mismatch rejected" true
    (Result.is_error (Wire.parse_response "SNAP 3 10\nshort"))

(* ------------------------------------------------------------------ *)
(* Shared snapshot codec: wire image = file image, corruption rejected *)

let test_wire_snapshot_codec () =
  let sigma = theory path_sigma in
  let incr = Incr.materialize sigma (db "e(a, b). e(b, c).") in
  let image = Snapshot.encode sigma (Incr.dump incr) in
  (* the same bytes, decoded, rebuild an equal materialization *)
  let sigma', incr' = Snapshot.restore image in
  Alcotest.(check bool) "program survives" true (Snapshot.theory_equal sigma sigma');
  Alcotest.(check bool) "materialization survives" true
    (Database.equal (Incr.db incr) (Incr.db incr'));
  (* and they are byte-identical with what Snapshot.save writes *)
  let file = Filename.temp_file "guarded_repl" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Snapshot.save ~path:file sigma (Incr.dump incr);
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let from_file = really_input_string ic n in
      close_in ic;
      Alcotest.(check bool) "wire image = file image" true (String.equal image from_file));
  (* every corruption is a parseable rejection, never a crash *)
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  in
  List.iter
    (fun (what, bad) ->
      match Snapshot.decode ~what:"<test>" bad with
      | _ -> Alcotest.failf "%s: corruption accepted" what
      | exception Snapshot.Corrupt _ -> ())
    [
      ("bad magic", flip image 0);
      ("flipped body byte", flip image (String.length image / 2));
      ("flipped checksum byte", flip image (String.length image - 1));
      ("truncated", String.sub image 0 (String.length image - 3));
      ("trailing garbage", image ^ "x");
      ("empty", "");
    ];
  (* program mismatch on the bootstrap path is Corrupt, not divergence *)
  match Snapshot.restore_for ~what:"<test>" image (theory "e(X, Y) -> q(X).") with
  | _ -> Alcotest.fail "foreign program accepted"
  | exception Snapshot.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Client: typed connection loss + reconnect                           *)

let test_client_connection_lost () =
  let sock = fresh_sock () in
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket sock) in
  let c = Client.connect (Server.address srv) in
  Alcotest.(check int) "serving before the loss" 1 (List.length (Client.query c "path"));
  Server.stop srv;
  (match Client.request c Wire.Stats with
  | exception Client.Connection_lost _ -> ()
  | _ -> Alcotest.fail "expected Connection_lost after the server died");
  (* reconnect against a dead address exhausts a bounded budget *)
  (match Client.reconnect ~backoff:(Backoff.make ~base:0.001 ~attempts:2 ()) c with
  | exception Client.Connection_lost _ -> ()
  | () -> Alcotest.fail "reconnect to a dead server succeeded");
  (* a new server on the same address: reconnect revives the handle *)
  let st2 = State.create (theory path_sigma) (db "e(a, b). e(b, c).") in
  let srv2 = Server.listen st2 (Server.Unix_socket sock) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv2)
    (fun () ->
      Client.reconnect c;
      Alcotest.(check int) "serving after reconnect" 3 (List.length (Client.query c "path"));
      Client.close c)

(* After a failed reconnect the handle's stored fd number is already
   closed and the kernel may have reassigned it; shutdown/close must
   leave it alone or they tear down an unrelated descriptor. *)
let test_client_close_after_failed_reconnect () =
  let sock = fresh_sock () in
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket sock) in
  let c = Client.connect (Server.address srv) in
  Server.stop srv;
  (match Client.reconnect ~backoff:(Backoff.make ~base:0.001 ~attempts:2 ()) c with
  | exception Client.Connection_lost _ -> ()
  | () -> Alcotest.fail "reconnect to a dead server succeeded");
  (* lowest-free-fd allocation: this probe takes the number the failed
     reconnect released — exactly the descriptor a double-close hits *)
  let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
    (fun () ->
      Client.shutdown c;
      Client.close c;
      Client.close c;
      match Unix.fstat probe with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        Alcotest.fail "close after a failed reconnect closed an unrelated fd")

(* ------------------------------------------------------------------ *)
(* Bootstrap equivalence: snapshot-at-k + stream = replay-from-0       *)

(* One primary; [early] attaches with a local epoch-0 materialization
   before any commit (journal replay of every epoch), [late] attaches
   after [k] commits (wire snapshot at k + stream of the rest). Both
   must converge to the primary, whatever the path. *)
let bootstrap_equivalence sigma db0 batches_before batches_after =
  let st = State.create sigma db0 in
  let srv = Server.listen st (Server.Unix_socket (fresh_sock ())) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let early = start_replica ~local:(sigma, db0) srv in
      Fun.protect
        ~finally:(fun () -> Replica.stop early)
        (fun () ->
          List.iter (fun d -> ignore (State.commit st d)) batches_before;
          let late = start_replica srv in
          Fun.protect
            ~finally:(fun () -> Replica.stop late)
            (fun () ->
              List.iter (fun d -> ignore (State.commit st d)) batches_after;
              drained st early;
              drained st late;
              let reference = State.with_read st (fun m -> Database.copy (Incr.db m)) in
              Database.equal (replica_db early) reference
              && Database.equal (replica_db late) reference
              && Replica.lag early = 0
              && Replica.lag late = 0)))

let test_bootstrap_equivalence () =
  let sigma = theory path_sigma in
  let ok =
    bootstrap_equivalence sigma (db "e(a, b).")
      [ delta_add [ "e(b, c)" ]; delta_add [ "e(c, d)" ] ]
      [
        delta_add [ "e(d, e)" ];
        Delta.of_lists ~additions:[ atom "e(e, f)" ] ~deletions:[ atom "e(a, b)" ];
      ]
  in
  Alcotest.(check bool) "both bootstrap paths converge" true ok

let gen_plain_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 3) gen_fact) (list_size (int_range 0 3) gen_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let prop_bootstrap_equivalence =
  QCheck.Test.make ~count:10 ~name:"replica bootstrap: snapshot-at-k = replay-from-0"
    (QCheck.make
       ~print:(fun (sigma, d, before, after) ->
         Fmt.str "%s@.---@.%a@.---@.%a@.===@.%a" (Theory.to_string sigma) Database.pp d
           (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp)
           before
           (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp)
           after)
       QCheck.Gen.(
         quad (QCheck.gen arbitrary_datalog) (gen_db ())
           (list_size (int_range 1 3) gen_plain_delta)
           (list_size (int_range 1 3) gen_plain_delta)))
    (fun (sigma, db0, before, after) -> bootstrap_equivalence sigma db0 before after)

(* ------------------------------------------------------------------ *)
(* The cluster concurrency oracle                                      *)

(* The server suite's oracle, extended across a cluster: writer threads
   commit through a routing Cluster handle against the primary while
   reads round-robin over two replicas; afterwards the primary must
   equal sequential replay in commit-epoch order and both replicas must
   equal the primary. *)
let run_cluster_case ?pool (sigma, db0, schedules) =
  let st = State.create ?pool sigma db0 in
  let srv = Server.listen ~workers:2 st (Server.Unix_socket (fresh_sock ())) in
  let r1 = start_replica srv in
  let r2 = start_replica srv in
  let finally () =
    Replica.stop r1;
    Replica.stop r2;
    Server.stop srv
  in
  Fun.protect ~finally (fun () ->
      let endpoints =
        [
          Server.address srv;
          Server.address (Replica.server r1);
          Server.address (Replica.server r2);
        ]
      in
      let applied = Mutex.create () in
      let order = ref [] in
      let failures = ref [] in
      let client schedule =
        let cl = Cluster.make endpoints in
        Fun.protect
          ~finally:(fun () -> Cluster.close cl)
          (fun () ->
            List.iter
              (fun d ->
                (* interleave a routed read; replicas may lag, the
                   response shape is what matters here *)
                (match Cluster.read cl Wire.Stats with
                | Wire.Stats_reply _ -> ()
                | _ -> failwith "STATS did not answer");
                match Cluster.commit cl d with
                | Ok (_, _, epoch) ->
                  Mutex.lock applied;
                  order := (epoch, d) :: !order;
                  Mutex.unlock applied
                | Error m ->
                  Mutex.lock applied;
                  failures := m :: !failures;
                  Mutex.unlock applied)
              schedule)
      in
      let threads = List.map (fun s -> Thread.create client s) schedules in
      List.iter Thread.join threads;
      if !failures <> [] then false
      else begin
        drained st r1;
        drained st r2;
        let final_db, final_edb =
          State.with_read st (fun m -> (Database.copy (Incr.db m), Database.copy (Incr.edb m)))
        in
        let reference = Database.copy db0 in
        List.iter
          (fun (_, (d : Delta.t)) ->
            List.iter (fun f -> ignore (Database.remove reference f)) d.Delta.deletions;
            List.iter (fun f -> ignore (Database.add reference f)) d.Delta.additions)
          (List.sort (fun (a, _) (b, _) -> compare a b) !order);
        Database.equal final_edb reference
        && Database.equal final_db (Seminaive.eval ?pool sigma reference)
        && Database.equal (replica_db r1) final_db
        && Database.equal (replica_db r2) final_db
      end)

let gen_schedules =
  QCheck.Gen.(list_size (int_range 2 3) (list_size (int_range 1 3) gen_plain_delta))

let print_cluster_case (sigma, d, schedules) =
  Fmt.str "%s@.---@.%a@.---@.%a" (Theory.to_string sigma) Database.pp d
    (Fmt.list ~sep:(Fmt.any "@.===@.") (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp))
    schedules

let arbitrary_cluster_case arb_theory =
  QCheck.make ~print:print_cluster_case
    QCheck.Gen.(triple (QCheck.gen arb_theory) (gen_db ()) gen_schedules)

let prop_cluster_datalog =
  QCheck.Test.make ~count:35 ~name:"cluster = sequential replay (Datalog)"
    (arbitrary_cluster_case arbitrary_datalog) run_cluster_case

let prop_cluster_semipositive =
  QCheck.Test.make ~count:35 ~name:"cluster = sequential replay (semipositive)"
    (arbitrary_cluster_case arbitrary_semipositive) run_cluster_case

let pool = lazy (Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true ())

let prop_cluster_datalog_pool =
  QCheck.Test.make ~count:20 ~name:"cluster = sequential replay (Datalog, pool)"
    (arbitrary_cluster_case arbitrary_datalog) (fun case ->
      run_cluster_case ~pool:(Lazy.force pool) case)

let prop_cluster_semipositive_pool =
  QCheck.Test.make ~count:20 ~name:"cluster = sequential replay (semipositive, pool)"
    (arbitrary_cluster_case arbitrary_semipositive) (fun case ->
      run_cluster_case ~pool:(Lazy.force pool) case)

(* ------------------------------------------------------------------ *)
(* Serving behavior: redirects, ROLE, STATS keys                       *)

let test_replica_serving () =
  with_primary path_sigma "e(a, b). e(b, c)." (fun st srv ->
      let r = start_replica srv in
      Fun.protect
        ~finally:(fun () -> Replica.stop r)
        (fun () ->
          let c = Client.connect (Server.address (Replica.server r)) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              Alcotest.(check int) "replica answers reads" 3
                (List.length (Client.query c "path"));
              (* writes redirect, naming the primary *)
              (match Client.request c (Wire.Add (atom "e(c, d)")) with
              | Wire.Failed msg ->
                let contains hay needle =
                  let nh = String.length hay and nn = String.length needle in
                  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
                  go 0
                in
                Alcotest.(check bool) "redirect names the primary" true
                  (String.length msg > 9
                  && String.sub msg 0 9 = "redirect "
                  && contains msg (Server.string_of_address (Server.address srv)))
              | _ -> Alcotest.fail "expected a redirect ERROR");
              (* ROLE on both ends *)
              (match Client.request c Wire.Role with
              | Wire.Role_reply { rr_primary = false; rr_primary_addr = Some a; _ } ->
                Alcotest.(check string) "replica names its primary"
                  (Server.string_of_address (Server.address srv))
                  a
              | _ -> Alcotest.fail "expected a replica ROLE reply");
              let pc = Client.connect (Server.address srv) in
              Fun.protect
                ~finally:(fun () -> Client.close pc)
                (fun () ->
                  (match Client.request pc Wire.Role with
                  | Wire.Role_reply { rr_primary = true; _ } -> ()
                  | _ -> Alcotest.fail "expected a primary ROLE reply");
                  (* commit on the primary; the replica converges *)
                  (match Client.commit pc (delta_add [ "e(c, d)" ]) with
                  | Ok _ -> ()
                  | Error m -> Alcotest.fail m);
                  drained st r;
                  Alcotest.(check int) "replica caught up" 6
                    (List.length (Client.query c "path"));
                  (* STATS replication keys on both ends *)
                  let ps = Client.stats pc and rs = Client.stats c in
                  Alcotest.(check int) "primary role" 0 ps.Wire.s_role;
                  Alcotest.(check int) "one follower" 1 ps.Wire.s_replicas_connected;
                  Alcotest.(check bool) "journal retains bytes" true
                    (ps.Wire.s_journal_bytes > 0);
                  Alcotest.(check int) "replica role" 1 rs.Wire.s_role;
                  Alcotest.(check int) "replica drained" 0 rs.Wire.s_replication_lag_epochs))))

(* ------------------------------------------------------------------ *)
(* Warm failover: kill the primary, promote, lose nothing              *)

let test_kill_primary_promote () =
  let sock = fresh_sock () in
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket sock) in
  let r = start_replica srv in
  let acked = ref [] in
  List.iter
    (fun d ->
      match State.commit st d with
      | Ok cr -> acked := cr.State.cr_epoch :: !acked
      | Error m -> Alcotest.fail m)
    [ delta_add [ "e(b, c)" ]; delta_add [ "e(c, d)" ]; delta_add [ "e(d, e)" ] ];
  (* drain before the kill: replication is asynchronous, "no committed
     epoch lost" is a claim about acknowledged-and-shipped epochs *)
  drained st r;
  let primary_final = State.with_read st (fun m -> Database.copy (Incr.db m)) in
  Server.stop srv;
  (* explicit warm failover through the wire verb *)
  let c = Client.connect (Server.address (Replica.server r)) in
  Fun.protect
    ~finally:(fun () ->
      Client.close c;
      Replica.stop r)
    (fun () ->
      (match Client.request c Wire.Promote with
      | Wire.Role_reply { rr_primary = true; _ } -> ()
      | resp -> Alcotest.failf "PROMOTE failed: %s" (Wire.print_response resp));
      wait_for "promotion" (fun () -> Server.role (Replica.server r) = Server.Primary);
      (match Client.request c Wire.Role with
      | Wire.Role_reply { rr_primary = true; rr_epoch; _ } ->
        Alcotest.(check int) "every acked epoch survived" (List.length !acked) rr_epoch
      | _ -> Alcotest.fail "expected a primary ROLE reply after PROMOTE");
      Alcotest.(check bool) "no committed fact lost" true
        (Database.equal (replica_db r) primary_final);
      (* the promoted node now accepts writes and continues the epochs *)
      match Client.commit c (delta_add [ "e(e, f)" ]) with
      | Ok (_, _, epoch) -> Alcotest.(check int) "epochs continue" 4 epoch
      | Error m -> Alcotest.failf "write after promotion failed: %s" m)

let test_auto_promote () =
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket (fresh_sock ())) in
  let policy =
    { Failover.retry = Backoff.make ~base:0.002 ~attempts:3 (); auto_promote = true }
  in
  let r = start_replica ~policy srv in
  Fun.protect
    ~finally:(fun () -> Replica.stop r)
    (fun () ->
      ignore (State.commit st (delta_add [ "e(b, c)" ]));
      drained st r;
      Server.stop srv;
      wait_for "auto-promotion" (fun () -> Server.role (Replica.server r) = Server.Primary);
      Alcotest.(check bool) "machine reports promoted" true
        (Replica.failover_state r = Failover.Promoted);
      let c = Client.connect (Server.address (Replica.server r)) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.commit c (delta_add [ "e(c, d)" ]) with
          | Ok (_, _, epoch) -> Alcotest.(check int) "writable, epochs continue" 2 epoch
          | Error m -> Alcotest.failf "write after auto-promotion failed: %s" m))

(* Cluster write routing across a failover: the handle aimed at the
   dead primary probes ROLE and finds the promoted replica. *)
let test_cluster_failover_routing () =
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket (fresh_sock ())) in
  let r = start_replica srv in
  let cl =
    Cluster.make [ Server.address srv; Server.address (Replica.server r) ]
  in
  Fun.protect
    ~finally:(fun () ->
      Cluster.close cl;
      Replica.stop r)
    (fun () ->
      (match Cluster.commit cl (delta_add [ "e(b, c)" ]) with
      | Ok (_, _, 1) -> ()
      | Ok _ -> Alcotest.fail "unexpected epoch"
      | Error m -> Alcotest.fail m);
      drained st r;
      Server.stop srv;
      Replica.promote r;
      wait_for "promotion" (fun () -> Server.role (Replica.server r) = Server.Primary);
      (match Cluster.commit cl (delta_add [ "e(c, d)" ]) with
      | Ok (_, _, epoch) -> Alcotest.(check int) "rerouted to the new primary" 2 epoch
      | Error m -> Alcotest.failf "failover routing failed: %s" m);
      Alcotest.(check string) "cluster re-aimed"
        (Server.string_of_address (Server.address (Replica.server r)))
        (Server.string_of_address (Cluster.primary cl)))

(* A write sent to a replica through a cluster seeded with the replica
   first must follow the redirect to the real primary. *)
let test_cluster_redirect () =
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  let srv = Server.listen st (Server.Unix_socket (fresh_sock ())) in
  let r = start_replica srv in
  (* the replica listed first: the cluster's initial primary guess is wrong *)
  let cl = Cluster.make [ Server.address (Replica.server r); Server.address srv ] in
  Fun.protect
    ~finally:(fun () ->
      Cluster.close cl;
      Replica.stop r;
      Server.stop srv)
    (fun () ->
      (match Cluster.commit cl (delta_add [ "e(b, c)" ]) with
      | Ok (_, _, 1) -> ()
      | Ok _ -> Alcotest.fail "unexpected epoch"
      | Error m -> Alcotest.failf "redirect-following commit failed: %s" m);
      Alcotest.(check string) "redirect re-aimed the cluster"
        (Server.string_of_address (Server.address srv))
        (Server.string_of_address (Cluster.primary cl)))

let suite =
  [
    Alcotest.test_case "journal: append/since/covers" `Quick test_journal;
    Alcotest.test_case "journal: byte-capped eviction" `Quick test_journal_eviction;
    Alcotest.test_case "backoff: schedule + retry" `Quick test_backoff;
    Alcotest.test_case "failover: machine transitions" `Quick test_failover_machine;
    Alcotest.test_case "wire: replication verbs round-trip" `Quick test_wire_repl_verbs;
    Alcotest.test_case "snapshot: wire = file, corruption rejected" `Quick
      test_wire_snapshot_codec;
    Alcotest.test_case "client: Connection_lost + reconnect" `Quick
      test_client_connection_lost;
    Alcotest.test_case "client: close after a failed reconnect is inert" `Quick
      test_client_close_after_failed_reconnect;
    Alcotest.test_case "bootstrap: snapshot-at-k = replay-from-0" `Quick
      test_bootstrap_equivalence;
    Alcotest.test_case "replica: reads, redirects, ROLE, STATS" `Quick test_replica_serving;
    Alcotest.test_case "failover: kill primary, promote, lose nothing" `Quick
      test_kill_primary_promote;
    Alcotest.test_case "failover: auto-promote after a dead primary" `Quick
      test_auto_promote;
    Alcotest.test_case "cluster: redirect re-aims writes" `Quick test_cluster_redirect;
    Alcotest.test_case "cluster: write routing survives failover" `Quick
      test_cluster_failover_routing;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_bootstrap_equivalence;
        prop_cluster_datalog;
        prop_cluster_semipositive;
        prop_cluster_datalog_pool;
        prop_cluster_semipositive_pool;
      ]
