(** Property-based tests (QCheck): random guarded / frontier-guarded
    theories and databases, with the saturating chase as the semantic
    oracle for every translation. *)

open Guarded_core

(* ------------------------------------------------------------------ *)
(* Generators (shared library: guarded.gen)                            *)

open Guarded_gen.Generator

let signature = Guarded_gen.Generator.signature
let gen_atom_over = Guarded_gen.Generator.gen_atom_over

(* The chase oracle; discards the sample when it does not saturate. *)
let oracle_limits = { Guarded_chase.Engine.max_derivations = 3_000; max_depth = Some 4 }

let saturating_answers sigma d ~query =
  match Guarded_chase.Engine.answers ~limits:oracle_limits sigma d ~query with
  | ans, Guarded_chase.Engine.Saturated -> Some ans
  | _, Guarded_chase.Engine.Bounded -> None

let queries = List.map fst signature

let same_answers sigma d answers_of =
  List.for_all
    (fun query ->
      match saturating_answers sigma d ~query with
      | None -> true (* discard non-saturating samples *)
      | Some expected -> (
        match answers_of ~query with
        | None -> true
        | Some got -> Helpers.sort_answers expected = Helpers.sort_answers got))
    queries

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let count = 60

let prop_generated_guarded_is_guarded =
  QCheck.Test.make ~count ~name:"generated guarded theories are guarded" arbitrary_guarded
    Classify.is_guarded

let prop_generated_fg_is_fg =
  QCheck.Test.make ~count ~name:"generated FG theories are frontier-guarded" arbitrary_fg
    Classify.is_frontier_guarded

let prop_normalize_preserves =
  QCheck.Test.make ~count ~name:"normalization preserves answers" (arbitrary_pair arbitrary_fg)
    (fun (sigma, d) ->
      let norm = Normalize.normalize sigma in
      same_answers sigma d (fun ~query -> saturating_answers norm d ~query))

let prop_normalize_is_normal =
  QCheck.Test.make ~count ~name:"normalization reaches normal form" arbitrary_fg (fun sigma ->
      Normalize.is_normal (Normalize.normalize sigma))

let prop_dat_equals_chase =
  QCheck.Test.make ~count ~name:"Thm 3: dat(Σ) = chase on guarded theories"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, d) ->
      match Guarded_translate.Saturate.dat ~max_rules:30_000 sigma with
      | dat, _ ->
        same_answers sigma d (fun ~query ->
            Some (Guarded_datalog.Seminaive.answers dat d ~query))
      | exception Guarded_translate.Saturate.Budget_exceeded _ -> QCheck.assume_fail ())

let prop_rew_fg_nearly_guarded =
  QCheck.Test.make ~count:30 ~name:"Prop 3: rew(Σ) nearly guarded" arbitrary_fg (fun sigma ->
      let norm = Normalize.normalize sigma in
      if not (Classify.is_frontier_guarded norm) then QCheck.assume_fail ()
      else
        match Guarded_translate.Rewrite_fg.rew_frontier_guarded ~max_rules:30_000 norm with
        | rew, _ -> Classify.is_nearly_guarded rew
        | exception Guarded_translate.Expansion.Budget_exceeded _ -> QCheck.assume_fail ())

let prop_thm1_preserves_answers =
  QCheck.Test.make ~count:30 ~name:"Thm 1: rew(Σ) preserves answers"
    (arbitrary_pair arbitrary_fg) (fun (sigma, d) ->
      let norm = Normalize.normalize sigma in
      if not (Classify.is_frontier_guarded norm) then QCheck.assume_fail ()
      else
        match Guarded_translate.Rewrite_fg.rew_frontier_guarded ~max_rules:30_000 norm with
        | rew, _ ->
          let d' = Database.copy d in
          Database.materialize_acdom d';
          same_answers sigma d (fun ~query -> saturating_answers rew d' ~query)
        | exception Guarded_translate.Expansion.Budget_exceeded _ -> QCheck.assume_fail ())

let prop_pipeline_to_datalog =
  QCheck.Test.make ~count:30 ~name:"pipeline: to_datalog preserves answers"
    (arbitrary_pair arbitrary_fg) (fun (sigma, d) ->
      match Guarded_translate.Pipeline.to_datalog sigma with
      | tr ->
        same_answers sigma d (fun ~query ->
            Some (Guarded_datalog.Seminaive.answers tr.Guarded_translate.Pipeline.datalog d ~query))
      | exception Guarded_translate.Pipeline.Not_datalog_expressible _ -> QCheck.assume_fail ()
      | exception Guarded_translate.Expansion.Budget_exceeded _ -> QCheck.assume_fail ()
      | exception Guarded_translate.Saturate.Budget_exceeded _ -> QCheck.assume_fail ())

let prop_chase_tree_wellformed =
  QCheck.Test.make ~count ~name:"Prop 2: chase trees verify P1-P3"
    (arbitrary_pair arbitrary_fg) (fun (sigma, d) ->
      let norm = Normalize.normalize sigma in
      if not (Classify.is_frontier_guarded norm) then QCheck.assume_fail ()
      else begin
        let res = Guarded_chase.Engine.run ~limits:oracle_limits norm d in
        match res.outcome with
        | Guarded_chase.Engine.Bounded -> QCheck.assume_fail ()
        | Guarded_chase.Engine.Saturated -> (
          let tree = Guarded_chase.Tree.build norm d res in
          match Guarded_chase.Tree.verify tree norm d with Ok () -> true | Error _ -> false)
      end)

let prop_seminaive_equals_chase =
  QCheck.Test.make ~count ~name:"seminaive = chase on datalog"
    (arbitrary_pair arbitrary_fg) (fun (sigma, d) ->
      let datalog = Theory.of_rules (List.filter Rule.is_datalog (Theory.rules sigma)) in
      let via_sn = Guarded_datalog.Seminaive.eval datalog d in
      let via_chase = (Guarded_chase.Engine.run datalog d).db in
      Database.equal via_sn via_chase)

let prop_rule_canonicalization_invariant =
  QCheck.Test.make ~count:100 ~name:"canonicalization is renaming-invariant"
    arbitrary_guarded (fun sigma ->
      let g = Names.gensym "qc" in
      List.for_all
        (fun r ->
          let r' = Rule.rename_apart g r in
          Rule.to_string (Rule.canonicalize r) = Rule.to_string (Rule.canonicalize r'))
        (Theory.rules sigma))

let prop_parser_roundtrip =
  QCheck.Test.make ~count:100 ~name:"printer/parser round trip" arbitrary_guarded (fun sigma ->
      List.for_all
        (fun r ->
          let r' = Parser.rule_of_string (Rule.to_string r ^ ".") in
          Rule.to_string (Rule.canonicalize r) = Rule.to_string (Rule.canonicalize r'))
        (Theory.rules sigma))

let prop_homomorphisms_are_homomorphisms =
  QCheck.Test.make ~count ~name:"homomorphism search is sound"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, d) ->
      List.for_all
        (fun r ->
          let body = Rule.body_atoms r in
          List.for_all
            (fun subst ->
              List.for_all (fun a -> Database.mem d (Subst.apply_atom subst a)) body)
            (Homomorphism.all body d))
        (Theory.rules sigma))

let prop_acdom_elimination =
  QCheck.Test.make ~count:40 ~name:"Prop 5: ACDom elimination preserves answers"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, d) ->
      (* enrich each rule with an ACDom atom on one variable *)
      let enriched =
        Theory.of_rules
          (List.map
             (fun r ->
               match Names.Sset.choose_opt (Rule.uvars r) with
               | Some v ->
                 Rule.make_pos
                   ~evars:(Names.Sset.elements (Rule.evars r))
                   (Rule.body_atoms r @ [ Atom.make Database.acdom_rel [ Term.Var v ] ])
                   (Rule.head r)
               | None -> r)
             (Theory.rules sigma))
      in
      let star = Guarded_translate.Acdom.axiomatize enriched in
      let d_ac = Database.copy d in
      Database.materialize_acdom d_ac;
      (* Def. 15 covers the relations of Σ; query those only (a database
         relation outside Σ has no starred copy). *)
      let sigma_queries =
        List.filter
          (fun q ->
            Theory.Rel_set.exists
              (fun (name, _, _) -> String.equal name q)
              (Theory.relations enriched))
          queries
      in
      List.for_all
        (fun query ->
          match saturating_answers enriched d_ac ~query with
          | None -> true
          | Some expected -> (
            match saturating_answers star d ~query:(Guarded_translate.Acdom.star_query query) with
            | None -> true
            | Some got -> Helpers.sort_answers expected = Helpers.sort_answers got))
        sigma_queries)

let prop_string_db_roundtrip =
  QCheck.Test.make ~count:50 ~name:"string database round trip"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) (oneofl [ "one"; "zero" ])))
    (fun word ->
      let d, info = Guarded_capture.String_db.encode ~k:1 word in
      let decoded = Guarded_capture.String_db.decode ~k:1 d in
      List.length decoded = info.Guarded_capture.String_db.cells
      && List.for_all2
           (fun w d -> String.equal w d)
           word
           (List.filteri (fun i _ -> i < List.length word) decoded))

(* Random positive Datalog programs over the signature: every rule's
   head variables come from its body. *)
let gen_datalog_rule =
  QCheck.Gen.(
    int_range 2 3 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool) >>= fun body ->
    let body_vars =
      List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
    in
    if Names.Sset.is_empty body_vars then
      oneofl signature >|= fun (name, arity) ->
      Rule.make_pos body [ Atom.make name (List.init arity (fun _ -> Term.Const "a")) ]
    else
      oneofl (Names.Sset.elements body_vars) >>= fun v ->
      oneofl signature >|= fun (name, arity) ->
      Rule.make_pos body [ Atom.make name (List.init arity (fun _ -> Term.Var v)) ])

let arbitrary_datalog =
  QCheck.make ~print:Theory.to_string
    QCheck.Gen.(list_size (int_range 1 4) gen_datalog_rule >|= Theory.of_rules)

let prop_weak_acyclicity_terminates =
  QCheck.Test.make ~count:60 ~name:"weak acyclicity implies restricted-chase termination"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, d) ->
      if not (Acyclicity.is_weakly_acyclic sigma) then QCheck.assume_fail ()
      else begin
        let res =
          Guarded_chase.Engine.run
            ~limits:{ max_derivations = 50_000; max_depth = None }
            ~variant:Guarded_chase.Engine.Restricted sigma d
        in
        res.outcome = Guarded_chase.Engine.Saturated
      end)

let prop_magic_equals_seminaive =
  QCheck.Test.make ~count:80 ~name:"magic sets = seminaive on the query"
    (arbitrary_pair arbitrary_datalog) (fun (sigma, d) ->
      List.for_all
        (fun (rel, arity) ->
          let pattern =
            List.init arity (fun i ->
                (* randomly-ish bind the first argument on binary+ relations *)
                if i = 0 && arity > 1 then Term.Const "a" else Term.Var (Fmt.str "Q%d" i))
          in
          let q = { Guarded_datalog.Magic.q_rel = rel; q_pattern = pattern } in
          let via_magic = Guarded_datalog.Magic.answers sigma q d in
          let full = Guarded_datalog.Seminaive.eval sigma d in
          let expected =
            Database.candidates full (Atom.make rel pattern)
            |> List.filter_map (fun fact ->
                   match Subst.match_atom Subst.empty (Atom.make rel pattern) fact with
                   | Some _ -> Some (Atom.args fact)
                   | None -> None)
            |> Helpers.sort_answers
          in
          expected = Helpers.sort_answers via_magic)
        signature)

let prop_subsumption_preserves =
  QCheck.Test.make ~count:60 ~name:"subsumption reduction preserves the fixpoint"
    (arbitrary_pair arbitrary_datalog) (fun (sigma, d) ->
      let reduced = Guarded_translate.Subsumption.reduce sigma in
      Theory.size reduced <= Theory.size sigma
      && Database.equal
           (Guarded_datalog.Seminaive.eval sigma d)
           (Guarded_datalog.Seminaive.eval reduced d))

let prop_restricted_chase_agrees =
  QCheck.Test.make ~count:50 ~name:"restricted chase = oblivious chase answers"
    (arbitrary_pair arbitrary_guarded) (fun (sigma, d) ->
      let obl = Guarded_chase.Engine.run ~limits:oracle_limits sigma d in
      let res =
        Guarded_chase.Engine.run ~limits:oracle_limits
          ~variant:Guarded_chase.Engine.Restricted sigma d
      in
      match (obl.outcome, res.outcome) with
      | Guarded_chase.Engine.Saturated, Guarded_chase.Engine.Saturated ->
        List.for_all
          (fun (rel, _) ->
            let tuples db' =
              Database.fold
                (fun a acc ->
                  if Atom.rel a = rel && List.for_all Term.is_const (Atom.terms a) then
                    Atom.args a :: acc
                  else acc)
                db' []
              |> Helpers.sort_answers
            in
            tuples obl.db = tuples res.db)
          signature
        && res.derivations <= obl.derivations
      | _ -> QCheck.assume_fail ())

let gen_cq =
  QCheck.Gen.(
    int_range 2 4 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool) >>= fun body ->
    let body_vars =
      List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
    in
    if Names.Sset.is_empty body_vars then return (Guarded_cq.Cq.make body ~answer_vars:[])
    else
      oneofl (Names.Sset.elements body_vars) >|= fun v ->
      Guarded_cq.Cq.make body ~answer_vars:[ v ])

let arbitrary_cq = QCheck.make ~print:(Fmt.to_to_string Guarded_cq.Cq.pp) gen_cq

let prop_core_equivalent =
  QCheck.Test.make ~count:100 ~name:"CQ core is equivalent and no larger" arbitrary_cq
    (fun q ->
      let c = Guarded_cq.Minimize.core q in
      List.length c.Guarded_cq.Cq.body <= List.length q.Guarded_cq.Cq.body
      && Guarded_cq.Minimize.equivalent q c)

let prop_containment_reflexive =
  QCheck.Test.make ~count:100 ~name:"CQ containment is reflexive" arbitrary_cq (fun q ->
      Guarded_cq.Minimize.contained_in q q)

let prop_core_same_answers =
  QCheck.Test.make ~count:60 ~name:"CQ core has the same answers"
    (QCheck.pair arbitrary_cq arbitrary_db) (fun (q, d) ->
      let c = Guarded_cq.Minimize.core q in
      let eval query =
        let tuples = ref [] in
        Homomorphism.iter_pos query.Guarded_cq.Cq.body d (fun subst ->
            let tuple =
              List.map
                (fun v ->
                  match Subst.find_opt v subst with Some t -> t | None -> Term.Const "?")
                query.Guarded_cq.Cq.answer_vars
            in
            tuples := tuple :: !tuples);
        Helpers.sort_answers !tuples
      in
      eval q = eval c)

let prop_tm_simulation =
  QCheck.Test.make ~count:25 ~name:"Thm 4: chase simulation agrees with the machine"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 5) (oneofl [ "one"; "zero" ])))
    (fun word ->
      let d, info = Guarded_capture.String_db.encode ~k:1 word in
      let direct =
        Guarded_capture.Turing.accepts Guarded_capture.Turing.parity_machine
          ~cells:info.Guarded_capture.String_db.cells word
      in
      match Guarded_capture.Tm_encode.accepts ~k:1 Guarded_capture.Turing.parity_machine d with
      | Ok via_chase -> direct = via_chase
      | Error _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_generated_guarded_is_guarded;
      prop_generated_fg_is_fg;
      prop_normalize_preserves;
      prop_normalize_is_normal;
      prop_dat_equals_chase;
      prop_rew_fg_nearly_guarded;
      prop_thm1_preserves_answers;
      prop_pipeline_to_datalog;
      prop_chase_tree_wellformed;
      prop_seminaive_equals_chase;
      prop_rule_canonicalization_invariant;
      prop_parser_roundtrip;
      prop_homomorphisms_are_homomorphisms;
      prop_acdom_elimination;
      prop_string_db_roundtrip;
      prop_tm_simulation;
      prop_weak_acyclicity_terminates;
      prop_magic_equals_seminaive;
      prop_restricted_chase_agrees;
      prop_subsumption_preserves;
      prop_core_equivalent;
      prop_containment_reflexive;
      prop_core_same_answers;
    ]
