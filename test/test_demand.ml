(** Demand-driven serving (lib/incr/demand.ml + lib/incr/subgoal_cache.ml):
    the subgoal cache's epoch and component discipline in isolation, the
    demand backend against a real socket server, and the oracle — random
    schedules of interleaved queries and commits against a demand-driven
    server must answer exactly like the materialized reference, with and
    without a worker pool, including schedules that hit the invalidation
    path. *)

open Guarded_core
open Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Demand = Guarded_incr.Demand
module Subgoal_cache = Guarded_incr.Subgoal_cache
module Pool = Guarded_par.Pool
module Wire = Guarded_server.Wire
module State = Guarded_server.State
module Server = Guarded_server.Server
module Client = Guarded_server.Client

let theory = Helpers.theory
let db = Helpers.db
let atom = Helpers.atom

let sort_tuples = List.sort (List.compare Term.compare)

(* ------------------------------------------------------------------ *)
(* Subgoal cache in isolation                                          *)

let test_cache_key_canonical () =
  let cache = Subgoal_cache.create (theory "e(X, Y) -> tc(X, Y).") in
  let k1 =
    Subgoal_cache.key ~rel:"p" ~pattern:[ Term.Var "X"; Term.Const "a"; Term.Var "X" ]
  in
  let k2 =
    Subgoal_cache.key ~rel:"p" ~pattern:[ Term.Var "Y"; Term.Const "a"; Term.Var "Y" ]
  in
  let k3 =
    Subgoal_cache.key ~rel:"p" ~pattern:[ Term.Var "X"; Term.Const "a"; Term.Var "Y" ]
  in
  Subgoal_cache.store cache k1 ~epoch:(Subgoal_cache.epoch cache) [ [ Term.Const "t" ] ];
  Alcotest.(check bool) "renamed pattern shares the entry" true
    (Subgoal_cache.find cache k2 <> None);
  Alcotest.(check bool) "distinct shape misses" true (Subgoal_cache.find cache k3 = None)

let test_cache_epoch_discipline () =
  let cache = Subgoal_cache.create (theory "e(X, Y) -> tc(X, Y).") in
  let key = Subgoal_cache.key ~rel:"tc" ~pattern:[ Term.Var "X"; Term.Var "Y" ] in
  let e0 = Subgoal_cache.epoch cache in
  (* a commit lands while the subgoal is being evaluated *)
  Subgoal_cache.invalidate cache [ ("e", 0, 2) ];
  Subgoal_cache.store cache key ~epoch:e0 [ [ Term.Const "a"; Term.Const "b" ] ];
  Alcotest.(check bool) "stale store dropped" true (Subgoal_cache.find cache key = None);
  (* computed after the commit: lands *)
  Subgoal_cache.store cache key ~epoch:(Subgoal_cache.epoch cache)
    [ [ Term.Const "a"; Term.Const "b" ] ];
  Alcotest.(check bool) "fresh store lands" true (Subgoal_cache.find cache key <> None)

let test_component_scoped_invalidation () =
  (* Two independent components: tc over e, sym over f. A commit
     touching e must evict tc subgoals and leave sym subgoals hot. *)
  let sigma =
    theory
      {|
    e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z).
    f(X, Y) -> sym(X, Y). sym(X, Y) -> sym(Y, X).
  |}
  in
  let d = Demand.create sigma (db "e(a, b). e(b, c). f(u, v).") in
  Helpers.check_answers "tc cold" (Helpers.tuples "a, b; a, c; b, c") (Demand.answers d ~query:"tc");
  Helpers.check_answers "sym cold" (Helpers.tuples "u, v; v, u") (Demand.answers d ~query:"sym");
  let s0 = Demand.cache_stats d in
  Alcotest.(check int) "two subgoals resident" 2 s0.Subgoal_cache.sc_entries;
  ignore (Demand.apply d (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]));
  let s1 = Demand.cache_stats d in
  Alcotest.(check int) "only tc evicted" 1 s1.Subgoal_cache.sc_evictions;
  Alcotest.(check int) "sym survives" 1 s1.Subgoal_cache.sc_entries;
  (* sym is a hit, tc recomputes over the new EDB *)
  Helpers.check_answers "sym hot" (Helpers.tuples "u, v; v, u") (Demand.answers d ~query:"sym");
  let s2 = Demand.cache_stats d in
  Alcotest.(check int) "sym was a hit" (s1.Subgoal_cache.sc_hits + 1) s2.Subgoal_cache.sc_hits;
  Helpers.check_answers "tc refreshed"
    (Helpers.tuples "a, b; a, c; a, d; b, c; b, d; c, d")
    (Demand.answers d ~query:"tc");
  let s3 = Demand.cache_stats d in
  Alcotest.(check int) "tc was a miss" (s2.Subgoal_cache.sc_misses + 1)
    s3.Subgoal_cache.sc_misses

(* ------------------------------------------------------------------ *)
(* A demand-driven server over a real socket                           *)

let path_sigma = "e(X, Y) -> path(X, Y). e(X, Y), path(Y, Z) -> path(X, Z)."

let test_demand_server_socket () =
  let sock = Filename.temp_file "guarded" ".sock" in
  Sys.remove sock;
  let st = State.create_demand (theory path_sigma) (db "e(a, b). e(b, c).") in
  let srv = Server.listen st (Server.Unix_socket sock) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Client.connect (Server.address srv) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check int) "three paths" 3 (List.length (Client.query c "path"));
          (match
             Client.request c
               (Wire.Query { rel = "path"; pattern = Some [ Term.Const "a"; Term.Var "X" ] })
           with
          | Wire.Answers tuples -> Alcotest.(check int) "from a" 2 (List.length tuples)
          | _ -> Alcotest.fail "expected answers");
          let s1 = Client.stats c in
          Alcotest.(check int) "demand flag" 1 s1.Wire.s_demand;
          Alcotest.(check bool) "misses counted" true (s1.Wire.s_cache_misses > 0);
          Alcotest.(check bool) "entries resident" true (s1.Wire.s_cache_entries > 0);
          (* the same query again is a cache hit *)
          Alcotest.(check int) "still three paths" 3 (List.length (Client.query c "path"));
          let s2 = Client.stats c in
          Alcotest.(check bool) "hit counted" true (s2.Wire.s_cache_hits > s1.Wire.s_cache_hits);
          Alcotest.(check int) "no new miss" s1.Wire.s_cache_misses s2.Wire.s_cache_misses;
          (* a commit invalidates; answers reflect the new EDB *)
          (match Client.commit c (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]) with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          Alcotest.(check int) "six paths" 6 (List.length (Client.query c "path"));
          let s3 = Client.stats c in
          Alcotest.(check bool) "evictions counted" true
            (s3.Wire.s_cache_evictions > s2.Wire.s_cache_evictions);
          (* snapshots are a materialized-mode feature *)
          (match Client.request c (Wire.Snapshot (Some "/tmp/never-written.snap")) with
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "snapshot accepted in demand mode");
          (* conjunctive queries go through the demand path too *)
          (match Client.request_line c "?? path(X, Y), e(Y, Z) -> q(X, Z)." with
          | Wire.Answers tuples ->
            Alcotest.(check bool) "cq answers" true (List.length tuples > 0)
          | _ -> Alcotest.fail "expected cq answers")))

(* ------------------------------------------------------------------ *)
(* The oracle: demand-driven = materialized, under interleaved commits *)

(* Every relation either side mentions, by name. *)
let relation_names sigma database =
  let names = Hashtbl.create 16 in
  Theory.Rel_set.iter (fun (n, _, _) -> Hashtbl.replace names n ()) (Theory.relations sigma);
  List.iter (fun (n, _, _) -> Hashtbl.replace names n ()) (Database.relations database);
  Hashtbl.fold (fun n () acc -> n :: acc) names []

(* The materialized reference for a pattern query, as the server
   computes it. *)
let reference_pattern_answers incr rel pattern =
  let pat = Atom.make rel pattern in
  let out = ref [] in
  Database.iter_candidates (Incr.db incr) pat (fun fact ->
      if Atom.ann fact = [] then
        match Subst.match_atom Subst.empty pat fact with
        | Some _ when List.for_all Term.is_const (Atom.args fact) ->
          out := Atom.args fact :: !out
        | _ -> ());
  List.sort_uniq (List.compare Term.compare) !out

(* One round of queries against both sides; false on any divergence.
   Relation queries are compared both as sorted tuple lists and as
   [Database.equal] fact sets; pattern and conjunctive queries as
   sorted tuple lists. *)
let agree_round demand reference =
  let ok = ref true in
  let rels = relation_names (Demand.program demand) (Incr.edb reference) in
  List.iter
    (fun rel ->
      let d_ans = sort_tuples (Demand.answers demand ~query:rel) in
      let r_ans = sort_tuples (Incr.answers reference ~query:rel) in
      if d_ans <> r_ans then ok := false;
      let as_db tuples = Database.of_atoms (List.map (fun tp -> Atom.make rel tp) tuples) in
      if not (Database.equal (as_db d_ans) (as_db r_ans)) then ok := false)
    rels;
  (* pattern queries: each program relation, first argument bound to
     each generator constant *)
  Theory.Rel_set.iter
    (fun (rel, ann, arity) ->
      if ann = 0 && arity > 0 then
        List.iteri
          (fun i c ->
            if i < 2 then begin
              let pattern =
                Term.Const c
                :: List.init (arity - 1) (fun j -> Term.Var (Fmt.str "X%d" j))
              in
              let d_ans = sort_tuples (Demand.pattern_answers demand ~rel ~pattern) in
              let r_ans = reference_pattern_answers reference rel pattern in
              if d_ans <> r_ans then ok := false
            end)
          constants)
    (Theory.relations (Demand.program demand));
  (* conjunctive queries from the program's own rule bodies *)
  List.iteri
    (fun i r ->
      if i < 2 then begin
        let body = Rule.body_atoms r in
        if body <> [] then begin
          let answer_vars =
            List.concat_map Atom.vars body |> List.sort_uniq String.compare |> fun vs ->
            List.filteri (fun i _ -> i < 2) vs
          in
          let d_ans = sort_tuples (Demand.cq_answers demand ~body ~answer_vars) in
          let r_ans = sort_tuples (Incr.cq_answers reference ~body ~answer_vars) in
          if d_ans <> r_ans then ok := false
        end
      end)
    (Theory.rules (Demand.program demand));
  !ok

let run_demand_case ?pool (sigma, db0, deltas) =
  let st = State.create_demand ?pool sigma db0 in
  let reference = Incr.materialize ?pool sigma db0 in
  let ok = ref true in
  let round () =
    State.with_backend st (function
      | State.Materialized _ | State.Chase _ -> ok := false
      | State.Demand d -> if not (agree_round d reference) then ok := false)
  in
  round ();
  List.iter
    (fun delta ->
      (match State.commit st delta with Ok _ -> () | Error _ -> ok := false);
      ignore (Incr.apply reference delta);
      round ())
    deltas;
  State.shutdown st;
  !ok

let gen_deltas =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (pair (list_size (int_range 0 3) gen_fact) (list_size (int_range 0 3) gen_fact)
      >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions))

let print_demand_case (sigma, d, deltas) =
  Fmt.str "%s@.---@.%a@.---@.%a" (Theory.to_string sigma) Database.pp d
    (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp)
    deltas

let arbitrary_demand_case arb_theory =
  QCheck.make ~print:print_demand_case
    QCheck.Gen.(triple (QCheck.gen arb_theory) (gen_db ()) gen_deltas)

let pool = lazy (Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true ())

let prop_demand_datalog =
  QCheck.Test.make ~count:30 ~name:"demand = materialized (Datalog)"
    (arbitrary_demand_case arbitrary_datalog) run_demand_case

let prop_demand_semipositive =
  QCheck.Test.make ~count:30 ~name:"demand = materialized (semipositive)"
    (arbitrary_demand_case arbitrary_semipositive) run_demand_case

let prop_demand_datalog_pool =
  QCheck.Test.make ~count:25 ~name:"demand = materialized (Datalog, pool)"
    (arbitrary_demand_case arbitrary_datalog) (fun case ->
      run_demand_case ~pool:(Lazy.force pool) case)

let prop_demand_semipositive_pool =
  QCheck.Test.make ~count:25 ~name:"demand = materialized (semipositive, pool)"
    (arbitrary_demand_case arbitrary_semipositive) (fun case ->
      run_demand_case ~pool:(Lazy.force pool) case)

let suite =
  [
    Alcotest.test_case "cache: canonical keys" `Quick test_cache_key_canonical;
    Alcotest.test_case "cache: epoch discipline" `Quick test_cache_epoch_discipline;
    Alcotest.test_case "cache: component-scoped invalidation" `Quick
      test_component_scoped_invalidation;
    Alcotest.test_case "server: demand-driven socket session" `Quick test_demand_server_socket;
    QCheck_alcotest.to_alcotest prop_demand_datalog;
    QCheck_alcotest.to_alcotest prop_demand_semipositive;
    QCheck_alcotest.to_alcotest prop_demand_datalog_pool;
    QCheck_alcotest.to_alcotest prop_demand_semipositive_pool;
  ]
