(** Failure injection and budget robustness: every long-running
    computation must fail loudly (or fall back exactly) rather than
    return a wrong answer. *)

open Guarded_core
module Pipeline = Guarded_translate.Pipeline
module Expansion = Guarded_translate.Expansion
module Saturate = Guarded_translate.Saturate

let check = Alcotest.check
let cbool = Alcotest.bool

let test_expansion_budget () =
  let sigma = Normalize.normalize (Helpers.publications_theory ()) in
  match Guarded_translate.Rewrite_fg.rew_frontier_guarded ~max_rules:50 sigma with
  | exception Expansion.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "tiny expansion budget not enforced"

let test_saturation_budget () =
  let sigma = Helpers.example7_theory () in
  match Saturate.dat ~max_rules:3 sigma with
  | exception Saturate.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "tiny saturation budget not enforced"

let test_closure_budget () =
  let sigma = Helpers.example7_theory () in
  match Saturate.closure ~max_rules:6 sigma with
  | exception Saturate.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "tiny closure budget not enforced"

let test_answer_falls_back_to_chase () =
  (* With a translation budget too small for the expansion, answer()
     must still produce the exact result through the chase. *)
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let budget =
    { Pipeline.max_expansion_rules = 10; max_saturation_rules = 10; max_ground_rules = 10 }
  in
  let expected = Helpers.chase_answers sigma d ~query:"q" in
  Helpers.check_answers "fallback answers" expected (Pipeline.answer ~budget sigma d ~query:"q")

let test_answer_incomplete_reported () =
  (* Budget too small AND a non-terminating chase: must raise, not lie. *)
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a). anchor(b)." in
  let budget =
    { Pipeline.max_expansion_rules = 2; max_saturation_rules = 2; max_ground_rules = 2 }
  in
  match Pipeline.answer ~budget sigma d ~query:"gen" with
  | exception Pipeline.Answering_incomplete _ -> ()
  | _ -> Alcotest.fail "incomplete answering not reported"

let test_translate_rejects_wrong_language () =
  (* The FG rewriting must refuse non-FG input instead of mistranslating. *)
  let tc = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  (match Guarded_translate.Rewrite_fg.rew_frontier_guarded tc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-FG input accepted by rew_frontier_guarded");
  let wg = Helpers.wg_theory () in
  match Guarded_translate.Rewrite_fg.rew_nearly_frontier_guarded (Normalize.normalize wg) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "WG input accepted by rew_nearly_frontier_guarded"

let test_thm2_corner_detected () =
  (* A safe variable at an affected head position: the unsupported
     corner of Def. 17 must be reported, not mistranslated. *)
  let sigma =
    Helpers.theory
      {|
    seed(U) -> exists W. t(W, W).
    a(X) -> exists Y. r(Y).
    r(Y), s(X) -> t(Y, X).
  |}
  in
  let norm = Normalize.normalize sigma in
  if not (Classify.is_weakly_frontier_guarded norm) then
    Alcotest.fail "corner witness is not even WFG"
  else
    match Guarded_translate.Annotate.rew_weakly_frontier_guarded norm with
    | exception Invalid_argument m ->
      let contains_sub hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      check cbool "mentions the corner" true (contains_sub m "affected")
    | _ ->
      (* If the translation happens to go through (e.g. a smarter future
         version), it must at least produce a weakly guarded theory. *)
      ()

let test_cli_error_paths () =
  (* Parser and rule errors surface as the documented exceptions. *)
  (match Parser.theory_of_string "p(X) ->" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "truncated rule accepted");
  match Parser.theory_of_string "p(X) -> q(X, Y)." with
  | exception Rule.Ill_formed _ -> ()
  | _ -> Alcotest.fail "unsafe rule accepted"

let test_chase_budget_is_sound () =
  (* A bounded chase must be a subset of the saturated one. *)
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let full = (Guarded_chase.Engine.run sigma d).db in
  List.iter
    (fun budget ->
      let partial =
        (Guarded_chase.Engine.run
           ~limits:{ max_derivations = budget; max_depth = None }
           sigma d)
          .db
      in
      Database.iter
        (fun a ->
          if not (Database.mem full a) then
            Alcotest.failf "bounded chase invented %s" (Atom.to_string a))
        partial)
    [ 0; 1; 2; 3; 5 ]

let suite =
  [
    Alcotest.test_case "expansion budget enforced" `Quick test_expansion_budget;
    Alcotest.test_case "saturation budget enforced" `Quick test_saturation_budget;
    Alcotest.test_case "closure budget enforced" `Quick test_closure_budget;
    Alcotest.test_case "answer falls back to chase" `Quick test_answer_falls_back_to_chase;
    Alcotest.test_case "incomplete answering reported" `Quick test_answer_incomplete_reported;
    Alcotest.test_case "wrong-language input rejected" `Quick test_translate_rejects_wrong_language;
    Alcotest.test_case "Thm 2 corner detected" `Quick test_thm2_corner_detected;
    Alcotest.test_case "parser error paths" `Quick test_cli_error_paths;
    Alcotest.test_case "bounded chase is sound" `Quick test_chase_budget_is_sound;
  ]
