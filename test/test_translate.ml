(** Tests for the translation machinery of Sections 5 and 6: selections,
    rc/rnc-rewritings (checked against the paper's Examples 3-6), the
    expansion, rew (Theorem 1, Propositions 3-5), the annotation pipeline
    (Theorem 2) and the saturation (Theorem 3, Example 7, Prop. 6). *)

open Guarded_core
module Selection = Guarded_translate.Selection
module Rewritings = Guarded_translate.Rewritings
module Expansion = Guarded_translate.Expansion
module Rewrite_fg = Guarded_translate.Rewrite_fg
module Acdom = Guarded_translate.Acdom
module Annotate = Guarded_translate.Annotate
module Saturate = Guarded_translate.Saturate
module Pipeline = Guarded_translate.Pipeline

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let slist = Alcotest.list Alcotest.string

let mu bindings = Subst.of_list (List.map (fun (x, y) -> (x, Term.Var y)) bindings)

(* --- selections (Defs. 7-9, Examples 3-6) ---------------------------- *)

let example3_rule () =
  Helpers.rule "r(X0, X1), r(X1, X2), r(X2, X3), r(X3, X4), r(X4, X1) -> p(X1)."

let test_example3_cov_keep () =
  let sigma = example3_rule () in
  let m = mu [ ("X4", "X2"); ("X2", "X2"); ("X3", "X3") ] in
  let cov = Selection.covered sigma m in
  check cint "two covered atoms" 2 (List.length cov);
  check cbool "r(X2,X3) covered" true (List.exists (Atom.equal (Helpers.atom "r(X2, X3)")) cov);
  check cbool "r(X3,X4) covered" true (List.exists (Atom.equal (Helpers.atom "r(X3, X4)")) cov);
  check slist "keep = {X2}" [ "X2" ] (Selection.keep ~include_head:true sigma m)

let example5_rule () =
  Helpers.rule "r(X1, X2), r(X2, X3), r(X3, X4), r(X4, X1), r(X4, X5) -> p(X1, X2)."

let test_example5_cov_keep () =
  let sigma = example5_rule () in
  let m = mu [ ("X1", "X1"); ("X2", "X2"); ("X3", "X3") ] in
  let cov = Selection.covered sigma m in
  check cint "two covered atoms" 2 (List.length cov);
  check slist "keep = {X1, X3}" [ "X1"; "X3" ] (Selection.keep ~include_head:false sigma m)

let sigma3_rule () = List.nth (Theory.rules (Helpers.publications_theory ())) 2
let sigma4_rule () = List.nth (Theory.rules (Helpers.publications_theory ())) 3

let test_example4_cov_keep () =
  (* Example 4: the rc data of σ4 with μ = {x→x, z→z}. *)
  let r = sigma4_rule () in
  let m = mu [ ("X", "X"); ("Z", "Z") ] in
  let cov = Selection.covered r m in
  check cint "hasTopic and scientific covered" 2 (List.length cov);
  check slist "keep = {X}" [ "X" ] (Selection.keep ~include_head:true r m)

let test_example6_cov_keep () =
  (* Example 6: the rnc data of σ3 with μ = {x→x, z→z}. *)
  let r = sigma3_rule () in
  let m = mu [ ("X", "X"); ("Z", "Z") ] in
  let cov = Selection.covered r m in
  check cint "only hasTopic(x,z) covered" 1 (List.length cov);
  check slist "keep = {X}" [ "X" ] (Selection.keep ~include_head:false r m)

let test_selection_enumeration () =
  let r = Helpers.rule "r(X, Y), s(Y, Z) -> p(X)." in
  let sels = Selection.enumerate ~k:2 r in
  (* all retractions with range <= 2 over {X,Y,Z}, including the empty one *)
  check cbool "non-trivial count" true (List.length sels > 10);
  (* every enumerated selection is a retraction with small range *)
  List.iter
    (fun m ->
      let range = Selection.range_vars m in
      check cbool "range within k" true (Names.Sset.cardinal range <= 2);
      Names.Sset.iter
        (fun v ->
          match Subst.find_opt v m with
          | Some (Term.Var v') -> check Alcotest.string "identity on range" v v'
          | _ -> Alcotest.fail "range variable not fixed")
        range)
    sels

(* --- rc / rnc rewritings -------------------------------------------- *)

let name_of_test =
  let tbl = Hashtbl.create 16 in
  let g = Names.gensym "TAux" in
  fun key ->
    match Hashtbl.find_opt tbl key with
    | Some n -> n
    | None ->
      let n = Names.fresh g in
      Hashtbl.add tbl key n;
      n

let test_rc_structure () =
  let r = example3_rule () in
  let m = mu [ ("X4", "X2"); ("X2", "X2"); ("X3", "X3") ] in
  let relations = [ ("q3", 0, 3) ] in
  let rules = Rewritings.rc ~relations ~name_of:name_of_test r m in
  check cbool "rewriting exists" true (rules <> []);
  (* σ'' (the first rule) is frontier-guarded Datalog with fewer
     variables; the σ' variants are guarded. *)
  (match rules with
  | sigma2 :: sigma1s ->
    check cbool "σ'' frontier-guarded" true (Classify.is_frontier_guarded_rule sigma2);
    check cbool "σ'' not mentioning X3, X4" true
      (not (Names.Sset.mem "X3" (Rule.vars sigma2)) && not (Names.Sset.mem "X4" (Rule.vars sigma2)));
    List.iter
      (fun s1 -> check cbool "σ' guarded" true (Classify.is_guarded_rule s1))
      sigma1s
  | [] -> Alcotest.fail "no rules")

let test_rc_variable_projection_required () =
  (* If μ(cov) loses no variable, there is no rc-rewriting. *)
  let r = Helpers.rule "r(X, Y), s(Y, Z) -> p(X)." in
  (* dom = {Y}: cov = {}; no rc at all *)
  let m = mu [ ("Y", "Y") ] in
  check cint "no covered atoms, no rewriting" 0
    (List.length (Rewritings.rc ~relations:[ ("q3", 0, 3) ] ~name_of:name_of_test r m))

let test_rnc_structure () =
  let r = sigma3_rule () in
  let m = mu [ ("X", "X"); ("Z", "Z") ] in
  let node_relations = [ ("keywords", 0, 3) ] in
  let all_relations = [ ("keywords", 0, 3); ("hasAuthor", 0, 2); ("hasTopic", 0, 2) ] in
  let rules = Rewritings.rnc ~node_relations ~all_relations ~name_of:name_of_test r m in
  check cbool "rewriting exists" true (rules <> []);
  (* Every produced rule is frontier-guarded; the σ'' halves are fully
     guarded (Example 6's second rule). *)
  List.iter
    (fun rule -> check cbool "frontier-guarded" true (Classify.is_frontier_guarded_rule rule))
    rules;
  check cbool "some guarded σ''" true (List.exists Classify.is_guarded_rule rules)

(* --- expansion and rew (Theorem 1) ----------------------------------- *)

let test_prop3_nearly_guarded () =
  let norm = Normalize.normalize (Helpers.publications_theory ()) in
  let rew, _ = Rewrite_fg.rew_frontier_guarded ~max_rules:50_000 norm in
  check cbool "Prop 3: rew(Σ) nearly guarded" true (Classify.is_nearly_guarded rew)

let chase_limits = { Guarded_chase.Engine.max_derivations = 200_000; max_depth = None }

let rew_answers sigma d ~query =
  let norm = Normalize.normalize sigma in
  let rew, _ = Rewrite_fg.rew_frontier_guarded ~max_rules:50_000 norm in
  let d' = Database.copy d in
  Database.materialize_acdom d';
  Helpers.chase_answers ~limits:chase_limits rew d' ~query

let test_theorem1_running_example () =
  let sigma = Helpers.publications_theory () in
  let d = Helpers.publications_db () in
  Helpers.check_answers "Thm 1 on Σp"
    (Helpers.chase_answers sigma d ~query:"q")
    (rew_answers sigma d ~query:"q")

let test_theorem1_small () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  Helpers.check_answers "Thm 1 on the small ontology"
    (Helpers.chase_answers sigma d ~query:"q")
    (rew_answers sigma d ~query:"q")

let test_theorem1_cyclic_body () =
  (* A cyclic frontier-guarded rule over invented values. *)
  let sigma =
    Helpers.theory
      {|
    start(X) -> exists Y, Z. tri(X, Y, Z).
    tri(X, Y, Z) -> e(X, Y).
    tri(X, Y, Z) -> e(Y, Z).
    tri(X, Y, Z) -> e(Z, X).
    e(X, Y), e(Y, Z), e(Z, X), marked(X) -> cyc(X).
  |}
  in
  let d = Helpers.db "start(a). marked(a)." in
  Helpers.check_answers "cycle detected through nulls" (Helpers.tuples "a")
    (Helpers.chase_answers sigma d ~query:"cyc");
  Helpers.check_answers "Thm 1 preserves it" (Helpers.tuples "a") (rew_answers sigma d ~query:"cyc")

let test_theorem1_negative_case () =
  (* No spurious answers: a database without the supporting facts. *)
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.db "publication(p1). hasAuthor(p1, a1)." in
  Helpers.check_answers "no answers either way"
    (Helpers.chase_answers sigma d ~query:"q")
    (rew_answers sigma d ~query:"q")

let test_prop4_nearly_frontier_guarded () =
  (* An NFG theory: an FG part plus an unguarded Datalog rule over safe
     variables only. *)
  let sigma =
    Helpers.theory
      {|
    publication(X) -> exists K1, K2. keywords(X, K1, K2).
    keywords(X, K1, K2) -> hasTopic(X, K1).
    cites(X, Y), cites(Y, Z) -> cites(X, Z).
    cites(X, Y), seminal(Y) -> influential(X).
  |}
  in
  let norm = Normalize.normalize sigma in
  check cbool "input is NFG" true (Classify.is_nearly_frontier_guarded norm);
  check cbool "input is not FG" false (Classify.is_frontier_guarded norm);
  let rew, _ = Rewrite_fg.rew_nearly_frontier_guarded ~max_rules:50_000 norm in
  check cbool "output is NG" true (Classify.is_nearly_guarded rew);
  let d = Helpers.db "publication(p). cites(p, q). cites(q, r). seminal(r)." in
  let d' = Database.copy d in
  Database.materialize_acdom d';
  Helpers.check_answers "Prop 4 preserves answers"
    (Helpers.chase_answers sigma d ~query:"influential")
    (Helpers.chase_answers rew d' ~query:"influential")

(* --- Prop. 5: ACDom elimination -------------------------------------- *)

let test_prop5_acdom_elimination () =
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y. r(X, Y).
    r(X, Y), ACDom(Y) -> s(Y, X).
    r(X, Y), ACDom(X) -> onDom(X).
  |}
  in
  let star = Acdom.axiomatize sigma in
  (* no occurrence of the built-in ACDom remains *)
  check cbool "no ACDom left" false
    (Theory.Rel_set.mem (Database.acdom_rel, 0, 1) (Theory.relations star));
  let d = Helpers.db "a(c). r(c, d)." in
  let d_ac = Database.copy d in
  Database.materialize_acdom d_ac;
  let expected = Helpers.chase_answers sigma d_ac ~query:"onDom" in
  let got = Helpers.chase_answers star d ~query:(Acdom.star_query "onDom") in
  Helpers.check_answers "Prop 5 preserves answers" expected got

let test_prop5_constants () =
  let sigma = Helpers.theory "-> r(c). ACDom(X), r(X) -> p(X)." in
  let star = Acdom.axiomatize sigma in
  let got = Helpers.chase_answers star (Database.create ()) ~query:(Acdom.star_query "p") in
  Helpers.check_answers "theory constants enter ACDom*" (Helpers.tuples "c") got

(* --- Theorem 2: WFG to WG --------------------------------------------- *)

let wfg_theory () =
  (* Weakly frontier-guarded only: w2 is neither frontier-guarded (its
     frontier {Y, S} shares no atom) nor weakly guarded (the unsafe
     pair {Y, Y2} shares no atom); its unsafe frontier part {Y} is
     covered by box(X, Y). *)
  Helpers.theory
    {|
  @w1 item(X) -> exists Y. box(X, Y).
  @w2 box(X, Y), box(X2, Y2), label(S) -> marked(Y, S).
  @w3 marked(Y, S), box(X, Y) -> out(X, S).
  @w4 out(X, S) -> tagged(S).
|}

let test_theorem2_shape () =
  let sigma = Normalize.normalize (wfg_theory ()) in
  check cbool "input WFG" true (Classify.is_weakly_frontier_guarded sigma);
  check cbool "input not WG" false (Classify.is_weakly_guarded sigma);
  check cbool "input not FG" false (Classify.is_frontier_guarded sigma);
  let r = Annotate.rew_weakly_frontier_guarded ~max_rules:50_000 sigma in
  check cbool "Thm 2: output weakly guarded" true (Classify.is_weakly_guarded r.theory)

let test_theorem2_answers () =
  let sigma = wfg_theory () in
  let d = Helpers.db "item(i1). item(i2). label(l1)." in
  let r = Annotate.rew_weakly_frontier_guarded ~max_rules:50_000 (Normalize.normalize sigma) in
  let d' = Database.copy d in
  Database.materialize_acdom d';
  let expected = Helpers.chase_answers sigma d ~query:"tagged" in
  let got =
    let ans, _ =
      Guarded_chase.Engine.answers ~limits:chase_limits r.theory d' ~query:"tagged"
    in
    ans
  in
  Helpers.check_answers "tagged agrees" expected got;
  check cbool "tagged(l1) certain" true
    (List.exists (List.equal Term.equal [ Term.Const "l1" ]) got);
  let expected2 = Helpers.chase_answers sigma d ~query:"out" in
  let got2, _ = Guarded_chase.Engine.answers ~limits:chase_limits r.theory d' ~query:"out" in
  Helpers.check_answers "out agrees" expected2 got2

let test_annotation_roundtrip () =
  let sigma = Normalize.normalize (wfg_theory ()) in
  let p = Annotate.properize sigma in
  check cbool "properized is proper" true (Classify.is_proper p.theory);
  let annotated = Annotate.annotate p.theory in
  check cbool "a(Σ) frontier-guarded" true
    (Classify.is_frontier_guarded (Annotate.renormalize annotated));
  let back = Annotate.deannotate annotated in
  (* deannotation restores the relation arities *)
  check cbool "arities restored" true
    (Theory.Rel_set.equal (Theory.relations back) (Theory.relations p.theory))

(* --- Theorem 3 / Example 7: guarded to Datalog ------------------------ *)

let test_example7_closure_derives_sigma12 () =
  let sigma = Helpers.example7_theory () in
  let xi, _ = Saturate.closure ~max_rules:5_000 sigma in
  let sigma12 = Rule.canonicalize (Helpers.rule "a(X), c(X) -> d(X).") in
  check cbool "σ12 in Ξ(Σ)" true
    (List.exists
       (fun r -> Rule.to_string (Rule.canonicalize r) = Rule.to_string sigma12)
       (Theory.rules xi))

let test_example7_dat_via_closure () =
  let sigma = Helpers.example7_theory () in
  let dat, _ = Saturate.dat_via_closure ~max_rules:5_000 sigma in
  check cbool "dat is datalog" true (Theory.is_datalog dat);
  Helpers.check_answers "D(c) derivable from dat alone" (Helpers.tuples "k")
    (Guarded_datalog.Seminaive.answers dat (Helpers.example7_db ()) ~query:"d")

let test_example7_dat_consequence_driven () =
  let sigma = Helpers.example7_theory () in
  let dat, _ = Saturate.dat sigma in
  check cbool "dat is datalog" true (Theory.is_datalog dat);
  Helpers.check_answers "consequence-driven agrees" (Helpers.tuples "k")
    (Guarded_datalog.Seminaive.answers dat (Helpers.example7_db ()) ~query:"d")

let test_theorem3_guarded_suite () =
  let cases =
    [
      ( Helpers.example7_theory (),
        Helpers.example7_db (),
        "d" );
      ( Helpers.theory
          {|
        person(X) -> exists Y. parent(X, Y).
        parent(X, Y) -> person(Y).
        parent(X, Y) -> ancestor(X, Y).
        greek(X), parent(X, Y) -> greek(Y).
        greek(X), named(X) -> relevantGreek(X).
      |},
        Helpers.db "person(zeus). greek(zeus). named(zeus).",
        "relevantGreek" );
      ( Helpers.theory
          {|
        a(X) -> exists Y. r(X, Y).
        r(X, Y) -> exists Z. r(Y, Z).
        r(X, Y) -> touched(X).
        touched(X), a(X) -> out(X).
      |},
        Helpers.db "a(c1). a(c2).",
        "out" );
    ]
  in
  List.iter
    (fun (sigma, d, query) ->
      let dat, _ = Saturate.dat sigma in
      check cbool "dat is datalog" true (Theory.is_datalog dat);
      (* The chases here may be infinite; compare against a bounded chase
         only when it saturates, otherwise against known answers via the
         datalog translation of the faithful closure. *)
      let expected, outcome =
        Guarded_chase.Engine.answers
          ~limits:{ max_derivations = 5_000; max_depth = Some 6 }
          sigma d ~query
      in
      let got = Guarded_datalog.Seminaive.answers dat d ~query in
      match outcome with
      | Guarded_chase.Engine.Saturated -> Helpers.check_answers "Thm 3 answers" expected got
      | Guarded_chase.Engine.Bounded ->
        (* sound under-approximation: every chase answer must appear *)
        List.iter
          (fun tuple ->
            check cbool "bounded chase answers included" true
              (List.exists (List.equal Term.equal tuple) got))
          expected)
    cases

let test_prop6_nearly_guarded () =
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y. r(X, Y).
    r(X, Y) -> reached(X).
    e(X, Y), e(Y, Z) -> e(X, Z).
    e(X, Y), reached(X) -> out(X, Y).
  |}
  in
  check cbool "nearly guarded" true (Classify.is_nearly_guarded sigma);
  let dat, _ = Saturate.dat_nearly_guarded sigma in
  check cbool "dat is datalog" true (Theory.is_datalog dat);
  let d = Helpers.db "a(n1). e(n1, n2). e(n2, n3)." in
  Helpers.check_answers "Prop 6 preserves answers"
    (Helpers.chase_answers sigma d ~query:"out")
    (Guarded_datalog.Seminaive.answers dat d ~query:"out")

(* --- subsumption reduction --------------------------------------------- *)

let test_subsumption_basic () =
  let general = Helpers.rule "e(X, Y) -> p(X)." in
  let special = Helpers.rule "e(X, c), f(X) -> p(X)." in
  check cbool "general subsumes special" true
    (Guarded_translate.Subsumption.subsumes general special);
  check cbool "special does not subsume general" false
    (Guarded_translate.Subsumption.subsumes special general);
  let other_head = Helpers.rule "e(X, Y) -> q(X)." in
  check cbool "different heads never subsume" false
    (Guarded_translate.Subsumption.subsumes general other_head)

let test_subsumption_reduce_preserves_answers () =
  let sigma =
    Helpers.theory
      {|
    e(X, Y) -> p(X).
    e(X, c), f(X) -> p(X).
    e(X, Y), e(X, Y2) -> p(X).
    p(X), f(X) -> good(X).
  |}
  in
  let reduced = Guarded_translate.Subsumption.reduce sigma in
  check cbool "strictly smaller" true (Theory.size reduced < Theory.size sigma);
  let d = Helpers.db "e(a, c). e(b, b). f(a)." in
  Helpers.check_answers "same fixpoint answers"
    (Guarded_datalog.Seminaive.answers sigma d ~query:"good")
    (Guarded_datalog.Seminaive.answers reduced d ~query:"good")

let test_subsumption_on_translated_program () =
  let tr = Pipeline.to_datalog (Helpers.small_fg_theory ()) in
  let reduced = Guarded_translate.Subsumption.reduce tr.Pipeline.datalog in
  check cbool "reduction shrinks the translation" true
    (Theory.size reduced <= Theory.size tr.Pipeline.datalog);
  let d = Helpers.small_fg_db () in
  Helpers.check_answers "answers preserved"
    (Guarded_datalog.Seminaive.answers tr.Pipeline.datalog d ~query:"q")
    (Guarded_datalog.Seminaive.answers reduced d ~query:"q")

(* --- the full pipeline ------------------------------------------------ *)

let test_pipeline_datalog_passthrough () =
  let sigma = Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  let tr = Pipeline.to_datalog sigma in
  check cbool "source datalog" true (tr.Pipeline.source_language = Classify.Datalog)

let test_pipeline_small_fg () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  let tr = Pipeline.to_datalog sigma in
  check cbool "source FG" true (tr.Pipeline.source_language = Classify.Frontier_guarded);
  check cbool "output datalog" true (Theory.is_datalog tr.Pipeline.datalog);
  Helpers.check_answers "pipeline answers"
    (Helpers.chase_answers sigma d ~query:"q")
    (Guarded_datalog.Seminaive.answers tr.Pipeline.datalog d ~query:"q")

let test_pipeline_not_expressible () =
  match Pipeline.to_datalog (Helpers.wg_theory ()) with
  | exception Pipeline.Not_datalog_expressible lang ->
    check cbool "weakly guarded rejected" true
      (lang = Classify.Weakly_guarded || lang = Classify.Weakly_frontier_guarded)
  | _ -> Alcotest.fail "weakly guarded theory translated to Datalog"

let test_pipeline_answer_dispatch () =
  (* answer() must handle every language, including the ExpTime ones via
     the Section 7 procedure. *)
  let sigma = Helpers.wg_theory () in
  let d = Helpers.db "node(a). anchor(b)." in
  let ans = Pipeline.answer sigma d ~query:"gen" in
  Helpers.check_answers "gen over the constants" (Helpers.tuples "a") ans;
  (* out pairs nulls with b: no constant tuple is certain *)
  Helpers.check_answers "no certain out tuples" [] (Pipeline.answer sigma d ~query:"out")

let test_section7_wg_suite () =
  (* Value-invention-heavy theories (one genuinely weakly guarded, one
     with an infinite chase) answered through the pipelines. *)
  let cases =
    [
      ( (* nulls chained but only constants queried *)
        Helpers.wg_theory (),
        "node(a). node(b). anchor(m).",
        "gen",
        Some (Helpers.tuples "a; b") );
      ( (* invention + join back on constants *)
        Helpers.theory
          {|
        order(O) -> exists I. contains(O, I).
        contains(O, I) -> exists W. storedAt(I, W).
        storedAt(I, W), contains(O, I) -> fulfilled(O).
      |},
        "order(o1). order(o2).",
        "fulfilled",
        Some (Helpers.tuples "o1; o2") );
      ( (* an infinite chase: only the translation can answer exactly *)
        Helpers.theory
          {|
        seed(X) -> exists Y. next(X, Y).
        next(X, Y) -> exists Z. next(Y, Z).
        next(X, Y) -> visited(Y).
        visited(X), seed(S) -> active(S).
      |},
        "seed(s).",
        "active",
        Some (Helpers.tuples "s") );
    ]
  in
  List.iter
    (fun (sigma, db_text, query, expected) ->
      let d = Helpers.db db_text in
      let got = Pipeline.answer sigma d ~query in
      match expected with
      | Some tuples -> Helpers.check_answers query tuples got
      | None -> ())
    cases

let test_pipeline_entails () =
  let sigma = Helpers.small_fg_theory () in
  let d = Helpers.small_fg_db () in
  check cbool "entails q(a1)" true (Pipeline.entails sigma d (Helpers.atom "q(a1)"));
  check cbool "not entails q(zz)" false (Pipeline.entails sigma d (Helpers.atom "q(zz)"))

let suite =
  [
    Alcotest.test_case "Example 3: cov and keep" `Quick test_example3_cov_keep;
    Alcotest.test_case "Example 5: cov and keep" `Quick test_example5_cov_keep;
    Alcotest.test_case "Example 4: cov and keep" `Quick test_example4_cov_keep;
    Alcotest.test_case "Example 6: cov and keep" `Quick test_example6_cov_keep;
    Alcotest.test_case "selection enumeration" `Quick test_selection_enumeration;
    Alcotest.test_case "rc structure (Example 3)" `Quick test_rc_structure;
    Alcotest.test_case "rc needs variable projection" `Quick test_rc_variable_projection_required;
    Alcotest.test_case "rnc structure (Example 6)" `Quick test_rnc_structure;
    Alcotest.test_case "Prop 3: rew is nearly guarded" `Quick test_prop3_nearly_guarded;
    Alcotest.test_case "Thm 1 on the running example" `Slow test_theorem1_running_example;
    Alcotest.test_case "Thm 1 on the small ontology" `Quick test_theorem1_small;
    Alcotest.test_case "Thm 1 with cyclic bodies" `Quick test_theorem1_cyclic_body;
    Alcotest.test_case "Thm 1 without support" `Quick test_theorem1_negative_case;
    Alcotest.test_case "Prop 4: NFG to NG" `Quick test_prop4_nearly_frontier_guarded;
    Alcotest.test_case "Prop 5: ACDom eliminated" `Quick test_prop5_acdom_elimination;
    Alcotest.test_case "Prop 5: theory constants" `Quick test_prop5_constants;
    Alcotest.test_case "Thm 2: WFG to WG shape" `Quick test_theorem2_shape;
    Alcotest.test_case "Thm 2: answers preserved" `Quick test_theorem2_answers;
    Alcotest.test_case "annotation round trip" `Quick test_annotation_roundtrip;
    Alcotest.test_case "Example 7: σ12 derived" `Quick test_example7_closure_derives_sigma12;
    Alcotest.test_case "Example 7: dat via closure" `Quick test_example7_dat_via_closure;
    Alcotest.test_case "Example 7: consequence-driven dat" `Quick test_example7_dat_consequence_driven;
    Alcotest.test_case "Thm 3 on a guarded suite" `Quick test_theorem3_guarded_suite;
    Alcotest.test_case "Prop 6: nearly guarded to Datalog" `Quick test_prop6_nearly_guarded;
    Alcotest.test_case "pipeline: datalog passthrough" `Quick test_pipeline_datalog_passthrough;
    Alcotest.test_case "pipeline: small FG end to end" `Quick test_pipeline_small_fg;
    Alcotest.test_case "pipeline: WG not expressible" `Quick test_pipeline_not_expressible;
    Alcotest.test_case "pipeline: answer dispatch" `Quick test_pipeline_answer_dispatch;
    Alcotest.test_case "pipeline: entailment" `Quick test_pipeline_entails;
    Alcotest.test_case "Section 7: weakly guarded suite" `Quick test_section7_wg_suite;
    Alcotest.test_case "subsumption basics" `Quick test_subsumption_basic;
    Alcotest.test_case "subsumption preserves answers" `Quick test_subsumption_reduce_preserves_answers;
    Alcotest.test_case "subsumption on translations" `Quick test_subsumption_on_translated_program;
  ]
