(** Tests for the chase-termination analysis: the acyclicity deciders
    (weak ⊆ joint ⊆ super-weak) with their certificates and
    counterexamples, the bounded-chase prover, the analyze report, the
    theory zoo properties, and the chase serving backend. *)

open Guarded_core
open Guarded_analysis
module Generator = Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Chase_mat = Guarded_incr.Chase_mat
module Wire = Guarded_server.Wire
module State = Guarded_server.State
module Server = Guarded_server.Server
module Client = Guarded_server.Client

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let wa_acyclic = function Acyclic.Wa_acyclic _ -> true | Acyclic.Wa_cyclic _ -> false
let ja_acyclic = function Acyclic.Ja_acyclic _ -> true | Acyclic.Ja_cyclic _ -> false
let swa_acyclic = function Acyclic.Swa_acyclic _ -> true | Acyclic.Swa_cyclic _ -> false

(* The ladder: four theories separating the classes.
   - [t_wa] is weakly acyclic.
   - [t_ja] has a special cycle through positions but nulls cannot feed
     the cycle (they would need a [d] fact): jointly acyclic, not
     weakly.
   - [t_swa] conflates positions that the place-level Move keeps apart
     through the unifiability check (distinct constants [c1]/[c2]):
     super-weakly acyclic, not jointly.
   - [t_div] has a genuinely divergent chase. *)
let t_wa = "a(X) -> exists Y. r(X, Y)."
let t_ja = "a(X) -> exists Z. c(X, Z). c(X, Y), d(Y) -> a(Y)."
let t_swa = "a(X) -> exists Z. r(X, Z, c1). r(X, Y, c2) -> a(Y)."
let t_div = "s(X) -> exists Y. r(X, Y). r(X, Y) -> s(Y)."

let test_decider_ladder () =
  let sigma = Helpers.theory t_wa in
  check cbool "t_wa weak" true (wa_acyclic (Acyclic.weak sigma));
  check cbool "t_wa joint" true (ja_acyclic (Acyclic.joint sigma));
  check cbool "t_wa super-weak" true (swa_acyclic (Acyclic.super_weak sigma));
  let sigma = Helpers.theory t_ja in
  check cbool "t_ja not weak" false (wa_acyclic (Acyclic.weak sigma));
  check cbool "t_ja joint" true (ja_acyclic (Acyclic.joint sigma));
  check cbool "t_ja super-weak" true (swa_acyclic (Acyclic.super_weak sigma));
  let sigma = Helpers.theory t_swa in
  check cbool "t_swa not weak" false (wa_acyclic (Acyclic.weak sigma));
  check cbool "t_swa not joint" false (ja_acyclic (Acyclic.joint sigma));
  check cbool "t_swa super-weak" true (swa_acyclic (Acyclic.super_weak sigma));
  let sigma = Helpers.theory t_div in
  check cbool "t_div not weak" false (wa_acyclic (Acyclic.weak sigma));
  check cbool "t_div not joint" false (ja_acyclic (Acyclic.joint sigma));
  check cbool "t_div not super-weak" false (swa_acyclic (Acyclic.super_weak sigma))

let test_certificates_verify () =
  List.iter
    (fun text ->
      let sigma = Helpers.theory text in
      check cbool
        (Fmt.str "weak verdict of %S verifies" text)
        true
        (Acyclic.verify_weak sigma (Acyclic.weak sigma));
      check cbool
        (Fmt.str "joint verdict of %S verifies" text)
        true
        (Acyclic.verify_joint sigma (Acyclic.joint sigma));
      check cbool
        (Fmt.str "super-weak verdict of %S verifies" text)
        true
        (Acyclic.verify_super_weak sigma (Acyclic.super_weak sigma)))
    [ t_wa; t_ja; t_swa; t_div ]

let test_bogus_witnesses_rejected () =
  let sigma = Helpers.theory t_wa in
  (* An empty rank list misses every position. *)
  check cbool "empty WA certificate rejected" false
    (Acyclic.verify_weak sigma (Acyclic.Wa_acyclic []));
  (* A flat-zero ranking breaks strictness on the special edge. *)
  (match Acyclic.weak sigma with
  | Acyclic.Wa_acyclic ranks ->
    check cbool "flat WA certificate rejected" false
      (Acyclic.verify_weak sigma (Acyclic.Wa_acyclic (List.map (fun (p, _) -> (p, 0)) ranks)))
  | Acyclic.Wa_cyclic _ -> Alcotest.fail "t_wa should be weakly acyclic");
  (* A made-up cycle is not in the graph. *)
  check cbool "fake WA cycle rejected" false
    (Acyclic.verify_weak sigma (Acyclic.Wa_cyclic [ ((("a", 0, 1), 0), Acyclic.Special) ]));
  check cbool "empty JA cycle rejected" false
    (Acyclic.verify_joint sigma (Acyclic.Ja_cyclic []));
  check cbool "fake SWA cycle rejected" false
    (Acyclic.verify_super_weak sigma (Acyclic.Swa_cyclic [ 0; 0 ]))

let test_wa_counterexample_shape () =
  match Acyclic.weak (Helpers.theory t_div) with
  | Acyclic.Wa_acyclic _ -> Alcotest.fail "t_div should not be weakly acyclic"
  | Acyclic.Wa_cyclic cycle ->
    check cbool "cycle nonempty" true (cycle <> []);
    check cbool "cycle has a special edge" true
      (List.exists (fun (_, k) -> k = Acyclic.Special) cycle)

let test_prover_ladder () =
  List.iter
    (fun text ->
      let p = Prover.prove (Helpers.theory text) in
      check cbool (Fmt.str "%S saturates" text) true
        (p.Prover.outcome = Guarded_chase.Engine.Saturated))
    [ t_wa; t_ja; t_swa ];
  let p = Prover.prove ~budgets:[ 50; 500 ] (Helpers.theory t_div) in
  check cbool "t_div exhausts the budget" true
    (p.Prover.outcome = Guarded_chase.Engine.Bounded);
  check cint "last budget reported" 500 p.Prover.budget;
  check cbool "offending cycle reported" true (p.Prover.rule_cycle <> [])

(* The restricted chase trivially saturates on the fully-populated
   critical instance (every existential head is pre-satisfied) — the
   reason the prover defaults to the distinct-constants instance. *)
let test_probe_instance_matters () =
  let sigma = Helpers.theory t_div in
  let p = Prover.prove ~db:(Prover.critical_instance sigma) sigma in
  check cbool "critical instance saturates trivially" true
    (p.Prover.outcome = Guarded_chase.Engine.Saturated);
  check cint "no derivations" 0 p.Prover.derivations;
  let p = Prover.prove ~budgets:[ 100 ] ~db:(Helpers.db "s(a).") sigma in
  check cbool "a real seed diverges" true (p.Prover.outcome = Guarded_chase.Engine.Bounded)

let test_critical_instance () =
  let sigma = Helpers.theory "a(X), b(Y) -> r(X, Y)." in
  let db = Prover.critical_instance sigma in
  (* One fresh constant, no theory constants: every relation holds all
     tuples over {crit}: a(crit), b(crit), r(crit,crit). *)
  check cint "three facts" 3 (Database.cardinal db);
  let sigma = Helpers.theory "a(X) -> r(X, c)." in
  let db = Prover.critical_instance sigma in
  (* constants {c, crit}: a/1 gets 2 tuples, r/2 gets 4. *)
  check cint "six facts" 6 (Database.cardinal db)

let test_report_verdicts () =
  let r = Report.analyze (Helpers.theory t_wa) in
  check cbool "t_wa terminating" true
    (r.Report.termination = Report.Terminating Report.Weakly_acyclic);
  let r = Report.analyze (Helpers.theory t_ja) in
  check cbool "t_ja jointly" true
    (r.Report.termination = Report.Terminating Report.Jointly_acyclic);
  let r = Report.analyze (Helpers.theory t_swa) in
  check cbool "t_swa super-weakly" true
    (r.Report.termination = Report.Terminating Report.Super_weakly_acyclic);
  let r = Report.analyze ~budgets:[ 50 ] (Helpers.theory t_div) in
  check cbool "t_div unknown" true (r.Report.termination = Report.Unknown);
  check cbool "t_div probe bounded" true
    (match r.Report.probe with
    | Some p -> p.Prover.outcome = Guarded_chase.Engine.Bounded
    | None -> false);
  (* The report pretty-printer ends in the verdict line the CLI greps. *)
  let text = Fmt.str "%a" Report.pp (Report.analyze (Helpers.theory t_wa)) in
  check cbool "report has termination line" true
    (List.exists
       (fun l -> String.length l >= 12 && String.sub l 0 12 = "termination:")
       (String.split_on_char '\n' text))

(* A theory whose chase is finite but bigger than the first budget:
   escalation must kick in. *)
let test_prover_escalation () =
  let chain n =
    Buffer.contents
      (let b = Buffer.create 256 in
       for i = 0 to n - 1 do
         Buffer.add_string b (Fmt.str "r%d(X) -> exists Y. r%d(Y). " i (i + 1))
       done;
       b)
  in
  let sigma = Helpers.theory (chain 30) in
  let p = Prover.prove ~budgets:[ 2; 2000 ] ~db:(Helpers.db "r0(a).") sigma in
  check cbool "escalated to saturation" true
    (p.Prover.outcome = Guarded_chase.Engine.Saturated);
  check cint "bigger budget used" 2000 p.Prover.budget;
  check cint "thirty nulls invented" 30 p.Prover.nulls

(* ------------------------------------------------------------------ *)
(* Zoo properties: the deciders against known ground truth             *)

(* WA ⊆ JA ⊆ SWA on every sample; and on zoo samples, whose termination
   class is known by construction, all three deciders agree with it. *)
let containment_holds sigma =
  let wa = wa_acyclic (Acyclic.weak sigma) in
  let ja = ja_acyclic (Acyclic.joint sigma) in
  let swa = swa_acyclic (Acyclic.super_weak sigma) in
  ((not wa) || ja) && ((not ja) || swa)

let prop_zoo_ground_truth =
  QCheck.Test.make ~count:60 ~name:"zoo: deciders match the chain's ground truth"
    Generator.arbitrary_zoo (fun z ->
      let sigma = z.Generator.zoo_theory in
      let wa = wa_acyclic (Acyclic.weak sigma) in
      let ja = ja_acyclic (Acyclic.joint sigma) in
      let swa = swa_acyclic (Acyclic.super_weak sigma) in
      containment_holds sigma
      && Acyclic.verify_weak sigma (Acyclic.weak sigma)
      && Acyclic.verify_joint sigma (Acyclic.joint sigma)
      && Acyclic.verify_super_weak sigma (Acyclic.super_weak sigma)
      && if z.Generator.zoo_cyclic then (not wa) && (not ja) && not swa
         else wa && ja && swa)

let prop_guarded_containment =
  QCheck.Test.make ~count:80 ~name:"random guarded: WA => JA => SWA, certificates verify"
    Generator.arbitrary_guarded (fun sigma ->
      containment_holds sigma
      && Acyclic.verify_weak sigma (Acyclic.weak sigma)
      && Acyclic.verify_joint sigma (Acyclic.joint sigma)
      && Acyclic.verify_super_weak sigma (Acyclic.super_weak sigma))

(* Soundness: a decider certificate promises termination on EVERY
   database, so the bounded prover must reach Saturated — both on its
   default probe instance and on a random zoo seed. *)
let prop_certified_saturates =
  QCheck.Test.make ~count:40 ~name:"zoo: decider-certified theories saturate under the prover"
    (QCheck.make
       ~print:(fun (z, d) ->
         Fmt.str "%s@.---@.%a" (Theory.to_string z.Generator.zoo_theory) Database.pp d)
       QCheck.Gen.(pair (QCheck.gen Generator.arbitrary_zoo) Generator.gen_zoo_db))
    (fun (z, seed) ->
      let sigma = z.Generator.zoo_theory in
      (not (swa_acyclic (Acyclic.super_weak sigma)))
      || (Prover.prove sigma).Prover.outcome = Guarded_chase.Engine.Saturated
         && (Prover.prove ~db:seed sigma).Prover.outcome = Guarded_chase.Engine.Saturated)

(* ------------------------------------------------------------------ *)
(* The chase-serving oracle: chase backend = translation backend       *)

let sort_tuples = List.sort (List.compare Term.compare)

let zoo_relations z = List.init z.Generator.zoo_len (fun i -> Fmt.str "z%d" i) @ [ "zsink" ]

(* One round of queries against both sides. Relation and pattern
   queries are certain answers on both backends and must agree exactly
   (also as [Database.equal] fact sets); conjunctive queries may join
   through nulls on the chase side, so the translation's answers are
   only contained in the chase's. *)
let chase_agree z chase reference =
  let ok = ref true in
  List.iter
    (fun rel ->
      let c_ans = sort_tuples (Chase_mat.answers chase ~query:rel) in
      let r_ans = sort_tuples (Incr.answers reference ~query:rel) in
      if c_ans <> r_ans then ok := false;
      let as_db tuples = Database.of_atoms (List.map (fun tp -> Atom.make rel tp) tuples) in
      if not (Database.equal (as_db c_ans) (as_db r_ans)) then ok := false;
      if rel <> "zsink" then
        List.iteri
          (fun i c ->
            if i < 2 then begin
              let pattern = [ Term.Const c; Term.Var "P" ] in
              let c_ans = Chase_mat.pattern_answers chase ~rel ~pattern in
              let r_ans =
                let pat = Atom.make rel pattern in
                let out = ref [] in
                Database.iter_candidates (Incr.db reference) pat (fun fact ->
                    if Atom.ann fact = [] then
                      match Subst.match_atom Subst.empty pat fact with
                      | Some _ when List.for_all Term.is_const (Atom.args fact) ->
                        out := Atom.args fact :: !out
                      | _ -> ());
                List.sort_uniq (List.compare Term.compare) !out
              in
              if c_ans <> r_ans then ok := false
            end)
          Generator.constants)
    (zoo_relations z);
  (* A join along the chain passes through invented nulls on the chase
     side: the translation's certain answers must be contained. *)
  if z.Generator.zoo_len >= 2 then begin
    let body =
      [
        Atom.make "z0" [ Term.Var "X"; Term.Var "Y" ];
        Atom.make "z1" [ Term.Var "Y"; Term.Var "W" ];
      ]
    in
    let c_ans = Chase_mat.cq_answers chase ~body ~answer_vars:[ "X" ] in
    let r_ans = Incr.cq_answers reference ~body ~answer_vars:[ "X" ] in
    if not (List.for_all (fun t -> List.mem t c_ans) r_ans) then ok := false
  end;
  !ok

let gen_zoo_delta len =
  QCheck.Gen.(
    let gen_zoo_fact =
      int_range 0 (len - 1) >>= fun i ->
      pair Generator.gen_const Generator.gen_const >|= fun (c1, c2) ->
      Atom.make (Fmt.str "z%d" i) [ c1; c2 ]
    in
    pair (list_size (int_range 0 3) gen_zoo_fact) (list_size (int_range 0 2) gen_zoo_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let gen_chase_case =
  QCheck.Gen.(
    QCheck.gen Generator.arbitrary_zoo >>= fun z ->
    let z = { z with Generator.zoo_cyclic = false } in
    let z =
      { z with Generator.zoo_theory = Generator.zoo_chain ~len:z.Generator.zoo_len ~cyclic:false () }
    in
    Generator.gen_zoo_db >>= fun db0 ->
    list_size (int_range 1 4) (gen_zoo_delta z.Generator.zoo_len) >|= fun deltas ->
    (z, db0, deltas))

let arbitrary_chase_case =
  QCheck.make
    ~print:(fun (z, d, deltas) ->
      Fmt.str "%s@.---@.%a@.---@.%a"
        (Theory.to_string z.Generator.zoo_theory)
        Database.pp d
        (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp)
        deltas)
    gen_chase_case

let run_chase_case (z, db0, deltas) =
  let sigma = z.Generator.zoo_theory in
  let st = State.create_chase sigma db0 in
  let served = Guarded_translate.Pipeline.serving_program sigma in
  let reference = Incr.materialize served.Guarded_translate.Pipeline.served_program db0 in
  let ok = ref true in
  let round () =
    State.with_backend st (function
      | State.Materialized _ | State.Demand _ -> ok := false
      | State.Chase c -> if not (chase_agree z c reference) then ok := false)
  in
  round ();
  List.iter
    (fun delta ->
      (match State.commit st delta with Ok _ -> () | Error _ -> ok := false);
      ignore (Incr.apply reference delta);
      round ())
    deltas;
  State.shutdown st;
  !ok

let prop_chase_oracle =
  QCheck.Test.make ~count:110 ~name:"chase serving = translation serving (zoo schedules)"
    arbitrary_chase_case run_chase_case

(* ------------------------------------------------------------------ *)
(* Chase serving over a real socket                                    *)

let test_chase_server_socket () =
  let sock = Filename.temp_file "guarded" ".sock" in
  Sys.remove sock;
  (* Every course gets an invented lecturer; [staffed] projects the
     constant back out, so certain answers flow through the nulls. *)
  let sigma = Helpers.theory "c(X) -> exists L. t(L, X). t(L, X) -> staffed(X)." in
  let st = State.create_chase sigma (Helpers.db "c(a). c(b).") in
  let srv = Server.listen st (Server.Unix_socket sock) in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let c = Client.connect (Server.address srv) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          check cint "both courses staffed" 2 (List.length (Client.query c "staffed"));
          check cint "lecturer tuples are null-valued" 0 (List.length (Client.query c "t"));
          let s1 = Client.stats c in
          check cint "chase_mode flag" 1 s1.Wire.s_chase_mode;
          check cint "not demand mode" 0 s1.Wire.s_demand;
          check cint "two nulls resident" 2 s1.Wire.s_chase_nulls;
          check cbool "derivations counted" true (s1.Wire.s_chase_derivations > 0);
          (* An additions-only commit continues the chase. *)
          (match
             Client.commit c (Delta.of_lists ~additions:[ Helpers.atom "c(d)" ] ~deletions:[])
           with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          check cint "new course staffed" 3 (List.length (Client.query c "staffed"));
          let s2 = Client.stats c in
          check cint "a fresh null" 3 s2.Wire.s_chase_nulls;
          check cbool "derivations grew" true
            (s2.Wire.s_chase_derivations > s1.Wire.s_chase_derivations);
          (* A deletion forces a full re-chase. *)
          (match
             Client.commit c (Delta.of_lists ~additions:[] ~deletions:[ Helpers.atom "c(a)" ])
           with
          | Ok _ -> ()
          | Error m -> Alcotest.fail m);
          check cint "course dropped" 2 (List.length (Client.query c "staffed"));
          (* Materialized-mode features are refused, not crashed. *)
          (match Client.request c (Wire.Snapshot (Some "/tmp/never-written.snap")) with
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "snapshot accepted in chase mode");
          (match Client.request c (Wire.Follow 0) with
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "follow accepted in chase mode");
          (* CQs join through the resident nulls. *)
          match Client.request_line c "?? t(L, X), c(X) -> q(X)." with
          | Wire.Answers tuples -> check cint "cq through nulls" 2 (List.length tuples)
          | _ -> Alcotest.fail "expected cq answers"))

(* A divergent theory must be refused at commit time with the state
   intact, and at creation time with an exception. *)
let test_chase_budget_refusal () =
  let sigma = Helpers.theory t_div in
  (match Chase_mat.create ~limits:{ Guarded_chase.Engine.max_derivations = 100; max_depth = None } sigma (Helpers.db "s(a).") with
  | _ -> Alcotest.fail "divergent creation should raise"
  | exception Chase_mat.Nonterminating _ -> ());
  (* Terminating on the empty database; the first real seed diverges. *)
  let cm =
    Chase_mat.create
      ~limits:{ Guarded_chase.Engine.max_derivations = 100; max_depth = None }
      sigma (Database.create ())
  in
  (match Chase_mat.apply cm (Delta.of_lists ~additions:[ Helpers.atom "s(a)" ] ~deletions:[]) with
  | _ -> Alcotest.fail "divergent batch should raise"
  | exception Chase_mat.Nonterminating _ -> ());
  check cint "state unchanged after refusal" 0 (Database.cardinal (Chase_mat.db cm));
  check cint "edb unchanged after refusal" 0 (Database.cardinal (Chase_mat.edb cm))

let suite =
  [
    Alcotest.test_case "decider ladder" `Quick test_decider_ladder;
    Alcotest.test_case "certificates verify" `Quick test_certificates_verify;
    Alcotest.test_case "bogus witnesses rejected" `Quick test_bogus_witnesses_rejected;
    Alcotest.test_case "WA counterexample shape" `Quick test_wa_counterexample_shape;
    Alcotest.test_case "prover ladder" `Quick test_prover_ladder;
    Alcotest.test_case "probe instance matters" `Quick test_probe_instance_matters;
    Alcotest.test_case "critical instance" `Quick test_critical_instance;
    Alcotest.test_case "report verdicts" `Quick test_report_verdicts;
    Alcotest.test_case "prover escalation" `Quick test_prover_escalation;
    Alcotest.test_case "server: chase-mode socket session" `Quick test_chase_server_socket;
    Alcotest.test_case "chase budget refusal" `Quick test_chase_budget_refusal;
    QCheck_alcotest.to_alcotest prop_zoo_ground_truth;
    QCheck_alcotest.to_alcotest prop_guarded_containment;
    QCheck_alcotest.to_alcotest prop_certified_saturates;
    QCheck_alcotest.to_alcotest prop_chase_oracle;
  ]
