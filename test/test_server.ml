(** The network serving subsystem (lib/server) and its substrate: wire
    protocol round-trips (including constants that need quoting), the
    binary codec and snapshot files (corruption must be rejected, warm
    restarts must equal cold materialization), the update-file batch
    parser, and the concurrency oracle — many client threads querying
    and committing against one {!Guarded_server.State.t} must leave
    exactly the state of replaying the batches sequentially in the
    order the writer applied them. *)

open Guarded_core
open Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Seminaive = Guarded_datalog.Seminaive
module Pool = Guarded_par.Pool
module Wire = Guarded_server.Wire
module State = Guarded_server.State
module Server = Guarded_server.Server
module Client = Guarded_server.Client
module Snapshot = Guarded_server.Snapshot

let theory = Helpers.theory
let db = Helpers.db
let atom = Helpers.atom
let check_db = Alcotest.check (Alcotest.testable Database.pp Database.equal)

(* Constants whose bare spelling would not reparse: the printers must
   quote every one of these. *)
let awkward_constants = [ "Hello"; "a b"; ""; "?x"; "_n3"; "p(q)"; "COMMIT" ]

(* ------------------------------------------------------------------ *)
(* Wire protocol round-trips                                           *)

let roundtrip_request r =
  match Wire.parse_request (Wire.print_request r) with
  | Ok r' -> Wire.print_request r' = Wire.print_request r
  | Error _ -> false

let roundtrip_response r =
  match Wire.parse_response (Wire.print_response r) with
  | Ok r' -> Wire.print_response r' = Wire.print_response r
  | Error _ -> false

let test_wire_requests () =
  let awkward = List.map (fun c -> Term.Const c) awkward_constants in
  let reqs =
    [
      Wire.Query { rel = "path"; pattern = None };
      Wire.Query { rel = "path"; pattern = Some [ Term.Const "a"; Term.Var "X" ] };
      Wire.Query { rel = "p"; pattern = Some awkward };
      Wire.Add (Atom.make "p" awkward);
      Wire.Remove (Atom.make "edge" [ Term.Const "New York"; Term.Const "b" ]);
      Wire.Commit;
      Wire.Stats;
      Wire.Snapshot None;
      Wire.Snapshot (Some "/tmp/some file.snap");
      Wire.Quit;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (Wire.print_request r) true (roundtrip_request r))
    reqs;
  (let u, rel = Guarded_cq.Ucq.of_string "path(X, Y), e(Y, Z) -> q(X, Z). ; e(X, 'A b') -> q(X, X)." in
   Alcotest.(check bool) "ucq round-trips" true (roundtrip_request (Wire.Cq (u, rel))));
  (* keyword case-insensitivity and the EXIT alias *)
  Alcotest.(check bool) "commit lowercase" true (Wire.parse_request "commit" = Ok Wire.Commit);
  Alcotest.(check bool) "exit alias" true (Wire.parse_request "EXIT" = Ok Wire.Quit);
  (* rejects *)
  let rejected s = Result.is_error (Wire.parse_request s) in
  Alcotest.(check bool) "empty" true (rejected "");
  Alcotest.(check bool) "garbage" true (rejected "FROBNICATE now");
  Alcotest.(check bool) "non-ground add" true (rejected "+p(X).")

let test_wire_responses () =
  let resps =
    [
      Wire.Ok;
      Wire.Bye;
      Wire.Answers [];
      Wire.Answers
        [
          [ Term.Const "a"; Term.Const "Hello" ];
          List.map (fun c -> Term.Const c) awkward_constants;
        ];
      Wire.Committed { added = 3; removed = 1; epoch = 42 };
      Wire.Failed "no such relation";
      Wire.Stats_reply
        {
          Wire.s_epoch = 1;
          s_facts = 2;
          s_edb_facts = 3;
          s_queries = 4;
          s_batches = 5;
          s_queue_depth = 6;
          s_connections = 7;
          s_total_connections = 8;
          s_query_p50_us = 9;
          s_query_p95_us = 10;
          s_commit_p50_us = 11;
          s_commit_p95_us = 12;
          s_relations = 13;
          s_index_runs = 14;
          s_storage_bytes = 15;
          s_cache_hits = 16;
          s_cache_misses = 17;
          s_cache_entries = 18;
          s_cache_evictions = 19;
          s_heap_kb = 20;
          s_demand = 1;
        };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (Wire.print_response r) true (roundtrip_response r))
    resps;
  (* a declared count that disagrees with the tuple lines is rejected *)
  Alcotest.(check bool) "count mismatch" true
    (Result.is_error (Wire.parse_response "ANSWERS 2\n(a)"))

(* Random facts over the generator signature, sometimes with awkward
   constants spliced in, must round-trip through the +/- request forms
   and through Delta's own text form. *)
let gen_awkward_fact =
  QCheck.Gen.(
    let* base = gen_fact in
    let* aw = oneofl awkward_constants in
    let* splice = bool in
    if splice && Atom.args base <> [] then
      return
        (Atom.make (Atom.rel base)
           (Term.Const aw :: List.tl (Atom.args base)))
    else return base)

let prop_wire_fact_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: +fact/-fact round-trip"
    (QCheck.make ~print:Atom.to_string gen_awkward_fact)
    (fun a -> roundtrip_request (Wire.Add a) && roundtrip_request (Wire.Remove a))

let gen_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 4) gen_awkward_fact) (list_size (int_range 0 4) gen_awkward_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let delta_equal (a : Delta.t) (b : Delta.t) =
  List.equal Atom.equal a.Delta.additions b.Delta.additions
  && List.equal Atom.equal a.Delta.deletions b.Delta.deletions

let prop_delta_text_roundtrip =
  QCheck.Test.make ~count:200 ~name:"delta: of_string ∘ pp = id"
    (QCheck.make ~print:(Fmt.to_to_string Delta.pp) gen_delta)
    (fun d -> delta_equal d (Delta.of_string (Fmt.to_to_string Delta.pp d)))

(* ------------------------------------------------------------------ *)
(* Update files: whole-file validation with line numbers               *)

let test_batches_of_string () =
  let batches = Delta.batches_of_string "+p(a).\n-q(b, c)\n\n# note\n+r(d).\n\n\n+s(e)." in
  Alcotest.(check int) "three batches" 3 (List.length batches);
  Alcotest.(check bool) "first batch" true
    (delta_equal (List.nth batches 0)
       (Delta.of_lists ~additions:[ atom "p(a)" ] ~deletions:[ atom "q(b, c)" ]));
  (match Delta.batches_of_string "+p(a).\n\n+q(b).\nwat\n+r(c)." with
  | _ -> Alcotest.fail "malformed line accepted"
  | exception Delta.Malformed { line; _ } -> Alcotest.(check int) "1-based line" 4 line);
  (* a malformed line late in the file must reject earlier batches too *)
  (match Delta.batches_of_string "+p(a).\n\nbroken" with
  | _ -> Alcotest.fail "trailing malformed line accepted"
  | exception Delta.Malformed { line; _ } -> Alcotest.(check int) "last line" 3 line);
  Alcotest.(check int) "empty text: no batches" 0
    (List.length (Delta.batches_of_string "\n# only a comment\n\n"))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_codec_roundtrip () =
  let sigma = theory "e(X, Y) -> path(X, Y). e(X, Z), path(Z, Y) -> path(X, Y). s(X), not path(X, X) -> acyclic(X). c(C) -> exists L. t(L, C)." in
  let d = db "e(a, b). e(b, c). p('Hello', 'a b'). q('')." in
  let buf = Buffer.create 256 in
  Codec.write_theory buf sigma;
  Codec.write_database buf d;
  Codec.write_varint buf 0;
  Codec.write_varint buf max_int;
  let encoded = Buffer.contents buf in
  let src = Codec.source_of_string encoded in
  let sigma' = Codec.read_theory src in
  let d' = Codec.read_database src in
  Alcotest.(check int) "varint 0" 0 (Codec.read_varint src);
  Alcotest.(check int) "varint max" max_int (Codec.read_varint src);
  Codec.expect_end src;
  Alcotest.(check bool) "theory round-trips" true
    (List.equal Rule.equal (Theory.rules sigma) (Theory.rules sigma'));
  check_db "database round-trips" d d';
  (* every strict prefix must be rejected, never crash *)
  for len = 0 to String.length encoded - 1 do
    let src = Codec.source_of_string (String.sub encoded 0 len) in
    match
      let _ = Codec.read_theory src in
      let _ = Codec.read_database src in
      let _ = Codec.read_varint src in
      let _ = Codec.read_varint src in
      Codec.expect_end src
    with
    | () -> Alcotest.failf "prefix of %d bytes accepted" len
    | exception Codec.Corrupt _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let with_tmp_file f =
  let path = Filename.temp_file "guarded_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let path_sigma = "e(X, Y) -> path(X, Y). e(X, Y), path(Y, Z) -> path(X, Z)."

let test_snapshot_roundtrip () =
  with_tmp_file (fun path ->
      let sigma = theory path_sigma in
      let m = Incr.materialize sigma (db "e(a, b). e(b, c). e('Hello', 'a b').") in
      ignore (Incr.apply m (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]));
      Snapshot.save ~path sigma (Incr.dump m);
      (* warm restart equals the live materialization... *)
      let sigma', warm = Snapshot.load path in
      Alcotest.(check bool) "program restored" true
        (List.equal Rule.equal (Theory.rules sigma) (Theory.rules sigma'));
      check_db "warm db" (Incr.db m) (Incr.db warm);
      check_db "warm edb" (Incr.edb m) (Incr.edb warm);
      (* ...equals cold re-materialization from the same EDB... *)
      let cold = Incr.materialize sigma (Incr.edb m) in
      check_db "warm = cold" (Incr.db cold) (Incr.db warm);
      (* ...and keeps maintaining correctly after the restart. *)
      ignore (Incr.apply warm (Delta.of_lists ~additions:[] ~deletions:[ atom "e(b, c)" ]));
      check_db "maintains after warm start"
        (Seminaive.eval sigma (db "e(a, b). e(c, d). e('Hello', 'a b')."))
        (Incr.db warm);
      (* the guarded load rejects a snapshot of a different program *)
      (match Snapshot.load_for path (theory "e(X, Y) -> path(X, Y).") with
      | _ -> Alcotest.fail "foreign program accepted"
      | exception Snapshot.Corrupt _ -> ()))

let test_snapshot_corruption () =
  with_tmp_file (fun path ->
      let sigma = theory path_sigma in
      let m = Incr.materialize sigma (db "e(a, b). e(b, c).") in
      Snapshot.save ~path sigma (Incr.dump m);
      let raw =
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let reject name bytes =
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        match Snapshot.load path with
        | _ -> Alcotest.failf "%s accepted" name
        | exception Snapshot.Corrupt _ -> ()
      in
      reject "empty file" "";
      reject "bad magic" ("XXXXXXXX" ^ String.sub raw 8 (String.length raw - 8));
      reject "future version" ("GRDSNAP9" ^ String.sub raw 8 (String.length raw - 8));
      reject "truncated" (String.sub raw 0 (String.length raw - 5));
      reject "trailing garbage" (raw ^ "extra");
      (let flipped = Bytes.of_string raw in
       let i = String.length raw / 2 in
       Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0xff));
       reject "checksum catches a flipped byte" (Bytes.to_string flipped));
      (* the pristine bytes still load *)
      let oc = open_out_bin path in
      output_string oc raw;
      close_out oc;
      let _, warm = Snapshot.load path in
      check_db "pristine bytes load" (Incr.db m) (Incr.db warm))

(* ------------------------------------------------------------------ *)
(* State: commit results, errors, shutdown                             *)

let test_state_basics () =
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  Alcotest.(check int) "epoch 0" 0 (State.epoch st);
  (match State.commit st (Delta.of_lists ~additions:[ atom "e(b, c)" ] ~deletions:[]) with
  | Ok r ->
    Alcotest.(check int) "epoch 1" 1 r.State.cr_epoch;
    Alcotest.(check bool) "derived" true (r.State.cr_added >= 2)
  | Error m -> Alcotest.fail m);
  State.with_read st (fun m ->
      Alcotest.(check bool) "path(a, c) served" true (Database.mem (Incr.db m) (atom "path(a, c)")));
  State.shutdown st;
  (match State.commit st (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]) with
  | Ok _ -> Alcotest.fail "commit accepted after shutdown"
  | Error _ -> ());
  (* idempotent *)
  State.shutdown st

(* ------------------------------------------------------------------ *)
(* Socket smoke: a real server on a Unix socket                        *)

let with_server ?snapshot sigma_text db_text f =
  let sock = Filename.temp_file "guarded" ".sock" in
  Sys.remove sock;
  let st = State.create (theory sigma_text) (db db_text) in
  let srv = Server.listen ?snapshot st (Server.Unix_socket sock) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let test_server_socket () =
  with_server path_sigma "e(a, b). e(b, c)." (fun srv ->
      let c = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          Alcotest.(check int) "three paths" 3 (List.length (Client.query c "path"));
          (* a pattern query *)
          (match Client.request c (Wire.Query { rel = "path"; pattern = Some [ Term.Const "a"; Term.Var "X" ] }) with
          | Wire.Answers tuples -> Alcotest.(check int) "from a" 2 (List.length tuples)
          | _ -> Alcotest.fail "expected answers");
          (* an update batch through the protocol *)
          (match Client.commit c (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]) with
          | Ok (added, _, epoch) ->
            Alcotest.(check bool) "cascade" true (added >= 3);
            Alcotest.(check int) "epoch" 1 epoch
          | Error m -> Alcotest.fail m);
          Alcotest.(check int) "six paths" 6 (List.length (Client.query c "path"));
          (* errors are answers, not disconnects *)
          (match Client.request_line c "? no_such_relation" with
          | Wire.Answers [] -> ()
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "unexpected reply");
          Alcotest.(check int) "still serving" 6 (List.length (Client.query c "path"));
          let s = Client.stats c in
          Alcotest.(check int) "one connection" 1 s.Wire.s_connections;
          Alcotest.(check int) "one batch" 1 s.Wire.s_batches;
          Alcotest.(check bool) "queries counted" true (s.Wire.s_queries >= 3)))

let test_server_snapshot_command () =
  with_tmp_file (fun snap ->
      Sys.remove snap;
      with_server ~snapshot:snap path_sigma "e(a, b)." (fun srv ->
          let c = Client.connect (Server.address srv) in
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              (match Client.commit c (Delta.of_lists ~additions:[ atom "e(b, c)" ] ~deletions:[]) with
              | Ok _ -> ()
              | Error m -> Alcotest.fail m);
              (match Client.request c (Wire.Snapshot None) with
              | Wire.Ok -> ()
              | _ -> Alcotest.fail "snapshot command failed");
              let _, warm = Snapshot.load snap in
              Alcotest.(check bool) "snapshot has the committed fact" true
                (Database.mem (Incr.db warm) (atom "path(a, c)")))))

(* ------------------------------------------------------------------ *)
(* The concurrency oracle: concurrent clients = some sequential order  *)

(* Each client thread runs its schedule of batches, interleaving reads;
   every commit reports the epoch the writer assigned. Replaying all
   batches sorted by epoch against a fresh EDB must reproduce the final
   EDB, and the final materialization must equal from-scratch
   evaluation of that EDB — i.e. the concurrent history is equivalent
   to a sequential one. *)
let run_concurrent_case ?pool (sigma, db0, schedules) =
  let st = State.create ?pool sigma db0 in
  let applied = Mutex.create () in
  let order = ref [] in
  let failures = ref [] in
  let client schedule =
    List.iter
      (fun d ->
        (* a read between commits: consistent view under the lock *)
        State.with_read st (fun m ->
            let db = Incr.db m in
            if Database.cardinal db < Database.cardinal (Incr.edb m) then
              failwith "materialization smaller than its EDB");
        match State.commit st d with
        | Ok r ->
          Mutex.lock applied;
          order := (r.State.cr_epoch, d) :: !order;
          Mutex.unlock applied
        | Error m ->
          Mutex.lock applied;
          failures := m :: !failures;
          Mutex.unlock applied)
      schedule
  in
  let threads = List.map (fun s -> Thread.create client s) schedules in
  List.iter Thread.join threads;
  let final_db, final_edb =
    State.with_read st (fun m -> (Database.copy (Incr.db m), Database.copy (Incr.edb m)))
  in
  State.shutdown st;
  if !failures <> [] then false
  else begin
    let reference = Database.copy db0 in
    List.iter
      (fun (_, (d : Delta.t)) ->
        List.iter (fun f -> ignore (Database.remove reference f)) d.Delta.deletions;
        List.iter (fun f -> ignore (Database.add reference f)) d.Delta.additions)
      (List.sort (fun (a, _) (b, _) -> compare a b) !order);
    Database.equal final_edb reference
    && Database.equal final_db (Seminaive.eval ?pool sigma reference)
  end

let gen_plain_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 3) gen_fact) (list_size (int_range 0 3) gen_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let gen_schedules =
  QCheck.Gen.(list_size (int_range 2 3) (list_size (int_range 1 3) gen_plain_delta))

let print_concurrent_case (sigma, d, schedules) =
  Fmt.str "%s@.---@.%a@.---@.%a" (Theory.to_string sigma) Database.pp d
    (Fmt.list ~sep:(Fmt.any "@.===@.") (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp))
    schedules

let arbitrary_concurrent_case arb_theory =
  QCheck.make ~print:print_concurrent_case
    QCheck.Gen.(triple (QCheck.gen arb_theory) (gen_db ()) gen_schedules)

let prop_concurrent_datalog =
  QCheck.Test.make ~count:35 ~name:"concurrent clients = sequential replay (Datalog)"
    (arbitrary_concurrent_case arbitrary_datalog) run_concurrent_case

let prop_concurrent_semipositive =
  QCheck.Test.make ~count:35 ~name:"concurrent clients = sequential replay (semipositive)"
    (arbitrary_concurrent_case arbitrary_semipositive) run_concurrent_case

let pool = lazy (Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true ())

let prop_concurrent_datalog_pool =
  QCheck.Test.make ~count:20 ~name:"concurrent clients = sequential replay (Datalog, pool)"
    (arbitrary_concurrent_case arbitrary_datalog) (fun case ->
      run_concurrent_case ~pool:(Lazy.force pool) case)

let prop_concurrent_semipositive_pool =
  QCheck.Test.make ~count:20
    ~name:"concurrent clients = sequential replay (semipositive, pool)"
    (arbitrary_concurrent_case arbitrary_semipositive) (fun case ->
      run_concurrent_case ~pool:(Lazy.force pool) case)

(* The same oracle through real sockets: a smaller deterministic run
   with several client connections hammering one server. *)
let test_concurrent_sockets () =
  with_server path_sigma "e(n0, n1)." (fun srv ->
      let n_clients = 4 and n_rounds = 6 in
      let errors = Mutex.create () in
      let failed = ref [] in
      let client k () =
        let c = Client.connect (Server.address srv) in
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            for i = 1 to n_rounds do
              ignore (Client.query c "path");
              let a = atom (Fmt.str "e(n%d, n%d)" (k * 10 + i) ((k * 10 + i) + 1)) in
              match Client.commit c (Delta.of_lists ~additions:[ a ] ~deletions:[]) with
              | Ok _ -> ()
              | Error m ->
                Mutex.lock errors;
                failed := m :: !failed;
                Mutex.unlock errors
            done)
      in
      let threads = List.init n_clients (fun k -> Thread.create (client k) ()) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no failed commits" [] !failed;
      let c = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let s = Client.stats c in
          Alcotest.(check int) "all batches committed" (n_clients * n_rounds) s.Wire.s_batches;
          Alcotest.(check int) "epoch = batches" (n_clients * n_rounds) s.Wire.s_epoch;
          (* 1 edge initially + one per committed batch, all disjoint *)
          Alcotest.(check int) "edb facts" (1 + (n_clients * n_rounds)) s.Wire.s_edb_facts))

let suite =
  [
    Alcotest.test_case "wire: request round-trips" `Quick test_wire_requests;
    Alcotest.test_case "wire: response round-trips" `Quick test_wire_responses;
    Alcotest.test_case "update files: batches + line numbers" `Quick test_batches_of_string;
    Alcotest.test_case "codec: round-trip + truncation" `Quick test_codec_roundtrip;
    Alcotest.test_case "snapshot: warm = cold" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: corruption rejected" `Quick test_snapshot_corruption;
    Alcotest.test_case "state: commit/read/shutdown" `Quick test_state_basics;
    Alcotest.test_case "server: socket session" `Quick test_server_socket;
    Alcotest.test_case "server: snapshot command" `Quick test_server_snapshot_command;
    Alcotest.test_case "server: concurrent socket clients" `Quick test_concurrent_sockets;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_wire_fact_roundtrip;
        prop_delta_text_roundtrip;
        prop_concurrent_datalog;
        prop_concurrent_semipositive;
        prop_concurrent_datalog_pool;
        prop_concurrent_semipositive_pool;
      ]
