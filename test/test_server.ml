(** The network serving subsystem (lib/server) and its substrate: wire
    protocol round-trips (including constants that need quoting), the
    binary codec and snapshot files (corruption must be rejected, warm
    restarts must equal cold materialization), the update-file batch
    parser, and the concurrency oracle — many client threads querying
    and committing against one {!Guarded_server.State.t} must leave
    exactly the state of replaying the batches sequentially in the
    order the writer applied them. *)

open Guarded_core
open Guarded_gen.Generator
module Delta = Guarded_incr.Delta
module Incr = Guarded_incr.Incr
module Seminaive = Guarded_datalog.Seminaive
module Pool = Guarded_par.Pool
module Wire = Guarded_server.Wire
module State = Guarded_server.State
module Server = Guarded_server.Server
module Client = Guarded_server.Client
module Snapshot = Guarded_server.Snapshot

let theory = Helpers.theory
let db = Helpers.db
let atom = Helpers.atom
let check_db = Alcotest.check (Alcotest.testable Database.pp Database.equal)

(* Constants whose bare spelling would not reparse: the printers must
   quote every one of these. *)
let awkward_constants = [ "Hello"; "a b"; ""; "?x"; "_n3"; "p(q)"; "COMMIT" ]

(* ------------------------------------------------------------------ *)
(* Wire protocol round-trips                                           *)

let roundtrip_request r =
  match Wire.parse_request (Wire.print_request r) with
  | Ok r' -> Wire.print_request r' = Wire.print_request r
  | Error _ -> false

let roundtrip_response r =
  match Wire.parse_response (Wire.print_response r) with
  | Ok r' -> Wire.print_response r' = Wire.print_response r
  | Error _ -> false

let test_wire_requests () =
  let awkward = List.map (fun c -> Term.Const c) awkward_constants in
  let reqs =
    [
      Wire.Query { rel = "path"; pattern = None };
      Wire.Query { rel = "path"; pattern = Some [ Term.Const "a"; Term.Var "X" ] };
      Wire.Query { rel = "p"; pattern = Some awkward };
      Wire.Add (Atom.make "p" awkward);
      Wire.Remove (Atom.make "edge" [ Term.Const "New York"; Term.Const "b" ]);
      Wire.Commit;
      Wire.Stats;
      Wire.Snapshot None;
      Wire.Snapshot (Some "/tmp/some file.snap");
      Wire.load_of_facts [];
      Wire.load_of_facts [ Atom.make "p" awkward; atom "e(a, b)" ];
      Wire.Quit;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (Wire.print_request r) true (roundtrip_request r))
    reqs;
  (let u, rel = Guarded_cq.Ucq.of_string "path(X, Y), e(Y, Z) -> q(X, Z). ; e(X, 'A b') -> q(X, X)." in
   Alcotest.(check bool) "ucq round-trips" true (roundtrip_request (Wire.Cq (u, rel))));
  (* keyword case-insensitivity and the EXIT alias *)
  Alcotest.(check bool) "commit lowercase" true (Wire.parse_request "commit" = Ok Wire.Commit);
  Alcotest.(check bool) "exit alias" true (Wire.parse_request "EXIT" = Ok Wire.Quit);
  (* rejects *)
  let rejected s = Result.is_error (Wire.parse_request s) in
  Alcotest.(check bool) "empty" true (rejected "");
  Alcotest.(check bool) "garbage" true (rejected "FROBNICATE now");
  Alcotest.(check bool) "non-ground add" true (rejected "+p(X).");
  (* LOAD needs a count and a newline; the block itself is validated
     only when the COMMIT decodes it *)
  Alcotest.(check bool) "bare LOAD" true (rejected "LOAD");
  Alcotest.(check bool) "LOAD without a count" true (rejected "LOAD x\n");
  Alcotest.(check bool) "LOAD with a negative count" true (rejected "LOAD -1\n");
  (let decoded s =
     match Wire.parse_request s with
     | Ok (Wire.Load b) -> Wire.facts_of_load b
     | Ok _ -> Error "parsed as a non-LOAD request"
     | Error m -> Error m
   in
   Alcotest.(check bool) "truncated block decodes to Error" true
     (Result.is_error (decoded "LOAD 2\n"));
   Alcotest.(check bool) "non-ground block decodes to Error" true
     (Result.is_error
        (decoded (Wire.print_request (Wire.load_of_facts [ Atom.make "p" [ Term.Var "X" ] ]))));
   Alcotest.(check bool) "well-formed block decodes" true
     (decoded (Wire.print_request (Wire.load_of_facts [ atom "e(a, b)" ]))
     = Ok [ atom "e(a, b)" ]))

let test_wire_responses () =
  let resps =
    [
      Wire.Ok;
      Wire.Bye;
      Wire.Answers [];
      Wire.Answers
        [
          [ Term.Const "a"; Term.Const "Hello" ];
          List.map (fun c -> Term.Const c) awkward_constants;
        ];
      Wire.Committed { added = 3; removed = 1; epoch = 42 };
      Wire.Loaded 12345;
      Wire.Failed "no such relation";
      Wire.Stats_reply
        {
          Wire.s_epoch = 1;
          s_facts = 2;
          s_edb_facts = 3;
          s_queries = 4;
          s_batches = 5;
          s_queue_depth = 6;
          s_connections = 7;
          s_total_connections = 8;
          s_connections_open = 7;
          s_bytes_buffered = 21;
          s_backpressure_stalls = 22;
          s_load_facts = 23;
          s_query_p50_us = 9;
          s_query_p95_us = 10;
          s_commit_p50_us = 11;
          s_commit_p95_us = 12;
          s_relations = 13;
          s_index_runs = 14;
          s_storage_bytes = 15;
          s_cache_hits = 16;
          s_cache_misses = 17;
          s_cache_entries = 18;
          s_cache_evictions = 19;
          s_heap_kb = 20;
          s_demand = 1;
          s_chase_mode = 0;
          s_chase_nulls = 24;
          s_chase_derivations = 25;
          s_role = 1;
          s_replicas_connected = 2;
          s_replication_lag_epochs = 3;
          s_journal_bytes = 4096;
        };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) (Wire.print_response r) true (roundtrip_response r))
    resps;
  (* a declared count that disagrees with the tuple lines is rejected *)
  Alcotest.(check bool) "count mismatch" true
    (Result.is_error (Wire.parse_response "ANSWERS 2\n(a)"))

(* Random facts over the generator signature, sometimes with awkward
   constants spliced in, must round-trip through the +/- request forms
   and through Delta's own text form. *)
let gen_awkward_fact =
  QCheck.Gen.(
    let* base = gen_fact in
    let* aw = oneofl awkward_constants in
    let* splice = bool in
    if splice && Atom.args base <> [] then
      return
        (Atom.make (Atom.rel base)
           (Term.Const aw :: List.tl (Atom.args base)))
    else return base)

let prop_wire_fact_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: +fact/-fact round-trip"
    (QCheck.make ~print:Atom.to_string gen_awkward_fact)
    (fun a -> roundtrip_request (Wire.Add a) && roundtrip_request (Wire.Remove a))

let gen_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 4) gen_awkward_fact) (list_size (int_range 0 4) gen_awkward_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let delta_equal (a : Delta.t) (b : Delta.t) =
  List.equal Atom.equal a.Delta.additions b.Delta.additions
  && List.equal Atom.equal a.Delta.deletions b.Delta.deletions

let prop_delta_text_roundtrip =
  QCheck.Test.make ~count:200 ~name:"delta: of_string ∘ pp = id"
    (QCheck.make ~print:(Fmt.to_to_string Delta.pp) gen_delta)
    (fun d -> delta_equal d (Delta.of_string (Fmt.to_to_string Delta.pp d)))

(* ------------------------------------------------------------------ *)
(* Update files: whole-file validation with line numbers               *)

let test_batches_of_string () =
  let batches = Delta.batches_of_string "+p(a).\n-q(b, c)\n\n# note\n+r(d).\n\n\n+s(e)." in
  Alcotest.(check int) "three batches" 3 (List.length batches);
  Alcotest.(check bool) "first batch" true
    (delta_equal (List.nth batches 0)
       (Delta.of_lists ~additions:[ atom "p(a)" ] ~deletions:[ atom "q(b, c)" ]));
  (match Delta.batches_of_string "+p(a).\n\n+q(b).\nwat\n+r(c)." with
  | _ -> Alcotest.fail "malformed line accepted"
  | exception Delta.Malformed { line; _ } -> Alcotest.(check int) "1-based line" 4 line);
  (* a malformed line late in the file must reject earlier batches too *)
  (match Delta.batches_of_string "+p(a).\n\nbroken" with
  | _ -> Alcotest.fail "trailing malformed line accepted"
  | exception Delta.Malformed { line; _ } -> Alcotest.(check int) "last line" 3 line);
  Alcotest.(check int) "empty text: no batches" 0
    (List.length (Delta.batches_of_string "\n# only a comment\n\n"))

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)

let test_codec_roundtrip () =
  let sigma = theory "e(X, Y) -> path(X, Y). e(X, Z), path(Z, Y) -> path(X, Y). s(X), not path(X, X) -> acyclic(X). c(C) -> exists L. t(L, C)." in
  let d = db "e(a, b). e(b, c). p('Hello', 'a b'). q('')." in
  let buf = Buffer.create 256 in
  Codec.write_theory buf sigma;
  Codec.write_database buf d;
  Codec.write_varint buf 0;
  Codec.write_varint buf max_int;
  let encoded = Buffer.contents buf in
  let src = Codec.source_of_string encoded in
  let sigma' = Codec.read_theory src in
  let d' = Codec.read_database src in
  Alcotest.(check int) "varint 0" 0 (Codec.read_varint src);
  Alcotest.(check int) "varint max" max_int (Codec.read_varint src);
  Codec.expect_end src;
  Alcotest.(check bool) "theory round-trips" true
    (List.equal Rule.equal (Theory.rules sigma) (Theory.rules sigma'));
  check_db "database round-trips" d d';
  (* every strict prefix must be rejected, never crash *)
  for len = 0 to String.length encoded - 1 do
    let src = Codec.source_of_string (String.sub encoded 0 len) in
    match
      let _ = Codec.read_theory src in
      let _ = Codec.read_database src in
      let _ = Codec.read_varint src in
      let _ = Codec.read_varint src in
      Codec.expect_end src
    with
    | () -> Alcotest.failf "prefix of %d bytes accepted" len
    | exception Codec.Corrupt _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let with_tmp_file f =
  let path = Filename.temp_file "guarded_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let path_sigma = "e(X, Y) -> path(X, Y). e(X, Y), path(Y, Z) -> path(X, Z)."

let test_snapshot_roundtrip () =
  with_tmp_file (fun path ->
      let sigma = theory path_sigma in
      let m = Incr.materialize sigma (db "e(a, b). e(b, c). e('Hello', 'a b').") in
      ignore (Incr.apply m (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]));
      Snapshot.save ~path sigma (Incr.dump m);
      (* warm restart equals the live materialization... *)
      let sigma', warm = Snapshot.load path in
      Alcotest.(check bool) "program restored" true
        (List.equal Rule.equal (Theory.rules sigma) (Theory.rules sigma'));
      check_db "warm db" (Incr.db m) (Incr.db warm);
      check_db "warm edb" (Incr.edb m) (Incr.edb warm);
      (* ...equals cold re-materialization from the same EDB... *)
      let cold = Incr.materialize sigma (Incr.edb m) in
      check_db "warm = cold" (Incr.db cold) (Incr.db warm);
      (* ...and keeps maintaining correctly after the restart. *)
      ignore (Incr.apply warm (Delta.of_lists ~additions:[] ~deletions:[ atom "e(b, c)" ]));
      check_db "maintains after warm start"
        (Seminaive.eval sigma (db "e(a, b). e(c, d). e('Hello', 'a b')."))
        (Incr.db warm);
      (* the guarded load rejects a snapshot of a different program *)
      (match Snapshot.load_for path (theory "e(X, Y) -> path(X, Y).") with
      | _ -> Alcotest.fail "foreign program accepted"
      | exception Snapshot.Corrupt _ -> ()))

let test_snapshot_corruption () =
  with_tmp_file (fun path ->
      let sigma = theory path_sigma in
      let m = Incr.materialize sigma (db "e(a, b). e(b, c).") in
      Snapshot.save ~path sigma (Incr.dump m);
      let raw =
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let reject name bytes =
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        match Snapshot.load path with
        | _ -> Alcotest.failf "%s accepted" name
        | exception Snapshot.Corrupt _ -> ()
      in
      reject "empty file" "";
      reject "bad magic" ("XXXXXXXX" ^ String.sub raw 8 (String.length raw - 8));
      reject "future version" ("GRDSNAP9" ^ String.sub raw 8 (String.length raw - 8));
      reject "truncated" (String.sub raw 0 (String.length raw - 5));
      reject "trailing garbage" (raw ^ "extra");
      (let flipped = Bytes.of_string raw in
       let i = String.length raw / 2 in
       Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0xff));
       reject "checksum catches a flipped byte" (Bytes.to_string flipped));
      (* the pristine bytes still load *)
      let oc = open_out_bin path in
      output_string oc raw;
      close_out oc;
      let _, warm = Snapshot.load path in
      check_db "pristine bytes load" (Incr.db m) (Incr.db warm))

(* ------------------------------------------------------------------ *)
(* State: commit results, errors, shutdown                             *)

let test_state_basics () =
  let st = State.create (theory path_sigma) (db "e(a, b).") in
  Alcotest.(check int) "epoch 0" 0 (State.epoch st);
  (match State.commit st (Delta.of_lists ~additions:[ atom "e(b, c)" ] ~deletions:[]) with
  | Ok r ->
    Alcotest.(check int) "epoch 1" 1 r.State.cr_epoch;
    Alcotest.(check bool) "derived" true (r.State.cr_added >= 2)
  | Error m -> Alcotest.fail m);
  State.with_read st (fun m ->
      Alcotest.(check bool) "path(a, c) served" true (Database.mem (Incr.db m) (atom "path(a, c)")));
  State.shutdown st;
  (match State.commit st (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]) with
  | Ok _ -> Alcotest.fail "commit accepted after shutdown"
  | Error _ -> ());
  (* idempotent *)
  State.shutdown st

(* ------------------------------------------------------------------ *)
(* Socket smoke: a real server on a Unix socket                        *)

let with_server ?snapshot sigma_text db_text f =
  let sock = Filename.temp_file "guarded" ".sock" in
  Sys.remove sock;
  let st = State.create (theory sigma_text) (db db_text) in
  let srv = Server.listen ?snapshot st (Server.Unix_socket sock) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let test_server_socket () =
  with_server path_sigma "e(a, b). e(b, c)." (fun srv ->
      let c = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          Alcotest.(check int) "three paths" 3 (List.length (Client.query c "path"));
          (* a pattern query *)
          (match Client.request c (Wire.Query { rel = "path"; pattern = Some [ Term.Const "a"; Term.Var "X" ] }) with
          | Wire.Answers tuples -> Alcotest.(check int) "from a" 2 (List.length tuples)
          | _ -> Alcotest.fail "expected answers");
          (* an update batch through the protocol *)
          (match Client.commit c (Delta.of_lists ~additions:[ atom "e(c, d)" ] ~deletions:[]) with
          | Ok (added, _, epoch) ->
            Alcotest.(check bool) "cascade" true (added >= 3);
            Alcotest.(check int) "epoch" 1 epoch
          | Error m -> Alcotest.fail m);
          Alcotest.(check int) "six paths" 6 (List.length (Client.query c "path"));
          (* errors are answers, not disconnects *)
          (match Client.request_line c "? no_such_relation" with
          | Wire.Answers [] -> ()
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "unexpected reply");
          Alcotest.(check int) "still serving" 6 (List.length (Client.query c "path"));
          let s = Client.stats c in
          Alcotest.(check int) "one connection" 1 s.Wire.s_connections;
          Alcotest.(check int) "one batch" 1 s.Wire.s_batches;
          Alcotest.(check bool) "queries counted" true (s.Wire.s_queries >= 3)))

let test_server_snapshot_command () =
  with_tmp_file (fun snap ->
      Sys.remove snap;
      with_server ~snapshot:snap path_sigma "e(a, b)." (fun srv ->
          let c = Client.connect (Server.address srv) in
          Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
              (match Client.commit c (Delta.of_lists ~additions:[ atom "e(b, c)" ] ~deletions:[]) with
              | Ok _ -> ()
              | Error m -> Alcotest.fail m);
              (match Client.request c (Wire.Snapshot None) with
              | Wire.Ok -> ()
              | _ -> Alcotest.fail "snapshot command failed");
              let _, warm = Snapshot.load snap in
              Alcotest.(check bool) "snapshot has the committed fact" true
                (Database.mem (Incr.db warm) (atom "path(a, c)")))))

(* ------------------------------------------------------------------ *)
(* The concurrency oracle: concurrent clients = some sequential order  *)

(* Each client thread runs its schedule of batches, interleaving reads;
   every commit reports the epoch the writer assigned. Replaying all
   batches sorted by epoch against a fresh EDB must reproduce the final
   EDB, and the final materialization must equal from-scratch
   evaluation of that EDB — i.e. the concurrent history is equivalent
   to a sequential one. *)
let run_concurrent_case ?pool (sigma, db0, schedules) =
  let st = State.create ?pool sigma db0 in
  let applied = Mutex.create () in
  let order = ref [] in
  let failures = ref [] in
  let client schedule =
    List.iter
      (fun d ->
        (* a read between commits: consistent view under the lock *)
        State.with_read st (fun m ->
            let db = Incr.db m in
            if Database.cardinal db < Database.cardinal (Incr.edb m) then
              failwith "materialization smaller than its EDB");
        match State.commit st d with
        | Ok r ->
          Mutex.lock applied;
          order := (r.State.cr_epoch, d) :: !order;
          Mutex.unlock applied
        | Error m ->
          Mutex.lock applied;
          failures := m :: !failures;
          Mutex.unlock applied)
      schedule
  in
  let threads = List.map (fun s -> Thread.create client s) schedules in
  List.iter Thread.join threads;
  let final_db, final_edb =
    State.with_read st (fun m -> (Database.copy (Incr.db m), Database.copy (Incr.edb m)))
  in
  State.shutdown st;
  if !failures <> [] then false
  else begin
    let reference = Database.copy db0 in
    List.iter
      (fun (_, (d : Delta.t)) ->
        List.iter (fun f -> ignore (Database.remove reference f)) d.Delta.deletions;
        List.iter (fun f -> ignore (Database.add reference f)) d.Delta.additions)
      (List.sort (fun (a, _) (b, _) -> compare a b) !order);
    Database.equal final_edb reference
    && Database.equal final_db (Seminaive.eval ?pool sigma reference)
  end

let gen_plain_delta =
  QCheck.Gen.(
    pair (list_size (int_range 0 3) gen_fact) (list_size (int_range 0 3) gen_fact)
    >|= fun (additions, deletions) -> Delta.of_lists ~additions ~deletions)

let gen_schedules =
  QCheck.Gen.(list_size (int_range 2 3) (list_size (int_range 1 3) gen_plain_delta))

let print_concurrent_case (sigma, d, schedules) =
  Fmt.str "%s@.---@.%a@.---@.%a" (Theory.to_string sigma) Database.pp d
    (Fmt.list ~sep:(Fmt.any "@.===@.") (Fmt.list ~sep:(Fmt.any "@.---@.") Delta.pp))
    schedules

let arbitrary_concurrent_case arb_theory =
  QCheck.make ~print:print_concurrent_case
    QCheck.Gen.(triple (QCheck.gen arb_theory) (gen_db ()) gen_schedules)

let prop_concurrent_datalog =
  QCheck.Test.make ~count:35 ~name:"concurrent clients = sequential replay (Datalog)"
    (arbitrary_concurrent_case arbitrary_datalog) run_concurrent_case

let prop_concurrent_semipositive =
  QCheck.Test.make ~count:35 ~name:"concurrent clients = sequential replay (semipositive)"
    (arbitrary_concurrent_case arbitrary_semipositive) run_concurrent_case

let pool = lazy (Pool.create ~domains:2 ~min_work:1 ~oversubscribe:true ())

let prop_concurrent_datalog_pool =
  QCheck.Test.make ~count:20 ~name:"concurrent clients = sequential replay (Datalog, pool)"
    (arbitrary_concurrent_case arbitrary_datalog) (fun case ->
      run_concurrent_case ~pool:(Lazy.force pool) case)

let prop_concurrent_semipositive_pool =
  QCheck.Test.make ~count:20
    ~name:"concurrent clients = sequential replay (semipositive, pool)"
    (arbitrary_concurrent_case arbitrary_semipositive) (fun case ->
      run_concurrent_case ~pool:(Lazy.force pool) case)

(* The same oracle through real sockets: a smaller deterministic run
   with several client connections hammering one server. *)
let test_concurrent_sockets () =
  with_server path_sigma "e(n0, n1)." (fun srv ->
      let n_clients = 4 and n_rounds = 6 in
      let errors = Mutex.create () in
      let failed = ref [] in
      let client k () =
        let c = Client.connect (Server.address srv) in
        Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
            for i = 1 to n_rounds do
              ignore (Client.query c "path");
              let a = atom (Fmt.str "e(n%d, n%d)" (k * 10 + i) ((k * 10 + i) + 1)) in
              match Client.commit c (Delta.of_lists ~additions:[ a ] ~deletions:[]) with
              | Ok _ -> ()
              | Error m ->
                Mutex.lock errors;
                failed := m :: !failed;
                Mutex.unlock errors
            done)
      in
      let threads = List.init n_clients (fun k -> Thread.create (client k) ()) in
      List.iter Thread.join threads;
      Alcotest.(check (list string)) "no failed commits" [] !failed;
      let c = Client.connect (Server.address srv) in
      Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
          let s = Client.stats c in
          Alcotest.(check int) "all batches committed" (n_clients * n_rounds) s.Wire.s_batches;
          Alcotest.(check int) "epoch = batches" (n_clients * n_rounds) s.Wire.s_epoch;
          (* 1 edge initially + one per committed batch, all disjoint *)
          Alcotest.(check int) "edb facts" (1 + (n_clients * n_rounds)) s.Wire.s_edb_facts))

(* ------------------------------------------------------------------ *)
(* Incremental framing: delivery chunking must be invisible            *)

let raw_connect = function
  | Server.Unix_socket path ->
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.connect fd (ADDR_UNIX path);
    fd
  | Server.Tcp (host, port) ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port));
    fd

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (4 + n) in
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

(* Write the whole byte stream in the given chunk sizes (remainder as
   one write), then collect every response frame until the server
   closes — each session ends in QUIT, so EOF is the terminator. *)
let deliver addr stream chunk_sizes =
  let fd = raw_connect addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let pos = ref 0 and len = String.length stream in
      let sizes = ref chunk_sizes in
      while !pos < len do
        let k =
          match !sizes with
          | [] -> len - !pos
          | k :: tl ->
            sizes := tl;
            min k (len - !pos)
        in
        pos := !pos + Unix.write_substring fd stream !pos k
      done;
      let rec read_all acc =
        match Wire.read_frame fd with
        | None -> List.rev acc
        | Some payload -> read_all (payload :: acc)
      in
      read_all [])

let gen_session =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (frequency
         [
           (3, gen_fact >|= fun a -> Wire.Add a);
           (2, gen_fact >|= fun a -> Wire.Remove a);
           (2, gen_fact >|= fun a -> Wire.load_of_facts [ a; a ]);
           (2, return (Wire.Query { rel = "path"; pattern = None }));
           (1, return Wire.Commit);
         ]))

(* The reactor cuts frames incrementally off whatever read(2) returns,
   so a session delivered one byte at a time — every frame header and
   payload split across reads — must produce byte-identical responses
   to whole-stream delivery, as must random-sized chunks. *)
let prop_chunked_delivery =
  QCheck.Test.make ~count:20 ~name:"server: chunked delivery = whole-stream delivery"
    (QCheck.make
       ~print:(fun (reqs, seed) ->
         Fmt.str "seed %d:@.%a" seed
           (Fmt.list ~sep:Fmt.cut (Fmt.of_to_string (fun r -> String.escaped (Wire.print_request r))))
           reqs)
       QCheck.Gen.(pair gen_session int))
    (fun (reqs, seed) ->
      let stream = String.concat "" (List.map (fun r -> frame (Wire.print_request r)) (reqs @ [ Wire.Quit ])) in
      let run chunk_sizes =
        with_server path_sigma "e(a, b)." (fun srv -> deliver (Server.address srv) stream chunk_sizes)
      in
      let whole = run [] in
      let bytewise = run (List.init (String.length stream) (fun _ -> 1)) in
      let rng = Random.State.make [| seed |] in
      let chunked = run (List.init (String.length stream) (fun _ -> 1 + Random.State.int rng 9)) in
      whole = bytewise && whole = chunked)

(* A frame whose declared length exceeds the limit is answered with
   ERROR and the connection closed — without taking the reactor (or
   any other connection) down. A merely unparsable payload keeps the
   connection. *)
let test_frame_rejection () =
  with_server path_sigma "e(a, b)." (fun srv ->
      let addr = Server.address srv in
      (* oversized declared length *)
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = Wire.max_frame + 1 in
          let hdr =
            String.init 4 (fun i -> Char.chr ((n lsr ((3 - i) * 8)) land 0xff))
          in
          ignore (Unix.write_substring fd hdr 0 4);
          (match Wire.read_frame fd with
          | Some payload -> (
            match Wire.parse_response payload with
            | Ok (Wire.Failed _) -> ()
            | _ -> Alcotest.fail "expected ERROR for the oversized frame")
          | None -> Alcotest.fail "no reply to the oversized frame");
          Alcotest.(check bool) "connection closed" true (Wire.read_frame fd = None));
      (* a malformed payload is an ERROR, not a disconnect *)
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          ignore
            (Unix.write_substring fd (frame "FROBNICATE now") 0
               (String.length (frame "FROBNICATE now")));
          (match Wire.read_frame fd with
          | Some payload -> (
            match Wire.parse_response payload with
            | Ok (Wire.Failed _) -> ()
            | _ -> Alcotest.fail "expected ERROR for the malformed payload")
          | None -> Alcotest.fail "connection dropped on a malformed payload");
          ignore (Unix.write_substring fd (frame "? path") 0 (String.length (frame "? path")));
          match Wire.read_frame fd with
          | Some payload -> (
            match Wire.parse_response payload with
            | Ok (Wire.Answers tuples) ->
              Alcotest.(check int) "still answering" 1 (List.length tuples)
            | _ -> Alcotest.fail "expected ANSWERS after the ERROR")
          | None -> Alcotest.fail "connection dropped after the ERROR");
      (* a truncated frame at EOF is dropped quietly *)
      let fd = raw_connect addr in
      ignore (Unix.write_substring fd "\000\000" 0 2);
      Unix.close fd;
      (* ...and the reactor serves the next client as if nothing happened *)
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> Alcotest.(check int) "reactor unpoisoned" 1 (List.length (Client.query c "path"))))

(* ------------------------------------------------------------------ *)
(* LOAD = text ingest                                                  *)

let with_state_server ?(demand = false) sigma_text db_text f =
  let sock = Filename.temp_file "guarded" ".sock" in
  Sys.remove sock;
  let st =
    if demand then State.create_demand (theory sigma_text) (db db_text)
    else State.create (theory sigma_text) (db db_text)
  in
  let srv = Server.listen st (Server.Unix_socket sock) in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f st srv)

(* Staging a random fact list through chunked binary LOAD frames and
   committing must leave exactly the database that the same facts
   staged as [+fact.] lines leave. *)
let run_load_equivalence facts =
  let run use_load =
    with_state_server path_sigma "e(a, b)." (fun st srv ->
        let c = Client.connect (Server.address srv) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            (if use_load then begin
               match Client.load ~chunk:7 c facts with
               | Ok n ->
                 if n <> List.length facts then
                   QCheck.Test.fail_reportf "LOADED %d of %d facts" n (List.length facts)
               | Error m -> QCheck.Test.fail_reportf "LOAD failed: %s" m
             end
             else
               List.iter
                 (function
                   | Wire.Ok -> ()
                   | Wire.Failed m -> QCheck.Test.fail_reportf "add failed: %s" m
                   | _ -> QCheck.Test.fail_reportf "unexpected staging reply")
                 (Client.pipeline c (List.map (fun a -> Wire.Add a) facts)));
            ignore (Client.request c Wire.Commit));
        State.with_read st (fun m -> (Database.copy (Incr.edb m), Database.copy (Incr.db m))))
  in
  let edb_text, db_text = run false in
  let edb_load, db_load = run true in
  Database.equal edb_text edb_load && Database.equal db_text db_load

let prop_load_equals_text =
  QCheck.Test.make ~count:20 ~name:"server: LOAD ingest = text ingest"
    (QCheck.make
       ~print:(Fmt.to_to_string (Fmt.list ~sep:Fmt.cut Atom.pp))
       QCheck.Gen.(list_size (int_range 0 40) gen_fact))
    run_load_equivalence

(* The same equivalence through the demand-driven backend, where the
   oracle is the served answer set instead of the materialization. *)
let test_load_demand () =
  let facts = List.init 50 (fun i -> atom (Fmt.str "e(m%d, m%d)" i (i + 1))) in
  let answers use_load =
    with_state_server ~demand:true path_sigma "e(a, b)." (fun _st srv ->
        let c = Client.connect (Server.address srv) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            (if use_load then
               match Client.load ~chunk:16 c facts with
               | Ok 50 -> ()
               | Ok n -> Alcotest.failf "LOADED %d of 50" n
               | Error m -> Alcotest.fail m
             else
               List.iter
                 (function Wire.Ok -> () | _ -> Alcotest.fail "staging failed")
                 (Client.pipeline c (List.map (fun a -> Wire.Add a) facts)));
            (match Client.request c Wire.Commit with
            | Wire.Committed _ -> ()
            | _ -> Alcotest.fail "commit failed");
            List.sort compare (Client.query c "path")))
  in
  Alcotest.(check int) "same answer count" (List.length (answers false)) (List.length (answers true));
  Alcotest.(check bool) "same answers" true (answers false = answers true)

(* A LOAD block is decoded by the COMMIT worker: a lying header or a
   corrupt block answers LOADED at staging time but fails the COMMIT,
   discards the whole staged batch and leaves the connection usable. *)
let test_load_corrupt_commit () =
  with_state_server path_sigma "e(a, b)." (fun _st srv ->
      let c = Client.connect (Server.address srv) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.request c (Wire.Add (atom "e(q1, q2)")) with
          | Wire.Ok -> ()
          | _ -> Alcotest.fail "staging a good fact failed");
          (match Client.request c (Wire.Load { Wire.fb_count = 2; fb_block = "" }) with
          | Wire.Loaded 2 -> ()
          | _ -> Alcotest.fail "expected LOADED 2 for the lying header");
          (match Client.request c Wire.Commit with
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "expected the COMMIT to reject the corrupt block");
          Alcotest.(check int) "nothing was applied" 1 (List.length (Client.query c "path"));
          (* the failed COMMIT discarded the whole batch, good Add included *)
          (match Client.request c Wire.Commit with
          | Wire.Committed { added = 0; removed = 0; _ } -> ()
          | _ -> Alcotest.fail "expected an empty COMMIT after the discard");
          (* a non-ground block is rejected the same way *)
          (match Client.request c (Wire.load_of_facts [ Atom.make "p" [ Term.Var "X" ] ]) with
          | Wire.Loaded 1 -> ()
          | _ -> Alcotest.fail "expected LOADED 1 for the non-ground block");
          match Client.request c Wire.Commit with
          | Wire.Failed _ -> ()
          | _ -> Alcotest.fail "expected the COMMIT to reject the non-ground block"))

let suite =
  [
    Alcotest.test_case "wire: request round-trips" `Quick test_wire_requests;
    Alcotest.test_case "wire: response round-trips" `Quick test_wire_responses;
    Alcotest.test_case "update files: batches + line numbers" `Quick test_batches_of_string;
    Alcotest.test_case "codec: round-trip + truncation" `Quick test_codec_roundtrip;
    Alcotest.test_case "snapshot: warm = cold" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: corruption rejected" `Quick test_snapshot_corruption;
    Alcotest.test_case "state: commit/read/shutdown" `Quick test_state_basics;
    Alcotest.test_case "server: socket session" `Quick test_server_socket;
    Alcotest.test_case "server: snapshot command" `Quick test_server_snapshot_command;
    Alcotest.test_case "server: concurrent socket clients" `Quick test_concurrent_sockets;
    Alcotest.test_case "server: frame rejection" `Quick test_frame_rejection;
    Alcotest.test_case "server: LOAD = text ingest (demand)" `Quick test_load_demand;
    Alcotest.test_case "server: corrupt LOAD fails the COMMIT" `Quick test_load_corrupt_commit;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_wire_fact_roundtrip;
        prop_delta_text_roundtrip;
        prop_chunked_delivery;
        prop_load_equals_text;
        prop_concurrent_datalog;
        prop_concurrent_semipositive;
        prop_concurrent_datalog_pool;
        prop_concurrent_semipositive_pool;
      ]
