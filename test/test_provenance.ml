(** Tests for why-provenance and proof trees. *)

open Guarded_core
module Provenance = Guarded_datalog.Provenance
module Seminaive = Guarded_datalog.Seminaive

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int
let cstring = Alcotest.string

let tc_program () =
  Helpers.theory "@base e(X, Y) -> tc(X, Y). @step tc(X, Y), e(Y, Z) -> tc(X, Z)."

let test_same_fixpoint () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let prov = Provenance.eval sigma d in
  check cbool "fixpoints agree" true (Database.equal prov.Provenance.result (Seminaive.eval sigma d))

let test_explain_chain () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let prov = Provenance.eval sigma d in
  match Provenance.explain prov (Helpers.atom "tc(a, d)") with
  | None -> Alcotest.fail "tc(a,d) not provable"
  | Some proof ->
    check cbool "root is the fact" true
      (Atom.equal (Provenance.proof_fact proof) (Helpers.atom "tc(a, d)"));
    (* the proof bottoms out in the three input edges *)
    let support = Provenance.support proof in
    check cint "three supporting edges" 3 (List.length support);
    List.iter
      (fun a -> check Alcotest.string "edges only" "e" (Atom.rel a))
      support;
    check cbool "depth matches the chain" true (Provenance.proof_depth proof >= 3)

let test_explain_input_fact () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b)." in
  let prov = Provenance.eval sigma d in
  (match Provenance.explain prov (Helpers.atom "e(a, b)") with
  | Some (Provenance.Given _) -> ()
  | _ -> Alcotest.fail "input fact should be Given");
  check cbool "absent fact unexplained" true
    (Provenance.explain prov (Helpers.atom "e(z, z)") = None)

let test_explain_translated_program () =
  (* Unfold an answer of the compiled ontology down to input facts,
     through the translation's auxiliary relations. *)
  let tr = Guarded_translate.Pipeline.to_datalog (Helpers.small_fg_theory ()) in
  let d = Database.copy (Helpers.small_fg_db ()) in
  Database.materialize_acdom d;
  let prov = Provenance.eval tr.Guarded_translate.Pipeline.datalog d in
  match Provenance.explain prov (Helpers.atom "q(a1)") with
  | None -> Alcotest.fail "q(a1) not provable in the translated program"
  | Some proof ->
    let support = Provenance.support proof in
    (* every supporting fact is an input fact (or materialized ACDom) *)
    List.iter
      (fun a -> check cbool "support is input" true (Database.mem d a))
      support;
    check cbool "non-trivial proof" true (Provenance.proof_size proof > 2)

let test_proofs_are_wellfounded () =
  (* cyclic data: first derivations still yield finite proofs *)
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, a)." in
  let prov = Provenance.eval sigma d in
  Database.iter
    (fun fact ->
      if Atom.rel fact = "tc" then
        match Provenance.explain prov fact with
        | Some proof -> check cbool "finite proof" true (Provenance.proof_size proof < 100)
        | None -> Alcotest.failf "no proof for %s" (Atom.to_string fact))
    prov.Provenance.result

let test_rule_labels_in_proofs () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c)." in
  let prov = Provenance.eval sigma d in
  match Provenance.explain prov (Helpers.atom "tc(a, c)") with
  | Some (Provenance.Derived (_, rule, _)) ->
    check (Alcotest.option Alcotest.string) "labelled rule" (Some "step") (Rule.label rule)
  | _ -> Alcotest.fail "expected a derived proof"

(* --- one-step support sets (what DRed's rederivation leans on) ------ *)

let test_one_step_supports () =
  let sigma = tc_program () in
  let d = Seminaive.eval sigma (Helpers.db "e(a, b). e(b, c). e(c, d).") in
  (* tc(a, c) has exactly one derivation: @step over tc(a,b), e(b,c). *)
  (match Provenance.one_step_supports sigma d (Helpers.atom "tc(a, c)") with
  | [ (rule, premises) ] ->
    check (Alcotest.option Alcotest.string) "rule" (Some "step") (Rule.label rule);
    check (Alcotest.list cstring) "premises" [ "tc(a, b)"; "e(b, c)" ]
      (List.map Atom.to_string premises)
  | supports -> Alcotest.failf "expected one support, got %d" (List.length supports));
  (* tc(a, b) is supported by @base alone; the base edge has none. *)
  (match Provenance.one_step_supports sigma d (Helpers.atom "tc(a, b)") with
  | [ (rule, [ premise ]) ] ->
    check (Alcotest.option Alcotest.string) "base rule" (Some "base") (Rule.label rule);
    check cstring "edge premise" "e(a, b)" (Atom.to_string premise)
  | _ -> Alcotest.fail "expected the base-rule support");
  check cbool "input fact underivable" true
    (Provenance.one_step_supports sigma d (Helpers.atom "e(a, b)") = []);
  check cbool "absent fact underivable" true
    (Provenance.one_step_supports sigma d (Helpers.atom "tc(d, a)") = [])

let test_one_step_multiple_supports () =
  let sigma = tc_program () in
  let d = Seminaive.eval sigma (Helpers.db "e(a, b). e(b, d). e(a, c). e(c, d). e(d, f).") in
  (* tc(a, d) via b and via c: two distinct premise instances. *)
  check cint "two supports" 2
    (List.length (Provenance.one_step_supports sigma d (Helpers.atom "tc(a, d)")))

let test_derivable_one_step () =
  let sigma = tc_program () in
  let full = Seminaive.eval sigma (Helpers.db "e(a, b). e(b, c).") in
  check cbool "derivable" true (Provenance.derivable_one_step sigma full (Helpers.atom "tc(a, c)"));
  check cbool "input not derivable" false
    (Provenance.derivable_one_step sigma full (Helpers.atom "e(a, b)"));
  (* after its only premise chain is gone, it is not derivable *)
  ignore (Database.remove full (Helpers.atom "tc(a, b)"));
  check cbool "support gone" false
    (Provenance.derivable_one_step sigma full (Helpers.atom "tc(a, c)"))

let test_one_step_respects_negation () =
  let sigma = Helpers.theory "s(X), not e(X, X) -> p(X)." in
  let d = Helpers.db "s(a). s(b). e(a, a)." in
  check cbool "blocked by negation" false
    (Provenance.derivable_one_step sigma d (Helpers.atom "p(a)"));
  check cbool "negation absent" true (Provenance.derivable_one_step sigma d (Helpers.atom "p(b)"))

let suite =
  [
    Alcotest.test_case "same fixpoint as seminaive" `Quick test_same_fixpoint;
    Alcotest.test_case "explain a chain" `Quick test_explain_chain;
    Alcotest.test_case "input facts are Given" `Quick test_explain_input_fact;
    Alcotest.test_case "explain a translated program" `Quick test_explain_translated_program;
    Alcotest.test_case "proofs are well-founded" `Quick test_proofs_are_wellfounded;
    Alcotest.test_case "rule labels surface" `Quick test_rule_labels_in_proofs;
    Alcotest.test_case "one-step supports" `Quick test_one_step_supports;
    Alcotest.test_case "one-step multiple supports" `Quick test_one_step_multiple_supports;
    Alcotest.test_case "one-step derivability" `Quick test_derivable_one_step;
    Alcotest.test_case "one-step respects negation" `Quick test_one_step_respects_negation;
  ]
