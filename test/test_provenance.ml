(** Tests for why-provenance and proof trees. *)

open Guarded_core
module Provenance = Guarded_datalog.Provenance
module Seminaive = Guarded_datalog.Seminaive

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let tc_program () =
  Helpers.theory "@base e(X, Y) -> tc(X, Y). @step tc(X, Y), e(Y, Z) -> tc(X, Z)."

let test_same_fixpoint () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let prov = Provenance.eval sigma d in
  check cbool "fixpoints agree" true (Database.equal prov.Provenance.result (Seminaive.eval sigma d))

let test_explain_chain () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c). e(c, d)." in
  let prov = Provenance.eval sigma d in
  match Provenance.explain prov (Helpers.atom "tc(a, d)") with
  | None -> Alcotest.fail "tc(a,d) not provable"
  | Some proof ->
    check cbool "root is the fact" true
      (Atom.equal (Provenance.proof_fact proof) (Helpers.atom "tc(a, d)"));
    (* the proof bottoms out in the three input edges *)
    let support = Provenance.support proof in
    check cint "three supporting edges" 3 (List.length support);
    List.iter
      (fun a -> check Alcotest.string "edges only" "e" (Atom.rel a))
      support;
    check cbool "depth matches the chain" true (Provenance.proof_depth proof >= 3)

let test_explain_input_fact () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b)." in
  let prov = Provenance.eval sigma d in
  (match Provenance.explain prov (Helpers.atom "e(a, b)") with
  | Some (Provenance.Given _) -> ()
  | _ -> Alcotest.fail "input fact should be Given");
  check cbool "absent fact unexplained" true
    (Provenance.explain prov (Helpers.atom "e(z, z)") = None)

let test_explain_translated_program () =
  (* Unfold an answer of the compiled ontology down to input facts,
     through the translation's auxiliary relations. *)
  let tr = Guarded_translate.Pipeline.to_datalog (Helpers.small_fg_theory ()) in
  let d = Database.copy (Helpers.small_fg_db ()) in
  Database.materialize_acdom d;
  let prov = Provenance.eval tr.Guarded_translate.Pipeline.datalog d in
  match Provenance.explain prov (Helpers.atom "q(a1)") with
  | None -> Alcotest.fail "q(a1) not provable in the translated program"
  | Some proof ->
    let support = Provenance.support proof in
    (* every supporting fact is an input fact (or materialized ACDom) *)
    List.iter
      (fun a -> check cbool "support is input" true (Database.mem d a))
      support;
    check cbool "non-trivial proof" true (Provenance.proof_size proof > 2)

let test_proofs_are_wellfounded () =
  (* cyclic data: first derivations still yield finite proofs *)
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, a)." in
  let prov = Provenance.eval sigma d in
  Database.iter
    (fun fact ->
      if Atom.rel fact = "tc" then
        match Provenance.explain prov fact with
        | Some proof -> check cbool "finite proof" true (Provenance.proof_size proof < 100)
        | None -> Alcotest.failf "no proof for %s" (Atom.to_string fact))
    prov.Provenance.result

let test_rule_labels_in_proofs () =
  let sigma = tc_program () in
  let d = Helpers.db "e(a, b). e(b, c)." in
  let prov = Provenance.eval sigma d in
  match Provenance.explain prov (Helpers.atom "tc(a, c)") with
  | Some (Provenance.Derived (_, rule, _)) ->
    check (Alcotest.option Alcotest.string) "labelled rule" (Some "step") (Rule.label rule)
  | _ -> Alcotest.fail "expected a derived proof"

let suite =
  [
    Alcotest.test_case "same fixpoint as seminaive" `Quick test_same_fixpoint;
    Alcotest.test_case "explain a chain" `Quick test_explain_chain;
    Alcotest.test_case "input facts are Given" `Quick test_explain_input_fact;
    Alcotest.test_case "explain a translated program" `Quick test_explain_translated_program;
    Alcotest.test_case "proofs are well-founded" `Quick test_proofs_are_wellfounded;
    Alcotest.test_case "rule labels surface" `Quick test_rule_labels_in_proofs;
  ]
