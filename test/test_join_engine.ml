(** Equivalence properties for the join engine: the index-intersected
    streaming joins of {!Guarded_core.Homomorphism} and the
    delta-indexed semi-naive fixpoint of {!Guarded_datalog.Seminaive}
    must agree with naive reference implementations that use no indexes,
    no candidate estimation and no deltas. *)

open Guarded_core
open Guarded_gen.Generator

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)

(* Homomorphisms by scanning the full fact list at every join step: the
   textbook nested-loop join, kept deliberately free of the engine's
   index structures. *)
let reference_all body db =
  let facts = Database.to_list db in
  let rec go subst = function
    | [] -> [ subst ]
    | a :: rest ->
      List.concat_map
        (fun fact ->
          match Subst.match_atom subst a fact with Some s -> go s rest | None -> [])
        facts
  in
  go Subst.empty body

(* The naive (non-differential) fixpoint: every rule re-fires against
   the whole database until nothing new appears. Negative literals are
   checked against the current database, which is sound precisely on
   semipositive programs (negated relations are never derived, so their
   extension is fixed from the start — the same contract Seminaive
   relies on). *)
let naive_eval sigma db0 =
  let db = Database.copy db0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        List.iter
          (fun subst ->
            let blocked =
              List.exists
                (fun a -> Database.mem db (Subst.apply_atom subst a))
                (Rule.neg_body_atoms r)
            in
            if not blocked then
              List.iter
                (fun h -> if Database.add db (Subst.apply_atom subst h) then changed := true)
                (Subst.apply_atoms subst (Rule.head r)))
          (reference_all (Rule.body_atoms r) db))
      (Theory.rules sigma)
  done;
  db

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* Substitutions as comparable values: the tuple of images of the
   pattern's variables, in a fixed variable order. *)
let canon_substs body substs =
  let vars =
    Names.Sset.elements
      (List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body)
  in
  List.sort_uniq Stdlib.compare
    (List.map (fun s -> List.map (fun v -> Subst.find_opt v s) vars) substs)

let print_body body = Fmt.str "%a" (Names.pp_comma_list Atom.pp) body

let arbitrary_body_db =
  QCheck.make
    ~print:(fun (body, db) -> Fmt.str "%s@.---@.%a" (print_body body) Database.pp db)
    QCheck.Gen.(pair gen_cq_body (gen_db ~max_facts:12 ()))

let prop_iter_pos_matches_scan =
  QCheck.Test.make ~count:300 ~name:"indexed streaming join = naive scan join"
    arbitrary_body_db (fun (body, db) ->
      canon_substs body (Homomorphism.all body db)
      = canon_substs body (reference_all body db))

(* iter_pos with a pre-bound initial substitution must behave like
   filtering the unconstrained enumeration. *)
let prop_iter_pos_respects_init =
  QCheck.Test.make ~count:200 ~name:"join under initial bindings = filtered join"
    arbitrary_body_db (fun (body, db) ->
      let all = Homomorphism.all body db in
      match all with
      | [] -> true
      | witness :: _ ->
        (* Bind one variable to its image in some witness. *)
        (match Subst.bindings witness with
        | [] -> true
        | (v, t) :: _ ->
          let init = Subst.add v t Subst.empty in
          let bound = Homomorphism.all ~init body db in
          let filtered = List.filter (fun s -> Subst.find_opt v s = Some t) all in
          canon_substs body bound = canon_substs body filtered))

(* The worst-case-optimal executor enumerates exactly the same
   homomorphisms as the scan reference, whatever elimination order the
   planner picks. *)
let prop_wcoj_matches_scan =
  QCheck.Test.make ~count:300 ~name:"worst-case-optimal join = naive scan join"
    arbitrary_body_db (fun (body, db) ->
      let order = Guarded_datalog.Planner.var_order body in
      canon_substs body (Guarded_datalog.Wcoj.all ~order body db)
      = canon_substs body (reference_all body db))

let prop_wcoj_respects_init =
  QCheck.Test.make ~count:200 ~name:"wcoj under initial bindings = filtered join"
    arbitrary_body_db (fun (body, db) ->
      let order = Guarded_datalog.Planner.var_order body in
      let all = Guarded_datalog.Wcoj.all ~order body db in
      match all with
      | [] -> true
      | witness :: _ ->
        (match Subst.bindings witness with
        | [] -> true
        | (v, t) :: _ ->
          let init = Subst.add v t Subst.empty in
          let bound = Guarded_datalog.Wcoj.all ~init ~order body db in
          let filtered = List.filter (fun s -> Subst.find_opt v s = Some t) all in
          canon_substs body bound = canon_substs body filtered))

(* The planner's elimination order is a permutation of the body's
   variables — nothing dropped, nothing invented. *)
let prop_var_order_covers_vars =
  QCheck.Test.make ~count:300 ~name:"planner variable order covers exactly the body variables"
    arbitrary_body_db (fun (body, _) ->
      let vars =
        List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
      in
      List.sort Stdlib.compare (Guarded_datalog.Planner.var_order body)
      = Names.Sset.elements vars)

(* The planner's executor choice never changes the fixpoint: forced
   WCOJ, forced binary and the free [`Auto] decision all compute the
   same database (ISSUE 6, satellite 4). *)
let prop_join_mode_invariant =
  QCheck.Test.make ~count:100 ~name:"fixpoint invariant under join executor choice"
    (arbitrary_pair arbitrary_semipositive) (fun (sigma, d) ->
      let binary = Guarded_datalog.Seminaive.eval ~join:`Binary sigma d in
      Database.equal binary (Guarded_datalog.Seminaive.eval ~join:`Wcoj sigma d)
      && Database.equal binary (Guarded_datalog.Seminaive.eval ~join:`Auto sigma d))

let prop_seminaive_matches_naive =
  QCheck.Test.make ~count:100 ~name:"delta-indexed semi-naive fixpoint = naive fixpoint"
    (arbitrary_pair arbitrary_semipositive) (fun (sigma, d) ->
      Database.equal (Guarded_datalog.Seminaive.eval sigma d) (naive_eval sigma d))

let prop_semipositive_generator_is_semipositive =
  QCheck.Test.make ~count:100 ~name:"semipositive generator: negated relations never derived"
    arbitrary_semipositive (fun sigma ->
      let heads =
        List.fold_left
          (fun acc r ->
            List.fold_left (fun acc a -> Theory.Rel_set.add (Atom.rel_key a) acc) acc (Rule.head r))
          Theory.Rel_set.empty (Theory.rules sigma)
      in
      List.for_all
        (fun r ->
          List.for_all
            (fun a -> not (Theory.Rel_set.mem (Atom.rel_key a) heads))
            (Rule.neg_body_atoms r))
        (Theory.rules sigma))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_iter_pos_matches_scan;
      prop_iter_pos_respects_init;
      prop_wcoj_matches_scan;
      prop_wcoj_respects_init;
      prop_var_order_covers_vars;
      prop_join_mode_invariant;
      prop_seminaive_matches_naive;
      prop_semipositive_generator_is_semipositive;
    ]
