(** Tests for the guardedness analysis (Definitions 1-3, Figure 1). *)

open Guarded_core

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

let lang = Alcotest.testable (fun ppf l -> Fmt.string ppf (Classify.language_name l)) ( = )

let test_affected_positions () =
  let sigma =
    Helpers.theory "a(X) -> exists Y. r(X, Y). r(X, Y) -> s(Y, X)."
  in
  let ap = Classify.affected_positions sigma in
  (* (r,1) holds the existential; it propagates through the second rule
     into (s,0). (r,0) and (s,1) carry only database terms. *)
  check cbool "(r,1) affected" true (Classify.Pos_set.mem (("r", 0, 2), 1) ap);
  check cbool "(r,0) not affected" false (Classify.Pos_set.mem (("r", 0, 2), 0) ap);
  check cbool "(s,0) affected" true (Classify.Pos_set.mem (("s", 0, 2), 0) ap);
  check cbool "(s,1) not affected" false (Classify.Pos_set.mem (("s", 0, 2), 1) ap)

let test_unsafe_vars () =
  let sigma =
    Helpers.theory "a(X) -> exists Y. r(X, Y). r(X, Y), r(Z, Y) -> s(Y, X)."
  in
  let ap = Classify.affected_positions sigma in
  let r2 = List.nth (Theory.rules sigma) 1 in
  let unsafe = Classify.unsafe_vars ~ap r2 in
  check (Alcotest.list Alcotest.string) "only Y is unsafe" [ "Y" ] (Names.Sset.elements unsafe)

let test_guarded_detection () =
  check cbool "guard exists" true
    (Classify.is_guarded_rule (Helpers.rule "r(X, Y, Z), s(X, Y) -> t(X)."));
  check cbool "no guard" false
    (Classify.is_guarded_rule (Helpers.rule "r(X, Y), s(Y, Z) -> t(X)."));
  check cbool "empty body guarded (fact)" true (Classify.is_guarded_rule (Helpers.rule "-> r(c)."));
  check cbool "existential guarded" true
    (Classify.is_guarded_rule (Helpers.rule "r(X, Y) -> exists Z. t(X, Y, Z)."))

let test_frontier_guarded_detection () =
  (* Non-guarded but frontier-guarded: the frontier {X} sits in r(X,Y). *)
  let r = Helpers.rule "r(X, Y), s(Y, Z) -> t(X)." in
  check cbool "frontier-guarded" true (Classify.is_frontier_guarded_rule r);
  (* Frontier split over two atoms: not frontier-guarded. *)
  let r2 = Helpers.rule "r(X, Y), s(Y, Z) -> t(X, Z)." in
  check cbool "split frontier" false (Classify.is_frontier_guarded_rule r2)

let test_classify_languages () =
  check lang "datalog" Classify.Datalog
    (Classify.classify (Helpers.theory "e(X, Y), e(Y, Z) -> tc(X, Z)."));
  check lang "guarded" Classify.Guarded (Classify.classify (Helpers.example7_theory ()));
  check lang "frontier-guarded" Classify.Frontier_guarded
    (Classify.classify (Helpers.publications_theory ()));
  check lang "weakly guarded" Classify.Weakly_guarded
    (Classify.classify (Helpers.wg_theory ()))

let test_nearly_guarded () =
  (* A guarded existential part plus a Datalog rule whose variables all
     live in non-affected positions: nearly guarded but not guarded. *)
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y. r(X, Y).
    e(X, Y), e(Y, Z) -> e(X, Z).
  |}
  in
  check cbool "nearly guarded" true (Classify.is_nearly_guarded sigma);
  check cbool "not guarded" false (Classify.is_guarded sigma);
  check lang "classified nearly guarded" Classify.Nearly_guarded (Classify.classify sigma)

let test_weakly_guarded () =
  let sigma = Helpers.wg_theory () in
  check cbool "weakly guarded" true (Classify.is_weakly_guarded sigma);
  check cbool "not nearly guarded" false (Classify.is_nearly_guarded sigma);
  (* Dropping the guard atom of w2 breaks weak guardedness... *)
  let broken =
    Helpers.theory
      {|
    node(X) -> exists Y. wrap(X, Y).
    wrap(X, Y), wrap(Z, Y) -> link(X, Z).
  |}
  in
  (* Y is unsafe and occurs in both wrap atoms; each contains Y, so the
     rule is still weakly guarded — but making two unsafe variables
     share no atom is not: *)
  check cbool "two wraps still WG" true (Classify.is_weakly_guarded broken);
  let really_broken =
    Helpers.theory
      {|
    node(X) -> exists Y. wrap(X, Y).
    wrap(X, Y), wrap(Y2, Z) -> wrap(Y, Y2).
  |}
  in
  check cbool "unguarded unsafe pair" false (Classify.is_weakly_guarded really_broken)

let test_hierarchy_inclusions () =
  (* Figure 1's syntactic inclusions on a batch of theories. *)
  let theories =
    [
      Helpers.publications_theory ();
      Helpers.example7_theory ();
      Helpers.wg_theory ();
      Helpers.small_fg_theory ();
      Helpers.theory "e(X, Y), e(Y, Z) -> tc(X, Z).";
    ]
  in
  List.iter
    (fun sigma ->
      if Classify.is_guarded sigma then
        check cbool "guarded => weakly guarded" true (Classify.is_weakly_guarded sigma);
      if Classify.is_guarded sigma then
        check cbool "guarded => frontier-guarded" true (Classify.is_frontier_guarded sigma);
      if Classify.is_guarded sigma then
        check cbool "guarded => nearly guarded" true (Classify.is_nearly_guarded sigma);
      if Classify.is_frontier_guarded sigma then
        check cbool "fg => nearly fg" true (Classify.is_nearly_frontier_guarded sigma);
      if Classify.is_frontier_guarded sigma then
        check cbool "fg => weakly fg" true (Classify.is_weakly_frontier_guarded sigma);
      if Classify.is_nearly_guarded sigma then
        check cbool "ng => nfg" true (Classify.is_nearly_frontier_guarded sigma);
      if Classify.is_weakly_guarded sigma then
        check cbool "wg => wfg" true (Classify.is_weakly_frontier_guarded sigma);
      if Theory.is_datalog sigma then
        check cbool "datalog => nearly guarded" true (Classify.is_nearly_guarded sigma))
    theories

let test_proper () =
  let sigma = Helpers.theory "a(X) -> exists Y. r(X, Y). r(X, Y) -> s(Y, X)." in
  (* (r,1) and (s,0) affected: r has its affected position second — not
     a prefix — so the theory is not proper. *)
  check cbool "not proper" false (Classify.is_proper sigma);
  let sigma2 = Helpers.theory "a(X) -> exists Y. r(Y, X). r(Y, X) -> s(Y, X)." in
  check cbool "proper" true (Classify.is_proper sigma2)

let test_frontier_guard_choice () =
  let r = Helpers.rule "r(X, Y), s(Y, Z) -> t(Y)." in
  match Classify.frontier_guard r with
  | Some a -> check cbool "guard contains frontier" true (List.mem "Y" (Atom.arg_vars a))
  | None -> Alcotest.fail "frontier guard expected"

let test_transitive_closure_not_fg () =
  (* The paper's canonical separation: transitive closure is Datalog but
     no frontier-guarded theory expresses it (Section 3). Syntactically,
     the recursion rule is not frontier-guarded. *)
  let tc_rule = Helpers.rule "tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  check cbool "tc rule not frontier-guarded" false (Classify.is_frontier_guarded_rule tc_rule);
  check cbool "tc rule is datalog" true (Rule.is_datalog tc_rule)

let test_acdom_makes_safe () =
  (* Adding ACDom atoms turns unsafe variables safe (Def. 13's device). *)
  let sigma =
    Helpers.theory
      {|
    a(X) -> exists Y. r(X, Y).
    r(X, Y), ACDom(Y) -> s(Y, X).
  |}
  in
  let ap = Classify.affected_positions sigma in
  let r2 = List.nth (Theory.rules sigma) 1 in
  check cint "no unsafe vars" 0 (Names.Sset.cardinal (Classify.unsafe_vars ~ap r2));
  check cbool "nearly guarded" true (Classify.is_nearly_guarded sigma)

let test_weak_acyclicity () =
  check cbool "publications weakly acyclic" true
    (Acyclicity.is_weakly_acyclic (Helpers.publications_theory ()));
  check cbool "datalog trivially WA" true
    (Acyclicity.is_weakly_acyclic (Helpers.theory "e(X, Y), e(Y, Z) -> e(X, Z)."));
  let genealogy =
    Helpers.theory "person(X) -> exists Y. parent(X, Y). parent(X, Y) -> person(Y)."
  in
  check cbool "genealogy not WA" false (Acyclicity.is_weakly_acyclic genealogy);
  check cbool "has a special edge" true (Acyclicity.special_edges genealogy <> []);
  check cbool "wg chain not WA" false (Acyclicity.is_weakly_acyclic (Helpers.wg_theory ()));
  (* a special edge without a cycle back stays WA *)
  let one_shot = Helpers.theory "a(X) -> exists Y. r(X, Y). r(X, Y) -> done_(X)." in
  check cbool "one-shot invention WA" true (Acyclicity.is_weakly_acyclic one_shot);
  (* WA yet oblivious-divergent: the restricted chase terminates, the
     oblivious one re-fires on its own nulls. *)
  let self = Helpers.theory "t(X, Y) -> exists Z. t(Z, Y)." in
  check cbool "self-refresh is WA" true (Acyclicity.is_weakly_acyclic self);
  let d = Helpers.db "t(a, b)." in
  let restricted =
    Guarded_chase.Engine.run ~variant:Guarded_chase.Engine.Restricted self d
  in
  check cbool "restricted saturates" true
    (restricted.outcome = Guarded_chase.Engine.Saturated);
  let oblivious =
    Guarded_chase.Engine.run ~limits:{ max_derivations = 20; max_depth = None } self d
  in
  check cbool "oblivious diverges" true (oblivious.outcome = Guarded_chase.Engine.Bounded)

let suite =
  [
    Alcotest.test_case "affected positions" `Quick test_affected_positions;
    Alcotest.test_case "unsafe variables" `Quick test_unsafe_vars;
    Alcotest.test_case "guarded rules" `Quick test_guarded_detection;
    Alcotest.test_case "frontier-guarded rules" `Quick test_frontier_guarded_detection;
    Alcotest.test_case "language classification" `Quick test_classify_languages;
    Alcotest.test_case "nearly guarded" `Quick test_nearly_guarded;
    Alcotest.test_case "weakly guarded" `Quick test_weakly_guarded;
    Alcotest.test_case "Figure 1 inclusions" `Quick test_hierarchy_inclusions;
    Alcotest.test_case "proper theories" `Quick test_proper;
    Alcotest.test_case "frontier guard choice" `Quick test_frontier_guard_choice;
    Alcotest.test_case "transitive closure not FG" `Quick test_transitive_closure_not_fg;
    Alcotest.test_case "ACDom makes variables safe" `Quick test_acdom_makes_safe;
    Alcotest.test_case "weak acyclicity" `Quick test_weak_acyclicity;
  ]
