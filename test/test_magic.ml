(** Tests for the dependency graph and the magic-set transformation. *)

open Guarded_core
module Depgraph = Guarded_datalog.Depgraph
module Magic = Guarded_datalog.Magic
module Seminaive = Guarded_datalog.Seminaive

let check = Alcotest.check
let cbool = Alcotest.bool
let cint = Alcotest.int

(* --- dependency graph ------------------------------------------------ *)

let tc_program () =
  Helpers.theory "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)."

let test_depgraph_edges () =
  let g = Depgraph.of_theory (tc_program ()) in
  check cbool "e feeds tc" true
    (Depgraph.Rel_set.mem ("tc", 0, 2) (Depgraph.successors g ("e", 0, 2)));
  check cbool "tc depends on e" true
    (Depgraph.Rel_set.mem ("e", 0, 2) (Depgraph.predecessors g ("tc", 0, 2)))

let test_depgraph_sccs () =
  let sigma =
    Helpers.theory
      {|
    a(X) -> b(X).
    b(X) -> c(X).
    c(X) -> b(X).
    c(X) -> d(X).
  |}
  in
  let g = Depgraph.of_theory sigma in
  let sccs = Depgraph.sccs g in
  (* {b, c} is the only non-trivial component *)
  check cbool "b,c together" true
    (List.exists (fun comp -> List.length comp = 2) sccs);
  check cint "two singleton components" 2
    (List.length (List.filter (fun c -> List.length c = 1) sccs));
  (* dependencies-first order: a's component before b/c's, b/c before d *)
  let pos key =
    let rec go i = function
      | [] -> -1
      | comp :: rest -> if List.mem key comp then i else go (i + 1) rest
    in
    go 0 sccs
  in
  check cbool "a before bc" true (pos ("a", 0, 1) < pos ("b", 0, 1));
  check cbool "bc before d" true (pos ("b", 0, 1) < pos ("d", 0, 1))

let test_depgraph_recursive () =
  let g = Depgraph.of_theory (tc_program ()) in
  let rec_rels = Depgraph.recursive_relations g in
  check cbool "tc recursive" true (Depgraph.Rel_set.mem ("tc", 0, 2) rec_rels);
  check cbool "e not recursive" false (Depgraph.Rel_set.mem ("e", 0, 2) rec_rels)

let test_depgraph_reachable () =
  let sigma = Helpers.theory "a(X) -> b(X). c(X) -> d(X). b(X), d(X) -> q(X)." in
  let g = Depgraph.of_theory sigma in
  let reach =
    Depgraph.reachable_from g (Depgraph.Rel_set.singleton ("b", 0, 1))
  in
  check cbool "a relevant to b" true (Depgraph.Rel_set.mem ("a", 0, 1) reach);
  check cbool "c irrelevant to b" false (Depgraph.Rel_set.mem ("c", 0, 1) reach)

(* --- magic sets ------------------------------------------------------ *)

let chain_db n =
  Database.of_atoms
    (List.init n (fun i ->
         Atom.make "e" [ Term.Const (Fmt.str "n%d" i); Term.Const (Fmt.str "n%d" (i + 1)) ]))

let test_magic_bound_query () =
  let sigma = tc_program () in
  let db = chain_db 30 in
  (* tc(n0, X): first argument bound *)
  let query = Magic.query_of_atom (Helpers.atom "tc(n0, X)") in
  let magic_answers = Magic.answers sigma query db in
  check cint "all 30 targets" 30 (List.length magic_answers);
  (* same answers as the unoptimized evaluation, filtered *)
  let full = Seminaive.eval sigma db in
  let expected =
    Database.candidates full (Helpers.atom "tc(n0, X)")
    |> List.filter_map (fun fact ->
           match Subst.match_atom Subst.empty (Helpers.atom "tc(n0, X)") fact with
           | Some _ -> Some (Atom.args fact)
           | None -> None)
    |> List.sort_uniq (List.compare Term.compare)
  in
  Helpers.check_answers "matches seminaive" expected magic_answers

let test_magic_prunes () =
  (* On a chain, tc(n0, X) bottom-up computes O(n^2) facts; the magic
     program only derives the n facts reachable from n0's suffix. *)
  let sigma = tc_program () in
  let db = chain_db 40 in
  let query = Magic.query_of_atom (Helpers.atom "tc(n39, X)") in
  let program, out_rel = Magic.transform sigma query in
  let result = Seminaive.eval program db in
  let derived = Database.rel_cardinal result (out_rel, 0, 2) in
  let full = Seminaive.eval sigma db in
  let all_tc = Database.rel_cardinal full ("tc", 0, 2) in
  check cbool "magic derives far fewer tc facts" true (derived * 10 < all_tc)

let test_magic_free_query () =
  (* All-free query: must still agree with plain evaluation. *)
  let sigma = tc_program () in
  let db = chain_db 6 in
  let query = Magic.query_of_atom (Helpers.atom "tc(X, Y)") in
  let magic_answers = Magic.answers sigma query db in
  Helpers.check_answers "all tc pairs" (Seminaive.answers sigma db ~query:"tc") magic_answers

let test_magic_constants_in_rules () =
  let sigma = Helpers.theory "e(X, Y) -> p(X, Y). p(X, Y), mark(Y) -> good(X)." in
  let db = Helpers.db "e(a, b). e(c, d). mark(b)." in
  let query = Magic.query_of_atom (Helpers.atom "good(X)") in
  Helpers.check_answers "good answers" (Helpers.tuples "a") (Magic.answers sigma query db)

let test_magic_nonlinear () =
  (* Non-linear recursion (same-generation style). *)
  let sigma =
    Helpers.theory
      {|
    flat(X, Y) -> sg(X, Y).
    up(X, X1), sg(X1, Y1), down(Y1, Y) -> sg(X, Y).
  |}
  in
  let db =
    Helpers.db
      {|
    up(a, b). up(c, d). down(b2, a2). down(d, c2).
    flat(b, b2). flat(d, d).
  |}
  in
  let query = Magic.query_of_atom (Helpers.atom "sg(a, Y)") in
  let expected =
    let full = Seminaive.eval sigma db in
    Database.candidates full (Helpers.atom "sg(a, Y)")
    |> List.filter_map (fun fact ->
           match Subst.match_atom Subst.empty (Helpers.atom "sg(a, Y)") fact with
           | Some _ -> Some (Atom.args fact)
           | None -> None)
    |> List.sort_uniq (List.compare Term.compare)
  in
  Helpers.check_answers "same generation" expected (Magic.answers sigma query db)

let test_magic_on_translated_theory () =
  (* The output of the translation pipeline is a Datalog program; magic
     evaluation of the query relation agrees with plain evaluation. *)
  let tr = Guarded_translate.Pipeline.to_datalog (Helpers.small_fg_theory ()) in
  let sigma = tr.Guarded_translate.Pipeline.datalog in
  let db = Helpers.small_fg_db () in
  (* materialize ACDom up-front: the magic-transformed program's guarded
     rules must see the same extensional ACDom facts *)
  let db = Database.copy db in
  Database.materialize_acdom db;
  let query = Magic.query_of_atom (Helpers.atom "q(X)") in
  Helpers.check_answers "pipeline + magic"
    (Seminaive.answers sigma db ~query:"q")
    (Magic.answers sigma query db)

let test_magic_rejects_negation () =
  let sigma = Helpers.theory "a(X), not b(X) -> c(X)." in
  match Magic.transform sigma (Magic.query_of_atom (Helpers.atom "c(X)")) with
  | exception Magic.Unsupported _ -> ()
  | _ -> Alcotest.fail "negation accepted by magic sets"

let test_magic_edb_query () =
  let sigma = tc_program () in
  let db = chain_db 3 in
  let query = Magic.query_of_atom (Helpers.atom "e(n0, X)") in
  check cint "edb query answered directly" 1 (List.length (Magic.answers sigma query db))

let test_magic_edb_arity_mismatch () =
  (* The program derives p/3 only; a query over p/2 is extensional and
     reads the data. Name-based rule matching used to pair the p/2
     adornment with the p/3 rules and walk off the pattern. *)
  let sigma = Helpers.theory "e(X, Y), m(Z) -> p(X, Y, Z)." in
  let db = Helpers.db "p(a, b). p(c, d). e(a, b). m(w)." in
  let query = Magic.query_of_atom (Helpers.atom "p(a, X)") in
  Helpers.check_answers "p/2 reads the data" (Helpers.tuples "a, b") (Magic.answers sigma query db);
  (* and the p/3 query still goes through the rules *)
  let q3 = Magic.query_of_atom (Helpers.atom "p(a, Y, Z)") in
  Helpers.check_answers "p/3 derived" (Helpers.tuples "a, b, w") (Magic.answers sigma q3 db)

let test_magic_relation_answers () =
  (* [? REL] offline: both arities of a relation answer at once —
     derived tuples through the magic subgoal, data-only arities
     straight from the database — matching the serving path's
     name-wide reads. *)
  let sigma = Helpers.theory "e(X, Y), m(Z) -> p(X, Y, Z)." in
  let db = Helpers.db "p(a, b). e(a, b). m(w)." in
  Helpers.check_answers "union across arities"
    (Helpers.tuples "a, b; a, b, w")
    (Magic.relation_answers sigma db ~rel:"p");
  (* a relation the program never mentions answers from the data *)
  Helpers.check_answers "unknown relation"
    (Helpers.tuples "a, b")
    (Magic.relation_answers sigma db ~rel:"e");
  Helpers.check_answers "absent relation" [] (Magic.relation_answers sigma db ~rel:"zzz")

let suite =
  [
    Alcotest.test_case "dependency edges" `Quick test_depgraph_edges;
    Alcotest.test_case "strongly connected components" `Quick test_depgraph_sccs;
    Alcotest.test_case "recursive relations" `Quick test_depgraph_recursive;
    Alcotest.test_case "reachability" `Quick test_depgraph_reachable;
    Alcotest.test_case "magic: bound query" `Quick test_magic_bound_query;
    Alcotest.test_case "magic: pruning" `Quick test_magic_prunes;
    Alcotest.test_case "magic: free query" `Quick test_magic_free_query;
    Alcotest.test_case "magic: constants in rules" `Quick test_magic_constants_in_rules;
    Alcotest.test_case "magic: non-linear recursion" `Quick test_magic_nonlinear;
    Alcotest.test_case "magic: translated theory" `Quick test_magic_on_translated_theory;
    Alcotest.test_case "magic: rejects negation" `Quick test_magic_rejects_negation;
    Alcotest.test_case "magic: extensional query" `Quick test_magic_edb_query;
    Alcotest.test_case "magic: extensional arity mismatch" `Quick test_magic_edb_arity_mismatch;
    Alcotest.test_case "magic: relation answers" `Quick test_magic_relation_answers;
  ]
