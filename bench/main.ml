(** Benchmark and reproduction harness.

    One section per table/figure of the paper (see DESIGN.md's
    per-experiment index and EXPERIMENTS.md for the recorded outcomes):
    each section regenerates its artifact — inclusion relations,
    chase statistics, translation sizes, capture results — and prints the
    rows. A final Bechamel pass micro-times one representative operation
    per experiment.

    Usage: dune exec bench/main.exe [-- [--json FILE] [--domains SPEC] SECTION...]
    Sections: fig1 fig2 fig3 thm1 thm2 thm3 sec7 thm4 thm5 blowup ablation
    sat incr serve ingest demand analyze joins micro

    With [--json FILE] the run additionally records, per section, the
    wall-clock seconds and every printed table with its timing columns
    stripped (so two runs of the same tree produce identical result
    rows), and writes them as JSON. The committed BENCH_N.json files
    are such recordings; EXPERIMENTS.md describes the workflow.

    With [--domains SPEC] (comma-separated counts, e.g. [--domains 1,4])
    the requested sections run once per count, each against a
    {!Guarded_par.Pool} of that many domains wired into the fixpoint
    sections (fig2, thm1, thm2, thm5, sat, incr, micro's chase). Each count
    runs in a fresh child process (the driver re-executes itself per
    leg and splices the child recordings) so hash-cons-table and heap
    growth from one leg cannot tax the next. The first count keeps the
    plain section ids — its result rows stay diffable against
    sequential baselines, since the recorded rows are null-free — and
    later counts record under [id@dN]. Without the flag every section
    runs the unchanged sequential schedule. *)

open Guarded_core
module Engine = Guarded_chase.Engine
module Tree = Guarded_chase.Tree
module Seminaive = Guarded_datalog.Seminaive
module Saturate = Guarded_translate.Saturate
module Rewrite_fg = Guarded_translate.Rewrite_fg
module Subsumption = Guarded_translate.Subsumption
module Annotate = Guarded_translate.Annotate
module Pipeline = Guarded_translate.Pipeline
module Capture = Guarded_capture
module Pool = Guarded_par.Pool

(* The pool the fixpoint sections evaluate against; [None] (the
   default) keeps every section on the sequential schedule. Set by the
   [--domains] sweep in the driver. *)
let current_pool : Pool.t option ref = ref None
let current_domains : int option ref = ref None

(* ------------------------------------------------------------------ *)
(* Small table printer                                                 *)

let section id title =
  Fmt.pr "@.=== %s — %s ===@." (String.uppercase_ascii id) title

(* ------------------------------------------------------------------ *)
(* JSON recording (--json FILE)                                        *)

type json_section = {
  js_id : string;
  js_domains : int option;  (** pool size; [None] = sequential schedule *)
  mutable js_seconds : float;
  mutable js_alloc_mb : float;  (** bytes allocated during the section, MB *)
  mutable js_heap_mb : float;  (** top_heap_words after the section, MB *)
  mutable js_tables : (string list * string list list) list;  (** reversed *)
}

let json_enabled = ref false
let json_sections : json_section list ref = ref []
let json_current : json_section option ref = ref None

let json_begin_section id =
  if !json_enabled then begin
    let js =
      {
        js_id = id;
        js_domains = !current_domains;
        js_seconds = 0.;
        js_alloc_mb = 0.;
        js_heap_mb = 0.;
        js_tables = [];
      }
    in
    json_sections := js :: !json_sections;
    json_current := Some js
  end

(* Timing columns are stripped from the recorded rows: everything else a
   section prints is deterministic, so baselines can be diffed on result
   rows while the [seconds] field carries the perf trajectory. *)
let is_timing_column h =
  let h = String.lowercase_ascii h in
  let contains sub =
    let n = String.length sub and m = String.length h in
    let rec go i = i + n <= m && (String.sub h i n = sub || go (i + 1)) in
    go 0
  in
  contains "time" || contains "\xc2\xb5s" (* µs *)

(* A printed duration, e.g. "222.2ms": some tables label their timing
   columns by what is timed ("pipeline", "chase") rather than "time". *)
let is_timing_cell s =
  String.length s > 2
  && (match s.[0] with '0' .. '9' -> true | _ -> false)
  && String.sub s (String.length s - 2) 2 = "ms"

let json_record_table header rows =
  match !json_current with
  | None -> ()
  | Some js ->
    let keep =
      List.mapi
        (fun i h ->
          (not (is_timing_column h))
          && not (rows <> [] && List.for_all (fun row -> is_timing_cell (List.nth row i)) rows))
        header
    in
    let filter row = List.filteri (fun i _ -> List.nth keep i) row in
    js.js_tables <- (filter header, List.map filter rows) :: js.js_tables

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_write file =
  let oc = open_out file in
  let pr fmt = Printf.fprintf oc fmt in
  let str_list l = String.concat ", " (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l) in
  pr "{\n  \"generated_by\": \"bench/main.exe --json\",\n  \"sections\": [";
  List.iteri
    (fun i js ->
      if i > 0 then pr ",";
      pr "\n    {\n      \"id\": \"%s\",\n" (json_escape js.js_id);
      (match js.js_domains with
      | Some d -> pr "      \"domains\": %d,\n" d
      | None -> ());
      pr "      \"seconds\": %.6f,\n" js.js_seconds;
      pr "      \"alloc_mb\": %.3f,\n" js.js_alloc_mb;
      pr "      \"heap_mb\": %.3f,\n" js.js_heap_mb;
      pr "      \"tables\": [";
      List.iteri
        (fun j (header, rows) ->
          if j > 0 then pr ",";
          pr "\n        {\n          \"header\": [%s],\n          \"rows\": [" (str_list header);
          List.iteri
            (fun k row ->
              if k > 0 then pr ",";
              pr "\n            [%s]" (str_list row))
            rows;
          pr "\n          ]\n        }")
        (List.rev js.js_tables);
      pr "\n      ]\n    }")
    (List.rev !json_sections);
  pr "\n  ]\n}\n";
  close_out oc

let table header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    Fmt.pr "| %s |@."
      (String.concat " | " (List.map2 (fun w c -> c ^ String.make (w - String.length c) ' ') widths row))
  in
  print_row header;
  Fmt.pr "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows;
  json_record_table header rows

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let ms t = Fmt.str "%.1fms" (t *. 1000.)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

(* The running example scaled to a chain of [n] publications citing the
   next one, sharing an author pairwise, with a scientific seed topic. *)
let publications_db n =
  let db = Database.create () in
  let add text = ignore (Database.add db (Parser.atom_of_string text)) in
  for i = 1 to n do
    add (Fmt.str "publication(p%d)" i);
    add (Fmt.str "hasAuthor(p%d, auth%d)" i i);
    if i < n then begin
      add (Fmt.str "citedIn(p%d, p%d)" i (i + 1));
      add (Fmt.str "hasAuthor(p%d, auth%d)" (i + 1) i)
    end
  done;
  add (Fmt.str "hasTopic(p%d, seed)" n);
  add "scientific(seed)";
  db

let publications_theory () = Parser.theory_of_string Workloads.publications_text
let small_fg_theory () = Parser.theory_of_string Workloads.small_fg_text

(* A guarded "genealogy" family with a growing Datalog layer. *)
let guarded_family width =
  let rules =
    [
      "person(X) -> exists Y. parent(X, Y).";
      "parent(X, Y) -> person(Y).";
      "parent(X, Y) -> ancestor(X, Y).";
    ]
    @ List.init width (fun i ->
          Fmt.str "ancestor(X, Y), tag%d(X) -> tagged%d(Y)." i i)
    @ List.init width (fun i -> Fmt.str "tagged%d(X) -> anyTagged(X)." i)
  in
  Parser.theory_of_string (String.concat "\n" rules)

(* The frontier-guarded family of Thm 1's sweep: a non-guarded Datalog
   rule with [m] body atoms over existential values. *)
let fg_family m =
  let body =
    String.concat ", " (List.init m (fun i -> Fmt.str "hasTopic(X%d, Z)" i))
  in
  Parser.theory_of_string
    (Fmt.str
       {|
     publication(X) -> exists K1, K2. keywords(X, K1, K2).
     keywords(X, K1, K2) -> hasTopic(X, K1).
     %s -> shared(Z).
     shared(Z), hasTopic(X0, Z), hasAuthor(X0, A) -> q(A).
   |}
       body)

let fg_family_db () =
  Parser.database_of_string
    {|
  publication(p1). publication(p2).
  hasAuthor(p1, a1). hasAuthor(p2, a2).
  hasTopic(p1, t). hasTopic(p2, t).
|}

(* ------------------------------------------------------------------ *)
(* FIG1: the inclusion diagram, regenerated                            *)

let fig1 () =
  section "fig1" "Figure 1: semantic relations between the languages";
  let theories =
    [
      ("transitive closure", Parser.theory_of_string "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z).");
      ("Example 7 (guarded)", Parser.theory_of_string Workloads.example7_text);
      ("running example Σp", publications_theory ());
      ("small FG ontology", small_fg_theory ());
      ("WFG witness", Parser.theory_of_string Workloads.wfg_text);
      ("WG witness", Parser.theory_of_string Workloads.wg_text);
    ]
  in
  table
    [ "theory"; "classified"; "G"; "FG"; "NG"; "NFG"; "WG"; "WFG" ]
    (List.map
       (fun (name, sigma) ->
         let b f = if f sigma then "yes" else "-" in
         [
           name;
           Classify.language_name (Classify.classify sigma);
           b Classify.is_guarded;
           b Classify.is_frontier_guarded;
           b Classify.is_nearly_guarded;
           b Classify.is_nearly_frontier_guarded;
           b Classify.is_weakly_guarded;
           b Classify.is_weakly_frontier_guarded;
         ])
       theories);
  (* The translation edges of the figure, executed: *)
  Fmt.pr "@.edges (executed translations):@.";
  let norm = Normalize.normalize (small_fg_theory ()) in
  let ng, _ = Rewrite_fg.rew_frontier_guarded ~max_rules:50_000 norm in
  Fmt.pr "  FG -> NG   (Thm 1): %d -> %d rules, nearly guarded: %b@." (Theory.size norm)
    (Theory.size ng) (Classify.is_nearly_guarded ng);
  let dat, _ = Saturate.dat_nearly_guarded ~max_rules:50_000 ng in
  Fmt.pr "  NG -> DLog (Thm 3 + Prop 6): %d -> %d rules, datalog: %b@." (Theory.size ng)
    (Theory.size dat) (Theory.is_datalog dat);
  let wfg = Normalize.normalize (Parser.theory_of_string Workloads.wfg_text) in
  let wg = Annotate.rew_weakly_frontier_guarded ~max_rules:50_000 wfg in
  Fmt.pr "  WFG -> WG  (Thm 2): %d -> %d rules, weakly guarded: %b@." (Theory.size wfg)
    (Theory.size wg.Annotate.theory)
    (Classify.is_weakly_guarded wg.Annotate.theory);
  Fmt.pr "@.non-edges (separations):@.";
  Fmt.pr "  Datalog not in FG: the tc rule is not frontier-guarded: %b@."
    (not
       (Classify.is_frontier_guarded_rule
          (Parser.rule_of_string "tc(X, Y), e(Y, Z) -> tc(X, Z).")));
  (match Pipeline.to_datalog (Parser.theory_of_string Workloads.wg_text) with
  | exception Pipeline.Not_datalog_expressible l ->
    Fmt.pr "  WG not in Datalog: pipeline refuses (%s, ExpTime-complete data complexity)@."
      (Classify.language_name l)
  | _ -> Fmt.pr "  WG not in Datalog: UNEXPECTEDLY TRANSLATED@.")

(* ------------------------------------------------------------------ *)
(* FIG2: the running example's chase, scaled                           *)

let fig2 () =
  section "fig2" "Figure 2: chase of the publication example (scaled)";
  let sigma = publications_theory () in
  let norm = Normalize.normalize sigma in
  let rows =
    List.map
      (fun n ->
        let db = publications_db n in
        let (res : Engine.result), t =
          time (fun () -> Engine.run ?pool:!current_pool norm db)
        in
        let tree = Tree.build norm db res in
        let ok = match Tree.verify tree norm db with Ok () -> "ok" | Error _ -> "VIOLATED" in
        let answers, _ = Engine.answers ?pool:!current_pool norm db ~query:"q" in
        [
          string_of_int n;
          string_of_int (Database.cardinal db);
          string_of_int res.Engine.derivations;
          string_of_int (Database.cardinal res.Engine.db);
          string_of_int (List.length answers);
          string_of_int (Tree.node_count tree);
          string_of_int (Tree.width tree);
          ok;
          ms t;
        ])
      [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  table
    [ "n pubs"; "|D|"; "derivations"; "|chase|"; "answers"; "tree nodes"; "width"; "P1-P3"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* FIG3: the inference rules of Figure 3 on Example 7                  *)

let fig3 () =
  section "fig3" "Figure 3 / Example 7: the saturation calculus";
  let sigma = Parser.theory_of_string Workloads.example7_text in
  let (xi, stats), t = time (fun () -> Saturate.closure ~max_rules:10_000 sigma) in
  Fmt.pr "Ξ(Σ): %d rules (%d Datalog) from %d input rules (%s)@." stats.Saturate.closure_rules
    stats.Saturate.datalog_rules stats.Saturate.input_rules (ms t);
  let sigma12 = Rule.canonicalize (Parser.rule_of_string "a(X), c(X) -> d(X).") in
  let derived =
    List.exists
      (fun r -> Rule.to_string (Rule.canonicalize r) = Rule.to_string sigma12)
      (Theory.rules xi)
  in
  Fmt.pr "σ12 = A(x) ∧ C(x) → D(x) derived: %b@." derived;
  let dat, _ = Saturate.dat_via_closure ~max_rules:10_000 sigma in
  let db = Parser.database_of_string "a(k). c(k)." in
  let answers = Seminaive.answers dat db ~query:"d" in
  Fmt.pr "dat(Σ) alone answers D(c) over {A(c), C(c)}: %b@."
    (answers = [ [ Term.Const "k" ] ]);
  let dat2, st2 = Saturate.dat sigma in
  Fmt.pr "consequence-driven dat: %d rules, %d objects, agrees: %b@." (Theory.size dat2)
    st2.Saturate.resolutions
    (Seminaive.answers dat2 db ~query:"d" = answers)

(* ------------------------------------------------------------------ *)
(* THM1: FG -> NG translation sweep                                    *)

let thm1 () =
  section "thm1" "Theorem 1: frontier-guarded -> nearly guarded";
  let rows =
    List.map
      (fun m ->
        let sigma = Normalize.normalize (fg_family m) in
        let (ng, stats), t = time (fun () -> Rewrite_fg.rew_frontier_guarded ~max_rules:100_000 sigma) in
        let db = fg_family_db () in
        let expected, _ = Engine.answers sigma db ~query:"q" in
        let db' = Database.copy db in
        Database.materialize_acdom db';
        let got, _ =
          Engine.answers
            ~limits:{ max_derivations = 300_000; max_depth = None }
            ?pool:!current_pool ng db' ~query:"q"
        in
        [
          string_of_int m;
          string_of_int (Theory.size sigma);
          string_of_int stats.Guarded_translate.Expansion.output_rules;
          string_of_int stats.Guarded_translate.Expansion.aux_relations;
          (if Classify.is_nearly_guarded ng then "yes" else "NO");
          (if expected = got then "agree" else "MISMATCH");
          ms t;
        ])
      [ 1; 2; 3; 4 ]
  in
  table
    [ "body atoms"; "|Σ|"; "|rew(Σ)|"; "aux rels"; "nearly guarded"; "answers"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* THM2: WFG -> WG translation                                         *)

let thm2 () =
  section "thm2" "Theorem 2: weakly frontier-guarded -> weakly guarded";
  let cases =
    [ ("WFG witness", Workloads.wfg_text, "item(i1). item(i2). label(l1).", "tagged") ]
  in
  let rows =
    List.map
      (fun (name, text, db_text, query) ->
        let sigma = Normalize.normalize (Parser.theory_of_string text) in
        let r, t = time (fun () -> Annotate.rew_weakly_frontier_guarded ~max_rules:50_000 sigma) in
        let db = Parser.database_of_string db_text in
        let expected, _ = Engine.answers sigma db ~query in
        let db' = Database.copy db in
        Database.materialize_acdom db';
        let got, _ =
          Engine.answers
            ~limits:{ max_derivations = 100_000; max_depth = None }
            ?pool:!current_pool r.Annotate.theory db' ~query
        in
        [
          name;
          string_of_int (Theory.size sigma);
          string_of_int (Theory.size r.Annotate.theory);
          (if Classify.is_weakly_guarded r.Annotate.theory then "yes" else "NO");
          (if expected = got then "agree" else "MISMATCH");
          ms t;
        ])
      cases
  in
  table [ "theory"; "|Σ|"; "|rew(Σ)|"; "weakly guarded"; "answers"; "time" ] rows

(* ------------------------------------------------------------------ *)
(* THM3: guarded -> Datalog sweep                                      *)

let thm3 () =
  section "thm3" "Theorem 3 / Prop 6: (nearly) guarded -> Datalog";
  let db =
    Parser.database_of_string
      "person(adam). tag0(adam). tag1(adam). tag2(adam). tag3(adam)."
  in
  let rows =
    List.map
      (fun width ->
        let sigma = guarded_family width in
        let (dat, stats), t = time (fun () -> Saturate.dat ~max_rules:100_000 sigma) in
        let expected, outcome =
          Engine.answers ~limits:{ max_derivations = 2_000; max_depth = Some 4 } sigma db
            ~query:"anyTagged"
        in
        let got = Seminaive.answers dat db ~query:"anyTagged" in
        let agree =
          match outcome with
          | Engine.Saturated -> if expected = got then "agree" else "MISMATCH"
          | Engine.Bounded ->
            if List.for_all (fun t' -> List.mem t' got) expected then "agree(bounded)"
            else "MISMATCH"
        in
        [
          string_of_int width;
          string_of_int (Theory.size sigma);
          string_of_int (Theory.size dat);
          string_of_int stats.Saturate.resolutions;
          agree;
          ms t;
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  table [ "datalog layer"; "|Σ|"; "|dat(Σ)|"; "objects"; "answers"; "time" ] rows;
  Fmt.pr
    "@.(the object count grows with the subsets of side conditions: the paper's@.\
     \ double-exponential worst case for Def. 19 is real; see the blow-up section)@."

(* ------------------------------------------------------------------ *)
(* SEC7: conjunctive query answering                                   *)

let sec7 () =
  section "sec7" "Section 7: conjunctive queries over enriched databases";
  let sigma = small_fg_theory () in
  let db = Parser.database_of_string Workloads.small_fg_db_text in
  let queries =
    [
      "keywords(P, K1, K2), hasTopic(P, K1) -> q(P).";
      "hasAuthor(P, A), scientific(T), hasTopic(P, T) -> q(A).";
      "scientific(T) -> q().";
    ]
  in
  let rows =
    List.map
      (fun text ->
        let q, _ = Guarded_cq.Cq.of_string text in
        let sort = List.sort_uniq (List.compare Term.compare) in
        let answers, t = time (fun () -> Guarded_cq.Answer.certain_answers sigma q db) in
        let via_chase, t2 = time (fun () -> fst (Guarded_cq.Answer.answers_via_chase sigma q db)) in
        [
          String.trim text;
          string_of_int (List.length answers);
          (if sort answers = sort via_chase then "agree" else "MISMATCH");
          ms t;
          ms t2;
        ])
      queries
  in
  table [ "conjunctive query"; "answers"; "vs chase"; "pipeline"; "chase" ] rows

(* ------------------------------------------------------------------ *)
(* THM4: the TM simulation                                             *)

let thm4 () =
  section "thm4" "Theorem 4: weakly guarded rules capture ExpTime on strings";
  let machines =
    [
      (Capture.Turing.parity_machine, [ [ "one"; "one" ]; [ "one"; "zero" ]; [ "zero" ] ]);
      ( Capture.Turing.balanced_machine,
        [ [ "zero"; "one" ]; [ "zero"; "zero"; "one"; "one" ]; [ "one"; "zero" ] ] );
    ]
  in
  let rows =
    List.concat_map
      (fun (spec, words) ->
        List.map
          (fun word ->
            let db, info = Capture.String_db.encode ~k:1 word in
            let direct = Capture.Turing.accepts spec ~cells:info.Capture.String_db.cells word in
            let (via, t) =
              time (fun () ->
                  match Capture.Tm_encode.accepts ~k:1 spec db with
                  | Ok b -> b
                  | Error m -> failwith m)
            in
            [
              spec.Capture.Turing.sp_name;
              "[" ^ String.concat ";" word ^ "]";
              string_of_bool direct;
              string_of_bool via;
              (if direct = via then "agree" else "MISMATCH");
              ms t;
            ])
          words)
      machines
  in
  table [ "machine"; "word"; "direct"; "via chase"; "Thm 4"; "time" ] rows;
  Fmt.pr "@.exponential-time witness (binary counter):@.";
  let rows2 =
    List.map
      (fun n ->
        let input = Capture.Turing.counter_input n in
        let db, _ = Capture.String_db.encode ~k:1 input in
        let direct = Capture.Turing.run Capture.Turing.counter_machine ~cells:(n + 2) input in
        let (res : Engine.result), t =
          time (fun () ->
              Engine.run
                ~limits:{ max_derivations = 1_000_000; max_depth = None }
                (Capture.Tm_encode.theory ~k:1 Capture.Turing.counter_machine)
                db)
        in
        [
          string_of_int n;
          string_of_int direct.Capture.Turing.steps;
          string_of_int res.Engine.derivations;
          string_of_bool (Database.mem res.Engine.db (Atom.make Capture.Tm_encode.accept []));
          ms t;
        ])
      [ 2; 3; 4; 5; 6 ]
  in
  table [ "bits n"; "machine steps"; "chase derivations"; "accepts"; "time" ] rows2;
  Fmt.pr "@.the cited PTime baseline (semipositive Datalog, no value invention):@.";
  let rows3 =
    List.map
      (fun word ->
        let db, info = Capture.String_db.encode ~k:1 word in
        let direct =
          Capture.Turing.accepts Capture.Turing.parity_machine
            ~cells:info.Capture.String_db.cells word
        in
        let via, t =
          time (fun () -> Capture.Ptime_encode.accepts ~time:2 Capture.Turing.parity_machine db)
        in
        [
          "[" ^ String.concat ";" word ^ "]";
          string_of_bool direct;
          string_of_bool via;
          (if direct = via then "agree" else "MISMATCH");
          ms t;
        ])
      [ [ "one"; "one" ]; [ "one"; "zero"; "one" ]; [ "zero" ] ]
  in
  table [ "word"; "direct"; "via semipositive Datalog"; "PTime baseline"; "time" ] rows3

(* ------------------------------------------------------------------ *)
(* THM5: Σ_succ and the EVEN query                                     *)

let thm5 () =
  section "thm5" "Theorem 5: stratified weakly guarded rules capture ExpTime";
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1) in
  let rows =
    List.map
      (fun n ->
        let db =
          Database.of_atoms
            (List.init n (fun i -> Atom.make "elem" [ Term.Const (Fmt.str "c%d" i) ]))
        in
        let (orders, _), t =
          time (fun () -> Capture.Succ_order.good_orders ?pool:!current_pool db)
        in
        let even, t2 =
          time (fun () -> Capture.Succ_order.even_cardinality ?pool:!current_pool db)
        in
        [
          string_of_int n;
          string_of_int (List.length orders);
          string_of_int (fact n);
          (if List.length orders = fact n then "ok" else "WRONG");
          string_of_bool even;
          ms t;
          ms t2;
        ])
      [ 1; 2; 3; 4 ]
  in
  table [ "n"; "good orders"; "n!"; "Thm 5"; "evenCard"; "orders time"; "even time" ] rows;
  Fmt.pr "@.Σ_code characteristic strings:@.";
  let d = Parser.database_of_string "r(a). r(c). min(a). succ(a, b). succ(b, c). max(c)." in
  let sdb = Capture.Sigma_code.encode ~rel:"r" ~arity:1 d in
  Fmt.pr "  r = {a, c} over a<b<c  ->  %s@."
    (String.concat ""
       (List.map
          (function "one" -> "1" | "zero" -> "0" | _ -> "_")
          (Capture.String_db.decode ~k:1 sdb)))

(* ------------------------------------------------------------------ *)
(* BLOWUP: translation sizes against the stated bounds                 *)

let blowup () =
  section "blowup" "Section 6: translation blow-up (worst-case exponential)";
  let rows =
    List.map
      (fun vars ->
        (* a cycle rule with [vars] variables, frontier-guarded *)
        let atoms =
          String.concat ", "
            (List.init vars (fun i -> Fmt.str "e(X%d, X%d)" i ((i + 1) mod vars)))
        in
        let sigma =
          Parser.theory_of_string
            (Fmt.str
               {|
           seed(X) -> exists Y. e(X, Y).
           %s -> cyc(X0).
         |}
               atoms)
        in
        let norm = Normalize.normalize sigma in
        match
          time (fun () -> Rewrite_fg.rew_frontier_guarded ~max_rules:300_000 norm)
        with
        | (_, stats), t ->
          [
            string_of_int vars;
            string_of_int (Theory.size norm);
            string_of_int stats.Guarded_translate.Expansion.output_rules;
            string_of_int stats.Guarded_translate.Expansion.aux_relations;
            ms t;
          ]
        | exception Guarded_translate.Expansion.Budget_exceeded _ ->
          [ string_of_int vars; string_of_int (Theory.size norm); ">300000"; "-"; "-" ])
      [ 2; 3; 4; 5; 6; 7 ]
  in
  table [ "cycle length"; "|Σ|"; "|ex(Σ)|"; "aux rels"; "time" ] rows

(* ------------------------------------------------------------------ *)
(* ABLATION: design choices called out in DESIGN.md                    *)

let ablation () =
  section "ablation" "ablations of the implementation's design choices";
  (* 1. Guard enumeration: goal-directed (node relations) vs the
     paper-literal "any relation of Σ". *)
  Fmt.pr "guard enumeration in ex(Σ) (small FG ontology, then the running example):@.";
  let ablate name sigma =
    let norm = Normalize.normalize sigma in
    let run guards =
      match
        time (fun () -> Guarded_translate.Expansion.expand ~max_rules:2_000_000 ~guards norm)
      with
      | (_, stats), t ->
        (string_of_int stats.Guarded_translate.Expansion.output_rules, ms t)
      | exception Guarded_translate.Expansion.Budget_exceeded _ -> (">2000000", "-")
    in
    let goal_rules, goal_time = run `Node_relations in
    let all_rules, all_time = run `All_relations in
    table
      [ "theory"; "guards"; "|ex(Σ)|"; "time" ]
      [
        [ name; "node relations (default)"; goal_rules; goal_time ];
        [ name; "all relations (paper-literal)"; all_rules; all_time ];
      ]
  in
  ablate "small FG ontology" (small_fg_theory ());
  ablate "running example Σp" (publications_theory ());
  (* 2. chase variant: oblivious (the paper's) vs restricted. *)
  Fmt.pr "@.chase variants on a pre-satisfied genealogy (person/parent cycle):@.";
  let genea =
    Parser.theory_of_string
      "person(X) -> exists Y. parent(X, Y). parent(X, Y) -> person(Y)."
  in
  let cyc_db = Parser.database_of_string "person(a). parent(a, a)." in
  let obl =
    Engine.run ~limits:{ max_derivations = 1_000; max_depth = None } genea cyc_db
  in
  let restr = Engine.run ~variant:Engine.Restricted genea cyc_db in
  table
    [ "variant"; "derivations"; "outcome" ]
    [
      [
        "oblivious (paper)";
        string_of_int obl.Engine.derivations;
        (match obl.Engine.outcome with Engine.Saturated -> "saturated" | Engine.Bounded -> "bounded");
      ];
      [
        "restricted";
        string_of_int restr.Engine.derivations;
        (match restr.Engine.outcome with Engine.Saturated -> "saturated" | Engine.Bounded -> "bounded");
      ];
    ];
  (* 3. Datalog evaluation: plain seminaive vs magic sets on a bound
     reachability query over a long chain. *)
  Fmt.pr "@.goal-directed evaluation (tc(last, X) over a 200-edge chain):@.";
  let tc = Parser.theory_of_string "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)." in
  let chain =
    Database.of_atoms
      (List.init 200 (fun i ->
           Atom.make "e" [ Term.Const (Fmt.str "n%d" i); Term.Const (Fmt.str "n%d" (i + 1)) ]))
  in
  let (_, t_plain) = time (fun () -> Seminaive.eval tc chain) in
  let q = Guarded_datalog.Magic.query_of_atom (Parser.atom_of_string "tc(n199, X)") in
  let (magic_ans, t_magic) = time (fun () -> Guarded_datalog.Magic.answers tc q chain) in
  table
    [ "evaluation"; "time"; "answers" ]
    [
      [ "plain seminaive (full tc)"; ms t_plain; "-" ];
      [ "magic sets (bound query)"; ms t_magic; string_of_int (List.length magic_ans) ];
    ];
  (* 3b. subsumption reduction of a translated program. *)
  Fmt.pr "@.subsumption reduction of translated Datalog programs:@.";
  let tr_small = Pipeline.to_datalog (small_fg_theory ()) in
  let reduced, t_red =
    time (fun () -> Guarded_translate.Subsumption.reduce tr_small.Pipeline.datalog)
  in
  table
    [ "program"; "rules"; "after reduction"; "time" ]
    [
      [
        "small FG ontology, compiled";
        string_of_int (Theory.size tr_small.Pipeline.datalog);
        string_of_int (Theory.size reduced);
        ms t_red;
      ];
    ];
  (* 4. dat: consequence-driven objects vs the literal Fig. 3 closure. *)
  Fmt.pr "@.dat(Σ): consequence-driven vs the literal closure (guarded family):@.";
  let rows =
    List.map
      (fun width ->
        let sigma = guarded_family width in
        let (cd, _), t_cd = time (fun () -> Saturate.dat ~max_rules:100_000 sigma) in
        let closure_cell, closure_time =
          match time (fun () -> Saturate.dat_via_closure ~max_rules:100_000 sigma) with
          | (cl, _), t -> (string_of_int (Theory.size cl), ms t)
          | exception Saturate.Budget_exceeded _ -> (">100000", "-")
        in
        [
          string_of_int width;
          string_of_int (Theory.size cd);
          ms t_cd;
          closure_cell;
          closure_time;
        ])
      [ 1; 2; 3 ]
  in
  table
    [ "datalog layer"; "|dat| (objects)"; "time"; "|dat| (closure)"; "time" ]
    rows

(* ------------------------------------------------------------------ *)
(* sat: the indexed given-clause closure vs the reference loop         *)

let sat () =
  section "sat" "indexed given-clause saturation vs the reference loop";
  let canon_set sigma =
    List.sort_uniq String.compare
      (List.map (fun r -> Rule.to_string (Rule.canonicalize r)) (Theory.rules sigma))
  in
  (* Named inputs: Example 7 and the guarded family. The "agree" column
     re-checks in place that the indexed loop builds the reference
     closure (as a canonical rule set) on every input it is timed on. *)
  Fmt.pr "@.Ξ(Σ): indexed closure vs reference (plus subsume mode):@.";
  let inputs =
    ("ex7", Parser.theory_of_string Workloads.example7_text)
    :: List.map (fun w -> (Fmt.str "family-%d" w, guarded_family w)) [ 1; 2; 3 ]
  in
  let rows =
    List.map
      (fun (name, sigma) ->
        let (xi, st), t_idx =
          time (fun () -> Saturate.closure ?pool:!current_pool ~max_rules:100_000 sigma)
        in
        let (xi_ref, _), t_ref =
          time (fun () -> Saturate.closure_reference ~max_rules:100_000 sigma)
        in
        let (_, st_sub), t_sub =
          time (fun () ->
              Saturate.closure ?pool:!current_pool ~max_rules:100_000 ~subsume:true sigma)
        in
        let agree = canon_set xi = canon_set xi_ref in
        [
          name;
          string_of_int st.Saturate.closure_rules;
          string_of_int st.Saturate.datalog_rules;
          ms t_idx;
          ms t_ref;
          (if agree then "yes" else "NO");
          string_of_int st_sub.Saturate.closure_rules;
          ms t_sub;
        ])
      inputs
  in
  table
    [ "input"; "|Ξ|"; "datalog"; "indexed"; "reference"; "agree"; "|Ξ| live"; "subsume" ]
    rows;
  (* Generated guarded theories, fixed seed: the indexed loop must
     agree with the reference on every instance (budget overflows must
     hit both). Cumulative times compare the loops across the batch. *)
  Fmt.pr "@.Ξ(Σ) on generated guarded theories (seed 42):@.";
  let rand = Random.State.make [| 42 |] in
  let theories =
    List.map Normalize.normalize
      (QCheck.Gen.generate ~n:30 ~rand Guarded_gen.Generator.gen_guarded_theory)
  in
  let budget = 2_000 in
  let run f sigma = try Some (f sigma) with Saturate.Budget_exceeded _ -> None in
  let agreements = ref 0 and mismatches = ref 0 and overflows = ref 0 in
  let total_rules = ref 0 in
  let _, t_idx =
    time (fun () ->
        List.iter
          (fun sigma ->
            match run (Saturate.closure ?pool:!current_pool ~max_rules:budget) sigma with
            | Some (_, st) -> total_rules := !total_rules + st.Saturate.closure_rules
            | None -> incr overflows)
          theories)
  in
  let _, t_ref =
    time (fun () ->
        List.iter
          (fun sigma ->
            let indexed = run (Saturate.closure ~max_rules:budget) sigma in
            let reference = run (Saturate.closure_reference ~max_rules:budget) sigma in
            match (indexed, reference) with
            | Some (xi, _), Some (xi_ref, _) ->
              if canon_set xi = canon_set xi_ref then incr agreements else incr mismatches
            | None, None -> incr agreements
            | Some _, None | None, Some _ -> incr mismatches)
          theories)
  in
  table
    [ "theories"; "agree"; "mismatch"; "overflow"; "Σ|Ξ|"; "indexed"; "indexed+reference" ]
    [
      [
        string_of_int (List.length theories);
        string_of_int !agreements;
        string_of_int !mismatches;
        string_of_int !overflows;
        string_of_int !total_rules;
        ms t_idx;
        ms t_ref;
      ];
    ];
  (* Subsumption.reduce on the closures: the indexed reducer's cost and
     effect at closure sizes. *)
  Fmt.pr "@.Subsumption.reduce on Ξ(Σ):@.";
  let rows =
    List.map
      (fun (name, sigma) ->
        let xi, _ = Saturate.closure ~max_rules:100_000 sigma in
        let reduced, t_red = time (fun () -> Subsumption.reduce xi) in
        [ name; string_of_int (Theory.size xi); string_of_int (Theory.size reduced); ms t_red ])
      inputs
  in
  table [ "input"; "|Ξ|"; "|reduce(Ξ)|"; "time" ] rows

(* ------------------------------------------------------------------ *)
(* incr: incremental maintenance vs from-scratch re-evaluation         *)

let incr () =
  section "incr" "incremental maintenance: update batches vs from-scratch";
  let atom fmt = Fmt.kstr Parser.atom_of_string fmt in
  (* Each workload assigns every entity index a fixed group of EDB
     facts. Batch [b] of a schedule retires entities [b*dels ..] and
     enrolls fresh ones past the initial population — deterministic,
     non-overlapping, and each batch touches well under 10% of the
     EDB. The delete share of the churn sweeps 0/50/100%. *)
  let ex7_entity i = [ atom "a(c%d)" i; atom "c(c%d)" i ] in
  let thm1_entity i =
    [
      atom "publication(p%d)" i;
      atom "hasAuthor(p%d, auth%d)" i i;
      atom "hasTopic(p%d, t)" i;
    ]
  in
  let workloads =
    [
      ( "ex7 dat(Σ)",
        (let dat, _ = Saturate.dat (Parser.theory_of_string Workloads.example7_text) in
         dat),
        ex7_entity,
        2000 );
      ( "thm1 fg-family",
        (Pipeline.to_datalog (fg_family 2)).Pipeline.datalog,
        thm1_entity,
        600 );
    ]
  in
  let batches = 6 in
  let rows =
    List.concat_map
      (fun (name, sigma, entity, n) ->
        List.map
          (fun del_pct ->
            let edb = Database.create () in
            for i = 0 to n - 1 do
              List.iter (fun a -> ignore (Database.add edb a)) (entity i)
            done;
            let edb_size = Database.cardinal edb in
            let churn = max 1 (n / 100) in
            let dels = churn * del_pct / 100 in
            let inss = churn - dels in
            let batch b =
              Guarded_incr.Delta.of_lists
                ~additions:
                  (List.concat_map entity (List.init inss (fun j -> n + (b * inss) + j)))
                ~deletions:(List.concat_map entity (List.init dels (fun j -> (b * dels) + j)))
            in
            let m, t_mat =
              time (fun () -> Guarded_incr.Incr.materialize ?pool:!current_pool sigma edb)
            in
            let idb_size = Database.cardinal (Guarded_incr.Incr.db m) - edb_size in
            let _, t_incr =
              time (fun () ->
                  for b = 0 to batches - 1 do
                    ignore (Guarded_incr.Incr.apply m (batch b))
                  done)
            in
            (* The from-scratch oracle replays the same schedule,
               re-running the full fixpoint after every batch — the
               serving cost without the subsystem. *)
            let reference = Database.copy edb in
            let final, t_scratch =
              time (fun () ->
                  let last = ref reference in
                  for b = 0 to batches - 1 do
                    let d = batch b in
                    List.iter
                      (fun a -> ignore (Database.remove reference a))
                      d.Guarded_incr.Delta.deletions;
                    List.iter
                      (fun a -> ignore (Database.add reference a))
                      d.Guarded_incr.Delta.additions;
                    last := Seminaive.eval ?pool:!current_pool sigma reference
                  done;
                  !last)
            in
            let agree = Database.equal (Guarded_incr.Incr.db m) final in
            [
              name;
              string_of_int (Theory.size sigma);
              string_of_int edb_size;
              string_of_int idb_size;
              string_of_int (Guarded_incr.Delta.size (batch 0));
              Fmt.str "%d%%" del_pct;
              string_of_int batches;
              (if agree then "agree" else "MISMATCH");
              ms t_mat;
              ms t_incr;
              ms t_scratch;
              Fmt.str "%.1fx" (t_scratch /. Float.max t_incr 1e-9);
            ])
          [ 0; 50; 100 ])
      workloads
  in
  table
    [
      "workload"; "rules"; "|EDB|"; "|IDB|"; "batch facts"; "deletes"; "batches"; "agree";
      "materialize time"; "incr time"; "scratch time"; "speedup (timed)";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* serve: the network server under concurrent clients                  *)

(* Each client connection runs its own thread against a real Unix
   socket: a burst of relation queries, then disjoint update batches
   through the single-writer commit queue. The sweep varies the client
   count; the recorded (deterministic) cells are the final epoch, EDB
   and answer counts — every timing lives in stripped columns. *)
let serve () =
  section "serve" "network serving: concurrent clients over one materialization";
  let atom fmt = Fmt.kstr Parser.atom_of_string fmt in
  let ex7_entity i = [ atom "a(c%d)" i; atom "c(c%d)" i ] in
  let thm1_entity i =
    [
      atom "publication(p%d)" i;
      atom "hasAuthor(p%d, auth%d)" i i;
      atom "hasTopic(p%d, t)" i;
    ]
  in
  let workloads =
    [
      ( "ex7 dat(Σ)",
        (let dat, _ = Saturate.dat (Parser.theory_of_string Workloads.example7_text) in
         dat),
        ex7_entity,
        "d",
        2000 );
      ( "thm1 fg-family",
        (Pipeline.to_datalog (fg_family 2)).Pipeline.datalog,
        thm1_entity,
        "q",
        600 );
    ]
  in
  let queries = 50 and batches = 3 and adds = 10 and dels = 5 in
  let module State = Guarded_server.State in
  let module Server = Guarded_server.Server in
  let module Client = Guarded_server.Client in
  let rows =
    List.concat_map
      (fun (name, sigma, entity, query_rel, n) ->
        List.map
          (fun clients ->
            let edb = Database.create () in
            for i = 0 to n - 1 do
              List.iter (fun a -> ignore (Database.add edb a)) (entity i)
            done;
            let edb_size = Database.cardinal edb in
            let state = State.create ?pool:!current_pool sigma edb in
            let sock = Filename.temp_file "guarded_bench" ".sock" in
            Sys.remove sock;
            let srv = Server.listen state (Server.Unix_socket sock) in
            (* Client [k]'s batch [b]: enroll fresh entities past the
               initial population, retire initial ones — all ranges
               disjoint across clients and batches, so the final EDB
               does not depend on the commit interleaving. *)
            let batch k b =
              Guarded_incr.Delta.of_lists
                ~additions:
                  (List.concat_map entity
                     (List.init adds (fun j -> n + (((k * batches) + b) * adds) + j)))
                ~deletions:
                  (List.concat_map entity
                     (List.init dels (fun j -> (((k * batches) + b) * dels) + j)))
            in
            let client k () =
              let c = Client.connect (Server.address srv) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for b = 0 to batches - 1 do
                    for _ = 1 to queries / batches do
                      ignore (Client.query c query_rel)
                    done;
                    match Client.commit c (batch k b) with
                    | Ok _ -> ()
                    | Error m -> failwith m
                  done;
                  for _ = 1 to queries mod batches do
                    ignore (Client.query c query_rel)
                  done)
            in
            let _, t_wall =
              time (fun () ->
                  let threads = List.init clients (fun k -> Thread.create (client k) ()) in
                  List.iter Thread.join threads)
            in
            let final_answers =
              let c = Client.connect (Server.address srv) in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> List.length (Client.query c query_rel))
            in
            let stats = State.stats state ~connections:0 ~total_connections:0 () in
            Server.stop srv;
            let qps = float_of_int (clients * queries) /. Float.max t_wall 1e-9 in
            [
              name;
              string_of_int (Theory.size sigma);
              string_of_int edb_size;
              string_of_int clients;
              string_of_int queries;
              string_of_int batches;
              string_of_int stats.Guarded_server.Wire.s_epoch;
              string_of_int stats.Guarded_server.Wire.s_edb_facts;
              string_of_int final_answers;
              ms t_wall;
              Fmt.str "%.0f" qps;
              string_of_int stats.Guarded_server.Wire.s_query_p50_us;
              string_of_int stats.Guarded_server.Wire.s_commit_p50_us;
              string_of_int stats.Guarded_server.Wire.s_commit_p95_us;
            ])
          [ 1; 2; 4 ])
      workloads
  in
  table
    [
      "workload"; "rules"; "|EDB|"; "clients"; "queries/client"; "batches/client"; "epoch";
      "final |EDB|"; "answers"; "wall time"; "qps (timed)"; "query p50 µs"; "commit p50 µs";
      "commit p95 µs";
    ]
    rows;
  (* --- light-client sweep: connection scalability ------------------ *)
  (* Many short-lived light clients against one reactor: each runs a
     few relation-query round trips over a tiny materialization, so
     the sweep measures the event loop — poll set size, accept storms,
     per-connection buffers — rather than query evaluation. The
     acceptance check ([serve light-client check], grepped by
     scripts/perf_gate.sh) demands the 1000-client leg completes with
     zero failures. *)
  let module Wire = Guarded_server.Wire in
  let light_sigma = Parser.theory_of_string "e(X, Y) -> path(X, Y)." in
  let light_edb = Database.create () in
  for i = 0 to 63 do
    ignore
      (Database.add light_edb
         (Atom.make "e" [ Term.Const (Fmt.str "u%d" i); Term.Const (Fmt.str "v%d" i) ]))
  done;
  let rounds = 8 in
  let sweep_ok = ref true in
  let held = ref 0 in
  let light_rows =
    List.map
      (fun clients ->
        ignore (Guarded_server.Evloop.raise_fd_limit ((2 * clients) + 512));
        let state = State.create ?pool:!current_pool light_sigma (Database.copy light_edb) in
        let sock = Filename.temp_file "guarded_bench" ".sock" in
        Sys.remove sock;
        let srv = Server.listen state (Server.Unix_socket sock) in
        let lat = Array.make (clients * rounds) Float.nan in
        let fmutex = Mutex.create () in
        let failures = ref 0 in
        let fail k =
          ignore k;
          Mutex.lock fmutex;
          failures := !failures + 1;
          Mutex.unlock fmutex
        in
        let client k () =
          match Client.connect (Server.address srv) with
          | exception _ ->
            for _ = 1 to rounds do fail k done
          | c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for r = 0 to rounds - 1 do
                  let t0 = Unix.gettimeofday () in
                  match Client.request c (Wire.Query { rel = "path"; pattern = None }) with
                  | Wire.Answers l when List.length l = 64 ->
                    lat.((k * rounds) + r) <- Unix.gettimeofday () -. t0
                  | _ -> fail k
                  | exception _ -> fail k
                done)
        in
        let _, t_wall =
          time (fun () ->
              let threads = List.init clients (fun k -> Thread.create (client k) ()) in
              List.iter Thread.join threads)
        in
        let stalls, open_after =
          let c = Client.connect (Server.address srv) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let s = Client.stats c in
              (s.Wire.s_backpressure_stalls, s.Wire.s_connections_open))
        in
        Server.stop srv;
        let samples =
          Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list lat))
        in
        Array.sort Float.compare samples;
        let pct p =
          if Array.length samples = 0 then 0.
          else
            samples.(min (Array.length samples - 1)
                       (int_of_float (p *. float_of_int (Array.length samples))))
        in
        sweep_ok := !sweep_ok && !failures = 0;
        if !failures = 0 then held := max !held clients;
        [
          "light `? path`";
          string_of_int clients;
          string_of_int rounds;
          string_of_int !failures;
          string_of_int open_after;
          string_of_int stalls;
          ms t_wall;
          Fmt.str "%.0f" (float_of_int (clients * rounds) /. Float.max t_wall 1e-9);
          Fmt.str "%.0f" (pct 0.50 *. 1e6);
          Fmt.str "%.0f" (pct 0.95 *. 1e6);
        ])
      [ 200; 600; 1000 ]
  in
  Fmt.pr "serve light-client check: %s (%d concurrent clients held)@."
    (if !sweep_ok && !held >= 1000 then "ok" else "FAILED")
    !held;
  table
    [
      "workload"; "clients"; "round trips"; "failures"; "connections_open"; "stalls";
      "wall time"; "rps (timed)"; "p50 µs (timed)"; "p95 µs (timed)";
    ]
    light_rows;
  (* --- replica sweep: read scaling + replication lag ---------------- *)
  (* One primary plus 0/1/2 read replicas under a read-heavy mix:
     every write commits on the primary, reads round-robin across the
     replicas (or hit the primary when there are none). Each replica's
     server runs in its own domain — systhreads share their domain's
     runtime lock, so in-domain replicas would fake the read scaling
     this sweep exists to show. The acceptance check ([serve replica
     check], grepped by scripts/perf_gate.sh) demands zero failures,
     full drains (lag back to 0) and answer agreement between every
     replica and the primary on all legs. *)
  let module Replica = Guarded_repl.Replica in
  let module Cluster = Guarded_repl.Cluster in
  let repl_sigma = Parser.theory_of_string "e(X, Y) -> path(X, Y)." in
  let repl_edb () =
    let d = Database.create () in
    for i = 0 to 63 do
      ignore
        (Database.add d
           (Atom.make "e" [ Term.Const (Fmt.str "u%d" i); Term.Const (Fmt.str "v%d" i) ]))
    done;
    d
  in
  let clients = 4 and reads = 200 and rbatches = 2 and radds = 8 in
  let repl_ok = ref true in
  let repl_rows =
    List.map
      (fun replicas ->
        let state = State.create repl_sigma (repl_edb ()) in
        let sock = Filename.temp_file "guarded_bench" ".sock" in
        Sys.remove sock;
        let srv = Server.listen state (Server.Unix_socket sock) in
        let primary = Server.address srv in
        (* Each replica bootstraps from the primary's wire snapshot and
           serves from its own domain; its address comes back through
           an atomic slot, the stop order goes in through another. *)
        let stop_flag = Atomic.make false in
        let slots = Array.init replicas (fun _ -> Atomic.make None) in
        let domains =
          List.init replicas (fun i ->
              Domain.spawn (fun () ->
                  let rsock = Filename.temp_file "guarded_bench" ".sock" in
                  Sys.remove rsock;
                  match Replica.start ~primary (Server.Unix_socket rsock) with
                  | Error msg -> failwith ("replica bootstrap: " ^ msg)
                  | Ok rep ->
                    Atomic.set slots.(i) (Some (Server.address (Replica.server rep)));
                    while not (Atomic.get stop_flag) do
                      Thread.delay 0.002
                    done;
                    Replica.stop rep))
        in
        let deadline = Unix.gettimeofday () +. 30. in
        Array.iter
          (fun slot ->
            while Atomic.get slot = None && Unix.gettimeofday () < deadline do
              Thread.delay 0.002
            done)
          slots;
        let replica_addrs =
          Array.to_list slots
          |> List.filter_map Atomic.get
        in
        if List.length replica_addrs <> replicas then repl_ok := false;
        let read_endpoints = if replica_addrs = [] then [ primary ] else replica_addrs in
        let fmutex = Mutex.create () in
        let failures = ref 0 in
        let lat = Array.make (clients * reads) Float.nan in
        let client k () =
          let cl = Cluster.make read_endpoints in
          let pc = Client.connect primary in
          Fun.protect
            ~finally:(fun () ->
              Cluster.close cl;
              Client.close pc)
            (fun () ->
              let batch b =
                Guarded_incr.Delta.of_lists ~deletions:[]
                  ~additions:
                    (List.init radds (fun j ->
                         let i = 64 + (((k * rbatches) + b) * radds) + j in
                         Atom.make "e"
                           [ Term.Const (Fmt.str "u%d" i); Term.Const (Fmt.str "v%d" i) ]))
              in
              for b = 0 to rbatches - 1 do
                for r = 0 to (reads / rbatches) - 1 do
                  let t0 = Unix.gettimeofday () in
                  match Cluster.read cl (Wire.Query { rel = "path"; pattern = None }) with
                  | Wire.Answers _ ->
                    lat.((k * reads) + (b * (reads / rbatches)) + r) <-
                      Unix.gettimeofday () -. t0
                  | _ ->
                    Mutex.lock fmutex;
                    failures := !failures + 1;
                    Mutex.unlock fmutex
                  | exception _ ->
                    Mutex.lock fmutex;
                    failures := !failures + 1;
                    Mutex.unlock fmutex
                done;
                match Client.commit pc (batch b) with
                | Ok _ -> ()
                | Error _ | (exception _) ->
                  Mutex.lock fmutex;
                  failures := !failures + 1;
                  Mutex.unlock fmutex
              done)
        in
        let _, t_wall =
          time (fun () ->
              let threads = List.init clients (fun k -> Thread.create (client k) ()) in
              List.iter Thread.join threads)
        in
        let final_epoch = State.epoch state in
        (* Drain over the wire — the replicas live in other domains;
           their STATS lag key is the cross-domain-safe view. *)
        let drain_one addr =
          let c = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let deadline = Unix.gettimeofday () +. 30. in
              let rec go () =
                let s = Client.stats c in
                if s.Wire.s_epoch >= final_epoch && s.Wire.s_replication_lag_epochs = 0 then
                  true
                else if Unix.gettimeofday () > deadline then false
                else begin
                  Thread.delay 0.002;
                  go ()
                end
              in
              go ())
        in
        let _, t_drain = time (fun () -> List.for_all drain_one replica_addrs) in
        let drained = List.for_all drain_one replica_addrs in
        let primary_answers =
          let c = Client.connect primary in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () -> List.length (Client.query c "path"))
        in
        let agree =
          List.for_all
            (fun addr ->
              let c = Client.connect addr in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> List.length (Client.query c "path") = primary_answers))
            replica_addrs
        in
        Atomic.set stop_flag true;
        List.iter Domain.join domains;
        Server.stop srv;
        let leg_ok = !failures = 0 && drained && agree in
        repl_ok := !repl_ok && leg_ok;
        let samples =
          Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list lat))
        in
        Array.sort Float.compare samples;
        let pct p =
          if Array.length samples = 0 then 0.
          else
            samples.(min (Array.length samples - 1)
                       (int_of_float (p *. float_of_int (Array.length samples))))
        in
        [
          "replicated `? path`";
          string_of_int replicas;
          string_of_int clients;
          string_of_int reads;
          string_of_int rbatches;
          string_of_int final_epoch;
          string_of_int primary_answers;
          string_of_int !failures;
          (if drained then "yes" else "no");
          (if agree then "yes" else "no");
          ms t_wall;
          Fmt.str "%.0f" (float_of_int (clients * reads) /. Float.max t_wall 1e-9);
          Fmt.str "%.0f" (pct 0.50 *. 1e6);
          Fmt.str "%.0f" (pct 0.95 *. 1e6);
          ms t_drain;
        ])
      [ 0; 1; 2 ]
  in
  Fmt.pr "serve replica check: %s@." (if !repl_ok then "ok" else "FAILED");
  table
    [
      "workload"; "replicas"; "clients"; "reads/client"; "batches/client"; "epoch";
      "answers"; "failures"; "drained (lag=0)"; "agreement"; "wall time"; "reads/s (timed)";
      "read p50 µs (timed)"; "read p95 µs (timed)"; "drain time";
    ]
    repl_rows

(* ------------------------------------------------------------------ *)
(* ingest: bulk LOAD blocks vs the +fact. text stream                  *)

(* One client ships a 120k-fact EDB into a fresh server twice: once as
   pipelined [+fact.] text frames (per-line parsing on the server),
   once as binary [LOAD] blocks (codec decode, no text). Both stage
   into the same session staging lists and COMMIT applies the same
   delta, so the resulting EDBs must be equal — the recorded cells are
   the deterministic counts and the agreement, the staging times live
   in stripped columns, and the acceptance check demands LOAD beats
   text by >= 5x. *)
let ingest () =
  section "ingest" "bulk EDB ingest: binary LOAD blocks vs +fact. text frames";
  let module State = Guarded_server.State in
  let module Server = Guarded_server.Server in
  let module Client = Guarded_server.Client in
  let module Wire = Guarded_server.Wire in
  let module Incr = Guarded_incr.Incr in
  ignore (Guarded_server.Evloop.raise_fd_limit 1024);
  let sigma = Parser.theory_of_string "e(X, Y) -> path(X, Y)." in
  let n = 120_000 in
  let chunk = 8192 in
  let facts =
    List.init n (fun i ->
        Atom.make "e" [ Term.Const (Fmt.str "x%d" i); Term.Const (Fmt.str "y%d" i) ])
  in
  let run use_load =
    (* Level the field: earlier legs' garbage must not charge its major
       slices to this leg's staging loop. *)
    Gc.full_major ();
    let edb = Database.create () in
    ignore (Database.add edb (Parser.atom_of_string "e(seed_a, seed_b)"));
    let state = State.create ?pool:!current_pool sigma edb in
    let sock = Filename.temp_file "guarded_bench" ".sock" in
    Sys.remove sock;
    let srv = Server.listen state (Server.Unix_socket sock) in
    let c = Client.connect (Server.address srv) in
    let (), t_stage =
      time (fun () ->
          if use_load then begin
            match Client.load ~chunk c facts with
            | Ok m when m = n -> ()
            | Ok m -> failwith (Fmt.str "ingest: staged %d of %d" m n)
            | Error m -> failwith m
          end
          else
            List.iter
              (function
                | Wire.Ok -> ()
                | Wire.Failed m -> failwith m
                | _ -> failwith "ingest: unexpected staging reply")
              (Client.pipeline c (List.map (fun a -> Wire.Add a) facts)))
    in
    let res, t_commit = time (fun () -> Client.request c Wire.Commit) in
    (match res with
    | Wire.Committed _ -> ()
    | Wire.Failed m -> failwith ("ingest: commit failed: " ^ m)
    | _ -> failwith "ingest: expected COMMITTED");
    let stats = Client.stats c in
    Client.close c;
    let edb_after = State.with_read state (fun m -> Database.copy (Incr.edb m)) in
    Server.stop srv;
    (t_stage, t_commit, stats.Wire.s_edb_facts, stats.Wire.s_load_facts, edb_after)
  in
  let t_text, tc_text, edb_text, lf_text, db_text = run false in
  let t_load, tc_load, edb_load, lf_load, db_load = run true in
  let agree = Database.equal db_text db_load in
  let speedup = t_text /. Float.max t_load 1e-9 in
  let ok = agree && speedup >= 5. && lf_load = n && lf_text = 0 in
  Fmt.pr "ingest speedup check: %s (text %s vs LOAD %s, %.1fx >= 5x, %s)@."
    (if ok then "ok" else "FAILED")
    (ms t_text) (ms t_load) speedup
    (if agree then "EDBs agree" else "EDB MISMATCH");
  let row path frames t_stage t_commit edb_after load_facts =
    [
      path;
      string_of_int n;
      string_of_int frames;
      string_of_int edb_after;
      string_of_int load_facts;
      (if agree then "agree" else "MISMATCH");
      ms t_stage;
      ms t_commit;
      Fmt.str "%.0f" (float_of_int n /. Float.max t_stage 1e-9);
    ]
  in
  table
    [
      "path"; "|facts|"; "frames"; "|EDB| after"; "load_facts"; "agree"; "stage time";
      "commit time"; "staged facts/s (timed)";
    ]
    [
      row "+fact. text" n t_text tc_text edb_text lf_text;
      row "binary LOAD" ((n + chunk - 1) / chunk) t_load tc_load edb_load lf_load;
    ]

(* The thm1-family serving scenario that motivates ISSUE 7: a corpus
   partitioned into [layers] topic-disjoint citation graphs, each with
   its own reachability closure — but the served queries only ever ask
   about one topic (1 of 2·[layers] relations, well under 10%).
   Materialized serving pays the closure of every layer up front;
   demand-driven serving evaluates exactly the queried layer through
   the magic transform and tables it in the subgoal cache, so resident
   heap tracks the demanded slice and repeat queries are cache hits.

   The two acceptance checks print as [demand ... check: ok/FAILED]
   lines (grepped by scripts/perf_gate.sh) with the measured ratios;
   the table keeps the deterministic cells — fact counts, cache
   counters, agreement — plus stripped timing columns. Heap deltas are
   [Gc.live_words] after compaction, demand side measured first so the
   shared hash-consed EDB terms are charged against it, not against
   the materialized side it must beat. *)
let demand () =
  section "demand" "demand-driven serving: magic + subgoal cache vs materialization";
  let module Incr = Guarded_incr.Incr in
  let module Demand = Guarded_incr.Demand in
  let layers = 12 in
  let sigma =
    Parser.theory_of_string
      (String.concat "\n"
         (List.init layers (fun i ->
              Fmt.str
                "citedIn%d(X, Y) -> reach%d(X, Y). citedIn%d(X, Z), reach%d(Z, Y) -> reach%d(X, Y)."
                i i i i i)))
  in
  let live_mb () =
    Gc.compact ();
    float_of_int ((Gc.stat ()).Gc.live_words * (Sys.word_size / 8)) /. 1e6
  in
  let hot_reps = 200 in
  let heap_ok = ref true and hot_ok = ref true in
  let rows =
    List.map
      (fun n ->
        (* layer [i]'s citation chain: p{i}_0 -> p{i}_1 -> ... *)
        let edb = Database.create () in
        for i = 0 to layers - 1 do
          for j = 0 to n - 1 do
            ignore
              (Database.add edb
                 (Atom.make
                    (Fmt.str "citedIn%d" i)
                    [ Term.Const (Fmt.str "p%d_%d" i j); Term.Const (Fmt.str "p%d_%d" i (j + 1)) ]))
          done
        done;
        let edb_size = Database.cardinal edb in
        let base0 = live_mb () in
        let d = Demand.create ?pool:!current_pool sigma edb in
        let demand_answers, t_cold = time (fun () -> Demand.answers d ~query:"reach0") in
        let _, t_hot_total =
          time (fun () ->
              for _ = 1 to hot_reps do
                ignore (Demand.answers d ~query:"reach0")
              done)
        in
        let t_hot = t_hot_total /. float_of_int hot_reps in
        let demand_mb = live_mb () -. base0 in
        let cache = Demand.cache_stats d in
        let base1 = live_mb () in
        let m = Incr.materialize ?pool:!current_pool sigma edb in
        let mat_mb = live_mb () -. base1 in
        let mat_answers = Incr.answers m ~query:"reach0" in
        let sorted l = List.sort (List.compare Term.compare) l in
        let agree = sorted demand_answers = sorted mat_answers in
        let heap_ratio = mat_mb /. Float.max demand_mb 1e-9 in
        let hot_speedup = t_cold /. Float.max t_hot 1e-9 in
        let row_heap_ok = heap_ratio >= 2. in
        let row_hot_ok = hot_speedup >= 5. in
        heap_ok := !heap_ok && row_heap_ok;
        hot_ok := !hot_ok && row_hot_ok;
        Fmt.pr "demand heap check [n=%d]: %s (materialized %.1fMB vs demand %.1fMB, %.1fx >= 2x)@."
          n
          (if row_heap_ok then "ok" else "FAILED")
          mat_mb demand_mb heap_ratio;
        Fmt.pr "demand hot-query check [n=%d]: %s (cold %s vs hot %s, %.0fx >= 5x)@."
          n
          (if row_hot_ok then "ok" else "FAILED")
          (ms t_cold) (ms t_hot) hot_speedup;
        [
          string_of_int layers;
          string_of_int n;
          string_of_int edb_size;
          Fmt.str "1/%d" (2 * layers);
          string_of_int (List.length demand_answers);
          string_of_int cache.Guarded_incr.Subgoal_cache.sc_entries;
          string_of_int cache.Guarded_incr.Subgoal_cache.sc_hits;
          string_of_int cache.Guarded_incr.Subgoal_cache.sc_misses;
          (if agree then "agree" else "MISMATCH");
          (if row_heap_ok then "ok" else "FAILED");
          (if row_hot_ok then "ok" else "FAILED");
          ms t_cold;
          ms t_hot;
          Fmt.str "%.1fx" hot_speedup;
          Fmt.str "%.1f" mat_mb;
          Fmt.str "%.1f" demand_mb;
        ])
      [ 60; 120 ]
  in
  table
    [
      "layers"; "chain n"; "|EDB|"; "queried rels"; "answers"; "cache entries"; "hits"; "misses";
      "agree"; "heap >=2x"; "hot >=5x"; "cold time"; "hot time"; "speedup (timed)";
      "mat heap MB (timed)"; "demand heap MB (timed)";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* analyze: termination deciders + finite-chase serving                *)

(* The termination-zoo chains have known ground truth (acyclic chains
   drain into a sink, cyclic chains diverge on any database reaching
   the loop), so the section can assert every verdict rather than just
   print it: the deciders must classify each chain correctly AND their
   certificates must survive the independent verify_* audit. The
   serving table then keeps an acyclic chain materialized as a finite
   chase and replays an update schedule against the Datalog-translation
   backend, demanding equal answers after every batch. The acceptance
   lines ([analyze decider check] / [analyze serving check], grepped by
   scripts/perf_gate.sh) summarize both. *)
let analyze () =
  section "analyze" "chase-termination analysis and finite-chase serving";
  let module Generator = Guarded_gen.Generator in
  let module Acyclic = Guarded_analysis.Acyclic in
  let module Prover = Guarded_analysis.Prover in
  let module Chase_mat = Guarded_incr.Chase_mat in
  let module Incr = Guarded_incr.Incr in
  let decider_ok = ref true in
  let rows =
    List.concat_map
      (fun len ->
        List.map
          (fun cyclic ->
            (* The first two chain indexes get swap decorations: extra
               regular edges that must not change the verdicts. (Each
               swap roughly doubles the probe's chase width, so the
               decoration count stays fixed as the chain grows.) *)
            let sigma = Generator.zoo_chain ~swaps:[ 0; 1 ] ~len ~cyclic () in
            let (wa, ja, swa), t =
              time (fun () ->
                  (Acyclic.weak sigma, Acyclic.joint sigma, Acyclic.super_weak sigma))
            in
            let wa_acyc = match wa with Acyclic.Wa_acyclic _ -> true | _ -> false in
            let ja_acyc = match ja with Acyclic.Ja_acyclic _ -> true | _ -> false in
            let swa_acyc = match swa with Acyclic.Swa_acyclic _ -> true | _ -> false in
            let truth =
              wa_acyc = not cyclic && ja_acyc = not cyclic && swa_acyc = not cyclic
            in
            let certified =
              Acyclic.verify_weak sigma wa
              && Acyclic.verify_joint sigma ja
              && Acyclic.verify_super_weak sigma swa
            in
            (* The probe agrees: acyclic chains saturate on the first
               budget, cyclic ones exhaust it and blame a rule cycle. *)
            let probe = Prover.prove ~budgets:[ 20_000 ] sigma in
            let probe_ok =
              match probe.Prover.outcome with
              | Guarded_chase.Engine.Saturated -> not cyclic
              | Guarded_chase.Engine.Bounded -> cyclic && probe.Prover.rule_cycle <> []
            in
            decider_ok := !decider_ok && truth && certified && probe_ok;
            [
              string_of_int len;
              (if cyclic then "cyclic" else "acyclic");
              string_of_int (Theory.size sigma);
              (if wa_acyc then "WA" else "wa-cyc");
              (if ja_acyc then "JA" else "ja-cyc");
              (if swa_acyc then "SWA" else "swa-cyc");
              (if truth then "ok" else "WRONG");
              (if certified then "ok" else "REJECTED");
              (if probe_ok then "ok" else "WRONG");
              ms t;
            ])
          [ false; true ])
      [ 4; 8; 16; 32; 64 ]
  in
  Fmt.pr "analyze decider check: %s@." (if !decider_ok then "ok" else "FAILED");
  table
    [
      "chain len"; "class"; "|Σ|"; "weak"; "joint"; "super-weak"; "truth"; "certificates";
      "probe"; "decide time";
    ]
    rows;
  (* --- finite-chase serving vs the Datalog translation -------------- *)
  Fmt.pr "@.finite-chase serving vs translation backend (acyclic chains):@.";
  let serving_ok = ref true in
  let batches = 4 in
  let serve_rows =
    List.map
      (fun len ->
        (* The chain plus a frontier-guarded projection of the entry
           relation: [zsrc] has non-trivial certain answers over the
           constants, while the chain itself only produces nulls — so
           the agreement check covers both the derived-constant and the
           null-filtering paths. *)
        let sigma =
          Theory.of_rules
            (Theory.rules (Generator.zoo_chain ~len ~cyclic:false ())
            @ [
                Parser.rule_of_string "z0(X, Y) -> zsrc(X).";
                Parser.rule_of_string "z0(X, Y) -> zsrc(Y).";
              ])
        in
        let edb = Database.create () in
        for i = 0 to 7 do
          ignore
            (Database.add edb
               (Atom.make "z0" [ Term.Const (Fmt.str "u%d" i); Term.Const (Fmt.str "v%d" i) ]))
        done;
        let cm, t_chase =
          time (fun () -> Chase_mat.create ?pool:!current_pool sigma edb)
        in
        let served = Guarded_translate.Pipeline.serving_program sigma in
        let m, t_mat =
          time (fun () ->
              Incr.materialize ?pool:!current_pool
                served.Guarded_translate.Pipeline.served_program edb)
        in
        (* Batch [b] enrolls a fresh chain entry; odd batches also
           retire an initial one, so the schedule exercises both the
           chase-continuation path (additions only) and the re-chase
           path (effective deletions). Both backends replay it. *)
        let batch b =
          Guarded_incr.Delta.of_lists
            ~additions:
              [ Atom.make "z0" [ Term.Const (Fmt.str "w%d" b); Term.Const (Fmt.str "x%d" b) ] ]
            ~deletions:
              (if b mod 2 = 0 then []
               else [ Atom.make "z0" [ Term.Const (Fmt.str "u%d" b); Term.Const (Fmt.str "v%d" b) ] ])
        in
        let agree = ref true in
        let check () =
          agree :=
            !agree
            && Chase_mat.answers cm ~query:"zsrc" = Incr.answers m ~query:"zsrc"
            && Chase_mat.answers cm ~query:"zsink" = Incr.answers m ~query:"zsink"
            && Chase_mat.answers cm ~query:"z0" = Incr.answers m ~query:"z0"
        in
        check ();
        let _, t_apply =
          time (fun () ->
              for b = 0 to batches - 1 do
                ignore (Chase_mat.apply cm (batch b));
                ignore (Incr.apply m (batch b));
                check ()
              done)
        in
        let st = Chase_mat.stats cm in
        serving_ok := !serving_ok && !agree;
        [
          string_of_int len;
          string_of_int (Database.cardinal edb);
          string_of_int (Theory.size served.Guarded_translate.Pipeline.served_program);
          string_of_int batches;
          string_of_int st.Chase_mat.st_nulls;
          string_of_int st.Chase_mat.st_derivations;
          string_of_int st.Chase_mat.st_rechases;
          string_of_int st.Chase_mat.st_continuations;
          (if !agree then "agree" else "MISMATCH");
          ms t_chase;
          ms t_mat;
          ms t_apply;
        ])
      [ 4; 8; 16 ]
  in
  Fmt.pr "analyze serving check: %s@." (if !serving_ok then "ok" else "FAILED");
  table
    [
      "chain len"; "|EDB|"; "|datalog|"; "batches"; "nulls"; "derivations"; "rechases";
      "continuations"; "answers"; "chase time"; "translate+mat time"; "batches time";
    ]
    serve_rows

(* ------------------------------------------------------------------ *)
(* joins: the worst-case-optimal executor vs binary join plans         *)

(* Deterministic edge relations: uniform pseudo-random graphs (an LCG,
   fixed seed) and hub-skewed graphs (one node adjacent to everything,
   plus a ring). The canonical cyclic bodies — triangles and 4-cycles —
   are exactly where binary plans build intermediate results larger
   than the output; on the skewed instances the intermediates are
   quadratic in the hub degree while the output stays linear, so the
   WCOJ path wins asymptotically. The planner column records what
   [`Auto] picks; the fact counts are deterministic, the timings are
   stripped from recordings. *)
let joins () =
  section "joins" "join engine: worst-case-optimal vs binary on cyclic bodies";
  let edge db u v =
    ignore
      (Database.add db
         (Atom.make "e" [ Term.Const (Fmt.str "n%d" u); Term.Const (Fmt.str "n%d" v) ]))
  in
  let uniform_db ~nodes ~edges =
    let db = Database.create () in
    let state = ref 1234567 in
    let next () =
      (* Park–Miller minimal standard LCG; deterministic across runs. *)
      state := !state * 48271 mod 0x7FFFFFFF;
      !state
    in
    let added = ref 0 in
    while !added < edges do
      let u = next () mod nodes and v = next () mod nodes in
      if u <> v then
        if
          Database.add db
            (Atom.make "e" [ Term.Const (Fmt.str "n%d" u); Term.Const (Fmt.str "n%d" v) ])
        then added := !added + 1
    done;
    db
  in
  let hub_db ~nodes =
    (* Node 0 is bidirectionally adjacent to every other node; the rest
       form a directed ring. Binary plans joining through the hub touch
       deg(hub)^2 pairs; the output is linear in [nodes]. *)
    let db = Database.create () in
    for i = 1 to nodes - 1 do
      edge db 0 i;
      edge db i 0;
      edge db i (1 + (i mod (nodes - 1)))
    done;
    db
  in
  let queries shape =
    [
      ("triangle", "e(X, Y), e(Y, Z), e(X, Z) -> out(X).");
      ("4-cycle", "e(X, Y), e(Y, Z), e(Z, W), e(W, X) -> out(X).");
      ("path-3 (acyclic)", "e(X, Y), e(Y, Z), e(Z, W) -> out(X).");
    ]
    |> List.filter (fun (name, _) ->
           (* The longer bodies have Θ(n²) homomorphisms on a hub graph —
              every engine must enumerate them — so only the triangle
              (linear output, quadratic binary intermediates) scales. *)
           shape = "uniform" || name = "triangle")
  in
  let instances =
    [
      ("uniform", 100, uniform_db ~nodes:100 ~edges:600);
      ("uniform", 200, uniform_db ~nodes:200 ~edges:1600);
      ("uniform", 400, uniform_db ~nodes:400 ~edges:4000);
      ("hub", 4000, hub_db ~nodes:4000);
      ("hub", 8000, hub_db ~nodes:8000);
    ]
  in
  let rows =
    List.concat_map
      (fun (shape, nodes, db) ->
        let edges = Database.cardinal db in
        List.map
          (fun (name, rule_text) ->
            let sigma = Parser.theory_of_string rule_text in
            let body = Rule.body_atoms (List.hd (Theory.rules sigma)) in
            let planner =
              match Guarded_datalog.Planner.plan body with
              | Guarded_datalog.Planner.Binary -> "binary"
              | Guarded_datalog.Planner.Wcoj _ -> "wcoj"
            in
            let run join = Seminaive.eval ?pool:!current_pool ~join sigma db in
            let out_binary, t_binary = time (fun () -> run `Binary) in
            let out_wcoj, t_wcoj = time (fun () -> run `Wcoj) in
            let agree = Database.equal out_binary out_wcoj in
            let results = Database.cardinal out_binary - Database.cardinal db in
            [
              Fmt.str "%s %d/%d" shape nodes edges;
              name;
              planner;
              string_of_int results;
              (if agree then "agree" else "MISMATCH");
              ms t_binary;
              ms t_wcoj;
              Fmt.str "%.1fx" (t_binary /. Float.max t_wcoj 1e-9);
            ])
          (queries shape))
      instances
  in
  table
    [
      "graph"; "body"; "planner"; "results"; "agree"; "binary time"; "wcoj time";
      "speedup (timed)";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment                       *)

let micro () =
  section "micro" "Bechamel micro-benchmarks (one per experiment)";
  let open Bechamel in
  let sigma_p = publications_theory () in
  let norm_p = Normalize.normalize sigma_p in
  let db8 = publications_db 8 in
  let ex7 = Parser.theory_of_string Workloads.example7_text in
  let small = small_fg_theory () in
  let small_norm = Normalize.normalize small in
  let word = [ "one"; "zero"; "one" ] in
  let tm_db, _ = Capture.String_db.encode ~k:1 word in
  let _tm_theory = Capture.Tm_encode.theory ~k:1 Capture.Turing.parity_machine in
  let elem3 =
    Database.of_atoms (List.init 3 (fun i -> Atom.make "elem" [ Term.Const (Fmt.str "c%d" i) ]))
  in
  let cq_db = Parser.database_of_string Workloads.small_fg_db_text in
  let cq, _ = Guarded_cq.Cq.of_string "hasAuthor(P, A), scientific(T), hasTopic(P, T) -> q(A)." in
  let tests =
    [
      Test.make ~name:"fig1-classify" (Staged.stage (fun () -> Classify.classify sigma_p));
      Test.make ~name:"fig2-chase"
        (Staged.stage (fun () -> Engine.run ?pool:!current_pool norm_p db8));
      Test.make ~name:"fig3-closure"
        (Staged.stage (fun () -> Saturate.closure ~max_rules:10_000 ex7));
      Test.make ~name:"thm1-rew-fg"
        (Staged.stage (fun () -> Rewrite_fg.rew_frontier_guarded ~max_rules:50_000 small_norm));
      Test.make ~name:"thm2-rew-wfg"
        (Staged.stage
           (let wfg = Normalize.normalize (Parser.theory_of_string Workloads.wfg_text) in
            fun () -> Annotate.rew_weakly_frontier_guarded ~max_rules:50_000 wfg));
      Test.make ~name:"thm3-dat" (Staged.stage (fun () -> Saturate.dat ex7));
      Test.make ~name:"sec7-cq"
        (Staged.stage (fun () -> Guarded_cq.Answer.certain_answers small cq cq_db));
      Test.make ~name:"thm4-tm-chase"
        (Staged.stage (fun () -> Capture.Tm_encode.accepts ~k:1 Capture.Turing.parity_machine tm_db));
      Test.make ~name:"thm5-orders"
        (Staged.stage (fun () -> Capture.Succ_order.good_orders ?pool:!current_pool elem3));
      Test.make ~name:"datalog-seminaive"
        (Staged.stage
           (let tc =
              Parser.theory_of_string
                "e(X, Y) -> tc(X, Y). tc(X, Y), e(Y, Z) -> tc(X, Z)."
            in
            let chain =
              Database.of_atoms
                (List.init 64 (fun i ->
                     Atom.make "e"
                       [ Term.Const (Fmt.str "n%d" i); Term.Const (Fmt.str "n%d" (i + 1)) ]))
            in
            fun () -> Seminaive.eval ?pool:!current_pool tc chain));
    ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  (* Modest sampling budget: the section's wall time is almost entirely
     quota * tests, and regression tracking needs the section cheap
     enough to sweep across domain counts. *)
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.15) ~kde:None () in
  let grouped = Test.make_grouped ~name:"guarded" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> Fmt.str "%.1f" (e /. 1_000.)
          | _ -> "-"
        in
        [ name; est ] :: acc)
      ols []
    |> List.sort compare
  in
  table [ "operation"; "µs/run" ] rows

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("thm1", thm1);
    ("thm2", thm2);
    ("thm3", thm3);
    ("sec7", sec7);
    ("thm4", thm4);
    ("thm5", thm5);
    ("blowup", blowup);
    ("ablation", ablation);
    ("sat", sat);
    ("incr", incr);
    ("serve", serve);
    ("ingest", ingest);
    ("demand", demand);
    ("analyze", analyze);
    ("joins", joins);
    ("micro", micro);
  ]

let parse_domains spec =
  List.map
    (fun s ->
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> failwith (Fmt.str "bench: --domains expects positive counts, got %S" s))
    (String.split_on_char ',' spec)

let run_sections ~suffix requested =
  List.iter
    (fun id ->
      match List.assoc_opt id all_sections with
      | Some f ->
        json_begin_section (id ^ suffix);
        (* Isolate sections from each other's garbage: a section's time
           should not depend on which sections ran before it. *)
        Gc.full_major ();
        let alloc0 = Gc.allocated_bytes () in
        let (), t = time f in
        let alloc_mb = (Gc.allocated_bytes () -. alloc0) /. 1e6 in
        let heap_mb =
          float_of_int (Gc.quick_stat ()).Gc.top_heap_words
          *. float_of_int (Sys.word_size / 8) /. 1e6
        in
        (match !json_current with
        | Some js ->
          js.js_seconds <- t;
          js.js_alloc_mb <- alloc_mb;
          js.js_heap_mb <- heap_mb
        | None -> ())
      | None ->
        Fmt.epr "unknown section %S (known: %s)@." id
          (String.concat " " (List.map fst all_sections)))
    requested

(* One leg of a multi-count sweep, run with [n] domains and section ids
   suffixed by [suffix]. *)
let run_leg ~n ~suffix requested =
  let pool = Pool.create ~domains:n () in
  current_pool := Some pool;
  current_domains := Some n;
  run_sections ~suffix requested;
  current_pool := None;
  current_domains := None;
  Pool.shutdown pool

(* Spawn this very executable for one leg of the sweep (inheriting the
   console), with [--leg] marking it a child. Sweep legs get a fresh
   process each: global state accumulated by earlier legs — the
   hash-cons tables most of all, which every gensym-heavy rewriting
   grows — otherwise taxes later legs, and the recorded seconds would
   measure leg order instead of domain count. *)
let spawn_leg ~n ~suffix ~json_file requested =
  let args =
    [ Sys.executable_name; "--domains"; string_of_int n; "--leg"; suffix ]
    @ (match json_file with Some f -> [ "--json"; f ] | None -> [])
    @ requested
  in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin Unix.stdout
      Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith (Fmt.str "bench: the leg for %d domains failed" n)

(* Merge the children's recordings: each file is our own emitter's
   output, so the section objects can be spliced textually — everything
   between ["sections": \[] and the closing ["\n  ]\n}\n"]. *)
let json_merge ~into files =
  let read_all file =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let sections_text file =
    let s = read_all file in
    let marker = "\"sections\": [" in
    let rec find i =
      if i + String.length marker > String.length s then
        failwith (Fmt.str "bench: %s is not a bench recording" file)
      else if String.sub s i (String.length marker) = marker then i + String.length marker
      else find (i + 1)
    in
    let start = find 0 in
    let tail = "\n  ]\n}\n" in
    String.sub s start (String.length s - start - String.length tail)
  in
  let parts = List.filter (fun p -> String.trim p <> "") (List.map sections_text files) in
  let oc = open_out into in
  Printf.fprintf oc "{\n  \"generated_by\": \"bench/main.exe --json\",\n  \"sections\": [%s\n  ]\n}\n"
    (String.concat "," parts);
  close_out oc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_flags json domains leg acc = function
    | "--json" :: file :: rest ->
      json_enabled := true;
      split_flags (Some file) domains leg acc rest
    | "--json" :: [] -> failwith "bench: --json expects a file argument"
    | "--domains" :: spec :: rest ->
      split_flags json (Some (parse_domains spec)) leg acc rest
    | "--domains" :: [] -> failwith "bench: --domains expects counts, e.g. 1,4"
    | "--leg" :: suffix :: rest -> split_flags json domains (Some suffix) acc rest
    | "--leg" :: [] -> failwith "bench: --leg expects a suffix (internal flag)"
    | a :: rest -> split_flags json domains leg (a :: acc) rest
    | [] -> (json, domains, leg, List.rev acc)
  in
  let json_file, domains, leg, requested = split_flags None None None [] args in
  let requested = if requested = [] then List.map fst all_sections else requested in
  match (domains, leg) with
  | None, _ -> (
    run_sections ~suffix:"" requested;
    match json_file with
    | Some file ->
      json_write file;
      Fmt.pr "@.wrote %s (%d sections)@." file (List.length !json_sections)
    | None -> ())
  | Some [ n ], Some suffix -> (
    (* Child leg of a sweep. *)
    run_leg ~n ~suffix requested;
    match json_file with Some file -> json_write file | None -> ())
  | Some _, Some _ -> failwith "bench: --leg expects exactly one domain count"
  | Some counts, None ->
    (* The first count keeps the plain section ids so its recording
       stays diffable against sequential baselines. *)
    let legs =
      List.mapi
        (fun i n ->
          let suffix = if i = 0 then "" else Fmt.str "@d%d" n in
          let child_json =
            Option.map (fun _ -> Filename.temp_file "bench_leg" ".json") json_file
          in
          (n, suffix, child_json))
        counts
    in
    List.iter
      (fun (n, suffix, child_json) ->
        Fmt.pr "@.### domains = %d ###@." n;
        Fmt.pr "@?";
        spawn_leg ~n ~suffix ~json_file:child_json requested)
      legs;
    (match json_file with
    | Some file ->
      let files = List.filter_map (fun (_, _, f) -> f) legs in
      json_merge ~into:file files;
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) files;
      Fmt.pr "@.wrote %s (%d legs)@." file (List.length legs)
    | None -> ())
