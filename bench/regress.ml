(** Bench regression gate: compare two [--json] recordings.

    [regress.exe BASE CURRENT [--max-ratio R] [--slack S]] reads the
    per-section [seconds] of both files and fails (exit 1) when any
    section present in both satisfies [cur > R * base + S]. The slack
    absorbs the constant noise floor of short sections (and of shared
    CI runners); the ratio catches the real regressions — an indexed
    loop degrading to a scan, a pool fanning out below its profitable
    size. Sections only present on one side are reported and ignored,
    so baselines need not be regenerated to add a section.

    The recordings are written by {!Bench_main}'s own emitter and
    parsed here with a hand-rolled scanner (the project deliberately
    has no JSON dependency): each section object carries an ["id"]
    string followed by a ["seconds"] number, and no other key of a
    section object uses either name, so pairing the occurrences in
    order reconstructs the table. *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline s; exit 2) fmt

let read_file file =
  match open_in_bin file with
  | exception Sys_error e -> fail "regress: cannot open %s: %s" file e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

(* [index_from_opt]-style search for a literal substring. *)
let find_sub text pat from =
  let n = String.length text and plen = String.length pat in
  let rec go i =
    if i + plen > n then None
    else if String.sub text i plen = pat then Some i
    else go (i + 1)
  in
  go from

(* Scan [text] for "key": occurrences and return what follows each, as
   raw token text up to the next delimiter. *)
let scan_key text key =
  let pat = Fmt.str "\"%s\":" key in
  let plen = String.length pat and n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    match find_sub text pat !i with
    | None -> continue := false
    | Some j ->
      let k = ref (j + plen) in
      while !k < n && (text.[!k] = ' ' || text.[!k] = '\n') do incr k done;
      let stop = ref !k in
      if !k < n && text.[!k] = '"' then begin
        incr stop;
        while !stop < n && text.[!stop] <> '"' do incr stop done;
        out := (j, String.sub text (!k + 1) (!stop - !k - 1)) :: !out
      end
      else begin
        while
          !stop < n
          && (match text.[!stop] with
             | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
             | _ -> false)
        do
          incr stop
        done;
        out := (j, String.sub text !k (!stop - !k)) :: !out
      end;
      i := j + plen
  done;
  List.rev !out

(* Pair every "id" with the first following "seconds": both appear
   exactly once per section object, in that order. *)
let sections_of_file file =
  let text = read_file file in
  let ids = scan_key text "id" in
  let seconds = scan_key text "seconds" in
  let rec pair ids seconds acc =
    match ids with
    | [] -> List.rev acc
    | (pos, id) :: ids_rest -> (
      match List.find_opt (fun (p, _) -> p > pos) seconds with
      | None -> fail "regress: %s: section %S has no seconds field" file id
      | Some (p, v) -> (
        match float_of_string_opt v with
        | None -> fail "regress: %s: unreadable seconds %S for section %S" file v id
        | Some f ->
          pair ids_rest (List.filter (fun (p', _) -> p' <> p) seconds) ((id, f) :: acc)))
  in
  pair ids seconds []

let () =
  let files = ref [] in
  let max_ratio = ref 2.0 in
  let slack = ref 0.25 in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: v :: rest ->
      (match float_of_string_opt v with
      | Some r when r > 0. -> max_ratio := r
      | _ -> fail "regress: --max-ratio expects a positive number, got %S" v);
      parse rest
    | "--slack" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s >= 0. -> slack := s
      | _ -> fail "regress: --slack expects a non-negative number, got %S" v);
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base_file; cur_file ] ->
    let base = sections_of_file base_file in
    let cur = sections_of_file cur_file in
    let failed = ref false in
    List.iter
      (fun (id, b) ->
        match List.assoc_opt id cur with
        | None -> Fmt.pr "skip   %-16s (not in %s)@." id cur_file
        | Some c ->
          let bound = (!max_ratio *. b) +. !slack in
          if c > bound then begin
            failed := true;
            Fmt.pr "FAIL   %-16s %.3fs -> %.3fs (limit %.3fs = %g x %.3fs + %gs)@." id b c
              bound !max_ratio b !slack
          end
          else Fmt.pr "ok     %-16s %.3fs -> %.3fs@." id b c)
      base;
    List.iter
      (fun (id, _) ->
        if not (List.mem_assoc id base) then
          Fmt.pr "new    %-16s (not in %s)@." id base_file)
      cur;
    if !failed then exit 1
  | _ ->
    fail "usage: regress.exe BASE.json CURRENT.json [--max-ratio R] [--slack S]"
