(** Bench regression gate: compare two [--json] recordings.

    [regress.exe BASE CURRENT [--max-ratio R] [--slack S]
    [--max-mem-ratio R] [--mem-slack MB]] reads the per-section
    [seconds] — and, when present, the [alloc_mb] / [heap_mb] memory
    metrics — of both files and fails (exit 1) when any section present
    in both satisfies [cur > R * base + S] on wall-clock, or
    [cur > R' * base + S'] on either memory metric. The slack absorbs
    the constant noise floor of short sections (and of shared CI
    runners); the ratio catches the real regressions — an indexed loop
    degrading to a scan, a pool fanning out below its profitable size,
    a join path starting to materialize quadratic intermediates.
    Sections only present on one side are reported and ignored, and
    memory metrics absent from a side (recordings made before the
    metrics existed) are skipped per section, so baselines need not be
    regenerated to add a section or a metric.

    The recordings are written by {!Bench_main}'s own emitter and
    parsed here with a hand-rolled scanner (the project deliberately
    has no JSON dependency): each section object carries an ["id"]
    string, and every other scanned key of that section appears between
    that ["id"] and the next one, so slicing the text into per-["id"]
    windows and scanning each window reconstructs the table. *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline s; exit 2) fmt

let read_file file =
  match open_in_bin file with
  | exception Sys_error e -> fail "regress: cannot open %s: %s" file e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

(* [index_from_opt]-style search for a literal substring. *)
let find_sub text pat from =
  let n = String.length text and plen = String.length pat in
  let rec go i =
    if i + plen > n then None
    else if String.sub text i plen = pat then Some i
    else go (i + 1)
  in
  go from

(* Scan [text] for "key": occurrences between [from] (inclusive) and
   [upto] (exclusive) and return what follows each, as raw token text
   up to the next delimiter. *)
let scan_key text ~from ~upto key =
  let pat = Fmt.str "\"%s\":" key in
  let plen = String.length pat in
  let out = ref [] in
  let i = ref from in
  let continue = ref true in
  while !continue do
    match find_sub text pat !i with
    | Some j when j < upto ->
      let k = ref (j + plen) in
      while !k < upto && (text.[!k] = ' ' || text.[!k] = '\n') do incr k done;
      let stop = ref !k in
      if !k < upto && text.[!k] = '"' then begin
        incr stop;
        while !stop < upto && text.[!stop] <> '"' do incr stop done;
        out := (j, String.sub text (!k + 1) (!stop - !k - 1)) :: !out
      end
      else begin
        while
          !stop < upto
          && (match text.[!stop] with
             | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
             | _ -> false)
        do
          incr stop
        done;
        out := (j, String.sub text !k (!stop - !k)) :: !out
      end;
      i := j + plen
    | _ -> continue := false
  done;
  List.rev !out

type section = {
  s_seconds : float;
  s_alloc_mb : float option;  (** absent in pre-metric recordings *)
  s_heap_mb : float option;
}

(* Slice the file into per-["id"] windows [id_pos, next_id_pos) and
   scan each window for its metrics. [seconds] is required; the memory
   metrics are optional (older baselines predate them). *)
let sections_of_file file =
  let text = read_file file in
  let n = String.length text in
  let ids = scan_key text ~from:0 ~upto:n "id" in
  let rec windows = function
    | [] -> []
    | (pos, id) :: rest ->
      let upto = match rest with (next, _) :: _ -> next | [] -> n in
      (pos, upto, id) :: windows rest
  in
  List.map
    (fun (from, upto, id) ->
      let number key =
        match scan_key text ~from ~upto key with
        | [] -> None
        | (_, v) :: _ -> (
          match float_of_string_opt v with
          | Some f -> Some f
          | None -> fail "regress: %s: unreadable %s %S for section %S" file key v id)
      in
      match number "seconds" with
      | None -> fail "regress: %s: section %S has no seconds field" file id
      | Some s ->
        (id, { s_seconds = s; s_alloc_mb = number "alloc_mb"; s_heap_mb = number "heap_mb" }))
    (windows ids)

let () =
  let files = ref [] in
  let max_ratio = ref 2.0 in
  let slack = ref 0.25 in
  let max_mem_ratio = ref 2.0 in
  let mem_slack = ref 64.0 in
  let float_arg name v set pred =
    match float_of_string_opt v with
    | Some f when pred f -> set f
    | _ -> fail "regress: %s expects a suitable number, got %S" name v
  in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: v :: rest ->
      float_arg "--max-ratio" v (fun f -> max_ratio := f) (fun f -> f > 0.);
      parse rest
    | "--slack" :: v :: rest ->
      float_arg "--slack" v (fun f -> slack := f) (fun f -> f >= 0.);
      parse rest
    | "--max-mem-ratio" :: v :: rest ->
      float_arg "--max-mem-ratio" v (fun f -> max_mem_ratio := f) (fun f -> f > 0.);
      parse rest
    | "--mem-slack" :: v :: rest ->
      float_arg "--mem-slack" v (fun f -> mem_slack := f) (fun f -> f >= 0.);
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ base_file; cur_file ] ->
    let base = sections_of_file base_file in
    let cur = sections_of_file cur_file in
    let failed = ref false in
    let gate id metric unit b c ~ratio ~slack =
      let bound = (ratio *. b) +. slack in
      if c > bound then begin
        failed := true;
        Fmt.pr "FAIL   %-12s %-8s %.3f%s -> %.3f%s (limit %.3f%s = %g x %.3f + %g)@." id
          metric b unit c unit bound unit ratio b slack
      end
      else Fmt.pr "ok     %-12s %-8s %.3f%s -> %.3f%s@." id metric b unit c unit
    in
    List.iter
      (fun (id, b) ->
        match List.assoc_opt id cur with
        | None -> Fmt.pr "skip   %-12s (not in %s)@." id cur_file
        | Some c ->
          gate id "seconds" "s" b.s_seconds c.s_seconds ~ratio:!max_ratio ~slack:!slack;
          let mem metric get =
            match (get b, get c) with
            | Some mb, Some mc ->
              gate id metric "MB" mb mc ~ratio:!max_mem_ratio ~slack:!mem_slack
            | _ -> Fmt.pr "skip   %-12s %-8s (metric missing on one side)@." id metric
          in
          mem "alloc_mb" (fun s -> s.s_alloc_mb);
          mem "heap_mb" (fun s -> s.s_heap_mb))
      base;
    List.iter
      (fun (id, _) ->
        if not (List.mem_assoc id base) then
          Fmt.pr "new    %-12s (not in %s)@." id base_file)
      cur;
    if !failed then exit 1
  | _ ->
    fail
      "usage: regress.exe BASE.json CURRENT.json [--max-ratio R] [--slack S] [--max-mem-ratio \
       R] [--mem-slack MB]"
