(** Shared workload texts for the benchmark harness. *)

let publications_text =
  {|
  @s1 publication(X) -> exists K1, K2. keywords(X, K1, K2).
  @s2 keywords(X, K1, K2) -> hasTopic(X, K1).
  @s3 hasTopic(X, Z), hasAuthor(X, U), hasAuthor(Y, U), hasTopic(Y, Z2),
      scientific(Z2), citedIn(Y, X) -> scientific(Z).
  @s4 hasAuthor(X, Y), hasTopic(X, Z), scientific(Z) -> q(Y).
|}

let small_fg_text =
  {|
  @s1 publication(X) -> exists K1, K2. keywords(X, K1, K2).
  @s2 keywords(X, K1, K2) -> hasTopic(X, K1).
  @s3 hasTopic(X, Z), inCollection(X, C), popular(C) -> scientific(Z).
  @s4 hasAuthor(X, Y), hasTopic(X, Z), scientific(Z) -> q(Y).
|}

let small_fg_db_text =
  {|
  publication(p1). inCollection(p1, c1). popular(c1).
  hasAuthor(p1, a1). hasAuthor(p1, a2).
|}

let example7_text =
  {|
  @e1 a(X) -> exists Y. r(X, Y).
  @e2 r(X, Y) -> s(Y, Y).
  @e3 s(X, Y) -> exists Z. t(X, Y, Z).
  @e4 t(X, X, Y) -> b(X).
  @e5 c(X), r(X, Y), b(Y) -> d(X).
|}

(* Weakly frontier-guarded only: w2 is neither frontier-guarded (its
   frontier {Y, S} shares no atom) nor weakly guarded (the unsafe pair
   {Y, Y2} shares no atom); its unsafe frontier part {Y} is covered by
   box(X, Y). *)
let wfg_text =
  {|
  @w1 item(X) -> exists Y. box(X, Y).
  @w2 box(X, Y), box(X2, Y2), label(S) -> marked(Y, S).
  @w3 marked(Y, S), box(X, Y) -> out(X, S).
  @w4 out(X, S) -> tagged(S).
|}

(* Weakly guarded, not nearly frontier-guarded; infinite chase. *)
let wg_text =
  {|
  @w1 node(X) -> gen(X).
  @w2 gen(X) -> exists Y. next(X, Y).
  @w3 next(X, Y) -> gen(Y).
  @w4 next(X, Y), anchor(Z) -> out(Y, Z).
|}
