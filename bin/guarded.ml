(** The [guarded] command-line tool: classify, normalize, translate,
    chase and query theories of existential rules from the shell.

    {v
      guarded classify  THEORY
      guarded analyze   THEORY [--budgets N,..]
      guarded normalize THEORY
      guarded translate THEORY [--target datalog|weakly-guarded]
      guarded chase     THEORY DATABASE [--max-derivations N] [--max-depth N]
      guarded answer    THEORY DATABASE --query Q
      guarded cq        THEORY DATABASE --cq "body -> q(X)."
    v} *)

open Guarded_core
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_theory path = Parser.theory_of_string (read_file path)
let load_db path = Parser.database_of_string (read_file path)

let theory_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"THEORY" ~doc:"Rule file.")

let db_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"DATABASE" ~doc:"Database file.")

let handle_errors f =
  try f () with
  | Parser.Parse_error m -> Fmt.epr "parse error: %s@." m; exit 2
  | Rule.Ill_formed m -> Fmt.epr "ill-formed rule: %s@." m; exit 2
  | Invalid_argument m -> Fmt.epr "error: %s@." m; exit 2
  | Guarded_translate.Expansion.Budget_exceeded m
  | Guarded_translate.Saturate.Budget_exceeded m ->
    Fmt.epr "budget exceeded: %s (raise it with --budget)@." m;
    exit 3

(* --- classify -------------------------------------------------------- *)

let classify_cmd =
  let run theory_path =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        Fmt.pr "rules:      %d@." (Theory.size sigma);
        Fmt.pr "language:   %s@." (Classify.language_name (Classify.classify sigma));
        Fmt.pr "normal:     %b@." (Normalize.is_normal sigma);
        Fmt.pr "proper:     %b@." (Classify.is_proper sigma);
        Fmt.pr "stratified: %b@." (Guarded_datalog.Stratify.is_stratified sigma);
        Fmt.pr "weakly acyclic (restricted chase terminates): %b@."
          (Acyclicity.is_weakly_acyclic sigma);
        let ap = Classify.affected_positions sigma in
        Fmt.pr "affected positions: %d@." (Classify.Pos_set.cardinal ap))
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a theory in the languages of Figure 1.")
    Term.(const run $ theory_arg)

(* --- analyze ---------------------------------------------------------- *)

let analyze_cmd =
  let budgets_arg =
    Arg.(
      value
      & opt (list int) Guarded_analysis.Prover.default_budgets
      & info [ "budgets" ] ~docv:"N,.."
          ~doc:
            "Escalating derivation budgets for the bounded-chase termination probe (only \
             consulted when no acyclicity certificate is found).")
  in
  let run theory_path budgets =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let report = Guarded_analysis.Report.analyze ~budgets sigma in
        Fmt.pr "%a@." Guarded_analysis.Report.pp report)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Chase-termination analysis: acyclicity certificates and a bounded-chase probe."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Classifies THEORY in the languages of Figure 1, then decides weak, joint and \
              super-weak acyclicity of its position/existential-variable/trigger graphs. \
              Each decider returns a machine-checkable certificate (a rank function or \
              acyclic numbering) or a concrete cycle counterexample. When no certificate \
              exists and the theory is positive, a bounded restricted chase probes a \
              distinct-constants instance under escalating budgets: saturation yields the \
              finite chase of that instance (atoms, nulls, derivations are reported), \
              exhaustion reports the offending recursive rule cycle. The final \
              $(b,termination:) line carries the verdict.";
         ])
    Term.(const run $ theory_arg $ budgets_arg)

(* --- normalize -------------------------------------------------------- *)

let normalize_cmd =
  let run theory_path =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let norm = Normalize.normalize sigma in
        List.iter (fun r -> Fmt.pr "%a.@." Rule.pp r) (Theory.rules norm))
  in
  Cmd.v
    (Cmd.info "normalize" ~doc:"Normalize a theory (Definition 4 / Proposition 1).")
    Term.(const run $ theory_arg)

(* --- translate -------------------------------------------------------- *)

let budget_arg =
  Arg.(value & opt int 50_000 & info [ "budget" ] ~docv:"N" ~doc:"Rule budget for translations.")

let target_arg =
  Arg.(
    value
    & opt (enum [ ("datalog", `Datalog); ("weakly-guarded", `Weakly_guarded) ]) `Datalog
    & info [ "target" ] ~docv:"LANG" ~doc:"Target language: datalog or weakly-guarded.")

let translate_cmd =
  let run theory_path target budget_n =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let budget =
          {
            Guarded_translate.Pipeline.max_expansion_rules = budget_n;
            max_saturation_rules = budget_n;
            max_ground_rules = budget_n;
          }
        in
        match target with
        | `Datalog -> (
          match Guarded_translate.Pipeline.to_datalog ~budget sigma with
          | tr ->
            Fmt.epr "source language: %s, %d rules@."
              (Classify.language_name tr.Guarded_translate.Pipeline.source_language)
              (Theory.size tr.Guarded_translate.Pipeline.datalog);
            List.iter
              (fun r -> Fmt.pr "%a.@." Rule.pp r)
              (Theory.rules tr.Guarded_translate.Pipeline.datalog)
          | exception Guarded_translate.Pipeline.Not_datalog_expressible l ->
            Fmt.epr
              "this %s theory has ExpTime-complete data complexity and cannot be expressed \
               in Datalog (Section 8); use --target weakly-guarded@."
              (Classify.language_name l);
            exit 4)
        | `Weakly_guarded ->
          let wg = Guarded_translate.Pipeline.to_weakly_guarded ~budget sigma in
          List.iter (fun r -> Fmt.pr "%a.@." Rule.pp r) (Theory.rules wg))
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Translate a theory into Datalog (Thms 1+3) or weakly guarded rules (Thm 2).")
    Term.(const run $ theory_arg $ target_arg $ budget_arg)

(* --- chase ------------------------------------------------------------ *)

let chase_cmd =
  let max_derivations =
    Arg.(value & opt int 100_000 & info [ "max-derivations" ] ~docv:"N" ~doc:"Derivation budget.")
  in
  let max_depth =
    Arg.(value & opt (some int) None & info [ "max-depth" ] ~docv:"N" ~doc:"Null-depth bound.")
  in
  let variant =
    Arg.(
      value
      & opt (enum [ ("oblivious", Guarded_chase.Engine.Oblivious); ("restricted", Guarded_chase.Engine.Restricted) ])
          Guarded_chase.Engine.Oblivious
      & info [ "variant" ] ~docv:"V" ~doc:"Chase variant: oblivious (default) or restricted.")
  in
  let show_tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Print the chase tree of Section 4 (normalizes first).")
  in
  let run theory_path db_path max_derivations max_depth variant show_tree =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let db = load_db db_path in
        Database.materialize_acdom db;
        let limits = { Guarded_chase.Engine.max_derivations; max_depth } in
        if show_tree then begin
          let norm = Normalize.normalize sigma in
          if not (Classify.is_frontier_guarded norm) then
            Fmt.epr "warning: theory is not frontier-guarded; the tree properties of Prop. 2 may fail@.";
          let res = Guarded_chase.Engine.run ~limits ~variant norm db in
          let tree = Guarded_chase.Tree.build norm db res in
          Fmt.pr "%a" Guarded_chase.Tree.pp tree;
          match Guarded_chase.Tree.verify tree norm db with
          | Ok () -> Fmt.epr "Prop. 2 (P1)-(P3): verified@."
          | Error vs -> Fmt.epr "violations: %a@." Fmt.(list ~sep:(any "; ") string) vs
        end
        else begin
          let res =
            if Theory.is_positive sigma then Guarded_chase.Engine.run ~limits ~variant sigma db
            else begin
              let r = Guarded_datalog.Stratified.chase ~limits sigma db in
              {
                Guarded_chase.Engine.db = r.Guarded_datalog.Stratified.db;
                outcome = r.Guarded_datalog.Stratified.outcome;
                derivations = 0;
                steps = [];
              }
            end
          in
          Fmt.epr "%s@."
            (match res.Guarded_chase.Engine.outcome with
            | Guarded_chase.Engine.Saturated -> "saturated"
            | Guarded_chase.Engine.Bounded -> "bounded (result is a sound under-approximation)");
          Fmt.pr "%a@." Database.pp res.Guarded_chase.Engine.db
        end)
  in
  Cmd.v
    (Cmd.info "chase" ~doc:"Chase a database (stratified semantics when negation occurs).")
    Term.(const run $ theory_arg $ db_arg $ max_derivations $ max_depth $ variant $ show_tree)

(* --- answer ------------------------------------------------------------ *)

let query_arg =
  Arg.(required & opt (some string) None & info [ "query" ] ~docv:"REL" ~doc:"Output relation.")

let answer_cmd =
  let magic =
    Arg.(
      value & flag
      & info [ "magic" ]
          ~doc:"Evaluate the translated Datalog program with the magic-set transformation.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print a proof tree for each answer (via the translated Datalog program).")
  in
  let run theory_path db_path query budget_n use_magic explain =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let db = load_db db_path in
        let budget =
          {
            Guarded_translate.Pipeline.max_expansion_rules = budget_n;
            max_saturation_rules = budget_n;
            max_ground_rules = budget_n;
          }
        in
        if explain then begin
          let tr = Guarded_translate.Pipeline.to_datalog ~budget sigma in
          let d = Database.copy db in
          if Guarded_datalog.Seminaive.mentions_acdom tr.Guarded_translate.Pipeline.datalog then
            Database.materialize_acdom d;
          let prov = Guarded_datalog.Provenance.eval tr.Guarded_translate.Pipeline.datalog d in
          Database.iter
            (fun fact ->
              if String.equal (Atom.rel fact) query then
                match Guarded_datalog.Provenance.explain prov fact with
                | Some proof -> Fmt.pr "%a@." Guarded_datalog.Provenance.pp_proof proof
                | None -> ())
            prov.Guarded_datalog.Provenance.result
        end
        else
        let answers =
          if use_magic then begin
            let tr = Guarded_translate.Pipeline.to_datalog ~budget sigma in
            let program = tr.Guarded_translate.Pipeline.datalog in
            let db = Database.copy db in
            if Guarded_datalog.Seminaive.mentions_acdom program then
              Database.materialize_acdom db;
            Guarded_datalog.Magic.relation_answers program db ~rel:query
          end
          else Guarded_translate.Pipeline.answer ~budget sigma db ~query
        in
        List.iter
          (fun tuple -> Fmt.pr "%s(%a)@." query (Fmt.list ~sep:(Fmt.any ", ") Guarded_core.Term.pp) tuple)
          answers)
  in
  Cmd.v
    (Cmd.info "answer"
       ~doc:"Certain answers of (THEORY, REL) over DATABASE via the translation pipelines.")
    Term.(const run $ theory_arg $ db_arg $ query_arg $ budget_arg $ magic $ explain)

(* --- cq ----------------------------------------------------------------- *)

let cq_cmd =
  let cq_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "cq" ] ~docv:"QUERY" ~doc:"Conjunctive query, e.g. \"r(X, Y) -> q(X).\"")
  in
  let run theory_path db_path cq_text =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let db = load_db db_path in
        let q, _ = Guarded_cq.Cq.of_string cq_text in
        let answers = Guarded_cq.Answer.certain_answers sigma q db in
        List.iter
          (fun tuple -> Fmt.pr "(%a)@." (Fmt.list ~sep:(Fmt.any ", ") Guarded_core.Term.pp) tuple)
          answers)
  in
  Cmd.v
    (Cmd.info "cq" ~doc:"Certain answers of a conjunctive query (Section 7).")
    Term.(const run $ theory_arg $ db_arg $ cq_arg)

(* --- serve / update ------------------------------------------------------ *)

(* The serving path: translate once, materialize, maintain under update
   batches (lib/incr). The translate-or-pass-through decision lives in
   Pipeline.serving_program so the network server shares it. *)
let serving_program budget_n sigma =
  let budget =
    {
      Guarded_translate.Pipeline.max_expansion_rules = budget_n;
      max_saturation_rules = budget_n;
      max_ground_rules = budget_n;
    }
  in
  match Guarded_translate.Pipeline.serving_program ~budget sigma with
  | served ->
    Fmt.epr "program: %s@." served.Guarded_translate.Pipeline.served_note;
    served.Guarded_translate.Pipeline.served_program
  | exception Guarded_translate.Pipeline.Not_datalog_expressible l ->
    Fmt.epr
      "this %s theory has no Datalog rewriting (Section 8) and cannot be served \
       incrementally@."
      (Classify.language_name l);
    exit 4

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains for the parallel maintenance rounds (1 = sequential).")

let make_pool n = if n <= 1 then None else Some (Guarded_par.Pool.create ~domains:n ())

let timed f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let print_tuples rel tuples =
  List.iter
    (fun tuple ->
      Fmt.pr "%s(%a)@." rel (Fmt.list ~sep:(Fmt.any ", ") Guarded_core.Term.pp) tuple)
    tuples

let print_apply_result (res : Guarded_incr.Incr.apply_result) dt =
  Fmt.pr "applied: +%d -%d facts%s (%.3f ms)@." res.Guarded_incr.Incr.res_added
    res.Guarded_incr.Incr.res_removed
    (if res.Guarded_incr.Incr.res_fallback_strata > 0 then
       Fmt.str " [%d strata recomputed]" res.Guarded_incr.Incr.res_fallback_strata
     else "")
    (dt *. 1000.)

(* One query line of the serve REPL: "? REL" prints the relation's
   tuples; "? body -> q(X)." answers a CQ (";"-separated disjuncts form
   a UCQ) directly against the materialization. *)
let serve_query m text =
  let text = String.trim text in
  if String.contains text '>' then begin
    let ucq, _ = Guarded_cq.Ucq.of_string text in
    let tuples =
      List.concat_map
        (fun (q : Guarded_cq.Cq.t) ->
          Guarded_incr.Incr.cq_answers m ~body:q.Guarded_cq.Cq.body
            ~answer_vars:q.Guarded_cq.Cq.answer_vars)
        ucq.Guarded_cq.Ucq.disjuncts
    in
    let tuples = List.sort_uniq (List.compare Guarded_core.Term.compare) tuples in
    List.iter
      (fun tuple -> Fmt.pr "(%a)@." (Fmt.list ~sep:(Fmt.any ", ") Guarded_core.Term.pp) tuple)
      tuples
  end
  else print_tuples text (Guarded_incr.Incr.answers m ~query:text)

let serve_cmd =
  let run theory_path db_path budget_n domains =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let db = load_db db_path in
        let program = serving_program budget_n sigma in
        let pool = make_pool domains in
        let m, dt = timed (fun () -> Guarded_incr.Incr.materialize ?pool program db) in
        Fmt.epr "materialized: %d facts from %d EDB facts (%.3f ms)@."
          (Database.cardinal (Guarded_incr.Incr.db m))
          (Database.cardinal (Guarded_incr.Incr.edb m))
          (dt *. 1000.);
        Fmt.epr "commands: +fact.  -fact.  commit  ? REL  ? body -> q(X).  quit@.";
        let pending = ref Guarded_incr.Delta.empty in
        let quit = ref false in
        while not !quit do
          match In_channel.input_line stdin with
          | None -> quit := true
          | Some line -> (
            let line = String.trim line in
            try
              if line = "quit" || line = "exit" then quit := true
              else if line = "commit" then begin
                let delta = !pending in
                pending := Guarded_incr.Delta.empty;
                let res, dt = timed (fun () -> Guarded_incr.Incr.apply m delta) in
                print_apply_result res dt
              end
              else if line <> "" && line.[0] = '?' then
                serve_query m (String.sub line 1 (String.length line - 1))
              else
                match Guarded_incr.Delta.parse_line line with
                | Some a, _ -> pending := Guarded_incr.Delta.add_fact !pending a
                | _, Some a -> pending := Guarded_incr.Delta.remove_fact !pending a
                | None, None -> ()
            with
            | Failure msg | Invalid_argument msg -> Fmt.epr "error: %s@." msg
            | Parser.Parse_error msg -> Fmt.epr "parse error: %s@." msg)
        done)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Materialize the translated program over DATABASE and serve queries under updates \
          (interactive)."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Translates THEORY to Datalog once (Thms. 1/5 — the rewriting is \
              database-independent), materializes it over DATABASE, then reads commands from \
              standard input: $(b,+fact.) and $(b,-fact.) stage insertions and deletions, \
              $(b,commit) applies the staged batch incrementally (counting on nonrecursive \
              strata, delete/rederive on recursive ones) and prints net changes with timing, \
              $(b,? REL) prints a relation's tuples, $(b,? body -> q(X).) answers a \
              conjunctive query ($(b,;)-separated disjuncts form a union), and $(b,quit) \
              exits.";
         ])
    Term.(const run $ theory_arg $ db_arg $ budget_arg $ domains_arg)

let update_cmd =
  let updates_arg =
    Arg.(
      value
      & pos 2 (some file) None
      & info [] ~docv:"UPDATES"
          ~doc:"Update file: +fact./-fact. lines; blank lines separate batches. Defaults to \
                standard input.")
  in
  let query_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ] ~docv:"REL" ~doc:"Print this relation's tuples after the last batch.")
  in
  let run theory_path db_path updates_path query budget_n domains =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let db = load_db db_path in
        let program = serving_program budget_n sigma in
        let pool = make_pool domains in
        let m, dt = timed (fun () -> Guarded_incr.Incr.materialize ?pool program db) in
        Fmt.epr "materialized: %d facts (%.3f ms)@."
          (Database.cardinal (Guarded_incr.Incr.db m))
          (dt *. 1000.);
        let text =
          match updates_path with
          | Some path -> read_file path
          | None -> In_channel.input_all stdin
        in
        (* The whole file is validated before anything is applied: a
           malformed line rejects the submission as a unit with its
           line number, never aborting between batches. *)
        let batches =
          match Guarded_incr.Delta.batches_of_string text with
          | batches -> batches
          | exception Guarded_incr.Delta.Malformed { line; msg } ->
            Fmt.epr "%s, line %d: %s@."
              (match updates_path with Some p -> p | None -> "<stdin>")
              line msg;
            Fmt.epr "no batch applied@.";
            exit 2
        in
        List.iteri
          (fun i delta ->
            let res, dt = timed (fun () -> Guarded_incr.Incr.apply m delta) in
            Fmt.pr "batch %d (%d ops): " (i + 1) (Guarded_incr.Delta.size delta);
            print_apply_result res dt)
          batches;
        match query with
        | None -> ()
        | Some rel -> print_tuples rel (Guarded_incr.Incr.answers m ~query:rel))
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply blank-line-separated update batches to a served materialization, with \
             per-batch timing."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Materializes THEORY over DATABASE like $(b,guarded serve), then applies the \
              batches of UPDATES (or standard input): one $(b,+fact.) or $(b,-fact.) per \
              line, blank lines between batches, $(b,#)/$(b,%) comments ignored. Each batch \
              reports its net fact changes and wall-clock time; $(b,--query) prints a \
              relation after the final batch.";
         ])
    Term.(
      const run $ theory_arg $ db_arg $ updates_arg $ query_opt_arg $ budget_arg $ domains_arg)

(* --- listen / client ----------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Serve on (connect to) a Unix-domain socket.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"TCP host.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Serve on (connect to) TCP HOST:PORT.")

let resolve_address socket host port =
  match (socket, port) with
  | Some path, _ -> Guarded_server.Server.Unix_socket path
  | None, Some p -> Guarded_server.Server.Tcp (host, p)
  | None, None ->
    Fmt.epr "error: give --socket PATH or --port PORT@.";
    exit 2

let listen_cmd =
  let db_opt_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"DATABASE"
          ~doc:"Database file. Optional when --snapshot names an existing snapshot.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Snapshot file: loaded for a warm start when it exists, written on shutdown and \
             on the SNAPSHOT command.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Commit queue bound; full queues block submitters (backpressure).")
  in
  let demand_arg =
    Arg.(
      value & flag
      & info [ "demand" ]
          ~doc:
            "Demand-driven serving: skip the up-front materialization and answer each query \
             by magic-set evaluation over the raw EDB, memoized in a subgoal cache that \
             commits invalidate per dependency component. Incompatible with --snapshot \
             (nothing is materialized to persist).")
  in
  let chase_arg =
    Arg.(
      value & flag
      & info [ "chase" ]
          ~doc:
            "Finite-chase serving: materialize the restricted chase of THEORY over DATABASE \
             and answer queries from it directly, bypassing the Datalog translation. Labeled \
             nulls stay resident and are filtered from answers. Commits of pure additions \
             continue the chase incrementally; deletions re-chase the new EDB. Only sound \
             for terminating theories — check with $(b,guarded analyze) first; a chase that \
             exceeds $(b,--chase-budget) refuses the batch (or startup). Incompatible with \
             --demand, --snapshot and --follow.")
  in
  let chase_budget_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "chase-budget" ] ~docv:"N"
          ~doc:"With --chase: derivation budget per chase run before a batch is refused.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker threads answering queries and applying commits off the event loop; the \
             reactor itself never blocks on the state lock.")
  in
  let follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"ADDR"
          ~doc:
            "Serve as a read replica of the primary at ADDR (unix:PATH, tcp:HOST:PORT, \
             HOST:PORT or a socket path): bootstrap from its wire snapshot (or, with a \
             DATABASE, materialize locally and resume from its journal), replay its commit \
             stream, refuse writes with a redirect. Incompatible with --demand and \
             --snapshot.")
  in
  let auto_promote_arg =
    Arg.(
      value & flag
      & info [ "auto-promote" ]
          ~doc:
            "With --follow: when the primary stays unreachable past the reconnect budget, \
             promote this replica into a writable primary instead of stopping the stream.")
  in
  let run_replica ~primary ~auto_promote ?pool ~workers ~queue_capacity ~program ~db_path addr
      =
    let policy = { Guarded_repl.Failover.default_policy with auto_promote } in
    let local = Option.map (fun p -> (program, load_db p)) db_path in
    match
      Guarded_repl.Replica.start ?pool ~log:(Fmt.epr "%s@.") ~workers ~queue_capacity ~policy
        ?local ~primary addr
    with
    | Error msg ->
      Fmt.epr "error: %s@." msg;
      exit 1
    | Ok replica ->
      let served = Guarded_server.State.program (Guarded_repl.Replica.state replica) in
      if not (Guarded_server.Snapshot.theory_equal program served) then begin
        Fmt.epr "error: the primary serves a different program than THEORY@.";
        Guarded_repl.Replica.stop replica;
        exit 2
      end;
      let stop_requested = ref false in
      let request_stop _ = stop_requested := true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
      while not !stop_requested do
        Thread.delay 0.1
      done;
      Guarded_repl.Replica.stop replica
  in
  let run theory_path db_path socket host port snapshot queue_capacity budget_n domains demand
      chase chase_budget workers follow auto_promote =
    handle_errors (fun () ->
        let sigma = load_theory theory_path in
        let addr = resolve_address socket host port in
        (* Chase mode serves the existential theory itself — no Datalog
           translation is computed (or even required to exist). *)
        let program = lazy (serving_program budget_n sigma) in
        let pool = make_pool domains in
        if demand && snapshot <> None then begin
          Fmt.epr "error: --demand and --snapshot are incompatible@.";
          exit 2
        end;
        if chase && (demand || snapshot <> None || follow <> None) then begin
          Fmt.epr "error: --chase is incompatible with --demand, --snapshot and --follow@.";
          exit 2
        end;
        match follow with
        | Some primary_s -> (
          if demand || snapshot <> None then begin
            Fmt.epr "error: --follow is incompatible with --demand and --snapshot@.";
            exit 2
          end;
          match Guarded_server.Server.address_of_string primary_s with
          | Error msg ->
            Fmt.epr "error: --follow: %s@." msg;
            exit 2
          | Ok primary ->
            run_replica ~primary ~auto_promote ?pool ~workers ~queue_capacity
              ~program:(Lazy.force program) ~db_path addr)
        | None ->
        let state =
          if chase then begin
            match db_path with
            | None ->
              Fmt.epr "error: --chase needs a DATABASE@.";
              exit 2
            | Some path -> (
              let db = load_db path in
              let limits =
                { Guarded_chase.Engine.default_limits with max_derivations = chase_budget }
              in
              match Guarded_server.State.create_chase ?pool ~limits ~queue_capacity sigma db with
              | state ->
                let s =
                  Guarded_server.State.stats state ~connections:0 ~total_connections:0 ()
                in
                Fmt.epr "chase mode: serving %d chase facts (%d nulls, %d derivations) from \
                         %d EDB facts@."
                  s.Guarded_server.Wire.s_facts s.Guarded_server.Wire.s_chase_nulls
                  s.Guarded_server.Wire.s_chase_derivations s.Guarded_server.Wire.s_edb_facts;
                state
              | exception Guarded_incr.Chase_mat.Nonterminating { budget; derivations } ->
                Fmt.epr
                  "error: the chase exceeded %d derivations (budget %d); this theory may \
                   not terminate on this database — check with `guarded analyze`, or raise \
                   --chase-budget@."
                  derivations budget;
                exit 3)
          end
          else if demand then begin
            match db_path with
            | None ->
              Fmt.epr "error: --demand needs a DATABASE@.";
              exit 2
            | Some path ->
              let db = load_db path in
              Fmt.epr "demand-driven: serving %d EDB facts, nothing materialized@."
                (Database.cardinal db);
              Guarded_server.State.create_demand ?pool ~queue_capacity (Lazy.force program) db
          end
          else
          match snapshot with
          | Some path when Sys.file_exists path -> (
            match Guarded_server.Snapshot.load_for ?pool path (Lazy.force program) with
            | m ->
              Fmt.epr "warm start: %d facts restored from %s@."
                (Database.cardinal (Guarded_incr.Incr.db m))
                path;
              Guarded_server.State.of_materialization ~queue_capacity m
            | exception Guarded_server.Snapshot.Corrupt msg ->
              Fmt.epr "snapshot rejected: %s@." msg;
              exit 2)
          | _ -> (
            match db_path with
            | None ->
              Fmt.epr "error: no DATABASE and no existing snapshot to start from@.";
              exit 2
            | Some path ->
              let db = load_db path in
              let m, dt =
                timed (fun () -> Guarded_incr.Incr.materialize ?pool (Lazy.force program) db)
              in
              Fmt.epr "materialized: %d facts from %d EDB facts (%.3f ms)@."
                (Database.cardinal (Guarded_incr.Incr.db m))
                (Database.cardinal (Guarded_incr.Incr.edb m))
                (dt *. 1000.);
              Guarded_server.State.of_materialization ~queue_capacity m)
        in
        let srv =
          Guarded_server.Server.listen ?snapshot ~log:(Fmt.epr "%s@.") ~workers state addr
        in
        let stop_requested = ref false in
        let request_stop _ = stop_requested := true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
        while not !stop_requested do
          Thread.delay 0.1
        done;
        Guarded_server.Server.stop srv)
  in
  Cmd.v
    (Cmd.info "listen"
       ~doc:"Serve the translated materialization to network clients."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Translates THEORY once, materializes it over DATABASE (or restores a \
              $(b,--snapshot) for a warm start without re-running any fixpoint) and serves \
              the wire protocol on a Unix socket or TCP port: one thread per connection, \
              concurrent readers over the last committed epoch, a single writer applying \
              update batches incrementally. With $(b,--demand), nothing is materialized: \
              queries evaluate their own subgoals on demand and cache them. With \
              $(b,--chase), the restricted chase of THEORY itself is materialized and \
              served directly — no Datalog translation — which requires a terminating \
              chase (see $(b,guarded analyze)). With \
              $(b,--follow), this node serves as a read replica of another $(b,listen) \
              process: it bootstraps from the primary's snapshot or journal, replays its \
              commit stream and answers writes with a redirect; the $(b,PROMOTE) wire verb \
              (or $(b,--auto-promote) after a lost primary) flips it into a writable \
              primary. SIGINT/SIGTERM shut down gracefully, saving the snapshot when one \
              is configured.";
         ])
    Term.(
      const run $ theory_arg $ db_opt_arg $ socket_arg $ host_arg $ port_arg $ snapshot_arg
      $ queue_arg $ budget_arg $ domains_arg $ demand_arg $ chase_arg $ chase_budget_arg
      $ workers_arg $ follow_arg $ auto_promote_arg)

(* [--hammer N]: N concurrent light clients, a handful of STATS round
   trips each — the smoke-scale version of the serve bench's sweep,
   used by CI to prove the reactor holds 1000+ connections. *)
let run_hammer addr n =
  ignore (Guarded_server.Evloop.raise_fd_limit (n + 512));
  let requests = 5 in
  let lat = Array.make (n * requests) 0. in
  let fail_mutex = Mutex.create () in
  let failures = ref 0 in
  let client k () =
    match Guarded_server.Client.connect addr with
    | exception _ ->
      Mutex.lock fail_mutex;
      failures := !failures + requests;
      Mutex.unlock fail_mutex
    | c ->
      Fun.protect
        ~finally:(fun () -> Guarded_server.Client.close c)
        (fun () ->
          for i = 0 to requests - 1 do
            let t0 = Unix.gettimeofday () in
            match Guarded_server.Client.request c Guarded_server.Wire.Stats with
            | Guarded_server.Wire.Stats_reply _ ->
              lat.((k * requests) + i) <- Unix.gettimeofday () -. t0
            | _ | (exception _) ->
              Mutex.lock fail_mutex;
              incr failures;
              Mutex.unlock fail_mutex
          done)
  in
  let threads = List.init n (fun k -> Thread.create (client k) ()) in
  List.iter Thread.join threads;
  Array.sort Float.compare lat;
  let pct p =
    let valid = Array.length lat - !failures in
    if valid <= 0 then 0.
    else lat.(Array.length lat - valid + min (valid - 1) (int_of_float (p *. float_of_int valid)))
  in
  Fmt.pr "hammer: %d clients x %d requests, %d failures, p50 %.0f µs, p95 %.0f µs@." n requests
    !failures
    (pct 0.50 *. 1e6)
    (pct 0.95 *. 1e6);
  if !failures > 0 then exit 1

let client_cmd =
  let exec_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "exec" ] ~docv:"CMD"
          ~doc:"Protocol command to send (repeatable); without it, read commands from \
                standard input.")
  in
  let hammer_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "hammer" ] ~docv:"N"
          ~doc:
            "Open N concurrent connections, send a few STATS round trips on each, report \
             latency percentiles and exit — a load-smoke against a running server.")
  in
  let replica_arg =
    Arg.(
      value & opt_all string []
      & info [ "replica" ] ~docv:"ADDR"
          ~doc:
            "A read replica's address (repeatable; unix:PATH, tcp:HOST:PORT, HOST:PORT or \
             a socket path). Reads round-robin across the replicas and the primary; writes \
             go to the primary, following redirects and probing for a promoted successor \
             when it dies.")
  in
  let run socket host port cmds hammer replicas =
    handle_errors (fun () ->
        let addr = resolve_address socket host port in
        match hammer with
        | Some n -> run_hammer addr n
        | None ->
        let replica_addrs =
          List.map
            (fun s ->
              match Guarded_server.Server.address_of_string s with
              | Ok a -> a
              | Error msg ->
                Fmt.epr "error: --replica: %s@." msg;
                exit 2)
            replicas
        in
        let is_read : Guarded_server.Wire.request -> bool = function
          | Query _ | Cq _ | Stats | Role -> true
          | Add _ | Remove _ | Load _ | Commit | Snapshot _ | Follow _ | Promote | Quit ->
            false
        in
        let route =
          if replica_addrs = [] then begin
            let c =
              try Guarded_server.Client.connect addr
              with Unix.Unix_error (e, _, _) ->
                Fmt.epr "connect failed: %s@." (Unix.error_message e);
                exit 1
            in
            `Single c
          end
          else `Cluster (Guarded_repl.Cluster.make (addr :: replica_addrs))
        in
        let request req =
          match route with
          | `Single c -> Guarded_server.Client.request c req
          | `Cluster cl ->
            if is_read req then Guarded_repl.Cluster.read cl req
            else Guarded_repl.Cluster.write cl req
        in
        let failures = ref 0 in
        let send line =
          let line = String.trim line in
          if line <> "" && line.[0] <> '#' && line.[0] <> '%' then begin
            let resp =
              match Guarded_server.Wire.parse_request line with
              | Error msg -> Guarded_server.Wire.Failed msg
              | Ok req -> request req
            in
            (match resp with Guarded_server.Wire.Failed _ -> incr failures | _ -> ());
            Fmt.pr "%s@." (Guarded_server.Wire.print_response resp)
          end
        in
        let close () =
          match route with
          | `Single c -> Guarded_server.Client.close c
          | `Cluster cl -> Guarded_repl.Cluster.close cl
        in
        (try
           if cmds <> [] then List.iter send cmds
           else
             let quit = ref false in
             while not !quit do
               match In_channel.input_line stdin with
               | None -> quit := true
               | Some line ->
                 let t = String.lowercase_ascii (String.trim line) in
                 if t = "quit" || t = "exit" then quit := true else send line
             done
         with
        | Guarded_server.Wire.Protocol_error msg ->
          Fmt.epr "protocol error: %s@." msg;
          close ();
          exit 1
        | Guarded_server.Client.Connection_lost msg ->
          Fmt.epr "connection lost: %s@." msg;
          close ();
          exit 1);
        close ();
        if !failures > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send protocol commands to a running guarded listen server."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Connects to $(b,--socket) or $(b,--host)/$(b,--port) and sends each $(b,-e) \
              command (or each standard-input line) as one request, printing the reply. \
              Exits nonzero when any reply is an ERROR. With $(b,--hammer N), instead opens \
              N concurrent connections and reports round-trip latency percentiles. With \
              $(b,--replica) endpoints, reads round-robin across the cluster and writes \
              chase the primary through redirects and failovers.";
         ])
    Term.(const run $ socket_arg $ host_arg $ port_arg $ exec_arg $ hammer_arg $ replica_arg)

let load_wire_cmd =
  let db_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DATABASE" ~doc:"Fact file to ingest into the server's EDB.")
  in
  let text_flag =
    Arg.(
      value & flag
      & info [ "text" ]
          ~doc:"Stage one pipelined +fact. frame per fact instead of binary LOAD blocks — \
                the slow path, kept for comparison.")
  in
  let chunk_arg =
    Arg.(value & opt int 8192 & info [ "chunk" ] ~docv:"N" ~doc:"Facts per LOAD frame.")
  in
  let no_commit_flag =
    Arg.(value & flag & info [ "no-commit" ] ~doc:"Stage only; skip the final COMMIT.")
  in
  let run db_path socket host port text chunk no_commit =
    handle_errors (fun () ->
        let facts = Database.to_list (load_db db_path) in
        let n = List.length facts in
        let addr = resolve_address socket host port in
        let c =
          try Guarded_server.Client.connect addr
          with Unix.Unix_error (e, _, _) ->
            Fmt.epr "connect failed: %s@." (Unix.error_message e);
            exit 1
        in
        Fun.protect
          ~finally:(fun () -> Guarded_server.Client.close c)
          (fun () ->
            let t0 = Unix.gettimeofday () in
            (if text then begin
               let bad =
                 List.exists
                   (function Guarded_server.Wire.Failed _ -> true | _ -> false)
                   (Guarded_server.Client.pipeline c
                      (List.map (fun a -> Guarded_server.Wire.Add a) facts))
               in
               if bad then begin
                 Fmt.epr "staging failed@.";
                 exit 1
               end
             end
             else
               match Guarded_server.Client.load ~chunk c facts with
               | Ok m when m = n -> ()
               | Ok m ->
                 Fmt.epr "staged %d of %d facts@." m n;
                 exit 1
               | Error msg ->
                 Fmt.epr "load failed: %s@." msg;
                 exit 1);
            let dt = Unix.gettimeofday () -. t0 in
            Fmt.pr "staged %d facts in %.3f s (%.0f facts/s, %s)@." n dt
              (float_of_int n /. Float.max dt 1e-9)
              (if text then "text" else "binary");
            if not no_commit then begin
              let t1 = Unix.gettimeofday () in
              match Guarded_server.Client.request c Guarded_server.Wire.Commit with
              | Guarded_server.Wire.Committed { added; removed; epoch } ->
                Fmt.pr "committed: +%d -%d @%d in %.3f s@." added removed epoch
                  (Unix.gettimeofday () -. t1)
              | Guarded_server.Wire.Failed msg ->
                Fmt.epr "commit failed: %s@." msg;
                exit 1
              | _ ->
                Fmt.epr "protocol error: expected COMMITTED@.";
                exit 1
            end))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Bulk-ingest a fact file into a running guarded listen server."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Parses DATABASE locally, ships its facts to the server as length-prefixed \
              binary $(b,LOAD) frames (bypassing per-line text parsing on both sides), and \
              commits the staged batch. $(b,--text) uses pipelined $(b,+fact.) frames \
              instead, which is the baseline the serve benchmark compares against.";
         ])
    Term.(
      const run $ db_pos $ socket_arg $ host_arg $ port_arg $ text_flag $ chunk_arg
      $ no_commit_flag)

let () =
  let doc = "guarded existential rule languages (PODS 2014) — translations and query answering" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "guarded" ~version:"1.0.0" ~doc)
          [
            classify_cmd;
            analyze_cmd;
            normalize_cmd;
            translate_cmd;
            chase_cmd;
            answer_cmd;
            cq_cmd;
            serve_cmd;
            update_cmd;
            listen_cmd;
            client_cmd;
            load_wire_cmd;
          ]))
