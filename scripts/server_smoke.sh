#!/usr/bin/env bash
# CI smoke for the network server: start `guarded listen` on a Unix
# socket, drive it with ~50 relation/pattern/CQ queries plus an update
# batch through `guarded client`, verify the answers move, snapshot,
# and shut the server down cleanly with SIGTERM.
#
# Usage: scripts/server_smoke.sh [DOMAINS]
set -euo pipefail

# 0 means "the sequential CI leg": serve without a pool (--domains 1).
DOMAINS="${1:-1}"
[ "$DOMAINS" = 0 ] && DOMAINS=1
# The prebuilt binary: two dune exec instances (the backgrounded
# server and the client calls) would contend on dune's lock.
GUARDED="${GUARDED:-./_build/default/bin/guarded.exe}"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SNAP="$WORK/serve.snap"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cat > "$WORK/path.rules" <<'EOF'
e(X, Y) -> path(X, Y).
e(X, Z), path(Z, Y) -> path(X, Y).
EOF
cat > "$WORK/path.db" <<'EOF'
e(a, b).
e(b, c).
e(c, d).
EOF

$GUARDED listen "$WORK/path.rules" "$WORK/path.db" \
  --socket "$SOCK" --snapshot "$SNAP" --domains "$DOMAINS" \
  2> "$WORK/listen.log" &
SERVER_PID=$!

for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.2
done
[ -S "$SOCK" ] || { echo "server did not come up"; cat "$WORK/listen.log"; exit 1; }

# ~50 queries across the protocol's query forms.
for _ in $(seq 1 16); do
  $GUARDED client --socket "$SOCK" \
    -e "? path" \
    -e "? path(a, ?X)" \
    -e "?? path(X, Y), path(Y, Z) -> two(X, Z)." \
    > /dev/null
done

# Before the update: 6 paths over the 3-edge chain.
BEFORE=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$BEFORE" = "ANSWERS 6" ] || { echo "expected ANSWERS 6, got: $BEFORE"; exit 1; }

# An update batch: extend the chain, retire the first edge.
$GUARDED client --socket "$SOCK" \
  --exec="+e(d, e)." --exec="-e(a, b)." --exec=COMMIT --exec=STATS > "$WORK/commit.out"
grep -q "^COMMITTED" "$WORK/commit.out" || { echo "commit failed"; cat "$WORK/commit.out"; exit 1; }

AFTER=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$AFTER" = "ANSWERS 6" ] || { echo "expected ANSWERS 6 after update, got: $AFTER"; exit 1; }
$GUARDED client --socket "$SOCK" -e "? path(a, ?X)" | head -1 | grep -qx "ANSWERS 0" \
  || { echo "deleted edge still answers"; exit 1; }

# Persist, then graceful shutdown on SIGTERM.
$GUARDED client --socket "$SOCK" -e "SNAPSHOT" | grep -qx "OK" || { echo "snapshot failed"; exit 1; }
kill -TERM "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not stop on SIGTERM"; cat "$WORK/listen.log"; exit 1
fi
grep -q "server stopped" "$WORK/listen.log" || { echo "no clean shutdown logged"; cat "$WORK/listen.log"; exit 1; }
[ -f "$SNAP" ] || { echo "snapshot file missing"; exit 1; }

# Warm restart from the snapshot (no DATABASE argument) serves the
# updated state.
$GUARDED listen "$WORK/path.rules" --socket "$SOCK" --snapshot "$SNAP" \
  2>> "$WORK/listen.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.2
done
WARM=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$WARM" = "ANSWERS 6" ] || { echo "warm restart: expected ANSWERS 6, got: $WARM"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

echo "server smoke: OK (domains=$DOMAINS)"
