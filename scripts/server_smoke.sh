#!/usr/bin/env bash
# CI smoke for the network server: start `guarded listen` on a Unix
# socket, drive it with ~50 relation/pattern/CQ queries plus an update
# batch through `guarded client`, check the STATS cache counters, and
# shut the server down cleanly with SIGTERM. In materialized mode the
# run also snapshots and warm-restarts; in demand mode (`--demand`)
# snapshots are unavailable and the counters must move: repeat queries
# are cache hits.
#
# In repl mode (`repl`) the smoke instead drives a primary/replica
# pair: the replica bootstraps over the wire, serves reads, drains its
# lag, redirects writes, and takes over via PROMOTE after the primary
# is killed.
#
# In chase mode (`chase`) the smoke serves an existential theory whose
# finite chase is materialized directly (no Datalog translation):
# null-valued relations answer 0 (certain answers), additions continue
# the chase, deletions re-chase, snapshots are refused, and the
# chase_* STATS gauges track the resident nulls and derivations.
#
# Usage: scripts/server_smoke.sh [DOMAINS] [materialized|demand|repl|chase]
set -euo pipefail

# 0 means "the sequential CI leg": serve without a pool (--domains 1).
DOMAINS="${1:-1}"
[ "$DOMAINS" = 0 ] && DOMAINS=1
MODE="${2:-materialized}"
case "$MODE" in
  materialized|demand|repl|chase) ;;
  *) echo "usage: server_smoke.sh [DOMAINS] [materialized|demand|repl|chase]"; exit 2 ;;
esac
# The prebuilt binary: two dune exec instances (the backgrounded
# server and the client calls) would contend on dune's lock.
GUARDED="${GUARDED:-./_build/default/bin/guarded.exe}"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
SNAP="$WORK/serve.snap"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

cat > "$WORK/path.rules" <<'EOF'
e(X, Y) -> path(X, Y).
e(X, Z), path(Z, Y) -> path(X, Y).
EOF
cat > "$WORK/path.db" <<'EOF'
e(a, b).
e(b, c).
e(c, d).
EOF

if [ "$MODE" = chase ]; then
  # Finite-chase serving: an existential theory (each company gets an
  # invented lead), served from the materialized chase itself.
  cat > "$WORK/org.rules" <<'EOF'
company(X) -> exists L. lead(L, X).
lead(L, X) -> staffed(X).
EOF
  cat > "$WORK/org.db" <<'EOF'
company(acme).
company(blix).
EOF

  $GUARDED listen "$WORK/org.rules" "$WORK/org.db" \
    --socket "$SOCK" --chase --domains "$DOMAINS" 2> "$WORK/listen.log" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.2
  done
  [ -S "$SOCK" ] || { echo "chase server did not come up"; cat "$WORK/listen.log"; exit 1; }

  cstat() { # cstat KEY
    $GUARDED client --socket "$SOCK" -e STATS | awk -v key="$1" '$1 == key { print $2 }'
  }

  # The chase-mode STATS keys, and the mode flags: chase on, demand off.
  for key in chase_mode chase_nulls chase_derivations; do
    cstat "$key" | grep -q . || { echo "STATS missing key $key"; exit 1; }
  done
  [ "$(cstat chase_mode)" = 1 ] || { echo "chase_mode != 1"; exit 1; }
  [ "$(cstat demand)" = 0 ] || { echo "demand flag set in chase mode"; exit 1; }
  [ "$(cstat chase_nulls)" = 2 ] \
    || { echo "expected 2 resident nulls, got $(cstat chase_nulls)"; exit 1; }
  [ "$(cstat chase_derivations)" -gt 0 ] || { echo "no chase derivations"; exit 1; }

  # Certain answers: staffed holds for both companies, lead is
  # null-valued throughout and must answer 0.
  $GUARDED client --socket "$SOCK" -e "? staffed" | head -1 | grep -qx "ANSWERS 2" \
    || { echo "expected 2 staffed answers"; exit 1; }
  $GUARDED client --socket "$SOCK" -e "? lead" | head -1 | grep -qx "ANSWERS 0" \
    || { echo "null-valued lead tuples leaked into answers"; exit 1; }
  # A CQ may join through the nulls but still projects constants only.
  $GUARDED client --socket "$SOCK" -e "?? lead(L, X), company(X) -> q(X)." \
    | head -1 | grep -qx "ANSWERS 2" \
    || { echo "CQ through the invented lead failed"; exit 1; }

  # An addition continues the chase (a fresh null for the new company)...
  D0=$(cstat chase_derivations)
  $GUARDED client --socket "$SOCK" --exec="+company(corp)." --exec=COMMIT \
    | grep -q "^COMMITTED" || { echo "chase commit failed"; exit 1; }
  $GUARDED client --socket "$SOCK" -e "? staffed" | head -1 | grep -qx "ANSWERS 3" \
    || { echo "addition not chased"; exit 1; }
  [ "$(cstat chase_nulls)" = 3 ] \
    || { echo "expected 3 nulls after the addition, got $(cstat chase_nulls)"; exit 1; }
  [ "$(cstat chase_derivations)" -gt "$D0" ] \
    || { echo "chase_derivations did not grow on a continuation"; exit 1; }

  # ...and a deletion re-chases the shrunk EDB.
  $GUARDED client --socket "$SOCK" --exec="-company(acme)." --exec=COMMIT \
    | grep -q "^COMMITTED" || { echo "chase deletion commit failed"; exit 1; }
  $GUARDED client --socket "$SOCK" -e "? staffed" | head -1 | grep -qx "ANSWERS 2" \
    || { echo "deletion not re-chased"; exit 1; }

  # Snapshots have no wire format for nulls: refused in chase mode.
  SNAP_REPLY=$($GUARDED client --socket "$SOCK" -e "SNAPSHOT" || true)
  echo "$SNAP_REPLY" | head -1 | grep -q "^ERROR" \
    || { echo "snapshot accepted in chase mode: $SNAP_REPLY"; exit 1; }

  kill -TERM "$SERVER_PID"
  for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.2
  done
  kill -0 "$SERVER_PID" 2>/dev/null \
    && { echo "chase server did not stop on SIGTERM"; cat "$WORK/listen.log"; exit 1; }
  grep -q "server stopped" "$WORK/listen.log" \
    || { echo "no clean shutdown logged"; cat "$WORK/listen.log"; exit 1; }

  echo "server smoke: OK (domains=$DOMAINS, mode=$MODE)"
  exit 0
fi

if [ "$MODE" = repl ]; then
  # Primary/replica smoke: bootstrap over the wire, converge, redirect
  # writes, then fail over with PROMOTE after the primary dies.
  PSOCK="$WORK/primary.sock"
  RSOCK="$WORK/replica.sock"
  trap 'kill "$SERVER_PID" "$REPLICA_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
  REPLICA_PID=""

  $GUARDED listen "$WORK/path.rules" "$WORK/path.db" \
    --socket "$PSOCK" --domains "$DOMAINS" 2> "$WORK/primary.log" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$PSOCK" ] && break
    sleep 0.2
  done
  [ -S "$PSOCK" ] || { echo "primary did not come up"; cat "$WORK/primary.log"; exit 1; }

  # Commit before the replica exists, so the bootstrap snapshot must
  # carry post-load state, not just the initial database.
  $GUARDED client --socket "$PSOCK" --exec="+e(d, e)." --exec=COMMIT \
    | grep -q "^COMMITTED" || { echo "primary commit failed"; exit 1; }

  # The replica has no local database: it must bootstrap from the
  # primary's wire snapshot (FOLLOW -1).
  $GUARDED listen "$WORK/path.rules" --socket "$RSOCK" --follow "unix:$PSOCK" \
    2> "$WORK/replica.log" &
  REPLICA_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$RSOCK" ] && break
    sleep 0.2
  done
  [ -S "$RSOCK" ] || { echo "replica did not come up"; cat "$WORK/replica.log"; exit 1; }

  rstat() { # rstat SOCK KEY
    $GUARDED client --socket "$1" -e STATS | awk -v key="$2" '$1 == key { print $2 }'
  }
  drain() { # drain EXPECTED_EPOCH
    for _ in $(seq 1 150); do
      LAG=$(rstat "$RSOCK" replication_lag_epochs || echo 1)
      EPOCH=$(rstat "$RSOCK" epoch || echo -1)
      [ "$LAG" = 0 ] && [ "$EPOCH" -ge "$1" ] && return 0
      sleep 0.2
    done
    echo "replica did not drain to epoch $1 (lag=$LAG epoch=$EPOCH)"
    cat "$WORK/replica.log"; exit 1
  }
  drain 1

  # Converged reads: both ends agree on the recursive closure of the
  # 4-edge chain a-b-c-d-e (10 paths).
  P=$($GUARDED client --socket "$PSOCK" -e "? path" | head -1)
  R=$($GUARDED client --socket "$RSOCK" -e "? path" | head -1)
  [ "$P" = "ANSWERS 10" ] || { echo "primary: expected ANSWERS 10, got: $P"; exit 1; }
  [ "$R" = "$P" ] || { echo "replica diverged: primary=$P replica=$R"; exit 1; }

  # Replication STATS keys on both ends.
  for key in role replicas_connected replication_lag_epochs journal_bytes; do
    rstat "$PSOCK" "$key" | grep -q . || { echo "primary STATS missing $key"; exit 1; }
    rstat "$RSOCK" "$key" | grep -q . || { echo "replica STATS missing $key"; exit 1; }
  done
  [ "$(rstat "$PSOCK" role)" = 0 ] || { echo "primary role != 0"; exit 1; }
  [ "$(rstat "$RSOCK" role)" = 1 ] || { echo "replica role != 1"; exit 1; }
  [ "$(rstat "$PSOCK" replicas_connected)" -ge 1 ] \
    || { echo "primary sees no followers"; exit 1; }
  [ "$(rstat "$PSOCK" journal_bytes)" -gt 0 ] \
    || { echo "primary journal is empty after a commit"; exit 1; }

  # ROLE on both ends; the replica names its primary.
  $GUARDED client --socket "$PSOCK" -e ROLE | grep -q "^ROLE primary" \
    || { echo "primary ROLE wrong"; exit 1; }
  $GUARDED client --socket "$RSOCK" -e ROLE | grep "^ROLE replica" | grep -q "primary=" \
    || { echo "replica ROLE wrong"; exit 1; }

  # Writes to the replica are refused with a redirect naming the
  # primary (the client exits nonzero on ERROR replies).
  REDIR=$($GUARDED client --socket "$RSOCK" --exec="+e(e, f)." --exec=COMMIT || true)
  echo "$REDIR" | grep -q "^ERROR redirect" \
    || { echo "replica accepted a write: $REDIR"; exit 1; }
  echo "$REDIR" | grep -q "$PSOCK" \
    || { echo "redirect does not name the primary: $REDIR"; exit 1; }

  # A live commit streams through the journal and is served.
  $GUARDED client --socket "$PSOCK" --exec="+e(e, f)." --exec=COMMIT \
    | grep -q "^COMMITTED" || { echo "second primary commit failed"; exit 1; }
  drain 2
  R2=$($GUARDED client --socket "$RSOCK" -e "? path" | head -1)
  [ "$R2" = "ANSWERS 15" ] || { echo "replica missed the commit: $R2"; exit 1; }

  # Warm failover: kill the primary, promote the replica over the
  # wire, and commit against the promoted node.
  kill -TERM "$SERVER_PID"
  for _ in $(seq 1 50); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.2
  done
  kill -0 "$SERVER_PID" 2>/dev/null \
    && { echo "primary did not stop on SIGTERM"; cat "$WORK/primary.log"; exit 1; }
  $GUARDED client --socket "$RSOCK" -e PROMOTE | grep -q "^ROLE primary" \
    || { echo "PROMOTE did not flip the role"; exit 1; }
  [ "$(rstat "$RSOCK" role)" = 0 ] || { echo "promoted role != 0"; exit 1; }
  $GUARDED client --socket "$RSOCK" --exec="+e(f, g)." --exec=COMMIT \
    | grep -q "^COMMITTED" || { echo "commit on the promoted node failed"; exit 1; }
  POST=$($GUARDED client --socket "$RSOCK" -e "? path" | head -1)
  [ "$POST" = "ANSWERS 21" ] || { echo "promoted node: expected ANSWERS 21, got: $POST"; exit 1; }

  kill -TERM "$REPLICA_PID"
  for _ in $(seq 1 50); do
    kill -0 "$REPLICA_PID" 2>/dev/null || break
    sleep 0.2
  done
  kill -0 "$REPLICA_PID" 2>/dev/null \
    && { echo "replica did not stop on SIGTERM"; cat "$WORK/replica.log"; exit 1; }
  grep -q "server stopped" "$WORK/replica.log" \
    || { echo "no clean replica shutdown logged"; cat "$WORK/replica.log"; exit 1; }

  echo "server smoke: OK (domains=$DOMAINS, mode=$MODE)"
  exit 0
fi

if [ "$MODE" = demand ]; then
  $GUARDED listen "$WORK/path.rules" "$WORK/path.db" \
    --socket "$SOCK" --demand --domains "$DOMAINS" \
    2> "$WORK/listen.log" &
else
  $GUARDED listen "$WORK/path.rules" "$WORK/path.db" \
    --socket "$SOCK" --snapshot "$SNAP" --domains "$DOMAINS" \
    2> "$WORK/listen.log" &
fi
SERVER_PID=$!

for _ in $(seq 1 50); do
  [ -S "$SOCK" ] && break
  sleep 0.2
done
[ -S "$SOCK" ] || { echo "server did not come up"; cat "$WORK/listen.log"; exit 1; }

# STATS helpers: every cache counter key (satellite 2 of ISSUE 7) and
# every event-loop counter key (satellite 2 of ISSUE 8) must be
# present, and the monotone ones must never decrease across two
# identical queries.
stat_of() { # stat_of FILE KEY
  awk -v key="$2" '$1 == key { print $2; found = 1 } END { if (!found) exit 1 }' "$1"
}
take_stats() { # take_stats FILE
  $GUARDED client --socket "$SOCK" -e STATS > "$1"
  for key in cache_hits cache_misses cache_entries cache_evictions heap_kb demand \
             connections_open bytes_buffered backpressure_stalls load_facts; do
    stat_of "$1" "$key" > /dev/null \
      || { echo "STATS missing key $key"; cat "$1"; exit 1; }
  done
}

take_stats "$WORK/stats0.out"
WANT_DEMAND=0; [ "$MODE" = demand ] && WANT_DEMAND=1
[ "$(stat_of "$WORK/stats0.out" demand)" = "$WANT_DEMAND" ] \
  || { echo "STATS demand flag wrong for mode $MODE"; cat "$WORK/stats0.out"; exit 1; }

# Two identical queries with STATS around them: counters stay monotone
# in both modes; in demand mode the second query must hit the cache.
$GUARDED client --socket "$SOCK" -e "? path" > /dev/null
take_stats "$WORK/stats1.out"
$GUARDED client --socket "$SOCK" -e "? path" > /dev/null
take_stats "$WORK/stats2.out"
for key in cache_hits cache_misses cache_evictions backpressure_stalls load_facts; do
  V1=$(stat_of "$WORK/stats1.out" "$key")
  V2=$(stat_of "$WORK/stats2.out" "$key")
  [ "$V2" -ge "$V1" ] || { echo "$key not monotone: $V1 -> $V2"; exit 1; }
done
if [ "$MODE" = demand ]; then
  H1=$(stat_of "$WORK/stats1.out" cache_hits)
  H2=$(stat_of "$WORK/stats2.out" cache_hits)
  [ "$H2" -gt "$H1" ] || { echo "repeat query did not hit the cache: $H1 -> $H2"; exit 1; }
  [ "$(stat_of "$WORK/stats2.out" cache_entries)" -ge 1 ] \
    || { echo "no cache entries after queries"; cat "$WORK/stats2.out"; exit 1; }
else
  # Materialized serving has no subgoal cache: counters stay zero.
  [ "$(stat_of "$WORK/stats2.out" cache_hits)" = 0 ] \
    || { echo "materialized mode reported cache hits"; cat "$WORK/stats2.out"; exit 1; }
fi

# ~50 queries across the protocol's query forms.
for _ in $(seq 1 16); do
  $GUARDED client --socket "$SOCK" \
    -e "? path" \
    -e "? path(a, ?X)" \
    -e "?? path(X, Y), path(Y, Z) -> two(X, Z)." \
    > /dev/null
done

# Before the update: 6 paths over the 3-edge chain.
BEFORE=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$BEFORE" = "ANSWERS 6" ] || { echo "expected ANSWERS 6, got: $BEFORE"; exit 1; }

# An update batch: extend the chain, retire the first edge.
$GUARDED client --socket "$SOCK" \
  --exec="+e(d, e)." --exec="-e(a, b)." --exec=COMMIT --exec=STATS > "$WORK/commit.out"
grep -q "^COMMITTED" "$WORK/commit.out" || { echo "commit failed"; cat "$WORK/commit.out"; exit 1; }

AFTER=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$AFTER" = "ANSWERS 6" ] || { echo "expected ANSWERS 6 after update, got: $AFTER"; exit 1; }
$GUARDED client --socket "$SOCK" -e "? path(a, ?X)" | head -1 | grep -qx "ANSWERS 0" \
  || { echo "deleted edge still answers"; exit 1; }

# Bulk ingest over the binary LOAD path: 200 disjoint edges staged by
# `guarded load` in one go, committed, and served; load_facts must
# count them (it is monotone and was 0 until now).
seq 1 200 | awk '{ printf "e(u%d, v%d).\n", $1, $1 }' > "$WORK/bulk.db"
$GUARDED load "$WORK/bulk.db" --socket "$SOCK" --chunk 64 > "$WORK/load.out"
grep -q "^staged 200 facts" "$WORK/load.out" \
  || { echo "bulk load did not stage 200 facts"; cat "$WORK/load.out"; exit 1; }
grep -q "^committed: +" "$WORK/load.out" \
  || { echo "bulk load did not commit"; cat "$WORK/load.out"; exit 1; }
BULK=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
[ "$BULK" = "ANSWERS 206" ] \
  || { echo "expected ANSWERS 206 after the bulk load, got: $BULK"; exit 1; }
take_stats "$WORK/stats_load.out"
[ "$(stat_of "$WORK/stats_load.out" load_facts)" -ge 200 ] \
  || { echo "load_facts did not count the bulk load"; cat "$WORK/stats_load.out"; exit 1; }

if [ "$MODE" = demand ]; then
  # The commit invalidated path's component; snapshots are refused.
  take_stats "$WORK/stats3.out"
  [ "$(stat_of "$WORK/stats3.out" cache_evictions)" -ge 1 ] \
    || { echo "commit did not evict cached subgoals"; cat "$WORK/stats3.out"; exit 1; }
  # The client exits nonzero on an ERROR reply; what matters here is
  # the refusal itself.
  SNAP_REPLY=$($GUARDED client --socket "$SOCK" -e "SNAPSHOT" || true)
  echo "$SNAP_REPLY" | head -1 | grep -q "^ERROR" \
    || { echo "snapshot accepted in demand mode: $SNAP_REPLY"; exit 1; }
else
  # Persist, then check the snapshot below after shutdown.
  $GUARDED client --socket "$SOCK" -e "SNAPSHOT" | grep -qx "OK" || { echo "snapshot failed"; exit 1; }
fi

# Graceful shutdown on SIGTERM.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "server did not stop on SIGTERM"; cat "$WORK/listen.log"; exit 1
fi
grep -q "server stopped" "$WORK/listen.log" || { echo "no clean shutdown logged"; cat "$WORK/listen.log"; exit 1; }

if [ "$MODE" = materialized ]; then
  [ -f "$SNAP" ] || { echo "snapshot file missing"; exit 1; }

  # Warm restart from the snapshot (no DATABASE argument) serves the
  # updated state.
  $GUARDED listen "$WORK/path.rules" --socket "$SOCK" --snapshot "$SNAP" \
    2>> "$WORK/listen.log" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    [ -S "$SOCK" ] && break
    sleep 0.2
  done
  WARM=$($GUARDED client --socket "$SOCK" -e "? path" | head -1)
  [ "$WARM" = "ANSWERS 206" ] || { echo "warm restart: expected ANSWERS 206, got: $WARM"; exit 1; }
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
fi

echo "server smoke: OK (domains=$DOMAINS, mode=$MODE)"
