#!/usr/bin/env bash
# Performance gate (ISSUE 6, satellite 6): build, run the join-engine
# and column-store property suites, re-record the tracked bench
# sections and fail if any of them regressed past the wall-clock or
# memory limits of the committed baseline.
#
# Usage: scripts/perf_gate.sh [BASELINE.json]
#
# The baseline defaults to BENCH_6.json (the first recording that
# carries the alloc_mb/heap_mb memory metrics; against older baselines
# the memory gate skips per section). The recording is left in
# current.json for inspection.
set -euo pipefail

BASELINE="${1:-BENCH_6.json}"
[ -f "$BASELINE" ] || { echo "perf_gate: baseline $BASELINE not found"; exit 2; }

dune build

# The join engine's equivalence suites: WCOJ and binary executors vs
# scan references, planner-choice invariance, sorted-run primitives vs
# list references.
dune exec test/test_main.exe -- test join-engine
dune exec test/test_main.exe -- test colstore

# Re-record the tracked sections (sequential and 2-domain legs, like
# the committed baseline) and gate: >2x wall-clock plus 0.25s slack, or
# >2x allocation/heap plus 64MB slack, on any section fails the build.
dune exec bench/main.exe -- \
  --json current.json --domains 1,2 fig2 thm1 thm2 thm5 sat incr serve joins micro
dune exec bench/regress.exe -- "$BASELINE" current.json

echo "perf gate: OK (baseline $BASELINE)"
