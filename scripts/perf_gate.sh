#!/usr/bin/env bash
# Performance gate (ISSUE 6, satellite 6; extended for ISSUEs 7-9):
# build, run the join-engine, column-store, demand-serving, server and
# replication suites, re-record the tracked bench sections and fail if
# any of them regressed past the wall-clock or memory limits of the
# committed baseline, or if a section's own acceptance checks stop
# holding:
#   - demand: >=2x lower resident heap than materialization, hot
#     queries >=5x faster than cold;
#   - serve: the light-client sweep sustains >=1000 concurrent
#     connections with zero failures (p95 latency reported);
#   - serve replicas: the 0/1/2-replica sweep drains to lag 0 with
#     zero failures and replica answers agreeing with the primary;
#   - ingest: binary LOAD stages a >=100k-fact EDB >=5x faster than
#     the equivalent +fact. text stream, with equal resulting EDBs;
#   - analyze: the acyclicity deciders classify every termination-zoo
#     chain per its ground truth with verified certificates, and
#     finite-chase serving agrees with the translation backend across
#     an update schedule.
#
# Usage: scripts/perf_gate.sh [BASELINE.json]
#
# The baseline defaults to BENCH_10.json (the first recording that
# carries the analyze section; against older baselines the new
# sections are reported and ignored). The recording is left in
# current.json for inspection.
set -euo pipefail

BASELINE="${1:-BENCH_10.json}"
[ -f "$BASELINE" ] || { echo "perf_gate: baseline $BASELINE not found"; exit 2; }

dune build

# The join engine's equivalence suites: WCOJ and binary executors vs
# scan references, planner-choice invariance, sorted-run primitives vs
# list references.
dune exec test/test_main.exe -- test join-engine
dune exec test/test_main.exe -- test colstore
# The demand-serving oracle: 110 randomized schedules where the
# demand backend must agree with the materialized one.
dune exec test/test_main.exe -- test demand
# The server suite: framing, chunked-delivery invariance, LOAD = text
# ingest equivalence, concurrency oracles.
dune exec test/test_main.exe -- test server
# The replication suite: journal/backoff/failover units, wire repl
# verbs, bootstrap equivalence, the 110-schedule cluster oracle and
# the kill-primary/promote oracles.
dune exec test/test_main.exe -- test repl
# The termination-analysis suite: decider certificates vs the zoo
# ground truth, the certified-implies-saturating prover property, and
# the 110-schedule chase-serving-vs-translation oracle.
dune exec test/test_main.exe -- test analysis

# Re-record the tracked sections (sequential and 2-domain legs, like
# the committed baseline) and gate: >2x wall-clock plus 0.25s slack, or
# >2x allocation/heap plus 64MB slack, on any section fails the build.
dune exec bench/main.exe -- \
  --json current.json --domains 1,2 \
  fig2 thm1 thm2 thm5 sat incr serve ingest demand analyze joins micro \
  | tee current.out
dune exec bench/regress.exe -- "$BASELINE" current.json

# Each gated section prints one "<section> ... check: ok (...)" line
# per acceptance criterion; any FAILED line, or a missing ok line,
# fails the gate.
if grep -q "check: FAILED" current.out; then
  echo "perf_gate: an acceptance check failed"; exit 1
fi
grep -q "demand heap check.*: ok" current.out \
  || { echo "perf_gate: demand heap check line missing"; exit 1; }
grep -q "demand hot-query check.*: ok" current.out \
  || { echo "perf_gate: demand hot-query check line missing"; exit 1; }
grep -q "serve light-client check: ok" current.out \
  || { echo "perf_gate: serve light-client check line missing"; exit 1; }
grep -q "serve replica check: ok" current.out \
  || { echo "perf_gate: serve replica check line missing"; exit 1; }
grep -q "ingest speedup check: ok" current.out \
  || { echo "perf_gate: ingest speedup check line missing"; exit 1; }
grep -q "analyze decider check: ok" current.out \
  || { echo "perf_gate: analyze decider check line missing"; exit 1; }
grep -q "analyze serving check: ok" current.out \
  || { echo "perf_gate: analyze serving check line missing"; exit 1; }

echo "perf gate: OK (baseline $BASELINE)"
