(** The poll(2)-driven reactor; see the interface for the design. *)

open Guarded_core
module Incr = Guarded_incr.Incr
module Demand = Guarded_incr.Demand
module Chase_mat = Guarded_incr.Chase_mat
module Delta = Guarded_incr.Delta

type address = Unix_socket of string | Tcp of string * int

let string_of_address = function
  | Unix_socket p -> "unix:" ^ p
  | Tcp (h, p) -> Fmt.str "tcp:%s:%d" h p

(* Accepts the printed form, plus the bare "host:port" and bare-path
   shorthands the CLI takes. *)
let address_of_string s =
  let s = String.trim s in
  let drop n = String.sub s n (String.length s - n) in
  if String.length s > 5 && String.sub s 0 5 = "unix:" then Stdlib.Ok (Unix_socket (drop 5))
  else
    let explicit_tcp = String.length s > 4 && String.sub s 0 4 = "tcp:" in
    let body = if explicit_tcp then drop 4 else s in
    match String.rindex_opt body ':' with
    | Some i -> (
      let host = String.sub body 0 i in
      let port = String.sub body (i + 1) (String.length body - i - 1) in
      match int_of_string_opt port with
      | Some p when host <> "" && p >= 0 -> Stdlib.Ok (Tcp (host, p))
      | _ ->
        if explicit_tcp then Error (Fmt.str "address %S: expected tcp:HOST:PORT" s)
        else Stdlib.Ok (Unix_socket s))
    | None ->
      if explicit_tcp then Error (Fmt.str "address %S: expected tcp:HOST:PORT" s)
      else if s = "" then Error "empty address"
      else Stdlib.Ok (Unix_socket s)

(* Whether this server accepts writes; a replica names its primary so
   write attempts can be redirected there. *)
type role = Primary | Replica_of of string

(* Backpressure water marks on a connection's output buffer: reads
   pause above [high_water] and resume once a flush drains the buffer
   to [low_water]. *)
let high_water = 1 lsl 20
let low_water = 64 * 1024

(* A connection may pipeline requests ahead of their answers; past
   this many parsed-but-unanswered requests its reads pause too (the
   output-side water marks cannot see requests whose responses do not
   exist yet). *)
let max_pending = 4096

(* Staged updates live on the connection, as reversed lists: +/-
   accumulate here in O(1) per fact, LOAD blocks are kept raw (staging
   one is a pointer push, decoding waits for the COMMIT worker), and
   only COMMIT materializes the {!Delta.t}. Only the reactor touches a
   session while the connection is idle; only the owning worker while
   it is busy. *)
type session = {
  mutable adds_rev : Atom.t list;
  mutable dels_rev : Atom.t list;
  mutable loads_rev : Wire.fact_block list;
}

(* Parsed input units, kept in arrival order so responses — including
   parse errors — come back in the order the requests went in. [Bad]
   answers with ERROR and keeps the connection; [Fatal] answers with
   ERROR and closes it (oversized frame: the payload was never
   buffered, so nothing after it can be framed again). *)
type pitem =
  | Req of Wire.request
  | Bad of string
  | Fatal of string

type conn = {
  cid : int;  (** table key — not the fd, which the kernel reuses *)
  fd : Unix.file_descr;
  rbuf : Iobuf.t;
  wbuf : Iobuf.t;
  pending : pitem Queue.t;
  mutable busy : bool;  (** a worker owns the head request *)
  mutable eof : bool;  (** no more input will be read *)
  mutable closing : bool;  (** close once [wbuf] drains *)
  mutable stalled : bool;  (** reads paused by backpressure *)
  mutable closed : bool;
  mutable follow_from : int option;
      (** a follower: next journal epoch to stream to this connection *)
  session : session;
}

(* Reactor-computed gauges frozen into a STATS job at dispatch time,
   so the worker needs no access to the connection table. *)
type gauges = {
  g_connections : int;
  g_total : int;
  g_bytes_buffered : int;
  g_stalls : int;
  g_load_facts : int;
  g_role : int;
  g_replicas : int;
}

type job = { j_conn : conn; j_req : Wire.request; j_gauges : gauges option }

(* What a completion does to its connection beyond carrying the
   response: [C_follow n] turns it into a follower streamed journal
   records from epoch [n] on. *)
type comp_action = C_keep | C_follow of int

type t = {
  state : State.t;
  snapshot_path : string option;
  log : string -> unit;
  listener : Unix.file_descr;
  bound : address;
  (* Self-pipe: workers and [stop] write a byte to interrupt the
     reactor's poll — shutdown and completions never wait out a
     timeout. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  (* Reactor-owned; no other thread touches these. *)
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  (* Reactor -> workers. *)
  jobs : job Queue.t;
  jobs_mutex : Mutex.t;
  jobs_cond : Condition.t;
  mutable jobs_stop : bool;
  (* Workers -> reactor. *)
  completions : (conn * Wire.response * comp_action) Queue.t;
  comp_mutex : Mutex.t;
  (* Counters readable from any thread. *)
  metrics_mutex : Mutex.t;
  mutable m_connections_open : int;
  mutable m_total_connections : int;
  mutable m_backpressure_stalls : int;
  mutable m_load_facts : int;
  (* Replication: the role is read per-request and flipped by PROMOTE
     (possibly from a signal context), [lag_source]/[promote_hook] are
     wired by the replica controller before serving starts. *)
  mutable m_role : role;
  mutable lag_source : unit -> int;
  mutable promote_hook : unit -> unit;
  stopping : bool Atomic.t;
  mutable reactor : Thread.t option;
  mutable workers : Thread.t list;
  stop_mutex : Mutex.t;
  mutable stopped : bool;
}

let address t = t.bound

let connections t =
  Mutex.lock t.metrics_mutex;
  let n = t.m_connections_open in
  Mutex.unlock t.metrics_mutex;
  n

let role t =
  Mutex.lock t.metrics_mutex;
  let r = t.m_role in
  Mutex.unlock t.metrics_mutex;
  r

let set_lag_source t f = t.lag_source <- f
let set_promote_hook t f = t.promote_hook <- f

let role_reply t =
  let epoch = State.epoch t.state in
  match role t with
  | Primary ->
    Wire.Role_reply { rr_primary = true; rr_epoch = epoch; rr_lag = 0; rr_primary_addr = None }
  | Replica_of addr ->
    Wire.Role_reply
      { rr_primary = false; rr_epoch = epoch; rr_lag = t.lag_source (); rr_primary_addr = Some addr }

let wake_byte = Bytes.make 1 '\001'

(* Best effort: a full pipe already guarantees a pending wakeup, and a
   closed one means the reactor is gone. *)
let wake t =
  match Unix.write t.wake_w wake_byte 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

(* Warm failover: flip a replica into a writable primary. The hook
   (the replica controller's stop-following) runs outside the metrics
   mutex, once, on whichever thread promoted first — the reactor for a
   PROMOTE verb, a signal context when the primary's death is
   detected. *)
let promote t =
  Mutex.lock t.metrics_mutex;
  let was_replica = match t.m_role with Replica_of _ -> true | Primary -> false in
  t.m_role <- Primary;
  Mutex.unlock t.metrics_mutex;
  if was_replica then begin
    t.promote_hook ();
    t.log "promoted to primary";
    wake t
  end

(* ------------------------------------------------------------------ *)
(* Query evaluation (runs on worker threads)                           *)

(* [? REL(pattern)]: stream index candidates, confirm each against the
   pattern, keep the matched argument tuples. Constants-only, like
   [Incr.answers]. *)
let pattern_answers incr rel pattern =
  let pat = Atom.make rel pattern in
  let db = Incr.db incr in
  let out = ref [] in
  Database.iter_candidates db pat (fun fact ->
      if Atom.ann fact = [] then
        match Subst.match_atom Subst.empty pat fact with
        | Some _ when List.for_all (function Term.Const _ -> true | _ -> false) (Atom.args fact)
          ->
          out := Atom.args fact :: !out
        | _ -> ());
  List.sort_uniq (List.compare Term.compare) !out

let eval_query state (req : Wire.request) : Wire.response =
  let t0 = Unix.gettimeofday () in
  let resp =
    State.with_backend state (fun backend ->
        match (req, backend) with
        | Wire.Query { rel; pattern = None }, State.Materialized incr ->
          Wire.Answers (Incr.answers incr ~query:rel)
        | Wire.Query { rel; pattern = None }, State.Demand d ->
          Wire.Answers (Demand.answers d ~query:rel)
        | Wire.Query { rel; pattern = None }, State.Chase c ->
          Wire.Answers (Chase_mat.answers c ~query:rel)
        | Wire.Query { rel; pattern = Some pat }, State.Materialized incr ->
          Wire.Answers (pattern_answers incr rel pat)
        | Wire.Query { rel; pattern = Some pat }, State.Demand d ->
          Wire.Answers (Demand.pattern_answers d ~rel ~pattern:pat)
        | Wire.Query { rel; pattern = Some pat }, State.Chase c ->
          Wire.Answers (Chase_mat.pattern_answers c ~rel ~pattern:pat)
        | Wire.Cq (ucq, _), _ ->
          let cq_answers (cq : Guarded_cq.Cq.t) =
            match backend with
            | State.Materialized incr ->
              Incr.cq_answers incr ~body:cq.body ~answer_vars:cq.answer_vars
            | State.Demand d -> Demand.cq_answers d ~body:cq.body ~answer_vars:cq.answer_vars
            | State.Chase c -> Chase_mat.cq_answers c ~body:cq.body ~answer_vars:cq.answer_vars
          in
          let tuples = List.concat_map cq_answers ucq.Guarded_cq.Ucq.disjuncts in
          Wire.Answers (List.sort_uniq (List.compare Term.compare) tuples)
        | _ -> assert false)
  in
  State.note_query state (Unix.gettimeofday () -. t0);
  resp

let save_snapshot t path =
  let sigma, dump =
    State.with_read t.state (fun incr -> (Incr.program incr, Incr.dump incr))
  in
  Snapshot.save ~path sigma dump;
  t.log (Fmt.str "snapshot saved to %s (%d EDB facts)" path (Database.cardinal dump.Incr.d_edb))

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)

let run_job t (job : job) : Wire.response * comp_action =
  match job.j_req with
  | Wire.Query _ | Wire.Cq _ -> (eval_query t.state job.j_req, C_keep)
  | Wire.Commit -> (
    (* The connection is [busy] for the whole job, so the session is
       ours alone here. Staged LOAD blocks decode now, on this worker —
       never on the reactor — and a corrupt block fails the COMMIT and
       discards the whole staged batch. *)
    let s = job.j_conn.session in
    let additions = List.rev s.adds_rev
    and deletions = List.rev s.dels_rev
    and loads = List.rev s.loads_rev in
    s.adds_rev <- [];
    s.dels_rev <- [];
    s.loads_rev <- [];
    let decoded =
      List.fold_left
        (fun acc b ->
          match acc with
          | Error _ -> acc
          | Ok fss -> (
            match Wire.facts_of_load b with
            | Ok fs -> Ok (fs :: fss)
            | Error msg -> Error msg))
        (Ok []) loads
    in
    match decoded with
    | Error msg -> (Wire.Failed msg, C_keep)
    | Ok loaded_rev -> (
      let additions = List.concat (additions :: List.rev loaded_rev) in
      let delta = Delta.of_lists ~additions ~deletions in
      match State.commit t.state delta with
      | Ok r ->
        (Wire.Committed { added = r.cr_added; removed = r.cr_removed; epoch = r.cr_epoch }, C_keep)
      | Error msg -> (Wire.Failed msg, C_keep)))
  | Wire.Stats ->
    let g =
      match job.j_gauges with
      | Some g -> g
      | None ->
        {
          g_connections = 0;
          g_total = 0;
          g_bytes_buffered = 0;
          g_stalls = 0;
          g_load_facts = 0;
          g_role = 0;
          g_replicas = 0;
        }
    in
    ( Wire.Stats_reply
        (State.stats t.state ~connections:g.g_connections ~total_connections:g.g_total
           ~bytes_buffered:g.g_bytes_buffered ~backpressure_stalls:g.g_stalls
           ~load_facts:g.g_load_facts ~role:g.g_role ~replicas_connected:g.g_replicas
           ~replication_lag:(if g.g_role = 1 then t.lag_source () else 0)
           ()),
      C_keep )
  | Wire.Snapshot path -> (
    if State.demand_mode t.state then
      (* Nothing is materialized, so there is no per-stratum dump to
         persist; the EDB is the client's data, not ours to snapshot. *)
      (Wire.Failed "snapshots are not available in demand mode", C_keep)
    else if State.chase_mode t.state then
      (* The chase store holds nulls, which the snapshot codec does not
         carry; re-chasing the EDB at startup is the recovery path. *)
      (Wire.Failed "snapshots are not available in chase mode", C_keep)
    else
      match (path, t.snapshot_path) with
      | None, None ->
        (Wire.Failed "no snapshot path configured (start with --snapshot or give one)", C_keep)
      | Some p, _ | None, Some p -> (
        match save_snapshot t p with
        | () -> (Wire.Ok, C_keep)
        | exception Sys_error m -> (Wire.Failed m, C_keep)))
  | Wire.Follow since ->
    if State.demand_mode t.state then
      (Wire.Failed "replication is not available in demand mode", C_keep)
    else if State.chase_mode t.state then
      (Wire.Failed "replication is not available in chase mode", C_keep)
    else
      (* Under the shared lock the decision is consistent: the epoch
         cannot advance while we check journal coverage or dump the
         materialization, so the follower misses no record between its
         base and the stream. *)
      State.with_read t.state (fun incr ->
          let epoch = State.epoch t.state in
          let j = match State.journal t.state with Some j -> j | None -> assert false in
          if since > epoch then
            ( Wire.Failed
                (Fmt.str "follow: resume epoch %d is ahead of this server's %d" since epoch),
              C_keep )
          else if since >= 0 && Journal.covers j ~since ~epoch then
            (* Cheap path: replay from the journal alone. *)
            (Wire.Following epoch, C_follow (since + 1))
          else
            (* The journal no longer reaches back to [since] (or the
               follower holds nothing): ship a full image of this
               epoch, then stream from the next one. *)
            let image = Snapshot.encode (Incr.program incr) (Incr.dump incr) in
            (* The image travels in one SNAP frame; past the wire's
               frame limit the follower's [read_frame] would reject it
               unread and burn its retry budget on a bootstrap that can
               never succeed — refuse with a parseable ERROR instead.
               64 bytes of slack covers the textual SNAP header. *)
            if String.length image + 64 > Wire.max_frame then
              ( Wire.Failed
                  (Fmt.str
                     "follow: snapshot image of %d bytes exceeds the %d-byte frame limit; \
                      bootstrap from a file snapshot or resume from a retained journal epoch"
                     (String.length image) Wire.max_frame),
                C_keep )
            else (Wire.Snap { sn_epoch = epoch; sn_bytes = image }, C_follow (epoch + 1)))
  | Wire.Add _ | Wire.Remove _ | Wire.Load _ | Wire.Role | Wire.Promote | Wire.Quit ->
    (* Handled inline by the reactor; never dispatched. *)
    assert false

let worker_loop t =
  let rec loop () =
    Mutex.lock t.jobs_mutex;
    while Queue.is_empty t.jobs && not t.jobs_stop do
      Condition.wait t.jobs_cond t.jobs_mutex
    done;
    match Queue.take_opt t.jobs with
    | None -> Mutex.unlock t.jobs_mutex (* stopping with an empty queue *)
    | Some job ->
      Mutex.unlock t.jobs_mutex;
      let resp, action =
        try run_job t job
        with Invalid_argument m | Failure m -> (Wire.Failed m, C_keep)
      in
      Mutex.lock t.comp_mutex;
      Queue.add (job.j_conn, resp, action) t.completions;
      Mutex.unlock t.comp_mutex;
      wake t;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Reactor: connection bookkeeping                                     *)

let close_conn t c =
  if not c.closed then begin
    c.closed <- true;
    Hashtbl.remove t.conns c.cid;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.metrics_mutex;
    t.m_connections_open <- t.m_connections_open - 1;
    Mutex.unlock t.metrics_mutex
  end

(* Append one framed payload to the connection's write buffer; the
   flush phase drains it once per tick, so pipelined responses share
   write(2) calls. *)
let enqueue_payload c payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  Iobuf.add_subbytes c.wbuf hdr 0 4;
  Iobuf.add_string c.wbuf payload

let enqueue_response c resp = enqueue_payload c (Wire.print_response resp)

let update_stall t c =
  if (not c.stalled) && Iobuf.length c.wbuf > high_water then begin
    c.stalled <- true;
    Mutex.lock t.metrics_mutex;
    t.m_backpressure_stalls <- t.m_backpressure_stalls + 1;
    Mutex.unlock t.metrics_mutex
  end
  else if c.stalled && Iobuf.length c.wbuf <= low_water then c.stalled <- false

let dispatch t c req =
  let gauges =
    match req with
    | Wire.Stats ->
      let bytes = Hashtbl.fold (fun _ c acc -> acc + Iobuf.length c.wbuf) t.conns 0 in
      let replicas =
        Hashtbl.fold (fun _ c acc -> if c.follow_from <> None then acc + 1 else acc) t.conns 0
      in
      Mutex.lock t.metrics_mutex;
      let g =
        {
          g_connections = t.m_connections_open;
          g_total = t.m_total_connections;
          g_bytes_buffered = bytes;
          g_stalls = t.m_backpressure_stalls;
          g_load_facts = t.m_load_facts;
          g_role = (match t.m_role with Primary -> 0 | Replica_of _ -> 1);
          g_replicas = replicas;
        }
      in
      Mutex.unlock t.metrics_mutex;
      Some g
    | _ -> None
  in
  Mutex.lock t.jobs_mutex;
  Queue.add { j_conn = c; j_req = req; j_gauges = gauges } t.jobs;
  Condition.signal t.jobs_cond;
  Mutex.unlock t.jobs_mutex

(* Drain the connection's pending queue in order: staging requests are
   answered inline, anything touching the state goes to a worker —
   which marks the connection busy until its completion comes back, so
   per-connection response order is submission order. *)
let process_ready t c =
  let continue = ref true in
  while !continue && (not c.busy) && (not c.closing) && not (Queue.is_empty c.pending) do
    match Queue.pop c.pending with
    | Bad msg -> enqueue_response c (Wire.Failed msg)
    | Fatal msg ->
      enqueue_response c (Wire.Failed msg);
      c.closing <- true
    | Req req -> (
      (* A read-only replica refuses the whole write path with a
         redirect naming its primary; everything else serves locally. *)
      let redirect =
        match req with
        | Wire.Add _ | Wire.Remove _ | Wire.Load _ | Wire.Commit -> (
          match role t with
          | Primary -> None
          | Replica_of addr -> Some addr)
        | _ -> None
      in
      match redirect with
      | Some addr ->
        enqueue_response c
          (Wire.Failed (Fmt.str "redirect %s: this server is a read-only replica" addr))
      | None -> (
      match req with
      | Wire.Add a ->
        (* The parser only produces ground facts, so staging is a cons. *)
        c.session.adds_rev <- a :: c.session.adds_rev;
        enqueue_response c Wire.Ok
      | Wire.Remove a ->
        c.session.dels_rev <- a :: c.session.dels_rev;
        enqueue_response c Wire.Ok
      | Wire.Load b ->
        (* Staging keeps the block raw; the COMMIT worker decodes it.
           The count is the header's claim — a lying header surfaces as
           a failed COMMIT, not a failed LOAD. *)
        c.session.loads_rev <- b :: c.session.loads_rev;
        Mutex.lock t.metrics_mutex;
        t.m_load_facts <- t.m_load_facts + b.Wire.fb_count;
        Mutex.unlock t.metrics_mutex;
        enqueue_response c (Wire.Loaded b.Wire.fb_count)
      | Wire.Role -> enqueue_response c (role_reply t)
      | Wire.Promote ->
        promote t;
        enqueue_response c (role_reply t)
      | Wire.Quit ->
        enqueue_response c Wire.Bye;
        c.closing <- true
      | Wire.Query _ | Wire.Cq _ | Wire.Commit | Wire.Stats | Wire.Snapshot _ | Wire.Follow _ ->
        c.busy <- true;
        dispatch t c req;
        continue := false))
  done

(* Cut every complete frame off the front of the read buffer. An
   oversized declared length is fatal: its payload is never buffered,
   so the stream cannot be re-framed — answer ERROR (in order) and
   stop reading. *)
let cut_frames t c =
  let continue = ref true in
  while !continue do
    match Iobuf.peek_u32be c.rbuf with
    | None -> continue := false
    | Some len ->
      if len > Wire.max_frame then begin
        Queue.add
          (Fatal (Fmt.str "frame of %d bytes exceeds the %d-byte limit" len Wire.max_frame))
          c.pending;
        c.eof <- true;
        continue := false
      end
      else if Iobuf.length c.rbuf >= 4 + len then begin
        let payload = Iobuf.take_string c.rbuf ~off:4 ~len in
        match Wire.parse_request payload with
        | Ok req -> Queue.add (Req req) c.pending
        | Error msg -> Queue.add (Bad msg) c.pending
      end
      else continue := false
  done;
  process_ready t c

let handle_readable t c scratch =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 ->
    c.eof <- true;
    if Iobuf.length c.rbuf > 0 then begin
      (* Bytes left that no longer form a frame: the peer died mid-send. *)
      t.log "connection dropped: truncated frame";
      close_conn t c
    end
  | n ->
    Iobuf.add_subbytes c.rbuf scratch 0 n;
    cut_frames t c
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t c

let accept_ready t =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true t.listener with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      let c =
        {
          cid;
          fd;
          rbuf = Iobuf.create 4096;
          wbuf = Iobuf.create 4096;
          pending = Queue.create ();
          busy = false;
          eof = false;
          closing = false;
          stalled = false;
          closed = false;
          follow_from = None;
          session = { adds_rev = []; dels_rev = []; loads_rev = [] };
        }
      in
      Hashtbl.replace t.conns cid c;
      Mutex.lock t.metrics_mutex;
      t.m_total_connections <- t.m_total_connections + 1;
      t.m_connections_open <- t.m_connections_open + 1;
      Mutex.unlock t.metrics_mutex
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> continue := false
    | exception Unix.Unix_error ((ECONNABORTED | EMFILE | ENFILE), _, _) -> continue := false
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Reactor: the tick                                                   *)

let drain_wake t scratch =
  let continue = ref true in
  while !continue do
    match Unix.read t.wake_r scratch 0 (Bytes.length scratch) with
    | 0 -> continue := false
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> continue := false
  done

let drain_completions t =
  Mutex.lock t.comp_mutex;
  let comps = Queue.fold (fun acc x -> x :: acc) [] t.completions in
  Queue.clear t.completions;
  Mutex.unlock t.comp_mutex;
  List.iter
    (fun (c, resp, action) ->
      if not c.closed then begin
        c.busy <- false;
        enqueue_response c resp;
        (match action with
        | C_keep -> ()
        | C_follow next -> c.follow_from <- Some next);
        process_ready t c
      end)
    (List.rev comps)

(* Push retained journal records to every follower that is behind,
   skipping connections above the high-water mark (they resume when
   their buffer drains — normal backpressure). A follower whose cursor
   fell off the journal's old end cannot be caught up by replay: it is
   told to re-bootstrap and the connection closes. *)
let stream_followers t =
  match State.journal t.state with
  | None -> ()
  | Some j ->
    Hashtbl.iter
      (fun _ c ->
        match c.follow_from with
        | Some next when (not c.closed) && (not c.closing) && Iobuf.length c.wbuf <= high_water
          -> (
          (* One locked fetch: the records themselves decide both the
             truncation verdict and the new cursor, so a concurrent
             append or eviction cannot skew either. *)
          match Journal.since j (next - 1) with
          | [] -> ()
          | (first, _) :: _ when first > next ->
            enqueue_response c
              (Wire.Failed
                 (Fmt.str "journal truncated: oldest retained epoch is %d, resume wanted %d"
                    first next));
            c.follow_from <- None;
            c.closing <- true
          | records ->
            (* The record text is already the [JOURNAL] payload — frame
               it directly, no re-print of the delta. *)
            let last_sent =
              List.fold_left
                (fun _ (e, text) ->
                  enqueue_payload c (Fmt.str "JOURNAL %d\n%s" e text);
                  e)
                next records
            in
            c.follow_from <- Some (last_sent + 1))
        | _ -> ())
      t.conns

let conn_events c =
  let want_read =
    (not c.closing) && (not c.eof) && (not c.stalled) && Queue.length c.pending < max_pending
  in
  (if want_read then Evloop.pollin else 0) lor (if Iobuf.length c.wbuf > 0 then Evloop.pollout else 0)

let tick t scratch =
  let polled =
    Hashtbl.fold
      (fun _ c acc -> if conn_events c <> 0 then c :: acc else acc)
      t.conns []
  in
  let n = 2 + List.length polled in
  let fds = Array.make n t.wake_r in
  let evs = Array.make n 0 in
  let rvs = Array.make n 0 in
  evs.(0) <- Evloop.pollin;
  fds.(1) <- t.listener;
  evs.(1) <- Evloop.pollin;
  List.iteri
    (fun i c ->
      fds.(i + 2) <- c.fd;
      evs.(i + 2) <- conn_events c)
    polled;
  ignore (Evloop.poll fds evs rvs (-1));
  if Atomic.get t.stopping then ()
  else begin
    if rvs.(0) land Evloop.pollin <> 0 then drain_wake t scratch;
    drain_completions t;
    if rvs.(1) land Evloop.pollin <> 0 then accept_ready t;
    List.iteri
      (fun i c ->
        if (not c.closed) && rvs.(i + 2) land Evloop.pollin <> 0 then
          handle_readable t c scratch)
      polled;
    (* Followers first see anything a completion or commit made
       streamable, so the flush below carries it in the same tick. *)
    stream_followers t;
    (* Flush phase: one write per connection with queued output, then
       backpressure transitions and deferred closes. *)
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    List.iter
      (fun c ->
        if not c.closed then begin
          if Iobuf.length c.wbuf > 0 then begin
            match Iobuf.write c.wbuf c.fd with
            | _ -> ()
            | exception Unix.Unix_error _ -> close_conn t c
          end;
          if not c.closed then begin
            update_stall t c;
            if
              (not c.busy)
              && Iobuf.length c.wbuf = 0
              && (c.closing || (c.eof && Queue.is_empty c.pending))
            then close_conn t c
          end
        end)
      all;
    (* A follower backpressured above may have just drained: feed it
       again so the next poll registers its interest in writability
       (otherwise a quiet journal would leave it waiting on a wake). *)
    stream_followers t
  end

let reactor_loop t =
  let scratch = Bytes.create 65536 in
  while not (Atomic.get t.stopping) do
    tick t scratch
  done;
  (* Shutdown: drop every connection so blocked clients see EOF. *)
  Hashtbl.iter
    (fun _ c ->
      c.closed <- true;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  Mutex.lock t.metrics_mutex;
  t.m_connections_open <- 0;
  Mutex.unlock t.metrics_mutex;
  try Unix.close t.listener with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    (fd, Unix_socket path)
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (addr, port));
    let bound_port =
      match Unix.getsockname fd with ADDR_INET (_, p) -> p | ADDR_UNIX _ -> port
    in
    (fd, Tcp (host, bound_port))

let listen ?snapshot ?(log = fun _ -> ()) ?(workers = 4) ?(role = Primary) state addr =
  (* A client vanishing mid-reply must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  ignore (Evloop.raise_fd_limit 16384);
  let listener, bound = bind_listener addr in
  Unix.listen listener 1024;
  Unix.set_nonblock listener;
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      state;
      snapshot_path = snapshot;
      log;
      listener;
      bound;
      wake_r;
      wake_w;
      conns = Hashtbl.create 64;
      next_cid = 0;
      jobs = Queue.create ();
      jobs_mutex = Mutex.create ();
      jobs_cond = Condition.create ();
      jobs_stop = false;
      completions = Queue.create ();
      comp_mutex = Mutex.create ();
      metrics_mutex = Mutex.create ();
      m_connections_open = 0;
      m_total_connections = 0;
      m_backpressure_stalls = 0;
      m_load_facts = 0;
      m_role = role;
      lag_source = (fun () -> 0);
      promote_hook = (fun () -> ());
      stopping = Atomic.make false;
      reactor = None;
      workers = [];
      stop_mutex = Mutex.create ();
      stopped = false;
    }
  in
  (* Each commit wakes the reactor so followers stream without
     polling; the hook runs on the state's writer thread and only
     writes one self-pipe byte. *)
  State.set_commit_hook state (fun _ -> wake t);
  t.reactor <- Some (Thread.create reactor_loop t);
  t.workers <- List.init (max 1 workers) (fun _ -> Thread.create worker_loop t);
  log (Fmt.str "listening on %s" (string_of_address bound));
  t

let stop t =
  Mutex.lock t.stop_mutex;
  if t.stopped then Mutex.unlock t.stop_mutex
  else begin
    t.stopped <- true;
    Mutex.unlock t.stop_mutex;
    Atomic.set t.stopping true;
    wake t;
    Option.iter Thread.join t.reactor;
    t.reactor <- None;
    Mutex.lock t.jobs_mutex;
    t.jobs_stop <- true;
    Condition.broadcast t.jobs_cond;
    Mutex.unlock t.jobs_mutex;
    (* Workers blocked in [State.commit] finish normally: the state's
       writer thread lives until [State.shutdown] below. *)
    List.iter Thread.join t.workers;
    t.workers <- [];
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (match t.snapshot_path with
    | Some path when not (State.demand_mode t.state || State.chase_mode t.state) -> (
      try save_snapshot t path
      with Sys_error m -> t.log (Fmt.str "snapshot at shutdown failed: %s" m))
    | Some _ | None -> ());
    State.shutdown t.state;
    (match t.bound with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    t.log "server stopped"
  end
