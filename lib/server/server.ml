(** Socket acceptor and per-connection request loops. *)

open Guarded_core
module Incr = Guarded_incr.Incr
module Demand = Guarded_incr.Demand
module Delta = Guarded_incr.Delta

type address = Unix_socket of string | Tcp of string * int

type t = {
  state : State.t;
  snapshot_path : string option;
  log : string -> unit;
  listener : Unix.file_descr;
  bound : address;
  mutex : Mutex.t;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable total_connections : int;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable acceptor : Thread.t option;
}

let address t = t.bound

let connections t =
  Mutex.lock t.mutex;
  let n = List.length t.conns in
  Mutex.unlock t.mutex;
  n

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)

(* [? REL(pattern)]: stream index candidates, confirm each against the
   pattern, keep the matched argument tuples. Constants-only, like
   [Incr.answers]. *)
let pattern_answers incr rel pattern =
  let pat = Atom.make rel pattern in
  let db = Incr.db incr in
  let out = ref [] in
  Database.iter_candidates db pat (fun fact ->
      if Atom.ann fact = [] then
        match Subst.match_atom Subst.empty pat fact with
        | Some _ when List.for_all (function Term.Const _ -> true | _ -> false) (Atom.args fact)
          ->
          out := Atom.args fact :: !out
        | _ -> ());
  List.sort_uniq (List.compare Term.compare) !out

let eval_query state (req : Wire.request) : Wire.response =
  let t0 = Unix.gettimeofday () in
  let resp =
    State.with_backend state (fun backend ->
        match (req, backend) with
        | Wire.Query { rel; pattern = None }, State.Materialized incr ->
          Wire.Answers (Incr.answers incr ~query:rel)
        | Wire.Query { rel; pattern = None }, State.Demand d ->
          Wire.Answers (Demand.answers d ~query:rel)
        | Wire.Query { rel; pattern = Some pat }, State.Materialized incr ->
          Wire.Answers (pattern_answers incr rel pat)
        | Wire.Query { rel; pattern = Some pat }, State.Demand d ->
          Wire.Answers (Demand.pattern_answers d ~rel ~pattern:pat)
        | Wire.Cq (ucq, _), _ ->
          let cq_answers (cq : Guarded_cq.Cq.t) =
            match backend with
            | State.Materialized incr ->
              Incr.cq_answers incr ~body:cq.body ~answer_vars:cq.answer_vars
            | State.Demand d -> Demand.cq_answers d ~body:cq.body ~answer_vars:cq.answer_vars
          in
          let tuples = List.concat_map cq_answers ucq.Guarded_cq.Ucq.disjuncts in
          Wire.Answers (List.sort_uniq (List.compare Term.compare) tuples)
        | _ -> assert false)
  in
  State.note_query state (Unix.gettimeofday () -. t0);
  resp

(* ------------------------------------------------------------------ *)
(* Per-connection loop                                                 *)

(* Staged updates live on the connection: +/- accumulate here and only
   COMMIT submits them to the single writer. *)
type session = { mutable staged : Delta.t }

let save_snapshot t path =
  let sigma, dump =
    State.with_read t.state (fun incr -> (Incr.program incr, Incr.dump incr))
  in
  Snapshot.save ~path sigma dump;
  t.log (Fmt.str "snapshot saved to %s (%d EDB facts)" path (Database.cardinal dump.Incr.d_edb))

let handle_request t session (req : Wire.request) : Wire.response * bool =
  match req with
  | Wire.Query _ | Wire.Cq _ -> (eval_query t.state req, true)
  | Wire.Add a ->
    session.staged <- Delta.add_fact session.staged a;
    (Wire.Ok, true)
  | Wire.Remove a ->
    session.staged <- Delta.remove_fact session.staged a;
    (Wire.Ok, true)
  | Wire.Commit ->
    let delta = session.staged in
    session.staged <- Delta.empty;
    (match State.commit t.state delta with
    | Ok r -> (Wire.Committed { added = r.cr_added; removed = r.cr_removed; epoch = r.cr_epoch }, true)
    | Error msg -> (Wire.Failed msg, true))
  | Wire.Stats ->
    Mutex.lock t.mutex;
    let conns = List.length t.conns and total = t.total_connections in
    Mutex.unlock t.mutex;
    (Wire.Stats_reply (State.stats t.state ~connections:conns ~total_connections:total), true)
  | Wire.Snapshot path -> (
    if State.demand_mode t.state then
      (* Nothing is materialized, so there is no per-stratum dump to
         persist; the EDB is the client's data, not ours to snapshot. *)
      (Wire.Failed "snapshots are not available in demand mode", true)
    else
      match (path, t.snapshot_path) with
      | None, None -> (Wire.Failed "no snapshot path configured (start with --snapshot or give one)", true)
      | Some p, _ | None, Some p -> (
        match save_snapshot t p with
        | () -> (Wire.Ok, true)
        | exception Sys_error m -> (Wire.Failed m, true)))
  | Wire.Quit -> (Wire.Bye, false)

let connection_loop t fd =
  let session = { staged = Delta.empty } in
  let rec loop () =
    match Wire.read_frame fd with
    | None -> ()
    | Some payload ->
      let resp, keep_going =
        match Wire.parse_request payload with
        | Error msg -> (Wire.Failed msg, true)
        | Ok req -> (
          try handle_request t session req
          with Invalid_argument m | Failure m -> (Wire.Failed m, true))
      in
      Wire.write_frame fd (Wire.print_response resp);
      if keep_going then loop ()
  in
  (try loop () with
  | Wire.Protocol_error m -> t.log (Fmt.str "connection dropped: %s" m)
  | Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> ()
  | Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.mutex;
  t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* Acceptor                                                            *)

(* The acceptor polls with a timeout instead of blocking in [accept]:
   on Linux, closing a listener does not wake a thread already blocked
   in accept(2), so a blocking acceptor would survive [stop] and the
   join would hang. [select] returns immediately when a connection is
   pending; the timeout only bounds how long [stop] waits. *)
let accept_loop t =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.select [ t.listener ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          Mutex.lock t.mutex;
          if t.stopping then begin
            Mutex.unlock t.mutex;
            (try Unix.close fd with Unix.Unix_error _ -> ())
          end
          else begin
            t.total_connections <- t.total_connections + 1;
            let th = Thread.create (fun () -> connection_loop t fd) () in
            t.conns <- (fd, th) :: t.conns;
            Mutex.unlock t.mutex
          end;
          loop ()
        | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED | EINTR), _, _) -> loop ())
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> loop ()
  in
  loop ()

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    (fd, Unix_socket path)
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (addr, port));
    let bound_port =
      match Unix.getsockname fd with ADDR_INET (_, p) -> p | ADDR_UNIX _ -> port
    in
    (fd, Tcp (host, bound_port))

let listen ?snapshot ?(log = fun _ -> ()) state addr =
  (* A client vanishing mid-reply must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener, bound = bind_listener addr in
  Unix.listen listener 64;
  let t =
    {
      state;
      snapshot_path = snapshot;
      log;
      listener;
      bound;
      mutex = Mutex.create ();
      conns = [];
      total_connections = 0;
      stopping = false;
      stopped = false;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create accept_loop t);
  let pp_addr = function
    | Unix_socket p -> Fmt.str "unix:%s" p
    | Tcp (h, p) -> Fmt.str "tcp:%s:%d" h p
  in
  log (Fmt.str "listening on %s" (pp_addr bound));
  t

let stop t =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex
  end
  else begin
    t.stopping <- true;
    t.stopped <- true;
    let conns = t.conns in
    Mutex.unlock t.mutex;
    (* Closing the listener unblocks [accept]. *)
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    (* Shut connections down so blocked reads return EOF, then join. *)
    List.iter
      (fun (fd, _) -> try Unix.shutdown fd SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    (match t.snapshot_path with
    | Some path when not (State.demand_mode t.state) -> (
      try save_snapshot t path
      with Sys_error m -> t.log (Fmt.str "snapshot at shutdown failed: %s" m))
    | Some _ | None -> ());
    State.shutdown t.state;
    (match t.bound with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    t.log "server stopped"
  end
