(** Snapshot files: see the interface for the layout. *)

open Guarded_core
module Incr = Guarded_incr.Incr

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

let magic = "GRDSNAP1"

(* ------------------------------------------------------------------ *)
(* Body codec                                                          *)

let write_stratum buf (sd : Incr.stratum_dump) =
  Codec.write_list buf Codec.write_atom sd.sd_new;
  Codec.write_list buf
    (fun buf (a, n) ->
      Codec.write_atom buf a;
      Codec.write_varint buf n)
    sd.sd_counts

let read_stratum src : Incr.stratum_dump =
  let sd_new = Codec.read_list src Codec.read_atom in
  let sd_counts =
    Codec.read_list src (fun src ->
        let a = Codec.read_atom src in
        let n = Codec.read_varint src in
        (a, n))
  in
  { sd_new; sd_counts }

let encode_body sigma (d : Incr.dump) =
  let buf = Buffer.create 4096 in
  Codec.write_theory buf sigma;
  Codec.write_database buf d.d_edb;
  Codec.write_list buf write_stratum d.d_strata;
  Buffer.contents buf

let decode_body body =
  let src = Codec.source_of_string body in
  let sigma = Codec.read_theory src in
  let d_edb = Codec.read_database src in
  let d_strata = Codec.read_list src read_stratum in
  Codec.expect_end src;
  (sigma, { Incr.d_edb; d_strata })

(* ------------------------------------------------------------------ *)
(* Whole images: magic, length, body, checksum                         *)

(* One encoding for every transport: the file on disk and the [SNAP]
   wire payload are byte-identical, so there is exactly one validation
   chain for both. *)
let encode sigma dump =
  let body = encode_body sigma dump in
  let buf = Buffer.create (String.length body + 32) in
  Buffer.add_string buf magic;
  Codec.write_varint buf (String.length body);
  Buffer.add_string buf body;
  Codec.write_int64 buf (Codec.fnv1a body);
  Buffer.contents buf

let decode ?(what = "<snapshot>") raw =
  let n = String.length raw in
  if n < String.length magic then corrupt "%s: truncated (no magic)" what;
  let got = String.sub raw 0 (String.length magic) in
  if not (String.equal got magic) then
    if String.length got >= 7 && String.equal (String.sub got 0 7) (String.sub magic 0 7) then
      corrupt "%s: unsupported snapshot version %C (this build reads %C)" what got.[7] magic.[7]
    else corrupt "%s: not a snapshot (bad magic)" what;
  (* Skip the verified magic, then frame the body by its length. *)
  let src_skip = String.length magic in
  let raw' = String.sub raw src_skip (n - src_skip) in
  let src = Codec.source_of_string raw' in
  let body_len = try Codec.read_varint src with Codec.Corrupt m -> corrupt "%s: %s" what m in
  let header = Codec.pos src in
  if body_len < 0 || String.length raw' < header + body_len + 8 then
    corrupt "%s: truncated (body wants %d bytes)" what body_len;
  if String.length raw' > header + body_len + 8 then
    corrupt "%s: trailing garbage after checksum" what;
  let body = String.sub raw' header body_len in
  let csrc = Codec.source_of_string (String.sub raw' (header + body_len) 8) in
  let stored = Codec.read_int64 csrc in
  let actual = Codec.fnv1a body in
  if not (Int64.equal stored actual) then
    corrupt "%s: checksum mismatch (stored %Lx, body %Lx)" what stored actual;
  try decode_body body with Codec.Corrupt m -> corrupt "%s: %s" what m

let theory_equal a b =
  let sort t = List.sort Rule.compare (Theory.rules t) in
  List.equal Rule.equal (sort a) (sort b)

let restore ?pool ?(what = "<snapshot>") raw =
  let sigma, dump = decode ~what raw in
  let incr =
    try Incr.restore ?pool sigma dump with Invalid_argument m -> corrupt "%s: %s" what m
  in
  (sigma, incr)

let restore_for ?pool ?(what = "<snapshot>") raw sigma =
  let stored, incr = restore ?pool ~what raw in
  if not (theory_equal stored sigma) then
    corrupt "%s: snapshot is of a different program (%d rules vs %d served)" what
      (Theory.size stored) (Theory.size sigma);
  incr

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let save ~path sigma dump =
  let buf = encode sigma dump in
  (* Write-then-rename so a crash mid-save leaves the old file. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  (try
     let oc = open_out_bin tmp in
     Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc buf)
   with e ->
     cleanup ();
     raise e);
  try Sys.rename tmp path
  with e ->
    cleanup ();
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let load ?pool path = restore ?pool ~what:path (read_file path)
let load_for ?pool path sigma = restore_for ?pool ~what:path (read_file path) sigma
