(** The serving wire protocol: framing, requests, responses.

    Messages travel as length-prefixed frames — a 4-byte big-endian
    payload length followed by the payload — whose payload is a line of
    the textual command language (responses may span several lines
    inside one frame):

    {v
      request  ::= "? " REL [ "(" terms ")" ]        relation query
                 | "?? " cq (";" cq)*                conjunctive query (UCQ)
                 | "+" fact "."                      stage an insertion
                 | "-" fact "."                      stage a deletion
                 | "LOAD " n NL factblock            stage n binary facts
                 | "COMMIT"                          apply the staged batch
                 | "STATS"                           counters and latencies
                 | "SNAPSHOT" [ " " path ]           persist a snapshot
                 | "FOLLOW " k                       stream committed epochs > k
                 | "ROLE"                            primary or replica?
                 | "PROMOTE"                         make this server writable
                 | "QUIT"                            close the connection
      response ::= "OK"
                 | "ANSWERS " n NL tuple*            one "(t1, ..., tk)" per line
                 | "COMMITTED +" a " -" r " @" epoch
                 | "LOADED " n                       facts staged by a LOAD
                 | "STATS" NL (key " " value)*
                 | "FOLLOWING @" epoch               replay begins after this epoch
                 | "SNAP " epoch " " n NL bytes      snapshot image at that epoch
                 | "JOURNAL " epoch NL delta         one committed batch
                 | "ROLE " ("primary" | "replica" " @" epoch " lag=" n)
                          [" primary=" addr]
                 | "ERROR " message
                 | "BYE"
    v}

    {b Replication verbs.} [FOLLOW k] declares "I hold every epoch
    through [k]; stream me what comes after" ([k = -1]: "I hold
    nothing; send a snapshot"). The server answers either
    [FOLLOWING @e] — its journal covers [(k, e]] and replay starts
    immediately — or [SNAP e n] carrying a {!Snapshot}-format image of
    epoch [e] (same [GRDSNAP1] magic, length and checksum as the file
    form; a corrupt or version-mismatched image is rejected by the
    replica with a parseable [ERROR]). Either way the connection then
    turns into a one-way stream of [JOURNAL e] records, one per
    committed batch in strict epoch order, each carrying the batch's
    {!Guarded_incr.Delta} text. [ROLE] reports whether the server is a
    writable primary or a read-only replica (with its current epoch,
    replication lag, and — for a replica — its primary's address);
    [PROMOTE] flips a replica into a writable primary (warm failover)
    and is answered with the new [ROLE] line. Writes sent to a replica
    are refused with [ERROR redirect ADDR: ...] naming the primary.

    [LOAD] is the bulk-ingest fast path: its [factblock] is [n] ground
    facts in {!Guarded_core.Codec.write_atom}'s binary encoding, back
    to back with no count prefix (the count travels in the header
    line), so a 100k-fact EDB stages without 100k lines of text
    parsing. Only the header is validated on receipt — staging a block
    is a copy, and decoding happens inside [COMMIT] (off the event
    loop, in a worker thread). The staged facts join the connection's
    pending batch exactly as that many [+fact.] lines would; a corrupt
    or non-ground block therefore surfaces as an [ERROR] reply to the
    [COMMIT], which discards the whole staged batch and leaves the
    connection usable.

    [STATS] keys include the demand-mode subgoal-cache counters —
    [cache_hits], [cache_misses], [cache_entries] (currently resident)
    and [cache_evictions] (lifetime) — plus [heap_kb] (the server
    process's current major-heap size) and [demand] (1 when the server
    answers queries demand-driven, 0 when it serves a materialization).
    The cache counters are all zero in materialized mode; in demand
    mode [cache_hits]/[cache_misses]/[cache_evictions] are monotone
    across a connection's lifetime.

    The finite-chase serving keys: [chase_mode] (1 when the server
    materializes the chase itself instead of a Datalog translation,
    else 0), [chase_nulls] (gauge: distinct labeled nulls resident in
    the served chase) and [chase_derivations] (monotone: chase
    derivations performed since startup, across re-chases and
    incremental continuations). All three are zero outside chase
    mode.

    The event-loop counters describe the reactor that owns every
    connection: [connections_open] (gauge: descriptors currently
    registered, equals [connections]), [bytes_buffered] (gauge: bytes
    coalesced in output buffers across all connections, awaiting the
    socket), [backpressure_stalls] (monotone: times a connection's
    output buffer crossed the high-water mark and its reads were
    paused until the buffer drained to the low-water mark) and
    [load_facts] (monotone: facts staged through [LOAD] since
    startup). [scripts/server_smoke.sh] asserts the presence of all
    four and the monotonicity of the latter two.

    The replication keys: [role] (0 = primary, 1 = replica),
    [replicas_connected] (gauge: connections currently following this
    server's journal), [replication_lag_epochs] (gauge: how many
    epochs the server trails the primary it follows; 0 on a primary)
    and [journal_bytes] (gauge: delta text retained in the in-memory
    journal, the replay window for reconnecting followers).
    [scripts/server_smoke.sh]'s [repl] mode asserts all four on both
    sides of a primary/replica pair: the roles, the lag draining to
    zero, and [journal_bytes] growing monotonically with commits.

    Keywords are accepted case-insensitively; printers emit the
    canonical uppercase spelling and quote constants as needed
    ({!Guarded_core.Term.pp_quoted}), so [parse ∘ print] is the
    identity on every representable message — the property the test
    suite checks on generated batches and queries. *)

open Guarded_core

type fact_block = { fb_count : int; fb_block : string }
(** An undecoded [LOAD] payload: the declared fact count and the raw
    binary block. Decoding is deferred to commit time — see
    {!facts_of_load}. *)

type request =
  | Query of { rel : string; pattern : Term.t list option }
      (** [? REL] lists a relation's constant tuples; [? REL(t1, ...)]
          restricts to facts matching the pattern (variables are
          wildcards). *)
  | Cq of Guarded_cq.Ucq.t * string
      (** [?? body -> q(X).] — ";"-separated disjuncts form a union;
          the string is the head relation name (kept for printing). *)
  | Add of Atom.t
  | Remove of Atom.t
  | Load of fact_block
      (** [LOAD n] — stage [n] ground facts delivered as a binary
          {!Guarded_core.Codec.write_fact_block}; the bulk-ingest path. *)
  | Commit
  | Stats
  | Snapshot of string option
  | Follow of int
      (** [FOLLOW k] — stream every committed epoch past [k]; [-1]
          demands a snapshot first. Sent by a bootstrapping replica. *)
  | Role
  | Promote
  | Quit

type stats = {
  s_epoch : int;  (** committed batches since startup *)
  s_facts : int;  (** materialization cardinality *)
  s_edb_facts : int;
  s_queries : int;  (** queries served (aggregate) *)
  s_batches : int;  (** batches committed (aggregate) *)
  s_queue_depth : int;  (** commit queue occupancy *)
  s_connections : int;  (** currently open connections *)
  s_total_connections : int;
  s_connections_open : int;  (** reactor's open-descriptor gauge *)
  s_bytes_buffered : int;  (** output bytes coalesced, awaiting sockets *)
  s_backpressure_stalls : int;  (** high-water crossings (monotone) *)
  s_load_facts : int;  (** facts staged via [LOAD] (monotone) *)
  s_query_p50_us : int;  (** query latency percentiles, microseconds *)
  s_query_p95_us : int;
  s_commit_p50_us : int;  (** commit latency percentiles, microseconds *)
  s_commit_p95_us : int;
  s_relations : int;  (** relations in the materialization's store *)
  s_index_runs : int;  (** sorted index runs currently materialized *)
  s_storage_bytes : int;  (** resident bytes of columns + indexes *)
  s_cache_hits : int;  (** subgoal-cache hits (demand mode; aggregate) *)
  s_cache_misses : int;  (** subgoal-cache misses (demand mode; aggregate) *)
  s_cache_entries : int;  (** subgoals currently memoized *)
  s_cache_evictions : int;  (** entries evicted by commits (aggregate) *)
  s_heap_kb : int;  (** current major-heap size, kilobytes *)
  s_demand : int;  (** 1 when serving demand-driven, else 0 *)
  s_chase_mode : int;  (** 1 when serving the materialized chase, else 0 *)
  s_chase_nulls : int;  (** distinct labeled nulls resident in the chase *)
  s_chase_derivations : int;  (** chase derivations since startup (monotone) *)
  s_role : int;  (** 0 = primary, 1 = replica *)
  s_replicas_connected : int;  (** followers streaming this journal *)
  s_replication_lag_epochs : int;  (** epochs behind the primary; 0 on a primary *)
  s_journal_bytes : int;  (** retained journal delta text, bytes *)
}

type response =
  | Ok
  | Answers of Term.t list list
  | Committed of { added : int; removed : int; epoch : int }
  | Loaded of int  (** facts staged by a [LOAD] *)
  | Stats_reply of stats
  | Following of int
      (** [FOLLOWING @e] — the journal covers the follower's resume
          epoch; [JOURNAL] records for epochs [> resume] follow. *)
  | Snap of { sn_epoch : int; sn_bytes : string }
      (** A {!Snapshot}-format image of epoch [sn_epoch]; the
          bootstrap path when the journal no longer reaches back to
          the follower's resume epoch. *)
  | Journal_rec of { jr_epoch : int; jr_delta : Guarded_incr.Delta.t }
      (** One committed batch; replicas apply these in strict epoch
          order. *)
  | Role_reply of {
      rr_primary : bool;
      rr_epoch : int;
      rr_lag : int;  (** 0 on a primary *)
      rr_primary_addr : string option;  (** a replica names its primary *)
    }
  | Failed of string
  | Bye

val print_request : request -> string
val parse_request : string -> (request, string) result

val load_of_facts : Atom.t list -> request
(** Encodes ground facts into a [Load] request (header count + binary
    block). *)

val facts_of_load : fact_block -> (Atom.t list, string) result
(** Decodes a staged block back into its facts; [Error] on a truncated
    or corrupt block, on trailing bytes, or on a non-ground fact. This
    is the deferred half of [LOAD] — the server calls it from the
    worker that executes the [COMMIT]. *)

val print_response : response -> string
val parse_response : string -> (response, string) result

(** {1 Framing} *)

exception Protocol_error of string

val max_frame : int
(** Upper bound on a frame payload (64 MiB); larger declared lengths
    raise {!Protocol_error} rather than attempting the allocation. *)

val write_frame : Unix.file_descr -> string -> unit
(** Writes the length prefix and payload; handles short writes. *)

val read_frame : Unix.file_descr -> string option
(** Reads one frame; [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on a truncated frame or an oversized
    length. *)
