(** Wire protocol: textual request/response forms and frame I/O. See
    the interface for the grammar. *)

open Guarded_core
module Delta = Guarded_incr.Delta

type fact_block = { fb_count : int; fb_block : string }

type request =
  | Query of { rel : string; pattern : Term.t list option }
  | Cq of Guarded_cq.Ucq.t * string
  | Add of Atom.t
  | Remove of Atom.t
  | Load of fact_block
  | Commit
  | Stats
  | Snapshot of string option
  | Follow of int
  | Role
  | Promote
  | Quit

type stats = {
  s_epoch : int;
  s_facts : int;
  s_edb_facts : int;
  s_queries : int;
  s_batches : int;
  s_queue_depth : int;
  s_connections : int;
  s_total_connections : int;
  s_connections_open : int;
  s_bytes_buffered : int;
  s_backpressure_stalls : int;
  s_load_facts : int;
  s_query_p50_us : int;
  s_query_p95_us : int;
  s_commit_p50_us : int;
  s_commit_p95_us : int;
  s_relations : int;
  s_index_runs : int;
  s_storage_bytes : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_cache_entries : int;
  s_cache_evictions : int;
  s_heap_kb : int;
  s_demand : int;
  s_chase_mode : int;
  s_chase_nulls : int;
  s_chase_derivations : int;
  s_role : int;
  s_replicas_connected : int;
  s_replication_lag_epochs : int;
  s_journal_bytes : int;
}

type response =
  | Ok
  | Answers of Term.t list list
  | Committed of { added : int; removed : int; epoch : int }
  | Loaded of int
  | Stats_reply of stats
  | Following of int
  | Snap of { sn_epoch : int; sn_bytes : string }
  | Journal_rec of { jr_epoch : int; jr_delta : Delta.t }
  | Role_reply of { rr_primary : bool; rr_epoch : int; rr_lag : int; rr_primary_addr : string option }
  | Failed of string
  | Bye

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_terms = Names.pp_comma_list Term.pp_quoted

let pp_cq ppf ((q : Guarded_cq.Cq.t), rel) =
  Fmt.pf ppf "%a -> %s(%a)."
    (Names.pp_comma_list Atom.pp_quoted)
    q.Guarded_cq.Cq.body rel
    (Names.pp_comma_list (fun ppf v -> Fmt.pf ppf "?%s" v))
    q.Guarded_cq.Cq.answer_vars

let print_request = function
  | Query { rel; pattern = None } -> Fmt.str "? %s" rel
  | Query { rel; pattern = Some ts } -> Fmt.str "? %s(%a)" rel pp_terms ts
  | Cq (u, rel) ->
    Fmt.str "?? %a"
      (Fmt.list ~sep:(Fmt.any " ; ") pp_cq)
      (List.map (fun q -> (q, rel)) u.Guarded_cq.Ucq.disjuncts)
  | Add a -> Fmt.str "+%a." Atom.pp_quoted a
  | Remove a -> Fmt.str "-%a." Atom.pp_quoted a
  | Load b ->
    (* A textual header line, then the binary Codec block — the whole
       request still travels as one frame. *)
    Fmt.str "LOAD %d\n" b.fb_count ^ b.fb_block
  | Commit -> "COMMIT"
  | Stats -> "STATS"
  | Snapshot None -> "SNAPSHOT"
  | Snapshot (Some path) -> "SNAPSHOT " ^ path
  | Follow since -> Fmt.str "FOLLOW %d" since
  | Role -> "ROLE"
  | Promote -> "PROMOTE"
  | Quit -> "QUIT"

let pp_tuple ppf tuple = Fmt.pf ppf "(%a)" pp_terms tuple

(* The STATS payload, one "key value" line per field; parse_response
   relies on this exact key set and order being reproduced. *)
let stats_fields =
  [
    ("epoch", (fun s -> s.s_epoch), fun s v -> { s with s_epoch = v });
    ("facts", (fun s -> s.s_facts), fun s v -> { s with s_facts = v });
    ("edb_facts", (fun s -> s.s_edb_facts), fun s v -> { s with s_edb_facts = v });
    ("queries", (fun s -> s.s_queries), fun s v -> { s with s_queries = v });
    ("batches", (fun s -> s.s_batches), fun s v -> { s with s_batches = v });
    ("queue_depth", (fun s -> s.s_queue_depth), fun s v -> { s with s_queue_depth = v });
    ("connections", (fun s -> s.s_connections), fun s v -> { s with s_connections = v });
    ( "total_connections",
      (fun s -> s.s_total_connections),
      fun s v -> { s with s_total_connections = v } );
    ( "connections_open",
      (fun s -> s.s_connections_open),
      fun s v -> { s with s_connections_open = v } );
    ("bytes_buffered", (fun s -> s.s_bytes_buffered), fun s v -> { s with s_bytes_buffered = v });
    ( "backpressure_stalls",
      (fun s -> s.s_backpressure_stalls),
      fun s v -> { s with s_backpressure_stalls = v } );
    ("load_facts", (fun s -> s.s_load_facts), fun s v -> { s with s_load_facts = v });
    ("query_p50_us", (fun s -> s.s_query_p50_us), fun s v -> { s with s_query_p50_us = v });
    ("query_p95_us", (fun s -> s.s_query_p95_us), fun s v -> { s with s_query_p95_us = v });
    ("commit_p50_us", (fun s -> s.s_commit_p50_us), fun s v -> { s with s_commit_p50_us = v });
    ("commit_p95_us", (fun s -> s.s_commit_p95_us), fun s v -> { s with s_commit_p95_us = v });
    ("relations", (fun s -> s.s_relations), fun s v -> { s with s_relations = v });
    ("index_runs", (fun s -> s.s_index_runs), fun s v -> { s with s_index_runs = v });
    ("storage_bytes", (fun s -> s.s_storage_bytes), fun s v -> { s with s_storage_bytes = v });
    ("cache_hits", (fun s -> s.s_cache_hits), fun s v -> { s with s_cache_hits = v });
    ("cache_misses", (fun s -> s.s_cache_misses), fun s v -> { s with s_cache_misses = v });
    ("cache_entries", (fun s -> s.s_cache_entries), fun s v -> { s with s_cache_entries = v });
    ( "cache_evictions",
      (fun s -> s.s_cache_evictions),
      fun s v -> { s with s_cache_evictions = v } );
    ("heap_kb", (fun s -> s.s_heap_kb), fun s v -> { s with s_heap_kb = v });
    ("demand", (fun s -> s.s_demand), fun s v -> { s with s_demand = v });
    ("chase_mode", (fun s -> s.s_chase_mode), fun s v -> { s with s_chase_mode = v });
    ("chase_nulls", (fun s -> s.s_chase_nulls), fun s v -> { s with s_chase_nulls = v });
    ( "chase_derivations",
      (fun s -> s.s_chase_derivations),
      fun s v -> { s with s_chase_derivations = v } );
    ("role", (fun s -> s.s_role), fun s v -> { s with s_role = v });
    ( "replicas_connected",
      (fun s -> s.s_replicas_connected),
      fun s v -> { s with s_replicas_connected = v } );
    ( "replication_lag_epochs",
      (fun s -> s.s_replication_lag_epochs),
      fun s v -> { s with s_replication_lag_epochs = v } );
    ("journal_bytes", (fun s -> s.s_journal_bytes), fun s v -> { s with s_journal_bytes = v });
  ]

let zero_stats =
  {
    s_epoch = 0;
    s_facts = 0;
    s_edb_facts = 0;
    s_queries = 0;
    s_batches = 0;
    s_queue_depth = 0;
    s_connections = 0;
    s_total_connections = 0;
    s_connections_open = 0;
    s_bytes_buffered = 0;
    s_backpressure_stalls = 0;
    s_load_facts = 0;
    s_query_p50_us = 0;
    s_query_p95_us = 0;
    s_commit_p50_us = 0;
    s_commit_p95_us = 0;
    s_relations = 0;
    s_index_runs = 0;
    s_storage_bytes = 0;
    s_cache_hits = 0;
    s_cache_misses = 0;
    s_cache_entries = 0;
    s_cache_evictions = 0;
    s_heap_kb = 0;
    s_demand = 0;
    s_chase_mode = 0;
    s_chase_nulls = 0;
    s_chase_derivations = 0;
    s_role = 0;
    s_replicas_connected = 0;
    s_replication_lag_epochs = 0;
    s_journal_bytes = 0;
  }

let sanitize_line msg =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

let print_response = function
  | Ok -> "OK"
  | Answers tuples ->
    Fmt.str "@[<v>ANSWERS %d%a@]" (List.length tuples)
      (Fmt.list ~sep:Fmt.nop (fun ppf t -> Fmt.pf ppf "@,%a" pp_tuple t))
      tuples
  | Committed { added; removed; epoch } -> Fmt.str "COMMITTED +%d -%d @%d" added removed epoch
  | Loaded n -> Fmt.str "LOADED %d" n
  | Stats_reply s ->
    Fmt.str "@[<v>STATS%a@]"
      (Fmt.list ~sep:Fmt.nop (fun ppf (key, get, _) -> Fmt.pf ppf "@,%s %d" key (get s)))
      stats_fields
  | Following epoch -> Fmt.str "FOLLOWING @%d" epoch
  | Snap { sn_epoch; sn_bytes } ->
    (* Like LOAD: a textual header, then opaque bytes — the byte count
       travels in the header because the body may contain anything. *)
    Fmt.str "SNAP %d %d\n" sn_epoch (String.length sn_bytes) ^ sn_bytes
  | Journal_rec { jr_epoch; jr_delta } ->
    Fmt.str "JOURNAL %d\n%s" jr_epoch (Fmt.to_to_string Delta.pp jr_delta)
  | Role_reply { rr_primary; rr_epoch; rr_lag; rr_primary_addr } ->
    Fmt.str "ROLE %s @%d%s%s"
      (if rr_primary then "primary" else "replica")
      rr_epoch
      (if rr_primary then "" else Fmt.str " lag=%d" rr_lag)
      (match rr_primary_addr with
      | Some addr -> " primary=" ^ sanitize_line addr
      | None -> "")
  | Failed msg -> "ERROR " ^ sanitize_line msg
  | Bye -> "BYE"

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let ( let* ) r f = Result.bind r f

(* Run a parser that signals failures by exception, converting them to
   [Error] so a malformed request can never kill a connection. *)
let guard what f =
  match f () with
  | v -> Stdlib.Ok v
  | exception Parser.Parse_error m -> Error (Fmt.str "%s: %s" what m)
  | exception (Invalid_argument m | Failure m) -> Error (Fmt.str "%s: %s" what m)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '?'

let is_ident s = s <> "" && String.for_all is_ident_char s

(* Strip one optional trailing dot (facts conventionally end in one). *)
let strip_dot s =
  let s = String.trim s in
  let n = String.length s in
  if n > 0 && s.[n - 1] = '.' then String.trim (String.sub s 0 (n - 1)) else s

let parse_fact what text =
  let* a = guard what (fun () -> Parser.atom_of_string (strip_dot text)) in
  if Atom.is_ground a then Stdlib.Ok a else Error (Fmt.str "%s: fact %a is not ground" what Atom.pp a)

let parse_query text =
  let text = String.trim text in
  if String.contains text '(' then
    let* a = guard "query" (fun () -> Parser.atom_of_string (strip_dot text)) in
    if Atom.ann a <> [] then Error "query: annotated relations are not servable"
    else Stdlib.Ok (Query { rel = Atom.rel a; pattern = Some (Atom.args a) })
  else if is_ident text then Stdlib.Ok (Query { rel = text; pattern = None })
  else Error (Fmt.str "query: expected a relation name, got %S" text)

let parse_cq text =
  let* (u, rel) = guard "cq" (fun () -> Guarded_cq.Ucq.of_string text) in
  Stdlib.Ok (Cq (u, rel))

(* The first whitespace-separated word, uppercased, and the rest. *)
let split_keyword line =
  match String.index_opt line ' ' with
  | None -> (String.uppercase_ascii line, "")
  | Some i ->
    ( String.uppercase_ascii (String.sub line 0 i),
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Stdlib.Ok n
  | None -> Error (Fmt.str "%s: expected an integer, got %S" what s)

(* [LOAD <n>\n<codec fact block>]: the payload is binary past the
   header line, so it must be dissected before any trimming. Only the
   header is validated here — the block itself is decoded at COMMIT, in
   a worker thread, so a multi-megabyte block never stalls the reactor
   (see {!facts_of_load}). *)
let parse_load payload =
  match String.index_opt payload '\n' with
  | None -> Error "load: expected LOAD <count>, a newline, then the binary fact block"
  | Some nl -> (
    let header = String.trim (String.sub payload 0 nl) in
    let block = String.sub payload (nl + 1) (String.length payload - nl - 1) in
    match split_keyword header with
    | "LOAD", count ->
      let* n = parse_int "load" count in
      if n < 0 then Error "load: negative fact count"
      else Stdlib.Ok (Load { fb_count = n; fb_block = block })
    | kw, _ -> Error (Fmt.str "load: malformed header %S" kw))

let load_of_facts facts =
  let buf = Buffer.create (16 + (16 * List.length facts)) in
  Codec.write_fact_block buf facts;
  Load { fb_count = List.length facts; fb_block = Buffer.contents buf }

let facts_of_load b =
  let src = Codec.source_of_string b.fb_block in
  match
    let facts = Codec.read_fact_block src b.fb_count in
    Codec.expect_end src;
    facts
  with
  | facts -> Stdlib.Ok facts
  | exception Codec.Corrupt m -> Error (Fmt.str "load: corrupt fact block: %s" m)

let is_load payload =
  String.length payload >= 5 && String.uppercase_ascii (String.sub payload 0 4) = "LOAD"
  && (payload.[4] = ' ' || payload.[4] = '\n')

let parse_request payload =
  if is_load payload then parse_load payload
  else
  let line = String.trim payload in
  if line = "" then Error "empty request"
  else if String.length line >= 2 && String.sub line 0 2 = "??" then
    parse_cq (String.sub line 2 (String.length line - 2))
  else if line.[0] = '?' then parse_query (String.sub line 1 (String.length line - 1))
  else if line.[0] = '+' then
    let* a = parse_fact "add" (String.sub line 1 (String.length line - 1)) in
    Stdlib.Ok (Add a)
  else if line.[0] = '-' then
    let* a = parse_fact "remove" (String.sub line 1 (String.length line - 1)) in
    Stdlib.Ok (Remove a)
  else
    match split_keyword line with
    | "COMMIT", "" -> Stdlib.Ok Commit
    | "STATS", "" -> Stdlib.Ok Stats
    | "QUIT", "" | "EXIT", "" -> Stdlib.Ok Quit
    | "SNAPSHOT", "" -> Stdlib.Ok (Snapshot None)
    | "SNAPSHOT", path -> Stdlib.Ok (Snapshot (Some path))
    | "FOLLOW", since ->
      let* since = parse_int "follow" since in
      if since < -1 then Error "follow: the resume epoch cannot be below -1"
      else Stdlib.Ok (Follow since)
    | "ROLE", "" -> Stdlib.Ok Role
    | "PROMOTE", "" -> Stdlib.Ok Promote
    | "LOAD", _ -> Error "load: expected LOAD <count>, a newline, then the binary fact block"
    | kw, _ -> Error (Fmt.str "unknown request %S" kw)

(* A tuple line "(t1, ..., tk)" parses by dressing it up as an atom. *)
let parse_tuple line =
  let* a = guard "tuple" (fun () -> Parser.atom_of_string ("tuple" ^ String.trim line)) in
  Stdlib.Ok (Atom.args a)

let rec map_result f = function
  | [] -> Stdlib.Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Stdlib.Ok (y :: ys)

let parse_stats lines =
  let* s =
    List.fold_left
      (fun acc line ->
        let* s = acc in
        match String.index_opt line ' ' with
        | None -> Error (Fmt.str "stats: malformed line %S" line)
        | Some i ->
          let key = String.sub line 0 i in
          let* v = parse_int "stats" (String.sub line (i + 1) (String.length line - i - 1)) in
          (match List.find_opt (fun (k, _, _) -> String.equal k key) stats_fields with
          | Some (_, _, set) -> Stdlib.Ok (set s v)
          | None -> Error (Fmt.str "stats: unknown key %S" key)))
      (Stdlib.Ok zero_stats) lines
  in
  Stdlib.Ok (Stats_reply s)

(* [SNAP <epoch> <n>\n<bytes>]: the body is the raw snapshot image
   (arbitrary bytes, including newlines), so like LOAD it must be
   dissected before any line splitting. *)
let parse_snap payload =
  match String.index_opt payload '\n' with
  | None -> Error "snap: expected SNAP <epoch> <bytes>, a newline, then the image"
  | Some nl -> (
    let header = String.trim (String.sub payload 0 nl) in
    let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
    match split_keyword header with
    | "SNAP", detail -> (
      match String.split_on_char ' ' detail with
      | [ e; n ] ->
        let* sn_epoch = parse_int "snap" e in
        let* n = parse_int "snap" n in
        if n <> String.length body then
          Error (Fmt.str "snap: %d bytes declared, %d present" n (String.length body))
        else Stdlib.Ok (Snap { sn_epoch; sn_bytes = body })
      | _ -> Error (Fmt.str "snap: malformed header %S" header))
    | kw, _ -> Error (Fmt.str "snap: malformed header %S" kw))

(* [JOURNAL <epoch>\n<delta text>]: the body is a {!Delta.of_string}
   document and may span many lines inside the one frame. *)
let parse_journal payload =
  match String.index_opt payload '\n' with
  | None -> (
    match split_keyword (String.trim payload) with
    | "JOURNAL", e ->
      let* jr_epoch = parse_int "journal" e in
      Stdlib.Ok (Journal_rec { jr_epoch; jr_delta = Delta.empty })
    | kw, _ -> Error (Fmt.str "journal: malformed header %S" kw))
  | Some nl -> (
    let header = String.trim (String.sub payload 0 nl) in
    let body = String.sub payload (nl + 1) (String.length payload - nl - 1) in
    match split_keyword header with
    | "JOURNAL", e ->
      let* jr_epoch = parse_int "journal" e in
      let* jr_delta = guard "journal" (fun () -> Delta.of_string body) in
      Stdlib.Ok (Journal_rec { jr_epoch; jr_delta })
    | kw, _ -> Error (Fmt.str "journal: malformed header %S" kw))

(* "ROLE primary @E [primary=ADDR]" / "ROLE replica @E lag=N
   [primary=ADDR]" — the address comes last and may contain spaces
   (Unix-socket paths), so it is cut off the tail first. *)
let parse_role detail =
  let detail = String.trim detail in
  let rr_primary_addr, head =
    let pat = " primary=" in
    let n = String.length detail and plen = String.length pat in
    let rec find i =
      if i + plen > n then None
      else if String.sub detail i plen = pat then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
      (Some (String.sub detail (i + plen) (n - i - plen)), String.trim (String.sub detail 0 i))
    | None -> (None, detail)
  in
  let with_epoch who e rest =
    if not (String.length e > 1 && e.[0] = '@') then
      Error (Fmt.str "role: expected @epoch, got %S" e)
    else
      let* rr_epoch = parse_int "role" (String.sub e 1 (String.length e - 1)) in
      let* rr_lag =
        match rest with
        | [] -> Stdlib.Ok 0
        | [ l ] when String.length l > 4 && String.sub l 0 4 = "lag=" ->
          parse_int "role" (String.sub l 4 (String.length l - 4))
        | _ -> Error (Fmt.str "role: malformed detail %S" detail)
      in
      Stdlib.Ok (Role_reply { rr_primary = who = "primary"; rr_epoch; rr_lag; rr_primary_addr })
  in
  match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
  | who :: e :: rest when (who = "primary" || who = "replica") && List.length rest <= 1 ->
    with_epoch who e rest
  | _ -> Error (Fmt.str "role: malformed detail %S" detail)

let response_keyword_is payload kw =
  let n = String.length kw in
  String.length payload > n
  && String.uppercase_ascii (String.sub payload 0 n) = kw
  && (payload.[n] = ' ' || payload.[n] = '\n')

let parse_response payload =
  if response_keyword_is payload "SNAP" then parse_snap payload
  else if response_keyword_is payload "JOURNAL" then parse_journal payload
  else
  match String.split_on_char '\n' payload with
  | [] -> Error "empty response"
  | first :: rest -> (
    match split_keyword (String.trim first) with
    | "OK", "" -> Stdlib.Ok Ok
    | "BYE", "" -> Stdlib.Ok Bye
    | "ERROR", msg -> Stdlib.Ok (Failed msg)
    | "ANSWERS", n ->
      let* n = parse_int "answers" n in
      if n <> List.length rest then
        Error (Fmt.str "answers: %d tuples declared, %d present" n (List.length rest))
      else
        let* tuples = map_result parse_tuple rest in
        Stdlib.Ok (Answers tuples)
    | "COMMITTED", detail -> (
      match String.split_on_char ' ' detail with
      | [ a; r; e ]
        when String.length a > 0 && a.[0] = '+' && String.length r > 0 && r.[0] = '-'
             && String.length e > 0 && e.[0] = '@' ->
        let* added = parse_int "committed" (String.sub a 1 (String.length a - 1)) in
        let* removed = parse_int "committed" (String.sub r 1 (String.length r - 1)) in
        let* epoch = parse_int "committed" (String.sub e 1 (String.length e - 1)) in
        Stdlib.Ok (Committed { added; removed; epoch })
      | _ -> Error (Fmt.str "committed: malformed detail %S" detail))
    | "LOADED", n ->
      let* n = parse_int "loaded" n in
      Stdlib.Ok (Loaded n)
    | "STATS", "" -> parse_stats rest
    | "FOLLOWING", e when String.length e > 1 && e.[0] = '@' ->
      let* epoch = parse_int "following" (String.sub e 1 (String.length e - 1)) in
      Stdlib.Ok (Following epoch)
    | "ROLE", detail when rest = [] -> parse_role detail
    | kw, _ -> Error (Fmt.str "unknown response %S" kw))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

exception Protocol_error of string

let max_frame = 64 * 1024 * 1024

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then raise (Protocol_error (Fmt.str "frame of %d bytes exceeds the limit" n));
  let buf = Bytes.create (4 + n) in
  Bytes.set_uint8 buf 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 buf 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 buf 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 buf 3 (n land 0xff);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

(* Read exactly [len] bytes; [None] on EOF before the first byte when
   [at_start], a protocol error on EOF mid-value. *)
let read_exactly fd len ~at_start =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Some buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 ->
        if off = 0 && at_start then None
        else raise (Protocol_error (Fmt.str "truncated frame: EOF after %d of %d bytes" off len))
      | n -> go (off + n)
  in
  go 0

let read_frame fd =
  match read_exactly fd 4 ~at_start:true with
  | None -> None
  | Some hdr ->
    let n =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if n > max_frame then
      raise (Protocol_error (Fmt.str "declared frame of %d bytes exceeds the limit" n));
    (match read_exactly fd n ~at_start:false with
    | Some payload -> Some (Bytes.to_string payload)
    | None -> assert false)
