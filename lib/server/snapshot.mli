(** Versioned binary persistence of a served materialization.

    A snapshot file carries the program, the EDB and the per-stratum
    cached state of a {!Guarded_incr.Incr.t}
    ({!Guarded_incr.Incr.dump}), so [guarded listen --snapshot FILE]
    restarts warm: the materialization is rebuilt without re-running
    any fixpoint.

    File layout (all multi-byte values in {!Guarded_core.Codec}'s
    encodings):

    {v
      "GRDSNAP1"             8-byte magic, the trailing digit is the
                             format version
      varint                 body length in bytes
      body                   theory, EDB, stratum dumps
      int64 (little-endian)  FNV-1a checksum of the body bytes
    v}

    Loading verifies the magic, the version, the body length and the
    checksum before decoding; any mismatch — including truncation and
    trailing garbage — raises {!Corrupt} with a description, never a
    decoding exception. Saving writes a temporary file in the target's
    directory and renames it into place, so a crash mid-save never
    clobbers the previous snapshot. *)

open Guarded_core

exception Corrupt of string
(** The file is not a readable snapshot (bad magic, unsupported
    version, checksum mismatch, truncation, malformed body). *)

val encode : Theory.t -> Guarded_incr.Incr.dump -> string
(** The complete image — magic, length, body, checksum — as bytes.
    {!save} writes exactly these bytes to disk and the server's
    [SNAP] reply carries exactly them over the wire, so both
    transports share one codec and one validation chain. *)

val decode : ?what:string -> string -> Theory.t * Guarded_incr.Incr.dump
(** Verifies and decodes an {!encode}d image. [what] labels errors
    (a path, or the wire peer).
    @raise Corrupt on any mismatch — bad magic, unsupported version,
    wrong length, checksum failure, malformed body. *)

val restore :
  ?pool:Guarded_par.Pool.t ->
  ?what:string ->
  string ->
  Theory.t * Guarded_incr.Incr.t
(** {!decode}, then rebuild the materialization with
    {!Guarded_incr.Incr.restore}. @raise Corrupt as {!decode}. *)

val restore_for :
  ?pool:Guarded_par.Pool.t ->
  ?what:string ->
  string ->
  Theory.t ->
  Guarded_incr.Incr.t
(** {!restore}, but additionally checks the stored program equals the
    one being served — the replica bootstrap path: an image of a
    different program is rejected as {!Corrupt} rather than replayed
    into wrong answers. *)

val theory_equal : Theory.t -> Theory.t -> bool
(** Rule-set equality up to order — the program check behind
    {!restore_for} and {!load_for}. *)

val save : path:string -> Theory.t -> Guarded_incr.Incr.dump -> unit
(** Atomically writes [path]. @raise Sys_error on I/O failure. *)

val load :
  ?pool:Guarded_par.Pool.t -> string -> Theory.t * Guarded_incr.Incr.t
(** Reads, verifies and decodes the file, then rebuilds the
    materialization with {!Guarded_incr.Incr.restore}.
    @raise Corrupt on a damaged or foreign file.
    @raise Sys_error when the file cannot be read. *)

val load_for :
  ?pool:Guarded_par.Pool.t -> string -> Theory.t -> Guarded_incr.Incr.t
(** {!load}, but additionally checks the stored program equals the one
    being served — a snapshot of a different program is rejected as
    {!Corrupt} rather than served with wrong answers. *)
