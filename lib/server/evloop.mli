(** The reactor's waiting primitive: a thin [poll(2)] binding.

    {!Unix.select} rejects descriptors at or above [FD_SETSIZE] (1024
    on Linux), which caps a select-driven event loop far below the
    1000+ concurrent connections the serving path is benchmarked at;
    [poll] carries no such limit. The binding releases the OCaml
    runtime lock while waiting, so the writer thread and the query
    worker pool keep running underneath the sleeping reactor. *)

val pollin : int
(** Interest/readiness bit: readable (also set on error/hang-up, so a
    read observes the failure). *)

val pollout : int
(** Interest/readiness bit: writable. *)

val poll : Unix.file_descr array -> int array -> int array -> int -> int
(** [poll fds events revents timeout_ms] waits until a descriptor in
    [fds] is ready for its requested [events] (a {!pollin}/{!pollout}
    mask, positionally aligned with [fds]) or until [timeout_ms]
    elapses ([-1] waits forever). Readiness is written into [revents]
    (same alignment; [0] = not ready); the result is the number of
    ready descriptors. [EINTR] returns [0] — callers simply poll
    again.
    @raise Invalid_argument when the array lengths differ. *)

val raise_fd_limit : int -> int
(** [raise_fd_limit n] raises the process's soft open-file limit
    towards [n] (clamped to the hard limit, best effort) and returns
    the resulting soft limit. Servers and sweep drivers call it so a
    conservative default [ulimit -n] does not cap the connection
    count. *)
