(** Growable byte queue; see the interface. *)

type t = {
  mutable buf : Bytes.t;
  mutable head : int;  (** first unconsumed byte *)
  mutable len : int;  (** unconsumed bytes *)
}

let create n = { buf = Bytes.create (max 16 n); head = 0; len = 0 }
let length t = t.len

(* Make room for [n] more bytes at the tail: compact to the front when
   the dead prefix alone frees enough, grow (doubling) otherwise. *)
let reserve t n =
  let cap = Bytes.length t.buf in
  if t.head + t.len + n > cap then
    if t.len + n <= cap then begin
      Bytes.blit t.buf t.head t.buf 0 t.len;
      t.head <- 0
    end
    else begin
      let cap' = ref (max 16 (2 * cap)) in
      while t.len + n > !cap' do
        cap' := 2 * !cap'
      done;
      let buf' = Bytes.create !cap' in
      Bytes.blit t.buf t.head buf' 0 t.len;
      t.buf <- buf';
      t.head <- 0
    end

let add_string t s =
  let n = String.length s in
  reserve t n;
  Bytes.blit_string s 0 t.buf (t.head + t.len) n;
  t.len <- t.len + n

let add_subbytes t b off n =
  reserve t n;
  Bytes.blit b off t.buf (t.head + t.len) n;
  t.len <- t.len + n

let peek_u32be t =
  if t.len < 4 then None
  else begin
    let b i = Char.code (Bytes.get t.buf (t.head + i)) in
    Some ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3)
  end

let consume t n =
  t.head <- t.head + n;
  t.len <- t.len - n;
  if t.len = 0 then t.head <- 0

let take_string t ~off ~len =
  if off < 0 || len < 0 || off + len > t.len then
    invalid_arg "Iobuf.take_string: not enough buffered bytes";
  let s = Bytes.sub_string t.buf (t.head + off) len in
  consume t (off + len);
  s

let rec write t fd =
  if t.len = 0 then 0
  else
    match Unix.write fd t.buf t.head t.len with
    | 0 -> 0
    | n ->
      consume t n;
      n + write t fd
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> 0
    | exception Unix.Unix_error (EINTR, _, _) -> write t fd
