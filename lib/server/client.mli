(** Blocking client for the serving protocol — the substrate of
    [guarded client] and the test suites' oracle harness. *)

open Guarded_core

type t

val connect_unix : string -> t
(** Connect to a Unix-domain socket at the path. *)

val connect_tcp : string -> int -> t
(** Connect to [host:port]. *)

val connect : Server.address -> t
(** Connect to whatever {!Server.address} the server reports — handy
    against a [Tcp (_, 0)] server, whose real port is only known after
    binding. *)

val request : t -> Wire.request -> Wire.response
(** One round trip. @raise Wire.Protocol_error on a broken or
    ill-formed reply, including an unexpected EOF. *)

val request_line : t -> string -> Wire.response
(** Parse one protocol line locally and send it — what the interactive
    [guarded client] REPL does per input line. Malformed input becomes a
    local [Failed] response without touching the wire. *)

val query : t -> string -> Term.t list list
(** [query c rel]: the relation's answer tuples.
    @raise Failure when the server replies [ERROR]. *)

val commit : t -> Guarded_incr.Delta.t -> (int * int * int, string) result
(** Stage every line of the batch, then [COMMIT]; returns
    [(added, removed, epoch)]. *)

val stats : t -> Wire.stats
(** @raise Failure when the server replies [ERROR]. *)

val close : t -> unit
(** Sends [QUIT] (best effort) and closes the socket. Idempotent. *)
