(** Blocking client for the serving protocol — the substrate of
    [guarded client] and the test suites' oracle harness.

    Requests buffer locally until {!flush} (or any read), so a burst of
    {!send}s reaches the wire in one write. {!pipeline} keeps a bounded
    window of requests in flight — the server answers strictly in
    order, so responses pair up positionally — and {!load} ships an EDB
    as chunked binary [LOAD] frames, the bulk-ingest fast path.

    Transport failure is a typed condition, not a leaked [Unix_error]:
    every send/receive path raises {!Connection_lost} when the peer
    goes away, and {!reconnect} re-dials the remembered address under
    a bounded {!Backoff} policy — the primitives cluster routing
    ({!Cluster} in [guarded_repl]) is built from. *)

open Guarded_core

type t

exception Connection_lost of string
(** The transport died: the peer closed the connection, a read or
    write failed at the socket level, or a frame was cut off mid-body.
    Distinct from {!Wire.Protocol_error}, which means the peer spoke
    but said something ill-formed. *)

val connect_unix : string -> t
(** Connect to a Unix-domain socket at the path. Transient refusals
    ([ECONNREFUSED]/[EAGAIN] from a full accept backlog) are retried
    briefly before the error propagates. *)

val connect_tcp : string -> int -> t
(** Connect to [host:port], with the same transient-refusal retry. *)

val connect : Server.address -> t
(** Connect to whatever {!Server.address} the server reports — handy
    against a [Tcp (_, 0)] server, whose real port is only known after
    binding. *)

val address : t -> Server.address option
(** The address this connection dialled — [None] for a handle wrapped
    around a raw descriptor, which {!reconnect} therefore refuses. *)

val reconnect : ?backoff:Backoff.t -> t -> unit
(** Drop the (possibly dead) socket and re-dial {!address}, retrying
    under [backoff] (default {!Backoff.default}: 25 ms doubling to
    1 s, 8 attempts). Pending buffered output is discarded — the
    caller re-issues whatever was in flight.
    @raise Connection_lost when every attempt fails or the handle has
    no address. *)

val send : t -> Wire.request -> unit
(** Queue one request frame in the local output buffer. *)

val flush : t -> unit
(** Write every queued frame to the socket. *)

val recv : t -> Wire.response
(** Flush, then read one response frame.
    @raise Connection_lost on EOF, a socket-level failure or a frame
    truncated mid-body.
    @raise Wire.Protocol_error on an ill-formed reply payload. *)

val request : t -> Wire.request -> Wire.response
(** One round trip: {!send}, {!flush}, {!recv}. *)

val request_line : t -> string -> Wire.response
(** Parse one protocol line locally and send it — what the interactive
    [guarded client] REPL does per input line. Malformed input becomes a
    local [Failed] response without touching the wire. *)

val pipeline : ?window:int -> t -> Wire.request list -> Wire.response list
(** [pipeline c reqs] sends the requests keeping up to [window]
    (default 128) in flight and returns the responses positionally.
    The window bounds both sides' buffering — a client that wrote
    everything before reading anything could deadlock against the
    server's output backpressure. *)

val query : t -> string -> Term.t list list
(** [query c rel]: the relation's answer tuples.
    @raise Failure when the server replies [ERROR]. *)

val commit : t -> Guarded_incr.Delta.t -> (int * int * int, string) result
(** Stage every line of the batch (pipelined), then [COMMIT]; returns
    [(added, removed, epoch)]. *)

val load : ?chunk:int -> t -> Atom.t list -> (int, string) result
(** [load c facts] stages the facts through binary [LOAD] frames of
    [chunk] facts each (default 8192), pipelined; returns the total
    staged. Nothing is committed — follow with {!commit} or a [COMMIT]
    request. *)

val stats : t -> Wire.stats
(** @raise Failure when the server replies [ERROR]. *)

val shutdown : t -> unit
(** Half of {!close} that is safe from {e another} thread: shuts the
    socket down both ways so a thread blocked in {!recv} wakes with
    {!Connection_lost}. The descriptor itself stays valid until
    {!close}. Idempotent; errors are swallowed; a no-op while the
    connection is down (mid-{!reconnect} the stored descriptor number
    may already belong to someone else). *)

val close : t -> unit
(** Flushes, sends [QUIT] (best effort) and closes the socket.
    Idempotent. *)
