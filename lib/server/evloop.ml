(** poll(2) binding; see the interface. The event bits must stay in
    sync with poll_stubs.c. *)

let pollin = 1
let pollout = 2

external poll_stub : Unix.file_descr array -> int array -> int array -> int -> int
  = "guarded_poll_stub"

external raise_nofile_stub : int -> int = "guarded_raise_nofile_stub"

let poll fds events revents timeout_ms =
  if Array.length fds <> Array.length events || Array.length fds <> Array.length revents
  then invalid_arg "Evloop.poll: array lengths differ";
  poll_stub fds events revents timeout_ms

let raise_fd_limit n = raise_nofile_stub n
