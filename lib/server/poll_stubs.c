/* poll(2) and RLIMIT_NOFILE bindings for the event-loop server core.
 *
 * OCaml's Unix.select rejects file descriptors >= FD_SETSIZE (1024 on
 * Linux), which caps a select-driven reactor far below the 1k+
 * concurrent connections the serving benchmarks drive.  poll(2) has no
 * such limit, so the reactor waits here instead.  The stub copies the
 * fd/event arrays into a C pollfd array, releases the OCaml runtime
 * lock for the duration of the wait (the writer thread and the worker
 * pool keep running), and writes the revents back after reacquiring
 * it. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/unixsupport.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

/* Event bits shared with Evloop: keep in sync with evloop.ml. */
#define GUARDED_POLLIN 1
#define GUARDED_POLLOUT 2

CAMLprim value guarded_poll_stub(value v_fds, value v_events, value v_revents,
                                 value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  int n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int ret, i;

  if (Wosize_val(v_events) != (uintnat)n || Wosize_val(v_revents) != (uintnat)n)
    caml_invalid_argument("Evloop.poll: array lengths differ");

  if (n > 0) {
    pfds = malloc(sizeof(struct pollfd) * n);
    if (pfds == NULL) caml_raise_out_of_memory();
    for (i = 0; i < n; i++) {
      int ev = Int_val(Field(v_events, i));
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = ((ev & GUARDED_POLLIN) ? POLLIN : 0)
                       | ((ev & GUARDED_POLLOUT) ? POLLOUT : 0);
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  ret = poll(pfds, n, timeout);
  caml_acquire_runtime_system();

  if (ret < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0)); /* a signal; caller re-polls */
    unix_error(err, "poll", Nothing);
  }

  for (i = 0; i < n; i++) {
    /* HUP/ERR/NVAL surface as readability (and writability when
       requested): the subsequent read/write reports the error, which
       is how the reactor learns a peer vanished. */
    int r = pfds[i].revents;
    int out = 0;
    if (r & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) out |= GUARDED_POLLIN;
    if (r & (POLLOUT | POLLHUP | POLLERR | POLLNVAL)) out |= GUARDED_POLLOUT;
    Field(v_revents, i) = Val_int(out);
  }
  free(pfds);
  CAMLreturn(Val_int(ret));
}

/* Raise the soft RLIMIT_NOFILE towards [v_want] (clamped to the hard
 * limit) and return the resulting soft limit.  Sweeping to 1k+
 * connections needs ~2n descriptors when the driving clients live in
 * the same process, which overflows the conservative 1024 default of
 * many distributions. */
CAMLprim value guarded_raise_nofile_stub(value v_want)
{
  CAMLparam1(v_want);
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(v_want);

  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    unix_error(errno, "getrlimit", Nothing);
  if (rl.rlim_cur < want) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
      target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      rl.rlim_cur = target;
      /* Best effort: a refusal leaves the old limit in place. */
      (void)setrlimit(RLIMIT_NOFILE, &rl);
      if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
        unix_error(errno, "getrlimit", Nothing);
    }
  }
  if (rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur > (rlim_t)Max_long)
    CAMLreturn(Val_long(Max_long));
  CAMLreturn(Val_long((long)rl.rlim_cur));
}
