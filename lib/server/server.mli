(** The network reasoning server: socket acceptor and connection
    threads over a {!State.t}.

    One thread per connection; queries run concurrently under
    {!State.with_read}, staged [+fact.]/[-fact.] lines become a
    {!Guarded_incr.Delta.t} applied on [COMMIT] through the state's
    single writer. {!stop} closes the listener, shuts every live
    connection down and joins all threads — a graceful shutdown that
    leaves no half-written frames. *)

type address =
  | Unix_socket of string  (** path; unlinked on [listen] and [stop] *)
  | Tcp of string * int  (** host, port; port [0] picks a free one *)

type t

val listen :
  ?snapshot:string ->
  ?log:(string -> unit) ->
  State.t ->
  address ->
  t
(** Binds, starts the acceptor thread, returns immediately. [snapshot]
    is the default path for the [SNAPSHOT] command (with no argument)
    and is written once more during {!stop}. [log] receives one line
    per lifecycle event (default: drop). *)

val address : t -> address
(** The bound address — with [Tcp (_, 0)], the actual port. *)

val connections : t -> int

val stop : t -> unit
(** Graceful shutdown: stop accepting, close live connections, join
    all threads, fail pending commits, save the snapshot if configured.
    Idempotent; safe to call from a signal-triggered context. *)
