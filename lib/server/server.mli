(** The network reasoning server: a single-threaded non-blocking
    reactor over a {!State.t}.

    One event-loop thread owns every connection descriptor: a
    {!Evloop.poll}-driven loop reads whatever the sockets deliver into
    per-connection {!Iobuf} read buffers, cuts complete frames
    incrementally, and coalesces any number of responses into the
    per-connection write buffer, flushed once per tick (batched wire
    writes). A connection whose output buffer crosses the high-water
    mark stops being read until it drains below the low-water mark
    (backpressure), so a slow consumer cannot balloon the server's
    memory.

    Cheap requests — staging [+fact.]/[-fact.] lines, bulk [LOAD]
    blocks, [QUIT] — are answered inline by the reactor. Anything that
    takes the state's reader-writer lock or blocks on the commit queue
    (queries, UCQs, [COMMIT], [STATS], [SNAPSHOT]) is handed to a small
    worker pool so the reactor never blocks; each connection's requests
    are still answered strictly in submission order (pipelining-safe).
    The single-writer discipline is unchanged: commits flow through
    {!State.commit} to the state's dedicated writer thread.

    {!stop} wakes the reactor through its self-pipe — shutdown is
    immediate, with no polling delay — closes the listener and every
    connection, joins the workers, fails pending commits and saves the
    snapshot if configured. *)

type address =
  | Unix_socket of string  (** path; unlinked on [listen] and [stop] *)
  | Tcp of string * int  (** host, port; port [0] picks a free one *)

val string_of_address : address -> string
(** ["unix:PATH"] / ["tcp:HOST:PORT"] — the canonical form logged at
    startup, reported by [ROLE], and embedded in a replica's redirect
    errors. *)

val address_of_string : string -> (address, string) result
(** Inverse of {!string_of_address}; also accepts the bare
    ["HOST:PORT"] and bare-path shorthands the CLI takes. *)

type role =
  | Primary  (** accepts writes, streams its journal to followers *)
  | Replica_of of string
      (** read-only; the string names the primary
          ({!string_of_address} form) and is quoted in write-redirect
          errors *)

type t

val listen :
  ?snapshot:string ->
  ?log:(string -> unit) ->
  ?workers:int ->
  ?role:role ->
  State.t ->
  address ->
  t
(** Binds, starts the reactor and [workers] request threads (default
    4, clamped to [>= 1]), returns immediately. [snapshot] is the
    default path for the [SNAPSHOT] command (with no argument) and is
    written once more during {!stop}. [role] (default {!Primary})
    makes the server refuse writes with a redirect when a replica.
    [log] receives one line per lifecycle event (default: drop); it
    may be called from the reactor or a worker thread. *)

val address : t -> address
(** The bound address — with [Tcp (_, 0)], the actual port. *)

val connections : t -> int

val role : t -> role

val promote : t -> unit
(** Warm failover: flip a replica into a writable {!Primary}. Fires
    the promote hook (once) so the replica controller stops following;
    idempotent on a primary. Safe from any thread, including a
    signal-triggered context. *)

val set_promote_hook : t -> (unit -> unit) -> unit
(** Runs when {!promote} flips the role — the replica controller
    registers its stop-following teardown here before serving
    starts. *)

val set_lag_source : t -> (unit -> int) -> unit
(** Where [STATS]' [replication_lag_epochs] and [ROLE]'s [lag=] come
    from on a replica (the controller knows the primary's last seen
    epoch). Must be cheap and thread-safe; defaults to zero. *)

val stop : t -> unit
(** Graceful shutdown: wake the reactor, stop accepting, close live
    connections, join reactor and workers, fail pending commits, save
    the snapshot if configured. Idempotent; safe to call from a
    signal-triggered context. *)
