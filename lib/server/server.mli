(** The network reasoning server: a single-threaded non-blocking
    reactor over a {!State.t}.

    One event-loop thread owns every connection descriptor: a
    {!Evloop.poll}-driven loop reads whatever the sockets deliver into
    per-connection {!Iobuf} read buffers, cuts complete frames
    incrementally, and coalesces any number of responses into the
    per-connection write buffer, flushed once per tick (batched wire
    writes). A connection whose output buffer crosses the high-water
    mark stops being read until it drains below the low-water mark
    (backpressure), so a slow consumer cannot balloon the server's
    memory.

    Cheap requests — staging [+fact.]/[-fact.] lines, bulk [LOAD]
    blocks, [QUIT] — are answered inline by the reactor. Anything that
    takes the state's reader-writer lock or blocks on the commit queue
    (queries, UCQs, [COMMIT], [STATS], [SNAPSHOT]) is handed to a small
    worker pool so the reactor never blocks; each connection's requests
    are still answered strictly in submission order (pipelining-safe).
    The single-writer discipline is unchanged: commits flow through
    {!State.commit} to the state's dedicated writer thread.

    {!stop} wakes the reactor through its self-pipe — shutdown is
    immediate, with no polling delay — closes the listener and every
    connection, joins the workers, fails pending commits and saves the
    snapshot if configured. *)

type address =
  | Unix_socket of string  (** path; unlinked on [listen] and [stop] *)
  | Tcp of string * int  (** host, port; port [0] picks a free one *)

type t

val listen :
  ?snapshot:string ->
  ?log:(string -> unit) ->
  ?workers:int ->
  State.t ->
  address ->
  t
(** Binds, starts the reactor and [workers] request threads (default
    4, clamped to [>= 1]), returns immediately. [snapshot] is the
    default path for the [SNAPSHOT] command (with no argument) and is
    written once more during {!stop}. [log] receives one line per
    lifecycle event (default: drop); it may be called from the reactor
    or a worker thread. *)

val address : t -> address
(** The bound address — with [Tcp (_, 0)], the actual port. *)

val connections : t -> int

val stop : t -> unit
(** Graceful shutdown: wake the reactor, stop accepting, close live
    connections, join reactor and workers, fail pending commits, save
    the snapshot if configured. Idempotent; safe to call from a
    signal-triggered context. *)
