module Delta = Guarded_incr.Delta

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect_fd fd = { fd; open_ = true }

let connect_unix path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd fd

let connect_tcp host port =
  let addr =
    try (Unix.gethostbyname host).h_addr_list.(0)
    with Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect_fd fd

let connect = function
  | Server.Unix_socket path -> connect_unix path
  | Server.Tcp (host, port) -> connect_tcp host port

let request c req =
  Wire.write_frame c.fd (Wire.print_request req);
  match Wire.read_frame c.fd with
  | None -> raise (Wire.Protocol_error "server closed the connection mid-request")
  | Some payload -> (
    match Wire.parse_response payload with
    | Ok resp -> resp
    | Error msg -> raise (Wire.Protocol_error ("ill-formed reply: " ^ msg)))

let request_line c line =
  match Wire.parse_request line with
  | Error msg -> Wire.Failed msg
  | Ok req -> request c req

let query c rel =
  match request c (Wire.Query { rel; pattern = None }) with
  | Wire.Answers tuples -> tuples
  | Wire.Failed msg -> failwith msg
  | _ -> raise (Wire.Protocol_error "expected ANSWERS")

let commit c (delta : Delta.t) =
  let stage req =
    match request c req with
    | Wire.Ok -> Ok ()
    | Wire.Failed msg -> Error msg
    | _ -> raise (Wire.Protocol_error "expected OK")
  in
  let rec stage_all = function
    | [] -> Ok ()
    | req :: rest -> ( match stage req with Ok () -> stage_all rest | Error _ as e -> e)
  in
  let reqs =
    List.map (fun a -> Wire.Add a) delta.Delta.additions
    @ List.map (fun a -> Wire.Remove a) delta.Delta.deletions
  in
  match stage_all reqs with
  | Error _ as e -> e
  | Ok () -> (
    match request c Wire.Commit with
    | Wire.Committed { added; removed; epoch } -> Ok (added, removed, epoch)
    | Wire.Failed msg -> Error msg
    | _ -> raise (Wire.Protocol_error "expected COMMITTED"))

let stats c =
  match request c Wire.Stats with
  | Wire.Stats_reply s -> s
  | Wire.Failed msg -> failwith msg
  | _ -> raise (Wire.Protocol_error "expected STATS")

let close c =
  if c.open_ then begin
    c.open_ <- false;
    (try
       Wire.write_frame c.fd (Wire.print_request Wire.Quit);
       ignore (Wire.read_frame c.fd)
     with Wire.Protocol_error _ | Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
