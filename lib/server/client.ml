(** Pipelining client; see the interface for the buffering contract. *)

module Delta = Guarded_incr.Delta

exception Connection_lost of string

type t = {
  mutable fd : Unix.file_descr;
  out : Buffer.t;
  mutable open_ : bool;
  mutable owns_fd : bool;
      (** [fd] has not been [Unix.close]d yet. Distinct from [open_]:
          a transport error marks the connection dead ([open_ = false])
          but the descriptor still belongs to us, while after a failed
          {!reconnect} the stored number is closed and may have been
          reassigned by the kernel to an unrelated connection — closing
          it again would tear someone else's socket down. *)
  addr : Server.address option;  (** where {!reconnect} re-dials *)
}

let connect_fd fd = { fd; out = Buffer.create 4096; open_ = true; owns_fd = true; addr = None }

let sock_target = function
  | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))

(* One connection attempt; the caller owns the retry policy. *)
let dial addr =
  let domain, sockaddr = sock_target addr in
  let fd = Unix.socket domain SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* A server mid-churn (or with a momentarily full accept backlog)
   refuses transiently; a short retry loop keeps sweep drivers from
   dying on what a second attempt would survive. *)
let connect_sock addr =
  let rec go attempts =
    match dial addr with
    | fd -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | EAGAIN | EWOULDBLOCK | EINTR | ETIMEDOUT), _, _)
      when attempts > 1 ->
      ignore (Unix.select [] [] [] 0.025);
      go (attempts - 1)
  in
  go 40

let connect addr = { (connect_fd (connect_sock addr)) with addr = Some addr }
let connect_unix path = connect (Server.Unix_socket path)
let connect_tcp host port = connect (Server.Tcp (host, port))
let address c = c.addr

let reconnect ?(backoff = Backoff.default) c =
  match c.addr with
  | None -> raise (Connection_lost "reconnect: connection has no address")
  | Some addr -> (
    if c.owns_fd then begin
      c.owns_fd <- false;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end;
    Buffer.clear c.out;
    c.open_ <- false;
    let attempt () =
      match dial addr with
      | fd -> Ok fd
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    in
    match Backoff.retry backoff attempt with
    | Ok fd ->
      c.fd <- fd;
      c.owns_fd <- true;
      c.open_ <- true
    | Error msg ->
      raise
        (Connection_lost
           (Fmt.str "reconnect to %s failed: %s" (Server.string_of_address addr) msg)))

(* ------------------------------------------------------------------ *)
(* Buffered framing                                                    *)

let add_frame buf payload =
  let n = String.length payload in
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf payload

let send c req = add_frame c.out (Wire.print_request req)

(* Transport failures surface as the typed {!Connection_lost}, never a
   raw [Unix_error]/EOF leak: callers routing across a cluster switch
   endpoints on exactly this exception. *)
let flush c =
  let s = Buffer.contents c.out in
  Buffer.clear c.out;
  let len = String.length s in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write_substring c.fd s !pos (len - !pos)
    done
  with Unix.Unix_error (e, _, _) ->
    c.open_ <- false;
    raise (Connection_lost (Fmt.str "write failed: %s" (Unix.error_message e)))

let recv c =
  flush c;
  match Wire.read_frame c.fd with
  | None ->
    c.open_ <- false;
    raise (Connection_lost "server closed the connection")
  | Some payload -> (
    match Wire.parse_response payload with
    | Ok resp -> resp
    | Error msg -> raise (Wire.Protocol_error ("ill-formed reply: " ^ msg)))
  | exception Wire.Protocol_error msg ->
    (* A frame truncated mid-read is a dead transport, not a protocol
       bug in the peer's payload. *)
    c.open_ <- false;
    raise (Connection_lost msg)
  | exception Unix.Unix_error (e, _, _) ->
    c.open_ <- false;
    raise (Connection_lost (Fmt.str "read failed: %s" (Unix.error_message e)))

let request c req =
  send c req;
  recv c

let request_line c line =
  match Wire.parse_request line with
  | Error msg -> Wire.Failed msg
  | Ok req -> request c req

let pipeline ?(window = 128) c reqs =
  let window = max 1 window in
  let reqs = Array.of_list reqs in
  let n = Array.length reqs in
  let out = Array.make n Wire.Ok in
  let sent = ref 0 and rcvd = ref 0 in
  while !rcvd < n do
    while !sent < n && !sent - !rcvd < window do
      send c reqs.(!sent);
      incr sent
    done;
    out.(!rcvd) <- recv c;
    incr rcvd
  done;
  Array.to_list out

(* ------------------------------------------------------------------ *)
(* Conveniences                                                        *)

let query c rel =
  match request c (Wire.Query { rel; pattern = None }) with
  | Wire.Answers tuples -> tuples
  | Wire.Failed msg -> failwith msg
  | _ -> raise (Wire.Protocol_error "expected ANSWERS")

let commit c (delta : Delta.t) =
  let reqs =
    List.map (fun a -> Wire.Add a) delta.Delta.additions
    @ List.map (fun a -> Wire.Remove a) delta.Delta.deletions
  in
  let failed =
    List.find_map (function Wire.Failed msg -> Some msg | _ -> None) (pipeline c reqs)
  in
  match failed with
  | Some msg -> Error msg
  | None -> (
    match request c Wire.Commit with
    | Wire.Committed { added; removed; epoch } -> Ok (added, removed, epoch)
    | Wire.Failed msg -> Error msg
    | _ -> raise (Wire.Protocol_error "expected COMMITTED"))

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc rest =
      match (k, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | k, x :: tl -> take (k - 1) (x :: acc) tl
    in
    let head, tail = take n [] l in
    head :: chunks n tail

let load ?(chunk = 8192) c facts =
  let chunk = max 1 chunk in
  let resps = pipeline c (List.map Wire.load_of_facts (chunks chunk facts)) in
  List.fold_left
    (fun acc resp ->
      match (acc, resp) with
      | (Error _ as e), _ -> e
      | Ok n, Wire.Loaded m -> Ok (n + m)
      | Ok _, Wire.Failed msg -> Error msg
      | Ok _, _ -> raise (Wire.Protocol_error "expected LOADED"))
    (Ok 0) resps

let stats c =
  match request c Wire.Stats with
  | Wire.Stats_reply s -> s
  | Wire.Failed msg -> failwith msg
  | _ -> raise (Wire.Protocol_error "expected STATS")

let shutdown c =
  (* Only touch the descriptor while the connection is live: after a
     failed [reconnect] the stored fd number is closed and may have
     been reassigned by the kernel to an unrelated connection. *)
  if c.open_ then begin
    c.open_ <- false;
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let close c =
  if c.open_ then begin
    c.open_ <- false;
    (try
       send c Wire.Quit;
       let s = Buffer.contents c.out in
       Buffer.clear c.out;
       let len = String.length s in
       let pos = ref 0 in
       while !pos < len do
         pos := !pos + Unix.write_substring c.fd s !pos (len - !pos)
       done;
       ignore (Wire.read_frame c.fd)
     with Wire.Protocol_error _ | Unix.Unix_error _ | Sys_error _ -> ())
  end;
  if c.owns_fd then begin
    c.owns_fd <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
