(** Cluster-aware request routing over a set of serving endpoints.

    A {!t} holds one lazily-dialled {!Guarded_server.Client} per
    endpoint and routes by request kind:

    - {b Reads} round-robin across every endpoint (replicas serve
      reads; the primary is just one more). An endpoint that raises
      {!Guarded_server.Client.Connection_lost} is marked dead and the
      next one is tried; dead endpoints are re-dialled under the
      cluster's backoff on their next turn, so a restarted replica
      rejoins the rotation by itself.
    - {b Writes} go to the believed primary. A [redirect …: this
      server is a read-only replica] error re-aims at the address the
      replica names; a dead primary triggers a [ROLE] probe of every
      endpoint to find whoever was promoted. Hops are bounded — a
      cluster of confused replicas yields an error, not a loop.

    Handles are {b not} thread-safe: give each client thread its own
    (they are cheap — sockets open on first use). *)

open Guarded_core
module Client = Guarded_server.Client
module Server = Guarded_server.Server
module Wire = Guarded_server.Wire

type t

val make : ?backoff:Guarded_server.Backoff.t -> Server.address list -> t
(** The first address is the presumed primary until a redirect or
    probe says otherwise. [backoff] (default: a single immediate
    attempt) paces re-dials of endpoints that went dead. The list must
    be non-empty. @raise Invalid_argument on an empty list. *)

val read : t -> Wire.request -> Wire.response
(** Round-robin routing for read-only requests. Tries each endpoint at
    most twice around the ring.
    @raise Client.Connection_lost when no endpoint is reachable. *)

val write : t -> Wire.request -> Wire.response
(** Primary routing with redirect-following and [ROLE]-probe failover;
    returns the last [ERROR] when no writable primary can be found. *)

val query : t -> string -> Term.t list list
(** Read-routed relation query. @raise Failure on an [ERROR] reply. *)

val commit : t -> Guarded_incr.Delta.t -> (int * int * int, string) result
(** Stage the batch and [COMMIT] on the primary (the staging area is
    per-connection, so the whole batch retries as a unit after a
    failover or redirect). Returns [(added, removed, epoch)]. *)

val primary : t -> Server.address
(** The endpoint writes currently aim at. *)

val close : t -> unit
(** Close every open connection. Idempotent. *)
