(** Pure follower state machine; see the interface for the diagram. *)

module Backoff = Guarded_server.Backoff

type state = Streaming | Reconnecting of int | Promoted | Stopped
type event = Connection_up | Connection_down | Retry_failed | Promote | Stop

type policy = { retry : Backoff.t; auto_promote : bool }

let default_policy = { retry = Backoff.default; auto_promote = false }

let terminal = function Promoted | Stopped -> true | Streaming | Reconnecting _ -> false

let exhausted policy = if policy.auto_promote then Promoted else Stopped

let step policy state event =
  match (state, event) with
  | (Promoted | Stopped), _ -> state
  | _, Stop -> Stopped
  | _, Promote -> Promoted
  | Streaming, Connection_down -> Reconnecting 0
  | Streaming, (Connection_up | Retry_failed) -> Streaming
  | Reconnecting _, Connection_up -> Streaming
  | Reconnecting n, (Retry_failed | Connection_down) ->
    (* attempt n just failed; [attempts] counts the dial tries the
       budget allows, so spending them all ends the reconnect arc *)
    let n = n + 1 in
    if n >= policy.retry.Backoff.attempts then exhausted policy else Reconnecting n

let pp ppf = function
  | Streaming -> Fmt.string ppf "streaming"
  | Reconnecting n -> Fmt.pf ppf "reconnecting(%d)" n
  | Promoted -> Fmt.string ppf "promoted"
  | Stopped -> Fmt.string ppf "stopped"
