(** Endpoint routing; see the interface for the policy. *)

module Backoff = Guarded_server.Backoff
module Client = Guarded_server.Client
module Server = Guarded_server.Server
module Wire = Guarded_server.Wire

type endpoint = {
  ep_addr : Server.address;
  mutable ep_conn : Client.t option;  (** dialled on first use *)
  mutable ep_dead : bool;  (** last use raised [Connection_lost] *)
}

type t = {
  mutable eps : endpoint array;
  backoff : Backoff.t;
  mutable primary_idx : int;
  mutable cursor : int;  (** round-robin position for reads *)
}

let make ?(backoff = Backoff.make ~attempts:1 ()) addrs =
  if addrs = [] then invalid_arg "Cluster.make: no endpoints";
  {
    eps =
      Array.of_list
        (List.map (fun a -> { ep_addr = a; ep_conn = None; ep_dead = false }) addrs);
    backoff;
    primary_idx = 0;
    cursor = 0;
  }

let primary t = t.eps.(t.primary_idx).ep_addr

(* Dial or revive an endpoint's connection; [Error] marks it dead. *)
let conn_of t ep =
  match ep.ep_conn with
  | Some c when not ep.ep_dead -> Ok c
  | Some c -> (
    match Client.reconnect ~backoff:t.backoff c with
    | () ->
      ep.ep_dead <- false;
      Ok c
    | exception Client.Connection_lost msg -> Error msg)
  | None -> (
    match Client.connect ep.ep_addr with
    | c ->
      ep.ep_conn <- Some c;
      Ok c
    | exception Unix.Unix_error (e, _, _) ->
      ep.ep_dead <- true;
      Error (Unix.error_message e))

(* Run [f] on the endpoint, translating a dropped connection into
   [Error] and remembering the endpoint is dead. *)
let on_endpoint t ep f =
  match conn_of t ep with
  | Error _ as e -> e
  | Ok c -> (
    match f c with
    | v -> Ok v
    | exception Client.Connection_lost msg ->
      ep.ep_dead <- true;
      Error msg)

(* ------------------------------------------------------------------ *)
(* Reads: round robin with fallback                                    *)

let read t req =
  let n = Array.length t.eps in
  let rec go tries last_err =
    if tries >= 2 * n then
      raise (Client.Connection_lost ("cluster: no endpoint reachable: " ^ last_err))
    else begin
      let ep = t.eps.(t.cursor mod n) in
      t.cursor <- (t.cursor + 1) mod n;
      match on_endpoint t ep (fun c -> Client.request c req) with
      | Ok resp -> resp
      | Error msg -> go (tries + 1) msg
    end
  in
  go 0 "no attempt made"

let query t rel =
  match read t (Wire.Query { rel; pattern = None }) with
  | Wire.Answers tuples -> tuples
  | Wire.Failed msg -> failwith msg
  | _ -> raise (Wire.Protocol_error "expected ANSWERS")

(* ------------------------------------------------------------------ *)
(* Writes: primary routing                                             *)

let redirect_suffix = ": this server is a read-only replica"

let redirect_target msg =
  let prefix = "redirect " in
  let plen = String.length prefix and slen = String.length redirect_suffix in
  let mlen = String.length msg in
  if mlen > plen + slen && String.sub msg 0 plen = prefix && String.sub msg (mlen - slen) slen = redirect_suffix
  then Some (String.sub msg plen (mlen - plen - slen))
  else None

let index_of_addr t addr =
  let key = Server.string_of_address addr in
  let found = ref None in
  Array.iteri
    (fun i ep -> if !found = None && Server.string_of_address ep.ep_addr = key then found := Some i)
    t.eps;
  !found

(* A redirect names a primary we may not have in the ring yet. *)
let aim_at t addr =
  match index_of_addr t addr with
  | Some i -> t.primary_idx <- i
  | None ->
    t.eps <- Array.append t.eps [| { ep_addr = addr; ep_conn = None; ep_dead = false } |];
    t.primary_idx <- Array.length t.eps - 1

(* Ask everyone who answers [ROLE] whether they are the primary now. *)
let probe_primary t =
  let found = ref None in
  Array.iteri
    (fun i ep ->
      if !found = None then
        match on_endpoint t ep (fun c -> Client.request c Wire.Role) with
        | Ok (Wire.Role_reply { rr_primary = true; _ }) -> found := Some i
        | Ok _ | Error _ -> ())
    t.eps;
  !found

let max_hops = 4

let rec route_write t hops ~on_conn ~dead_error =
  if hops >= max_hops then Error dead_error
  else
    let ep = t.eps.(t.primary_idx) in
    match on_endpoint t ep on_conn with
    | Ok (`Done v) -> Ok v
    | Ok (`Redirect msg) -> (
      match Option.bind (redirect_target msg) (fun s ->
                Result.to_option (Server.address_of_string s))
      with
      | Some addr ->
        aim_at t addr;
        route_write t (hops + 1) ~on_conn ~dead_error
      | None -> Error msg)
    | Error _ -> (
      match probe_primary t with
      | Some i ->
        t.primary_idx <- i;
        route_write t (hops + 1) ~on_conn ~dead_error
      | None -> Error dead_error)

let write t req =
  let on_conn c =
    match Client.request c req with
    | Wire.Failed msg when redirect_target msg <> None -> `Redirect msg
    | resp -> `Done resp
  in
  match
    route_write t 0 ~on_conn
      ~dead_error:"cluster: no writable primary reachable"
  with
  | Ok resp -> resp
  | Error msg -> Wire.Failed msg

let commit t delta =
  let on_conn c =
    match Client.commit c delta with
    | Ok v -> `Done (Ok v)
    | Error msg when redirect_target msg <> None -> `Redirect msg
    | Error _ as e -> `Done e
  in
  match
    route_write t 0 ~on_conn
      ~dead_error:"cluster: no writable primary reachable"
  with
  | Ok result -> result
  | Error msg -> Error msg

let close t =
  Array.iter
    (fun ep ->
      match ep.ep_conn with
      | Some c ->
        ep.ep_conn <- None;
        (try Client.close c with Client.Connection_lost _ -> ())
      | None -> ())
    t.eps
