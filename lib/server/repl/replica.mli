(** A warm read replica: bootstrap from the primary, serve read-only
    queries, replay the journal stream, survive the primary's death.

    {!start} runs the whole bootstrap synchronously — dial the primary,
    {!Bootstrap.handshake}, build a {!Guarded_server.State} at the
    handshake's base epoch — and only then opens the serving socket, so
    a replica never answers from a state it has not finished
    installing. A background replay thread then applies each pushed
    [JOURNAL] record through the replica's own commit path in strict
    epoch order: both sides bump one epoch per batch, so after record
    [e] the replica's committed epoch {e is} [e], and
    [replication_lag_epochs] in [STATS] is exactly the primary's newest
    known epoch minus the local one.

    Writes sent to the replica are refused by the server layer with a
    [redirect] error naming the primary. When the stream drops, the
    controller walks the {!Failover} machine: re-dial under the
    policy's backoff, re-handshake from the local epoch (journal resume
    when covered, full snapshot re-install otherwise), and on an
    exhausted budget either stop following or — with
    [auto_promote] — promote itself into a writable primary. An
    explicit [PROMOTE] (wire verb or {!promote}) takes over
    immediately. *)

open Guarded_core
module Server = Guarded_server.Server
module State = Guarded_server.State

type t

val start :
  ?pool:Guarded_par.Pool.t ->
  ?log:(string -> unit) ->
  ?workers:int ->
  ?queue_capacity:int ->
  ?journal_max_bytes:int ->
  ?policy:Failover.policy ->
  ?local:(Theory.t * Database.t) ->
  primary:Server.address ->
  Server.address ->
  (t, string) result
(** [start ~primary addr] bootstraps from [primary] and serves on
    [addr]. Without [local] the replica asks for a full wire snapshot
    ([FOLLOW -1]); with [local (sigma, db)] it first materializes
    [sigma] over [db] itself and offers its epoch-0 state ([FOLLOW 0])
    — the primary streams the journal when it still covers epoch 1,
    and falls back to a snapshot when it does not. [Error] covers an
    unreachable primary, a program mismatch and a corrupt image; the
    serving socket is not opened in that case. *)

val server : t -> Server.t
val state : t -> State.t

val lag : t -> int
(** Primary's newest epoch this replica has heard of minus the local
    committed epoch; [0] when fully caught up. *)

val failover_state : t -> Failover.state

val promote : t -> unit
(** Stop following and flip the server into a writable primary — warm
    failover. Idempotent. *)

val stop : t -> unit
(** Stop following and shut the server down (joins the replay thread).
    Idempotent. *)
