(** Replica controller; see the interface for the lifecycle. *)

module Backoff = Guarded_server.Backoff
module Client = Guarded_server.Client
module Server = Guarded_server.Server
module State = Guarded_server.State
module Wire = Guarded_server.Wire
module Incr = Guarded_incr.Incr

type t = {
  server : Server.t;
  state : State.t;
  client : Client.t;  (** the follower stream; the replay thread's after start *)
  pool : Guarded_par.Pool.t option;
  policy : Failover.policy;
  log : string -> unit;
  last_seen : int Atomic.t;  (** primary's newest epoch heard of *)
  fo_mutex : Mutex.t;
  mutable fo : Failover.state;
  mutable stopping : bool;
  mutable replayer : Thread.t option;
}

let get_fo t =
  Mutex.lock t.fo_mutex;
  let s = t.fo in
  Mutex.unlock t.fo_mutex;
  s

let set_fo t s =
  Mutex.lock t.fo_mutex;
  t.fo <- s;
  Mutex.unlock t.fo_mutex

let fire t ev = set_fo t (Failover.step t.policy (get_fo t) ev)

let server t = t.server
let state t = t.state
let failover_state t = get_fo t
let lag t = max 0 (Atomic.get t.last_seen - State.epoch t.state)

let saw_epoch t e =
  let rec bump () =
    let cur = Atomic.get t.last_seen in
    if e > cur && not (Atomic.compare_and_set t.last_seen cur e) then bump ()
  in
  bump ()

(* One dial per call; the controller owns the pacing between calls. *)
let one_dial = Backoff.make ~attempts:1 ()

(* ------------------------------------------------------------------ *)
(* Replay thread                                                       *)

(* Applies pushed records until the stream dies, then walks the
   failover machine. Records replay through the replica's own commit
   path — same single-writer discipline as a primary — so committed
   epochs line up one-to-one with the primary's. *)
let rec stream t =
  match Client.recv t.client with
  | exception Client.Connection_lost msg ->
    if not t.stopping then t.log (Fmt.str "stream lost: %s" msg);
    reconnect t
  | Wire.Journal_rec { jr_epoch; jr_delta } ->
    saw_epoch t jr_epoch;
    let expected = State.epoch t.state + 1 in
    if jr_epoch < expected then stream t (* duplicate after a resume; drop *)
    else if jr_epoch > expected then begin
      t.log (Fmt.str "journal gap: expected epoch %d, got %d; resyncing" expected jr_epoch);
      resync t
    end
    else begin
      (match State.commit t.state jr_delta with
      | Ok r ->
        if r.State.cr_epoch <> jr_epoch then
          t.log (Fmt.str "replay skew: applied %d as local epoch %d" jr_epoch r.State.cr_epoch)
      | Error msg ->
        (* The primary journalled this epoch even though its fast path
           fell back; our commit did the same recovery, the stores
           still agree. *)
        t.log (Fmt.str "replay: epoch %d applied via fallback: %s" jr_epoch msg));
      stream t
    end
  | Wire.Failed msg ->
    (* In-stream ERROR: the primary truncated its journal under us. *)
    t.log (Fmt.str "primary refused the stream: %s" msg);
    resync t
  | _ ->
    t.log "off-protocol frame on the follower stream; resyncing";
    resync t

(* Drop the connection and re-handshake from the local epoch — a fresh
   connection, because the old one may still have stale [JOURNAL]
   frames in flight that would be misread as the handshake reply. *)
and resync t =
  Client.shutdown t.client;
  reconnect t

and rebase t =
  let since = State.epoch t.state in
  match
    Bootstrap.handshake ?pool:t.pool ~sigma:(State.program t.state) ~since t.client
  with
  | Ok (Bootstrap.Reuse primary_epoch) ->
    saw_epoch t primary_epoch;
    t.log (Fmt.str "resumed journal stream at epoch %d (primary at %d)" since primary_epoch);
    stream t
  | Ok (Bootstrap.Image (epoch, incr)) ->
    State.install t.state incr ~epoch;
    saw_epoch t epoch;
    t.log (Fmt.str "re-bootstrapped from wire snapshot at epoch %d" epoch);
    stream t
  | Error msg ->
    (* Protocol-level refusal (program mismatch, replica ahead of a
       reset primary, corrupt image): retrying cannot fix it. *)
    t.log (Fmt.str "handshake rejected: %s; follower stopping" msg);
    fire t Failover.Stop
  | exception Client.Connection_lost _ -> reconnect t

(* Walk Reconnecting(n) states: sleep the schedule's pause, try one
   dial. [Backoff.delay] is indexed by the current attempt number [n],
   so a policy with [attempts = N] performs exactly N dials; the
   machine's [step] caps [n] before the schedule runs dry, and the
   [None] arm below is only a guard against a policy mutated under
   us. *)
and reconnect t =
  fire t Failover.Connection_down;
  let rec go () =
    if t.stopping then fire t Failover.Stop
    else
      match get_fo t with
      | Failover.Streaming -> rebase t
      | Failover.Stopped -> t.log "follower stopped: primary unreachable and auto-promote is off"
      | Failover.Promoted ->
        t.log "failover: retry budget spent, promoting";
        Server.promote t.server
      | Failover.Reconnecting n -> (
        match Backoff.delay t.policy.Failover.retry n with
        | None ->
          (* budget spent: the step lands in the policy's terminal *)
          fire t Failover.Retry_failed;
          go ()
        | Some pause -> (
          Thread.delay pause;
          match Client.reconnect ~backoff:one_dial t.client with
          | () ->
            fire t Failover.Connection_up;
            go ()
          | exception Client.Connection_lost _ ->
            fire t Failover.Retry_failed;
            go ()))
  in
  go ()

let replay_thread t =
  match stream t with
  | () -> ()
  | exception e ->
    (* Never let the thread die silently mid-serving. *)
    t.log (Fmt.str "replay thread died: %s" (Printexc.to_string e));
    fire t Failover.Stop

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let promote_locked t =
  (* Promote hook runs inside Server.promote exactly once per flip. *)
  t.stopping <- true;
  set_fo t (Failover.step t.policy (get_fo t) Failover.Promote);
  Client.shutdown t.client

let start ?pool ?(log = ignore) ?workers ?queue_capacity ?journal_max_bytes
    ?(policy = Failover.default_policy) ?local ~primary addr =
  match Client.connect primary with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Fmt.str "cannot reach primary %s: %s" (Server.string_of_address primary)
         (Unix.error_message e))
  | client -> (
    let bootstrap () =
      match local with
      | None -> (
        match Bootstrap.handshake ?pool ~since:(-1) client with
        | Ok (Bootstrap.Image (epoch, incr)) -> Ok (epoch, incr)
        | Ok (Bootstrap.Reuse _) -> Error "primary answered FOLLOW -1 without a snapshot"
        | Error _ as e -> e)
      | Some (sigma, db) -> (
        let incr = Incr.materialize ?pool sigma db in
        match Bootstrap.handshake ?pool ~sigma ~since:0 client with
        | Ok (Bootstrap.Reuse _) -> Ok (0, incr)
        | Ok (Bootstrap.Image (epoch, incr)) -> Ok (epoch, incr)
        | Error _ as e -> e)
    in
    match bootstrap () with
    | exception Client.Connection_lost msg ->
      Client.close client;
      Error (Fmt.str "primary hung up during bootstrap: %s" msg)
    | Error msg ->
      Client.close client;
      Error msg
    | Ok (epoch, incr) ->
      let state = State.of_materialization ?queue_capacity ?journal_max_bytes ~epoch incr in
      let server =
        Server.listen ~log ?workers
          ~role:(Server.Replica_of (Server.string_of_address primary))
          state addr
      in
      let t =
        {
          server;
          state;
          client;
          pool;
          policy;
          log;
          last_seen = Atomic.make epoch;
          fo_mutex = Mutex.create ();
          fo = Failover.Streaming;
          stopping = false;
          replayer = None;
        }
      in
      Server.set_lag_source server (fun () -> lag t);
      Server.set_promote_hook server (fun () -> promote_locked t);
      t.replayer <- Some (Thread.create replay_thread t);
      Ok t)

let promote t = Server.promote t.server

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    fire t Failover.Stop
  end;
  Client.shutdown t.client;
  (match t.replayer with
  | Some th ->
    t.replayer <- None;
    Thread.join th
  | None -> ());
  Client.close t.client;
  Server.stop t.server
