(** FOLLOW handshake; see the interface for the contract. *)

module Client = Guarded_server.Client
module Snapshot = Guarded_server.Snapshot
module Wire = Guarded_server.Wire
module Incr = Guarded_incr.Incr

type base = Reuse of int | Image of int * Incr.t

let handshake ?pool ?sigma ~since client =
  match Client.request client (Wire.Follow since) with
  | Wire.Following epoch -> Ok (Reuse epoch)
  | Wire.Snap { sn_epoch; sn_bytes } -> (
    match Snapshot.restore ?pool ~what:"<wire snapshot>" sn_bytes with
    | snap_sigma, incr -> (
      match sigma with
      | Some s when not (Snapshot.theory_equal s snap_sigma) ->
        Error "wire snapshot carries a different program than this replica serves"
      | _ -> Ok (Image (sn_epoch, incr)))
    | exception Snapshot.Corrupt msg -> Error msg)
  | Wire.Failed msg -> Error msg
  | _ -> Error "follow: unexpected reply (peer is not speaking the replication protocol)"
