(** The follower lifecycle as a pure state machine.

    The replica controller ({!Replica}) is threads, sockets and sleeps;
    every decision it takes — keep streaming, retry, give up, take over
    — lives here instead, as a total transition function over plain
    data. Tests enumerate the whole behavior without opening a socket.

    {v
                 Connection_down                Retry_failed (budget left)
      Streaming ----------------> Reconnecting ---------------.
          ^                          |    ^___________________/
          |       Connection_up      |
          '--------------------------'    Retry_failed (budget spent)
                                          --> Promoted   (auto_promote)
                                          --> Stopped    (otherwise)
    v}

    [Promote] and [Stop] jump to their absorbing states from anywhere;
    {!terminal} states ignore every further event. *)

module Backoff = Guarded_server.Backoff

type state =
  | Streaming  (** connected, applying journal records *)
  | Reconnecting of int
      (** connection lost; the int counts failed re-dial attempts so
          far (0 immediately after the loss) *)
  | Promoted  (** this node took over as primary; following is over *)
  | Stopped  (** following abandoned without taking over *)

type event =
  | Connection_up  (** a (re-)dial succeeded *)
  | Connection_down  (** the stream died *)
  | Retry_failed  (** one re-dial attempt failed *)
  | Promote  (** external order to take over (operator or signal rule) *)
  | Stop  (** external order to shut down *)

type policy = {
  retry : Backoff.t;  (** re-dial schedule; [attempts] is the budget *)
  auto_promote : bool;
      (** when the budget is spent: [true] promotes this node,
          [false] stops it *)
}

val default_policy : policy
(** {!Backoff.default} retries, no auto-promotion — losing a primary
    makes the replica read-only rather than silently splitting the
    brain. *)

val step : policy -> state -> event -> state
(** Total: any event in any state yields a state. *)

val terminal : state -> bool
(** [Promoted] and [Stopped] — states {!step} never leaves. *)

val pp : state Fmt.t
