(** The [FOLLOW] handshake: turning a connection to the primary into a
    base state plus a resume epoch.

    One call, three outcomes. [FOLLOW since] tells the primary the
    highest epoch this node already holds ([-1] for "nothing"); the
    primary answers either [FOLLOWING e] — its journal covers
    [since+1 .. e], keep the current state and replay the stream — or
    a [SNAP] frame carrying its full {!Guarded_server.Snapshot} image,
    which is decoded, checked (magic, version, checksum, and program
    equality when the caller already serves one) and rebuilt into a
    materialization. Either way the journal stream that follows on the
    same connection starts exactly one epoch past the returned base —
    the decision is taken under the primary's read lock, so no epoch
    can fall in the gap. *)

open Guarded_core
module Client = Guarded_server.Client

type base =
  | Reuse of int
      (** the journal covers our state; the int is the primary's epoch
          at handshake time (lag accounting), the stream resumes after
          the [since] we sent *)
  | Image of int * Guarded_incr.Incr.t
      (** wire snapshot at the given epoch; install it and expect the
          stream from the next epoch *)

val handshake :
  ?pool:Guarded_par.Pool.t ->
  ?sigma:Theory.t ->
  since:int ->
  Client.t ->
  (base, string) result
(** Sends [FOLLOW since] and interprets the reply. [sigma], when
    given, must equal the program inside a received snapshot
    ({!Guarded_server.Snapshot.theory_equal}) — a primary serving a
    different program is an error, not a silent divergence. A corrupt
    or mismatched image, an [ERROR] reply and an off-protocol reply
    all come back as [Error]; {!Client.Connection_lost} propagates. *)
