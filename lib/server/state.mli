(** Shared serving state: a query backend behind single-writer /
    multi-reader discipline.

    A {!t} wraps a {!backend} — a maintained materialization
    ({!Guarded_incr.Incr.t}) or the demand-driven evaluator
    ({!Guarded_incr.Demand.t}) — so that many connection threads can
    answer queries while update batches commit:

    - {b Readers} take a shared lock ({!with_read}) and always observe
      the last committed epoch — the writer holds the lock exclusively
      for the whole batch, so no reader ever sees a half-applied
      commit.
    - {b One writer}: a dedicated thread owns all mutations. {!commit}
      enqueues the batch on a bounded queue (admission control — when
      the queue is full the submitting connection blocks, which is the
      backpressure signal) and waits for the writer to apply it.
    - {b Atomicity}: a batch whose incremental application dies halfway
      is recovered by a from-scratch stratum recompute
      ({!Guarded_incr.Incr.refresh}) over the already-updated EDB
      before any reader reacquires the lock, so the committed-epoch
      invariant survives even failed fast paths.

    All latency/throughput counters served by the [STATS] command live
    here too. *)

open Guarded_core

type t

type backend =
  | Materialized of Guarded_incr.Incr.t
  | Demand of Guarded_incr.Demand.t
  | Chase of Guarded_incr.Chase_mat.t

val create :
  ?pool:Guarded_par.Pool.t ->
  ?queue_capacity:int ->
  ?journal_max_bytes:int ->
  Theory.t ->
  Database.t ->
  t
(** Materializes the program over the database and starts the writer
    thread. [queue_capacity] (default 64, clamped to [>= 1]) bounds the
    commit queue; [journal_max_bytes] bounds the replication journal
    (see {!Journal.create}). *)

val create_demand :
  ?pool:Guarded_par.Pool.t -> ?queue_capacity:int -> Theory.t -> Database.t -> t
(** Demand-driven serving: no fixpoint runs at startup; queries are
    answered by magic-set evaluation over the raw EDB with a tabled
    subgoal cache, commits invalidate the cache per dependency
    component. Same locking discipline as {!create}. *)

val create_chase :
  ?pool:Guarded_par.Pool.t ->
  ?limits:Guarded_chase.Engine.limits ->
  ?queue_capacity:int ->
  Theory.t ->
  Database.t ->
  t
(** Finite-chase serving: the restricted chase of the database is
    materialized and queries are answered from it directly, bypassing
    the Datalog translation (see {!Guarded_incr.Chase_mat}). Same
    locking discipline as {!create}; no journal, so no followers.
    @raise Guarded_incr.Chase_mat.Nonterminating when the initial
    chase exceeds its derivation budget. *)

val demand_mode : t -> bool

val chase_mode : t -> bool

val of_materialization :
  ?queue_capacity:int -> ?journal_max_bytes:int -> ?epoch:int -> Guarded_incr.Incr.t -> t
(** Wraps an existing materialization — the warm-restart path: the
    snapshot layer rebuilds the {!Guarded_incr.Incr.t} and serving
    starts without re-running any fixpoint. [epoch] (default 0) seeds
    the epoch counter — a replica bootstrapped from a snapshot of
    epoch [k] starts counting at [k] so journal records line up. *)

val install : t -> Guarded_incr.Incr.t -> epoch:int -> unit
(** Replaces the materialization wholesale under the exclusive lock
    and resets the epoch counter — the replica resync path, when a
    follower must re-bootstrap from a fresh snapshot mid-life. The
    journal is cleared (its run no longer leads to the new epoch).
    @raise Invalid_argument in demand mode. *)

val program : t -> Theory.t

val epoch : t -> int
(** Committed batches since startup (plus the starting epoch). *)

val journal : t -> Journal.t option
(** The replication journal — one record per committed epoch, bounded
    by bytes. [None] in demand mode. *)

val set_commit_hook : t -> (int -> unit) -> unit
(** [f epoch] runs on the writer thread after each commit, outside
    every lock — the reactor registers a wake-up here so followers are
    streamed to without polling. Keep it cheap and non-blocking. *)

val with_backend : t -> (backend -> 'a) -> 'a
(** Runs the callback holding the shared lock: the backend is at the
    last committed epoch and cannot change underneath. The callback
    must not mutate it, and must not call {!commit} (lock-ordering). *)

val with_read : t -> (Guarded_incr.Incr.t -> 'a) -> 'a
(** {!with_backend} restricted to materialized serving — the callers
    that need the materialization itself (snapshots, direct database
    access).
    @raise Invalid_argument in demand mode. *)

type commit_result = {
  cr_added : int;
  cr_removed : int;
  cr_epoch : int;  (** the epoch this batch created *)
}

val commit : t -> Guarded_incr.Delta.t -> (commit_result, string) result
(** Submits one batch and blocks until the writer applied it. Blocks
    earlier when the commit queue is full (backpressure). [Error]
    carries the reason when the batch could not be applied cleanly;
    the state is still consistent afterwards. *)

val queue_depth : t -> int
val queue_capacity : t -> int

val note_query : t -> float -> unit
(** Record one served query and its latency in seconds; feeds the
    [STATS] percentiles. *)

val stats :
  t ->
  connections:int ->
  total_connections:int ->
  ?bytes_buffered:int ->
  ?backpressure_stalls:int ->
  ?load_facts:int ->
  ?role:int ->
  ?replicas_connected:int ->
  ?replication_lag:int ->
  unit ->
  Wire.stats
(** A consistent counter snapshot, with the caller's connection gauges
    and event-loop counters spliced in (the reactor owns those; they
    default to zero for callers without one). *)

val shutdown : t -> unit
(** Drains nothing: pending commits are failed with an error, the
    writer thread is joined. Idempotent. *)
