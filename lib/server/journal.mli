(** Bounded in-memory journal of committed batches.

    The primary appends one record per committed epoch — the epoch
    number and the batch's {!Guarded_incr.Delta} in its textual form
    (the [JOURNAL] wire payload) — and followers are streamed every
    record past the epoch they already hold. The journal is bounded by
    total payload bytes: when an append pushes the retained size past
    the cap, the oldest records are evicted. A follower whose resume
    epoch has been evicted cannot be served by replay and must
    re-bootstrap from a snapshot ({!covers} is the test).

    Records are contiguous: epochs [oldest .. latest] with no gaps, an
    invariant {!append} enforces (appending epoch [e] requires the
    journal to be empty or to end at [e - 1]; anything else clears the
    journal first, which is the safe answer after a snapshot install).

    Thread-safe: every operation takes the journal's own lock, so the
    state's writer thread appends while reactor and worker threads
    read. *)

type t

val create : ?max_bytes:int -> unit -> t
(** An empty journal retaining at most [max_bytes] of delta text
    (default 16 MiB, clamped to [>= 4096]). At least the most recent
    record is always retained, even when it alone exceeds the cap. *)

val append : t -> epoch:int -> Guarded_incr.Delta.t -> unit
(** Record the batch that created [epoch]. If [epoch] does not extend
    the retained run ([latest + 1]), the journal is cleared first so
    contiguity holds. *)

val since : t -> int -> (int * string) list
(** [since t k]: the retained records with epoch [> k], oldest first,
    each as [(epoch, delta_text)]. The caller must check {!covers}
    first — a gap between [k] and the oldest retained record makes the
    result unusable for replay. *)

val covers : t -> since:int -> epoch:int -> bool
(** Whether replaying {!since} [k] from this journal reproduces every
    epoch in [(k, epoch]]: either [k = epoch] (nothing to send), or the
    retained run starts at or below [k + 1] and ends at [epoch]. *)

val oldest : t -> int option
(** The lowest retained epoch, [None] when empty. *)

val latest : t -> int option
(** The highest retained epoch, [None] when empty. *)

val bytes : t -> int
(** Total retained delta-text bytes (the [journal_bytes] gauge). *)

val records : t -> int
(** Retained record count. *)

val clear : t -> unit
