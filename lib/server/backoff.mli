(** Bounded exponential backoff schedules.

    A {!t} is a pure description — base delay, growth factor, cap, and
    attempt budget — so retry policies are values that tests can
    inspect without sleeping. {!delay} maps an attempt index to its
    pre-attempt pause, [None] once the budget is exhausted; {!retry}
    drives a fallible action through the schedule. *)

type t = {
  base : float;  (** seconds before the first retry *)
  factor : float;  (** multiplicative growth per attempt *)
  max_delay : float;  (** ceiling on any single pause, seconds *)
  attempts : int;  (** total tries, including the first *)
}

val default : t
(** 8 attempts: 25 ms doubling up to 1 s — a few seconds end to end,
    enough to ride out a restart without hanging a caller for long. *)

val make : ?base:float -> ?factor:float -> ?max_delay:float -> ?attempts:int -> unit -> t
(** {!default} with fields overridden; [attempts] is clamped to
    [>= 1], delays to [>= 0]. *)

val delay : t -> int -> float option
(** [delay t i]: the pause before try [i] (0-based). [Some 0.] for the
    first try, [Some (min max_delay (base *. factor^(i-1)))] for
    retries, [None] when [i >= attempts]. *)

val total_delay : t -> float
(** The worst-case seconds a full schedule sleeps. *)

val retry : t -> (unit -> ('a, 'e) result) -> ('a, 'e) result
(** Run the action through the schedule, sleeping each {!delay}
    between tries, until it returns [Ok] or the budget is spent; the
    last [Error] is returned. The action's exceptions propagate. *)
