(** Bounded epoch journal; see the interface for the contract. *)

module Delta = Guarded_incr.Delta

type record = { r_epoch : int; r_text : string }

type t = {
  mutex : Mutex.t;
  q : record Queue.t;  (** oldest first, contiguous epochs *)
  max_bytes : int;
  mutable total : int;  (** sum of retained [r_text] lengths *)
  mutable last : int;  (** highest retained epoch; meaningless when empty *)
}

let create ?(max_bytes = 16 * 1024 * 1024) () =
  {
    mutex = Mutex.create ();
    q = Queue.create ();
    max_bytes = max 4096 max_bytes;
    total = 0;
    last = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let clear_locked t =
  Queue.clear t.q;
  t.total <- 0

let append t ~epoch delta =
  let text = Fmt.to_to_string Delta.pp delta in
  locked t (fun () ->
      (* A non-contiguous append (snapshot install, epoch reset) would
         make the retained run lie about coverage: drop it first. *)
      if (not (Queue.is_empty t.q)) && t.last <> epoch - 1 then clear_locked t;
      Queue.add { r_epoch = epoch; r_text = text } t.q;
      t.last <- epoch;
      t.total <- t.total + String.length text;
      (* Evict from the old end, but always keep the newest record. *)
      while t.total > t.max_bytes && Queue.length t.q > 1 do
        let r = Queue.take t.q in
        t.total <- t.total - String.length r.r_text
      done)

let since t k =
  locked t (fun () ->
      Queue.fold
        (fun acc r -> if r.r_epoch > k then (r.r_epoch, r.r_text) :: acc else acc)
        [] t.q
      |> List.rev)

let oldest t = locked t (fun () -> Option.map (fun r -> r.r_epoch) (Queue.peek_opt t.q))
let latest t = locked t (fun () -> if Queue.is_empty t.q then None else Some t.last)

let covers t ~since ~epoch =
  since = epoch
  ||
  match (oldest t, latest t) with
  | Some o, Some l -> o <= since + 1 && l = epoch
  | _ -> false

let bytes t = locked t (fun () -> t.total)
let records t = locked t (fun () -> Queue.length t.q)
let clear t = locked t (fun () -> clear_locked t)
