(** A growable byte queue for non-blocking connection I/O.

    One {!t} sits on each side of a connection in the reactor: the read
    buffer accumulates whatever [read(2)] delivered until whole frames
    can be cut from the front (incremental frame parsing), and the
    write buffer coalesces any number of queued responses into as few
    [write(2)] calls as the socket accepts (batched wire writes with
    backpressure measured by {!length}).

    Bytes append at the tail and are consumed from the head; the
    underlying buffer compacts lazily, so sustained streaming does not
    grow it beyond the high-water mark of unconsumed bytes. *)

type t

val create : int -> t
(** [create n] is an empty queue with [n] bytes of initial capacity. *)

val length : t -> int
(** Unconsumed bytes currently queued. *)

val add_string : t -> string -> unit
val add_subbytes : t -> Bytes.t -> int -> int -> unit

val peek_u32be : t -> int option
(** The big-endian 32-bit value at the head, without consuming it;
    [None] when fewer than 4 bytes are queued — the frame-header
    probe. *)

val take_string : t -> off:int -> len:int -> string
(** [take_string t ~off ~len] copies bytes [off, off+len) (relative to
    the head) out as a string and consumes the first [off + len] queued
    bytes — cutting a frame's payload while discarding its header.
    @raise Invalid_argument when fewer than [off + len] bytes are
    queued. *)

val write : t -> Unix.file_descr -> int
(** Writes from the head until the queue empties or the descriptor
    stops accepting ([EAGAIN]/[EWOULDBLOCK], which is not an error);
    consumes and returns the number of bytes written. [EINTR] retries.
    Any other [Unix.Unix_error] propagates — a vanished peer surfaces
    here. *)
