(** Shared serving state: see the interface for the discipline. *)

open Guarded_core
module Incr = Guarded_incr.Incr
module Demand = Guarded_incr.Demand
module Chase_mat = Guarded_incr.Chase_mat
module Delta = Guarded_incr.Delta

(* What answers queries: a maintained materialization, the
   demand-driven evaluator over the raw EDB, or the finite chase
   itself. *)
type backend = Materialized of Incr.t | Demand of Demand.t | Chase of Chase_mat.t

type commit_result = {
  cr_added : int;
  cr_removed : int;
  cr_epoch : int;
}

(* A submitted batch and the cell its submitter waits on. *)
type pending = {
  p_delta : Delta.t;
  mutable p_result : (commit_result, string) result option;
}

(* Latency reservoir: the last [cap] samples, plus a running count.
   Percentiles sort a copy on demand — STATS is rare, samples are
   hot. *)
type reservoir = {
  samples : float array;
  mutable filled : int;  (** valid prefix length *)
  mutable next : int;  (** ring cursor *)
  mutable count : int;  (** lifetime samples *)
}

let reservoir cap = { samples = Array.make cap 0.; filled = 0; next = 0; count = 0 }

let reservoir_add r v =
  r.samples.(r.next) <- v;
  r.next <- (r.next + 1) mod Array.length r.samples;
  r.filled <- min (r.filled + 1) (Array.length r.samples);
  r.count <- r.count + 1

(* The p-th percentile of the retained samples, in microseconds. *)
let reservoir_percentile r p =
  if r.filled = 0 then 0
  else begin
    let a = Array.sub r.samples 0 r.filled in
    Array.sort Float.compare a;
    let idx = min (r.filled - 1) (int_of_float (p *. float_of_int r.filled)) in
    int_of_float (a.(idx) *. 1e6)
  end

type t = {
  mutable backend : backend;
  (* Every committed epoch's delta, retained for follower replay
     (materialized serving only — demand mode has no followers). *)
  journal : Journal.t option;
  mutable on_commit : int -> unit;  (** fired after each epoch, outside the locks *)
  mutex : Mutex.t;
  cond : Condition.t;
  (* Readers-writer lock state: connection threads read, the writer
     thread is the only mutator. The writer takes priority — queries
     are short, and a steady query stream must not starve commits. *)
  mutable readers : int;
  mutable writer_active : bool;
  mutable writer_waiting : bool;
  (* Bounded commit queue. *)
  queue : pending Queue.t;
  capacity : int;
  mutable epoch : int;
  mutable stopping : bool;
  mutable writer : Thread.t option;
  (* Metrics (all under [mutex]). *)
  mutable queries : int;
  query_lat : reservoir;
  commit_lat : reservoir;
}

let program t =
  match t.backend with
  | Materialized incr -> Incr.program incr
  | Demand d -> Demand.program d
  | Chase c -> Chase_mat.program c

let demand_mode t =
  match t.backend with Materialized _ | Chase _ -> false | Demand _ -> true

let chase_mode t =
  match t.backend with Materialized _ | Demand _ -> false | Chase _ -> true
let epoch t = t.epoch
let journal t = t.journal
let set_commit_hook t f = t.on_commit <- f

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let queue_capacity t = t.capacity

(* ------------------------------------------------------------------ *)
(* Readers-writer lock                                                 *)

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer_active || t.writer_waiting do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let with_backend t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) (fun () -> f t.backend)

let with_read t f =
  with_backend t (function
    | Materialized incr -> f incr
    | Demand _ -> invalid_arg "State.with_read: server is in demand mode"
    | Chase _ -> invalid_arg "State.with_read: server is in chase mode")

(* Both called with [t.mutex] held. *)
let write_lock_locked t =
  t.writer_waiting <- true;
  while t.readers > 0 || t.writer_active do
    Condition.wait t.cond t.mutex
  done;
  t.writer_waiting <- false;
  t.writer_active <- true

let write_unlock_locked t =
  t.writer_active <- false;
  Condition.broadcast t.cond

(* ------------------------------------------------------------------ *)
(* The writer thread                                                   *)

(* Apply one batch under the exclusive lock. The incremental paths of
   [Incr.apply] mutate the EDB before the stratum cascades, so when a
   cascade dies the EDB already reflects the batch: [Incr.refresh]
   recomputes every stratum from it, restoring the invariants with the
   batch applied. Only if even that fails is the error surfaced with
   the state possibly stale. *)
let apply_one t (p : pending) =
  Mutex.lock t.mutex;
  write_lock_locked t;
  Mutex.unlock t.mutex;
  let t0 = Unix.gettimeofday () in
  let result =
    match t.backend with
    | Materialized incr -> (
      match Incr.apply incr p.p_delta with
      | res ->
        Stdlib.Ok { cr_added = res.Incr.res_added; cr_removed = res.Incr.res_removed; cr_epoch = 0 }
      | exception e -> (
        let msg = Printexc.to_string e in
        match Incr.refresh incr with
        | () -> Error (Fmt.str "batch applied by fallback recompute after: %s" msg)
        | exception e2 ->
          Error
            (Fmt.str "batch failed: %s (recovery also failed: %s)" msg (Printexc.to_string e2))))
    | Demand d -> (
      (* No derived state to corrupt: [Demand.apply] only mutates the
         EDB and evicts cache entries, so there is no recovery path. *)
      match Demand.apply d p.p_delta with
      | res ->
        Stdlib.Ok
          { cr_added = res.Demand.res_added; cr_removed = res.Demand.res_removed; cr_epoch = 0 }
      | exception e -> Error (Fmt.str "batch failed: %s" (Printexc.to_string e)))
    | Chase c -> (
      (* [Chase_mat.apply] builds the new chase on the side and installs
         it atomically, so a failed batch leaves the served state
         unchanged — no recovery needed. *)
      match Chase_mat.apply c p.p_delta with
      | res ->
        Stdlib.Ok
          {
            cr_added = res.Chase_mat.res_added;
            cr_removed = res.Chase_mat.res_removed;
            cr_epoch = 0;
          }
      | exception Chase_mat.Nonterminating { budget; derivations } ->
        Error
          (Fmt.str "batch rejected: chase exceeded %d derivations (budget %d); state unchanged"
             derivations budget)
      | exception e -> Error (Fmt.str "batch failed: %s" (Printexc.to_string e)))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mutex;
  t.epoch <- t.epoch + 1;
  let committed_epoch = t.epoch in
  (* Journal every epoch: even the failure paths have applied the
     batch to the EDB (fallback recompute, or the incremental mutation
     that preceded the cascade), so a follower replaying this record
     converges on the same store. *)
  Option.iter (fun j -> Journal.append j ~epoch:committed_epoch p.p_delta) t.journal;
  reservoir_add t.commit_lat dt;
  p.p_result <-
    Some (match result with Stdlib.Ok r -> Stdlib.Ok { r with cr_epoch = t.epoch } | Error _ as e -> e);
  write_unlock_locked t;
  Mutex.unlock t.mutex;
  t.on_commit committed_epoch

let writer_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some p ->
      Condition.broadcast t.cond;
      (* a queue slot freed: unblock a backpressured submitter *)
      Mutex.unlock t.mutex;
      apply_one t p;
      loop ()
    | None ->
      (* stopping with an empty queue *)
      Mutex.unlock t.mutex
  in
  loop ()

let commit t delta =
  let p = { p_delta = delta; p_result = None } in
  Mutex.lock t.mutex;
  while Queue.length t.queue >= t.capacity && not t.stopping do
    Condition.wait t.cond t.mutex
  done;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    Error "server is shutting down"
  end
  else begin
    Queue.add p t.queue;
    Condition.broadcast t.cond;
    while p.p_result = None && not (t.stopping && Queue.is_empty t.queue && not t.writer_active) do
      Condition.wait t.cond t.mutex
    done;
    let r =
      match p.p_result with Some r -> r | None -> Error "server is shutting down"
    in
    Mutex.unlock t.mutex;
    r
  end

(* ------------------------------------------------------------------ *)
(* Construction, metrics, shutdown                                     *)

let make ?(queue_capacity = 64) ?journal_max_bytes ?(epoch = 0) backend =
  let t =
    {
      backend;
      journal =
        (match backend with
        | Materialized _ -> Some (Journal.create ?max_bytes:journal_max_bytes ())
        | Demand _ | Chase _ -> None);
      on_commit = (fun _ -> ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      readers = 0;
      writer_active = false;
      writer_waiting = false;
      queue = Queue.create ();
      capacity = max 1 queue_capacity;
      epoch = max 0 epoch;
      stopping = false;
      writer = None;
      queries = 0;
      query_lat = reservoir 1024;
      commit_lat = reservoir 1024;
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t

let of_materialization ?queue_capacity ?journal_max_bytes ?epoch incr =
  make ?queue_capacity ?journal_max_bytes ?epoch (Materialized incr)

let create ?pool ?queue_capacity ?journal_max_bytes sigma db =
  make ?queue_capacity ?journal_max_bytes (Materialized (Incr.materialize ?pool sigma db))

let create_demand ?pool ?queue_capacity sigma db =
  make ?queue_capacity (Demand (Demand.create ?pool sigma db))

let create_chase ?pool ?limits ?queue_capacity sigma db =
  make ?queue_capacity (Chase (Chase_mat.create ?pool ?limits sigma db))

(* Replace the materialization wholesale — the replica resync path: a
   follower whose resume epoch fell off the primary's journal
   re-bootstraps from a snapshot and installs it at that snapshot's
   epoch. Exclusive lock, like a commit; the journal is cleared since
   its retained run no longer leads up to the new epoch. *)
let install t incr ~epoch =
  Mutex.lock t.mutex;
  write_lock_locked t;
  (match t.backend with
  | Materialized _ -> ()
  | Demand _ | Chase _ ->
    write_unlock_locked t;
    Mutex.unlock t.mutex;
    invalid_arg "State.install: server is not in materialized mode");
  t.backend <- Materialized incr;
  t.epoch <- epoch;
  Option.iter Journal.clear t.journal;
  write_unlock_locked t;
  Mutex.unlock t.mutex

let note_query t dt =
  Mutex.lock t.mutex;
  t.queries <- t.queries + 1;
  reservoir_add t.query_lat dt;
  Mutex.unlock t.mutex

let stats t ~connections ~total_connections ?(bytes_buffered = 0) ?(backpressure_stalls = 0)
    ?(load_facts = 0) ?(role = 0) ?(replicas_connected = 0) ?(replication_lag = 0) () =
  (* Cardinalities are read under the shared lock (the writer may be
     mid-batch), counters under the mutex. In demand mode the resident
     store is the raw EDB and [facts] counts it; the materialization
     cardinality does not exist. *)
  let facts, edb_facts, relations, index_runs, storage_bytes, cache, chase =
    with_backend t (fun backend ->
        let db, edb, cache, chase =
          match backend with
          | Materialized incr -> (Incr.db incr, Incr.edb incr, None, None)
          | Demand d -> (Demand.edb d, Demand.edb d, Some (Demand.cache_stats d), None)
          | Chase c -> (Chase_mat.db c, Chase_mat.edb c, None, Some (Chase_mat.stats c))
        in
        let storage = Database.storage_stats db in
        let runs, bytes =
          List.fold_left
            (fun (r, b) (st : Database.rel_stats) -> (r + st.rs_runs, b + st.rs_bytes))
            (0, 0) storage
        in
        ( Database.cardinal db,
          Database.cardinal edb,
          List.length storage,
          runs,
          bytes,
          cache,
          chase ))
  in
  let heap_kb = (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / 1024 in
  Mutex.lock t.mutex;
  let s =
    {
      Wire.s_epoch = t.epoch;
      s_facts = facts;
      s_edb_facts = edb_facts;
      s_queries = t.queries;
      s_batches = t.commit_lat.count;
      s_queue_depth = Queue.length t.queue;
      s_connections = connections;
      s_total_connections = total_connections;
      s_connections_open = connections;
      s_bytes_buffered = bytes_buffered;
      s_backpressure_stalls = backpressure_stalls;
      s_load_facts = load_facts;
      s_query_p50_us = reservoir_percentile t.query_lat 0.50;
      s_query_p95_us = reservoir_percentile t.query_lat 0.95;
      s_commit_p50_us = reservoir_percentile t.commit_lat 0.50;
      s_commit_p95_us = reservoir_percentile t.commit_lat 0.95;
      s_relations = relations;
      s_index_runs = index_runs;
      s_storage_bytes = storage_bytes;
      s_cache_hits = (match cache with Some c -> c.Guarded_incr.Subgoal_cache.sc_hits | None -> 0);
      s_cache_misses =
        (match cache with Some c -> c.Guarded_incr.Subgoal_cache.sc_misses | None -> 0);
      s_cache_entries =
        (match cache with Some c -> c.Guarded_incr.Subgoal_cache.sc_entries | None -> 0);
      s_cache_evictions =
        (match cache with Some c -> c.Guarded_incr.Subgoal_cache.sc_evictions | None -> 0);
      s_heap_kb = heap_kb;
      s_demand = (match t.backend with Materialized _ | Chase _ -> 0 | Demand _ -> 1);
      s_chase_mode = (match t.backend with Chase _ -> 1 | Materialized _ | Demand _ -> 0);
      s_chase_nulls = (match chase with Some c -> c.Chase_mat.st_nulls | None -> 0);
      s_chase_derivations =
        (match chase with Some c -> c.Chase_mat.st_derivations | None -> 0);
      s_role = role;
      s_replicas_connected = replicas_connected;
      s_replication_lag_epochs = replication_lag;
      s_journal_bytes = (match t.journal with Some j -> Journal.bytes j | None -> 0);
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (* Fail whatever is still queued; the writer exits once empty. *)
    Queue.iter (fun p -> p.p_result <- Some (Error "server is shutting down")) t.queue;
    Queue.clear t.queue;
    Condition.broadcast t.cond
  end;
  let w = t.writer in
  t.writer <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join w
