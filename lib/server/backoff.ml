(** Bounded exponential backoff; see the interface. *)

type t = { base : float; factor : float; max_delay : float; attempts : int }

let default = { base = 0.025; factor = 2.0; max_delay = 1.0; attempts = 8 }

let make ?(base = default.base) ?(factor = default.factor) ?(max_delay = default.max_delay)
    ?(attempts = default.attempts) () =
  {
    base = Float.max 0. base;
    factor = Float.max 1. factor;
    max_delay = Float.max 0. max_delay;
    attempts = max 1 attempts;
  }

let delay t i =
  if i < 0 || i >= t.attempts then None
  else if i = 0 then Some 0.
  else Some (Float.min t.max_delay (t.base *. (t.factor ** float_of_int (i - 1))))

let total_delay t =
  let rec go i acc =
    match delay t i with None -> acc | Some d -> go (i + 1) (acc +. d)
  in
  go 0 0.

let retry t f =
  let rec go i =
    match delay t i with
    | None -> assert false
    | Some d ->
      if d > 0. then Unix.sleepf d;
      (match f () with
      | Ok _ as ok -> ok
      | Error _ as e -> if i + 1 >= t.attempts then e else go (i + 1))
  in
  go 0
