(** Conjunctive queries over databases enriched with existential rules
    (Section 7). *)

open Guarded_core

type t = {
  body : Atom.t list;
  answer_vars : string list;
}

val make : Atom.t list -> answer_vars:string list -> t

val of_string : string -> t * string
(** Parses "body -> q(X, Y)." and returns the query together with the
    head relation name. *)

val vars : t -> Names.Sset.t

val to_rule : t -> query_rel:string -> Rule.t
(** The ACDom-guarded query rule of Section 7: weakly frontier-guarded
    in any enriched theory. *)

val pp : t Fmt.t
