(** Conjunctive-query minimization (cores) and homomorphic containment
    (Chandra-Merlin), used to shrink queries before the Section 7
    pipeline. *)

open Guarded_core

val retracts_onto : Atom.t list -> Atom.t list -> fixed:Names.Sset.t -> bool
(** Is there a homomorphism from the first conjunction into the second
    that is the identity on [fixed] variables? *)

val core : Cq.t -> Cq.t
(** The unique minimal equivalent subquery. *)

val contained_in : Cq.t -> Cq.t -> bool
(** [contained_in q1 q2]: every answer of [q1] is an answer of [q2] on
    every database. *)

val equivalent : Cq.t -> Cq.t -> bool
