(** Unions of conjunctive queries over rule-enriched databases:
    certain answers, Sagiv-Yannakakis containment, minimization. *)

open Guarded_core

type t = { disjuncts : Cq.t list }

val make : Cq.t list -> t
(** @raise Invalid_argument on an empty union or mixed arities. *)

val arity : t -> int

val of_string : string -> t * string
(** Parses ";"-separated CQ rules sharing one head relation; returns the
    union and the head relation name. *)

val certain_answers :
  ?budget:Guarded_translate.Pipeline.budget -> Theory.t -> t -> Database.t -> Term.t list list

val certain :
  ?budget:Guarded_translate.Pipeline.budget -> Theory.t -> t -> Database.t -> bool

val contained_in : t -> t -> bool
(** Each disjunct of the first contained in some disjunct of the second. *)

val equivalent : t -> t -> bool

val minimize : t -> t
(** Core every disjunct, then drop disjuncts subsumed by another. *)

val pp : t Fmt.t
