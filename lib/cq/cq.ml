(** Conjunctive queries over databases enriched with existential rules
    (Section 7).

    A conjunctive query q(~x) ← ∃~y. φ(~x, ~y) is turned into the rule
    φ ∧ ACDom(x1) ∧ ... ∧ ACDom(xn) → Q(~x), which is weakly
    frontier-guarded in any enriched theory (the ACDom atoms make every
    answer variable safe, so the frontier has no unsafe variable to
    guard). Answering then goes through the translation pipelines; the
    certain answers coincide with the homomorphism-based semantics, which
    is also provided directly against a saturated chase for
    cross-checking. *)

open Guarded_core

type t = {
  body : Atom.t list;
  answer_vars : string list;
}

let make body ~answer_vars =
  let body_vars =
    List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
  in
  List.iter
    (fun v ->
      if not (Names.Sset.mem v body_vars) then
        invalid_arg (Fmt.str "Cq.make: answer variable %s does not occur in the query body" v))
    answer_vars;
  { body; answer_vars }

(* Parse "q(X, Y) :- r(X, Z), s(Z, Y)." style text: the head atom names
   the answer tuple, the body is a conjunction of atoms. For uniformity
   with the rule parser we reuse its syntax: "r(X,Z), s(Z,Y) -> q(X,Y)." *)
let of_string text =
  let rule = Parser.rule_of_string text in
  if not (Rule.is_datalog rule && Rule.is_positive rule) then
    invalid_arg "Cq.of_string: a conjunctive query is a positive Datalog rule";
  match Rule.head rule with
  | [ head ] ->
    let answer_vars =
      List.map
        (function
          | Term.Var v -> v
          | t -> invalid_arg (Fmt.str "Cq.of_string: non-variable answer term %a" Term.pp t))
        (Atom.args head)
    in
    (make (Rule.body_atoms rule) ~answer_vars, Atom.rel head)
  | _ -> invalid_arg "Cq.of_string: query must have a single head atom"

let vars q =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty q.body

(* The ACDom-guarded query rule of Section 7. *)
let to_rule q ~query_rel =
  let head = Atom.make query_rel (List.map (fun v -> Term.Var v) q.answer_vars) in
  let acdom_atoms =
    List.map (fun v -> Atom.make Database.acdom_rel [ Term.Var v ]) q.answer_vars
  in
  Rule.make_pos (q.body @ acdom_atoms) [ head ]

let pp ppf q =
  Fmt.pf ppf "(%a) <- %a"
    (Names.pp_comma_list Fmt.string)
    q.answer_vars
    (Names.pp_comma_list Atom.pp)
    q.body
