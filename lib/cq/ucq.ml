(** Unions of conjunctive queries: the closure of CQs under union, with
    certain-answer semantics over rule-enriched databases and the
    classic containment test (Sagiv-Yannakakis: Q ⊆ ∪Qi iff each
    disjunct of Q is contained in some Qi). *)

open Guarded_core

type t = {
  disjuncts : Cq.t list;  (** all with the same answer arity *)
}

let make disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Ucq.make: empty union"
  | q :: rest ->
    let arity = List.length q.Cq.answer_vars in
    List.iter
      (fun q' ->
        if List.length q'.Cq.answer_vars <> arity then
          invalid_arg "Ucq.make: disjuncts with different answer arities")
      rest;
    { disjuncts }

let arity u = List.length (List.hd u.disjuncts).Cq.answer_vars

(* Parse a ;-separated list of CQ rules sharing one head relation:
   "e(X,Y) -> q(X). ; p(X) -> q(X)." *)
let of_string text =
  let parts =
    String.split_on_char ';' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parsed = List.map Cq.of_string parts in
  (match parsed with
  | (_, rel0) :: rest ->
    List.iter
      (fun (_, rel) ->
        if not (String.equal rel rel0) then
          invalid_arg "Ucq.of_string: disjuncts must share the head relation")
      rest
  | [] -> invalid_arg "Ucq.of_string: empty union");
  (make (List.map fst parsed), snd (List.hd parsed))

(* Certain answers: the union of the disjuncts' certain answers — sound
   and complete for unions (a certain answer of the union must be a
   certain answer of one disjunct on the chase, by universality). *)
let certain_answers ?budget (sigma : Theory.t) (u : t) db =
  List.concat_map (fun q -> Answer.certain_answers ?budget sigma q db) u.disjuncts
  |> List.sort_uniq (List.compare Term.compare)

let certain ?budget sigma u db = certain_answers ?budget sigma u db <> []

(* Containment: every disjunct of [u1] homomorphically contained in some
   disjunct of [u2]. *)
let contained_in (u1 : t) (u2 : t) : bool =
  arity u1 = arity u2
  && List.for_all
       (fun q1 -> List.exists (fun q2 -> Minimize.contained_in q1 q2) u2.disjuncts)
       u1.disjuncts

let equivalent u1 u2 = contained_in u1 u2 && contained_in u2 u1

(* Minimization: core every disjunct, then drop disjuncts contained in
   another remaining one. *)
let minimize (u : t) : t =
  let cored = List.map Minimize.core u.disjuncts in
  let rec prune kept = function
    | [] -> List.rev kept
    | q :: rest ->
      let redundant =
        List.exists (fun q' -> Minimize.contained_in q q') (kept @ rest)
      in
      if redundant then prune kept rest else prune (q :: kept) rest
  in
  { disjuncts = prune [] cored }

let pp ppf u =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:(Fmt.any " ∪@ ") Cq.pp)
    u.disjuncts
