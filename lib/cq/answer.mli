(** Answering conjunctive queries over rule-enriched databases. *)

open Guarded_core

val certain_answers :
  ?budget:Guarded_translate.Pipeline.budget ->
  Theory.t ->
  Cq.t ->
  Database.t ->
  Term.t list list
(** Folds the ACDom-guarded query rule into the theory and answers
    through the translation pipelines of Sections 5-7. *)

val certain :
  ?budget:Guarded_translate.Pipeline.budget -> Theory.t -> Cq.t -> Database.t -> bool
(** Boolean-query variant. *)

val answers_via_chase :
  ?limits:Guarded_chase.Engine.limits ->
  Theory.t ->
  Cq.t ->
  Database.t ->
  Term.t list list * Guarded_chase.Engine.outcome
(** Homomorphisms into a chase, answer variables restricted to
    constants; complete exactly when the run saturates. Used as an
    independent oracle. *)
