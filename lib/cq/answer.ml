(** Answering conjunctive queries over rule-enriched databases.

    Two routes are provided:
    - {!certain_answers}: fold the ACDom-guarded query rule into the
      theory and run the translation pipelines of Sections 5-7 (always
      applicable for weakly frontier-guarded theories, data-independent
      translation whenever the combined theory stays in a PTime
      fragment);
    - {!answers_via_chase}: evaluate the query directly against a
      saturated chase (sound; complete exactly when the chase run
      saturates), used by the test-suite as an independent oracle. *)

open Guarded_core

let query_gensym = Names.gensym "CqAns"

(* Certain answers through the translation pipelines. *)
let certain_answers ?budget (sigma : Theory.t) (q : Cq.t) db =
  let query_rel = Names.fresh query_gensym in
  let enriched = Theory.of_rules (Theory.rules sigma @ [ Cq.to_rule q ~query_rel ]) in
  Guarded_translate.Pipeline.answer ?budget enriched db ~query:query_rel

(* Boolean query: no answer variables. *)
let certain ?budget sigma q db =
  match certain_answers ?budget sigma q db with [] -> false | _ :: _ -> true

(* Answers by homomorphism into a chase: answer variables must land on
   constants, the other variables may land on labeled nulls (which is
   sound by universality of the chase). *)
let answers_via_chase ?limits (sigma : Theory.t) (q : Cq.t) db =
  let res = Guarded_chase.Engine.run ?limits sigma db in
  let tuples = ref [] in
  Homomorphism.iter_pos q.Cq.body res.db (fun subst ->
      let tuple =
        List.map
          (fun v ->
            match Subst.find_opt v subst with
            | Some t -> t
            | None -> invalid_arg "Answer.answers_via_chase: unbound answer variable")
          q.Cq.answer_vars
      in
      if List.for_all Term.is_const tuple then tuples := tuple :: !tuples);
  (List.sort_uniq (List.compare Term.compare) !tuples, res.outcome)
