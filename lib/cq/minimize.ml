(** Conjunctive-query minimization: the core of a CQ.

    Two conjunctive queries are equivalent iff they have homomorphisms
    into each other (Chandra-Merkle); every CQ has a unique (up to
    isomorphism) minimal equivalent subquery, its {e core}. Minimizing
    before answering shrinks the joins and, in Section 7's pipeline, the
    rule folded into the theory. The algorithm is the classic one:
    repeatedly try to drop a body atom and check that a homomorphism
    from the original body into the remainder still exists, fixing the
    answer variables. *)

open Guarded_core

(* Is there a homomorphism from [atoms] into [target_atoms] that is the
   identity on [fixed] variables? Both sides may share variables; the
   target is frozen. *)
let retracts_onto atoms target_atoms ~fixed =
  let frozen_targets = List.map Guarded_translate.Matching.freeze_atom target_atoms in
  let db = Database.of_atoms frozen_targets in
  let init =
    Names.Sset.fold
      (fun v acc -> Subst.add v (Guarded_translate.Matching.freeze_term (Term.Var v)) acc)
      fixed Subst.empty
  in
  Homomorphism.exists ~init atoms db

(* The core of [q]: a minimal subset of the body admitting a retraction
   from the full body that fixes the answer variables. *)
let core (q : Cq.t) : Cq.t =
  let fixed = Names.Sset.of_list q.Cq.answer_vars in
  let rec shrink kept =
    let try_drop a =
      let remainder = List.filter (fun b -> not (Atom.equal a b)) kept in
      if remainder <> [] && retracts_onto kept remainder ~fixed then Some remainder else None
    in
    match List.find_map try_drop kept with
    | Some smaller -> shrink smaller
    | None -> kept
  in
  { q with Cq.body = shrink q.Cq.body }

(* Homomorphic containment: q1 ⊆ q2 (every answer of q1 is an answer of
   q2 on every database) iff q2's body maps into q1's body fixing the
   answer tuple. *)
let fresh_gensym = Names.gensym "cqv"

let contained_in (q1 : Cq.t) (q2 : Cq.t) : bool =
  List.length q1.Cq.answer_vars = List.length q2.Cq.answer_vars
  &&
  (* align the answer variables of q2 with those of q1 and rename its
     other variables apart (they must not collide with q1's names) *)
  let renaming =
    Names.Sset.fold
      (fun v acc -> Subst.add v (Term.Var (Names.fresh fresh_gensym)) acc)
      (Names.Sset.diff (Cq.vars q2) (Names.Sset.of_list q2.Cq.answer_vars))
      (List.fold_left2
         (fun acc v2 v1 -> Subst.add v2 (Term.Var v1) acc)
         Subst.empty q2.Cq.answer_vars q1.Cq.answer_vars)
  in
  let q2_body = Subst.apply_atoms renaming q2.Cq.body in
  retracts_onto q2_body q1.Cq.body ~fixed:(Names.Sset.of_list q1.Cq.answer_vars)

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1
