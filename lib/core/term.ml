(** Terms of existential rules: constants, labeled nulls and variables.

    Following the paper's preliminaries, [Const] ranges over the constant
    domain Δc, [Null] over the labeled nulls Δn (invented by the chase),
    and [Var] over the variables Δv (occurring in rules only). *)

type t =
  | Const of string
  | Null of int
  | Var of string

let compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Const x, Const y -> String.compare x y
    | Const _, (Null _ | Var _) -> -1
    | Null _, Const _ -> 1
    | Null x, Null y -> Int.compare x y
    | Null _, Var _ -> -1
    | Var _, (Const _ | Null _) -> 1
    | Var x, Var y -> String.compare x y

let equal a b = a == b || compare a b = 0

(* ------------------------------------------------------------------ *)
(* Interning.

   Every term can be mapped to a canonical representative carrying a
   dense integer id. Ids are structural: two structurally equal terms
   always receive the same id, whether or not they are the same
   allocation. [Atom.make] routes all its terms through [intern], so
   terms stored in databases are physically unique and both the [==]
   fast path of [equal] and the id-keyed indexes of [Database] apply.

   Domain safety: a single global table guarded by a mutex is the
   authority for id assignment, and each domain keeps a private read
   cache in domain-local storage. The hot path — looking up a term that
   this domain has already seen — touches only the private cache and
   takes no lock; a miss consults the global table under the mutex and
   memoizes the result locally. Caches only ever store what the global
   table assigned, so every domain agrees on the canonical
   representative (hence [==] remains valid across domains) and on the
   id. *)

let intern_mutex = Mutex.create ()
let global_tbl : (t, t * int) Hashtbl.t = Hashtbl.create 4096
let next_id = ref 0

let intern_global t =
  Mutex.lock intern_mutex;
  let p =
    match Hashtbl.find_opt global_tbl t with
    | Some p -> p
    | None ->
      let id = !next_id in
      incr next_id;
      let p = (t, id) in
      Hashtbl.add global_tbl t p;
      p
  in
  Mutex.unlock intern_mutex;
  p

let local_tbl : (t, t * int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let intern_pair t =
  let cache = Domain.DLS.get local_tbl in
  match Hashtbl.find_opt cache t with
  | Some p -> p
  | None ->
    let p = intern_global t in
    Hashtbl.add cache t p;
    p

let intern t = fst (intern_pair t)
let id t = snd (intern_pair t)

let is_const = function Const _ -> true | Null _ | Var _ -> false
let is_null = function Null _ -> true | Const _ | Var _ -> false
let is_var = function Var _ -> true | Const _ | Null _ -> false

(* A term with no variable may occur in a database. *)
let is_ground = function Const _ | Null _ -> true | Var _ -> false

let pp ppf = function
  | Const c -> Fmt.string ppf c
  | Null n -> Fmt.pf ppf "_n%d" n
  | Var v -> Fmt.pf ppf "?%s" v

let to_string = Fmt.to_to_string pp

(* A constant spelling survives printing bare iff the tokenizer reads it
   back as one identifier and [term_of_ident] maps that identifier to the
   same constant: every character from the identifier alphabet, a first
   character that does not start a variable, and not the [_nK] null
   notation. *)
let const_needs_quoting c =
  let ident_char ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = '?'
  in
  let all_ident = String.for_all ident_char c in
  let n = String.length c in
  n = 0
  || (not all_ident)
  || c.[0] = '?'
  || (c.[0] >= 'A' && c.[0] <= 'Z')
  || (n > 2 && c.[0] = '_' && c.[1] = 'n'
      && Option.is_some (int_of_string_opt (String.sub c 2 (n - 2))))

let pp_quoted ppf = function
  | Const c when const_needs_quoting c ->
    (* The lexer has no escape sequence, so a constant containing a
       quote cannot be written at all; print it quoted anyway rather
       than silently bare. *)
    Fmt.pf ppf "'%s'" c
  | t -> pp ppf t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = id
end)
