(** Terms of existential rules: constants, labeled nulls and variables.

    Following the paper's preliminaries, [Const] ranges over the constant
    domain Δc, [Null] over the labeled nulls Δn (invented by the chase),
    and [Var] over the variables Δv (occurring in rules only). *)

type t =
  | Const of string
  | Null of int
  | Var of string

let compare a b =
  match (a, b) with
  | Const x, Const y -> String.compare x y
  | Const _, (Null _ | Var _) -> -1
  | Null _, Const _ -> 1
  | Null x, Null y -> Int.compare x y
  | Null _, Var _ -> -1
  | Var _, (Const _ | Null _) -> 1
  | Var x, Var y -> String.compare x y

let equal a b = compare a b = 0

let is_const = function Const _ -> true | Null _ | Var _ -> false
let is_null = function Null _ -> true | Const _ | Var _ -> false
let is_var = function Var _ -> true | Const _ | Null _ -> false

(* A term with no variable may occur in a database. *)
let is_ground = function Const _ | Null _ -> true | Var _ -> false

let pp ppf = function
  | Const c -> Fmt.string ppf c
  | Null n -> Fmt.pf ppf "_n%d" n
  | Var v -> Fmt.pf ppf "?%s" v

let to_string = Fmt.to_to_string pp

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
