(** Weak acyclicity (Fagin-Kolaitis-Miller-Popa): the classic sufficient
    condition for termination of the restricted chase. A weakly acyclic
    theory's restricted chase terminates on every database in
    polynomially many steps; the oblivious chase may still diverge. *)

type edge_kind =
  | Regular
  | Special

module Pos_map : Map.S with type key = Classify.position

type graph = (Classify.position * edge_kind) list Pos_map.t

val dependency_graph : Theory.t -> graph

val is_weakly_acyclic : Theory.t -> bool
(** No cycle through a special edge. *)

val special_edges : Theory.t -> (Classify.position * Classify.position) list
