(** Normalization of theories (Definition 4 / Proposition 1).

    A theory is normal when (i) every head is a single atom, (ii) every
    rule with existential variables is guarded, and (iii) constants occur
    only in fact rules of the form [-> R(c)].

    The transformation used here:
    - multi-atom Datalog heads are split into one rule per head atom;
      multi-atom existential heads go through a fresh head relation over
      all head variables;
    - a non-guarded existential rule [body -> ∃z. H] becomes
      [body -> Front(f)] and [Front(f) -> ∃z. H] where [f] enumerates the
      frontier, making the existential rule guarded by [Front(f)];
    - a constant [c] inside an ordinary rule is pulled out through the
      fresh unary relation [Cst_c] (axiomatized by the fact rule
      [-> Cst_c(c)]): body occurrences inside an atom [A] are removed by
      specializing [A] to a fresh constant-free relation defined by a
      guarded rule, head occurrences by rebuilding the head atom from a
      constant-free core via an extra Datalog rule.

    The result preserves answers over the original signature, and
    preserves weak (frontier-)guardedness. Near (frontier-)guardedness is
    preserved except in one corner the paper glosses over: a guarded rule
    carrying a constant in its head whose frontier contains unsafe
    variables normalizes to a weakly guarded (not nearly guarded) rule;
    the full pipeline still handles such theories through the
    weakly-guarded route (see DESIGN.md). *)

let var_gensym = Names.gensym "nv"
let rel_gensym = Names.gensym "NF"

(* A stable, signature-friendly name for the constant relation. *)
let const_rel c = "Cst_" ^ c

let const_fact c = Rule.make_pos [] [ Atom.make (const_rel c) [ Term.Const c ] ]

let is_fact_rule r = Rule.body r = [] && List.for_all Atom.is_ground (Rule.head r)

(* --- (i) singleton heads ------------------------------------------------ *)

let split_head r =
  match Rule.head r with
  | [] | [ _ ] -> [ r ]
  | head when Rule.is_datalog r ->
    List.map (fun h -> Rule.make ?label:(Rule.label r) (Rule.body r) [ h ]) head
  | head ->
    let hvars = Names.Sset.elements (Rule.head_vars r) in
    let aux = Atom.make (Names.fresh rel_gensym ^ "_head") (List.map (fun v -> Term.Var v) hvars) in
    let bridge = Rule.make ?label:(Rule.label r) ~evars:(Names.Sset.elements (Rule.evars r)) (Rule.body r) [ aux ] in
    bridge :: List.map (fun h -> Rule.make_pos [ aux ] [ h ]) head

(* --- (ii) guard existential rules --------------------------------------- *)

let guard_existential r =
  if Rule.is_datalog r || Classify.is_guarded_rule r then [ r ]
  else begin
    let frontier = Names.Sset.elements (Rule.fvars r) in
    let aux = Atom.make (Names.fresh rel_gensym ^ "_front") (List.map (fun v -> Term.Var v) frontier) in
    [
      Rule.make ?label:(Rule.label r) (Rule.body r) [ aux ];
      Rule.make_pos ~evars:(Names.Sset.elements (Rule.evars r)) [ aux ] (Rule.head r);
    ]
  end

(* --- (iii) eliminate constants ------------------------------------------ *)

(* Replace the constants of a body atom by specializing its relation:
   R(t1,..,tn) with constants at positions P becomes R_spec(vars only),
   defined by the guarded, constant-free rule
   R(x1,..,xn), Cst_c(xi) [i in P] -> R_spec(xj | j not in P). *)
let specialize_body_atom ~emit atom =
  if Atom.ann atom <> [] then
    invalid_arg "Normalize: annotated atoms are not expected before annotation pipelines";
  let consts = Atom.constants atom in
  if consts = [] then atom
  else begin
    let slots = List.map (fun t -> (t, Term.Var (Names.fresh var_gensym))) (Atom.args atom) in
    let gen_atom = Atom.make (Atom.rel atom) (List.map snd slots) in
    let const_atoms =
      List.filter_map
        (fun (t, v) ->
          match t with
          | Term.Const c ->
            emit (const_fact c);
            Some (Atom.make (const_rel c) [ v ])
          | Term.Var _ | Term.Null _ -> None)
        slots
    in
    let kept =
      List.filter_map
        (fun (t, v) -> match t with Term.Const _ -> None | Term.Var _ | Term.Null _ -> Some (t, v))
        slots
    in
    let spec_rel = Names.fresh rel_gensym ^ "_spec_" ^ Atom.rel atom in
    let spec_atom_generic = Atom.make spec_rel (List.map snd kept) in
    emit (Rule.make_pos (gen_atom :: const_atoms) [ spec_atom_generic ]);
    Atom.make spec_rel (List.map fst kept)
  end

(* Rebuild a head atom with constants from a constant-free core relation:
   body -> H(~t) with constants becomes body -> H_core(head vars) plus
   H_core(~w), Cst_c(z_i).. -> H(~t[c -> z]). *)
let rebuild_head_atom ~emit ~evars atom =
  let consts = Atom.constants atom in
  if consts = [] then atom
  else begin
    let hvars = Names.Sset.elements (Atom.var_set atom) in
    let core_rel = Names.fresh rel_gensym ^ "_core_" ^ Atom.rel atom in
    let core_atom = Atom.make core_rel (List.map (fun v -> Term.Var v) hvars) in
    let replaced = ref [] in
    let subst_const t =
      match t with
      | Term.Const c ->
        let v = Names.fresh var_gensym in
        emit (const_fact c);
        replaced := (c, v) :: !replaced;
        Term.Var v
      | Term.Var _ | Term.Null _ -> t
    in
    let rebuilt = Atom.map_terms subst_const atom in
    let const_atoms = List.map (fun (c, v) -> Atom.make (const_rel c) [ Term.Var v ]) !replaced in
    ignore evars;
    emit (Rule.make_pos (core_atom :: const_atoms) [ rebuilt ]);
    core_atom
  end

let eliminate_constants r =
  if is_fact_rule r && List.length (Rule.head r) = 1 then [ r ]
  else if Names.Sset.is_empty (Rule.constants r) then [ r ]
  else begin
    let extra = ref [] in
    let emit r' = extra := r' :: !extra in
    let body =
      List.map (Literal.map_atom (specialize_body_atom ~emit)) (Rule.body r)
    in
    let evars = Names.Sset.elements (Rule.evars r) in
    let head = List.map (rebuild_head_atom ~emit ~evars) (Rule.head r) in
    Rule.make ?label:(Rule.label r) ~evars body head :: !extra
  end

(* --- full normalization -------------------------------------------------- *)

let normalize (sigma : Theory.t) : Theory.t =
  let step f rules = List.concat_map f rules in
  Theory.rules sigma
  |> step split_head
  |> step guard_existential
  |> step eliminate_constants
  (* Constant elimination can introduce new multi-variable heads? No: it
     emits singleton-headed rules only; but it can emit duplicate Cst
     facts, so deduplicate. *)
  |> Theory.of_rules
  |> Theory.dedup

let is_normal (sigma : Theory.t) =
  List.for_all
    (fun r ->
      List.length (Rule.head r) = 1
      && (Rule.is_datalog r || Classify.is_guarded_rule r)
      && (Names.Sset.is_empty (Rule.constants r) || is_fact_rule r))
    (Theory.rules sigma)
