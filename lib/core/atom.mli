(** Atoms [R(t1, ..., tn)], optionally with an annotated relation name
    [R[u1, ..., uk](t1, ..., tn)].

    Annotations ("relation name annotations", Section 2 of the paper)
    carry terms as part of the relation name; the weakly-frontier-guarded
    to weakly-guarded translation (Section 5.2) parks the terms sitting
    in non-affected positions there. Two atoms denote the same relation
    exactly when name, annotation arity and argument arity all agree. *)

type t = private {
  rel : string;
  ann : Term.t list;  (** annotation terms; [[]] for ordinary atoms *)
  args : Term.t list;
  rel_id : int;  (** interned {!rel_key}; equal iff the relations agree *)
  term_ids : int array;  (** {!Term.id}s of [ann @ args] — do not mutate *)
  id : int;  (** unique per structurally distinct atom *)
  hash : int;  (** stored hash, never recomputed *)
}
(** Atoms are hash-consed: {!make} returns the unique allocation for
    each structurally distinct atom, with interned terms. {!equal} is
    physical equality; {!hash}/{!id} are stored integers.

    Hash-consing is domain-safe with the same two-level scheme as
    {!Term.intern}: mutex-guarded global tables (the authority for
    allocations, [rel_id]s and [id]s) fronted by per-domain
    [Domain.DLS] read caches, keeping the repeated-[make] fast path
    lock-free while every domain sees the same physical atom. As with
    terms, [id] assignment order varies with evaluation history, so
    reproducible orders must use {!compare} or pure structure. *)

val make : ?ann:Term.t list -> string -> Term.t list -> t

val rel : t -> string
val ann : t -> Term.t list
val args : t -> Term.t list

val arity : t -> int
(** Number of argument positions (annotation slots not counted). *)

type rel_key = string * int * int
(** Relation identity: name, annotation arity, argument arity. *)

val rel_key : t -> rel_key

val rel_id : t -> int
(** Interned relation key: [rel_id a = rel_id b] iff
    [rel_key a = rel_key b]. The database indexes key on this. *)

val rel_key_id : rel_key -> int
(** Interns a relation key directly (allocating an id if unseen). *)

val rel_key_of_id : int -> rel_key
(** Inverse of {!rel_key_id}. @raise Not_found on an unallocated id. *)

val id : t -> int
(** Unique dense id of this (hash-consed) atom. *)

val hash : t -> int
(** Stored hash — constant-time, no structural traversal. *)

val term_ids : t -> int array
(** Per-position {!Term.id}s of [ann @ args]. Internal to the join
    engine; callers must not mutate the array. *)

val terms : t -> Term.t list
(** All terms: annotation followed by arguments. *)

val vars : t -> string list
(** All variable names, annotation included, in positional order (with
    duplicates). *)

val var_set : t -> Names.Sset.t

val term_set : t -> Term.Set.t

val arg_vars : t -> string list
(** Variables of the argument positions only. Guardedness notions look
    at these: annotation slots are invisible to guards. *)

val arg_var_set : t -> Names.Sset.t

val constants : t -> string list
val is_ground : t -> bool

val compare : t -> t -> int
(** Structural total order (for deterministic sorted output);
    consistent with {!equal} thanks to hash-consing. *)

val equal : t -> t -> bool
(** Physical equality — valid because atoms are hash-consed. *)

val map_terms : (Term.t -> Term.t) -> t -> t
(** Applies the function to annotation and argument terms alike. *)

val pp : t Fmt.t
val to_string : t -> string

val pp_quoted : t Fmt.t
(** {!pp} with {!Term.pp_quoted} for the terms: constants that would not
    parse back bare are quoted, so the printed atom round-trips through
    {!Parser.atom_of_string}. *)

module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed on atoms with physical equality and the stored
    hash: lookups never traverse the atom. *)
