(** Atoms [R(t1, ..., tn)], optionally with an annotated relation name
    [R[u1, ..., uk](t1, ..., tn)].

    Annotations ("relation name annotations", Section 2 of the paper)
    carry terms as part of the relation name; the weakly-frontier-guarded
    to weakly-guarded translation (Section 5.2) parks the terms sitting
    in non-affected positions there. Two atoms denote the same relation
    exactly when name, annotation arity and argument arity all agree. *)

type t = private {
  rel : string;
  ann : Term.t list;  (** annotation terms; [[]] for ordinary atoms *)
  args : Term.t list;
}

val make : ?ann:Term.t list -> string -> Term.t list -> t

val rel : t -> string
val ann : t -> Term.t list
val args : t -> Term.t list

val arity : t -> int
(** Number of argument positions (annotation slots not counted). *)

type rel_key = string * int * int
(** Relation identity: name, annotation arity, argument arity. *)

val rel_key : t -> rel_key

val terms : t -> Term.t list
(** All terms: annotation followed by arguments. *)

val vars : t -> string list
(** All variable names, annotation included, in positional order (with
    duplicates). *)

val var_set : t -> Names.Sset.t

val term_set : t -> Term.Set.t

val arg_vars : t -> string list
(** Variables of the argument positions only. Guardedness notions look
    at these: annotation slots are invisible to guards. *)

val arg_var_set : t -> Names.Sset.t

val constants : t -> string list
val is_ground : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val map_terms : (Term.t -> Term.t) -> t -> t
(** Applies the function to annotation and argument terms alike. *)

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
