(** Weak acyclicity (Fagin, Kolaitis, Miller, Popa): the classic
    sufficient condition for termination of the {e restricted} chase
    (the oblivious chase may still diverge by re-firing on its own
    nulls: t(X,Y) → ∃Z. t(Z,Y) is weakly acyclic), used here to let
    callers run unbounded restricted chases safely.

    The dependency graph has one node per (relation, argument position).
    For every rule, every universal variable x occurring in body position
    p and head position h induces a {e regular} edge p → h; if the
    rule also has an existential variable at head position e, each such
    body position p additionally gets a {e special} edge p ⇒ e. The
    theory is weakly acyclic iff no cycle goes through a special edge;
    then every restricted-chase sequence terminates in polynomially many
    steps in the database size. *)

type edge_kind =
  | Regular
  | Special

module Pos_map = Map.Make (struct
  type t = Classify.position

  let compare = compare
end)

type graph = (Classify.position * edge_kind) list Pos_map.t

let add_edge src dst kind (g : graph) : graph =
  let existing = match Pos_map.find_opt src g with Some l -> l | None -> [] in
  if List.mem (dst, kind) existing then g else Pos_map.add src ((dst, kind) :: existing) g

(* Argument positions of variable [x] in [atoms]. *)
let positions_in atoms x = Classify.positions_of_var atoms x

let dependency_graph (sigma : Theory.t) : graph =
  List.fold_left
    (fun g r ->
      let body = Rule.body_atoms r in
      let head = Rule.head r in
      let evar_positions =
        Names.Sset.fold
          (fun y acc -> Classify.Pos_set.union acc (positions_in head y))
          (Rule.evars r) Classify.Pos_set.empty
      in
      (* Only frontier variables (body variables that reach the head)
         induce edges: their values propagate, possibly forcing the
         invention of the nulls at the existential positions. *)
      Names.Sset.fold
        (fun x g ->
          let body_pos = positions_in body x in
          let head_pos = positions_in head x in
          Classify.Pos_set.fold
            (fun p g ->
              let g =
                Classify.Pos_set.fold (fun h g -> add_edge p h Regular g) head_pos g
              in
              Classify.Pos_set.fold (fun e g -> add_edge p e Special g) evar_positions g)
            body_pos g)
        (Rule.fvars r) g)
    Pos_map.empty (Theory.rules sigma)

(* Is there a cycle through a special edge? Check per special edge
   (u ⇒ v): reachable(v) ∋ u. *)
let is_weakly_acyclic (sigma : Theory.t) : bool =
  let g = dependency_graph sigma in
  let successors p = match Pos_map.find_opt p g with Some l -> List.map fst l | None -> [] in
  let reaches src dst =
    let visited = Hashtbl.create 16 in
    let rec go p =
      if compare p dst = 0 then true
      else if Hashtbl.mem visited p then false
      else begin
        Hashtbl.replace visited p ();
        List.exists go (successors p)
      end
    in
    go src
  in
  not
    (Pos_map.exists
       (fun src edges ->
         List.exists (fun (dst, kind) -> kind = Special && reaches dst src) edges)
       g)

(* The special edges, for diagnostics. *)
let special_edges (sigma : Theory.t) : (Classify.position * Classify.position) list =
  Pos_map.fold
    (fun src edges acc ->
      List.fold_left
        (fun acc (dst, kind) -> if kind = Special then (src, dst) :: acc else acc)
        acc edges)
    (dependency_graph sigma) []
