(** Substitutions: finite maps from variables to terms.

    Homomorphisms from atom sets into databases (mapping variables to
    constants and nulls) and variable renamings are both represented as
    substitutions. Application leaves unmapped variables untouched. *)

type t = Term.t Names.Smap.t

val empty : t
val is_empty : t -> bool
val singleton : string -> Term.t -> t
val add : string -> Term.t -> t -> t
val find_opt : string -> t -> Term.t option
val mem : string -> t -> bool
val bindings : t -> (string * Term.t) list
val of_list : (string * Term.t) list -> t
val domain : t -> Names.Sset.t
val range : t -> Term.Set.t
val cardinal : t -> int

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t
val apply_atoms : t -> Atom.t list -> Atom.t list
val apply_literal : t -> Literal.t -> Literal.t

val compose : t -> t -> t
(** [compose s1 s2] applies [s1] first: [(compose s1 s2) x = s2 (s1 x)].
    Bindings of [s2] on variables outside [dom s1] are kept. *)

val unify_term : t -> Term.t -> Term.t -> t option
(** [unify_term s t target] extends [s] so that it maps [t] to the
    ground term [target]; [None] on conflict. *)

val match_atom : t -> Atom.t -> Atom.t -> t option
(** [match_atom s pattern target] extends [s] to a homomorphism sending
    [pattern] to the (ground) atom [target]. *)

val pp : t Fmt.t
