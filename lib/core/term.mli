(** Terms of existential rules.

    Following the paper's preliminaries, terms are drawn from three
    mutually disjoint infinite sets: constants Δc, labeled nulls Δn
    (invented by the chase), and variables Δv (occurring in rules
    only). *)

type t =
  | Const of string  (** a constant from Δc *)
  | Null of int  (** the labeled null with the given index, from Δn *)
  | Var of string  (** a variable from Δv *)

val compare : t -> t -> int
(** Total order: constants before nulls before variables. *)

val equal : t -> t -> bool
(** Structural equality, with a physical-equality fast path that fires
    for interned terms (everything that went through {!Atom.make}). *)

val intern : t -> t
(** Canonical representative of a term: structurally equal terms intern
    to the same allocation.

    Domain-safe: a mutex-guarded global table is the single authority
    for representatives and ids, and each domain keeps a lock-free
    [Domain.DLS] read cache of global results — so all domains agree
    on one physical representative (physical equality stays valid
    across domains) and the fast path takes no lock. *)

val id : t -> int
(** [id t] is a dense non-negative integer identifying [t] up to
    structural equality; it is stable for the lifetime of the process.
    The per-(relation, position, term) indexes of {!Database} and the
    trigger keys of the chase are keyed on these ids instead of
    rehashing structural values. Note that the id {e assignment order}
    depends on evaluation history (and, with a pool, on the domain
    interleaving): ids must not leak into reproducibility-sensitive
    orders — sort by {!compare}, or key on pure structure, instead. *)

val is_const : t -> bool
val is_null : t -> bool
val is_var : t -> bool

val is_ground : t -> bool
(** [is_ground t] holds for constants and nulls — the terms that may
    occur in databases. *)

val pp : t Fmt.t
(** Prints constants bare, nulls as [_nK], variables as [?x]; the
    output is accepted back by {!Parser}. *)

val pp_quoted : t Fmt.t
(** Like {!pp}, but wraps a constant in ['quotes'] whenever its bare
    spelling would not parse back to itself (empty, non-identifier
    characters, a capitalized or [?]-leading name, or the [_nK] null
    notation). [parse ∘ print] is the identity for every constant not
    containing a quote character — the wire protocol and update-batch
    printers use this. *)

val const_needs_quoting : string -> bool
(** Whether {!pp_quoted} would quote this constant spelling. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed on terms, hashing via {!id} (one memo-table
    lookup, no structural hashing of the term). *)
