(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled nulls.
    Facts are indexed per relation and per (position, term) pair so that
    homomorphism search and semi-naive evaluation can select candidate
    facts for partially bound atoms without scanning whole relations.

    The distinguished unary relation {!acdom_rel} ("ACDom" in the paper)
    holds exactly the terms of the active domain; {!materialize_acdom}
    populates it from the current non-ACDom facts. *)

type t = {
  by_rel : (Atom.rel_key, (Atom.t, unit) Hashtbl.t) Hashtbl.t;
  by_pos : (Atom.rel_key * int * Term.t, (Atom.t, unit) Hashtbl.t) Hashtbl.t;
  mutable count : int;
}

let acdom_rel = "ACDom"

let create () = { by_rel = Hashtbl.create 64; by_pos = Hashtbl.create 256; count = 0 }

let cardinal db = db.count

let mem db atom =
  match Hashtbl.find_opt db.by_rel (Atom.rel_key atom) with
  | None -> false
  | Some tbl -> Hashtbl.mem tbl atom

let add db atom =
  if not (Atom.is_ground atom) then
    invalid_arg (Fmt.str "Database.add: non-ground atom %a" Atom.pp atom);
  if mem db atom then false
  else begin
    let key = Atom.rel_key atom in
    let tbl =
      match Hashtbl.find_opt db.by_rel key with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 32 in
        Hashtbl.add db.by_rel key tbl;
        tbl
    in
    Hashtbl.replace tbl atom ();
    List.iteri
      (fun i t ->
        let pkey = (key, i, t) in
        let ptbl =
          match Hashtbl.find_opt db.by_pos pkey with
          | Some ptbl -> ptbl
          | None ->
            let ptbl = Hashtbl.create 8 in
            Hashtbl.add db.by_pos pkey ptbl;
            ptbl
        in
        Hashtbl.replace ptbl atom ())
      (Atom.terms atom);
    db.count <- db.count + 1;
    true
  end

let add_all db atoms = List.iter (fun a -> ignore (add db a)) atoms

let of_atoms atoms =
  let db = create () in
  add_all db atoms;
  db

let iter f db = Hashtbl.iter (fun _ tbl -> Hashtbl.iter (fun a () -> f a) tbl) db.by_rel

let fold f db acc =
  let r = ref acc in
  iter (fun a -> r := f a !r) db;
  !r

let to_list db = fold (fun a acc -> a :: acc) db []

let copy db =
  let db' = create () in
  iter (fun a -> ignore (add db' a)) db;
  db'

let facts_of_rel db key =
  match Hashtbl.find_opt db.by_rel key with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun a () acc -> a :: acc) tbl []

let rel_cardinal db key =
  match Hashtbl.find_opt db.by_rel key with None -> 0 | Some tbl -> Hashtbl.length tbl

(* Candidate facts that can match [pattern] (whose terms may contain
   variables): if some position of the pattern is ground, use the
   positional index, otherwise return the whole relation. *)
let candidates db pattern =
  let key = Atom.rel_key pattern in
  let rec first_ground i = function
    | [] -> None
    | t :: rest -> if Term.is_ground t then Some (i, t) else first_ground (i + 1) rest
  in
  match first_ground 0 (Atom.terms pattern) with
  | Some (i, t) -> (
    match Hashtbl.find_opt db.by_pos (key, i, t) with
    | None -> []
    | Some ptbl -> Hashtbl.fold (fun a () acc -> a :: acc) ptbl [])
  | None -> facts_of_rel db key

(* Active domain: every term occurring in a non-ACDom fact. *)
let active_domain db =
  fold
    (fun a acc ->
      if Atom.rel a = acdom_rel then acc
      else List.fold_left (fun acc t -> Term.Set.add t acc) acc (Atom.terms a))
    db Term.Set.empty

let materialize_acdom db =
  Term.Set.iter
    (fun t -> ignore (add db (Atom.make acdom_rel [ t ])))
    (active_domain db)

(* Relations present in the database. *)
let relations db = Hashtbl.fold (fun key _ acc -> key :: acc) db.by_rel []

let restrict db keep =
  let db' = create () in
  iter (fun a -> if keep a then ignore (add db' a)) db;
  db'

(* Set equality of the stored facts. *)
let equal db1 db2 =
  cardinal db1 = cardinal db2 && fold (fun a ok -> ok && mem db2 a) db1 true

let pp ppf db =
  let facts = List.sort Atom.compare (to_list db) in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) facts
