(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled nulls.
    Facts are held columnar: each relation stores its facts as packed
    int columns (one [int array] of {!Term.id}s per position) plus a
    parallel row→fact array, and candidate selection for partially
    bound atoms runs over {e sorted-run indexes} — per position, a
    short list of {!Intrun} runs of (term id, row) pairs — instead of
    hashtable buckets. Intersecting several bound positions walks the
    most selective position's runs and confirms the others with direct
    column reads, so the hot join path does binary searches and array
    loads, no hashing and no per-candidate allocation.

    Indexes are maintained LSM-style: {!add} appends a row to the
    columns in O(width) and leaves the indexes alone; the first lookup
    that needs a position's index folds the pending rows into a new
    sorted run and merges runs of similar size (lengths stay strictly
    increasing, so a relation holds O(log n) runs and total merge work
    is O(n log n)). A flush installs a fresh immutable snapshot through
    an [Atomic.t] under a per-relation mutex, so concurrent readers —
    the domain pool's parallel rounds read one shared database — either
    see the old complete snapshot or the new one, never a torn state.
    As before, additions made during a candidate iteration are not
    visited (runs are snapshotted at lookup time), and {!remove} must
    not run during an iteration: a removal swap-deletes the row out of
    every column and bumps the relation version, invalidating all of
    its runs (they rebuild lazily on next use).

    For rollback, every database carries a monotone mutation {!epoch};
    with {!enable_journal} the inverse of each mutation is also logged,
    and {!rollback} replays the log back to an earlier epoch.

    The distinguished unary relation {!acdom_rel} ("ACDom" in the paper)
    holds exactly the terms of the active domain; {!materialize_acdom}
    populates it from the current non-ACDom facts. *)

module Int_tbl = Hashtbl.Make (Int)

(* Immutable index snapshot for one column: the sorted runs (newest
   first, strictly increasing lengths), how many rows they cover, and
   the relation version they were built against. *)
type ixstate = {
  ix_runs : int array list;
  ix_flushed : int;
  ix_version : int;
}

let empty_ix = { ix_runs = []; ix_flushed = 0; ix_version = 0 }

(* Columnar store of one relation. [r_atoms]/[r_cols] share capacity;
   rows [0, r_rows) are live. [r_version] counts removals: a removal
   renumbers a row, so every run referencing rows is stale after it. *)
type rel = {
  r_id : int;  (** interned {!Atom.rel_id} *)
  r_width : int;  (** term positions: annotation slots + arguments *)
  r_ann : int;  (** of which annotation slots *)
  mutable r_atoms : Atom.t array;
  mutable r_cols : int array array;
  mutable r_rows : int;
  r_rowid : int Atom.Tbl.t;  (** fact -> row index *)
  r_ix : ixstate Atomic.t array;  (** one per position *)
  r_lock : Mutex.t;  (** serializes index flushes *)
  mutable r_version : int;
}

(* Journal entry: the inverse operation that undoes a mutation. *)
type mutation = Undo_add of Atom.t | Undo_remove of Atom.t

type t = {
  rels : rel Int_tbl.t;  (** rel_id -> columnar store *)
  mutable count : int;
  mutable epoch : int;  (** monotone mutation counter *)
  mutable journaling : bool;
  mutable journal : mutation list;  (** inverse ops, newest first *)
}

type epoch = int

let acdom_rel = "ACDom"

let create () =
  { rels = Int_tbl.create 64; count = 0; epoch = 0; journaling = false; journal = [] }

let cardinal db = db.count

let rel_of db rel_id = Int_tbl.find_opt db.rels rel_id

let mem db atom =
  match rel_of db (Atom.rel_id atom) with
  | None -> false
  | Some r -> Atom.Tbl.mem r.r_rowid atom

(* ------------------------------------------------------------------ *)
(* Row storage                                                         *)

let rel_create atom =
  let width = Array.length (Atom.term_ids atom) in
  {
    r_id = Atom.rel_id atom;
    r_width = width;
    r_ann = List.length (Atom.ann atom);
    r_atoms = [||];
    r_cols = Array.init width (fun _ -> [||]);
    r_rows = 0;
    r_rowid = Atom.Tbl.create 32;
    r_ix = Array.init width (fun _ -> Atomic.make empty_ix);
    r_lock = Mutex.create ();
    r_version = 0;
  }

let rel_grow r =
  let cap = max 8 (2 * Array.length r.r_atoms) in
  let atoms = Array.make cap r.r_atoms.(0) in
  Array.blit r.r_atoms 0 atoms 0 r.r_rows;
  r.r_atoms <- atoms;
  for p = 0 to r.r_width - 1 do
    let col = Array.make cap 0 in
    Array.blit r.r_cols.(p) 0 col 0 r.r_rows;
    r.r_cols.(p) <- col
  done

let rel_add r atom =
  if r.r_rows = Array.length r.r_atoms then begin
    if Array.length r.r_atoms = 0 then begin
      r.r_atoms <- Array.make 8 atom;
      r.r_cols <- Array.init r.r_width (fun _ -> Array.make 8 0)
    end
    else rel_grow r
  end;
  let row = r.r_rows in
  r.r_atoms.(row) <- atom;
  let ids = Atom.term_ids atom in
  for p = 0 to r.r_width - 1 do
    r.r_cols.(p).(row) <- ids.(p)
  done;
  Atom.Tbl.replace r.r_rowid atom row;
  r.r_rows <- row + 1

(* Swap-remove: the last row takes the victim's slot, in every column.
   O(width); renumbers one row, so the sorted runs are all stale. *)
let rel_remove r atom =
  match Atom.Tbl.find_opt r.r_rowid atom with
  | None -> false
  | Some row ->
    Atom.Tbl.remove r.r_rowid atom;
    let last = r.r_rows - 1 in
    if row < last then begin
      let moved = r.r_atoms.(last) in
      r.r_atoms.(row) <- moved;
      for p = 0 to r.r_width - 1 do
        r.r_cols.(p).(row) <- r.r_cols.(p).(last)
      done;
      Atom.Tbl.replace r.r_rowid moved row
    end;
    r.r_rows <- last;
    r.r_version <- r.r_version + 1;
    true

(* ------------------------------------------------------------------ *)
(* Sorted-run index maintenance                                        *)

(* Fold the pending rows of position [p] into the run stack: sort the
   tail into a new run, then merge while the new run is at least as
   long as the head run — lengths stay strictly increasing, so a
   column keeps O(log n) runs and amortizes its merges. *)
let flush_locked r p st =
  let base = if st.ix_version = r.r_version then st else empty_ix in
  let col = r.r_cols.(p) in
  let pending = r.r_rows - base.ix_flushed in
  let run = Array.init pending (fun i ->
      let row = base.ix_flushed + i in
      Intrun.pack col.(row) row)
  in
  Intrun.sort run;
  let rec push runs a =
    match runs with
    | b :: tl when Array.length a >= Array.length b -> push tl (Intrun.merge b a)
    | _ -> a :: runs
  in
  { ix_runs = push base.ix_runs run; ix_flushed = r.r_rows; ix_version = r.r_version }

(* The current complete index snapshot of position [p]: fast path is
   one atomic load; a stale snapshot is rebuilt under the relation
   lock, re-checking after acquisition (another domain may have
   flushed first). *)
let get_index r p =
  let a = r.r_ix.(p) in
  let st = Atomic.get a in
  if st.ix_flushed = r.r_rows && st.ix_version = r.r_version then st
  else begin
    Mutex.lock r.r_lock;
    let st = Atomic.get a in
    let st =
      if st.ix_flushed = r.r_rows && st.ix_version = r.r_version then st
      else begin
        let st' = flush_locked r p st in
        Atomic.set a st';
        st'
      end
    in
    Mutex.unlock r.r_lock;
    st
  end

let index_count r p v =
  let st = get_index r p in
  List.fold_left (fun acc run -> acc + Intrun.count_value run v) 0 st.ix_runs

(* Iterate the rows with value [v] at position [p]. The snapshot is
   captured once, so rows added mid-iteration are not visited. *)
let index_iter_rows r p v f =
  let st = get_index r p in
  List.iter
    (fun run ->
      let lo, hi = Intrun.seg run v in
      for i = lo to hi - 1 do
        f (Intrun.row run.(i))
      done)
    st.ix_runs

(* ------------------------------------------------------------------ *)
(* Mutation, journaling, rollback                                      *)

(* Index maintenance shared by [add] and journal replay: no journaling,
   no epoch bump. *)
let add_unlogged db atom =
  let rel_id = Atom.rel_id atom in
  let r =
    match Int_tbl.find_opt db.rels rel_id with
    | Some r -> r
    | None ->
      let r = rel_create atom in
      Int_tbl.add db.rels rel_id r;
      r
  in
  rel_add r atom;
  db.count <- db.count + 1

let remove_unlogged db atom =
  (match rel_of db (Atom.rel_id atom) with
  | None -> ()
  | Some r -> ignore (rel_remove r atom));
  db.count <- db.count - 1

let add db atom =
  if not (Atom.is_ground atom) then
    invalid_arg (Fmt.str "Database.add: non-ground atom %a" Atom.pp atom);
  if mem db atom then false
  else begin
    add_unlogged db atom;
    db.epoch <- db.epoch + 1;
    if db.journaling then db.journal <- Undo_add atom :: db.journal;
    true
  end

let remove db atom =
  if not (mem db atom) then false
  else begin
    remove_unlogged db atom;
    db.epoch <- db.epoch + 1;
    if db.journaling then db.journal <- Undo_remove atom :: db.journal;
    true
  end

let epoch db = db.epoch

let enable_journal db = db.journaling <- true

let rollback db target =
  if target > db.epoch then invalid_arg "Database.rollback: epoch is in the future";
  if target < db.epoch && not db.journaling then
    invalid_arg "Database.rollback: journaling was not enabled";
  while db.epoch > target do
    match db.journal with
    | [] -> invalid_arg "Database.rollback: journal does not reach back to epoch"
    | u :: rest ->
      (match u with
      | Undo_add a -> remove_unlogged db a
      | Undo_remove a -> add_unlogged db a);
      db.journal <- rest;
      db.epoch <- db.epoch - 1
  done

let add_all db atoms = List.iter (fun a -> ignore (add db a)) atoms

let of_atoms atoms =
  let db = create () in
  add_all db atoms;
  db

(* Safe under concurrent [add]: only the rows present at call time are
   visited ([r_atoms] slots below the snapshot never move except under
   [remove], which is not allowed during iteration). *)
let rel_iter f r =
  let n = r.r_rows in
  for i = 0 to n - 1 do
    f r.r_atoms.(i)
  done

let iter f db = Int_tbl.iter (fun _ r -> rel_iter f r) db.rels

let fold f db acc =
  let r = ref acc in
  iter (fun a -> r := f a !r) db;
  !r

let to_list db = fold (fun a acc -> a :: acc) db []

let copy db =
  let db' = create () in
  iter (fun a -> ignore (add db' a)) db;
  db'

let facts_of_rel db key =
  match rel_of db (Atom.rel_key_id key) with
  | None -> []
  | Some r ->
    let acc = ref [] in
    rel_iter (fun a -> acc := a :: !acc) r;
    !acc

let rel_cardinal db key =
  match rel_of db (Atom.rel_key_id key) with None -> 0 | Some r -> r.r_rows

(* ------------------------------------------------------------------ *)
(* Candidate selection.

   The backtracking join scores and enumerates patterns under a partial
   substitution. Building the substituted atom per search node would
   hash-cons a fresh atom for every scored candidate; instead the
   [_under] variants resolve the pattern's terms on the fly: positions
   that are ground in the pattern read their stored {!Atom.term_ids}
   entry, and substituted variables cost one {!Term.id} lookup. No atom
   or list is allocated. *)

(* Visit every position of [pattern] under [subst] with (index, id or
   -1 when unbound). Annotation slots precede arguments, matching the
   column layout. *)
let iter_bound_ids subst pattern f =
  let ids = Atom.term_ids pattern in
  let visit i t =
    match t with
    | Term.Const _ | Term.Null _ -> f i ids.(i)
    | Term.Var v -> (
      match Subst.find_opt v subst with
      | Some t' when Term.is_ground t' -> f i (Term.id t')
      | Some _ | None -> f i (-1))
  in
  let i = ref 0 in
  List.iter
    (fun t ->
      visit !i t;
      incr i)
    (Atom.ann pattern);
  List.iter
    (fun t ->
      visit !i t;
      incr i)
    (Atom.args pattern)

(* {!candidate_count} of the pattern under a substitution, without
   building the substituted atom. *)
let candidate_count_under db subst pattern =
  match rel_of db (Atom.rel_id pattern) with
  | None -> 0
  | Some r ->
    let best = ref (-1) in
    iter_bound_ids subst pattern (fun p tid ->
        if tid >= 0 then begin
          let n = index_count r p tid in
          if !best < 0 || n < !best then best := n
        end);
    if !best >= 0 then !best else r.r_rows

(* {!iter_candidates} of the pattern under a substitution; the caller
   confirms candidates with [Subst.match_atom subst pattern]. The most
   selective bound position's runs drive the scan; the remaining bound
   positions are confirmed with one column read each. *)
let iter_candidates_under db subst pattern f =
  match rel_of db (Atom.rel_id pattern) with
  | None -> ()
  | Some r ->
    (* Collect the bound positions (at most width of them). *)
    let bound_pos = Array.make r.r_width 0 in
    let bound_id = Array.make r.r_width 0 in
    let nbound = ref 0 in
    iter_bound_ids subst pattern (fun p tid ->
        if tid >= 0 then begin
          bound_pos.(!nbound) <- p;
          bound_id.(!nbound) <- tid;
          incr nbound
        end);
    let nbound = !nbound in
    if nbound = 0 then rel_iter f r
    else begin
      (* Most selective position wins (first wins ties). *)
      let best = ref 0 and best_n = ref max_int in
      let empty = ref false in
      for i = 0 to nbound - 1 do
        let n = index_count r bound_pos.(i) bound_id.(i) in
        if n = 0 then empty := true;
        if n < !best_n then begin
          best := i;
          best_n := n
        end
      done;
      if not !empty then begin
        let bi = !best in
        let atoms = r.r_atoms and cols = r.r_cols in
        index_iter_rows r bound_pos.(bi) bound_id.(bi) (fun row ->
            let ok = ref true in
            for i = 0 to nbound - 1 do
              if i <> bi && cols.(bound_pos.(i)).(row) <> bound_id.(i) then ok := false
            done;
            if !ok then f atoms.(row))
      end
    end

(* Substitution-free views: the estimator, streaming enumeration and
   list materialization for an already-substituted pattern. *)
let candidate_count db pattern = candidate_count_under db Subst.empty pattern
let iter_candidates db pattern f = iter_candidates_under db Subst.empty pattern f

let candidates db pattern =
  let acc = ref [] in
  iter_candidates db pattern (fun a -> acc := a :: !acc);
  !acc

exception Found

let exists_under db subst pattern =
  (* Fully ground under [subst] with a long candidate segment: one
     rowid-table probe instead of an index-segment scan (the segment can
     be long even when the fact is absent — e.g. both bound values of
     high degree, the quadratic trap of skewed instances). Short
     segments scan: cheaper than building the substituted atom. *)
  let ground = ref true in
  iter_bound_ids subst pattern (fun _ tid -> if tid < 0 then ground := false);
  if !ground && candidate_count_under db subst pattern > 16 then
    mem db (Subst.apply_atom subst pattern)
  else
    match
      iter_candidates_under db subst pattern (fun fact ->
          match Subst.match_atom subst pattern fact with Some _ -> raise Found | None -> ())
    with
    | () -> false
    | exception Found -> true

(* ------------------------------------------------------------------ *)
(* Distinct-value enumeration: the worst-case-optimal join's probes.   *)

(* The term at column position [pos] of a stored fact. *)
let term_at r atom pos =
  if pos < r.r_ann then List.nth (Atom.ann atom) pos
  else List.nth (Atom.args atom) (pos - r.r_ann)

(* Positions of [pattern] holding the (unbound) variable [var]. *)
let var_positions pattern var =
  let ps = ref [] in
  let i = ref 0 in
  let visit t =
    (match t with Term.Var v when String.equal v var -> ps := !i :: !ps | _ -> ());
    incr i
  in
  List.iter visit (Atom.ann pattern);
  List.iter visit (Atom.args pattern);
  List.rev !ps

(* The conditions under which [distinct_ids_under] produces an array,
   checked without materializing anything: the WCOJ executor tests every
   holder first, so one ineligible holder does not cost a full
   distinct-value walk of the others. *)
let fast_var_eligible db subst pattern ~var =
  match rel_of db (Atom.rel_id pattern) with
  | None -> true
  | Some _ -> (
    match var_positions pattern var with
    | [ _ ] when not (Subst.mem var subst) ->
      let bound = ref false in
      iter_bound_ids subst pattern (fun _ tid -> if tid >= 0 then bound := true);
      not !bound
    | _ -> false)

let distinct_ids_under db subst pattern ~var =
  match rel_of db (Atom.rel_id pattern) with
  | None -> Some [||]
  | Some r -> (
    match var_positions pattern var with
    | [ p ] when not (Subst.mem var subst) ->
      let bound = ref false in
      iter_bound_ids subst pattern (fun _ tid -> if tid >= 0 then bound := true);
      if !bound then None
      else begin
        let st = get_index r p in
        let acc = ref [] and n = ref 0 in
        Intrun.iter_distinct_values st.ix_runs (fun v _ ->
            acc := v :: !acc;
            incr n);
        let out = Array.make !n 0 in
        List.iteri (fun i v -> out.(!n - 1 - i) <- v) !acc;
        Some out
      end
    | _ -> None)

let iter_values_of_ids db pattern ~var ids f =
  match rel_of db (Atom.rel_id pattern) with
  | None -> ()
  | Some r -> (
    match var_positions pattern var with
    | p :: _ ->
      let st = get_index r p in
      Array.iter
        (fun v ->
          (* First witnessing row across the runs. *)
          let witness = ref (-1) in
          List.iter
            (fun run ->
              let lo, hi = Intrun.seg run v in
              if lo < hi then
                let row = Intrun.row run.(lo) in
                if !witness < 0 || row < !witness then witness := row)
            st.ix_runs;
          if !witness >= 0 then f (term_at r r.r_atoms.(!witness) p))
        ids
    | [] -> ())

let iter_var_values_under db subst pattern ~var f =
  match rel_of db (Atom.rel_id pattern) with
  | None -> ()
  | Some r -> (
    match var_positions pattern var with
    | [] -> ()
    | p0 :: rest_ps ->
      let bound_pos = Array.make r.r_width 0 in
      let bound_id = Array.make r.r_width 0 in
      let nbound = ref 0 in
      iter_bound_ids subst pattern (fun p tid ->
          if tid >= 0 then begin
            bound_pos.(!nbound) <- p;
            bound_id.(!nbound) <- tid;
            incr nbound
          end);
      let nbound = !nbound in
      let cols = r.r_cols in
      (* A row is consistent when every bound position matches and the
         variable's positions all carry the same value. *)
      let consistent row v =
        let ok = ref true in
        List.iter (fun p -> if cols.(p).(row) <> v then ok := false) rest_ps;
        for i = 0 to nbound - 1 do
          if cols.(bound_pos.(i)).(row) <> bound_id.(i) then ok := false
        done;
        !ok
      in
      if nbound = 0 && rest_ps = [] then begin
        (* Pure column scan: the sorted runs enumerate the distinct
           values directly, in ascending id order. *)
        let st = get_index r p0 in
        Intrun.iter_distinct_values st.ix_runs (fun _ row -> f (term_at r r.r_atoms.(row) p0))
      end
      else begin
        (* Drive from the most selective bound position (or the whole
           relation) and deduplicate values on the fly. *)
        let seen = Int_tbl.create 16 in
        let visit row =
          let v = cols.(p0).(row) in
          if consistent row v && not (Int_tbl.mem seen v) then begin
            Int_tbl.add seen v ();
            f (term_at r r.r_atoms.(row) p0)
          end
        in
        if nbound = 0 then
          for row = 0 to r.r_rows - 1 do
            visit row
          done
        else begin
          let best = ref 0 and best_n = ref max_int in
          let empty = ref false in
          for i = 0 to nbound - 1 do
            let n = index_count r bound_pos.(i) bound_id.(i) in
            if n = 0 then empty := true;
            if n < !best_n then begin
              best := i;
              best_n := n
            end
          done;
          if not !empty then index_iter_rows r bound_pos.(!best) bound_id.(!best) visit
        end
      end)

(* ------------------------------------------------------------------ *)

(* Active domain: every term occurring in a non-ACDom fact. *)
let active_domain db =
  fold
    (fun a acc ->
      if Atom.rel a = acdom_rel then acc
      else List.fold_left (fun acc t -> Term.Set.add t acc) acc (Atom.terms a))
    db Term.Set.empty

let materialize_acdom db =
  Term.Set.iter
    (fun t -> ignore (add db (Atom.make acdom_rel [ t ])))
    (active_domain db)

(* Relations present in the database. *)
let relations db = Int_tbl.fold (fun rel_id _ acc -> Atom.rel_key_of_id rel_id :: acc) db.rels []

let relation_ids db = Int_tbl.fold (fun rel_id _ acc -> rel_id :: acc) db.rels []

let restrict db keep =
  let db' = create () in
  iter (fun a -> if keep a then ignore (add db' a)) db;
  db'

(* Set equality of the stored facts. *)
let equal db1 db2 =
  cardinal db1 = cardinal db2 && fold (fun a ok -> ok && mem db2 a) db1 true

(* ------------------------------------------------------------------ *)
(* Storage metrics                                                     *)

type rel_stats = {
  rs_rel : Atom.rel_key;
  rs_rows : int;
  rs_runs : int;
  rs_bytes : int;  (** resident bytes of columns, row map and runs *)
}

let storage_stats db =
  let word = Sys.word_size / 8 in
  Int_tbl.fold
    (fun rel_id r acc ->
      let cap = Array.length r.r_atoms in
      let runs = ref 0 and run_words = ref 0 in
      Array.iter
        (fun ix ->
          let st = Atomic.get ix in
          List.iter
            (fun run ->
              incr runs;
              run_words := !run_words + Array.length run)
            st.ix_runs)
        r.r_ix;
      let words =
        (cap * (r.r_width + 1)) (* columns + row->fact array *)
        + !run_words
        + (2 * Atom.Tbl.length r.r_rowid) (* row map entries, approx. *)
      in
      {
        rs_rel = Atom.rel_key_of_id rel_id;
        rs_rows = r.r_rows;
        rs_runs = !runs;
        rs_bytes = words * word;
      }
      :: acc)
    db.rels []

(* ------------------------------------------------------------------ *)
(* Answer extraction                                                   *)

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

(* Sorted, deduplicated constant argument tuples of every relation
   named [name] (any arity): folds the relation stores directly into a
   set — no intermediate fact list, no quadratic [sort_uniq]. *)
let constant_tuples db name =
  Int_tbl.fold
    (fun rel_id r acc ->
      let n, _, _ = Atom.rel_key_of_id rel_id in
      if String.equal n name then begin
        let acc = ref acc in
        rel_iter
          (fun a ->
            if List.for_all Term.is_const (Atom.terms a) then acc := Tuple_set.add (Atom.args a) !acc)
          r;
        !acc
      end
      else acc)
    db.rels Tuple_set.empty
  |> Tuple_set.elements

let pp ppf db =
  let facts = List.sort Atom.compare (to_list db) in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) facts
