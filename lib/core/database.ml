(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled nulls.
    Facts are indexed per relation and per (position, term) pair so that
    homomorphism search and semi-naive evaluation can select candidate
    facts for partially bound atoms without scanning whole relations.

    Since atoms are hash-consed ({!Atom.make}), all tables here are
    keyed on stored integers: the relation index on {!Atom.rel_id}, the
    positional index on (rel_id, position, {!Term.id}) triples, and the
    fact tables on physical atoms with stored hashes. Buckets are
    vectors for ordered iteration plus an id-hashed index from fact to
    vector slot: additions append (so iteration over the length
    snapshotted at entry is safe while rule firing appends new facts),
    removals swap the victim's slot with the last entry, keeping every
    per-relation and per-position bucket — and hence the
    {!candidate_count} estimates, which are bucket lengths — exact under
    interleaved {!add}/{!remove}. Removing facts during a candidate
    iteration is not supported (the incremental-maintenance cascades
    enumerate first and remove after the round's enumeration finishes).

    For rollback, every database carries a monotone mutation {!epoch};
    with {!enable_journal} the inverse of each mutation is also logged,
    and {!rollback} replays the log back to an earlier epoch.

    The distinguished unary relation {!acdom_rel} ("ACDom" in the paper)
    holds exactly the terms of the active domain; {!materialize_acdom}
    populates it from the current non-ACDom facts. *)

(* Fact bucket: a vector for ordered iteration plus an id-hashed table
   mapping each fact to its vector slot, for O(1) membership and O(1)
   swap-removal. *)
type bucket = {
  tbl : int Atom.Tbl.t;  (** fact -> index in [arr] *)
  mutable arr : Atom.t array;
  mutable len : int;
}

let bucket_create n = { tbl = Atom.Tbl.create n; arr = [||]; len = 0 }

let bucket_add b a =
  Atom.Tbl.replace b.tbl a b.len;
  if b.len = Array.length b.arr then begin
    let arr = Array.make (max 8 (2 * b.len)) a in
    Array.blit b.arr 0 arr 0 b.len;
    b.arr <- arr
  end;
  b.arr.(b.len) <- a;
  b.len <- b.len + 1

let bucket_mem b a = Atom.Tbl.mem b.tbl a

(* Swap-remove: the last entry takes the victim's slot. O(1); the
   bucket's iteration order is not stable across removals. *)
let bucket_remove b a =
  match Atom.Tbl.find_opt b.tbl a with
  | None -> ()
  | Some i ->
    Atom.Tbl.remove b.tbl a;
    let last = b.len - 1 in
    if i < last then begin
      let moved = b.arr.(last) in
      b.arr.(i) <- moved;
      Atom.Tbl.replace b.tbl moved i
    end;
    b.len <- last

(* Safe under concurrent [bucket_add]: only the entries present at call
   time are visited. Not safe under [bucket_remove]. *)
let bucket_iter f b =
  let n = b.len in
  for i = 0 to n - 1 do
    f b.arr.(i)
  done

module Int_tbl = Hashtbl.Make (Int)

(* (rel_id, position, term_id) keys of the positional index. *)
module Pos_tbl = Hashtbl.Make (struct
  type t = int * int * int

  let equal (a, b, c) (x, y, z) = a = x && b = y && c = z
  let hash (a, b, c) = (((a * 0x01000193) lxor b) * 0x01000193 lxor c) land max_int
end)

(* Journal entry: the inverse operation that undoes a mutation. *)
type mutation = Undo_add of Atom.t | Undo_remove of Atom.t

type t = {
  by_rel : bucket Int_tbl.t;  (** rel_id -> facts of the relation *)
  by_pos : bucket Pos_tbl.t;  (** (rel_id, pos, term_id) -> facts *)
  mutable count : int;
  mutable epoch : int;  (** monotone mutation counter *)
  mutable journaling : bool;
  mutable journal : mutation list;  (** inverse ops, newest first *)
}

type epoch = int

let acdom_rel = "ACDom"

let create () =
  {
    by_rel = Int_tbl.create 64;
    by_pos = Pos_tbl.create 256;
    count = 0;
    epoch = 0;
    journaling = false;
    journal = [];
  }

let cardinal db = db.count

let mem db atom =
  match Int_tbl.find_opt db.by_rel (Atom.rel_id atom) with
  | None -> false
  | Some b -> bucket_mem b atom

(* Index maintenance shared by [add] and journal replay: no journaling,
   no epoch bump. *)
let add_unlogged db atom =
  let rel_id = Atom.rel_id atom in
  let b =
    match Int_tbl.find_opt db.by_rel rel_id with
    | Some b -> b
    | None ->
      let b = bucket_create 32 in
      Int_tbl.add db.by_rel rel_id b;
      b
  in
  bucket_add b atom;
  let ids = Atom.term_ids atom in
  for i = 0 to Array.length ids - 1 do
    let pkey = (rel_id, i, ids.(i)) in
    let pb =
      match Pos_tbl.find_opt db.by_pos pkey with
      | Some pb -> pb
      | None ->
        let pb = bucket_create 8 in
        Pos_tbl.add db.by_pos pkey pb;
        pb
    in
    bucket_add pb atom
  done;
  db.count <- db.count + 1

let remove_unlogged db atom =
  let rel_id = Atom.rel_id atom in
  (match Int_tbl.find_opt db.by_rel rel_id with
  | None -> ()
  | Some b -> bucket_remove b atom);
  let ids = Atom.term_ids atom in
  for i = 0 to Array.length ids - 1 do
    match Pos_tbl.find_opt db.by_pos (rel_id, i, ids.(i)) with
    | None -> ()
    | Some pb -> bucket_remove pb atom
  done;
  db.count <- db.count - 1

let add db atom =
  if not (Atom.is_ground atom) then
    invalid_arg (Fmt.str "Database.add: non-ground atom %a" Atom.pp atom);
  if mem db atom then false
  else begin
    add_unlogged db atom;
    db.epoch <- db.epoch + 1;
    if db.journaling then db.journal <- Undo_add atom :: db.journal;
    true
  end

let remove db atom =
  if not (mem db atom) then false
  else begin
    remove_unlogged db atom;
    db.epoch <- db.epoch + 1;
    if db.journaling then db.journal <- Undo_remove atom :: db.journal;
    true
  end

let epoch db = db.epoch

let enable_journal db = db.journaling <- true

let rollback db target =
  if target > db.epoch then invalid_arg "Database.rollback: epoch is in the future";
  if target < db.epoch && not db.journaling then
    invalid_arg "Database.rollback: journaling was not enabled";
  while db.epoch > target do
    match db.journal with
    | [] -> invalid_arg "Database.rollback: journal does not reach back to epoch"
    | u :: rest ->
      (match u with
      | Undo_add a -> remove_unlogged db a
      | Undo_remove a -> add_unlogged db a);
      db.journal <- rest;
      db.epoch <- db.epoch - 1
  done

let add_all db atoms = List.iter (fun a -> ignore (add db a)) atoms

let of_atoms atoms =
  let db = create () in
  add_all db atoms;
  db

let iter f db = Int_tbl.iter (fun _ b -> bucket_iter f b) db.by_rel

let fold f db acc =
  let r = ref acc in
  iter (fun a -> r := f a !r) db;
  !r

let to_list db = fold (fun a acc -> a :: acc) db []

let copy db =
  let db' = create () in
  iter (fun a -> ignore (add db' a)) db;
  db'

let rel_bucket db key = Int_tbl.find_opt db.by_rel (Atom.rel_key_id key)

let facts_of_rel db key =
  match rel_bucket db key with
  | None -> []
  | Some b ->
    let acc = ref [] in
    bucket_iter (fun a -> acc := a :: !acc) b;
    !acc

let rel_cardinal db key = match rel_bucket db key with None -> 0 | Some b -> b.len

(* ------------------------------------------------------------------ *)
(* Candidate selection.

   The backtracking join scores and enumerates patterns under a partial
   substitution. Building the substituted atom per search node would
   hash-cons a fresh atom for every scored candidate; instead the
   [_under] variants resolve the pattern's terms on the fly: positions
   that are ground in the pattern read their stored {!Atom.term_ids}
   entry, and substituted variables cost one {!Term.id} lookup. No atom
   or list is allocated. *)

(* Visit every position of [pattern] under [subst] with (index, id or
   -1 when unbound). Annotation slots precede arguments, matching the
   positional index layout. *)
let iter_bound_ids subst pattern f =
  let ids = Atom.term_ids pattern in
  let visit i t =
    match t with
    | Term.Const _ | Term.Null _ -> f i ids.(i)
    | Term.Var v -> (
      match Subst.find_opt v subst with
      | Some t' when Term.is_ground t' -> f i (Term.id t')
      | Some _ | None -> f i (-1))
  in
  let i = ref 0 in
  List.iter
    (fun t ->
      visit !i t;
      incr i)
    (Atom.ann pattern);
  List.iter
    (fun t ->
      visit !i t;
      incr i)
    (Atom.args pattern)

(* {!candidate_count} of the pattern under a substitution, without
   building the substituted atom. *)
let candidate_count_under db subst pattern =
  let rel_id = Atom.rel_id pattern in
  let best = ref (-1) in
  iter_bound_ids subst pattern (fun i tid ->
      if tid >= 0 then begin
        let n =
          match Pos_tbl.find_opt db.by_pos (rel_id, i, tid) with None -> 0 | Some b -> b.len
        in
        if !best < 0 || n < !best then best := n
      end);
  if !best >= 0 then !best
  else match Int_tbl.find_opt db.by_rel rel_id with None -> 0 | Some b -> b.len

(* {!iter_candidates} of the pattern under a substitution; the caller
   confirms candidates with [Subst.match_atom subst pattern]. *)
let iter_candidates_under db subst pattern f =
  let rel_id = Atom.rel_id pattern in
  let empty = ref false in
  let buckets = ref [] in
  iter_bound_ids subst pattern (fun i tid ->
      if (not !empty) && tid >= 0 then
        match Pos_tbl.find_opt db.by_pos (rel_id, i, tid) with
        | None -> empty := true
        | Some b -> buckets := b :: !buckets);
  if not !empty then
    match !buckets with
    | [] -> (
      match Int_tbl.find_opt db.by_rel rel_id with
      | None -> ()
      | Some b -> bucket_iter f b)
    | [ b ] -> bucket_iter f b
    | bs ->
      let smallest, others =
        List.fold_left
          (fun (sm, others) b ->
            if b.len < sm.len then (b, sm :: others) else (sm, b :: others))
          (List.hd bs, [])
          (List.tl bs)
      in
      bucket_iter
        (fun a -> if List.for_all (fun b -> bucket_mem b a) others then f a)
        smallest

(* Substitution-free views: the estimator, streaming enumeration and
   list materialization for an already-substituted pattern. *)
let candidate_count db pattern = candidate_count_under db Subst.empty pattern
let iter_candidates db pattern f = iter_candidates_under db Subst.empty pattern f

let candidates db pattern =
  let acc = ref [] in
  iter_candidates db pattern (fun a -> acc := a :: !acc);
  !acc

(* ------------------------------------------------------------------ *)

(* Active domain: every term occurring in a non-ACDom fact. *)
let active_domain db =
  fold
    (fun a acc ->
      if Atom.rel a = acdom_rel then acc
      else List.fold_left (fun acc t -> Term.Set.add t acc) acc (Atom.terms a))
    db Term.Set.empty

let materialize_acdom db =
  Term.Set.iter
    (fun t -> ignore (add db (Atom.make acdom_rel [ t ])))
    (active_domain db)

(* Relations present in the database. *)
let relations db = Int_tbl.fold (fun rel_id _ acc -> Atom.rel_key_of_id rel_id :: acc) db.by_rel []

let relation_ids db = Int_tbl.fold (fun rel_id _ acc -> rel_id :: acc) db.by_rel []

let restrict db keep =
  let db' = create () in
  iter (fun a -> if keep a then ignore (add db' a)) db;
  db'

(* Set equality of the stored facts. *)
let equal db1 db2 =
  cardinal db1 = cardinal db2 && fold (fun a ok -> ok && mem db2 a) db1 true

(* ------------------------------------------------------------------ *)
(* Answer extraction                                                   *)

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

(* Sorted, deduplicated constant argument tuples of every relation
   named [name] (any arity): folds the relation buckets directly into a
   set — no intermediate fact list, no quadratic [sort_uniq]. *)
let constant_tuples db name =
  Int_tbl.fold
    (fun rel_id b acc ->
      let n, _, _ = Atom.rel_key_of_id rel_id in
      if String.equal n name then
        Atom.Tbl.fold
          (fun a _ acc ->
            if List.for_all Term.is_const (Atom.terms a) then Tuple_set.add (Atom.args a) acc
            else acc)
          b.tbl acc
      else acc)
    db.by_rel Tuple_set.empty
  |> Tuple_set.elements

let pp ppf db =
  let facts = List.sort Atom.compare (to_list db) in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) facts
