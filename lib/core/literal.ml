(** Body literals: positive or negated atoms.

    Negation appears only in Section 8 of the paper (semipositive and
    stratified theories, Def. 22); the translation machinery of
    Sections 4-6 handles positive rules only and rejects negative
    literals where they would be unsound. *)

type t =
  | Pos of Atom.t
  | Neg of Atom.t

let atom = function Pos a | Neg a -> a
let is_pos = function Pos _ -> true | Neg _ -> false
let is_neg = function Neg _ -> true | Pos _ -> false

let map_atom f = function Pos a -> Pos (f a) | Neg a -> Neg (f a)

let compare l1 l2 =
  match (l1, l2) with
  | Pos a, Pos b | Neg a, Neg b -> Atom.compare a b
  | Pos _, Neg _ -> -1
  | Neg _, Pos _ -> 1

let equal l1 l2 = compare l1 l2 = 0

let pp ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Fmt.pf ppf "not %a" Atom.pp a
