(** Normalization of theories (Definition 4 / Proposition 1).

    A theory is normal when (i) every head is a single atom, (ii) every
    rule with existential variables is guarded, and (iii) constants occur
    only in fact rules of the form [-> R(c)]. The transformation
    preserves answers over the original signature and the weakly / nearly
    guarded languages (see the implementation and DESIGN.md for the one
    corner the paper glosses over). *)

val const_rel : string -> string
(** Name of the unary relation axiomatizing a constant pulled out of a
    rule. *)

val is_fact_rule : Rule.t -> bool

val normalize : Theory.t -> Theory.t

val is_normal : Theory.t -> bool
