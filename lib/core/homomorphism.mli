(** Homomorphism search from atom conjunctions into databases.

    A homomorphism maps variables to database terms so that every
    positive atom has an image among the facts; constants are fixed.
    The search is a backtracking join expanding the atom with the fewest
    candidate facts first, scored by the index-only estimator
    {!Database.candidate_count} and enumerated by streaming
    {!Database.iter_candidates} (no candidate lists are built). *)

val iter_pos : ?init:Subst.t -> Atom.t list -> Database.t -> (Subst.t -> unit) -> unit
(** Enumerates all extensions of [init] mapping every atom into the
    database; calls the continuation on each complete homomorphism. *)

val all : ?init:Subst.t -> Atom.t list -> Database.t -> Subst.t list

val exists : ?init:Subst.t -> Atom.t list -> Database.t -> bool

val iter_literals : ?init:Subst.t -> Literal.t list -> Database.t -> (Subst.t -> unit) -> unit
(** Positive literals are joined, then each negative literal is checked
    to have no image (its variables must be bound by then — rule safety
    guarantees it). *)

val all_literals : ?init:Subst.t -> Literal.t list -> Database.t -> Subst.t list

val into_atoms : Atom.t list -> Atom.t list -> bool
(** Does the conjunction map into the given finite set of ground atoms? *)
