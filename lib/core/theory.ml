(** Theories: finite sets of existential rules, with signature queries.

    A theory is kept as a list (order is irrelevant semantically but
    preserved for readable output). The signature functions below drive
    guardedness analysis and the translations: the set of relations with
    their arities, the maximal arity, the constants, and the partition
    into intensional (head) and extensional relations. *)

type t = Rule.t list

let of_rules rules : t = rules
let rules (sigma : t) = sigma
let size (sigma : t) = List.length sigma

let atoms (sigma : t) = List.concat_map Rule.atoms sigma

(* All relation keys occurring in the theory. *)
module Rel_set = Set.Make (struct
  type t = Atom.rel_key

  let compare = compare
end)

let relations (sigma : t) =
  List.fold_left (fun acc a -> Rel_set.add (Atom.rel_key a) acc) Rel_set.empty (atoms sigma)

let relation_list sigma = Rel_set.elements (relations sigma)

(* Maximal arity over the relations of the theory (annotation slots
   included, since after a⁻ they become ordinary argument positions). *)
let max_arity (sigma : t) =
  List.fold_left (fun acc a -> max acc (List.length (Atom.terms a))) 0 (atoms sigma)

let constants (sigma : t) =
  List.fold_left (fun acc r -> Names.Sset.union acc (Rule.constants r)) Names.Sset.empty sigma

let head_relations (sigma : t) =
  List.fold_left
    (fun acc r -> List.fold_left (fun acc a -> Rel_set.add (Atom.rel_key a) acc) acc (Rule.head r))
    Rel_set.empty sigma

(* Extensional relations: mentioned, but never derived by a rule head. *)
let edb_relations (sigma : t) = Rel_set.diff (relations sigma) (head_relations sigma)

let is_datalog (sigma : t) = List.for_all Rule.is_datalog sigma
let is_positive (sigma : t) = List.for_all Rule.is_positive sigma

let max_vars_per_rule (sigma : t) =
  List.fold_left (fun acc r -> max acc (Names.Sset.cardinal (Rule.vars r))) 0 sigma

(* Deduplicate rules up to variable renaming (canonical forms). *)
let dedup (sigma : t) : t =
  let seen = Rule.Key.Tbl.create 64 in
  List.filter
    (fun r ->
      let key = Rule.canonical_key r in
      if Rule.Key.Tbl.mem seen key then false
      else begin
        Rule.Key.Tbl.add seen key ();
        true
      end)
    sigma

let pp ppf (sigma : t) = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Rule.pp) sigma
let to_string = Fmt.to_to_string pp
