(** Theories: finite sets of existential rules, with signature queries. *)

type t

val of_rules : Rule.t list -> t
val rules : t -> Rule.t list
val size : t -> int
val atoms : t -> Atom.t list

module Rel_set : Set.S with type elt = Atom.rel_key

val relations : t -> Rel_set.t
val relation_list : t -> Atom.rel_key list

val max_arity : t -> int
(** Maximal number of terms per atom (annotation slots included, since
    deannotation turns them into argument positions). *)

val constants : t -> Names.Sset.t

val head_relations : t -> Rel_set.t

val edb_relations : t -> Rel_set.t
(** Relations mentioned but never derived by a rule head. *)

val is_datalog : t -> bool
val is_positive : t -> bool

val max_vars_per_rule : t -> int

val dedup : t -> t
(** Removes rules that are variants (up to renaming) of earlier ones. *)

val pp : t Fmt.t
val to_string : t -> string
