(** Existential rules  B1 ∧ ... ∧ Bn → ∃y1...yk. H1 ∧ ... ∧ Hm.

    Invariants enforced by {!make}: the head is non-empty; the
    existential variables occur in the head and not in the body; the
    rule is safe (every frontier variable, and every variable of a
    negative literal, occurs in a positive body atom). *)

type t

exception Ill_formed of string

val make : ?label:string -> ?evars:string list -> Literal.t list -> Atom.t list -> t
(** @raise Ill_formed when an invariant is violated. *)

val make_pos : ?label:string -> ?evars:string list -> Atom.t list -> Atom.t list -> t
(** Positive-body convenience constructor. *)

val make_pos_unchecked : ?label:string -> ?evars:string list -> Atom.t list -> Atom.t list -> t
(** Trusted positive-body constructor: skips {!make}'s safety checks.
    Only for callers whose construction guarantees the invariants (e.g.
    guard-variant generation where the guard contains every variable). *)

val body : t -> Literal.t list
val head : t -> Atom.t list
val label : t -> string option
val with_label : string -> t -> t

val body_atoms : t -> Atom.t list
(** The positive body atoms. *)

val neg_body_atoms : t -> Atom.t list

val evars : t -> Names.Sset.t
(** The existentially quantified head variables. *)

val uvars : t -> Names.Sset.t
(** Universal variables: all variables of the body (paper: uvars(σ)). *)

val head_vars : t -> Names.Sset.t

val fvars : t -> Names.Sset.t
(** The frontier: head variables that are not existential. *)

val uvars_args : t -> Names.Sset.t
(** Universal variables occurring in argument positions — the set that
    guardedness notions quantify over (annotation variables excluded). *)

val fvars_args : t -> Names.Sset.t

val vars : t -> Names.Sset.t
val constants : t -> Names.Sset.t
val atoms : t -> Atom.t list

val is_datalog : t -> bool
(** No existential variables. *)

val is_positive : t -> bool
(** No negated body literals. *)

val apply : Subst.t -> t -> t
(** Applies a substitution to body and head; existential variables are
    renamed first if the range would capture them.
    @raise Ill_formed if the substitution binds an existential variable. *)

val rename_apart : Names.gensym -> t -> t
(** Fresh-renames every variable (existential ones included). *)

val compare : t -> t -> int
val equal : t -> t -> bool

type structural_key = int list * int list * string list

val structural_key : t -> structural_key
(** A process-stable structural identity built from hash-consed atom
    ids: equal keys iff the rules are structurally equal up to the
    label. [structural_key (canonicalize r)] is the cheap dedup key for
    rule closures — hashing int lists instead of printed rules. *)

(** Flat int-array keys with a stored hash, for O(1) rule dedup. *)
module Key : sig
  type t

  val make : int array -> t
  (** Key over a caller-built code array; callers are responsible for
      feeding arrays whose equality captures the identity they intend
      (see {!raw_key} and {!canonical_key} for the rule encodings). *)

  val equal : t -> t -> bool
  val hash : t -> int
  val compare : t -> t -> int

  (** Hash tables keyed on rule keys. *)
  module Tbl : Hashtbl.S with type key = t
end

val canonical_key : t -> Key.t
(** A renaming-invariant key: equal on two rules iff their
    {!canonicalize} forms coincide, computed without building renamed
    atoms or strings. The label is ignored. *)

val raw_key : t -> Key.t
(** A renaming-{e sensitive} structural key from hash-consed atom ids —
    a cheap prefilter in front of {!canonical_key} for rule streams
    that mostly repeat verbatim. The label is ignored. *)

val canonicalize : t -> t
(** A canonical variant up to variable renaming, used to deduplicate
    rules in the closures ex(Σ) and Ξ(Σ). Equal canonical forms imply
    the rules are variants of each other; the converse may fail (a
    surviving duplicate is harmless and the space of canonical forms
    over a finite vocabulary stays finite). *)

val pp : t Fmt.t
val to_string : t -> string
