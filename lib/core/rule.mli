(** Existential rules  B1 ∧ ... ∧ Bn → ∃y1...yk. H1 ∧ ... ∧ Hm.

    Invariants enforced by {!make}: the head is non-empty; the
    existential variables occur in the head and not in the body; the
    rule is safe (every frontier variable, and every variable of a
    negative literal, occurs in a positive body atom). *)

type t

exception Ill_formed of string

val make : ?label:string -> ?evars:string list -> Literal.t list -> Atom.t list -> t
(** @raise Ill_formed when an invariant is violated. *)

val make_pos : ?label:string -> ?evars:string list -> Atom.t list -> Atom.t list -> t
(** Positive-body convenience constructor. *)

val body : t -> Literal.t list
val head : t -> Atom.t list
val label : t -> string option
val with_label : string -> t -> t

val body_atoms : t -> Atom.t list
(** The positive body atoms. *)

val neg_body_atoms : t -> Atom.t list

val evars : t -> Names.Sset.t
(** The existentially quantified head variables. *)

val uvars : t -> Names.Sset.t
(** Universal variables: all variables of the body (paper: uvars(σ)). *)

val head_vars : t -> Names.Sset.t

val fvars : t -> Names.Sset.t
(** The frontier: head variables that are not existential. *)

val uvars_args : t -> Names.Sset.t
(** Universal variables occurring in argument positions — the set that
    guardedness notions quantify over (annotation variables excluded). *)

val fvars_args : t -> Names.Sset.t

val vars : t -> Names.Sset.t
val constants : t -> Names.Sset.t
val atoms : t -> Atom.t list

val is_datalog : t -> bool
(** No existential variables. *)

val is_positive : t -> bool
(** No negated body literals. *)

val apply : Subst.t -> t -> t
(** Applies a substitution to body and head; existential variables are
    renamed first if the range would capture them.
    @raise Ill_formed if the substitution binds an existential variable. *)

val rename_apart : Names.gensym -> t -> t
(** Fresh-renames every variable (existential ones included). *)

val compare : t -> t -> int
val equal : t -> t -> bool

type structural_key = int list * int list * string list

val structural_key : t -> structural_key
(** A process-stable structural identity built from hash-consed atom
    ids: equal keys iff the rules are structurally equal up to the
    label. [structural_key (canonicalize r)] is the cheap dedup key for
    rule closures — hashing int lists instead of printed rules. *)

val canonicalize : t -> t
(** A canonical variant up to variable renaming, used to deduplicate
    rules in the closures ex(Σ) and Ξ(Σ). Equal canonical forms imply
    the rules are variants of each other; the converse may fail (a
    surviving duplicate is harmless and the space of canonical forms
    over a finite vocabulary stays finite). *)

val pp : t Fmt.t
val to_string : t -> string
