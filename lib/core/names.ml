(** Shared name-indexed collections and fresh-name generation.

    All identifiers in the library (variables, constants, relation names)
    are strings; this module centralizes the set/map instances over them
    and a deterministic gensym used for fresh variables, relation names
    and labeled nulls. *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

type gensym = { mutable next : int; prefix : string }

let gensym prefix = { next = 0; prefix }

let fresh g =
  let n = g.next in
  g.next <- n + 1;
  Printf.sprintf "%s%d" g.prefix n

let reset g = g.next <- 0

(* Pretty-printing helpers shared by the whole library. *)
let pp_comma_list pp = Fmt.list ~sep:(Fmt.any ", ") pp
