(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled
    nulls, indexed per relation and per (position, term) pair so that
    homomorphism search and semi-naive evaluation can select candidate
    facts for partially bound atoms without scanning whole relations.
    All indexes are keyed on the stored integer ids of hash-consed
    atoms and interned terms. Additions append to the index buckets, so
    candidate iteration is safe while rule firing adds new facts (the
    facts added mid-iteration are not visited); removals ({!remove})
    swap-delete from every bucket in O(1) per index entry, keeping the
    {!candidate_count} estimates exact, but must not run during a
    candidate iteration. *)

type t

val acdom_rel : string
(** The distinguished unary relation "ACDom" holding the active domain
    (Section 2 of the paper). *)

val create : unit -> t

val add : t -> Atom.t -> bool
(** [add db a] inserts the ground atom [a]; returns [false] when it was
    already present. @raise Invalid_argument on a non-ground atom. *)

val add_all : t -> Atom.t list -> unit
val of_atoms : Atom.t list -> t

val remove : t -> Atom.t -> bool
(** [remove db a] deletes the fact [a] from the store and every
    per-relation and per-position index bucket; returns [false] when it
    was not present. Must not be called while a candidate iteration
    over [db] is in progress. *)

type epoch
(** A point in a database's mutation history; see {!epoch}/{!rollback}. *)

val epoch : t -> epoch
(** The current epoch: a monotone counter bumped by every effective
    {!add} or {!remove}. *)

val enable_journal : t -> unit
(** Start logging inverse operations so that later mutations can be
    undone with {!rollback}. Off by default (and in {!copy}ies);
    journaling costs one list cell per mutation. *)

val rollback : t -> epoch -> unit
(** [rollback db e] undoes every mutation made after epoch [e], newest
    first, restoring the exact fact set held at [e].
    @raise Invalid_argument if [e] is in the future or the journal does
    not reach back to [e] (journaling off or enabled after [e]). *)

val mem : t -> Atom.t -> bool
val cardinal : t -> int
val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Atom.t list
val copy : t -> t

val facts_of_rel : t -> Atom.rel_key -> Atom.t list
val rel_cardinal : t -> Atom.rel_key -> int

val candidate_count : t -> Atom.t -> int
(** [candidate_count db pattern] is the number of facts the best single
    positional index narrows [pattern] down to: the minimum bucket size
    over every bound (ground) position, or the relation cardinality when
    no position is bound. An upper bound on the number of true matches,
    computed without touching any fact — the join planner's estimator. *)

val iter_candidates : t -> Atom.t -> (Atom.t -> unit) -> unit
(** [iter_candidates db pattern f] calls [f] on a superset of the facts
    matching [pattern]: it walks the smallest bound position's index
    bucket, intersecting with the other bound positions' buckets by
    membership, without building an intermediate list. Facts added to
    [db] during the iteration are not visited. *)

val candidates : t -> Atom.t -> Atom.t list
(** {!iter_candidates} materialized as a list. A superset of the true
    matches; prefer {!iter_candidates} on hot paths. *)

val candidate_count_under : t -> Subst.t -> Atom.t -> int
(** {!candidate_count} of the pattern under a substitution, without
    building the substituted atom: pattern-ground positions read their
    stored term ids, substituted variables cost one {!Term.id} lookup.
    The join planner's inner-loop estimator. *)

val iter_candidates_under : t -> Subst.t -> Atom.t -> (Atom.t -> unit) -> unit
(** {!iter_candidates} of the pattern under a substitution — again
    without building the substituted atom. The caller confirms each
    candidate with [Subst.match_atom subst pattern]. *)

val constant_tuples : t -> string -> Term.t list list
(** [constant_tuples db name]: the argument tuples of every all-constant
    fact of a relation named [name] (any arity), sorted and
    deduplicated — folds the relation index directly into a set. *)

val active_domain : t -> Term.Set.t
(** Every term occurring in a non-ACDom fact. *)

val materialize_acdom : t -> unit
(** Adds ACDom(t) for every term of the current active domain. *)

val relations : t -> Atom.rel_key list

val relation_ids : t -> int list
(** The {!Atom.rel_id}s present, for id-keyed rule indexing. *)

val restrict : t -> (Atom.t -> bool) -> t
val equal : t -> t -> bool

val pp : t Fmt.t
