(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled
    nulls. Each relation is stored columnar — packed int columns of
    interned term ids plus a row→fact array — and candidate selection
    for partially bound atoms runs over sorted-run indexes ({!Intrun})
    maintained LSM-style per position, so the hot join path does binary
    searches and direct column reads instead of hash probes. Additions
    append rows without touching the indexes (the first lookup that
    needs one folds pending rows in, merging runs of similar size);
    candidate iteration snapshots the runs, so facts added mid-iteration
    are not visited and concurrent readers are safe. Removals
    ({!remove}) swap-delete a row out of every column in O(width) and
    invalidate the relation's runs (rebuilt lazily), but must not run
    during a candidate iteration. *)

type t

val acdom_rel : string
(** The distinguished unary relation "ACDom" holding the active domain
    (Section 2 of the paper). *)

val create : unit -> t

val add : t -> Atom.t -> bool
(** [add db a] inserts the ground atom [a]; returns [false] when it was
    already present. @raise Invalid_argument on a non-ground atom. *)

val add_all : t -> Atom.t list -> unit
val of_atoms : Atom.t list -> t

val remove : t -> Atom.t -> bool
(** [remove db a] deletes the fact [a] from the store and every
    per-relation and per-position index bucket; returns [false] when it
    was not present. Must not be called while a candidate iteration
    over [db] is in progress. *)

type epoch
(** A point in a database's mutation history; see {!epoch}/{!rollback}. *)

val epoch : t -> epoch
(** The current epoch: a monotone counter bumped by every effective
    {!add} or {!remove}. *)

val enable_journal : t -> unit
(** Start logging inverse operations so that later mutations can be
    undone with {!rollback}. Off by default (and in {!copy}ies);
    journaling costs one list cell per mutation. *)

val rollback : t -> epoch -> unit
(** [rollback db e] undoes every mutation made after epoch [e], newest
    first, restoring the exact fact set held at [e].
    @raise Invalid_argument if [e] is in the future or the journal does
    not reach back to [e] (journaling off or enabled after [e]). *)

val mem : t -> Atom.t -> bool
val cardinal : t -> int
val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Atom.t list
val copy : t -> t

val facts_of_rel : t -> Atom.rel_key -> Atom.t list
val rel_cardinal : t -> Atom.rel_key -> int

val candidate_count : t -> Atom.t -> int
(** [candidate_count db pattern] is the number of facts the best single
    positional index narrows [pattern] down to: the minimum bucket size
    over every bound (ground) position, or the relation cardinality when
    no position is bound. An upper bound on the number of true matches,
    computed without touching any fact — the join planner's estimator. *)

val iter_candidates : t -> Atom.t -> (Atom.t -> unit) -> unit
(** [iter_candidates db pattern f] calls [f] on a superset of the facts
    matching [pattern]: it walks the smallest bound position's index
    bucket, intersecting with the other bound positions' buckets by
    membership, without building an intermediate list. Facts added to
    [db] during the iteration are not visited. *)

val candidates : t -> Atom.t -> Atom.t list
(** {!iter_candidates} materialized as a list. A superset of the true
    matches; prefer {!iter_candidates} on hot paths. *)

val candidate_count_under : t -> Subst.t -> Atom.t -> int
(** {!candidate_count} of the pattern under a substitution, without
    building the substituted atom: pattern-ground positions read their
    stored term ids, substituted variables cost one {!Term.id} lookup.
    The join planner's inner-loop estimator. *)

val iter_candidates_under : t -> Subst.t -> Atom.t -> (Atom.t -> unit) -> unit
(** {!iter_candidates} of the pattern under a substitution — again
    without building the substituted atom. The caller confirms each
    candidate with [Subst.match_atom subst pattern]. *)

val exists_under : t -> Subst.t -> Atom.t -> bool
(** [exists_under db subst pattern]: does some stored fact match
    [pattern] under [subst]? Exact (unlike the candidate superset);
    the worst-case-optimal join's leaf check. *)

val fast_var_eligible : t -> Subst.t -> Atom.t -> var:string -> bool
(** Would {!distinct_ids_under} return [Some]? Constant-time (no
    distinct-value walk); the WCOJ executor's gate for the leapfrog
    path. *)

val distinct_ids_under : t -> Subst.t -> Atom.t -> var:string -> int array option
(** [distinct_ids_under db subst pattern ~var] is the sorted array of
    distinct term ids appearing at [var]'s position in [pattern]'s
    relation — but only in the fast case where [var] occurs at exactly
    one position, is unbound, and no other position of the pattern is
    bound; [None] otherwise. Read straight off the sorted runs; the
    leapfrog intersection's input. *)

val iter_values_of_ids : t -> Atom.t -> var:string -> int array -> (Term.t -> unit) -> unit
(** [iter_values_of_ids db pattern ~var ids f] resolves each term id in
    [ids] back to its {!Term.t} via a witnessing stored fact of
    [pattern]'s relation at [var]'s first position, calling [f] per id
    that has a witness. Companion to {!distinct_ids_under}. *)

val iter_var_values_under : t -> Subst.t -> Atom.t -> var:string -> (Term.t -> unit) -> unit
(** [iter_var_values_under db subst pattern ~var f] calls [f] once per
    distinct term that [var] takes in the stored facts consistent with
    [pattern] under [subst] ([var] must be unbound in [subst]). The
    general value-enumeration probe of the worst-case-optimal join:
    complete (every extendable value is emitted), duplicate-free, and
    sound up to the same per-position approximation as
    {!iter_candidates_under} — callers re-check full matches at the
    leaves. *)

val constant_tuples : t -> string -> Term.t list list
(** [constant_tuples db name]: the argument tuples of every all-constant
    fact of a relation named [name] (any arity), sorted and
    deduplicated — folds the relation index directly into a set. *)

val active_domain : t -> Term.Set.t
(** Every term occurring in a non-ACDom fact. *)

val materialize_acdom : t -> unit
(** Adds ACDom(t) for every term of the current active domain. *)

val relations : t -> Atom.rel_key list

val relation_ids : t -> int list
(** The {!Atom.rel_id}s present, for id-keyed rule indexing. *)

val restrict : t -> (Atom.t -> bool) -> t
val equal : t -> t -> bool

type rel_stats = {
  rs_rel : Atom.rel_key;
  rs_rows : int;  (** live rows *)
  rs_runs : int;  (** sorted index runs currently materialized *)
  rs_bytes : int;  (** approximate resident bytes of columns + indexes *)
}

val storage_stats : t -> rel_stats list
(** Per-relation storage metrics of the columnar layout, for the server
    STATS verb and diagnostics. Does not force index flushes: only runs
    already materialized are counted. *)

val pp : t Fmt.t
