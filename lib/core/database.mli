(** Databases: mutable, indexed stores of ground atoms.

    A database is a finite set of atoms over constants and labeled
    nulls, indexed per relation and per (position, term) pair so that
    homomorphism search and semi-naive evaluation can select candidate
    facts for partially bound atoms without scanning whole relations. *)

type t

val acdom_rel : string
(** The distinguished unary relation "ACDom" holding the active domain
    (Section 2 of the paper). *)

val create : unit -> t

val add : t -> Atom.t -> bool
(** [add db a] inserts the ground atom [a]; returns [false] when it was
    already present. @raise Invalid_argument on a non-ground atom. *)

val add_all : t -> Atom.t list -> unit
val of_atoms : Atom.t list -> t

val mem : t -> Atom.t -> bool
val cardinal : t -> int
val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Atom.t list
val copy : t -> t

val facts_of_rel : t -> Atom.rel_key -> Atom.t list
val rel_cardinal : t -> Atom.rel_key -> int

val candidates : t -> Atom.t -> Atom.t list
(** Facts that can match the given pattern atom (whose terms may contain
    variables): uses the positional index on the first ground position,
    falling back to the whole relation. A superset of the true matches. *)

val active_domain : t -> Term.Set.t
(** Every term occurring in a non-ACDom fact. *)

val materialize_acdom : t -> unit
(** Adds ACDom(t) for every term of the current active domain. *)

val relations : t -> Atom.rel_key list
val restrict : t -> (Atom.t -> bool) -> t
val equal : t -> t -> bool

val pp : t Fmt.t
