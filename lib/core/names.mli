(** Shared name-indexed collections and fresh-name generation. *)

module Sset : Set.S with type elt = string
module Smap : Map.S with type key = string

type gensym
(** A deterministic counter-based fresh-name source. *)

val gensym : string -> gensym
(** [gensym prefix] creates a source producing [prefix0], [prefix1], ... *)

val fresh : gensym -> string
val reset : gensym -> unit

val pp_comma_list : 'a Fmt.t -> 'a list Fmt.t
(** Comma-separated list printer without line breaks. *)
