(** Existential rules  B1 ∧ ... ∧ Bn → ∃y1...yk. H1 ∧ ... ∧ Hm.

    The record keeps the set of existentially quantified head variables
    explicitly. Invariants enforced by {!make}:
    - the head is non-empty;
    - [evars] only contains variables occurring in the head and none
      occurring in the body;
    - the rule is safe: every frontier variable (head variable that is
      not existential) occurs in a positive body atom, and so does every
      variable of a negative body literal. *)

type t = {
  label : string option;
  body : Literal.t list;
  head : Atom.t list;
  evars : Names.Sset.t;
}

exception Ill_formed of string

let ill_formed fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let body r = r.body
let head r = r.head
let label r = r.label
let evars r = r.evars

let body_atoms r = List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) r.body
let neg_body_atoms r =
  List.filter_map (function Literal.Neg a -> Some a | Literal.Pos _ -> None) r.body

let atom_list_vars atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty atoms

(* Universal variables: all variables of the body (paper: uvars(σ)). *)
let uvars r = atom_list_vars (List.map Literal.atom r.body)

let head_vars r = atom_list_vars r.head

(* Frontier: head variables that are not existential (paper: fvars(σ)). *)
let fvars r = Names.Sset.diff (head_vars r) r.evars

(* Argument-position variants: the variable sets that guardedness
   notions quantify over. For unannotated rules they coincide with
   {!uvars}/{!fvars}; annotation variables never count towards guards. *)
let atom_list_arg_vars atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.arg_var_set a)) Names.Sset.empty atoms

let uvars_args r = atom_list_arg_vars (List.map Literal.atom r.body)
let fvars_args r = Names.Sset.diff (atom_list_arg_vars r.head) r.evars

let vars r = Names.Sset.union (uvars r) (head_vars r)

let is_datalog r = Names.Sset.is_empty r.evars
let is_positive r = List.for_all Literal.is_pos r.body

let constants r =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc c -> Names.Sset.add c acc) acc (Atom.constants a))
    Names.Sset.empty
    (List.map Literal.atom r.body @ r.head)

let atoms r = List.map Literal.atom r.body @ r.head

let make ?label ?(evars = []) body head =
  let evars = Names.Sset.of_list evars in
  if head = [] then ill_formed "rule with empty head";
  let hvars = atom_list_vars head in
  let pos_vars = atom_list_vars (List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) body) in
  let bvars = atom_list_vars (List.map Literal.atom body) in
  Names.Sset.iter
    (fun v ->
      if not (Names.Sset.mem v hvars) then
        ill_formed "existential variable %s does not occur in the head" v;
      if Names.Sset.mem v bvars then
        ill_formed "existential variable %s occurs in the body" v)
    evars;
  let frontier = Names.Sset.diff hvars evars in
  Names.Sset.iter
    (fun v ->
      if not (Names.Sset.mem v pos_vars) then
        ill_formed "unsafe rule: frontier variable %s not in a positive body atom" v)
    frontier;
  List.iter
    (function
      | Literal.Pos _ -> ()
      | Literal.Neg a ->
        Names.Sset.iter
          (fun v ->
            if not (Names.Sset.mem v pos_vars) then
              ill_formed "unsafe negation: variable %s only occurs negatively" v)
          (Atom.var_set a))
    body;
  { label; body; head; evars = evars }

(* Positive-body convenience constructor. *)
let make_pos ?label ?evars body head =
  make ?label ?evars (List.map (fun a -> Literal.Pos a) body) head

let with_label label r = { r with label = Some label }

(* Apply a substitution to a rule. The substitution must not mention the
   existential variables (they are bound); if its range would capture an
   existential variable, the existential variables are renamed first. *)
let evar_gensym = Names.gensym "e"

let apply subst r =
  Names.Sset.iter
    (fun v ->
      if Subst.mem v subst then ill_formed "substitution binds existential variable %s" v)
    r.evars;
  let range_vars =
    Term.Set.fold
      (fun t acc -> match t with Term.Var v -> Names.Sset.add v acc | Term.Const _ | Term.Null _ -> acc)
      (Subst.range subst) Names.Sset.empty
  in
  let captured = Names.Sset.inter range_vars r.evars in
  let r =
    if Names.Sset.is_empty captured then r
    else begin
      let renaming =
        Names.Sset.fold
          (fun v acc -> Subst.add v (Term.Var (Names.fresh evar_gensym)) acc)
          captured Subst.empty
      in
      let rename_var v =
        match Subst.find_opt v renaming with
        | Some (Term.Var v') -> v'
        | Some _ | None -> v
      in
      {
        r with
        head = Subst.apply_atoms renaming r.head;
        evars = Names.Sset.map rename_var r.evars;
      }
    end
  in
  {
    r with
    body = List.map (Subst.apply_literal subst) r.body;
    head = Subst.apply_atoms subst r.head;
  }

(* Rename every variable of [r] (including existential ones) with a fresh
   name from [g]; used to keep rules variable-disjoint during resolution. *)
let rename_apart g r =
  let renaming =
    Names.Sset.fold (fun v acc -> Subst.add v (Term.Var (Names.fresh g)) acc) (vars r) Subst.empty
  in
  let rename_var v =
    match Subst.find_opt v renaming with Some (Term.Var v') -> v' | Some _ | None -> v
  in
  {
    r with
    body = List.map (Subst.apply_literal renaming) r.body;
    head = Subst.apply_atoms renaming r.head;
    evars = Names.Sset.map rename_var r.evars;
  }

let compare r1 r2 =
  let c = List.compare Literal.compare r1.body r2.body in
  if c <> 0 then c
  else
    let c = List.compare Atom.compare r1.head r2.head in
    if c <> 0 then c else Names.Sset.compare r1.evars r2.evars

let equal r1 r2 = compare r1 r2 = 0

(* Cheap structural identity, valid within one process: the hash-consed
   ids of the rule's atoms (negative literals flip the sign) plus the
   existential variable names. Equal keys iff the rules are structurally
   equal up to the label — combine with {!canonicalize} for equality up
   to variable renaming. Hashing and comparing these int lists is far
   cheaper than printing the rule. *)
type structural_key = int list * int list * string list

let structural_key r =
  ( List.map
      (fun l ->
        let id = Atom.id (Literal.atom l) in
        if Literal.is_neg l then -id - 1 else id)
      r.body,
    List.map Atom.id r.head,
    Names.Sset.elements r.evars )

(* Canonical form up to variable renaming, used to deduplicate rules in
   the closures ex(Σ) and Ξ(Σ). Variables are distinguished by iterated
   color refinement over their occurrence structure (a 1-WL pass over
   the rule's hypergraph), then renamed to v0, v1, ... by first
   occurrence in the color-sorted atom list. Equal canonical forms imply
   the rules are variants of each other; variables a refinement round
   cannot separate are either automorphic (any tie-break yields the same
   form) or — rarely — genuinely different, in which case a duplicate
   may survive, which is harmless for soundness and termination.

   The refinement works on integers throughout: variable colors are
   small ints, ground terms are colored by their interned {!Term.id}
   and relations by {!Atom.rel_id} (both process-stable, so variant
   rules agree on them), and occurrence contexts are int lists compared
   structurally. This keeps canonicalization — the inner loop of the
   closure dedup — free of string building. *)
let canonicalize r =
  let occurrences =
    (* (tag, atom) with tags distinguishing positive/negative/head *)
    List.map (fun l -> ((if Literal.is_neg l then 1 else 0), Literal.atom l)) r.body
    @ List.map (fun a -> (2, a)) r.head
  in
  let var_arr = Array.of_list (Names.Sset.elements (vars r)) in
  let nvars = Array.length var_arr in
  let var_idx : (string, int) Hashtbl.t = Hashtbl.create (2 * (nvars + 1)) in
  Array.iteri (fun i v -> Hashtbl.replace var_idx v i) var_arr;
  let color = Array.make (max 1 nvars) 0 in
  Array.iteri (fun i v -> if Names.Sset.mem v r.evars then color.(i) <- 1) var_arr;
  (* Term colors in a single int space: variables map to even numbers
     via their current color, ground terms to odd numbers via their
     interned id. *)
  let term_color = function
    | Term.Var v -> 2 * color.(Hashtbl.find var_idx v)
    | (Term.Const _ | Term.Null _) as t -> (2 * Term.id t) + 1
  in
  (* One refinement round: each variable's new color is its old color
     plus the sorted multiset of its colored occurrence contexts.
     Returns the number of color classes. *)
  let refine () =
    let contexts = Array.make (max 1 nvars) [] in
    List.iter
      (fun (tag, a) ->
        let sig_ = tag :: Atom.rel_id a :: List.map term_color (Atom.terms a) in
        List.iteri
          (fun pos t ->
            match t with
            | Term.Var v ->
              let i = Hashtbl.find var_idx v in
              contexts.(i) <- (pos :: sig_) :: contexts.(i)
            | Term.Const _ | Term.Null _ -> ())
          (Atom.terms a))
      occurrences;
    (* compress the (old color, contexts) pairs into fresh color ids,
       numbered in sorted key order so the result is renaming-invariant *)
    let keys =
      Array.init nvars (fun i ->
          (color.(i), List.sort Stdlib.compare contexts.(i)))
    in
    let sorted = List.sort_uniq Stdlib.compare (Array.to_list keys) in
    let id_of = Hashtbl.create (2 * (nvars + 1)) in
    List.iteri (fun c k -> Hashtbl.replace id_of k c) sorted;
    Array.iteri (fun i k -> color.(i) <- Hashtbl.find id_of k) keys;
    List.length sorted
  in
  (* Refinement only ever splits classes, so an unchanged class count
     means a fixed point: stop early. The stopping rule depends only on
     renaming-invariant data, so variants still canonicalize alike. *)
  let rec refine_until prev rounds =
    if rounds < min 4 (max 1 nvars) then begin
      let n = refine () in
      if n > prev then refine_until n (rounds + 1)
    end
  in
  refine_until 0 0;
  (* Sort atoms by their colored shape, then rename variables by first
     occurrence in that order. *)
  let colored_key a = (Atom.rel_id a, List.map term_color (Atom.terms a)) in
  let body_sorted =
    List.map snd
      (List.stable_sort
         (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2)
         (List.map (fun l -> ((Literal.is_neg l, colored_key (Literal.atom l)), l)) r.body))
  in
  let head_sorted =
    List.map snd
      (List.stable_sort
         (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2)
         (List.map (fun a -> (colored_key a, a)) r.head))
  in
  let counter = ref 0 in
  let mapping = Hashtbl.create 16 in
  let rename_var v =
    match Hashtbl.find_opt mapping v with
    | Some v' -> v'
    | None ->
      let v' = Printf.sprintf "v%d" !counter in
      incr counter;
      Hashtbl.add mapping v v';
      v'
  in
  let rename_term = function
    | Term.Var v -> Term.Var (rename_var v)
    | (Term.Const _ | Term.Null _) as t -> t
  in
  let rename_atom = Atom.map_terms rename_term in
  let body = List.map (Literal.map_atom rename_atom) body_sorted in
  let head = List.map rename_atom head_sorted in
  let evars =
    Names.Sset.map
      (fun v -> match Hashtbl.find_opt mapping v with Some v' -> v' | None -> v)
      r.evars
  in
  let renamed = { label = None; body; head; evars } in
  (* A final plain sort for a stable printed form. *)
  { renamed with body = List.sort Literal.compare renamed.body; head = List.sort Atom.compare renamed.head }

let pp ppf r =
  let pp_evars ppf evars =
    if not (Names.Sset.is_empty evars) then
      let pp_var ppf v = Fmt.pf ppf "?%s" v in
      Fmt.pf ppf "exists %a. " (Names.pp_comma_list pp_var) (Names.Sset.elements evars)
  in
  let pp_body ppf = function
    | [] -> Fmt.string ppf "true"
    | body -> Names.pp_comma_list Literal.pp ppf body
  in
  Fmt.pf ppf "%a -> %a%a" pp_body r.body pp_evars r.evars (Names.pp_comma_list Atom.pp) r.head

let to_string = Fmt.to_to_string pp
