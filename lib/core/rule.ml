(** Existential rules  B1 ∧ ... ∧ Bn → ∃y1...yk. H1 ∧ ... ∧ Hm.

    The record keeps the set of existentially quantified head variables
    explicitly. Invariants enforced by {!make}:
    - the head is non-empty;
    - [evars] only contains variables occurring in the head and none
      occurring in the body;
    - the rule is safe: every frontier variable (head variable that is
      not existential) occurs in a positive body atom, and so does every
      variable of a negative body literal. *)

type t = {
  label : string option;
  body : Literal.t list;
  head : Atom.t list;
  evars : Names.Sset.t;
}

exception Ill_formed of string

let ill_formed fmt = Fmt.kstr (fun s -> raise (Ill_formed s)) fmt

let body r = r.body
let head r = r.head
let label r = r.label
let evars r = r.evars

let body_atoms r = List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) r.body
let neg_body_atoms r =
  List.filter_map (function Literal.Neg a -> Some a | Literal.Pos _ -> None) r.body

let atom_list_vars atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty atoms

(* Universal variables: all variables of the body (paper: uvars(σ)). *)
let uvars r = atom_list_vars (List.map Literal.atom r.body)

let head_vars r = atom_list_vars r.head

(* Frontier: head variables that are not existential (paper: fvars(σ)). *)
let fvars r = Names.Sset.diff (head_vars r) r.evars

(* Argument-position variants: the variable sets that guardedness
   notions quantify over. For unannotated rules they coincide with
   {!uvars}/{!fvars}; annotation variables never count towards guards. *)
let atom_list_arg_vars atoms =
  List.fold_left (fun acc a -> Names.Sset.union acc (Atom.arg_var_set a)) Names.Sset.empty atoms

let uvars_args r = atom_list_arg_vars (List.map Literal.atom r.body)
let fvars_args r = Names.Sset.diff (atom_list_arg_vars r.head) r.evars

let vars r = Names.Sset.union (uvars r) (head_vars r)

let is_datalog r = Names.Sset.is_empty r.evars
let is_positive r = List.for_all Literal.is_pos r.body

let constants r =
  List.fold_left
    (fun acc a -> List.fold_left (fun acc c -> Names.Sset.add c acc) acc (Atom.constants a))
    Names.Sset.empty
    (List.map Literal.atom r.body @ r.head)

let atoms r = List.map Literal.atom r.body @ r.head

let make ?label ?(evars = []) body head =
  let evars = Names.Sset.of_list evars in
  if head = [] then ill_formed "rule with empty head";
  let hvars = atom_list_vars head in
  let pos_vars = atom_list_vars (List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) body) in
  let bvars = atom_list_vars (List.map Literal.atom body) in
  Names.Sset.iter
    (fun v ->
      if not (Names.Sset.mem v hvars) then
        ill_formed "existential variable %s does not occur in the head" v;
      if Names.Sset.mem v bvars then
        ill_formed "existential variable %s occurs in the body" v)
    evars;
  let frontier = Names.Sset.diff hvars evars in
  Names.Sset.iter
    (fun v ->
      if not (Names.Sset.mem v pos_vars) then
        ill_formed "unsafe rule: frontier variable %s not in a positive body atom" v)
    frontier;
  List.iter
    (function
      | Literal.Pos _ -> ()
      | Literal.Neg a ->
        Names.Sset.iter
          (fun v ->
            if not (Names.Sset.mem v pos_vars) then
              ill_formed "unsafe negation: variable %s only occurs negatively" v)
          (Atom.var_set a))
    body;
  { label; body; head; evars = evars }

(* Positive-body convenience constructor. *)
let make_pos ?label ?evars body head =
  make ?label ?evars (List.map (fun a -> Literal.Pos a) body) head

(* Trusted positive-body constructor: skips the safety checks of {!make}
   for callers that guarantee them structurally (e.g. bulk rule
   generation where the guard atom contains every variable by
   construction). The checks cost several set folds per rule, which
   dominates tight rewriting loops. *)
let make_pos_unchecked ?label ?(evars = []) body head =
  {
    label;
    body = List.map (fun a -> Literal.Pos a) body;
    head;
    evars = Names.Sset.of_list evars;
  }

let with_label label r = { r with label = Some label }

(* Apply a substitution to a rule. The substitution must not mention the
   existential variables (they are bound); if its range would capture an
   existential variable, the existential variables are renamed first. *)
let evar_gensym = Names.gensym "e"

let apply subst r =
  Names.Sset.iter
    (fun v ->
      if Subst.mem v subst then ill_formed "substitution binds existential variable %s" v)
    r.evars;
  let range_vars =
    Term.Set.fold
      (fun t acc -> match t with Term.Var v -> Names.Sset.add v acc | Term.Const _ | Term.Null _ -> acc)
      (Subst.range subst) Names.Sset.empty
  in
  let captured = Names.Sset.inter range_vars r.evars in
  let r =
    if Names.Sset.is_empty captured then r
    else begin
      let renaming =
        Names.Sset.fold
          (fun v acc -> Subst.add v (Term.Var (Names.fresh evar_gensym)) acc)
          captured Subst.empty
      in
      let rename_var v =
        match Subst.find_opt v renaming with
        | Some (Term.Var v') -> v'
        | Some _ | None -> v
      in
      {
        r with
        head = Subst.apply_atoms renaming r.head;
        evars = Names.Sset.map rename_var r.evars;
      }
    end
  in
  {
    r with
    body = List.map (Subst.apply_literal subst) r.body;
    head = Subst.apply_atoms subst r.head;
  }

(* Rename every variable of [r] (including existential ones) with a fresh
   name from [g]; used to keep rules variable-disjoint during resolution. *)
let rename_apart g r =
  let renaming =
    Names.Sset.fold (fun v acc -> Subst.add v (Term.Var (Names.fresh g)) acc) (vars r) Subst.empty
  in
  let rename_var v =
    match Subst.find_opt v renaming with Some (Term.Var v') -> v' | Some _ | None -> v
  in
  {
    r with
    body = List.map (Subst.apply_literal renaming) r.body;
    head = Subst.apply_atoms renaming r.head;
    evars = Names.Sset.map rename_var r.evars;
  }

let compare r1 r2 =
  let c = List.compare Literal.compare r1.body r2.body in
  if c <> 0 then c
  else
    let c = List.compare Atom.compare r1.head r2.head in
    if c <> 0 then c else Names.Sset.compare r1.evars r2.evars

let equal r1 r2 = compare r1 r2 = 0

(* Cheap structural identity, valid within one process: the hash-consed
   ids of the rule's atoms (negative literals flip the sign) plus the
   existential variable names. Equal keys iff the rules are structurally
   equal up to the label — combine with {!canonicalize} for equality up
   to variable renaming. Hashing and comparing these int lists is far
   cheaper than printing the rule. *)
type structural_key = int list * int list * string list

let structural_key r =
  ( List.map
      (fun l ->
        let id = Atom.id (Literal.atom l) in
        if Literal.is_neg l then -id - 1 else id)
      r.body,
    List.map Atom.id r.head,
    Names.Sset.elements r.evars )

(* Renaming-invariant keys with a stored hash. The payload is an int
   array encoding the rule's atoms in canonical (color-sorted) order
   with variables numbered by first occurrence, so two rules get equal
   keys iff they are variants of each other (up to the usual 1-WL
   caveat, see {!canonicalize}). Probing a hash table keyed on these is
   the O(1) dedup at the heart of the closure loops. *)
module Key = struct
  type t = { arr : int array; h : int }

  let make arr =
    let h = ref 0 in
    Array.iter (fun c -> h := (!h * 31) + c) arr;
    { arr; h = !h land max_int }

  let equal k1 k2 = k1.h = k2.h && k1.arr = k2.arr
  let hash k = k.h

  let compare k1 k2 =
    let c = Int.compare k1.h k2.h in
    if c <> 0 then c else Stdlib.compare k1.arr k2.arr

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)
end

(* Renaming-*sensitive* key from hash-consed atom ids: a much cheaper
   prefilter than {!canonical_key} for streams of rules that mostly
   repeat verbatim (same variable names) before differing by renaming. *)
let raw_key r =
  let buf = ref [] in
  List.iter
    (fun l ->
      let id = Atom.id (Literal.atom l) in
      buf := (if Literal.is_neg l then (2 * id) + 1 else 2 * id) :: !buf)
    r.body;
  buf := -1 :: !buf;
  List.iter (fun a -> buf := (2 * Atom.id a) :: !buf) r.head;
  buf := -2 :: !buf;
  Names.Sset.iter
    (fun v -> buf := (2 * Term.id (Term.intern (Term.Var v))) + 1 :: !buf)
    r.evars;
  Key.make (Array.of_list (List.rev !buf))

(* Canonical form up to variable renaming, used to deduplicate rules in
   the closures ex(Σ) and Ξ(Σ). Variables are distinguished by iterated
   color refinement over their occurrence structure (a 1-WL pass over
   the rule's hypergraph), then renamed to v0, v1, ... by first
   occurrence in the color-sorted atom list. Equal canonical forms imply
   the rules are variants of each other; variables a refinement round
   cannot separate are either automorphic (any tie-break yields the same
   form) or — rarely — genuinely different, in which case a duplicate
   may survive, which is harmless for soundness and termination.

   The refinement works on integers throughout: variable colors are
   small ints, ground terms are colored by their interned {!Term.id}
   and relations by {!Atom.rel_id} (both process-stable, so variant
   rules agree on them), and occurrence contexts are int lists compared
   structurally. This keeps canonicalization — the inner loop of the
   closure dedup — free of string building. *)
let canonical_core r =
  let occurrences =
    (* (tag, atom) with tags distinguishing positive/negative/head *)
    List.map (fun l -> ((if Literal.is_neg l then 1 else 0), Literal.atom l)) r.body
    @ List.map (fun a -> (2, a)) r.head
  in
  let atoms_arr = Array.of_list occurrences in
  let natoms = Array.length atoms_arr in
  (* Resolve every term to an int code once — variable names hit the
     string table here and never again: code >= 0 is a dense variable
     index (first-occurrence order), code < 0 encodes a ground term as
     [-id - 1]. All later passes are pure int work. *)
  let var_idx : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let var_names = ref [] in
  let codes =
    Array.map
      (fun (_, a) ->
        let ts = Atom.terms a in
        let arr = Array.make (List.length ts) 0 in
        List.iteri
          (fun pos t ->
            arr.(pos) <-
              (match t with
              | Term.Var v -> (
                match Hashtbl.find_opt var_idx v with
                | Some i -> i
                | None ->
                  let i = Hashtbl.length var_idx in
                  Hashtbl.add var_idx v i;
                  var_names := v :: !var_names;
                  i)
              | (Term.Const _ | Term.Null _) as t -> -Term.id t - 1))
          ts;
        arr)
      atoms_arr
  in
  let nvars = Hashtbl.length var_idx in
  let var_name = Array.make (max 1 nvars) "" in
  List.iteri (fun k v -> var_name.(nvars - 1 - k) <- v) !var_names;
  let color = Array.make (max 1 nvars) 0 in
  Array.iteri (fun i v -> if Names.Sset.mem v r.evars then color.(i) <- 1) var_name;
  (* Term colors in a single int space: variables map to even numbers
     via their current color, ground terms to odd numbers via their
     interned id. *)
  let term_color c = if c >= 0 then 2 * color.(c) else (2 * (-c - 1)) + 1 in
  let var_occs = Array.make (max 1 nvars) [] in
  Array.iteri
    (fun ai arr ->
      Array.iteri
        (fun pos c -> if c >= 0 then var_occs.(c) <- (ai, pos) :: var_occs.(c))
        arr)
    codes;
  let width = 1 + Array.fold_left (fun acc ts -> max acc (Array.length ts)) 0 codes in
  let cmp_ints = List.compare Int.compare in
  (* Sort-based compression: assign dense ids to an array of int-list
     keys, numbered in sorted key order (renaming-invariant), without
     intermediate hash tables. [out.(i)] receives the id of [keys.(i)];
     returns the number of distinct keys. *)
  let compress keys out =
    let n = Array.length keys in
    let order = Array.init n (fun i -> i) in
    Array.sort (fun i j -> cmp_ints keys.(i) keys.(j)) order;
    let count = ref 0 in
    let prev = ref None in
    Array.iter
      (fun i ->
        (match !prev with
        | Some k when cmp_ints keys.(i) k = 0 -> ()
        | Some _ | None ->
          incr count;
          prev := Some keys.(i));
        out.(i) <- !count - 1)
      order;
    !count
  in
  (* One refinement round: each variable's new color is its old color
     plus the sorted multiset of its colored occurrence contexts.
     Contexts are packed into single ints — atom signatures (tag, rel,
     term colors) are interned to dense ids in sorted-signature order,
     and a context is [sig id * width + position] — so the per-variable
     keys are flat int lists, never nested structures. Every
     intermediate is renaming-invariant. Returns the class count. *)
  let refine () =
    let sigs =
      Array.init natoms (fun ai ->
          let tag, a = atoms_arr.(ai) in
          tag :: Atom.rel_id a
          :: Array.fold_right (fun c acc -> term_color c :: acc) codes.(ai) [])
    in
    let atom_sig = Array.make (max 1 natoms) 0 in
    ignore (compress sigs atom_sig);
    let keys =
      Array.init nvars (fun i ->
          color.(i)
          :: List.sort Int.compare
               (List.map (fun (ai, pos) -> (atom_sig.(ai) * width) + pos) var_occs.(i)))
    in
    compress keys color
  in
  (* Refinement only ever splits classes, so an unchanged class count
     means a fixed point: stop early. The stopping rule depends only on
     renaming-invariant data, so variants still canonicalize alike. *)
  let rec refine_until prev rounds =
    if rounds < min 4 (max 1 nvars) then begin
      let n = refine () in
      if n > prev then refine_until n (rounds + 1)
    end
  in
  refine_until 0 0;
  (* Sort atoms by their colored shape: body atoms by (sign, relation,
     colors) — stable, preserving input order on ties — head atoms by
     (relation, colors). *)
  let colored ai = Array.map term_color codes.(ai) in
  let cmp_colored a1 c1 a2 c2 =
    let c = Int.compare (Atom.rel_id a1) (Atom.rel_id a2) in
    if c <> 0 then c
    else begin
      let n1 = Array.length c1 and n2 = Array.length c2 in
      let rec go i =
        if i >= n1 || i >= n2 then Int.compare n1 n2
        else
          let c = Int.compare c1.(i) c2.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
  in
  let nbody = List.length r.body in
  let sort_idx lo n cmp =
    let order = Array.init n (fun k -> lo + k) in
    (* stable: ties broken by original index *)
    Array.sort
      (fun i j ->
        let c = cmp i j in
        if c <> 0 then c else Int.compare i j)
      order;
    order
  in
  let colors_of = Array.init natoms colored in
  let body_order =
    sort_idx 0 nbody (fun i j ->
        let ti, ai = atoms_arr.(i) and tj, aj = atoms_arr.(j) in
        let c = Int.compare ti tj in
        if c <> 0 then c else cmp_colored ai colors_of.(i) aj colors_of.(j))
  in
  let head_order =
    sort_idx nbody (natoms - nbody) (fun i j ->
        let _, ai = atoms_arr.(i) and _, aj = atoms_arr.(j) in
        cmp_colored ai colors_of.(i) aj colors_of.(j))
  in
  (atoms_arr, codes, nvars, var_name, body_order, head_order)

let canonicalize r =
  let atoms_arr, _, _, _, body_order, head_order = canonical_core r in
  let body_sorted =
    Array.to_list
      (Array.map
         (fun i ->
           let tag, a = atoms_arr.(i) in
           if tag = 1 then Literal.Neg a else Literal.Pos a)
         body_order)
  in
  let head_sorted = Array.to_list (Array.map (fun i -> snd atoms_arr.(i)) head_order) in
  let counter = ref 0 in
  let mapping = Hashtbl.create 16 in
  let rename_var v =
    match Hashtbl.find_opt mapping v with
    | Some v' -> v'
    | None ->
      let v' = Printf.sprintf "v%d" !counter in
      incr counter;
      Hashtbl.add mapping v v';
      v'
  in
  let rename_term = function
    | Term.Var v -> Term.Var (rename_var v)
    | (Term.Const _ | Term.Null _) as t -> t
  in
  let rename_atom = Atom.map_terms rename_term in
  let body = List.map (Literal.map_atom rename_atom) body_sorted in
  let head = List.map rename_atom head_sorted in
  let evars =
    Names.Sset.map
      (fun v -> match Hashtbl.find_opt mapping v with Some v' -> v' | None -> v)
      r.evars
  in
  let renamed = { label = None; body; head; evars } in
  (* A final plain sort for a stable printed form. *)
  { renamed with body = List.sort Literal.compare renamed.body; head = List.sort Atom.compare renamed.head }

(* The canonical key encodes each atom as an int vector — sign tag,
   relation id, then variables as 2 x first-occurrence index (in the
   color-sorted order, mirroring the v0, v1, ... renaming) and ground
   terms as 2 x interned id + 1 — so deduplication never builds renamed
   atoms, strings, or string sets. The vectors are re-sorted before
   flattening, matching the final plain sort of {!canonicalize}: the
   key compares atom *multisets* of the renamed form, so it
   discriminates exactly like [structural_key o canonicalize]. *)
let canonical_key r =
  let atoms_arr, codes, nvars, var_name, body_order, head_order = canonical_core r in
  let num = Array.make (max 1 nvars) (-1) in
  let next = ref 0 in
  let code_out c =
    if c >= 0 then begin
      if num.(c) < 0 then begin
        num.(c) <- !next;
        incr next
      end;
      2 * num.(c)
    end
    else (2 * (-c - 1)) + 1
  in
  let atom_vec i =
    let tag, a = atoms_arr.(i) in
    tag :: Atom.rel_id a
    :: Array.fold_right (fun c acc -> code_out c :: acc) codes.(i) []
  in
  (* Numbering must follow the canonical traversal order, so build the
     vectors in sorted order before the final multiset re-sort. *)
  let body_vecs = Array.to_list (Array.map atom_vec body_order) in
  let head_vecs = Array.to_list (Array.map atom_vec head_order) in
  let evar_codes =
    List.sort Int.compare
      (Names.Sset.fold
         (fun v acc ->
           (* existential variables occur in the head, so they are numbered *)
           let rec find i = if var_name.(i) = v then i else find (i + 1) in
           num.(find 0) :: acc)
         r.evars [])
  in
  let buf = ref [] in
  let push c = buf := c :: !buf in
  List.iter
    (fun vec ->
      push (-3);
      List.iter push vec)
    (List.sort Stdlib.compare body_vecs);
  push (-1);
  List.iter
    (fun vec ->
      push (-3);
      List.iter push vec)
    (List.sort Stdlib.compare head_vecs);
  push (-2);
  List.iter push evar_codes;
  Key.make (Array.of_list (List.rev !buf))

let pp ppf r =
  let pp_evars ppf evars =
    if not (Names.Sset.is_empty evars) then
      let pp_var ppf v = Fmt.pf ppf "?%s" v in
      Fmt.pf ppf "exists %a. " (Names.pp_comma_list pp_var) (Names.Sset.elements evars)
  in
  let pp_body ppf = function
    | [] -> Fmt.string ppf "true"
    | body -> Names.pp_comma_list Literal.pp ppf body
  in
  Fmt.pf ppf "%a -> %a%a" pp_body r.body pp_evars r.evars (Names.pp_comma_list Atom.pp) r.head

let to_string = Fmt.to_to_string pp
