(** Homomorphism search from atom conjunctions into databases.

    A homomorphism maps variables to database terms such that every
    positive atom has an image among the facts; constants are fixed.
    The search is a backtracking join: at each step the remaining atoms
    are scored with {!Database.candidate_count} — an index-only
    cardinality estimate that touches no fact and builds no list — and
    the atom with the fewest candidates is expanded by streaming its
    (index-intersected) candidates with {!Database.iter_candidates}.
    Negative literals are evaluated last, as absence checks (their
    variables are bound by then thanks to rule safety). *)

(* Enumerate all extensions of [init] mapping every atom of [atoms] into
   [db]; calls [k] on each complete homomorphism. The substituted atoms
   are never built: candidate selection resolves the pattern under the
   substitution on the fly, and [Subst.match_atom] unifies the raw
   pattern against each candidate, extending the substitution. *)
let iter_pos ?(init = Subst.empty) atoms db k =
  let rec go subst remaining =
    match remaining with
    | [] -> k subst
    | [ atom ] ->
      (* single remaining atom: no scoring needed *)
      Database.iter_candidates_under db subst atom (fun fact ->
          match Subst.match_atom subst atom fact with
          | None -> ()
          | Some subst' -> k subst')
    | _ ->
      (* Expand the remaining atom with the smallest candidate estimate
         (first wins ties, matching the previous materializing code). *)
      let best = ref None in
      List.iter
        (fun a ->
          let n = Database.candidate_count_under db subst a in
          match !best with
          | Some (_, m) when m <= n -> ()
          | _ -> best := Some (a, n))
        remaining;
      ( match !best with
      | None -> ()
      | Some (_, 0) -> ()  (* some atom has no candidates: dead branch *)
      | Some (atom, _) ->
        (* Physical inequality suffices: atoms are hash-consed, so a
           duplicate of [atom] in [remaining] is the same allocation and
           dropping it too is sound (conjunction is idempotent). *)
        let rest = List.filter (fun a -> a != atom) remaining in
        Database.iter_candidates_under db subst atom (fun fact ->
            match Subst.match_atom subst atom fact with
            | None -> ()
            | Some subst' -> go subst' rest) )
  in
  go init atoms

let all ?init atoms db =
  let acc = ref [] in
  iter_pos ?init atoms db (fun s -> acc := s :: !acc);
  !acc

let exists ?init atoms db =
  let module M = struct
    exception Found
  end in
  try
    iter_pos ?init atoms db (fun _ -> raise M.Found);
    false
  with M.Found -> true

(* Literal-level search: positive literals are joined, then each negative
   literal is checked to have no image in [db]. Negative literals with
   unbound variables are rejected (the caller must ensure safety). *)
let iter_literals ?(init = Subst.empty) literals db k =
  let pos = List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) literals in
  let neg = List.filter_map (function Literal.Neg a -> Some a | Literal.Pos _ -> None) literals in
  iter_pos ~init pos db (fun subst ->
      let ok =
        List.for_all
          (fun a ->
            let a' = Subst.apply_atom subst a in
            if not (Atom.is_ground a') then
              invalid_arg
                (Fmt.str "Homomorphism.iter_literals: unsafe negative literal %a" Atom.pp a');
            not (Database.mem db a'))
          neg
      in
      if ok then k subst)

let all_literals ?init literals db =
  let acc = ref [] in
  iter_literals ?init literals db (fun s -> acc := s :: !acc);
  !acc

(* Does the conjunction [atoms] (with variables) map into the finite atom
   set [targets]? Used for chase-tree reasoning and tests. *)
let into_atoms atoms targets =
  let db = Database.of_atoms targets in
  exists atoms db
