(** Homomorphism search from atom conjunctions into databases.

    A homomorphism maps variables to database terms such that every
    positive atom has an image among the facts; constants are fixed.
    The search is a backtracking join that at each step materializes the
    candidate facts of every remaining atom under the current partial
    substitution and expands the atom with the fewest candidates.
    Negative literals are evaluated last, as absence checks (their
    variables are bound by then thanks to rule safety). *)

(* Enumerate all extensions of [init] mapping every atom of [atoms] into
   [db]; calls [k] on each complete homomorphism. *)
let iter_pos ?(init = Subst.empty) atoms db k =
  let rec go subst remaining =
    match remaining with
    | [] -> k subst
    | _ ->
      (* Pick the remaining atom with the fewest candidate facts. *)
      let scored =
        List.map
          (fun a ->
            let bound = Subst.apply_atom subst a in
            let cands = Database.candidates db bound in
            (a, bound, cands, List.length cands))
          remaining
      in
      let best =
        List.fold_left
          (fun acc x ->
            match acc with
            | None -> Some x
            | Some (_, _, _, n) ->
              let _, _, _, n' = x in
              if n' < n then Some x else acc)
          None scored
      in
      ( match best with
      | None -> ()
      | Some (atom, bound, cands, _) ->
        let rest = List.filter (fun a -> a != atom) remaining in
        List.iter
          (fun fact ->
            match Subst.match_atom subst bound fact with
            | None -> ()
            | Some subst' -> go subst' rest)
          cands )
  in
  go init atoms

let all ?init atoms db =
  let acc = ref [] in
  iter_pos ?init atoms db (fun s -> acc := s :: !acc);
  !acc

let exists ?init atoms db =
  let module M = struct
    exception Found
  end in
  try
    iter_pos ?init atoms db (fun _ -> raise M.Found);
    false
  with M.Found -> true

(* Literal-level search: positive literals are joined, then each negative
   literal is checked to have no image in [db]. Negative literals with
   unbound variables are rejected (the caller must ensure safety). *)
let iter_literals ?(init = Subst.empty) literals db k =
  let pos = List.filter_map (function Literal.Pos a -> Some a | Literal.Neg _ -> None) literals in
  let neg = List.filter_map (function Literal.Neg a -> Some a | Literal.Pos _ -> None) literals in
  iter_pos ~init pos db (fun subst ->
      let ok =
        List.for_all
          (fun a ->
            let a' = Subst.apply_atom subst a in
            if not (Atom.is_ground a') then
              invalid_arg
                (Fmt.str "Homomorphism.iter_literals: unsafe negative literal %a" Atom.pp a');
            not (Database.mem db a'))
          neg
      in
      if ok then k subst)

let all_literals ?init literals db =
  let acc = ref [] in
  iter_literals ?init literals db (fun s -> acc := s :: !acc);
  !acc

(* Does the conjunction [atoms] (with variables) map into the finite atom
   set [targets]? Used for chase-tree reasoning and tests. *)
let into_atoms atoms targets =
  let db = Database.of_atoms targets in
  exists atoms db
