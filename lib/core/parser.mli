(** Surface syntax for rules, theories and databases.

    {v
      theory   ::= rule*
      rule     ::= ["@" ident] body? "->" head "."
                 | ["@" ident] atom ":-" body "."      (Datalog style)
                 | ["@" ident] atom "."                (a fact)
      body     ::= literal ("," literal)*  |  "true"
      literal  ::= atom | "not" atom
      head     ::= "exists" var ("," var)* "." atoms | atoms
      atom     ::= ident ["[" terms "]"] "(" terms? ")"
      var      ::= Capitalized identifier | "?" ident
      constant ::= lowercase identifier | digits | 'quoted'
      null     ::= "_n" digits
      database ::= (atom ".")*
    v}
    [%] and [#] start comments. *)

exception Parse_error of string

val theory_of_string : string -> Theory.t
val rule_of_string : string -> Rule.t
val atom_of_string : string -> Atom.t
val database_of_string : string -> Database.t
