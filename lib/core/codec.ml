(** Binary codecs: length-prefixed encodings of the core datatypes; see
    the interface for the format conventions. *)

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

type source = { data : string; mutable pos : int }

let source_of_string data = { data; pos = 0 }
let pos s = s.pos
let at_end s = s.pos >= String.length s.data
let expect_end s = if not (at_end s) then corrupt "%d trailing bytes" (String.length s.data - s.pos)

let read_byte s =
  if s.pos >= String.length s.data then corrupt "truncated input at byte %d" s.pos
  else begin
    let c = Char.code s.data.[s.pos] in
    s.pos <- s.pos + 1;
    c
  end

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative value";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let read_varint s =
  let rec go shift acc =
    if shift > 56 then corrupt "varint too long at byte %d" s.pos
    else begin
      let b = read_byte s in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    end
  in
  let n = go 0 0 in
  if n < 0 then corrupt "varint overflow at byte %d" s.pos else n

let write_string buf str =
  write_varint buf (String.length str);
  Buffer.add_string buf str

let read_string s =
  let n = read_varint s in
  if s.pos + n > String.length s.data then
    corrupt "truncated string (%d bytes declared) at byte %d" n s.pos
  else begin
    let str = String.sub s.data s.pos n in
    s.pos <- s.pos + n;
    str
  end

let write_list buf write_elt l =
  write_varint buf (List.length l);
  List.iter (write_elt buf) l

let read_list s read_elt =
  let n = read_varint s in
  List.init n (fun _ -> read_elt s)

(* ------------------------------------------------------------------ *)
(* Logical values                                                      *)

let write_term buf = function
  | Term.Const c ->
    Buffer.add_char buf '\000';
    write_string buf c
  | Term.Null k ->
    Buffer.add_char buf '\001';
    write_varint buf k
  | Term.Var v ->
    Buffer.add_char buf '\002';
    write_string buf v

let read_term s =
  match read_byte s with
  | 0 -> Term.Const (read_string s)
  | 1 -> Term.Null (read_varint s)
  | 2 -> Term.Var (read_string s)
  | t -> corrupt "unknown term tag %d at byte %d" t (s.pos - 1)

let write_atom buf a =
  write_string buf (Atom.rel a);
  write_list buf write_term (Atom.ann a);
  write_list buf write_term (Atom.args a)

let read_atom s =
  let rel = read_string s in
  let ann = read_list s read_term in
  let args = read_list s read_term in
  Atom.make ~ann rel args

let write_literal buf = function
  | Literal.Pos a ->
    Buffer.add_char buf '\000';
    write_atom buf a
  | Literal.Neg a ->
    Buffer.add_char buf '\001';
    write_atom buf a

let read_literal s =
  match read_byte s with
  | 0 -> Literal.Pos (read_atom s)
  | 1 -> Literal.Neg (read_atom s)
  | t -> corrupt "unknown literal tag %d at byte %d" t (s.pos - 1)

let write_rule buf r =
  (match Rule.label r with
  | None -> Buffer.add_char buf '\000'
  | Some l ->
    Buffer.add_char buf '\001';
    write_string buf l);
  write_list buf write_string (Names.Sset.elements (Rule.evars r));
  write_list buf write_literal (Rule.body r);
  write_list buf write_atom (Rule.head r)

let read_rule s =
  let label =
    match read_byte s with
    | 0 -> None
    | 1 -> Some (read_string s)
    | t -> corrupt "unknown label tag %d at byte %d" t (s.pos - 1)
  in
  let evars = read_list s read_string in
  let body = read_list s read_literal in
  let head = read_list s read_atom in
  match Rule.make ?label ~evars body head with
  | r -> r
  | exception Rule.Ill_formed m -> corrupt "ill-formed rule: %s" m

let write_theory buf sigma = write_list buf write_rule (Theory.rules sigma)
let read_theory s = Theory.of_rules (read_list s read_rule)

let write_fact_block buf facts = List.iter (write_atom buf) facts

let read_fact_block s n =
  List.init n (fun _ ->
      let a = read_atom s in
      if not (Atom.is_ground a) then corrupt "non-ground fact %a in fact block" Atom.pp a;
      a)

let write_database buf db =
  let facts = List.sort Atom.compare (Database.to_list db) in
  write_list buf write_atom facts

let read_database s =
  let n = read_varint s in
  let db = Database.create () in
  for _ = 1 to n do
    let a = read_atom s in
    match Database.add db a with
    | true -> ()
    | false -> corrupt "duplicate fact %a" Atom.pp a
    | exception Invalid_argument m -> corrupt "bad fact: %s" m
  done;
  db

(* ------------------------------------------------------------------ *)
(* Integrity                                                           *)

let fnv1a str =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    str;
  !h

let write_int64 buf x =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * i)) 0xffL)))
  done

let read_int64 s =
  let x = ref 0L in
  for i = 0 to 7 do
    x := Int64.logor !x (Int64.shift_left (Int64.of_int (read_byte s)) (8 * i))
  done;
  !x
