(** Guardedness analysis (Definitions 1-3 of the paper): affected
    positions, unsafe variables, and the seven languages of Figure 1.

    For theories with negation (Section 8), all notions are computed on
    the positive part, matching the paper's definition of weak
    guardedness for stratified theories. *)

type position = Atom.rel_key * int

module Pos_set : Set.S with type elt = position

val positions_of_var : Atom.t list -> string -> Pos_set.t
(** pos(Γ, x): the argument positions at which the variable occurs.
    Annotation slots are not positions. *)

val affected_positions : Theory.t -> Pos_set.t
(** ap(Σ): the least set containing the positions of existential head
    variables and closed under propagation through rules whose variable
    occurs only in affected body positions (Def. 2). *)

val unsafe_vars : ap:Pos_set.t -> Rule.t -> Names.Sset.t
(** Variables whose body occurrences are all in affected (argument)
    positions — the ones that may be bound to labeled nulls. *)

val find_guard : Rule.t -> Names.Sset.t -> Atom.t option option
(** [find_guard r vs] is [Some g] when some positive body atom's
    argument variables cover [vs] ([Some None] when [vs] is empty: the
    guard is vacuous), [None] otherwise. *)

val is_guarded_rule : Rule.t -> bool
val is_frontier_guarded_rule : Rule.t -> bool

val frontier_guard : Rule.t -> Atom.t option
(** fg(σ): an arbitrary but fixed frontier guard (Def. 1). *)

val is_weakly_guarded_rule : ap:Pos_set.t -> Rule.t -> bool
val is_weakly_frontier_guarded_rule : ap:Pos_set.t -> Rule.t -> bool
val is_nearly_guarded_rule : ap:Pos_set.t -> Rule.t -> bool
val is_nearly_frontier_guarded_rule : ap:Pos_set.t -> Rule.t -> bool

val is_guarded : Theory.t -> bool
val is_frontier_guarded : Theory.t -> bool
val is_weakly_guarded : Theory.t -> bool
val is_weakly_frontier_guarded : Theory.t -> bool
val is_nearly_guarded : Theory.t -> bool
val is_nearly_frontier_guarded : Theory.t -> bool

type language =
  | Datalog
  | Guarded
  | Frontier_guarded
  | Nearly_guarded
  | Nearly_frontier_guarded
  | Weakly_guarded
  | Weakly_frontier_guarded
  | Unrestricted

val language_name : language -> string

val classify : Theory.t -> language
(** The most restrictive language of Figure 1 containing the theory. *)

val in_language : Theory.t -> language -> bool

val is_proper : Theory.t -> bool
(** Def. 16: the affected positions of every relation form a prefix. *)
