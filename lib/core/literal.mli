(** Body literals: positive or negated atoms.

    Negation appears only in Section 8 of the paper (semipositive and
    stratified theories, Def. 22); the translations of Sections 4-6
    handle positive rules only. *)

type t =
  | Pos of Atom.t
  | Neg of Atom.t

val atom : t -> Atom.t
val is_pos : t -> bool
val is_neg : t -> bool

val map_atom : (Atom.t -> Atom.t) -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
