(** Atoms [R(t1, ..., tn)], optionally with an annotated relation name
    [R[u1, ..., uk](t1, ..., tn)].

    Annotations ("relation name annotations" in the paper) carry terms as
    part of the relation name; they are used by the weakly-frontier-guarded
    to weakly-guarded translation (Section 5.2) to park the terms sitting
    in non-affected positions. Two atoms denote the same relation exactly
    when their name, annotation arity and argument arity agree.

    Atoms are hash-consed: {!make} interns every term and returns the
    unique allocation for each structurally distinct atom, so {!equal}
    is physical equality and {!hash} / {!id} are stored integers. The
    join engine ({!Database}, {!Homomorphism}) relies on this: its
    indexes and fact tables never rehash structural values. *)

type t = {
  rel : string;
  ann : Term.t list;  (** annotation terms; [[]] for ordinary atoms *)
  args : Term.t list;
  rel_id : int;  (** interned {!rel_key} *)
  term_ids : int array;  (** {!Term.id}s of [ann @ args], by position *)
  id : int;  (** unique per structurally distinct atom *)
  hash : int;
}

(* Relation identity: name together with the two arities. *)
type rel_key = string * int * int

(* ------------------------------------------------------------------ *)
(* Relation-key interning.

   Domain-safe with the same two-level scheme as [Term]: the global
   tables are the id-assignment authority, guarded by one mutex, and
   each domain memoizes lookups in a private cache so the fast path is
   lock-free. [rel_key_of_id] stays on the global table (it is called
   per relation, not per fact) under the mutex. *)

let rel_mutex = Mutex.create ()
let rel_key_tbl : (rel_key, int) Hashtbl.t = Hashtbl.create 64
let rel_key_rev : (int, rel_key) Hashtbl.t = Hashtbl.create 64
let next_rel_id = ref 0

let rel_key_id_global (key : rel_key) =
  Mutex.lock rel_mutex;
  let i =
    match Hashtbl.find_opt rel_key_tbl key with
    | Some i -> i
    | None ->
      let i = !next_rel_id in
      incr next_rel_id;
      Hashtbl.add rel_key_tbl key i;
      Hashtbl.add rel_key_rev i key;
      i
  in
  Mutex.unlock rel_mutex;
  i

let rel_key_local : (rel_key, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let rel_key_id (key : rel_key) =
  let cache = Domain.DLS.get rel_key_local in
  match Hashtbl.find_opt cache key with
  | Some i -> i
  | None ->
    let i = rel_key_id_global key in
    Hashtbl.add cache key i;
    i

let rel_key_of_id i =
  Mutex.lock rel_mutex;
  match Hashtbl.find_opt rel_key_rev i with
  | Some key ->
    Mutex.unlock rel_mutex;
    key
  | None ->
    Mutex.unlock rel_mutex;
    raise Not_found

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)

module Cons_key = struct
  type t = int * int array  (* rel_id, term ids *)

  let equal (r1, a1) (r2, a2) = r1 = r2 && a1 = a2

  (* Multiply-xorshift per element. A plain [h * 31 + i] fold leaves
     dense sequential term ids in an arithmetic progression, and
     [Hashtbl] masks hashes with their low bits — bulk-interned facts
     (ids 2i, 2i+1, ...) would collapse into a handful of buckets and
     turn every hash-cons hit into a long chain scan. *)
  let hash (r, a) =
    let mix h k =
      let h = (h lxor k) * 0x9E3779B1 in
      h lxor (h lsr 17)
    in
    Array.fold_left mix (mix 0x1000193 r) a land max_int
end

module Cons_tbl = Hashtbl.Make (Cons_key)

(* Domain-safe hash-consing, same two-level scheme as the term and
   relation-key tables: the mutex-guarded global table assigns the
   unique allocation (and id) per structurally distinct atom; a
   domain-local cache makes repeat lookups lock-free. Parallel
   evaluation hash-conses freely (every derived head fact goes through
   [make]), so both levels matter: the global mutex for correctness of
   concurrent first-time interning, the local cache to keep the
   sequential fast path and the per-domain inner loops lock-free. *)

let cons_mutex = Mutex.create ()
let cons_tbl : t Cons_tbl.t = Cons_tbl.create 4096
let next_atom_id = ref 0

let cons_global key ~mk =
  Mutex.lock cons_mutex;
  let a =
    match Cons_tbl.find_opt cons_tbl key with
    | Some a -> a
    | None ->
      let id = !next_atom_id in
      incr next_atom_id;
      let a = mk id in
      Cons_tbl.add cons_tbl key a;
      a
  in
  Mutex.unlock cons_mutex;
  a

let cons_local : t Cons_tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Cons_tbl.create 1024)

let make ?(ann = []) rel args =
  let ann = List.map Term.intern ann in
  let args = List.map Term.intern args in
  let n_ann = List.length ann in
  let n_args = List.length args in
  let rel_id = rel_key_id (rel, n_ann, n_args) in
  let term_ids = Array.make (n_ann + n_args) 0 in
  List.iteri (fun i t -> term_ids.(i) <- Term.id t) ann;
  List.iteri (fun i t -> term_ids.(n_ann + i) <- Term.id t) args;
  let key = (rel_id, term_ids) in
  let cache = Domain.DLS.get cons_local in
  match Cons_tbl.find_opt cache key with
  | Some a -> a
  | None ->
    let a =
      cons_global key ~mk:(fun id ->
          { rel; ann; args; rel_id; term_ids; id; hash = Cons_key.hash key })
    in
    Cons_tbl.add cache key a;
    a

let rel a = a.rel
let ann a = a.ann
let args a = a.args
let arity a = List.length a.args

let rel_key a : rel_key = (a.rel, List.length a.ann, List.length a.args)
let rel_id a = a.rel_id
let id a = a.id
let hash a = a.hash
let term_ids a = a.term_ids

let terms a = a.ann @ a.args

let vars a =
  List.filter_map (function Term.Var v -> Some v | Term.Const _ | Term.Null _ -> None) (terms a)

let var_set a = Names.Sset.of_list (vars a)

(* Variables of the argument positions only. Guardedness notions look at
   these: annotation slots are invisible to guards (a safely annotated
   theory never lets an annotation variable occur as an argument). *)
let arg_vars a =
  List.filter_map (function Term.Var v -> Some v | Term.Const _ | Term.Null _ -> None) a.args

let arg_var_set a = Names.Sset.of_list (arg_vars a)

let term_set a = Term.Set.of_list (terms a)

let constants a =
  List.filter_map (function Term.Const c -> Some c | Term.Var _ | Term.Null _ -> None) (terms a)

let is_ground a = List.for_all Term.is_ground (terms a)

(* Total order: structural, for deterministic sorted output. Consistent
   with [equal] because hash-consing makes structural and physical
   equality coincide. *)
let compare a b =
  if a == b then 0
  else
    let c = String.compare a.rel b.rel in
    if c <> 0 then c
    else
      let c = List.compare Term.compare a.ann b.ann in
      if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = a == b

(* Identity fast path: an atom's stored terms are the canonical interned
   representatives, so when [f] fixes every one of them the atom itself
   is already the canonical result — skip the intern lookups entirely.
   Substitution application (the bulk caller) mostly leaves atoms
   untouched. *)
let map_terms f a =
  let same = ref true in
  let map1 t =
    let t' = f t in
    if t' != t then same := false;
    t'
  in
  let ann = List.map map1 a.ann in
  let args = List.map map1 a.args in
  if !same then a else make ~ann a.rel args

let pp ppf a =
  match a.ann with
  | [] -> Fmt.pf ppf "%s(%a)" a.rel (Names.pp_comma_list Term.pp) a.args
  | ann ->
    Fmt.pf ppf "%s[%a](%a)" a.rel
      (Names.pp_comma_list Term.pp)
      ann
      (Names.pp_comma_list Term.pp)
      a.args

let to_string = Fmt.to_to_string pp

let pp_quoted ppf a =
  match a.ann with
  | [] -> Fmt.pf ppf "%s(%a)" a.rel (Names.pp_comma_list Term.pp_quoted) a.args
  | ann ->
    Fmt.pf ppf "%s[%a](%a)" a.rel
      (Names.pp_comma_list Term.pp_quoted)
      ann
      (Names.pp_comma_list Term.pp_quoted)
      a.args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = ( == )
  let hash a = a.hash
end)
