(** Atoms [R(t1, ..., tn)], optionally with an annotated relation name
    [R[u1, ..., uk](t1, ..., tn)].

    Annotations ("relation name annotations" in the paper) carry terms as
    part of the relation name; they are used by the weakly-frontier-guarded
    to weakly-guarded translation (Section 5.2) to park the terms sitting
    in non-affected positions. Two atoms denote the same relation exactly
    when their name, annotation arity and argument arity agree. *)

type t = {
  rel : string;
  ann : Term.t list;  (** annotation terms; [[]] for ordinary atoms *)
  args : Term.t list;
}

let make ?(ann = []) rel args = { rel; ann; args }

let rel a = a.rel
let ann a = a.ann
let args a = a.args
let arity a = List.length a.args

(* Relation identity: name together with the two arities. *)
type rel_key = string * int * int

let rel_key a : rel_key = (a.rel, List.length a.ann, List.length a.args)

let terms a = a.ann @ a.args

let vars a =
  List.filter_map (function Term.Var v -> Some v | Term.Const _ | Term.Null _ -> None) (terms a)

let var_set a = Names.Sset.of_list (vars a)

(* Variables of the argument positions only. Guardedness notions look at
   these: annotation slots are invisible to guards (a safely annotated
   theory never lets an annotation variable occur as an argument). *)
let arg_vars a =
  List.filter_map (function Term.Var v -> Some v | Term.Const _ | Term.Null _ -> None) a.args

let arg_var_set a = Names.Sset.of_list (arg_vars a)

let term_set a = Term.Set.of_list (terms a)

let constants a =
  List.filter_map (function Term.Const c -> Some c | Term.Var _ | Term.Null _ -> None) (terms a)

let is_ground a = List.for_all Term.is_ground (terms a)

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let c = List.compare Term.compare a.ann b.ann in
    if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = compare a b = 0

let map_terms f a = { a with ann = List.map f a.ann; args = List.map f a.args }

let pp ppf a =
  match a.ann with
  | [] -> Fmt.pf ppf "%s(%a)" a.rel (Names.pp_comma_list Term.pp) a.args
  | ann ->
    Fmt.pf ppf "%s[%a](%a)" a.rel
      (Names.pp_comma_list Term.pp)
      ann
      (Names.pp_comma_list Term.pp)
      a.args

let to_string = Fmt.to_to_string pp

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
