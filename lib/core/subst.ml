(** Substitutions: finite maps from variables to terms.

    Homomorphisms from atom sets into databases (mapping variables to
    constants and nulls) and variable renamings are both represented as
    substitutions. Application leaves unmapped variables untouched. *)

type t = Term.t Names.Smap.t

let empty : t = Names.Smap.empty
let is_empty = Names.Smap.is_empty
let singleton v t : t = Names.Smap.singleton v t
let add v t (s : t) : t = Names.Smap.add v t s
let find_opt v (s : t) = Names.Smap.find_opt v s
let mem v (s : t) = Names.Smap.mem v s
let bindings (s : t) = Names.Smap.bindings s
let of_list l : t = Names.Smap.of_seq (List.to_seq l)
let domain (s : t) = Names.Smap.fold (fun v _ acc -> Names.Sset.add v acc) s Names.Sset.empty
let range (s : t) = Names.Smap.fold (fun _ t acc -> Term.Set.add t acc) s Term.Set.empty
let cardinal (s : t) = Names.Smap.cardinal s

let apply_term (s : t) t =
  match t with
  | Term.Var v -> ( match Names.Smap.find_opt v s with Some t' -> t' | None -> t)
  | Term.Const _ | Term.Null _ -> t

let apply_atom (s : t) a = Atom.map_terms (apply_term s) a
let apply_atoms (s : t) atoms = List.map (apply_atom s) atoms
let apply_literal (s : t) l = Literal.map_atom (apply_atom s) l

(* [compose s1 s2] applies s1 first, then s2: (compose s1 s2) x = s2 (s1 x).
   Bindings of s2 on variables outside dom(s1) are kept. *)
let compose (s1 : t) (s2 : t) : t =
  let s1' = Names.Smap.map (apply_term s2) s1 in
  Names.Smap.union (fun _ t _ -> Some t) s1' s2

(* Extend a candidate homomorphism so that it maps [t] to [target];
   returns None on conflict. Constants must map to themselves. *)
let unify_term (s : t) t target =
  match t with
  | Term.Const _ | Term.Null _ -> if Term.equal t target then Some s else None
  | Term.Var v -> (
    match Names.Smap.find_opt v s with
    | Some t' -> if Term.equal t' target then Some s else None
    | None -> Some (add v target s))

(* Match an atom with variables against a (ground) atom, extending [s].
   Relations are compared by interned id and the terms walked pairwise
   (hash-consing guarantees equal arities for equal rel ids), so the hot
   join loop never rebuilds term lists or compares structurally. *)
let match_atom (s : t) pattern target =
  if Atom.rel_id pattern <> Atom.rel_id target then None
  else if pattern == target then Some s
  else
    let rec go2 s pats tgts =
      match (pats, tgts) with
      | [], [] -> Some s
      | p :: pats, t :: tgts -> (
        match unify_term s p t with None -> None | Some s -> go2 s pats tgts)
      | [], _ :: _ | _ :: _, [] -> None
    in
    let rec go s pann tann =
      match (pann, tann) with
      | [], [] -> go2 s (Atom.args pattern) (Atom.args target)
      | p :: pats, t :: tgts -> (
        match unify_term s p t with None -> None | Some s -> go s pats tgts)
      | [], _ :: _ | _ :: _, [] -> None
    in
    go s (Atom.ann pattern) (Atom.ann target)

let pp ppf (s : t) =
  let pp_binding ppf (v, t) = Fmt.pf ppf "%s -> %a" v Term.pp t in
  Fmt.pf ppf "{%a}" (Names.pp_comma_list pp_binding) (bindings s)
