(** Guardedness analysis (Definitions 1-3 of the paper).

    Computes affected positions [ap(Σ)], unsafe variables, and classifies
    rules and theories as Datalog / guarded / frontier-guarded / weakly
    (frontier-)guarded / nearly (frontier-)guarded.

    For theories with negation (Section 8), all notions are computed on
    the positive part: negative literals are ignored both for affected
    positions and for guard search, matching the paper's definition of
    weak guardedness for stratified theories. *)

type position = Atom.rel_key * int

module Pos_set = Set.Make (struct
  type t = position

  let compare = compare
end)

(* pos(Γ, x): the argument positions at which variable [x] occurs in
   [atoms]. Annotation slots are not positions: an annotation variable
   only ever carries database constants, so it is never affected and
   never unsafe. *)
let positions_of_var atoms x =
  List.fold_left
    (fun acc a ->
      let key = Atom.rel_key a in
      List.fold_left
        (fun (i, acc) t ->
          match t with
          | Term.Var v when String.equal v x -> (i + 1, Pos_set.add (key, i) acc)
          | Term.Var _ | Term.Const _ | Term.Null _ -> (i + 1, acc))
        (0, acc) (Atom.args a)
      |> snd)
    Pos_set.empty atoms

(* All variable positions of [atoms] in one pass: variable name to the
   set of argument positions it occupies. The per-variable scans this
   replaces were quadratic in the rule size and dominated theory-level
   classification of large translated theories. *)
let positions_map atoms =
  let tbl : (string, Pos_set.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let key = Atom.rel_key a in
      List.iteri
        (fun i t ->
          match t with
          | Term.Var v ->
            let prev = Option.value ~default:Pos_set.empty (Hashtbl.find_opt tbl v) in
            Hashtbl.replace tbl v (Pos_set.add (key, i) prev)
          | Term.Const _ | Term.Null _ -> ())
        (Atom.args a))
    atoms;
  tbl

(* Affected positions of a theory: least fixpoint of Def. 2.

   The fixpoint runs over int-encoded positions — the interned relation
   id shifted past the argument index — so the inner subset checks
   compare machine integers instead of relation-name tuples; the result
   is decoded into the public [Pos_set] once at the end. Position maps
   of every rule are computed once, outside the iteration. *)
module Int_set = Set.Make (Int)

let pos_shift = 16 (* argument index lives in the low bits *)

let positions_map_int atoms =
  let tbl : (string, Int_set.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let rel = Atom.rel_id a in
      List.iteri
        (fun i t ->
          match t with
          | Term.Var v ->
            let prev = Option.value ~default:Int_set.empty (Hashtbl.find_opt tbl v) in
            Hashtbl.replace tbl v (Int_set.add ((rel lsl pos_shift) lor i) prev)
          | Term.Const _ | Term.Null _ -> ())
        (Atom.args a))
    atoms;
  tbl

let affected_positions (sigma : Theory.t) =
  (* Propagation candidates, computed once: a universal variable can
     push positions into [ap] only if it occurs in both body and head
     argument positions, so only those (body, head) position-set pairs
     survive into the iterated step. *)
  let start = ref Int_set.empty in
  let candidates =
    List.concat_map
      (fun r ->
        let body_pos = positions_map_int (Rule.body_atoms r) in
        let head_pos = positions_map_int (Rule.head r) in
        Names.Sset.iter
          (fun y ->
            match Hashtbl.find_opt head_pos y with
            | Some ps -> start := Int_set.union !start ps
            | None -> ())
          (Rule.evars r);
        Hashtbl.fold
          (fun x body_ps acc ->
            if Names.Sset.mem x (Rule.evars r) then acc
            else
              match Hashtbl.find_opt head_pos x with
              | Some head_ps -> (body_ps, head_ps) :: acc
              | None -> acc)
          body_pos [])
      (Theory.rules sigma)
  in
  let step ap =
    List.fold_left
      (fun ap (body_ps, head_ps) ->
        if Int_set.subset body_ps ap then Int_set.union ap head_ps else ap)
      ap candidates
  in
  let rec fix ap =
    let ap' = step ap in
    if Int_set.cardinal ap' = Int_set.cardinal ap then ap else fix ap'
  in
  let start = !start in
  Int_set.fold
    (fun code acc ->
      Pos_set.add (Atom.rel_key_of_id (code lsr pos_shift), code land ((1 lsl pos_shift) - 1)) acc)
    (fix start) Pos_set.empty

(* Variables of [r] that are unsafe w.r.t. the affected positions [ap]:
   they occur in argument positions and all those occurrences are
   affected. Variables living only in annotations are safe. *)
let unsafe_vars ~ap r =
  let body_pos = positions_map (Rule.body_atoms r) in
  Names.Sset.filter
    (fun x ->
      match Hashtbl.find_opt body_pos x with
      | Some ps -> Pos_set.subset ps ap
      | None -> false)
    (Rule.uvars r)

(* A body atom of [r] covering the variable set [vs], if any. When [vs]
   is empty any rule qualifies (the guard is vacuous), including rules
   with empty bodies such as "-> R(c)". *)
let find_guard r vs =
  if Names.Sset.is_empty vs then Some None
  else
    let covering a = Names.Sset.subset vs (Atom.arg_var_set a) in
    match List.find_opt covering (Rule.body_atoms r) with
    | Some a -> Some (Some a)
    | None -> None

let is_guarded_rule r = find_guard r (Rule.uvars_args r) <> None
let is_frontier_guarded_rule r = find_guard r (Rule.fvars_args r) <> None

(* fg(σ): an arbitrary but fixed frontier guard (Def. 1). *)
let frontier_guard r =
  match find_guard r (Rule.fvars_args r) with
  | Some (Some a) -> Some a
  | Some None -> (
    (* Vacuous frontier: fix the first body atom as the guard if any. *)
    match Rule.body_atoms r with
    | a :: _ -> Some a
    | [] -> None)
  | None -> None

let is_weakly_guarded_rule ~ap r =
  find_guard r (Names.Sset.inter (Rule.uvars_args r) (unsafe_vars ~ap r)) <> None

let is_weakly_frontier_guarded_rule ~ap r =
  find_guard r (Names.Sset.inter (Rule.fvars_args r) (unsafe_vars ~ap r)) <> None

let is_nearly_guarded_rule ~ap r =
  is_guarded_rule r || (Names.Sset.is_empty (unsafe_vars ~ap r) && Rule.is_datalog r)

let is_nearly_frontier_guarded_rule ~ap r =
  is_frontier_guarded_rule r
  || (Names.Sset.is_empty (unsafe_vars ~ap r) && Rule.is_datalog r)

let for_all_rules p sigma =
  let ap = affected_positions sigma in
  List.for_all (p ~ap) (Theory.rules sigma)

let is_guarded sigma = List.for_all is_guarded_rule (Theory.rules sigma)
let is_frontier_guarded sigma = List.for_all is_frontier_guarded_rule (Theory.rules sigma)
let is_weakly_guarded sigma = for_all_rules is_weakly_guarded_rule sigma
let is_weakly_frontier_guarded sigma = for_all_rules is_weakly_frontier_guarded_rule sigma
let is_nearly_guarded sigma = for_all_rules is_nearly_guarded_rule sigma
let is_nearly_frontier_guarded sigma = for_all_rules is_nearly_frontier_guarded_rule sigma

(* The seven languages of Figure 1, ordered by syntactic generality. *)
type language =
  | Datalog
  | Guarded
  | Frontier_guarded
  | Nearly_guarded
  | Nearly_frontier_guarded
  | Weakly_guarded
  | Weakly_frontier_guarded
  | Unrestricted

let language_name = function
  | Datalog -> "Datalog"
  | Guarded -> "guarded"
  | Frontier_guarded -> "frontier-guarded"
  | Nearly_guarded -> "nearly guarded"
  | Nearly_frontier_guarded -> "nearly frontier-guarded"
  | Weakly_guarded -> "weakly guarded"
  | Weakly_frontier_guarded -> "weakly frontier-guarded"
  | Unrestricted -> "unrestricted"

(* The most restrictive language of Figure 1 that syntactically contains
   the theory. The order tried follows the figure's inclusions. *)
let classify sigma =
  if Theory.is_datalog sigma then Datalog
  else if is_guarded sigma then Guarded
  else if is_frontier_guarded sigma then Frontier_guarded
  else if is_nearly_guarded sigma then Nearly_guarded
  else if is_nearly_frontier_guarded sigma then Nearly_frontier_guarded
  else if is_weakly_guarded sigma then Weakly_guarded
  else if is_weakly_frontier_guarded sigma then Weakly_frontier_guarded
  else Unrestricted

(* Membership test for a given language. *)
let in_language sigma = function
  | Datalog -> Theory.is_datalog sigma
  | Guarded -> is_guarded sigma
  | Frontier_guarded -> is_frontier_guarded sigma
  | Nearly_guarded -> is_nearly_guarded sigma
  | Nearly_frontier_guarded -> is_nearly_frontier_guarded sigma
  | Weakly_guarded -> is_weakly_guarded sigma
  | Weakly_frontier_guarded -> is_weakly_frontier_guarded sigma
  | Unrestricted -> true

(* Proper theories (Def. 16): in every relation the affected positions
   form a prefix of the argument list. *)
let is_proper sigma =
  let ap = affected_positions sigma in
  Theory.Rel_set.for_all
    (fun ((_, _, arity) as key) ->
      let affected i = Pos_set.mem (key, i) ap in
      let rec check i seen_unaffected =
        if i >= arity then true
        else if affected i then (not seen_unaffected) && check (i + 1) false
        else check (i + 1) true
      in
      check 0 false)
    (Theory.relations sigma)
