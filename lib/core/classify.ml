(** Guardedness analysis (Definitions 1-3 of the paper).

    Computes affected positions [ap(Σ)], unsafe variables, and classifies
    rules and theories as Datalog / guarded / frontier-guarded / weakly
    (frontier-)guarded / nearly (frontier-)guarded.

    For theories with negation (Section 8), all notions are computed on
    the positive part: negative literals are ignored both for affected
    positions and for guard search, matching the paper's definition of
    weak guardedness for stratified theories. *)

type position = Atom.rel_key * int

module Pos_set = Set.Make (struct
  type t = position

  let compare = compare
end)

(* pos(Γ, x): the argument positions at which variable [x] occurs in
   [atoms]. Annotation slots are not positions: an annotation variable
   only ever carries database constants, so it is never affected and
   never unsafe. *)
let positions_of_var atoms x =
  List.fold_left
    (fun acc a ->
      let key = Atom.rel_key a in
      List.fold_left
        (fun (i, acc) t ->
          match t with
          | Term.Var v when String.equal v x -> (i + 1, Pos_set.add (key, i) acc)
          | Term.Var _ | Term.Const _ | Term.Null _ -> (i + 1, acc))
        (0, acc) (Atom.args a)
      |> snd)
    Pos_set.empty atoms

(* Affected positions of a theory: least fixpoint of Def. 2. *)
let affected_positions (sigma : Theory.t) =
  let start =
    List.fold_left
      (fun acc r ->
        Names.Sset.fold
          (fun y acc -> Pos_set.union acc (positions_of_var (Rule.head r) y))
          (Rule.evars r) acc)
      Pos_set.empty (Theory.rules sigma)
  in
  let step ap =
    List.fold_left
      (fun ap r ->
        let body = Rule.body_atoms r in
        Names.Sset.fold
          (fun x ap ->
            let body_pos = positions_of_var body x in
            if (not (Pos_set.is_empty body_pos)) && Pos_set.subset body_pos ap then
              Pos_set.union ap (positions_of_var (Rule.head r) x)
            else ap)
          (Rule.uvars r) ap)
      ap (Theory.rules sigma)
  in
  let rec fix ap =
    let ap' = step ap in
    if Pos_set.cardinal ap' = Pos_set.cardinal ap then ap else fix ap'
  in
  fix start

(* Variables of [r] that are unsafe w.r.t. the affected positions [ap]:
   they occur in argument positions and all those occurrences are
   affected. Variables living only in annotations are safe. *)
let unsafe_vars ~ap r =
  let body = Rule.body_atoms r in
  Names.Sset.filter
    (fun x ->
      let body_pos = positions_of_var body x in
      (not (Pos_set.is_empty body_pos)) && Pos_set.subset body_pos ap)
    (Rule.uvars r)

(* A body atom of [r] covering the variable set [vs], if any. When [vs]
   is empty any rule qualifies (the guard is vacuous), including rules
   with empty bodies such as "-> R(c)". *)
let find_guard r vs =
  if Names.Sset.is_empty vs then Some None
  else
    let covering a = Names.Sset.subset vs (Atom.arg_var_set a) in
    match List.find_opt covering (Rule.body_atoms r) with
    | Some a -> Some (Some a)
    | None -> None

let is_guarded_rule r = find_guard r (Rule.uvars_args r) <> None
let is_frontier_guarded_rule r = find_guard r (Rule.fvars_args r) <> None

(* fg(σ): an arbitrary but fixed frontier guard (Def. 1). *)
let frontier_guard r =
  match find_guard r (Rule.fvars_args r) with
  | Some (Some a) -> Some a
  | Some None -> (
    (* Vacuous frontier: fix the first body atom as the guard if any. *)
    match Rule.body_atoms r with
    | a :: _ -> Some a
    | [] -> None)
  | None -> None

let is_weakly_guarded_rule ~ap r =
  find_guard r (Names.Sset.inter (Rule.uvars_args r) (unsafe_vars ~ap r)) <> None

let is_weakly_frontier_guarded_rule ~ap r =
  find_guard r (Names.Sset.inter (Rule.fvars_args r) (unsafe_vars ~ap r)) <> None

let is_nearly_guarded_rule ~ap r =
  is_guarded_rule r || (Names.Sset.is_empty (unsafe_vars ~ap r) && Rule.is_datalog r)

let is_nearly_frontier_guarded_rule ~ap r =
  is_frontier_guarded_rule r
  || (Names.Sset.is_empty (unsafe_vars ~ap r) && Rule.is_datalog r)

let for_all_rules p sigma =
  let ap = affected_positions sigma in
  List.for_all (p ~ap) (Theory.rules sigma)

let is_guarded sigma = List.for_all is_guarded_rule (Theory.rules sigma)
let is_frontier_guarded sigma = List.for_all is_frontier_guarded_rule (Theory.rules sigma)
let is_weakly_guarded sigma = for_all_rules is_weakly_guarded_rule sigma
let is_weakly_frontier_guarded sigma = for_all_rules is_weakly_frontier_guarded_rule sigma
let is_nearly_guarded sigma = for_all_rules is_nearly_guarded_rule sigma
let is_nearly_frontier_guarded sigma = for_all_rules is_nearly_frontier_guarded_rule sigma

(* The seven languages of Figure 1, ordered by syntactic generality. *)
type language =
  | Datalog
  | Guarded
  | Frontier_guarded
  | Nearly_guarded
  | Nearly_frontier_guarded
  | Weakly_guarded
  | Weakly_frontier_guarded
  | Unrestricted

let language_name = function
  | Datalog -> "Datalog"
  | Guarded -> "guarded"
  | Frontier_guarded -> "frontier-guarded"
  | Nearly_guarded -> "nearly guarded"
  | Nearly_frontier_guarded -> "nearly frontier-guarded"
  | Weakly_guarded -> "weakly guarded"
  | Weakly_frontier_guarded -> "weakly frontier-guarded"
  | Unrestricted -> "unrestricted"

(* The most restrictive language of Figure 1 that syntactically contains
   the theory. The order tried follows the figure's inclusions. *)
let classify sigma =
  if Theory.is_datalog sigma then Datalog
  else if is_guarded sigma then Guarded
  else if is_frontier_guarded sigma then Frontier_guarded
  else if is_nearly_guarded sigma then Nearly_guarded
  else if is_nearly_frontier_guarded sigma then Nearly_frontier_guarded
  else if is_weakly_guarded sigma then Weakly_guarded
  else if is_weakly_frontier_guarded sigma then Weakly_frontier_guarded
  else Unrestricted

(* Membership test for a given language. *)
let in_language sigma = function
  | Datalog -> Theory.is_datalog sigma
  | Guarded -> is_guarded sigma
  | Frontier_guarded -> is_frontier_guarded sigma
  | Nearly_guarded -> is_nearly_guarded sigma
  | Nearly_frontier_guarded -> is_nearly_frontier_guarded sigma
  | Weakly_guarded -> is_weakly_guarded sigma
  | Weakly_frontier_guarded -> is_weakly_frontier_guarded sigma
  | Unrestricted -> true

(* Proper theories (Def. 16): in every relation the affected positions
   form a prefix of the argument list. *)
let is_proper sigma =
  let ap = affected_positions sigma in
  Theory.Rel_set.for_all
    (fun ((_, _, arity) as key) ->
      let affected i = Pos_set.mem (key, i) ap in
      let rec check i seen_unaffected =
        if i >= arity then true
        else if affected i then (not seen_unaffected) && check (i + 1) false
        else check (i + 1) true
      in
      check 0 false)
    (Theory.relations sigma)
