(** Sorted integer runs; see the interface for the representation. *)

let half_bits = 31
let half_mask = (1 lsl half_bits) - 1

let pack v r = (v lsl half_bits) lor r
let value pk = pk lsr half_bits
let row pk = pk land half_mask

(* Monomorphic int compare: Array.sort with a polymorphic compare would
   go through the generic comparator on every element. *)
let sort (a : int array) = Array.sort (fun (x : int) y -> compare x y) a

let merge (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x <= y then begin incr i; out.(!k) <- x end
    else begin incr j; out.(!k) <- y end;
    incr k
  done;
  if !i < la then Array.blit a !i out !k (la - !i);
  if !j < lb then Array.blit b !j out !k (lb - !j);
  out

let lower (a : int array) key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if a.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let seg a v = (lower a (pack v 0), lower a (pack (v + 1) 0))

let count_value a v =
  let lo, hi = seg a v in
  hi - lo

let gallop (a : int array) key ~lo =
  let n = Array.length a in
  if lo >= n || a.(lo) >= key then lo
  else begin
    (* Doubling probe: find a bracket [lo + step/2, lo + step]. *)
    let step = ref 1 in
    while lo + !step < n && a.(lo + !step) < key do
      step := !step lsl 1
    done;
    let l = ref (lo + (!step lsr 1)) and h = ref (min n (lo + !step + 1)) in
    while !l < !h do
      let mid = (!l + !h) lsr 1 in
      if a.(mid) < key then l := mid + 1 else h := mid
    done;
    !l
  end

let inter (a : int array) (b : int array) =
  (* Gallop through the longer array driven by the shorter. *)
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let la = Array.length a in
  let out = Array.make (min la (Array.length b)) 0 in
  let k = ref 0 and j = ref 0 in
  for i = 0 to la - 1 do
    let v = a.(i) in
    j := gallop b v ~lo:!j;
    if !j < Array.length b && b.(!j) = v then begin
      out.(!k) <- v;
      incr k
    end
  done;
  Array.sub out 0 !k

let iter_distinct_values runs f =
  let runs = Array.of_list (List.filter (fun r -> Array.length r > 0) runs) in
  let n = Array.length runs in
  let pos = Array.make n 0 in
  let exhausted = ref 0 in
  while !exhausted < n do
    (* Smallest head across the runs: its value is the next distinct
       value, with the smallest witnessing row (heads are sorted by
       (value, row), so the minimal packed head has the minimal row). *)
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if pos.(i) < Array.length runs.(i) then
        let pk = runs.(i).(pos.(i)) in
        if !best < 0 || pk < !best then best := pk
    done;
    if !best < 0 then exhausted := n
    else begin
      let v = value !best in
      f v (row !best);
      (* Skip every entry of this value in every run. *)
      exhausted := 0;
      for i = 0 to n - 1 do
        (if pos.(i) < Array.length runs.(i) then
           pos.(i) <- gallop runs.(i) (pack (v + 1) 0) ~lo:pos.(i));
        if pos.(i) >= Array.length runs.(i) then incr exhausted
      done
    end
  done
