(** Surface syntax for rules, theories and databases.

    Grammar (comments start with [%] or [#] and run to end of line):
    {v
      theory   ::= rule*
      rule     ::= ["@" ident] body? "->" head "."
      body     ::= literal ("," literal)*   |  "true"
      literal  ::= atom | "not" atom
      head     ::= "exists" var ("," var)* "." atoms | atoms
      atoms    ::= atom ("," atom)*
      atom     ::= ident ["[" terms "]"] "(" terms? ")"
      term     ::= var | constant | "_n" digits
      var      ::= uppercase identifier | "?" ident
      constant ::= lowercase identifier | digits | "'" chars "'"
      database ::= (atom ".")*
    v}
    Following Datalog convention, identifiers starting with an uppercase
    letter (or prefixed by [?]) are variables; everything else is a
    constant. [_nK] denotes the labeled null with index K. *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type token =
  | Ident of string
  | Quoted of string
  | Lpar
  | Rpar
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | Arrow
  | Implied  (** ":-", Datalog-style *)
  | At
  | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Quoted s -> Fmt.pf ppf "quoted constant %S" s
  | Lpar -> Fmt.string ppf "'('"
  | Rpar -> Fmt.string ppf "')'"
  | Lbracket -> Fmt.string ppf "'['"
  | Rbracket -> Fmt.string ppf "']'"
  | Comma -> Fmt.string ppf "','"
  | Dot -> Fmt.string ppf "'.'"
  | Arrow -> Fmt.string ppf "'->'"
  | Implied -> Fmt.string ppf "':-'"
  | At -> Fmt.string ppf "'@'"
  | Eof -> Fmt.string ppf "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '?'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' || c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (push Lpar; incr i)
    else if c = ')' then (push Rpar; incr i)
    else if c = '[' then (push Lbracket; incr i)
    else if c = ']' then (push Rbracket; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '.' then (push Dot; incr i)
    else if c = '@' then (push At; incr i)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then (push Arrow; i := !i + 2)
    else if c = ':' && !i + 1 < n && input.[!i + 1] = '-' then (push Implied; i := !i + 2)
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then parse_error "unterminated quoted constant";
      push (Quoted (String.sub input (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do
        incr j
      done;
      push (Ident (String.sub input !i (!j - !i)));
      i := !j
    end
    else parse_error "unexpected character %C" c
  done;
  push Eof;
  List.rev !tokens

(* A tiny stream over the token list. *)
type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> Eof | t :: _ -> t
let next s =
  match s.toks with
  | [] -> Eof
  | t :: rest ->
    s.toks <- rest;
    t

let expect s tok =
  let t = next s in
  if t <> tok then parse_error "expected %a but found %a" pp_token tok pp_token t

let ident s =
  match next s with
  | Ident id -> id
  | t -> parse_error "expected an identifier but found %a" pp_token t

let is_variable_name id =
  String.length id > 0
  && (id.[0] = '?' || (id.[0] >= 'A' && id.[0] <= 'Z'))

let term_of_ident id =
  if is_variable_name id then
    Term.Var (if id.[0] = '?' then String.sub id 1 (String.length id - 1) else id)
  else if String.length id > 2 && id.[0] = '_' && id.[1] = 'n' then
    match int_of_string_opt (String.sub id 2 (String.length id - 2)) with
    | Some k -> Term.Null k
    | None -> Term.Const id
  else Term.Const id

let parse_term s =
  match next s with
  | Ident id -> term_of_ident id
  | Quoted c -> Term.Const c
  | t -> parse_error "expected a term but found %a" pp_token t

let rec parse_term_list s acc =
  let t = parse_term s in
  match peek s with
  | Comma ->
    ignore (next s);
    parse_term_list s (t :: acc)
  | _ -> List.rev (t :: acc)

let parse_atom_named s rel =
  let ann =
    if peek s = Lbracket then begin
      ignore (next s);
      let ts = parse_term_list s [] in
      expect s Rbracket;
      ts
    end
    else []
  in
  expect s Lpar;
  let args = if peek s = Rpar then [] else parse_term_list s [] in
  expect s Rpar;
  Atom.make ~ann rel args

let parse_atom s = parse_atom_named s (ident s)

let parse_literal s =
  match peek s with
  | Ident "not" ->
    ignore (next s);
    Literal.Neg (parse_atom s)
  | _ -> Literal.Pos (parse_atom s)

let rec parse_literals s acc =
  let l = parse_literal s in
  match peek s with
  | Comma ->
    ignore (next s);
    parse_literals s (l :: acc)
  | _ -> List.rev (l :: acc)

let rec parse_var_list s acc =
  let id = ident s in
  let v =
    if is_variable_name id then
      if id.[0] = '?' then String.sub id 1 (String.length id - 1) else id
    else parse_error "existential binder expects a variable, found %S" id
  in
  match peek s with
  | Comma ->
    ignore (next s);
    parse_var_list s (v :: acc)
  | _ -> List.rev (v :: acc)

let rec parse_atoms s acc =
  let a = parse_atom s in
  match peek s with
  | Comma ->
    ignore (next s);
    parse_atoms s (a :: acc)
  | _ -> List.rev (a :: acc)

let parse_head s =
  match peek s with
  | Ident "exists" ->
    ignore (next s);
    let evars = parse_var_list s [] in
    expect s Dot;
    let atoms = parse_atoms s [] in
    (evars, atoms)
  | _ -> ([], parse_atoms s [])

let parse_rule_body s =
  match peek s with
  | Arrow | Dot -> []
  | Ident "true" ->
    ignore (next s);
    []
  | _ -> parse_literals s []

(* Two rule syntaxes: "body -> head." and Datalog-style "head :- body."
   (the latter with a plain atom head and no existentials). *)
let parse_rule_stream s =
  let label =
    if peek s = At then begin
      ignore (next s);
      Some (ident s)
    end
    else None
  in
  match peek s with
  | Arrow | Ident "true" ->
    let body = parse_rule_body s in
    expect s Arrow;
    let evars, head = parse_head s in
    expect s Dot;
    Rule.make ?label ~evars body head
  | _ ->
    (* Could be "atom :- body.", "atom." (a fact), or the start of a
       "body -> head." rule. Parse the first literal, then decide. *)
    let first = parse_literal s in
    (match (first, peek s) with
    | Literal.Pos head, Implied ->
      ignore (next s);
      let body = parse_rule_body s in
      (match peek s with Arrow -> parse_error "mixed ':-' and '->' syntax" | _ -> ());
      expect s Dot;
      Rule.make ?label body [ head ]
    | Literal.Pos head, Dot ->
      ignore (next s);
      (* a bare fact: "r(c)." *)
      Rule.make ?label [] [ head ]
    | _ ->
      let rest =
        match peek s with
        | Comma ->
          ignore (next s);
          parse_literals s []
        | _ -> []
      in
      expect s Arrow;
      let evars, head = parse_head s in
      expect s Dot;
      Rule.make ?label ~evars (first :: rest) head)

let theory_of_string input : Theory.t =
  let s = { toks = tokenize input } in
  let rec go acc = if peek s = Eof then List.rev acc else go (parse_rule_stream s :: acc) in
  Theory.of_rules (go [])

let rule_of_string input =
  let s = { toks = tokenize input } in
  let r = parse_rule_stream s in
  expect s Eof;
  r

let atom_of_string input =
  let s = { toks = tokenize input } in
  let a = parse_atom s in
  (match peek s with Dot -> ignore (next s) | _ -> ());
  expect s Eof;
  a

let database_of_string input =
  let s = { toks = tokenize input } in
  let db = Database.create () in
  let rec go () =
    if peek s <> Eof then begin
      let a = parse_atom s in
      expect s Dot;
      if not (Atom.is_ground a) then parse_error "database atom %a is not ground" Atom.pp a;
      ignore (Database.add db a);
      go ()
    end
  in
  go ();
  db
