(** Sorted integer runs: the packed building block of the columnar
    fact indexes.

    A {e run} is an [int array] of packed (value, row) pairs, sorted
    ascending. Packing both halves into one native int keeps a run a
    single flat allocation the GC never scans, and makes every
    comparison one integer compare: the positional indexes of
    {!Database} store, per column, a short list of such runs (newest
    first, lengths increasing), and candidate selection binary-searches
    or gallops over them instead of probing hash buckets.

    Values and rows must fit in 31 bits each — term ids and row indexes
    are dense small integers, far below the bound. *)

val pack : int -> int -> int
(** [pack v r] packs value [v] and row [r] into one int, ordered first
    by value, then by row. Both must be in [\[0, 2^31)]. *)

val value : int -> int
(** The value half of a packed entry. *)

val row : int -> int
(** The row half of a packed entry. *)

val sort : int array -> unit
(** Sorts a run in place (ascending). *)

val merge : int array -> int array -> int array
(** [merge a b] merges two sorted runs into one sorted run. Duplicate
    entries are kept — the caller never produces them (a (value, row)
    pair is unique per relation), but merging is oblivious to them. *)

val lower : int array -> int -> int
(** [lower a key] is the first index whose entry is [>= key], or
    [Array.length a] when none is — a binary search. *)

val seg : int array -> int -> int * int
(** [seg a v] is the half-open index range [\[lo, hi)] of the entries
    whose value half equals [v]; empty ranges have [lo = hi]. *)

val count_value : int array -> int -> int
(** Number of entries with the given value half. *)

val gallop : int array -> int -> lo:int -> int
(** [gallop a key ~lo] is the first index [>= lo] whose entry is
    [>= key], found by doubling probes from [lo] then binary search —
    [O(log d)] in the distance [d] advanced, the leapfrog step. *)

val inter : int array -> int array -> int array
(** [inter a b] intersects two sorted duplicate-free int arrays (plain
    values, not packed pairs), galloping through the longer side from
    the shorter. Used to leapfrog distinct-value sets in the
    worst-case-optimal join. *)

val iter_distinct_values : int array list -> (int -> int -> unit) -> unit
(** [iter_distinct_values runs f] calls [f v row] once per distinct
    value half [v] occurring in any of the sorted [runs], in ascending
    value order, with [row] the smallest row half witnessing [v]. *)
