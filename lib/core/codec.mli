(** Binary codecs for terms, atoms, rules, theories and databases.

    The encoding is length-prefixed throughout: integers are unsigned
    LEB128 varints, strings are a varint length followed by the bytes,
    lists are a varint count followed by the elements, and every
    structured value starts with a tag byte. Encoders append to a
    {!Buffer.t}; decoders consume a {!source} cursor over an immutable
    string and raise {!Corrupt} — never an unchecked exception — on
    truncated or malformed input, so callers (snapshot loading above
    all) can reject damaged files with a clean error.

    Nothing here is process-specific: hash-cons ids never leak into the
    byte stream, so a value decodes identically in any process. *)

exception Corrupt of string

type source
(** A read cursor over an encoded string. *)

val source_of_string : string -> source

val pos : source -> int
(** Bytes consumed so far. *)

val at_end : source -> bool

val expect_end : source -> unit
(** @raise Corrupt when trailing bytes remain. *)

(** {1 Primitives} *)

val write_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. @raise Invalid_argument on a negative value. *)

val read_varint : source -> int

val write_string : Buffer.t -> string -> unit
val read_string : source -> string

val write_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val read_list : source -> (source -> 'a) -> 'a list

(** {1 Logical values} *)

val write_term : Buffer.t -> Term.t -> unit
val read_term : source -> Term.t

val write_atom : Buffer.t -> Atom.t -> unit
val read_atom : source -> Atom.t

val write_rule : Buffer.t -> Rule.t -> unit

val read_rule : source -> Rule.t
(** @raise Corrupt also when the decoded parts violate the rule
    invariants ({!Rule.Ill_formed}). *)

val write_theory : Buffer.t -> Theory.t -> unit
val read_theory : source -> Theory.t

val write_fact_block : Buffer.t -> Atom.t list -> unit
(** Appends the facts back to back, one {!write_atom} each, with no
    count prefix — the bulk-ingest [LOAD] wire form, whose fact count
    travels in the frame's header line instead. *)

val read_fact_block : source -> int -> Atom.t list
(** [read_fact_block src n] reads exactly [n] atoms in order.
    @raise Corrupt also when a decoded atom is not a ground fact. *)

val write_database : Buffer.t -> Database.t -> unit
(** Facts are written in {!Atom.compare} order, so equal databases
    encode to equal bytes regardless of insertion history. *)

val read_database : source -> Database.t
(** @raise Corrupt also on a non-ground or duplicate fact. *)

(** {1 Integrity} *)

val fnv1a : string -> int64
(** The 64-bit FNV-1a hash of a string — the snapshot files' checksum. *)

val write_int64 : Buffer.t -> int64 -> unit
val read_int64 : source -> int64
