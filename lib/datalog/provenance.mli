(** Why-provenance for Datalog evaluation: every derived fact remembers
    its first derivation (rule + instantiated premises), from which
    well-founded proof trees are reconstructed. *)

open Guarded_core

type justification = {
  j_rule : Rule.t;
  j_premises : Atom.t list;
}

type t = {
  result : Database.t;
  why : (Atom.t, justification) Hashtbl.t;
}

val eval : ?acdom:bool -> Theory.t -> Database.t -> t
(** Same fixpoint as {!Seminaive.eval}, with provenance. *)

type proof =
  | Given of Atom.t
  | Derived of Atom.t * Rule.t * proof list

val explain : t -> Atom.t -> proof option
(** [None] when the fact is not in the fixpoint. *)

val proof_fact : proof -> Atom.t
val proof_size : proof -> int
val proof_depth : proof -> int
val pp_proof : proof Fmt.t

val support : proof -> Atom.t list
(** The input facts the proof rests on. *)
