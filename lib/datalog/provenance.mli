(** Why-provenance for Datalog evaluation: every derived fact remembers
    its first derivation (rule + instantiated premises), from which
    well-founded proof trees are reconstructed. *)

open Guarded_core

type justification = {
  j_rule : Rule.t;
  j_premises : Atom.t list;
}

type t = {
  result : Database.t;
  why : (Atom.t, justification) Hashtbl.t;
}

val eval : ?acdom:bool -> Theory.t -> Database.t -> t
(** Same fixpoint as {!Seminaive.eval}, with provenance. *)

type proof =
  | Given of Atom.t
  | Derived of Atom.t * Rule.t * proof list

val explain : t -> Atom.t -> proof option
(** [None] when the fact is not in the fixpoint. *)

val proof_fact : proof -> Atom.t
val proof_size : proof -> int
val proof_depth : proof -> int
val pp_proof : proof Fmt.t

val support : proof -> Atom.t list
(** The input facts the proof rests on. *)

val one_step_supports : Theory.t -> Database.t -> Atom.t -> (Rule.t * Atom.t list) list
(** [one_step_supports sigma db fact]: every (rule, instantiated
    positive body) pair deriving [fact] in a single step from [db] —
    some head atom matches [fact], the body embeds into [db], the
    negative literals are absent. Deduplicated per rule and premise
    instance; no fixpoint is computed, [db] is taken as-is. *)

val derivable_one_step : Theory.t -> Database.t -> Atom.t -> bool
(** Early-exit membership form of {!one_step_supports} — the
    rederivation test of DRed maintenance. *)
