(** The predicate dependency graph of a program: edges from body
    relations to head relations, Tarjan SCCs in dependencies-first
    order, recursion and relevance queries. *)

open Guarded_core

module Rel_map : Map.S with type key = Atom.rel_key
module Rel_set = Theory.Rel_set

type t

val of_theory : Theory.t -> t

val successors : t -> Atom.rel_key -> Rel_set.t
(** Head relations with a body occurrence of the key. *)

val predecessors : t -> Atom.rel_key -> Rel_set.t
(** Body relations of the rules deriving the key. *)

val sccs : t -> Atom.rel_key list list
(** Strongly connected components, dependencies first: every component
    only depends on earlier ones. *)

val recursive_relations : t -> Rel_set.t

val is_recursive : Theory.t -> bool
(** Does the program derive any recursive relation? Decides the
    per-stratum maintenance strategy (counting vs delete/rederive). *)

val rule_components : Theory.t -> Theory.t list
(** Partition a program's rules into evaluation components,
    dependencies first: the SCC condensation of the dependency graph
    with each rule's head relations identified (a multi-head rule
    derives its heads together, so its heads share a component). Every
    body relation of a component is derived in the same or an earlier
    component; concatenating the components gives back the program.
    Refines a (negation) stratum so recursion-sensitive maintenance
    pays only for the genuinely recursive components. *)

val reachable_from : t -> Rel_set.t -> Rel_set.t
(** Relations on which the targets transitively depend (inclusive) —
    the query-relevant part of a program. *)
