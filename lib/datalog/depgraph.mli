(** The predicate dependency graph of a program: edges from body
    relations to head relations, Tarjan SCCs in dependencies-first
    order, recursion and relevance queries. *)

open Guarded_core

module Rel_map : Map.S with type key = Atom.rel_key
module Rel_set = Theory.Rel_set

type t

val of_theory : Theory.t -> t

val successors : t -> Atom.rel_key -> Rel_set.t
(** Head relations with a body occurrence of the key. *)

val predecessors : t -> Atom.rel_key -> Rel_set.t
(** Body relations of the rules deriving the key. *)

val sccs : t -> Atom.rel_key list list
(** Strongly connected components, dependencies first: every component
    only depends on earlier ones. *)

val recursive_relations : t -> Rel_set.t

val reachable_from : t -> Rel_set.t -> Rel_set.t
(** Relations on which the targets transitively depend (inclusive) —
    the query-relevant part of a program. *)
