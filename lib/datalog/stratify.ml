(** Stratification of theories with negation (Definition 22).

    A theory is stratified when it can be partitioned into strata
    Σ1, ..., Σn such that a relation is never (re)defined in a stratum
    after being read positively, and never defined in or after a stratum
    reading it negatively. Strata are computed by the usual fixpoint on
    relation levels: for every rule H ← ..B.., level(H) ≥ level(B) for
    positive B and level(H) > level(B) for negative B. The theory is
    unstratifiable exactly when the fixpoint diverges (a cycle through
    negation). *)

open Guarded_core

exception Unstratifiable of string

(* Levels are per relation key. *)
module Rel_map = Map.Make (struct
  type t = Atom.rel_key

  let compare = compare
end)

let relation_levels (sigma : Theory.t) =
  let rules = Theory.rules sigma in
  let nrels = Theory.Rel_set.cardinal (Theory.relations sigma) in
  let level = ref Rel_map.empty in
  let get key = match Rel_map.find_opt key !level with Some l -> l | None -> 0 in
  let changed = ref true in
  let iterations = ref 0 in
  while !changed do
    changed := false;
    incr iterations;
    if !iterations > (nrels * nrels) + 2 then
      raise
        (Unstratifiable "negative cycle through relation definitions: theory is unstratifiable");
    List.iter
      (fun r ->
        let body_level =
          List.fold_left
            (fun acc lit ->
              let key = Atom.rel_key (Literal.atom lit) in
              let required =
                match lit with Literal.Pos _ -> get key | Literal.Neg _ -> get key + 1
              in
              max acc required)
            0 (Rule.body r)
        in
        (* All head relations of a rule are derived together, so they
           must live in the same stratum: raise them to a common level. *)
        let target =
          List.fold_left (fun acc h -> max acc (get (Atom.rel_key h))) body_level (Rule.head r)
        in
        if target > nrels then
          raise
            (Unstratifiable
               "negative cycle through relation definitions: theory is unstratifiable");
        List.iter
          (fun h ->
            let key = Atom.rel_key h in
            if get key < target then begin
              level := Rel_map.add key target !level;
              changed := true
            end)
          (Rule.head r))
      rules
  done;
  !level

(* Split the theory into strata Σ1; ...; Σn in evaluation order. A rule
   belongs to the stratum of (the maximum level of) its head relations. *)
let strata (sigma : Theory.t) : Theory.t list =
  let levels = relation_levels sigma in
  let level_of key = match Rel_map.find_opt key levels with Some l -> l | None -> 0 in
  let rule_level r =
    List.fold_left (fun acc h -> max acc (level_of (Atom.rel_key h))) 0 (Rule.head r)
  in
  let max_level = List.fold_left (fun acc r -> max acc (rule_level r)) 0 (Theory.rules sigma) in
  List.init (max_level + 1) (fun l ->
      Theory.of_rules (List.filter (fun r -> rule_level r = l) (Theory.rules sigma)))
  |> List.filter (fun s -> Theory.rules s <> [])

let is_stratified sigma =
  match relation_levels sigma with _ -> true | exception Unstratifiable _ -> false

let is_semipositive (sigma : Theory.t) =
  (* Semipositive: negation only on relations never derived by any rule. *)
  let heads = Theory.head_relations sigma in
  List.for_all
    (fun r ->
      List.for_all
        (function
          | Literal.Pos _ -> true
          | Literal.Neg a -> not (Theory.Rel_set.mem (Atom.rel_key a) heads))
        (Rule.body r))
    (Theory.rules sigma)
