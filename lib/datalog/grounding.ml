(** Partial grounding pg(Σ, D) (Section 7, step 2).

    Every safe variable of a rule — a universal variable with at least
    one body occurrence in a non-affected position — is instantiated in
    all possible ways with terms of the database's active domain. For a
    weakly guarded theory the result is guarded: the remaining variables
    of every rule are unsafe and hence covered by the weak guard. The
    blow-up is exponential in the number of safe variables per rule,
    which matches the paper's complexity analysis; a budget guards
    against accidental explosions. *)

open Guarded_core

exception Budget_exceeded of string

(* Enumerate all functions from [vars] to [terms]; calls [k] once per
   assignment. *)
let rec enumerate vars terms subst k =
  match vars with
  | [] -> k subst
  | v :: rest -> List.iter (fun t -> enumerate rest terms (Subst.add v t subst) k) terms

let partial_ground ?(max_rules = 200_000) (sigma : Theory.t) (db : Database.t) : Theory.t =
  let ap = Classify.affected_positions sigma in
  (* Constants of the theory's fact rules live in the chase root next to
     the database constants, so they take part in the grounding too. *)
  let domain =
    Term.Set.elements
      (Names.Sset.fold
         (fun c acc -> Term.Set.add (Term.Const c) acc)
         (Theory.constants sigma)
         (Database.active_domain db))
  in
  let out = ref [] in
  let count = ref 0 in
  List.iter
    (fun r ->
      let unsafe = Classify.unsafe_vars ~ap r in
      let safe = Names.Sset.elements (Names.Sset.diff (Rule.uvars r) unsafe) in
      let n = List.length safe and d = List.length domain in
      let combos = if n = 0 then 1.0 else Float.pow (float_of_int d) (float_of_int n) in
      if combos > float_of_int max_rules then
        raise
          (Budget_exceeded
             (Fmt.str "pg: %d^%d groundings of rule %a exceed the budget" d n Rule.pp r));
      if safe = [] || domain = [] then out := r :: !out
      else
        enumerate safe domain Subst.empty (fun subst ->
            incr count;
            if !count > max_rules then raise (Budget_exceeded "pg: too many ground rules");
            out := Rule.apply subst r :: !out))
    (Theory.rules sigma);
  Theory.of_rules (List.rev !out)
