(** The predicate dependency graph of a Datalog program: edges from body
    relations to head relations, strongly connected components (Tarjan),
    and recursion/reachability queries. Used by the magic-set transform
    and available for program analysis. *)

open Guarded_core

module Rel_map = Map.Make (struct
  type t = Atom.rel_key

  let compare = compare
end)

module Rel_set = Theory.Rel_set

type t = {
  nodes : Atom.rel_key list;
  succs : Rel_set.t Rel_map.t;  (** head relations depending on the key *)
  preds : Rel_set.t Rel_map.t;  (** body relations the key depends on *)
}

let find_set key m = match Rel_map.find_opt key m with Some s -> s | None -> Rel_set.empty

let of_theory (sigma : Theory.t) : t =
  let add_edge src dst (succs, preds) =
    ( Rel_map.add src (Rel_set.add dst (find_set src succs)) succs,
      Rel_map.add dst (Rel_set.add src (find_set dst preds)) preds )
  in
  let succs, preds =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc h ->
            List.fold_left
              (fun acc lit -> add_edge (Atom.rel_key (Literal.atom lit)) (Atom.rel_key h) acc)
              acc (Rule.body r))
          acc (Rule.head r))
      (Rel_map.empty, Rel_map.empty)
      (Theory.rules sigma)
  in
  { nodes = Rel_set.elements (Theory.relations sigma); succs; preds }

let successors g key = find_set key g.succs
let predecessors g key = find_set key g.preds

(* Tarjan's strongly connected components, in reverse topological order
   (every component only depends on earlier ones). *)
let sccs (g : t) : Atom.rel_key list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    Rel_set.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if compare w v = 0 then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) g.nodes;
  (* Tarjan emits sink components first; the prepend-accumulated list is
     therefore already in dependencies-first order. *)
  !components

(* A relation is recursive when its component has more than one member
   or a self-loop. *)
let recursive_relations (g : t) : Rel_set.t =
  List.fold_left
    (fun acc component ->
      match component with
      | [ single ] ->
        if Rel_set.mem single (successors g single) then Rel_set.add single acc else acc
      | many -> List.fold_left (fun acc k -> Rel_set.add k acc) acc many)
    Rel_set.empty (sccs g)

(* Does the program derive any recursive relation? Decides the
   maintenance strategy per stratum: counting suffices for nonrecursive
   strata, recursive ones need delete/rederive. *)
let is_recursive (sigma : Theory.t) : bool =
  let g = of_theory sigma in
  let rec_rels = recursive_relations g in
  List.exists
    (fun r ->
      List.exists (fun h -> Rel_set.mem (Atom.rel_key h) rec_rels) (Rule.head r))
    (Theory.rules sigma)

(* The partition used to refine a stratum for incremental maintenance:
   SCCs of the dependency graph with each rule's head relations tied
   together (a multi-head rule derives its heads in one instance, so a
   rule must never straddle two components). The tie edges only merge
   components of the plain graph, so the condensation stays acyclic and
   the dependencies-first order of [sccs] carries over: every body
   relation of a component is derived in the same or an earlier one. *)
let rule_components (sigma : Theory.t) : Theory.t list =
  let g = of_theory sigma in
  let succs =
    List.fold_left
      (fun succs r ->
        match List.sort_uniq compare (List.map Atom.rel_key (Rule.head r)) with
        | [] | [ _ ] -> succs
        | heads ->
          List.fold_left
            (fun succs h ->
              List.fold_left
                (fun succs h' ->
                  if h = h' then succs
                  else Rel_map.add h (Rel_set.add h' (find_set h succs)) succs)
                succs heads)
            succs heads)
      g.succs (Theory.rules sigma)
  in
  let comps = sccs { g with succs } in
  let comp_of = Hashtbl.create 16 in
  List.iteri (fun i comp -> List.iter (fun k -> Hashtbl.replace comp_of k i) comp) comps;
  let buckets = Array.make (max 1 (List.length comps)) [] in
  List.iter
    (fun r ->
      match Rule.head r with
      | [] -> ()
      | h :: _ ->
        let i = Hashtbl.find comp_of (Atom.rel_key h) in
        buckets.(i) <- r :: buckets.(i))
    (Theory.rules sigma);
  Array.to_list buckets
  |> List.filter_map (function [] -> None | rs -> Some (Theory.of_rules (List.rev rs)))

(* Relations on which [targets] transitively depend (targets included). *)
let reachable_from (g : t) (targets : Rel_set.t) : Rel_set.t =
  let rec go frontier seen =
    if Rel_set.is_empty frontier then seen
    else begin
      let next =
        Rel_set.fold
          (fun key acc -> Rel_set.union acc (Rel_set.diff (predecessors g key) seen))
          frontier Rel_set.empty
      in
      go next (Rel_set.union seen next)
    end
  in
  go targets targets
