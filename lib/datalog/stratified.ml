(** Iterative chase of stratified theories (Definition 23).

    The strata are evaluated in order; within stratum i, negative
    literals are interpreted against the result S_{i-1} of the previous
    strata, i.e. [not A(~t)] holds iff the tuple ranges over the terms of
    S_{i-1} and [A(~t)] is absent — membership of the complement atom
    Ā(~t) in S'_{i-1} in the paper's notation. Pure-Datalog strata run
    on the semi-naive engine; strata with existential rules run on the
    chase engine with snapshot negation. *)

open Guarded_core

type result = {
  db : Database.t;
  outcome : Guarded_chase.Engine.outcome;
  strata_count : int;
}

let chase ?(limits = Guarded_chase.Engine.default_limits) ?pool (sigma : Theory.t)
    (db0 : Database.t) =
  let strata = Stratify.strata sigma in
  let db = Database.copy db0 in
  if Seminaive.mentions_acdom sigma then Database.materialize_acdom db;
  let outcome = ref Guarded_chase.Engine.Saturated in
  let current = ref db in
  List.iter
    (fun stratum ->
      let snapshot = !current in
      if Theory.is_datalog stratum then
        (* Datalog strata terminate; negated relations are static within
           the stratum, so evaluating absence against the evolving
           database coincides with the snapshot semantics. *)
        current := Seminaive.eval ~acdom:false ?pool stratum snapshot
      else begin
        let res =
          Guarded_chase.Engine.run ~limits
            ~negation:(Guarded_chase.Engine.Snapshot snapshot) ?pool stratum snapshot
        in
        (match res.outcome with
        | Guarded_chase.Engine.Bounded -> outcome := Guarded_chase.Engine.Bounded
        | Guarded_chase.Engine.Saturated -> ());
        current := res.db
      end)
    strata;
  { db = !current; outcome = !outcome; strata_count = List.length strata }

let entails ?limits ?pool sigma db atom =
  let res = chase ?limits ?pool sigma db in
  if Database.mem res.db atom then Guarded_chase.Engine.Proved
  else
    match res.outcome with
    | Guarded_chase.Engine.Saturated -> Guarded_chase.Engine.Disproved
    | Guarded_chase.Engine.Bounded -> Guarded_chase.Engine.Unknown

let answers ?limits ?pool sigma db ~query =
  let res = chase ?limits ?pool sigma db in
  (Database.constant_tuples res.db query, res.outcome)
