(** Stratification of theories with negation (Definition 22). *)

open Guarded_core

exception Unstratifiable of string

module Rel_map : Map.S with type key = Atom.rel_key

val relation_levels : Theory.t -> int Rel_map.t
(** The least stratum level per relation: level(head) ≥ level(positive
    body relation), level(head) > level(negated body relation).
    @raise Unstratifiable on a negative cycle. *)

val strata : Theory.t -> Theory.t list
(** The partition Σ1; ...; Σn in evaluation order.
    @raise Unstratifiable on a negative cycle. *)

val is_stratified : Theory.t -> bool

val is_semipositive : Theory.t -> bool
(** Negation only on relations never derived by any rule. *)
