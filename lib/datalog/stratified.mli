(** Iterative chase of stratified theories (Definition 23).

    Strata are evaluated in order; within stratum i, negative literals
    are interpreted against the previous strata's result S_{i-1}: the
    tuple must range over the terms of S_{i-1} and be absent — exactly
    membership of the complement atom Ā(~t) in S'_{i-1}. *)

open Guarded_core

type result = {
  db : Database.t;
  outcome : Guarded_chase.Engine.outcome;
  strata_count : int;
}

val chase :
  ?limits:Guarded_chase.Engine.limits ->
  ?pool:Guarded_par.Pool.t ->
  Theory.t ->
  Database.t ->
  result
(** [?pool] is forwarded to the per-stratum evaluations
    ({!Seminaive.eval} for Datalog strata, {!Guarded_chase.Engine.run}
    with snapshot negation otherwise); the default [None] keeps the
    sequential schedules unchanged. *)

val entails :
  ?limits:Guarded_chase.Engine.limits ->
  ?pool:Guarded_par.Pool.t ->
  Theory.t ->
  Database.t ->
  Atom.t ->
  Guarded_chase.Engine.verdict

val answers :
  ?limits:Guarded_chase.Engine.limits ->
  ?pool:Guarded_par.Pool.t ->
  Theory.t ->
  Database.t ->
  query:string ->
  Term.t list list * Guarded_chase.Engine.outcome
