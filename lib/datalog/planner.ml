(** Per-rule join planning: binary joins for acyclic bodies,
    worst-case-optimal for cyclic ones.

    The body of a rule induces a hypergraph whose vertices are the
    body's variables and whose edges are the variable sets of its
    atoms. When that hypergraph is α-acyclic, estimator-ordered binary
    joins ({!Guarded_core.Homomorphism.iter_pos}) match the best known
    bounds; when it is cyclic — triangles and denser shapes, which the
    paper's [rew(Σ)] rewritings produce — any binary plan can build
    intermediate results asymptotically larger than the output, and the
    generic worst-case-optimal join ({!Wcoj.iter_pos}) is used instead.
    Cyclicity is decided with the classical GYO reduction; the variable
    elimination order for the WCOJ path is a greedy max-degree order
    that keeps consecutive variables connected, so early bindings prune
    later probes. *)

open Guarded_core
module Sset = Names.Sset

type join_mode = [ `Auto | `Binary | `Wcoj ]

type plan = Binary | Wcoj of string list

(* GYO reduction: repeatedly (a) drop variables occurring in exactly
   one edge, (b) drop edges contained in another edge. The hypergraph
   is α-acyclic iff the reduction reaches the empty edge set. *)
let is_cyclic atoms =
  let edges = ref (List.filter_map
      (fun a ->
        let vs = Atom.var_set a in
        if Sset.is_empty vs then None else Some vs)
      atoms)
  in
  let changed = ref true in
  while !changed && !edges <> [] do
    changed := false;
    (* (a) variables local to a single edge constrain nothing else. *)
    let occ = Hashtbl.create 16 in
    List.iter
      (fun e ->
        Sset.iter
          (fun v -> Hashtbl.replace occ v (1 + Option.value ~default:0 (Hashtbl.find_opt occ v)))
          e)
      !edges;
    let es =
      List.filter_map
        (fun e ->
          let e' = Sset.filter (fun v -> Hashtbl.find occ v > 1) e in
          if Sset.cardinal e' < Sset.cardinal e then changed := true;
          if Sset.is_empty e' then begin
            changed := true;
            None
          end
          else Some e')
        !edges
    in
    (* (b) an edge contained in another is an ear. Equal edges keep one
       representative: position breaks the tie. *)
    let arr = Array.of_list es in
    let dead = Array.make (Array.length arr) false in
    Array.iteri
      (fun i e ->
        if not dead.(i) then
          Array.iteri
            (fun j e' ->
              if i <> j && (not dead.(i)) && not dead.(j) then
                if Sset.subset e e' && (Sset.cardinal e < Sset.cardinal e' || j < i) then begin
                  dead.(i) <- true;
                  changed := true
                end)
            arr)
      arr;
    let es = ref [] in
    Array.iteri (fun i e -> if not dead.(i) then es := e :: !es) arr;
    edges := List.rev !es
  done;
  !edges <> []

(* Greedy connected max-degree elimination order over every body
   variable: start at the variable shared by the most atoms, then
   repeatedly take the highest-degree variable adjacent to the chosen
   prefix (falling back to a fresh component when none is), so each
   level of the WCOJ search is constrained by earlier bindings as soon
   as possible. Ties break alphabetically for determinism. *)
let var_order atoms =
  let edges = List.map Atom.var_set atoms in
  let degree = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Sset.iter
        (fun v -> Hashtbl.replace degree v (1 + Option.value ~default:0 (Hashtbl.find_opt degree v)))
        e)
    edges;
  let neighbors v =
    List.fold_left (fun acc e -> if Sset.mem v e then Sset.union acc e else acc) Sset.empty edges
  in
  let all = List.fold_left Sset.union Sset.empty edges in
  let better v = function
    | None -> true
    | Some best ->
      let dv = Hashtbl.find degree v and db = Hashtbl.find degree best in
      dv > db || (dv = db && String.compare v best < 0)
  in
  let rec go chosen frontier remaining acc =
    if Sset.is_empty remaining then List.rev acc
    else begin
      let pool = Sset.inter frontier remaining in
      let pool = if Sset.is_empty pool then remaining else pool in
      let next = ref None in
      Sset.iter (fun v -> if better v !next then next := Some v) pool;
      let v = Option.get !next in
      go (Sset.add v chosen)
        (Sset.union frontier (neighbors v))
        (Sset.remove v remaining) (v :: acc)
    end
  in
  go Sset.empty Sset.empty all []

(* Bodies of fewer than three atoms cannot be cyclic, so [`Auto] skips
   the GYO reduction for them outright. *)
let plan ?(join : join_mode = `Auto) atoms =
  match join with
  | `Binary -> Binary
  | `Wcoj -> Wcoj (var_order atoms)
  | `Auto ->
    if List.compare_length_with atoms 3 >= 0 && is_cyclic atoms then Wcoj (var_order atoms)
    else Binary
