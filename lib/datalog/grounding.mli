(** Partial grounding pg(Σ, D) (Section 7, step 2).

    Every safe variable — a universal variable with a body occurrence in
    a non-affected position — is instantiated in all possible ways with
    terms of the active domain (plus the theory's constants). For a
    weakly guarded theory the result is guarded. *)

open Guarded_core

exception Budget_exceeded of string

val partial_ground : ?max_rules:int -> Theory.t -> Database.t -> Theory.t
