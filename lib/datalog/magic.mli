(** The generalized magic-set transformation: goal-directed bottom-up
    Datalog evaluation with the standard left-to-right sideways
    information passing. *)

open Guarded_core

type adornment = string
(** One character per argument position: 'b' bound, 'f' free. *)

val adorn_name : string -> adornment -> string
val magic_name : string -> adornment -> string

type query = {
  q_rel : string;
  q_pattern : Term.t list;  (** constants bound, variables free *)
}

val query_of_atom : Atom.t -> query

exception Unsupported of string

val transform : Theory.t -> query -> Theory.t * string
(** [transform sigma query] is the magic program and the adorned query
    relation holding the answers. Purely extensional queries return an
    empty program.
    @raise Unsupported on negation, existential rules or multi-atom
    heads. *)

val answers :
  ?pool:Guarded_par.Pool.t -> Theory.t -> query -> Database.t -> Term.t list list
(** Evaluate the magic program with {!Seminaive.eval} (forwarding
    [?pool]) and read the tuples matching the pattern. Agrees with
    plain evaluation restricted to the query. *)

val relation_answers :
  ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> rel:string -> Term.t list list
(** All tuples of [rel] — every arity the program or the data mentions,
    all arguments free — unioned across the per-arity magic subgoals.
    The offline analogue of the serving path's [? REL] queries (which
    read {!Database.constant_tuples} off the materialization by name):
    arities the program never derives answer straight from the data. *)
