(** Semi-naive bottom-up evaluation of Datalog programs.

    Standard differential fixpoint: a first naive round evaluates every
    rule against the input database; afterwards a rule only re-fires on
    joins that use at least one fact derived in the previous round.
    A precomputed relation→rules index keeps each round linear in the
    rules actually affected: only rules whose body mentions a relation
    present in the current delta are revisited. Negation must be
    semipositive (negated relations are never derived), which is what
    the per-stratum evaluation of stratified theories needs; negative
    literals are then absence checks against facts that are static
    throughout the fixpoint. *)

open Guarded_core

let check_datalog sigma =
  List.iter
    (fun r ->
      if not (Rule.is_datalog r) then
        invalid_arg (Fmt.str "Seminaive.eval: existential rule %a" Rule.pp r))
    (Theory.rules sigma)

let mentions_acdom sigma =
  Theory.Rel_set.mem (Database.acdom_rel, 0, 1) (Theory.relations sigma)

(* A rule prepared for delta evaluation: for every positive body
   position, the anchor atom paired with the remaining body atoms and
   the join plan for that rest — rest lists and plans are computed once
   here, not per candidate fact. *)
type prepared = {
  p_rule : Rule.t;
  p_negs : Atom.t list;
  p_anchors : (Atom.t * Atom.t list * Planner.plan) list;
  p_body : Atom.t list;
  p_exec : Planner.plan;  (** plan for the full body (naive rounds) *)
}

let prepare ?join rule =
  let body = Rule.body_atoms rule in
  {
    p_rule = rule;
    p_negs = Rule.neg_body_atoms rule;
    p_anchors =
      List.mapi
        (fun i a ->
          let rest = List.filteri (fun j _ -> j <> i) body in
          (a, rest, Planner.plan ?join rest))
        body;
    p_body = body;
    p_exec = Planner.plan ?join body;
  }

(* Dispatch one body join on its plan: estimator-ordered binary joins
   or the worst-case-optimal executor. *)
let iter_join ?init plan atoms db k =
  match (plan : Planner.plan) with
  | Planner.Binary -> Homomorphism.iter_pos ?init atoms db k
  | Planner.Wcoj order -> Wcoj.iter_pos ?init ~order atoms db k

(* The delta rule index: relation id -> indexes of the prepared rules
   whose positive body mentions it. A round touches only the union of
   the entries for the delta's relations. *)
let rule_index (prepared : prepared array) =
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun idx p ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun a ->
          let rid = Atom.rel_id a in
          if not (Hashtbl.mem seen rid) then begin
            Hashtbl.add seen rid ();
            match Hashtbl.find_opt tbl rid with
            | Some l -> l := idx :: !l
            | None -> Hashtbl.add tbl rid (ref [ idx ])
          end)
        p.p_body)
    prepared;
  tbl

(* Rules affected by [delta], in rule order, each at most once. *)
let affected_rules index (prepared : prepared array) delta =
  let marked = Array.make (Array.length prepared) false in
  List.iter
    (fun rid ->
      match Hashtbl.find_opt index rid with
      | None -> ()
      | Some l -> List.iter (fun idx -> marked.(idx) <- true) !l)
    (Database.relation_ids delta);
  marked

let negs_ok db negs subst =
  List.for_all
    (fun a ->
      let a' = Subst.apply_atom subst a in
      if not (Atom.is_ground a') then
        invalid_arg (Fmt.str "Seminaive.eval: unsafe negative literal %a" Atom.pp a');
      not (Database.mem db a'))
    negs

(* Fire [p] for every homomorphism of its body that maps the selected
   body atom into [delta] and the others into [db]; add head instances to
   [db] and to [acc_delta]. *)
let fire_with_delta p db delta acc_delta =
  let fire subst =
    if negs_ok db p.p_negs subst then
      List.iter
        (fun h ->
          let fact = Subst.apply_atom subst h in
          if Database.add db fact then ignore (Database.add acc_delta fact))
        (Rule.head p.p_rule)
  in
  (* One pass per body-atom position anchored in the delta. *)
  List.iter
    (fun (anchor, rest, plan) ->
      if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
        Database.iter_candidates delta anchor (fun fact ->
            match Subst.match_atom Subst.empty anchor fact with
            | None -> ()
            | Some subst -> iter_join ~init:subst plan rest db fire))
    p.p_anchors

let fire_naive p db acc_delta =
  iter_join p.p_exec p.p_body db (fun subst ->
      if negs_ok db p.p_negs subst then
        List.iter
          (fun h ->
            let fact = Subst.apply_atom subst h in
            if Database.add db fact then ignore (Database.add acc_delta fact))
          (Rule.head p.p_rule))

(* ------------------------------------------------------------------ *)
(* Parallel rounds.

   The pool variant runs the same differential fixpoint with one
   change: within a round, firings match against an immutable snapshot
   of the database (the state at the round barrier) instead of seeing
   facts added earlier in the same round. Each work unit — a (rule,
   anchor) pair for delta rounds, a whole rule for the first naive
   round — collects its derived head instances into a private buffer;
   at the barrier the buffers are merged sequentially in canonical
   (rule, anchor, enumeration) order, deduplicating through
   [Database.add]. A fact derived mid-round re-enters through the next
   delta, so the fixpoint is the same set the sequential schedule
   reaches, and the round contents are a function of (db, delta) alone
   — independent of the domain count and of scheduling. *)

(* Derived head instances of [p] anchored in [delta] at [anchor], in
   enumeration order. Reads [db]/[delta] only; never mutates. *)
let collect_with_delta p db delta (anchor, rest, plan) =
  let acc = ref [] in
  Database.iter_candidates delta anchor (fun fact ->
      match Subst.match_atom Subst.empty anchor fact with
      | None -> ()
      | Some subst ->
        iter_join ~init:subst plan rest db (fun subst ->
            if negs_ok db p.p_negs subst then
              List.iter
                (fun h -> acc := Subst.apply_atom subst h :: !acc)
                (Rule.head p.p_rule)));
  List.rev !acc

let collect_naive p db =
  let acc = ref [] in
  iter_join p.p_exec p.p_body db (fun subst ->
      if negs_ok db p.p_negs subst then
        List.iter (fun h -> acc := Subst.apply_atom subst h :: !acc) (Rule.head p.p_rule));
  List.rev !acc

(* Merge the per-unit buffers into [db] in canonical order; new facts
   also land in [delta]. *)
let merge_buffers db delta buffers =
  Array.iter
    (fun facts ->
      List.iter (fun fact -> if Database.add db fact then ignore (Database.add delta fact)) facts)
    buffers

(* The dispatch width of a round is its rule-anchor unit count, but the
   work is proportional to the facts those units will scan: a round
   over a tiny delta is pure pool overhead however many units it has.
   The pool's element threshold is therefore re-read as a fact
   threshold here — rounds below it run their units sequentially
   ([~min_work:1] then forces the dispatch for the rounds above it). *)
let round_min_work pool work =
  if work >= Guarded_par.Pool.min_work pool then 1 else max_int

let eval_rounds_parallel pool prepared index db =
  let delta = Database.create () in
  let buffers =
    Guarded_par.Pool.parallel_map
      ~min_work:(round_min_work pool (Database.cardinal db))
      (Some pool)
      (fun p -> collect_naive p db)
      prepared
  in
  merge_buffers db delta buffers;
  let current = ref delta in
  while Database.cardinal !current > 0 do
    let delta = !current in
    let marked = affected_rules index prepared delta in
    let units = ref [] in
    Array.iteri
      (fun idx p ->
        if marked.(idx) then
          List.iter
            (fun ((anchor, _, _) as unit) ->
              if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
                units := (p, unit) :: !units)
            p.p_anchors)
      prepared;
    let units = Array.of_list (List.rev !units) in
    let buffers =
      Guarded_par.Pool.parallel_map
        ~min_work:(round_min_work pool (Database.cardinal delta))
        (Some pool)
        (fun (p, unit) -> collect_with_delta p db delta unit)
        units
    in
    let next = Database.create () in
    merge_buffers db next buffers;
    current := next
  done

(* Evaluate [sigma] over [db0] and return the fixpoint (input included).
   When the program mentions the built-in ACDom relation, it is
   materialized from the input's active domain first. Passing [?pool]
   distributes each round's firings over the pool's domains; the
   resulting fixpoint is identical (the fact set is unique), and the
   default [None] keeps the sequential schedule byte-for-byte. *)
let eval ?(acdom = true) ?pool ?join (sigma : Theory.t) (db0 : Database.t) =
  check_datalog sigma;
  if not (Stratify.is_semipositive sigma) then
    invalid_arg "Seminaive.eval: program is not semipositive; use Stratified.chase";
  let db = Database.copy db0 in
  if acdom && mentions_acdom sigma then Database.materialize_acdom db;
  let prepared = Array.of_list (List.map (prepare ?join) (Theory.rules sigma)) in
  let index = rule_index prepared in
  (match pool with
  | Some pool -> eval_rounds_parallel pool prepared index db
  | None ->
    let delta = Database.create () in
    Array.iter (fun p -> fire_naive p db delta) prepared;
    let current = ref delta in
    while Database.cardinal !current > 0 do
      let next = Database.create () in
      let marked = affected_rules index prepared !current in
      Array.iteri (fun idx p -> if marked.(idx) then fire_with_delta p db !current next) prepared;
      current := next
    done);
  db

let answers ?pool (sigma : Theory.t) (db : Database.t) ~query =
  Database.constant_tuples (eval ?pool sigma db) query

(* ------------------------------------------------------------------ *)
(* Reusable engine.

   Incremental maintenance (lib/incr) evaluates the same program over a
   long-lived database many times; the prepared rules and the delta rule
   index are input-independent, so they are built once into an [engine]
   and reused across update batches. The engine also exposes the
   building blocks counting and DRed maintenance need: in-place delta
   insertion and ground-instance enumeration (full and seeded). *)

type engine = {
  e_prepared : prepared array;
  e_index : (int, int list ref) Hashtbl.t;
  e_theory : Theory.t;
}

let engine ?join (sigma : Theory.t) =
  check_datalog sigma;
  if not (Stratify.is_semipositive sigma) then
    invalid_arg "Seminaive.engine: program is not semipositive";
  let prepared = Array.of_list (List.map (prepare ?join) (Theory.rules sigma)) in
  { e_prepared = prepared; e_index = rule_index prepared; e_theory = sigma }

let engine_theory e = e.e_theory

(* Insert [facts] into [db] in place and run delta rounds to the new
   fixpoint. Returns every fact that was actually added (effective
   seeds and derived facts), in addition order. The rounds are the same
   differential schedule as {!eval}; with [?pool] they use the
   snapshot-and-merge parallel rounds, so the resulting set is
   identical for every domain count. *)
let delta_insert ?pool (e : engine) (db : Database.t) (facts : Atom.t list) =
  let added = ref [] in
  let delta = Database.create () in
  List.iter
    (fun f ->
      if Database.add db f then begin
        ignore (Database.add delta f);
        added := f :: !added
      end)
    facts;
  let current = ref delta in
  while Database.cardinal !current > 0 do
    let delta = !current in
    let next = Database.create () in
    let marked = affected_rules e.e_index e.e_prepared delta in
    (match pool with
    | None ->
      Array.iteri
        (fun idx p -> if marked.(idx) then fire_with_delta p db delta next)
        e.e_prepared
    | Some pool ->
      let units = ref [] in
      Array.iteri
        (fun idx p ->
          if marked.(idx) then
            List.iter
              (fun ((anchor, _, _) as unit) ->
                if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
                  units := (p, unit) :: !units)
              p.p_anchors)
        e.e_prepared;
      let units = Array.of_list (List.rev !units) in
      let buffers =
        Guarded_par.Pool.parallel_map
          ~min_work:(round_min_work pool (Database.cardinal delta))
          (Some pool)
          (fun (p, unit) -> collect_with_delta p db delta unit)
          units
      in
      merge_buffers db next buffers);
    Database.iter (fun f -> added := f :: !added) next;
    current := next
  done;
  List.rev !added

(* ------------------------------------------------------------------ *)
(* Ground-instance enumeration.

   An {e instance} of a rule is a homomorphism of its positive body into
   the database whose negative literals are absent: the unit of support
   counting. The callback receives the rule's index in [Theory.rules],
   the instantiated positive body (premises, in rule order) and the
   instantiated head atoms. *)

(* Every instance of every rule over [db], each exactly once (the
   premise list determines the homomorphism for safe rules). *)
let iter_instances (e : engine) (db : Database.t) f =
  Array.iteri
    (fun idx p ->
      iter_join p.p_exec p.p_body db (fun subst ->
          if negs_ok db p.p_negs subst then
            let premises = List.map (Subst.apply_atom subst) p.p_body in
            let heads = List.map (Subst.apply_atom subst) (Rule.head p.p_rule) in
            f idx premises heads))
    e.e_prepared

(* Instances with at least one premise matched in [seed] (the anchor)
   and the remaining premises matched in [db]; negative literals are
   checked against [db]. An instance with k premises in [seed] is
   visited once per such premise position — callers deduplicate (e.g.
   keyed on rule index + premise atom ids). With [?pool] the anchored
   units are enumerated in parallel into buffers and the callback runs
   sequentially in canonical unit order. *)
let iter_seeded_instances ?pool (e : engine) ~(seed : Database.t) ~(db : Database.t) f =
  let marked = affected_rules e.e_index e.e_prepared seed in
  let units = ref [] in
  Array.iteri
    (fun idx p ->
      if marked.(idx) then
        List.iter
          (fun ((anchor, _, _) as unit) ->
            if Database.rel_cardinal seed (Atom.rel_key anchor) > 0 then
              units := (idx, p, unit) :: !units)
          p.p_anchors)
    e.e_prepared;
  let units = Array.of_list (List.rev !units) in
  let collect (idx, p, (anchor, rest, plan)) =
    let acc = ref [] in
    Database.iter_candidates seed anchor (fun fact ->
        match Subst.match_atom Subst.empty anchor fact with
        | None -> ()
        | Some subst ->
          iter_join ~init:subst plan rest db (fun subst ->
              if negs_ok db p.p_negs subst then
                let premises = List.map (Subst.apply_atom subst) p.p_body in
                let heads = List.map (Subst.apply_atom subst) (Rule.head p.p_rule) in
                acc := (idx, premises, heads) :: !acc));
    List.rev !acc
  in
  let buffers =
    match pool with
    | None -> Array.map collect units
    | Some pool ->
      Guarded_par.Pool.parallel_map
        ~min_work:(round_min_work pool (Database.cardinal seed))
        (Some pool) collect units
  in
  Array.iter (List.iter (fun (idx, premises, heads) -> f idx premises heads)) buffers
