(** Semi-naive bottom-up evaluation of Datalog programs.

    Standard differential fixpoint: a first naive round evaluates every
    rule against the input database; afterwards a rule only re-fires on
    joins that use at least one fact derived in the previous round.
    Negation must be semipositive (negated relations are never derived),
    which is what the per-stratum evaluation of stratified theories
    needs; negative literals are then absence checks against facts that
    are static throughout the fixpoint. *)

open Guarded_core

let check_datalog sigma =
  List.iter
    (fun r ->
      if not (Rule.is_datalog r) then
        invalid_arg (Fmt.str "Seminaive.eval: existential rule %a" Rule.pp r))
    (Theory.rules sigma)

let mentions_acdom sigma =
  Theory.Rel_set.mem (Database.acdom_rel, 0, 1) (Theory.relations sigma)

(* Fire [rule] for every homomorphism of its body that maps the selected
   body atom into [delta] and the others into [db]; add head instances to
   [db] and to [acc_delta]. *)
let fire_with_delta rule db delta acc_delta =
  let body = Rule.body_atoms rule in
  let negs = Rule.neg_body_atoms rule in
  let fire subst =
    let ok =
      List.for_all
        (fun a ->
          let a' = Subst.apply_atom subst a in
          if not (Atom.is_ground a') then
            invalid_arg (Fmt.str "Seminaive.eval: unsafe negative literal %a" Atom.pp a');
          not (Database.mem db a'))
        negs
    in
    if ok then
      List.iter
        (fun h ->
          let fact = Subst.apply_atom subst h in
          if Database.add db fact then ignore (Database.add acc_delta fact))
        (Rule.head rule)
  in
  (* One pass per body-atom position anchored in the delta. *)
  List.iteri
    (fun i anchor ->
      if Database.rel_cardinal delta (Atom.rel_key anchor) > 0 then
        List.iter
          (fun fact ->
            match Subst.match_atom Subst.empty anchor fact with
            | None -> ()
            | Some subst ->
              let rest = List.filteri (fun j _ -> j <> i) body in
              Homomorphism.iter_pos ~init:subst rest db fire)
          (Database.candidates delta anchor))
    body

let fire_naive rule db acc_delta =
  let negs = Rule.neg_body_atoms rule in
  Homomorphism.iter_pos (Rule.body_atoms rule) db (fun subst ->
      let ok =
        List.for_all
          (fun a ->
            let a' = Subst.apply_atom subst a in
            if not (Atom.is_ground a') then
              invalid_arg (Fmt.str "Seminaive.eval: unsafe negative literal %a" Atom.pp a');
            not (Database.mem db a'))
          negs
      in
      if ok then
        List.iter
          (fun h ->
            let fact = Subst.apply_atom subst h in
            if Database.add db fact then ignore (Database.add acc_delta fact))
          (Rule.head rule))

(* Evaluate [sigma] over [db0] and return the fixpoint (input included).
   When the program mentions the built-in ACDom relation, it is
   materialized from the input's active domain first. *)
let eval ?(acdom = true) (sigma : Theory.t) (db0 : Database.t) =
  check_datalog sigma;
  if not (Stratify.is_semipositive sigma) then
    invalid_arg "Seminaive.eval: program is not semipositive; use Stratified.chase";
  let db = Database.copy db0 in
  if acdom && mentions_acdom sigma then Database.materialize_acdom db;
  let rules = Theory.rules sigma in
  let delta = Database.create () in
  List.iter (fun r -> fire_naive r db delta) rules;
  let current = ref delta in
  while Database.cardinal !current > 0 do
    let next = Database.create () in
    List.iter (fun r -> fire_with_delta r db !current next) rules;
    current := next
  done;
  db

let answers (sigma : Theory.t) (db : Database.t) ~query =
  let result = eval sigma db in
  Database.fold
    (fun a acc ->
      if String.equal (Atom.rel a) query && List.for_all Term.is_const (Atom.terms a) then
        Atom.args a :: acc
      else acc)
    result []
  |> List.sort_uniq (List.compare Term.compare)
