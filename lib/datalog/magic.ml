(** The (generalized) magic-set transformation: goal-directed Datalog
    evaluation.

    Given a positive Datalog program and a query pattern (an atom whose
    constant arguments are bound and whose variables are free), the
    transform produces a program whose bottom-up evaluation only derives
    facts relevant to the query — the classic simulation of top-down
    evaluation with sideways information passing (SIP), here the
    standard left-to-right SIP.

    For each intensional relation p used with adornment a (a string of
    'b'/'f' per argument), the transformed program has:
    - an adorned copy [p^a] of every rule deriving p, guarded by the
      magic atom [magic_p^a(bound args)];
    - for every intensional body atom q^a' of such a rule, a magic rule
      deriving [magic_q^a'] from [magic_p^a] and the atoms to its left;
    - the seed fact [magic_q0^a0(constants of the query)].

    Extensional relations stay unadorned. Evaluation of the transformed
    program with {!Seminaive.eval} computes exactly the query-relevant
    part of the original fixpoint. *)

open Guarded_core

(* ------------------------------------------------------------------ *)
(* Adornments                                                          *)

type adornment = string  (** e.g. "bf" *)

let adorn_name rel (a : adornment) = rel ^ "__" ^ a
let magic_name rel (a : adornment) = "magic__" ^ rel ^ "__" ^ a

(* The adornment of an atom given the currently bound variables:
   constants and bound variables are 'b', the rest 'f'. *)
let adornment_of ~bound atom : adornment =
  String.concat ""
    (List.map
       (fun t ->
         match t with
         | Term.Const _ | Term.Null _ -> "b"
         | Term.Var v -> if Names.Sset.mem v bound then "b" else "f")
       (Atom.args atom))

let bound_args (a : adornment) args =
  List.filteri (fun i _ -> a.[i] = 'b') args

(* ------------------------------------------------------------------ *)
(* The transformation                                                  *)

type query = {
  q_rel : string;
  q_pattern : Term.t list;  (** constants bound, variables free *)
}

let query_of_atom atom = { q_rel = Atom.rel atom; q_pattern = Atom.args atom }

exception Unsupported of string

let check_supported (sigma : Theory.t) =
  List.iter
    (fun r ->
      if not (Rule.is_datalog r) then raise (Unsupported "magic sets: existential rule");
      if not (Rule.is_positive r) then raise (Unsupported "magic sets: negation");
      if List.length (Rule.head r) <> 1 then
        raise (Unsupported "magic sets: multi-atom head (normalize first)"))
    (Theory.rules sigma)

(* [transform sigma query] returns the magic program together with the
   name of the adorned query relation holding the answers. *)
let transform (sigma : Theory.t) (query : query) : Theory.t * string =
  check_supported sigma;
  let idb = Theory.head_relations sigma in
  let is_idb atom = Theory.Rel_set.mem (Atom.rel_key atom) idb in
  (* Arity-aware: a rule only derives the (rel, arity) pair of the
     adornment being processed. Name-only matching used to pair a
     query of one arity with the rules of a same-named relation of
     another, and the adornment indexing then walked off the shorter
     argument list. *)
  let rules_for rel arity =
    List.filter
      (fun r ->
        match Rule.head r with
        | [ h ] -> String.equal (Atom.rel h) rel && Atom.arity h = arity
        | _ -> false)
      (Theory.rules sigma)
  in
  let output = ref [] in
  let emit r = output := r :: !output in
  let done_adornments : (string * adornment, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec process rel (a : adornment) =
    if not (Hashtbl.mem done_adornments (rel, a)) then begin
      Hashtbl.replace done_adornments (rel, a) ();
      (* base-copy rule: an intensional relation may also hold input
         facts under its own (unadorned) name; nothing else derives the
         unadorned relation in the transformed program. *)
      let xs = List.init (String.length a) (fun i -> Term.Var (Printf.sprintf "mx%d" i)) in
      emit
        (Rule.make_pos
           [ Atom.make (magic_name rel a) (bound_args a xs); Atom.make rel xs ]
           [ Atom.make (adorn_name rel a) xs ]);
      List.iter (adorn_rule rel a) (rules_for rel (String.length a))
    end
  and adorn_rule rel (a : adornment) r =
    let head = List.hd (Rule.head r) in
    let head_args = Atom.args head in
    let head_bound =
      List.filteri (fun i _ -> a.[i] = 'b') head_args
      |> List.filter_map (function Term.Var v -> Some v | _ -> None)
    in
    let magic_head = Atom.make (magic_name rel a) (bound_args a head_args) in
    (* walk the body left to right, accumulating bound variables *)
    let bound = ref (Names.Sset.of_list head_bound) in
    let prefix = ref [ magic_head ] in
    let new_body =
      List.map
        (fun atom ->
          let adorned =
            if is_idb atom then begin
              let a' = adornment_of ~bound:!bound atom in
              process (Atom.rel atom) a';
              (* magic rule: magic_q^a'(bound args) <- prefix *)
              let bargs = bound_args a' (Atom.args atom) in
              emit
                (Rule.make_pos (List.rev !prefix)
                   [ Atom.make (magic_name (Atom.rel atom) a') bargs ]);
              Atom.make (adorn_name (Atom.rel atom) a') (Atom.args atom)
            end
            else atom
          in
          prefix := adorned :: !prefix;
          bound := Names.Sset.union !bound (Atom.var_set atom);
          adorned)
        (Rule.body_atoms r)
    in
    emit
      (Rule.make_pos (magic_head :: new_body) [ Atom.make (adorn_name rel a) head_args ])
  in
  let q_adornment : adornment =
    String.concat ""
      (List.map
         (function Term.Const _ | Term.Null _ -> "b" | Term.Var _ -> "f")
         query.q_pattern)
  in
  if not (Theory.Rel_set.mem (query.q_rel, 0, List.length query.q_pattern) idb) then
    (* Purely extensional query: nothing to transform. Membership is by
       full key (name, annotation, arity) — a query over [p/2] is
       extensional even when the program derives [p/3], exactly as the
       serving path reads same-named EDB facts directly. *)
    (Theory.of_rules [], query.q_rel)
  else begin
    process query.q_rel q_adornment;
    (* the seed: magic fact for the query's constants *)
    let seed_args =
      List.filter (function Term.Const _ | Term.Null _ -> true | Term.Var _ -> false)
        query.q_pattern
    in
    emit (Rule.make_pos [] [ Atom.make (magic_name query.q_rel q_adornment) seed_args ]);
    (Theory.of_rules (List.rev !output), adorn_name query.q_rel q_adornment)
  end

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

(* Answers to [query] over [db]: evaluate the magic program and read the
   tuples of the adorned query relation matching the pattern, folding
   straight into a sorted set via the positional indexes. *)
let answers ?pool (sigma : Theory.t) (query : query) (db : Database.t) : Term.t list list =
  let program, out_rel = transform sigma query in
  let result =
    if Theory.size program = 0 then db else Seminaive.eval ?pool program db
  in
  let pattern = Atom.make out_rel query.q_pattern in
  let module Tuples = Set.Make (struct
    type t = Term.t list

    let compare = List.compare Term.compare
  end) in
  let acc = ref Tuples.empty in
  Database.iter_candidates result pattern (fun fact ->
      match Subst.match_atom Subst.empty pattern fact with
      | Some _ -> acc := Tuples.add (Atom.args fact) !acc
      | None -> ());
  Tuples.elements !acc

(* [? REL] without a pattern, offline: one all-free subgoal per arity
   under which [rel] appears in the program or the data, answers
   unioned. Mirrors the serving path, which reads a relation's
   constant tuples by name across arities. *)
let relation_answers ?pool (sigma : Theory.t) (db : Database.t) ~rel : Term.t list list =
  let arities =
    Theory.Rel_set.fold
      (fun (n, ann, a) acc -> if String.equal n rel && ann = 0 then a :: acc else acc)
      (Theory.relations sigma) []
  in
  let arities =
    List.fold_left
      (fun acc (st : Database.rel_stats) ->
        let n, ann, a = st.Database.rs_rel in
        if String.equal n rel && ann = 0 && st.Database.rs_rows > 0 then a :: acc else acc)
      arities (Database.storage_stats db)
  in
  let module Tuples = Set.Make (struct
    type t = Term.t list

    let compare = List.compare Term.compare
  end) in
  List.sort_uniq Int.compare arities
  |> List.fold_left
       (fun acc arity ->
         let pattern = List.init arity (fun i -> Term.Var (Printf.sprintf "qx%d" i)) in
         List.fold_left
           (fun acc t -> Tuples.add t acc)
           acc
           (answers ?pool sigma { q_rel = rel; q_pattern = pattern } db))
       Tuples.empty
  |> Tuples.elements
