(** Generic worst-case-optimal join: variable-at-a-time enumeration
    with leapfrog intersection over the columnar store's sorted runs.
    See the implementation header for the probe strategies; the
    enumeration visits exactly the homomorphisms of the body, each
    once, like {!Guarded_core.Homomorphism.iter_pos}. *)

open Guarded_core

val iter_pos : ?init:Subst.t -> order:string list -> Atom.t list -> Database.t -> (Subst.t -> unit) -> unit
(** [iter_pos ~order atoms db k] calls [k] once per homomorphism of the
    positive body [atoms] into [db] extending [init], binding the
    body's variables in elimination order [order] (normally
    {!Planner.var_order}; variables already bound by [init] are
    skipped, variables outside [order] stay unbound as in the binary
    path). Read-only on [db]; safe under the parallel rounds'
    shared-snapshot contract. *)

val all : ?init:Subst.t -> order:string list -> Atom.t list -> Database.t -> Subst.t list
(** {!iter_pos} materialized, newest first. *)
