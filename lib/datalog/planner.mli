(** Per-rule join planning: binary joins for acyclic bodies,
    worst-case-optimal for cyclic ones (GYO reduction decides). *)

open Guarded_core

type join_mode = [ `Auto | `Binary | `Wcoj ]
(** [`Auto] picks per body; the forced modes exist for the equivalence
    tests and for benchmarking the two executors against each other. *)

type plan =
  | Binary  (** estimator-ordered binary joins ({!Homomorphism.iter_pos}) *)
  | Wcoj of string list
      (** generic worst-case-optimal join with the given variable
          elimination order (every body variable, most constrained
          first) *)

val is_cyclic : Atom.t list -> bool
(** Is the body hypergraph (vertices: variables, edges: the atoms'
    variable sets) α-cyclic? Decided by the GYO ear reduction. *)

val var_order : Atom.t list -> string list
(** Greedy connected max-degree elimination order over the body's
    variables; deterministic (alphabetical tie-break). *)

val plan : ?join:join_mode -> Atom.t list -> plan
(** The executor for one body: with [`Auto] (default), {!Wcoj} exactly
    when the body has at least three atoms and {!is_cyclic} holds,
    {!Binary} otherwise. *)
