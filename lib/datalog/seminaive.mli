(** Semi-naive bottom-up evaluation of Datalog programs.

    Standard differential fixpoint with a delta rule index: a round
    only re-fires the rules whose body mentions a relation present in
    the current delta. Negation must be semipositive (negated relations
    are never derived), which is what per-stratum evaluation of
    stratified theories needs. *)

open Guarded_core

val check_datalog : Theory.t -> unit
(** @raise Invalid_argument on a rule with existential variables. *)

val mentions_acdom : Theory.t -> bool

val eval :
  ?acdom:bool -> ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> Database.t
(** [eval sigma db] returns the fixpoint (input included). When the
    program mentions the built-in ACDom relation and [acdom] is true
    (default), ACDom is materialized from the input's active domain
    first. With [?pool], each round's firings are partitioned over the
    pool's domains against an immutable snapshot of the database, with
    a canonical-order merge at the round barrier: the resulting fact
    set is identical to the sequential run for every domain count.
    Without [?pool] (default) the sequential schedule is unchanged.
    @raise Invalid_argument on existential rules or non-semipositive
    negation. *)

val answers :
  ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> query:string -> Term.t list list
(** Sorted, deduplicated constant tuples of the [query] relation in the
    fixpoint (folded into a set directly — no intermediate fact list). *)
