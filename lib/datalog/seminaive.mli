(** Semi-naive bottom-up evaluation of Datalog programs.

    Standard differential fixpoint with a delta rule index: a round
    only re-fires the rules whose body mentions a relation present in
    the current delta. Negation must be semipositive (negated relations
    are never derived), which is what per-stratum evaluation of
    stratified theories needs. *)

open Guarded_core

val check_datalog : Theory.t -> unit
(** @raise Invalid_argument on a rule with existential variables. *)

val mentions_acdom : Theory.t -> bool

val eval :
  ?acdom:bool ->
  ?pool:Guarded_par.Pool.t ->
  ?join:Planner.join_mode ->
  Theory.t ->
  Database.t ->
  Database.t
(** [eval sigma db] returns the fixpoint (input included). When the
    program mentions the built-in ACDom relation and [acdom] is true
    (default), ACDom is materialized from the input's active domain
    first. With [?pool], each round's firings are partitioned over the
    pool's domains against an immutable snapshot of the database, with
    a canonical-order merge at the round barrier: the resulting fact
    set is identical to the sequential run for every domain count.
    Without [?pool] (default) the sequential schedule is unchanged.
    [?join] selects the per-rule join executor ([`Auto], the default,
    lets {!Planner.plan} pick worst-case-optimal joins for cyclic
    bodies and binary joins otherwise; the forced modes are for tests
    and benchmarks) — the fixpoint is the same set either way.
    @raise Invalid_argument on existential rules or non-semipositive
    negation. *)

val answers :
  ?pool:Guarded_par.Pool.t -> Theory.t -> Database.t -> query:string -> Term.t list list
(** Sorted, deduplicated constant tuples of the [query] relation in the
    fixpoint (folded into a set directly — no intermediate fact list). *)

(** {1 Reusable engine}

    Incremental maintenance evaluates the same program over a
    long-lived database many times. The prepared rules and the delta
    rule index are input-independent; an {!engine} builds them once. *)

type engine

val engine : ?join:Planner.join_mode -> Theory.t -> engine
(** @raise Invalid_argument on existential rules or non-semipositive
    negation. [?join] as in {!eval}. *)

val engine_theory : engine -> Theory.t

val delta_insert :
  ?pool:Guarded_par.Pool.t -> engine -> Database.t -> Atom.t list -> Atom.t list
(** [delta_insert e db facts] inserts [facts] into [db] {e in place} and
    runs semi-naive delta rounds to the new fixpoint. Returns every
    fact actually added — the effective seeds plus all newly derived
    facts, in addition order. ACDom is not materialized here; callers
    owning ACDom maintenance pass the relevant ACDom deltas in
    [facts]. *)

val iter_instances : engine -> Database.t -> (int -> Atom.t list -> Atom.t list -> unit) -> unit
(** [iter_instances e db f] enumerates every ground {e instance} of
    every rule over [db] — a homomorphism of the positive body with all
    negative literals absent — calling [f rule_idx premises heads] with
    the rule's index in [Theory.rules], the instantiated positive body
    (rule order) and the instantiated head atoms. Each instance is
    visited exactly once. The unit of support counting. *)

val iter_seeded_instances :
  ?pool:Guarded_par.Pool.t ->
  engine ->
  seed:Database.t ->
  db:Database.t ->
  (int -> Atom.t list -> Atom.t list -> unit) ->
  unit
(** Like {!iter_instances}, but restricted to instances with at least
    one premise matched in [seed]; the remaining premises and the
    negative literals are checked against [db]. An instance with [k]
    premises in [seed] is visited once per such premise position —
    callers deduplicate (e.g. on rule index + premise ids). With
    [?pool] the anchored units run in parallel into buffers and [f] is
    invoked sequentially in canonical unit order, so the visit sequence
    is independent of the domain count. *)
