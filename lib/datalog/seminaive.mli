(** Semi-naive bottom-up evaluation of Datalog programs.

    Standard differential fixpoint with a delta rule index: a round
    only re-fires the rules whose body mentions a relation present in
    the current delta. Negation must be semipositive (negated relations
    are never derived), which is what per-stratum evaluation of
    stratified theories needs. *)

open Guarded_core

val check_datalog : Theory.t -> unit
(** @raise Invalid_argument on a rule with existential variables. *)

val mentions_acdom : Theory.t -> bool

val eval : ?acdom:bool -> Theory.t -> Database.t -> Database.t
(** [eval sigma db] returns the fixpoint (input included). When the
    program mentions the built-in ACDom relation and [acdom] is true
    (default), ACDom is materialized from the input's active domain
    first.
    @raise Invalid_argument on existential rules or non-semipositive
    negation. *)

val answers : Theory.t -> Database.t -> query:string -> Term.t list list
(** Sorted, deduplicated constant tuples of the [query] relation in the
    fixpoint (folded into a set directly — no intermediate fact list). *)
