(** Why-provenance for Datalog evaluation: each derived fact remembers
    the rule and premises of its first derivation, from which a finite
    proof tree can be reconstructed. First derivations are recorded in
    evaluation order, so premises always precede their conclusions and
    the trees are well-founded.

    Useful for auditing the programs produced by the paper's
    translations: an answer of dat(Σ) can be unfolded down to the input
    facts through the auxiliary relations the translation invented. *)

open Guarded_core

type justification = {
  j_rule : Rule.t;
  j_premises : Atom.t list;  (** instantiated body atoms, in rule order *)
}

type t = {
  result : Database.t;
  why : (Atom.t, justification) Hashtbl.t;
}

(* Naive-with-delta evaluation recording first derivations. The engine
   mirrors {!Seminaive.eval} but keeps the (rule, premises) pair for
   every fact added. *)
let eval ?(acdom = true) (sigma : Theory.t) (db0 : Database.t) : t =
  Seminaive.check_datalog sigma;
  if not (Stratify.is_semipositive sigma) then
    invalid_arg "Provenance.eval: program is not semipositive";
  let db = Database.copy db0 in
  if acdom && Seminaive.mentions_acdom sigma then Database.materialize_acdom db;
  let why : (Atom.t, justification) Hashtbl.t = Hashtbl.create 256 in
  let fire rule subst acc_delta =
    let negs_ok =
      List.for_all
        (fun a -> not (Database.mem db (Subst.apply_atom subst a)))
        (Rule.neg_body_atoms rule)
    in
    if negs_ok then begin
      let premises = List.map (Subst.apply_atom subst) (Rule.body_atoms rule) in
      List.iter
        (fun h ->
          let fact = Subst.apply_atom subst h in
          if Database.add db fact then begin
            Hashtbl.replace why fact { j_rule = rule; j_premises = premises };
            ignore (Database.add acc_delta fact)
          end)
        (Rule.head rule)
    end
  in
  let rules = Theory.rules sigma in
  (* anchor/rest pairs per rule, hoisted out of the delta loops *)
  let anchored =
    List.map
      (fun r ->
        let body = Rule.body_atoms r in
        (r, body, List.mapi (fun i a -> (a, List.filteri (fun j _ -> j <> i) body)) body))
      rules
  in
  let delta = Database.create () in
  List.iter (fun (r, body, _) -> Homomorphism.iter_pos body db (fun s -> fire r s delta)) anchored;
  let current = ref delta in
  while Database.cardinal !current > 0 do
    let next = Database.create () in
    List.iter
      (fun (r, _, anchors) ->
        List.iter
          (fun (anchor, rest) ->
            if Database.rel_cardinal !current (Atom.rel_key anchor) > 0 then
              Database.iter_candidates !current anchor (fun fact ->
                  match Subst.match_atom Subst.empty anchor fact with
                  | None -> ()
                  | Some subst ->
                    Homomorphism.iter_pos ~init:subst rest db (fun s -> fire r s next)))
          anchors)
      anchored;
    current := next
  done;
  { result = db; why }

(* ------------------------------------------------------------------ *)
(* Proof trees                                                         *)

type proof =
  | Given of Atom.t  (** an input (or ACDom) fact *)
  | Derived of Atom.t * Rule.t * proof list

let rec explain (t : t) (fact : Atom.t) : proof option =
  if not (Database.mem t.result fact) then None
  else
    match Hashtbl.find_opt t.why fact with
    | None -> Some (Given fact)
    | Some j ->
      let subproofs = List.filter_map (explain t) j.j_premises in
      if List.length subproofs = List.length j.j_premises then
        Some (Derived (fact, j.j_rule, subproofs))
      else None

let proof_fact = function Given a -> a | Derived (a, _, _) -> a

let rec proof_size = function
  | Given _ -> 1
  | Derived (_, _, children) -> 1 + List.fold_left (fun acc c -> acc + proof_size c) 0 children

let rec proof_depth = function
  | Given _ -> 0
  | Derived (_, _, children) ->
    1 + List.fold_left (fun acc c -> max acc (proof_depth c)) 0 children

let pp_proof ppf proof =
  let rec go indent proof =
    match proof with
    | Given a -> Fmt.pf ppf "%s%a  [input]@." (String.make indent ' ') Atom.pp a
    | Derived (a, rule, children) ->
      Fmt.pf ppf "%s%a  [%s]@." (String.make indent ' ') Atom.pp a
        (match Rule.label rule with Some l -> l | None -> "rule");
      List.iter (go (indent + 2)) children
  in
  go 0 proof

(* Leaves of the proof: the input facts the answer depends on. *)
let support proof =
  let rec go acc = function
    | Given a -> Atom.Set.add a acc
    | Derived (_, _, children) -> List.fold_left go acc children
  in
  Atom.Set.elements (go Atom.Set.empty proof)

(* ------------------------------------------------------------------ *)
(* One-step support sets.

   DRed's rederivation step asks: is this overdeleted fact still
   derivable in one step from the facts that survived? These helpers
   answer it by matching each rule's head atoms against the fact and
   extending the binding over the rule body in [db]. Unlike {!explain},
   no fixpoint is computed — [db] is taken as-is. *)

(* Visit every (rule, instantiated positive body) pair deriving [fact]
   in one step from [db]: some head atom matches [fact], the positive
   body embeds into [db] under that binding, and the negative literals
   are absent. Raises [exn] from [yield] for early exit. *)
let iter_one_step (sigma : Theory.t) (db : Database.t) (fact : Atom.t) yield =
  List.iteri
    (fun rule_idx rule ->
      let body = Rule.body_atoms rule in
      let negs = Rule.neg_body_atoms rule in
      List.iter
        (fun h ->
          match Subst.match_atom Subst.empty h fact with
          | None -> ()
          | Some init ->
            Homomorphism.iter_pos ~init body db (fun subst ->
                let negs_ok =
                  List.for_all
                    (fun a -> not (Database.mem db (Subst.apply_atom subst a)))
                    negs
                in
                if negs_ok then
                  yield rule_idx rule (List.map (Subst.apply_atom subst) body)))
        (Rule.head rule))
    (Theory.rules sigma)

(* The one-step support sets of [fact] over [db]: every (rule,
   premises) pair that derives it, deduplicated (a fact matched by two
   head atoms of the same rule under the same body instance counts
   once). *)
let one_step_supports (sigma : Theory.t) (db : Database.t) (fact : Atom.t) =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  iter_one_step sigma db fact (fun rule_idx rule premises ->
      let key = (rule_idx, List.map Atom.id premises) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := (rule, premises) :: !acc
      end);
  List.rev !acc

exception Found_one_step

(* Early-exit variant: is [fact] derivable in one step from [db]? The
   membership test DRed's rederivation loop runs per overdeleted
   fact. *)
let derivable_one_step (sigma : Theory.t) (db : Database.t) (fact : Atom.t) =
  try
    iter_one_step sigma db fact (fun _ _ _ -> raise Found_one_step);
    false
  with Found_one_step -> true
