(** Generic worst-case-optimal join (NPRR / Leapfrog-Triejoin style).

    The join enumerates one variable at a time, in a fixed elimination
    [order]: at each level the candidate values for the variable are
    the intersection, over every body atom containing it (its
    {e holders}), of the values the stored facts admit. Two probe
    strategies implement the intersection:

    - {b leapfrog}: when every holder exposes the variable's column as
      a sorted distinct-id set ({!Database.distinct_ids_under} — the
      variable sits at a single position and no other position of the
      holder is bound yet), the sets are intersected by galloping
      ({!Intrun.inter}) and each surviving id resolved back to its term
      through a witnessing fact. This is the asymptotically good path:
      per level, work proportional to the smallest holder column.
    - {b probe-and-prune}: otherwise the most selective holder
      enumerates the distinct values consistent with the current
      bindings ({!Database.iter_var_values_under}) and each value is
      kept only if every other holder still has a non-empty candidate
      segment for it (a binary search per holder).

    Both strategies are complete and duplicate-free per level, and may
    only over-approximate (per-position consistency, like the binary
    path's candidate selection), so each full assignment is checked
    exactly once against every atom with {!Database.exists_under}
    before the callback fires: the enumeration is exactly the set of
    homomorphisms of the body, each visited once. *)

open Guarded_core

(* Candidate seed count of atom [a] for the current bindings. *)
let count db subst a = Database.candidate_count_under db subst a

let iter_pos ?(init = Subst.empty) ~order atoms db k =
  let atoms = Array.of_list atoms in
  let n = Array.length atoms in
  (* Holders of each order variable, precomputed once per call. *)
  let levels =
    List.map
      (fun v ->
        let hs = ref [] in
        for i = n - 1 downto 0 do
          if Names.Sset.mem v (Atom.var_set atoms.(i)) then hs := i :: !hs
        done;
        (v, !hs))
      order
  in
  (* Per-atom count of distinct variables not yet bound, and whether the
     atom has been verified against a stored fact. An atom is checked
     exactly once — the moment its last variable gets bound — which both
     prunes dead branches at the earliest exact point and leaves nothing
     to re-verify per emitted homomorphism. Counters and flags are
     mutated down a branch and restored on backtrack. *)
  let unbound = Array.make n 0 in
  let verified = Array.make n false in
  let exception Dead in
  match
    for i = 0 to n - 1 do
      unbound.(i) <-
        Names.Sset.fold
          (fun v c -> if Subst.mem v init then c else c + 1)
          (Atom.var_set atoms.(i))
          0;
      if unbound.(i) = 0 then
        if Database.exists_under db init atoms.(i) then verified.(i) <- true else raise Dead
    done
  with
  | exception Dead -> ()
  | () ->
    let rec go subst = function
      | [] ->
        (* Leaf: only atoms with variables outside [order] remain. *)
        let ok = ref true in
        for i = 0 to n - 1 do
          if (not verified.(i)) && !ok && not (Database.exists_under db subst atoms.(i)) then
            ok := false
        done;
        if !ok then k subst
      | (var, holders) :: rest ->
        if Subst.mem var subst || holders = [] then go subst rest
        else begin
          (* Extend by [var := t]; returns with counters/flags intact. *)
          let enter t ~prune =
            let subst' = Subst.add var t subst in
            List.iter (fun i -> unbound.(i) <- unbound.(i) - 1) holders;
            let fresh = ref [] in
            let ok = ref true in
            List.iter
              (fun i ->
                if !ok && unbound.(i) = 0 then
                  if Database.exists_under db subst' atoms.(i) then begin
                    verified.(i) <- true;
                    fresh := i :: !fresh
                  end
                  else ok := false)
              holders;
            (* Holders with variables still open: per-position pruning
               (the probe path only — the leapfrog intersection already
               guarantees column membership for every holder). *)
            if !ok && prune then
              ok :=
                List.for_all
                  (fun i -> unbound.(i) = 0 || verified.(i) || count db subst' atoms.(i) > 0)
                  holders;
            if !ok then go subst' rest;
            List.iter (fun i -> verified.(i) <- false) !fresh;
            List.iter (fun i -> unbound.(i) <- unbound.(i) + 1) holders
          in
          if
            List.for_all (fun i -> Database.fast_var_eligible db subst atoms.(i) ~var) holders
          then begin
            (* Leapfrog: gallop the sorted distinct-id sets together. *)
            let ids =
              match
                List.map
                  (fun i ->
                    Option.value ~default:[||]
                      (Database.distinct_ids_under db subst atoms.(i) ~var))
                  holders
              with
              | [] -> [||]
              | x :: tl -> List.fold_left Intrun.inter x tl
            in
            if Array.length ids > 0 then
              Database.iter_values_of_ids db atoms.(List.hd holders) ~var ids (fun t ->
                  enter t ~prune:false)
          end
          else begin
            (* Probe-and-prune from the most selective holder. *)
            let seed = ref (List.hd holders) and seed_n = ref max_int in
            List.iter
              (fun i ->
                let c = count db subst atoms.(i) in
                if c < !seed_n then begin
                  seed := i;
                  seed_n := c
                end)
              holders;
            if !seed_n > 0 then
              Database.iter_var_values_under db subst atoms.(!seed) ~var (fun t ->
                  enter t ~prune:true)
          end
        end
    in
    go init levels

let all ?init ~order atoms db =
  let acc = ref [] in
  iter_pos ?init ~order atoms db (fun s -> acc := s :: !acc);
  !acc
