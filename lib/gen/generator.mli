(** QCheck generators for random theories and databases over a fixed
    small signature, for property-based testing and fuzzing. The
    language-specific generators are syntactically in the advertised
    class by construction. *)

open Guarded_core

val constants : string list
val variables : string list

val signature : (string * int) list
(** Relation names with arities. *)

val gen_const : Term.t QCheck.Gen.t
val gen_fact : Atom.t QCheck.Gen.t
val gen_db : ?max_facts:int -> unit -> Database.t QCheck.Gen.t
val gen_atom_over : string list -> Atom.t QCheck.Gen.t

val gen_guarded_rule : Rule.t QCheck.Gen.t
val gen_guarded_theory : Theory.t QCheck.Gen.t
val gen_fg_rule : Rule.t QCheck.Gen.t
val gen_fg_theory : Theory.t QCheck.Gen.t
val gen_datalog_rule : Rule.t QCheck.Gen.t
val gen_datalog_theory : Theory.t QCheck.Gen.t

val gen_semipositive_rule : Rule.t QCheck.Gen.t
(** Datalog with negation confined to extensional relations (never
    derived by a head), i.e. semipositive by construction. *)

val gen_semipositive_theory : Theory.t QCheck.Gen.t
val gen_cq_body : Atom.t list QCheck.Gen.t

(** {2 Termination zoo}

    Theories with known chase-termination ground truth, for testing the
    acyclicity deciders and bounded-chase prover against an oracle: an
    existential chain [z0 -> z1 -> ... ] of configurable length,
    guarded throughout (single-atom bodies). Acyclic chains drain into
    a sink relation (the chase terminates on every database); cyclic
    chains close the loop with one more existential rule (the chase
    diverges on any database reaching the cycle). Optional swap rules
    [zi(X,Y) -> zi(Y,X)] add regular position-graph edges without
    changing the termination class. *)

type zoo = {
  zoo_theory : Theory.t;
  zoo_cyclic : bool;  (** ground truth: does the chain close? *)
  zoo_len : int;  (** number of chain relations *)
}

val zoo_chain : ?swaps:int list -> len:int -> cyclic:bool -> unit -> Theory.t
(** The deterministic chain ([len] is clamped to [>= 2]); [swaps] lists
    the chain indices that receive a swap rule. Used directly by the
    benchmarks. *)

val gen_zoo : ?max_len:int -> unit -> zoo QCheck.Gen.t

val gen_zoo_db : Database.t QCheck.Gen.t
(** Seed facts for the chain entry relation [z0]. *)

val arbitrary_zoo : zoo QCheck.arbitrary

val arbitrary_db : Database.t QCheck.arbitrary
val arbitrary_guarded : Theory.t QCheck.arbitrary
val arbitrary_fg : Theory.t QCheck.arbitrary
val arbitrary_datalog : Theory.t QCheck.arbitrary
val arbitrary_semipositive : Theory.t QCheck.arbitrary

val arbitrary_pair :
  Theory.t QCheck.arbitrary -> (Theory.t * Database.t) QCheck.arbitrary
(** Pairs a theory arbitrary with a random database. *)
