(** QCheck generators for random theories and databases over a fixed
    small signature, for property-based testing and fuzzing. The
    language-specific generators are syntactically in the advertised
    class by construction. *)

open Guarded_core

val constants : string list
val variables : string list

val signature : (string * int) list
(** Relation names with arities. *)

val gen_const : Term.t QCheck.Gen.t
val gen_fact : Atom.t QCheck.Gen.t
val gen_db : ?max_facts:int -> unit -> Database.t QCheck.Gen.t
val gen_atom_over : string list -> Atom.t QCheck.Gen.t

val gen_guarded_rule : Rule.t QCheck.Gen.t
val gen_guarded_theory : Theory.t QCheck.Gen.t
val gen_fg_rule : Rule.t QCheck.Gen.t
val gen_fg_theory : Theory.t QCheck.Gen.t
val gen_datalog_rule : Rule.t QCheck.Gen.t
val gen_datalog_theory : Theory.t QCheck.Gen.t

val gen_semipositive_rule : Rule.t QCheck.Gen.t
(** Datalog with negation confined to extensional relations (never
    derived by a head), i.e. semipositive by construction. *)

val gen_semipositive_theory : Theory.t QCheck.Gen.t
val gen_cq_body : Atom.t list QCheck.Gen.t

val arbitrary_db : Database.t QCheck.arbitrary
val arbitrary_guarded : Theory.t QCheck.arbitrary
val arbitrary_fg : Theory.t QCheck.arbitrary
val arbitrary_datalog : Theory.t QCheck.arbitrary
val arbitrary_semipositive : Theory.t QCheck.arbitrary

val arbitrary_pair :
  Theory.t QCheck.arbitrary -> (Theory.t * Database.t) QCheck.arbitrary
(** Pairs a theory arbitrary with a random database. *)
