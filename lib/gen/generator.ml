(** QCheck generators for random theories and databases, over a fixed
    small signature. Used by the property-based test-suite and available
    to downstream users for fuzzing their own pipelines.

    The generators produce theories that are {e syntactically} in the
    advertised language (guarded / frontier-guarded / plain Datalog) by
    construction; the test-suite additionally asserts this with the
    classifier. *)

open Guarded_core

let constants = [ "a"; "b"; "c"; "d" ]
let variables = [ "X"; "Y"; "Z"; "W" ]

(* name, arity *)
let signature = [ ("p", 1); ("r", 2); ("t", 3); ("s", 1); ("e", 2) ]

let gen_const = QCheck.Gen.oneofl (List.map (fun c -> Term.Const c) constants)

let gen_fact =
  QCheck.Gen.(
    oneofl signature >>= fun (name, arity) ->
    list_repeat arity gen_const >|= fun args -> Atom.make name args)

let gen_db ?(max_facts = 8) () =
  QCheck.Gen.(list_size (int_range 1 max_facts) gen_fact >|= Database.of_atoms)

(* An atom over a given variable pool (possibly with constants). *)
let gen_atom_over pool =
  QCheck.Gen.(
    oneofl signature >>= fun (name, arity) ->
    list_repeat arity
      (frequency [ (4, oneofl (List.map (fun v -> Term.Var v) pool)); (1, gen_const) ])
    >|= fun args -> Atom.make name args)

(* A guarded rule: a guard atom with the whole variable pool, body atoms
   over the guard variables, and a head that is either a Datalog atom
   over those variables or an existential atom. *)
let gen_guarded_rule =
  QCheck.Gen.(
    int_range 1 3 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    let guard_gen =
      oneofl (List.filter (fun (_, a) -> a >= width) signature) >|= fun (name, arity) ->
      Atom.make name (List.init arity (fun i -> Term.Var (List.nth pool (i mod width))))
    in
    guard_gen >>= fun guard ->
    list_size (int_range 0 2) (gen_atom_over pool) >>= fun extra ->
    bool >>= fun existential ->
    if existential then
      oneofl (List.filter (fun (_, a) -> a >= 2) signature) >|= fun (name, arity) ->
      let args =
        List.init arity (fun i ->
            if i = 0 then Term.Var "E0" else Term.Var (List.nth pool (i mod width)))
      in
      Rule.make_pos ~evars:[ "E0" ] (guard :: extra) [ Atom.make name args ]
    else gen_atom_over pool >|= fun head -> Rule.make_pos (guard :: extra) [ head ])

let gen_guarded_theory =
  QCheck.Gen.(list_size (int_range 1 4) gen_guarded_rule >|= Theory.of_rules)

(* A frontier-guarded Datalog rule: free body shape, head variables
   confined to one body atom. *)
let gen_fg_rule =
  QCheck.Gen.(
    int_range 2 4 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool) >>= fun body ->
    oneofl body >>= fun fg ->
    let fg_vars = Atom.arg_vars fg in
    if fg_vars = [] then
      oneofl (List.filter (fun (_, a) -> a = 1) signature) >|= fun (name, _) ->
      Rule.make_pos body [ Atom.make name [ List.hd (Atom.args fg) ] ]
    else
      oneofl fg_vars >>= fun v ->
      oneofl signature >|= fun (name, arity) ->
      Rule.make_pos body [ Atom.make name (List.init arity (fun _ -> Term.Var v)) ])

let gen_fg_theory =
  QCheck.Gen.(
    list_size (int_range 1 3) gen_fg_rule >>= fun datalog ->
    list_size (int_range 0 1) gen_guarded_rule >|= fun guarded ->
    Theory.of_rules (datalog @ guarded))

(* A positive Datalog rule whose single head variable comes from the
   body (or a constant head when the body is ground). *)
let gen_datalog_rule =
  QCheck.Gen.(
    int_range 2 3 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool) >>= fun body ->
    let body_vars =
      List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
    in
    if Names.Sset.is_empty body_vars then
      oneofl signature >|= fun (name, arity) ->
      Rule.make_pos body [ Atom.make name (List.init arity (fun _ -> Term.Const "a")) ]
    else
      oneofl (Names.Sset.elements body_vars) >>= fun v ->
      oneofl signature >|= fun (name, arity) ->
      Rule.make_pos body [ Atom.make name (List.init arity (fun _ -> Term.Var v)) ])

let gen_datalog_theory =
  QCheck.Gen.(list_size (int_range 1 4) gen_datalog_rule >|= Theory.of_rules)

(* Semipositive Datalog: negation only over extensional relations. Heads
   are confined to [idb_relations] and negative literals to the rest of
   the signature, so negated relations are never derived — by
   construction, whatever the random draw. *)
let idb_relations = [ ("p", 1); ("r", 2); ("t", 3) ]
let edb_relations = List.filter (fun rel -> not (List.mem rel idb_relations)) signature

let gen_semipositive_rule =
  QCheck.Gen.(
    int_range 2 3 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool) >>= fun body ->
    let body_vars =
      List.fold_left (fun acc a -> Names.Sset.union acc (Atom.var_set a)) Names.Sset.empty body
    in
    let gen_neg =
      if Names.Sset.is_empty body_vars then return []
      else
        frequency
          [
            (3, return []);
            ( 2,
              oneofl edb_relations >>= fun (name, arity) ->
              list_repeat arity (oneofl (Names.Sset.elements body_vars)) >|= fun vs ->
              [ Literal.Neg (Atom.make name (List.map (fun v -> Term.Var v) vs)) ] );
          ]
    in
    gen_neg >>= fun neg ->
    let lits = List.map (fun a -> Literal.Pos a) body @ neg in
    if Names.Sset.is_empty body_vars then
      oneofl idb_relations >|= fun (name, arity) ->
      Rule.make lits [ Atom.make name (List.init arity (fun _ -> Term.Const "a")) ]
    else
      oneofl (Names.Sset.elements body_vars) >>= fun v ->
      oneofl idb_relations >|= fun (name, arity) ->
      Rule.make lits [ Atom.make name (List.init arity (fun _ -> Term.Var v)) ])

let gen_semipositive_theory =
  QCheck.Gen.(list_size (int_range 1 4) gen_semipositive_rule >|= Theory.of_rules)

(* A conjunctive query with at most one answer variable. *)
let gen_cq_body =
  QCheck.Gen.(
    int_range 2 4 >>= fun width ->
    let pool = List.filteri (fun i _ -> i < width) variables in
    list_size (int_range 1 3) (gen_atom_over pool))

(* ------------------------------------------------------------------ *)
(* Termination zoo: existential chains with known ground truth         *)

type zoo = { zoo_theory : Theory.t; zoo_cyclic : bool; zoo_len : int }

let zoo_rel i = Fmt.str "z%d" i

(* zi(X, Y) -> exists W. zj(Y, W). — the single body atom is the guard,
   so every zoo theory is guarded (in fact frontier-guarded). *)
let zoo_link i j =
  Rule.make_pos ~evars:[ "W" ]
    [ Atom.make (zoo_rel i) [ Term.Var "X"; Term.Var "Y" ] ]
    [ Atom.make (zoo_rel j) [ Term.Var "Y"; Term.Var "W" ] ]

(* zi(X, Y) -> zi(Y, X). — only regular position-graph edges, so it
   never changes the termination class of the chain it decorates. *)
let zoo_swap i =
  Rule.make_pos
    [ Atom.make (zoo_rel i) [ Term.Var "X"; Term.Var "Y" ] ]
    [ Atom.make (zoo_rel i) [ Term.Var "Y"; Term.Var "X" ] ]

let zoo_chain ?(swaps = []) ~len ~cyclic () =
  let len = max 2 len in
  let chain = List.init (len - 1) (fun i -> zoo_link i (i + 1)) in
  let last =
    if cyclic then zoo_link (len - 1) 0
    else
      (* Terminating tail: the chain drains into a plain sink. *)
      Rule.make_pos
        [ Atom.make (zoo_rel (len - 1)) [ Term.Var "X"; Term.Var "Y" ] ]
        [ Atom.make "zsink" [ Term.Var "Y" ] ]
  in
  Theory.of_rules (chain @ [ last ] @ List.map zoo_swap swaps)

let gen_zoo ?(max_len = 6) () =
  QCheck.Gen.(
    int_range 2 max_len >>= fun len ->
    bool >>= fun cyclic ->
    list_size (int_range 0 2) (int_range 0 (len - 1)) >|= fun swaps ->
    { zoo_theory = zoo_chain ~swaps ~len ~cyclic (); zoo_cyclic = cyclic; zoo_len = len })

(* Seed facts for the chain entry relation z0. *)
let gen_zoo_db =
  QCheck.Gen.(
    list_size (int_range 1 4) (pair gen_const gen_const) >|= fun pairs ->
    Database.of_atoms (List.map (fun (c1, c2) -> Atom.make (zoo_rel 0) [ c1; c2 ]) pairs))

(* ------------------------------------------------------------------ *)
(* QCheck arbitraries with printers                                    *)

let arbitrary_db = QCheck.make ~print:(Fmt.to_to_string Database.pp) (gen_db ())

let arbitrary_guarded = QCheck.make ~print:Theory.to_string gen_guarded_theory
let arbitrary_fg = QCheck.make ~print:Theory.to_string gen_fg_theory
let arbitrary_datalog = QCheck.make ~print:Theory.to_string gen_datalog_theory
let arbitrary_semipositive = QCheck.make ~print:Theory.to_string gen_semipositive_theory

let arbitrary_zoo =
  QCheck.make
    ~print:(fun z ->
      Fmt.str "%s chain, length %d:@.%s"
        (if z.zoo_cyclic then "cyclic" else "acyclic")
        z.zoo_len (Theory.to_string z.zoo_theory))
    (gen_zoo ())

let arbitrary_pair arb_t =
  QCheck.make
    ~print:(fun (sigma, d) -> Fmt.str "%s@.---@.%a" (Theory.to_string sigma) Database.pp d)
    QCheck.Gen.(pair (QCheck.gen arb_t) (gen_db ()))
