(** Update batches against an EDB: see the interface for the format. *)

open Guarded_core

type t = {
  additions : Atom.t list;
  deletions : Atom.t list;
}

let empty = { additions = []; deletions = [] }
let is_empty d = d.additions = [] && d.deletions = []

let check_ground what a =
  if not (Atom.is_ground a) then
    invalid_arg (Fmt.str "Delta.%s: non-ground atom %a" what Atom.pp a)

let add_fact d a =
  check_ground "add_fact" a;
  { d with additions = d.additions @ [ a ] }

let remove_fact d a =
  check_ground "remove_fact" a;
  { d with deletions = d.deletions @ [ a ] }

let of_lists ~additions ~deletions =
  List.iter (check_ground "of_lists") additions;
  List.iter (check_ground "of_lists") deletions;
  { additions; deletions }

let size d = List.length d.additions + List.length d.deletions

(* Strip an optional trailing dot before handing the fact text to the
   atom parser (facts in theory files end in dots; bare atoms do not). *)
let parse_fact s =
  let s = String.trim s in
  let s =
    let n = String.length s in
    if n > 0 && s.[n - 1] = '.' then String.sub s 0 (n - 1) else s
  in
  Parser.atom_of_string s

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' || line.[0] = '%' then (None, None)
  else
    match line.[0] with
    | '+' -> (Some (parse_fact (String.sub line 1 (String.length line - 1))), None)
    | '-' -> (None, Some (parse_fact (String.sub line 1 (String.length line - 1))))
    | _ -> failwith (Fmt.str "Delta.parse_line: expected +fact or -fact, got %S" line)

let of_string s =
  let additions = ref [] and deletions = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match parse_line line with
         | Some a, _ -> additions := a :: !additions
         | _, Some a -> deletions := a :: !deletions
         | None, None -> ());
  { additions = List.rev !additions; deletions = List.rev !deletions }

exception Malformed of { line : int; msg : string }

(* Parse a whole update file in one pass, attributing every error to its
   1-based line, before anything is applied: a malformed line must fail
   the submission as a unit, not abort it halfway through. Blank lines
   separate batches; comments stay attached to their batch. *)
let batches_of_string s =
  let finish cur = { additions = List.rev cur.additions; deletions = List.rev cur.deletions } in
  let cur = ref empty and batches = ref [] in
  let flush () =
    if not (is_empty !cur) then begin
      batches := finish !cur :: !batches;
      cur := empty
    end
  in
  List.iteri
    (fun i line ->
      if String.trim line = "" then flush ()
      else
        match parse_line line with
        | Some a, _ -> cur := { !cur with additions = a :: !cur.additions }
        | _, Some a -> cur := { !cur with deletions = a :: !cur.deletions }
        | None, None -> ()
        | exception (Failure msg | Invalid_argument msg) ->
          raise (Malformed { line = i + 1; msg })
        | exception Parser.Parse_error msg -> raise (Malformed { line = i + 1; msg }))
    (String.split_on_char '\n' s);
  flush ();
  List.rev !batches

let pp ppf d =
  let line sign ppf a = Fmt.pf ppf "%c%a." sign Atom.pp_quoted a in
  Fmt.pf ppf "@[<v>%a%a%a@]"
    (Fmt.list ~sep:Fmt.cut (line '+'))
    d.additions
    (fun ppf () -> if d.additions <> [] && d.deletions <> [] then Fmt.cut ppf ())
    ()
    (Fmt.list ~sep:Fmt.cut (line '-'))
    d.deletions
