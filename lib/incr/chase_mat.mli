(** Finite-chase serving: keep chase(Σ, EDB) materialized as a
    {!Guarded_core.Database} and answer queries from it directly,
    bypassing the Datalog translation. Labeled nulls live in the store
    and are filtered from answers, so every query returns certain
    answers. Only meaningful when the theory's restricted chase
    terminates — gate with the [Guarded_analysis] deciders/prover. *)

open Guarded_core

exception Nonterminating of {
  budget : int;  (** the derivation budget that was exceeded *)
  derivations : int;
}
(** The chase hit its derivation budget. On {!create} nothing is
    served; on {!apply} the previously served state is unchanged. *)

type t

val create :
  ?pool:Guarded_par.Pool.t ->
  ?limits:Guarded_chase.Engine.limits ->
  Theory.t ->
  Database.t ->
  t
(** Chases the database (restricted variant, steps not recorded) and
    keeps the result. The EDB is copied.
    @raise Nonterminating when the chase exceeds its budget.
    @raise Invalid_argument on a theory with negation. *)

val program : t -> Theory.t
val pool : t -> Guarded_par.Pool.t option

val edb : t -> Database.t
(** The current raw EDB (updates applied). Read-only. *)

val db : t -> Database.t
(** The materialized chase (EDB ∪ derived atoms ∪ nulls). Read-only. *)

type apply_result = {
  res_added : int;  (** net facts that entered the chase *)
  res_removed : int;  (** net facts that left the chase *)
}

val apply : t -> Delta.t -> apply_result
(** Apply one batch: the EDB becomes [(EDB \ deletions) ∪ additions].
    Additions-only batches continue the chase incrementally from
    [chase ∪ additions]; batches with effective deletions re-chase the
    new EDB from scratch. Either way the new state is built on the
    side and installed atomically.
    @raise Nonterminating when the new chase exceeds the budget — the
    served state is then unchanged. *)

val answers : t -> query:string -> Term.t list list
(** Sorted constant tuples of the [query] relation in the chase —
    certain answers, matching {!Incr.answers} over the translation. *)

val pattern_answers : t -> rel:string -> pattern:Term.t list -> Term.t list list
(** Sorted constant tuples of [rel] matching the pattern (constants
    bound, variables free, repeated variables equated). *)

val cq_answers : t -> body:Atom.t list -> answer_vars:string list -> Term.t list list
(** Conjunctive-query certain answers: homomorphisms of [body] into
    the chase (joins may pass through nulls), projected on
    [answer_vars], restricted to all-constant tuples. *)

type stats = {
  st_nulls : int;  (** distinct labeled nulls resident in the chase *)
  st_derivations : int;  (** cumulative chase derivations *)
  st_rechases : int;  (** from-scratch chases (creation included) *)
  st_continuations : int;  (** additions-only chase continuations *)
}

val stats : t -> stats
