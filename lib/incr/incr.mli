(** Incremental maintenance of materialized Datalog programs.

    A {!t} is a long-lived materialization of a stratified Datalog
    program over an EDB: translate a theory once (Thms. 1/5 give
    database-independent rewritings), materialize it, then serve
    queries across update batches without re-running the fixpoint from
    scratch. Each stratum caches its own output database; insertions
    ride the semi-naive delta machinery, deletions use support counting
    on nonrecursive strata and DRed (delete/rederive, with one-step
    rederivation tests from {!Guarded_datalog.Provenance}) on recursive
    strata. See DESIGN.md, "Incremental maintenance (counting +
    DRed)". *)

open Guarded_core

type t

val materialize :
  ?pool:Guarded_par.Pool.t ->
  ?join:Guarded_datalog.Planner.join_mode ->
  Theory.t ->
  Database.t ->
  t
(** [materialize sigma edb] evaluates the stratified Datalog program
    [sigma] over [edb] (materializing ACDom from the EDB's active
    domain when the program mentions it) and caches the per-stratum
    state needed to maintain the result under updates. The EDB is
    copied; the caller's database is not retained. [?pool] is stored
    and used for the parallel rounds of every later {!apply}; [?join]
    (default [`Auto]) selects the join executor for every stratum's
    evaluation and maintenance, as in {!Guarded_datalog.Seminaive.eval}.
    @raise Invalid_argument on existential rules or unstratified
    negation. *)

val program : t -> Theory.t
val pool : t -> Guarded_par.Pool.t option

val db : t -> Database.t
(** The maintained materialization (EDB ∪ ACDom ∪ IDB). Read-only:
    mutating it corrupts the cached support state. *)

val edb : t -> Database.t
(** The current raw EDB (updates applied, no ACDom, no IDB). Read-only. *)

type apply_result = {
  res_added : int;  (** net facts that entered the materialization *)
  res_removed : int;  (** net facts that left the materialization *)
  res_fallback_strata : int;
      (** strata recomputed from scratch because the batch touched a
          relation they negate *)
}

val apply : t -> Delta.t -> apply_result
(** Apply one update batch: the EDB becomes
    [(EDB \ deletions) ∪ additions] and the materialization is updated
    to the fixpoint over the new EDB. Changes propagate stratum by
    stratum as net deltas (a fact deleted and rederived in the same
    batch reports as unchanged). *)

(** {2 Snapshot support}

    A {!dump} is the cached state as plain data — enough to rebuild the
    materialization with {!restore} without re-running any fixpoint.
    {!Guarded_server.Snapshot} persists dumps in a versioned binary
    format. *)

type stratum_dump = {
  sd_new : Atom.t list;
      (** the stratum's output facts beyond its input, sorted *)
  sd_counts : (Atom.t * int) list;
      (** derivation counts (counting strata; [[]] on DRed strata), sorted *)
}

type dump = {
  d_edb : Database.t;
  d_strata : stratum_dump list;
}

val dump : t -> dump
(** The current cached state as data. The databases are copied; the
    dump does not alias the live materialization. *)

val restore :
  ?pool:Guarded_par.Pool.t ->
  ?join:Guarded_datalog.Planner.join_mode ->
  Theory.t ->
  dump ->
  t
(** Rebuild a materialization from a dump of the same program,
    recomputing only the EDB-derived bookkeeping (ACDom counts, rule
    engines) — no fixpoint runs. The dumped facts are trusted to be the
    program's fixpoint; use the snapshot layer's checksums to guard
    integrity.
    @raise Invalid_argument when the dump's stratum count does not
    match the program's. *)

val refresh : t -> unit
(** Recompute every stratum from scratch over the current EDB,
    rebuilding all cached support state. The maintained result is
    unchanged if the invariants held — an escape hatch and a debugging
    aid, not part of the serving fast path. *)

val answers : t -> query:string -> Term.t list list
(** Sorted, deduplicated constant tuples of the [query] relation in the
    current materialization. *)

val cq_answers : t -> body:Atom.t list -> answer_vars:string list -> Term.t list list
(** Answers of a conjunctive query evaluated directly against the
    current materialization: homomorphisms of [body], projected on
    [answer_vars], restricted to all-constant tuples, sorted and
    deduplicated. (For certain-answer semantics the program must
    already be the translation of the ontology — which is the serving
    setup.) *)
